package evoprot

// Facade-level gates for the Pareto objective and the ML-utility measure:
// option and JobSpec validation agree with run time, a spec-driven Pareto
// run reproduces the equivalent option-driven run bit for bit, and the
// new knobs actually reach the engine (fronts on events and results,
// ML-utility shifting scores deterministically).

import (
	"context"
	"math"
	"testing"
)

func TestParetoObjectiveValidation(t *testing.T) {
	orig, _ := GenerateDataset("flare", 60, 3)
	attrs, _ := ProtectedAttributes("flare")
	bad := map[string][]Option{
		"unknown objective": {WithGrid("flare"), WithObjective("lexicographic")},
		"negative ref":      {WithGrid("flare"), WithObjective("pareto"), WithParetoRef(-1, 100)},
		"nan ref":           {WithGrid("flare"), WithObjective("pareto"), WithParetoRef(math.NaN(), 100)},
		"inf ref":           {WithGrid("flare"), WithObjective("pareto"), WithParetoRef(100, math.Inf(1))},
		"zero-DR ref":       {WithGrid("flare"), WithObjective("pareto"), WithParetoRef(100, 0)},
		// A reference point is validated even under the scalar objective, so
		// heterogeneous templates with typos fail at admission.
		"bad ref scalar mode": {WithGrid("flare"), WithParetoRef(-5, 100)},
		"unknown ml target":   {WithGrid("flare"), WithMLUtility("nope")},
	}
	for name, opts := range bad {
		if _, err := NewRunner(orig, attrs, opts...); err == nil {
			t.Errorf("%s: NewRunner accepted", name)
		}
	}
	if _, err := NewRunner(orig, attrs, WithGrid("flare"), WithObjective("pareto"), WithParetoRef(120, 110)); err != nil {
		t.Errorf("valid pareto options rejected: %v", err)
	}

	badSpecs := map[string]JobSpec{
		"unknown objective": {Dataset: "flare", Objective: "lexicographic"},
		"bad pareto ref":    {Dataset: "flare", Objective: "pareto", ParetoRef: &ParetoRef{IL: -1, DR: 100}},
	}
	for name, spec := range badSpecs {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: spec accepted", name)
		}
	}
	good := JobSpec{Dataset: "flare", Objective: "pareto", ParetoRef: &ParetoRef{IL: 120, DR: 110}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid pareto spec rejected: %v", err)
	}
	mlSpec := JobSpec{Dataset: "flare", MLTarget: "nope"}
	if _, err := mlSpec.Materialize(); err == nil {
		t.Error("unknown ml_target materialized")
	}
}

// TestParetoSpecOptionsEquivalence: a Pareto spec-driven run reproduces
// the option-driven run bit for bit, and both carry the front payloads.
func TestParetoSpecOptionsEquivalence(t *testing.T) {
	spec := JobSpec{
		Dataset:     "flare",
		Rows:        80,
		Generations: 25,
		Seed:        13,
		Objective:   "pareto",
		ParetoRef:   &ParetoRef{IL: 120, DR: 120},
	}
	orig, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), orig, spec.Attributes, opts...)
	if err != nil {
		t.Fatal(err)
	}

	refOrig, _ := GenerateDataset("flare", 80, 13)
	attrs, _ := ProtectedAttributes("flare")
	want, err := Run(context.Background(), refOrig, attrs,
		WithGrid("flare"),
		WithGenerations(25),
		WithSeed(13),
		WithObjective("pareto"),
		WithParetoRef(120, 120),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Best.Data.Equal(want.Best.Data) {
		t.Fatal("spec-driven pareto run diverged from the explicit-option run")
	}
	gh, wh := got.Islands[0].History, want.Islands[0].History
	if len(gh) != len(wh) || len(gh) != 25 {
		t.Fatalf("history lengths %d vs %d, want 25", len(gh), len(wh))
	}
	for i := range gh {
		gf, wf := gh[i].Front, wh[i].Front
		if gf == nil || wf == nil {
			t.Fatalf("generation %d misses a front payload", i+1)
		}
		if gf.Size != wf.Size || gf.Hypervolume != wf.Hypervolume {
			t.Fatalf("generation %d fronts diverged: %+v vs %+v", i+1, gf, wf)
		}
	}
	if hv, err := Hypervolume(gh[len(gh)-1].Front.Pairs, Pair{IL: 120, DR: 120}); err != nil || hv != gh[len(gh)-1].Front.Hypervolume {
		t.Fatalf("front hypervolume does not reproduce through the facade: %v %v", hv, err)
	}
}

// TestMLUtilityChangesScores: the ML-utility battery shifts fitness (it is
// a real fourth measure) and is deterministic under a fixed seed.
func TestMLUtilityChangesScores(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 7)
	attrs, _ := ProtectedAttributes("flare")
	base := []Option{WithGrid("flare"), WithGenerations(15), WithSeed(7)}

	plain, err := Run(context.Background(), orig, attrs, base...)
	if err != nil {
		t.Fatal(err)
	}
	ml1, err := Run(context.Background(), orig, attrs, append(base[:len(base):len(base)], WithMLUtility("CFLARES"))...)
	if err != nil {
		t.Fatal(err)
	}
	ml2, err := Run(context.Background(), orig, attrs, append(base[:len(base):len(base)], WithMLUtility("CFLARES"))...)
	if err != nil {
		t.Fatal(err)
	}
	if ml1.Best.Eval.Score != ml2.Best.Eval.Score || !ml1.Best.Data.Equal(ml2.Best.Data) {
		t.Fatal("ML-utility run is not deterministic under a fixed seed")
	}
	// The measure must actually participate: some individual's IL differs
	// from the plain battery's on the same seed.
	differs := false
	for i, ind := range ml1.Islands[0].Population {
		if i < len(plain.Islands[0].Population) && ind.Eval.IL != plain.Islands[0].Population[i].Eval.IL {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("ML-utility battery left every IL untouched; measure not wired in")
	}
}
