package evoprot

// Facade-level coverage of heterogeneous islands and adaptive migration:
// option plumbing, the homogeneous-equivalence property through the
// public API, checkpointing of heterogeneous runs, and the JobSpec wire
// format with its admission-time validation.

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func sameRunResults(t *testing.T, label string, a, b *RunResult) {
	t.Helper()
	if len(a.Islands) != len(b.Islands) {
		t.Fatalf("%s: island counts %d vs %d", label, len(a.Islands), len(b.Islands))
	}
	for i := range a.Islands {
		x, y := a.Islands[i].History, b.Islands[i].History
		if len(x) != len(y) {
			t.Fatalf("%s: island %d history lengths %d vs %d", label, i, len(x), len(y))
		}
		for g := range x {
			gx, gy := x[g], y[g]
			gx.EvalTime, gx.TotalTime, gy.EvalTime, gy.TotalTime = 0, 0, 0, 0
			if gx != gy {
				t.Fatalf("%s: island %d generation %d diverged", label, i, g+1)
			}
		}
	}
	if a.Best.Eval.Score != b.Best.Eval.Score || !a.Best.Data.Equal(b.Best.Data) {
		t.Fatalf("%s: best individuals diverged", label)
	}
}

// TestFacadeHomogeneousEquivalence: WithPerIsland with all-empty
// overrides (and no adaptive migration) is bit-identical to the plain
// homogeneous run through the public API.
func TestFacadeHomogeneousEquivalence(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 3)
	attrs, _ := ProtectedAttributes("flare")
	base := []Option{WithGrid("flare"), WithGenerations(20), WithSeed(9), WithIslands(3), WithMigration(5, 2)}
	ref, err := Run(context.Background(), orig, attrs, base...)
	if err != nil {
		t.Fatal(err)
	}
	over, err := Run(context.Background(), orig, attrs,
		append(append([]Option{}, base...), WithPerIsland(IslandConfig{}, IslandConfig{}, IslandConfig{}))...)
	if err != nil {
		t.Fatal(err)
	}
	sameRunResults(t, "facade all-empty overrides", ref, over)
	if ref.Migrations != over.Migrations {
		t.Fatalf("migrations %d vs %d", ref.Migrations, over.Migrations)
	}
}

// TestFacadeHeterogeneousDeterminism: a niched adaptive run through the
// public API reproduces bit for bit from its seed and reports epoch
// events.
func TestFacadeHeterogeneousDeterminism(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 5)
	attrs, _ := ProtectedAttributes("flare")
	once := func() (*RunResult, int) {
		var (
			mu     sync.Mutex
			epochs int
		)
		res, err := Run(context.Background(), orig, attrs,
			WithGrid("flare"),
			WithGenerations(30),
			WithSeed(5),
			WithIslands(3),
			WithNiches("explore-exploit"),
			WithMigration(5, 2),
			WithAdaptiveMigration(AdaptiveMigration{}),
			WithProgress(func(ev Event) {
				mu.Lock()
				defer mu.Unlock()
				if ev.Epoch != nil {
					epochs++
					if ev.Island != -1 {
						t.Errorf("epoch event on island %d", ev.Island)
					}
				}
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		return res, epochs
	}
	a, ae := once()
	b, be := once()
	sameRunResults(t, "facade heterogeneous adaptive", a, b)
	if ae != be || ae == 0 {
		t.Fatalf("epoch events %d vs %d", ae, be)
	}
}

// TestFacadePerIslandImpliesIslandCount: WithPerIsland without
// WithIslands runs one island per override.
func TestFacadePerIslandImpliesIslandCount(t *testing.T) {
	orig, _ := GenerateDataset("flare", 60, 7)
	attrs, _ := ProtectedAttributes("flare")
	res, err := Run(context.Background(), orig, attrs,
		WithGrid("flare"), WithGenerations(6), WithSeed(7),
		WithPerIsland(IslandConfig{}, IslandConfig{Selection: "rank"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Islands) != 2 {
		t.Fatalf("implied island count = %d, want 2", len(res.Islands))
	}
}

// TestFacadeHeterogeneousCheckpointResume: a heterogeneous (fixed-
// schedule) run checkpoints and resumes onto the uninterrupted
// trajectory through the facade; the checkpoint advertises its
// heterogeneity through PeekCheckpoint.
func TestFacadeHeterogeneousCheckpointResume(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 31)
	attrs, _ := ProtectedAttributes("flare")
	overrides := []IslandConfig{{}, {Selection: "rank", MutationRate: 0.7, Aggregator: "mean"}}
	opts := func(gens int) []Option {
		return []Option{WithGrid("flare"), WithGenerations(gens), WithSeed(31),
			WithMigration(5, 2), WithPerIsland(overrides...)}
	}
	ref, err := NewRunner(orig, attrs, opts(20)...)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	r1, err := NewRunner(orig, attrs, opts(10)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	meta, err := PeekCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Islands != 2 || !meta.Heterogeneous {
		t.Fatalf("checkpoint meta %+v, want 2 heterogeneous islands", meta)
	}
	r2, err := NewRunner(orig, attrs, opts(10)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Resume(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameRunResults(t, "facade heterogeneous resume", refRes, res)
}

// TestFacadeHeterogeneousValidation: bad heterogeneous setups fail at
// NewRunner, before any evaluation work.
func TestFacadeHeterogeneousValidation(t *testing.T) {
	orig, _ := GenerateDataset("flare", 50, 17)
	attrs, _ := ProtectedAttributes("flare")
	cases := map[string][]Option{
		"niches and per-island":   {WithGrid("flare"), WithNiches("explore-exploit"), WithPerIsland(IslandConfig{})},
		"unknown niche":           {WithGrid("flare"), WithIslands(3), WithNiches("nope")},
		"niches without islands":  {WithGrid("flare"), WithNiches("explore-exploit")},
		"niches on one island":    {WithGrid("flare"), WithIslands(1), WithNiches("explore-exploit")},
		"override count mismatch": {WithGrid("flare"), WithIslands(3), WithPerIsland(IslandConfig{}, IslandConfig{})},
		"override bad selection":  {WithGrid("flare"), WithPerIsland(IslandConfig{}, IslandConfig{Selection: "tournament"})},
		"override bad crowding":   {WithGrid("flare"), WithPerIsland(IslandConfig{}, IslandConfig{Crowding: "closest"})},
		"override bad aggregator": {WithGrid("flare"), WithPerIsland(IslandConfig{}, IslandConfig{Aggregator: "median"})},
		"adaptive bad bounds": {WithGrid("flare"), WithIslands(2), WithMigration(10, 2),
			WithAdaptiveMigration(AdaptiveMigration{MinEvery: 50, MaxEvery: 60})},
		"adaptive inverted thresholds": {WithGrid("flare"), WithIslands(2),
			WithAdaptiveMigration(AdaptiveMigration{LowDivergence: 0.9, HighDivergence: 0.1})},
	}
	for name, options := range cases {
		if _, err := NewRunner(orig, attrs, options...); err == nil {
			t.Errorf("%s accepted by NewRunner", name)
		}
	}
	if _, err := NewRunner(orig, attrs, WithGrid("flare"), WithIslands(4),
		WithNiches("aggregator-sweep"), WithAdaptiveMigration(AdaptiveMigration{})); err != nil {
		t.Errorf("good heterogeneous setup rejected: %v", err)
	}
}

// TestJobSpecHeterogeneous: the wire format round-trips the new fields,
// admission-time validation mirrors run-time validation, and the Options
// bridge reproduces the direct-options run exactly.
func TestJobSpecHeterogeneous(t *testing.T) {
	spec := JobSpec{
		Dataset:      "flare",
		Rows:         60,
		Generations:  10,
		Seed:         77,
		Islands:      3,
		MigrateEvery: 5,
		Niches:       "explore-exploit",
		Adaptive:     &AdaptiveMigration{MaxEvery: 40, HighDivergence: 0.2},
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Niches != spec.Niches || back.Adaptive == nil || *back.Adaptive != *spec.Adaptive {
		t.Fatalf("spec did not round-trip: %+v", back)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}

	perIsland := JobSpec{
		Dataset: "flare", Rows: 60, Generations: 10, Seed: 77,
		PerIsland: []IslandConfig{{}, {Selection: "rank", Aggregator: "mean", MutationRate: 0.7}},
	}
	if err := perIsland.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := []JobSpec{
		{Dataset: "flare", Niches: "nope", Islands: 2},
		{Dataset: "flare", Niches: "explore-exploit"}, // niches need islands >= 2
		{Dataset: "flare", Niches: "explore-exploit", PerIsland: []IslandConfig{{}}},
		{Dataset: "flare", Islands: 3, PerIsland: []IslandConfig{{}, {}}},
		{Dataset: "flare", PerIsland: []IslandConfig{{Selection: "tournament"}}},
		{Dataset: "flare", PerIsland: []IslandConfig{{Aggregator: "median"}}},
		{Dataset: "flare", Islands: 2, MigrateEvery: 10, Adaptive: &AdaptiveMigration{MinEvery: 50, MaxEvery: 60}},
		{Dataset: "flare", Islands: 2, Adaptive: &AdaptiveMigration{LowDivergence: 0.9, HighDivergence: 0.2}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
		if _, err := s.Options(); err == nil {
			t.Errorf("bad spec %d bridged to options: %+v", i, s)
		}
	}

	// The Options bridge reproduces the direct-options run bit for bit.
	orig, err := perIsland.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := perIsland.Options()
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := Run(context.Background(), orig, perIsland.Attributes, opts...)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(context.Background(), orig, perIsland.Attributes,
		WithGrid("flare"), WithGenerations(10), WithSeed(77),
		WithPerIsland(perIsland.PerIsland...))
	if err != nil {
		t.Fatal(err)
	}
	sameRunResults(t, "spec bridge", viaSpec, direct)
}
