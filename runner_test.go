package evoprot

// Tests for the context-aware Runner API: option plumbing, the
// old-versus-new trajectory equivalence property, island determinism,
// cancellation semantics and checkpointing through the facade.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"evoprot/internal/experiment"
)

// TestRunMatchesLegacyEngineTrajectory is the redesign's acceptance
// property: a single-island run through the new ctx-first API must be
// bit-identical to the old Engine.Run() trajectory for the same seed,
// across seeds.
func TestRunMatchesLegacyEngineTrajectory(t *testing.T) {
	for _, seed := range []uint64{5, 11, 77} {
		orig, _ := GenerateDataset("flare", 80, seed)
		attrs, _ := ProtectedAttributes("flare")

		// Old path: hand-built engine, blocking Run.
		eval, err := NewEvaluator(orig, attrs, EvaluatorConfig{})
		if err != nil {
			t.Fatal(err)
		}
		idx, _ := orig.Schema().Indices(attrs...)
		pop, err := experiment.BuildPopulation(orig, idx, "flare", seed)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := NewEngine(eval, pop, EngineConfig{Generations: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := engine.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}

		// New path: ctx-first options API, one island.
		res, err := Run(context.Background(), orig, attrs,
			WithGrid("flare"),
			WithGenerations(30),
			WithSeed(seed),
			WithIslands(1),
		)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Islands[0]
		if len(ref.History) != len(got.History) {
			t.Fatalf("seed %d: history lengths %d vs %d", seed, len(ref.History), len(got.History))
		}
		for i := range ref.History {
			a, b := ref.History[i], got.History[i]
			a.EvalTime, a.TotalTime = 0, 0
			b.EvalTime, b.TotalTime = 0, 0
			if a != b {
				t.Fatalf("seed %d generation %d diverged:\nold: %+v\nnew: %+v", seed, i+1, a, b)
			}
		}
		if !ref.Best.Data.Equal(res.Best.Data) {
			t.Fatalf("seed %d: best individuals diverged", seed)
		}
		// And the deprecated wrapper rides the same path.
		legacy, err := Optimize(orig, attrs, OptimizeOptions{Dataset: "flare", Generations: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if legacy.Best.Eval.Score != ref.Best.Eval.Score || !legacy.Best.Data.Equal(ref.Best.Data) {
			t.Fatalf("seed %d: deprecated Optimize diverged from the engine trajectory", seed)
		}
	}
}

func TestRunMultiIslandDeterministicThroughFacade(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 3)
	attrs, _ := ProtectedAttributes("flare")
	once := func() *RunResult {
		res, err := Run(context.Background(), orig, attrs,
			WithGrid("flare"),
			WithGenerations(20),
			WithSeed(9),
			WithIslands(3),
			WithMigration(5, 2),
			WithTopology(Broadcast),
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := once(), once()
	if a.Best.Eval.Score != b.Best.Eval.Score || a.BestIsland != b.BestIsland || a.Migrations != b.Migrations {
		t.Fatalf("multi-island facade runs diverged: %+v vs %+v",
			[3]any{a.Best.Eval.Score, a.BestIsland, a.Migrations},
			[3]any{b.Best.Eval.Score, b.BestIsland, b.Migrations})
	}
	if !a.Best.Data.Equal(b.Best.Data) {
		t.Fatal("best protection data diverged between identical runs")
	}
	if len(a.Islands) != 3 {
		t.Fatalf("islands = %d", len(a.Islands))
	}
}

func TestRunnerCancellationPartialResult(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 7)
	attrs, _ := ProtectedAttributes("flare")
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	events := 0
	res, err := Run(ctx, orig, attrs,
		WithGrid("flare"),
		WithGenerations(1<<20),
		WithSeed(7),
		WithProgress(func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			events++
			if events == 10 {
				cancel()
			}
		}),
	)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if res == nil || res.Best == nil {
		t.Fatal("cancelled run lost its partial result")
	}
	if res.StopReason != StopCancelled {
		t.Fatalf("stop reason = %q", res.StopReason)
	}
	got := res.Islands[0]
	if len(got.History) != got.Generations || got.Generations == 0 {
		t.Fatalf("partial history %d vs generations %d", len(got.History), got.Generations)
	}
}

func TestRunnerEventChannel(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 13)
	attrs, _ := ProtectedAttributes("flare")
	ch := make(chan Event, 128)
	var wg sync.WaitGroup
	wg.Add(1)
	gens, dones := 0, 0
	go func() {
		defer wg.Done()
		for ev := range ch {
			if ev.Done {
				dones++
				continue
			}
			gens++
		}
	}()
	_, err := Run(context.Background(), orig, attrs,
		WithGrid("flare"), WithGenerations(12), WithSeed(13), WithIslands(2), WithEvents(ch))
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if gens != 24 || dones != 2 {
		t.Fatalf("streamed %d generation events and %d done events, want 24 and 2", gens, dones)
	}
}

func TestRunnerCheckpointAndResume(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 21)
	attrs, _ := ProtectedAttributes("flare")
	opts := func(gens int) []Option {
		return []Option{WithGrid("flare"), WithGenerations(gens), WithSeed(21), WithIslands(2), WithMigration(5, 2)}
	}
	r1, err := NewRunner(orig, attrs, opts(10)...)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Generation() != 0 || r1.Islands() != 2 {
		t.Fatalf("fresh runner: gen %d, islands %d", r1.Generation(), r1.Islands())
	}
	if err := r1.Snapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("snapshot before first run accepted")
	}
	if _, err := r1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(orig, attrs, opts(10)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Resume(&buf); err != nil {
		t.Fatal(err)
	}
	if r2.Generation() != 10 {
		t.Fatalf("resumed at generation %d", r2.Generation())
	}
	res, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, ir := range res.Islands {
		if len(ir.History) != 20 {
			t.Fatalf("island %d history = %d, want 20", i, len(ir.History))
		}
	}
}

func TestNewRunnerValidation(t *testing.T) {
	orig, _ := GenerateDataset("flare", 50, 17)
	attrs, _ := ProtectedAttributes("flare")
	if _, err := NewRunner(orig, attrs); err == nil {
		t.Error("missing grid and seeds accepted")
	}
	if _, err := NewRunner(orig, attrs, WithSeeds(orig)); err == nil {
		t.Error("single seed accepted")
	}
	if _, err := NewRunner(orig, []string{"GHOST"}, WithGrid("flare")); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := NewRunner(orig, attrs, WithGrid("flare"), WithAggregator("median")); err == nil {
		t.Error("unknown aggregator accepted")
	}
	if _, err := NewRunner(orig, attrs, WithGrid("flare"), WithSelection("tournament")); err == nil {
		t.Error("unknown selection accepted")
	}
	if _, err := Run(context.Background(), orig, attrs, WithGrid("flare"), WithGenerations(5), WithIslands(-1)); err == nil {
		t.Error("negative island count accepted")
	}
}

// TestRunnerResumeAfterEventsRun: a Resume following a completed Run with
// WithEvents must not re-install the already-closed channel (regression:
// panic "send on closed channel").
func TestRunnerResumeAfterEventsRun(t *testing.T) {
	orig, _ := GenerateDataset("flare", 60, 29)
	attrs, _ := ProtectedAttributes("flare")
	ch := make(chan Event, 64)
	go func() {
		for range ch {
		}
	}()
	r, err := NewRunner(orig, attrs, WithGrid("flare"), WithGenerations(5), WithSeed(29), WithEvents(ch))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Resume(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r.Generation() != 10 {
		t.Fatalf("generation after resume+run = %d, want 10", r.Generation())
	}
}

// TestRunnerCancelledDuringStartup: a context cancelled before Run must
// abort the initial-population evaluation, not just the generations.
func TestRunnerCancelledDuringStartup(t *testing.T) {
	orig, _ := GenerateDataset("flare", 60, 31)
	attrs, _ := ProtectedAttributes("flare")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, orig, attrs, WithGrid("flare"), WithGenerations(50), WithSeed(31))
	if err == nil {
		t.Fatal("cancelled startup returned nil error")
	}
	if res != nil {
		t.Fatalf("cancelled startup returned a result: %+v", res)
	}
}

func TestRunnerCustomAggregator(t *testing.T) {
	orig, _ := GenerateDataset("flare", 60, 19)
	attrs, _ := ProtectedAttributes("flare")
	res, err := Run(context.Background(), orig, attrs,
		WithGrid("flare"), WithGenerations(8), WithSeed(19), WithCustomAggregator(Mean{}))
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best.Eval
	want := (best.IL + best.DR) / 2
	if diff := best.Score - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("score %v != mean combination %v", best.Score, want)
	}
}

// TestDefaultsAreSingleSourced: with no generation/aggregator options the
// run uses core.DefaultGenerations and the max aggregation — the values no
// longer duplicated in the facade.
func TestDefaultsAreSingleSourced(t *testing.T) {
	orig, _ := GenerateDataset("flare", 50, 23)
	attrs, _ := ProtectedAttributes("flare")
	r, err := NewRunner(orig, attrs, WithGrid("flare"), WithSeed(23), WithEarlyStop(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best.Eval
	var max float64
	if best.IL > best.DR {
		max = best.IL
	} else {
		max = best.DR
	}
	if best.Score != max {
		t.Fatalf("default aggregator is not max: score %v, IL %v, DR %v", best.Score, best.IL, best.DR)
	}
	if res.Islands[0].Generations > 400 {
		t.Fatalf("default budget exceeded 400: %d", res.Islands[0].Generations)
	}
}

// TestRunnerSlowEventConsumerCheckpoint: a slow Events consumer slows a
// run down (sends are blocking by contract) but must never deadlock
// checkpoint writes — barriers and emissions are ordered, never
// entangled. The checkpoint written under backpressure must also be a
// valid resume point.
func TestRunnerSlowEventConsumerCheckpoint(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 33)
	attrs, _ := ProtectedAttributes("flare")
	ckpt := filepath.Join(t.TempDir(), "slow.ckpt")
	ch := make(chan Event) // unbuffered: every send waits on the consumer
	received := make(chan int)
	go func() {
		n := 0
		for ev := range ch {
			time.Sleep(500 * time.Microsecond) // a deliberately slow consumer
			_ = ev
			n++
		}
		received <- n
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, orig, attrs,
		WithGrid("flare"),
		WithGenerations(20),
		WithSeed(33),
		WithIslands(2),
		WithMigration(5, 2),
		WithEvents(ch),
		WithCheckpoint(ckpt, 1),
	)
	if err != nil {
		t.Fatalf("run under consumer backpressure: %v", err)
	}
	if res.StopReason != StopCompleted {
		t.Fatalf("stop reason %s", res.StopReason)
	}
	if n := <-received; n != 2*20+2 {
		t.Fatalf("consumer saw %d events, want %d", n, 2*20+2)
	}
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatalf("checkpoint missing after slow-consumer run: %v", err)
	}
	defer f.Close()
	meta, err := PeekCheckpoint(f)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Islands != 2 || meta.Generation != 20 {
		t.Fatalf("checkpoint meta %+v, want 2 islands at generation 20", meta)
	}
	r, err := NewRunner(orig, attrs, WithGrid("flare"), WithGenerations(10), WithSeed(33), WithIslands(2), WithMigration(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Resume(f); err != nil {
		t.Fatalf("checkpoint written under backpressure does not resume: %v", err)
	}
}

// TestRunnerCheckpointFailureSurfaced: mid-run checkpoint write failures
// must not vanish (regression: they were discarded with `_ =`). They
// surface twice — live on the event feed as Island -1 events, and in the
// final error join as ErrCheckpoint.
func TestRunnerCheckpointFailureSurfaced(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 41)
	attrs, _ := ProtectedAttributes("flare")
	// A path whose directory does not exist: every write fails.
	ckpt := filepath.Join(t.TempDir(), "missing-dir", "x.ckpt")
	var (
		mu       sync.Mutex
		ckptEvts int
		seqs     []uint64
	)
	res, err := Run(context.Background(), orig, attrs,
		WithGrid("flare"),
		WithGenerations(10),
		WithSeed(41),
		WithIslands(2),
		WithMigration(5, 2),
		WithCheckpoint(ckpt, 1),
		WithProgress(func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			seqs = append(seqs, ev.Seq)
			if ev.Err != "" {
				if ev.Island != -1 {
					t.Errorf("checkpoint-failure event carries island %d, want -1", ev.Island)
				}
				ckptEvts++
			}
		}),
	)
	if res == nil {
		t.Fatal("run result discarded on checkpoint failure")
	}
	if err == nil {
		t.Fatal("checkpoint write failures silently discarded")
	}
	if !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("error %v does not wrap ErrCheckpoint", err)
	}
	if ckptEvts == 0 {
		t.Fatal("no checkpoint-failure events on the feed")
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("event %d has seq %d; injected failure events must share the numbering", i, s)
		}
	}
	if res.StopReason != StopCompleted {
		t.Fatalf("run did not complete despite failing checkpoints: %s", res.StopReason)
	}
}

// TestResumeResetsCheckpointCadence: Resume must re-anchor the periodic
// checkpoint counter to the resumed generation (regression: a Runner
// that had already progressed further kept its old high-water mark, so
// the resumed leg ran without mid-run checkpoints until it caught up).
func TestResumeResetsCheckpointCadence(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 55)
	attrs, _ := ProtectedAttributes("flare")
	opts := func(gens int) []Option {
		return []Option{WithGrid("flare"), WithGenerations(gens), WithSeed(55),
			WithCheckpoint(filepath.Join(t.TempDir(), "c.ckpt"), 5), WithMigration(5, 0)}
	}
	r0, err := NewRunner(orig, attrs, opts(10)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r0.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var early bytes.Buffer
	if err := r0.Snapshot(&early); err != nil {
		t.Fatal(err)
	}

	r1, err := NewRunner(orig, attrs, opts(40)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r1.lastCkpt != 40 {
		t.Fatalf("after a 40-generation run lastCkpt = %d", r1.lastCkpt)
	}
	if err := r1.Resume(bytes.NewReader(early.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r1.lastCkpt != 10 {
		t.Fatalf("after resuming a generation-10 snapshot lastCkpt = %d, want 10", r1.lastCkpt)
	}
}
