package evoprot

import (
	"evoprot/internal/core"
	"evoprot/internal/textplot"
)

// RenderEvolution draws the max/mean/min score trajectories as a text
// chart — the same view as the paper's evolution figures.
func RenderEvolution(max, mean, min []float64, width, height int) string {
	return textplot.Lines([]textplot.LineSeries{
		{Name: "max", Marker: 'M', Values: max},
		{Name: "mean", Marker: '+', Values: mean},
		{Name: "min", Marker: '_', Values: min},
	}, width, height, "score evolution", "generation", "score")
}

// RenderDispersion draws a population's (IL, DR) pairs as a text scatter —
// the same view as the paper's dispersion figures.
func RenderDispersion(pop []*core.Individual, width, height int) string {
	points := make([]textplot.Point, len(pop))
	for i, ind := range pop {
		points[i] = textplot.Point{X: ind.Eval.IL, Y: ind.Eval.DR}
	}
	return textplot.Scatter([]textplot.ScatterSeries{
		{Name: "population", Marker: '*', Points: points},
	}, width, height, "population dispersion", "information loss", "DR")
}

// RenderFront draws a Pareto-mode population against its non-dominated
// front: the whole population as background scatter, the front's points
// highlighted — the trade-off curve a Pareto run is pushing outward.
func RenderFront(pop []*core.Individual, front []Pair, width, height int) string {
	popPoints := make([]textplot.Point, len(pop))
	for i, ind := range pop {
		popPoints[i] = textplot.Point{X: ind.Eval.IL, Y: ind.Eval.DR}
	}
	frontPoints := make([]textplot.Point, len(front))
	for i, p := range front {
		frontPoints[i] = textplot.Point{X: p.IL, Y: p.DR}
	}
	return textplot.Scatter([]textplot.ScatterSeries{
		{Name: "population", Marker: '.', Points: popPoints},
		{Name: "front", Marker: '@', Points: frontPoints},
	}, width, height, "pareto front", "information loss", "DR")
}

// RenderPairs draws two labelled (IL, DR) point sets — e.g. an initial and
// a final population — on one scatter.
func RenderPairs(initial, final []Pair, width, height int) string {
	toPoints := func(pairs []Pair) []textplot.Point {
		out := make([]textplot.Point, len(pairs))
		for i, p := range pairs {
			out[i] = textplot.Point{X: p.IL, Y: p.DR}
		}
		return out
	}
	return textplot.Scatter([]textplot.ScatterSeries{
		{Name: "initial", Marker: 'o', Points: toPoints(initial)},
		{Name: "final", Marker: '*', Points: toPoints(final)},
	}, width, height, "population dispersion", "information loss", "DR")
}
