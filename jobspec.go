package evoprot

// JobSpec is the JSON-expressible description of one optimization job:
// the functional-option surface of Run/NewRunner as data, and the wire
// format of the evoprotd job service (internal/serve, cmd/evoprotd).
// Campaign tooling builds specs, ships them over HTTP, and the service
// turns them back into options with the Options bridge.

import (
	"fmt"
	"strings"

	"evoprot/internal/core"
	"evoprot/internal/islands"
)

// JobSpec describes one optimization job. Exactly one dataset source must
// be set: a built-in generator name (Dataset), an inline CSV upload
// (DatasetCSV), or a server-side path (DatasetPath). Zero values of the
// remaining fields select the paper's defaults, mirroring the option
// functions they bridge to.
type JobSpec struct {
	// Dataset names a built-in synthetic dataset: housing, german, flare
	// or adult.
	Dataset string `json:"dataset,omitempty"`
	// Rows scales a built-in dataset (0 = the paper's record count).
	Rows int `json:"rows,omitempty"`
	// DatasetCSV is an inline CSV upload of the original microdata.
	DatasetCSV string `json:"dataset_csv,omitempty"`
	// DatasetPath is a server-side CSV path; services may refuse it.
	DatasetPath string `json:"dataset_path,omitempty"`
	// Attributes names the protected attributes. Optional for built-in
	// datasets (defaulting to the paper's protected set), required for
	// CSV sources. Materialize fills the resolved names in.
	Attributes []string `json:"attributes,omitempty"`
	// Grid names the masking grid seeding the initial population;
	// Materialize defaults it to Dataset for built-ins and "flare"
	// otherwise.
	Grid string `json:"grid,omitempty"`
	// Aggregator is "mean" (Eq. 1), "max" (Eq. 2, default), "euclidean"
	// or "weighted:<w>".
	Aggregator string `json:"aggregator,omitempty"`
	// Objective selects the selection objective: "scalar" (aggregated
	// single-score search, the default) or "pareto" (NSGA-II non-dominated
	// search over the raw (IL, DR) pairs; results and events carry the
	// front and its hypervolume).
	Objective string `json:"objective,omitempty"`
	// ParetoRef sets the hypervolume reference point of Pareto-mode runs;
	// nil selects the (100, 100) corner of the measures' natural range.
	// Both components must be finite and positive.
	ParetoRef *ParetoRef `json:"pareto_ref,omitempty"`
	// MLTarget, when set, appends the machine-learning-utility measure to
	// the information-loss battery: a naive Bayes proxy classifier
	// predicting this attribute, scoring the held-out accuracy drop of a
	// model trained on the protected file. Disables delta and batch
	// evaluation speedups (the measure is not incremental).
	MLTarget string `json:"ml_target,omitempty"`
	// Generations is each island's total evolution budget
	// (0 = DefaultGenerations).
	Generations int `json:"generations,omitempty"`
	// Seed fixes the run seed; the whole parallel run reproduces from it.
	Seed uint64 `json:"seed"`
	// Workers parallelizes initial-population evaluation (0 = sequential).
	Workers int `json:"workers,omitempty"`
	// EvalWorkers parallelizes generation-batch offspring evaluation (0
	// inherits Workers, negative forces sequential). Identical results at
	// any width.
	EvalWorkers int `json:"eval_workers,omitempty"`
	// EarlyStop stops an island after N stagnant generations (0 = off).
	EarlyStop int `json:"early_stop,omitempty"`
	// Selection names the reproduction-selection policy
	// ("inverse-proportional" default, "raw-proportional", "rank",
	// "uniform").
	Selection string `json:"selection,omitempty"`
	// Islands evolves N islands concurrently (0 or 1 = single island).
	Islands int `json:"islands,omitempty"`
	// MigrateEvery is the migration epoch length in generations (0 = 25).
	MigrateEvery int `json:"migrate_every,omitempty"`
	// Migrants is how many elites each island emits per migration (0 = 2).
	Migrants int `json:"migrants,omitempty"`
	// Topology is the migration topology: "ring" (default) or "broadcast".
	Topology string `json:"topology,omitempty"`
	// PerIsland specializes islands: entry i overrides engine knobs for
	// island i (zero-valued fields inherit the job's shared setup). When
	// set without Islands, the job runs one island per entry; with
	// Islands, the lengths must match. Mutually exclusive with Niches.
	PerIsland []IslandConfig `json:"per_island,omitempty"`
	// Niches names a built-in heterogeneity preset spread across the
	// islands: "explore-exploit", "selection-sweep", "aggregator-sweep" or
	// "scalar-pareto". Requires Islands >= 2 (one island would make every
	// preset a silent no-op). Mutually exclusive with PerIsland.
	Niches string `json:"niches,omitempty"`
	// Adaptive, when present, enables divergence-driven adaptive migration
	// within its bounds (zero-valued bounds select defaults derived from
	// the schedule).
	Adaptive *AdaptiveMigration `json:"adaptive,omitempty"`
	// DisableDelta turns off incremental offspring evaluation — identical
	// results, much slower; a benchmarking knob.
	DisableDelta bool `json:"disable_delta,omitempty"`
	// LazyPrepare skips eager delta-preparation of the initial population —
	// a memory-pressure knob; identical results.
	LazyPrepare bool `json:"lazy_prepare,omitempty"`
	// Priority orders service-side scheduling (0-9, higher runs first; 0
	// is the default). It is a service concern, not an engine option: a
	// high-priority submission may preempt lower-priority running work,
	// and the result is unaffected either way.
	Priority int `json:"priority,omitempty"`
}

// Validate checks the spec's internal consistency: exactly one dataset
// source, attributes present for CSV sources, and every symbolic name
// resolvable. It does not touch the filesystem or generate data.
func (s *JobSpec) Validate() error {
	sources := 0
	for _, set := range []bool{s.Dataset != "", s.DatasetCSV != "", s.DatasetPath != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("evoprot: job spec needs exactly one of dataset, dataset_csv or dataset_path, got %d", sources)
	}
	if s.Dataset == "" && len(s.Attributes) == 0 {
		return fmt.Errorf("evoprot: job spec needs attributes for CSV dataset sources")
	}
	if s.Aggregator != "" {
		if _, err := AggregatorByName(s.Aggregator); err != nil {
			return err
		}
	}
	if _, err := core.SelectionByName(s.Selection); err != nil {
		return err
	}
	if _, err := TopologyByName(s.Topology); err != nil {
		return err
	}
	if s.Grid != "" {
		if _, err := PaperComposition(s.Grid); err != nil {
			return err
		}
	}
	if s.Generations < 0 || s.Islands < 0 || s.Rows < 0 || s.Workers < 0 ||
		s.EarlyStop < 0 || s.MigrateEvery < 0 || s.Migrants < 0 {
		return fmt.Errorf("evoprot: job spec counts must be non-negative")
	}
	if s.Priority < 0 || s.Priority > 9 {
		return fmt.Errorf("evoprot: job spec priority must be 0..9, got %d", s.Priority)
	}
	// Heterogeneity and adaptive migration are validated by building the
	// exact island configuration the job would run — admission rejects
	// whatever run time would reject, before any evaluation work happens.
	icfg, err := s.islandsConfig()
	if err != nil {
		return err
	}
	return icfg.Validate()
}

// refPair maps an optional wire reference point onto the engine's Pair
// (zero = "use the default reference").
func refPair(r *ParetoRef) Pair {
	if r == nil {
		return Pair{}
	}
	return Pair{IL: r.IL, DR: r.DR}
}

// islandsConfig mirrors the spec onto the islands.Config the job would
// execute with, through the same resolveIslandSetup the functional
// options use — the single source of truth for admission-time validation
// of heterogeneous and adaptive jobs.
func (s *JobSpec) islandsConfig() (islands.Config, error) {
	sel, _ := core.SelectionByName(s.Selection) // validated by the caller
	topo, _ := TopologyByName(s.Topology)
	nIslands, perIsland, adaptive, err := resolveIslandSetup(s.Islands, s.PerIsland, s.Niches, s.Adaptive)
	if err != nil {
		return islands.Config{}, err
	}
	return islands.Config{
		Islands:      nIslands,
		MigrateEvery: s.MigrateEvery,
		Migrants:     s.Migrants,
		Topology:     topo,
		PerIsland:    perIsland,
		Adaptive:     adaptive,
		Engine: core.Config{
			Generations:         s.Generations,
			Selection:           sel,
			Objective:           s.Objective,
			ParetoRef:           refPair(s.ParetoRef),
			NoImprovementWindow: s.EarlyStop,
			InitWorkers:         s.Workers,
			EvalWorkers:         s.EvalWorkers,
			DisableDelta:        s.DisableDelta,
			LazyPrepare:         s.LazyPrepare,
		},
	}, nil
}

// Materialize validates the spec, loads or generates the original dataset
// it names, and normalizes the spec in place: Attributes gains the
// resolved protected-attribute names and Grid its effective masking grid,
// so a persisted spec can later rebuild the identical run without
// re-deriving defaults.
func (s *JobSpec) Materialize() (*Dataset, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var (
		orig *Dataset
		err  error
	)
	switch {
	case s.Dataset != "":
		orig, err = GenerateDataset(s.Dataset, s.Rows, s.Seed)
		if err != nil {
			return nil, err
		}
		if len(s.Attributes) == 0 {
			if s.Attributes, err = ProtectedAttributes(s.Dataset); err != nil {
				return nil, err
			}
		}
		if s.Grid == "" {
			s.Grid = s.Dataset
		}
	case s.DatasetCSV != "":
		orig, err = ReadCSV(strings.NewReader(s.DatasetCSV))
		if err != nil {
			return nil, err
		}
	default:
		orig, err = LoadCSV(s.DatasetPath)
		if err != nil {
			return nil, err
		}
	}
	if s.Grid == "" {
		s.Grid = "flare" // the 3-attribute grid with the smallest domains
	}
	if _, err := orig.Schema().Indices(s.Attributes...); err != nil {
		return nil, err
	}
	if s.MLTarget != "" {
		if _, err := orig.Schema().Indices(s.MLTarget); err != nil {
			return nil, fmt.Errorf("evoprot: ml_target: %w", err)
		}
	}
	return orig, nil
}

// Budget returns the spec's total per-island generation budget with the
// default applied — the number a service subtracts a resumed checkpoint's
// generation from.
func (s *JobSpec) Budget() int {
	if s.Generations > 0 {
		return s.Generations
	}
	return DefaultGenerations
}

// Options bridges the spec to the functional options of Run/NewRunner.
// Call Materialize first when the spec relies on defaults it fills in
// (attributes, grid); Options itself never touches the filesystem.
func (s *JobSpec) Options() ([]Option, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	topo, err := TopologyByName(s.Topology)
	if err != nil {
		return nil, err
	}
	opts := []Option{WithSeed(s.Seed), WithTopology(topo)}
	if s.Grid != "" {
		opts = append(opts, WithGrid(s.Grid))
	}
	if s.Aggregator != "" {
		opts = append(opts, WithAggregator(s.Aggregator))
	}
	if s.Objective != "" {
		opts = append(opts, WithObjective(s.Objective))
	}
	if s.ParetoRef != nil {
		opts = append(opts, WithParetoRef(s.ParetoRef.IL, s.ParetoRef.DR))
	}
	if s.MLTarget != "" {
		opts = append(opts, WithMLUtility(s.MLTarget))
	}
	if s.Generations > 0 {
		opts = append(opts, WithGenerations(s.Generations))
	}
	if s.Workers > 0 {
		opts = append(opts, WithWorkers(s.Workers))
	}
	if s.EvalWorkers != 0 {
		opts = append(opts, WithEvalWorkers(s.EvalWorkers))
	}
	if s.EarlyStop > 0 {
		opts = append(opts, WithEarlyStop(s.EarlyStop))
	}
	if s.Selection != "" {
		opts = append(opts, WithSelection(s.Selection))
	}
	if s.Islands > 0 {
		opts = append(opts, WithIslands(s.Islands))
	}
	if s.MigrateEvery > 0 || s.Migrants > 0 {
		opts = append(opts, WithMigration(s.MigrateEvery, s.Migrants))
	}
	if len(s.PerIsland) > 0 {
		opts = append(opts, WithPerIsland(s.PerIsland...))
	}
	if s.Niches != "" {
		opts = append(opts, WithNiches(s.Niches))
	}
	if s.Adaptive != nil {
		opts = append(opts, WithAdaptiveMigration(*s.Adaptive))
	}
	if s.DisableDelta {
		opts = append(opts, WithoutDelta())
	}
	if s.LazyPrepare {
		opts = append(opts, WithLazyPrepare())
	}
	return opts, nil
}
