package evoprot

// Cross-module integration tests: the full pipeline (datagen -> protection
// grids -> measures -> evolution -> reports) exercised end to end, checking
// the paper's qualitative claims at reduced scale.

import (
	"bytes"
	"runtime"
	"sort"
	"testing"

	"evoprot/internal/dataset"
	"evoprot/internal/experiment"
	"evoprot/internal/infoloss"
)

func integrationSpec(ds, agg string, remove float64) experiment.Spec {
	return experiment.Spec{
		Dataset:        ds,
		Rows:           150,
		Aggregator:     agg,
		RemoveBestFrac: remove,
		Generations:    60,
		Seed:           424242,
		InitWorkers:    runtime.GOMAXPROCS(0),
	}
}

// TestIntegrationOptimizationImproves: on every dataset and under both
// aggregations, evolution must not worsen any population statistic and
// must improve the mean (the paper's universal observation).
func TestIntegrationOptimizationImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, ds := range DatasetNames() {
		for _, agg := range []string{"mean", "max"} {
			rep, err := experiment.Run(integrationSpec(ds, agg, 0))
			if err != nil {
				t.Fatalf("%s/%s: %v", ds, agg, err)
			}
			if rep.FinalMean > rep.InitMean+1e-9 {
				t.Errorf("%s/%s: mean worsened %.2f -> %.2f", ds, agg, rep.InitMean, rep.FinalMean)
			}
			if rep.FinalMin > rep.InitMin+1e-9 {
				t.Errorf("%s/%s: min worsened %.2f -> %.2f", ds, agg, rep.InitMin, rep.FinalMin)
			}
			if rep.FinalMax > rep.InitMax+1e-9 {
				t.Errorf("%s/%s: max worsened %.2f -> %.2f", ds, agg, rep.InitMax, rep.FinalMax)
			}
			if rep.ImpMean <= 0 {
				t.Errorf("%s/%s: no mean improvement (%.2f%%)", ds, agg, rep.ImpMean)
			}
		}
	}
}

// topBalance returns the mean |IL-DR| of the k best pairs under the given
// aggregator — the balance of the population's optimized frontier.
func topBalance(pairs []Pair, agg Aggregator, k int) float64 {
	sorted := make([]Pair, len(pairs))
	copy(sorted, pairs)
	sort.Slice(sorted, func(i, j int) bool {
		return agg.Combine(sorted[i].IL, sorted[i].DR) < agg.Combine(sorted[j].IL, sorted[j].DR)
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return experiment.Balance(sorted[:k])
}

// TestIntegrationMaxBalancesBetterThanMean: the paper's §3.2 conclusion —
// under the max aggregation the optimized individuals concentrate around
// balanced (IL ≈ DR) pairs, while mean tolerates unbalanced winners. The
// effect lives at the top of the population: the mean aggregation happily
// keeps a 0/40 individual at score 20, the max aggregation scores it 40.
// Checked on all four datasets.
func TestIntegrationMaxBalancesBetterThanMean(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	spec := func(ds, agg string) experiment.Spec {
		s := integrationSpec(ds, agg, 0)
		s.Generations = 300 // the contrast needs real optimization pressure
		return s
	}
	for _, ds := range DatasetNames() {
		mean, err := experiment.Run(spec(ds, "mean"))
		if err != nil {
			t.Fatal(err)
		}
		max, err := experiment.Run(spec(ds, "max"))
		if err != nil {
			t.Fatal(err)
		}
		bMean := topBalance(mean.Final, Mean{}, 20)
		bMax := topBalance(max.Final, Max{}, 20)
		t.Logf("%s: top-20 balance mean-fitness=%.2f max-fitness=%.2f", ds, bMean, bMax)
		if bMax > bMean {
			t.Errorf("%s: max-fitness frontier less balanced (%.2f) than mean's (%.2f)", ds, bMax, bMean)
		}
	}
}

// TestIntegrationRobustnessRecovery: the §3.3 claim — runs without the
// best 5%/10% individuals end within a few points of the full run's
// minimum score.
func TestIntegrationRobustnessRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	full, err := experiment.Run(integrationSpec("flare", "max", 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, remove := range []float64{0.05, 0.10} {
		rob, err := experiment.Run(integrationSpec("flare", "max", remove))
		if err != nil {
			t.Fatal(err)
		}
		gap := rob.FinalMin - full.FinalMin
		t.Logf("remove %.0f%%: min %.2f vs full %.2f (gap %.2f)", remove*100, rob.FinalMin, full.FinalMin, gap)
		if gap < 0 {
			continue // beat the full run: fine (stochasticity, like the paper's 10% beating its 5%)
		}
		// The paper reports gaps of ~1.1-1.3 points at full scale; allow a
		// loose bound at this reduced scale.
		if gap > 12 {
			t.Errorf("remove %.0f%%: gap %.2f points, robustness failed", remove*100, gap)
		}
	}
}

// TestIntegrationMaskedFilesRemainLoadable: every individual surviving an
// evolution run must serialize to CSV and reload identically against the
// original schema — protections are publishable files, not just in-memory
// chromosomes.
func TestIntegrationMaskedFilesRemainLoadable(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	orig, _ := GenerateDataset("german", 100, 9)
	attrs, _ := ProtectedAttributes("german")
	res, err := Optimize(orig, attrs, OptimizeOptions{
		Dataset:     "german",
		Generations: 30,
		Seed:        9,
		Workers:     runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ind := range res.Population[:10] {
		var buf bytes.Buffer
		if err := ind.Data.WriteCSV(&buf); err != nil {
			t.Fatalf("individual %d: %v", i, err)
		}
		back, err := dataset.ReadCSVWithSchema(bytes.NewReader(buf.Bytes()), orig.Schema())
		if err != nil {
			t.Fatalf("individual %d: %v", i, err)
		}
		if !ind.Data.Equal(back) {
			t.Fatalf("individual %d: CSV round trip changed the protection", i)
		}
	}
}

// TestIntegrationEvaluationConsistency: the evaluator must assign exactly
// the same evaluation to an individual before and after an engine run
// (cached Eval fields never drift from the data they describe).
func TestIntegrationEvaluationConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	orig, _ := GenerateDataset("adult", 120, 31)
	attrs, _ := ProtectedAttributes("adult")
	eval, err := NewEvaluator(orig, attrs, EvaluatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(orig, attrs, OptimizeOptions{
		Dataset:     "adult",
		Generations: 40,
		Seed:        31,
		Workers:     runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ind := range res.Population {
		ev, err := eval.Evaluate(ind.Data)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Score != ind.Eval.Score || ev.IL != ind.Eval.IL || ev.DR != ind.Eval.DR {
			t.Fatalf("individual %d: cached eval (%.4f,%.4f,%.4f) != recomputed (%.4f,%.4f,%.4f)",
				i, ind.Eval.IL, ind.Eval.DR, ind.Eval.Score, ev.IL, ev.DR, ev.Score)
		}
	}
}

// TestIntegrationMeasureMethodMatrix pins the qualitative signature every
// masking family leaves on every measure — the cross-module behaviour the
// whole fitness function rests on.
func TestIntegrationMeasureMethodMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	orig, _ := GenerateDataset("flare", 300, 55)
	attrNames, _ := ProtectedAttributes("flare")
	attrs, _ := orig.Schema().Indices(attrNames...)
	eval, err := NewEvaluator(orig, attrNames, EvaluatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	identity, err := eval.Evaluate(orig)
	if err != nil {
		t.Fatal(err)
	}

	mask := func(spec string) Evaluation {
		t.Helper()
		m, err := ParseMethod(spec)
		if err != nil {
			t.Fatal(err)
		}
		masked, err := m.Protect(orig, attrs, newTestRNG())
		if err != nil {
			t.Fatal(err)
		}
		ev, err := eval.Evaluate(masked)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}

	// Rank swapping permutes within columns: one-way contingency tables
	// are *exactly* preserved (the defining invariant), while the 2-way
	// structure and per-cell values change.
	rsMethod, _ := ParseMethod("rankswap:p=8")
	rsMasked, err := rsMethod.Protect(orig, attrs, newTestRNG())
	if err != nil {
		t.Fatal(err)
	}
	oneWay := infoloss.CTBIL{MaxDim: 1}
	if got := oneWay.Loss(orig, rsMasked, attrs); got != 0 {
		t.Errorf("rank swapping: 1-way CTBIL = %v, want exactly 0", got)
	}
	rs, err := eval.Evaluate(rsMasked)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ILParts["DBIL"] <= 0 {
		t.Error("rank swapping: DBIL should be positive")
	}
	if rs.ILParts["CTBIL"] <= 0 {
		t.Error("rank swapping: full CTBIL should be positive (2-way structure broken)")
	}

	// Near-lossless PRAM: every measure close to the identity evaluation.
	gentle := mask("pram:theta=0.97")
	if gentle.IL > 5 {
		t.Errorf("pram(0.97): IL = %.2f, want < 5", gentle.IL)
	}
	if gentle.DR < identity.DR-15 {
		t.Errorf("pram(0.97): DR = %.2f, identity = %.2f; should stay close", gentle.DR, identity.DR)
	}

	// Saturated recoding collapses every attribute to one category: the
	// masked file reveals nothing (EBIL at its ceiling for the data's
	// entropy, linkage at the random-guess floor).
	flat := mask("recode:depth=50")
	if flat.ILParts["EBIL"] < 30 {
		t.Errorf("saturated recoding: EBIL = %.2f, want large", flat.ILParts["EBIL"])
	}
	if flat.DRParts["DBRL"] > 5 {
		t.Errorf("saturated recoding: DBRL = %.2f, want near random guess", flat.DRParts["DBRL"])
	}

	// Top coding only touches the upper tail: information loss well below
	// a full scramble's, risk well above the saturated recode's.
	tc := mask("top:q=0.15")
	if tc.IL >= flat.IL {
		t.Errorf("top coding IL %.2f should be below saturation %.2f", tc.IL, flat.IL)
	}
	if tc.DR <= flat.DR {
		t.Errorf("top coding DR %.2f should exceed saturation %.2f", tc.DR, flat.DR)
	}

	// Microaggregation k=2 vs k=12: IL grows, DR shrinks — the knob moves
	// along the trade-off curve in the expected direction.
	k2, k12 := mask("micro:k=2"), mask("micro:k=12")
	if k2.IL >= k12.IL {
		t.Errorf("microaggregation IL: k=2 %.2f >= k=12 %.2f", k2.IL, k12.IL)
	}
	if k2.DR <= k12.DR {
		t.Errorf("microaggregation DR: k=2 %.2f <= k=12 %.2f", k2.DR, k12.DR)
	}
}

// TestIntegrationReportsAreRenderable: every figure artifact of
// cmd/experiments renders and exports for each experiment family.
func TestIntegrationReportsAreRenderable(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	specs := []experiment.Spec{
		integrationSpec("adult", "mean", 0),
		integrationSpec("flare", "max", 0.05),
	}
	for _, spec := range specs {
		rep, err := experiment.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if rep.DispersionPlot(60, 16) == "" || rep.EvolutionPlot(60, 16) == "" || rep.Summary() == "" {
			t.Fatalf("%s: empty rendering", spec.Name())
		}
		var buf bytes.Buffer
		if err := rep.WriteDispersionCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteEvolutionCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty CSV export", spec.Name())
		}
	}
}
