package evoprot

// Tests for the JobSpec→options bridge: validation, dataset
// materialization and the equivalence of a spec-driven run with the same
// run assembled from explicit options.

import (
	"context"
	"strings"
	"testing"
)

func TestJobSpecValidation(t *testing.T) {
	bad := map[string]JobSpec{
		"no source":        {},
		"two sources":      {Dataset: "flare", DatasetCSV: "A\nx\n"},
		"csv needs attrs":  {DatasetCSV: "A\nx\n"},
		"bad aggregator":   {Dataset: "flare", Aggregator: "median"},
		"bad selection":    {Dataset: "flare", Selection: "tournament"},
		"bad topology":     {Dataset: "flare", Topology: "star"},
		"bad grid":         {Dataset: "flare", Grid: "census"},
		"negative gens":    {Dataset: "flare", Generations: -1},
		"negative islands": {Dataset: "flare", Islands: -2},
	}
	for name, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := JobSpec{Dataset: "flare", Generations: 50, Islands: 2, Topology: "broadcast"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestJobSpecMaterializeNormalizes(t *testing.T) {
	spec := JobSpec{Dataset: "german", Rows: 60, Seed: 5}
	orig, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if orig.Rows() != 60 {
		t.Fatalf("rows = %d, want 60", orig.Rows())
	}
	wantAttrs, _ := ProtectedAttributes("german")
	if len(spec.Attributes) != len(wantAttrs) {
		t.Fatalf("attributes not normalized: %v", spec.Attributes)
	}
	if spec.Grid != "german" {
		t.Fatalf("grid not normalized: %q", spec.Grid)
	}

	// Inline CSV source: round-trip a generated dataset through its CSV
	// form and protect named attributes.
	gen, _ := GenerateDataset("flare", 50, 9)
	var sb strings.Builder
	if err := gen.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	attrs, _ := ProtectedAttributes("flare")
	csvSpec := JobSpec{DatasetCSV: sb.String(), Attributes: attrs, Seed: 9}
	csvOrig, err := csvSpec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if csvOrig.Rows() != 50 {
		t.Fatalf("csv rows = %d, want 50", csvOrig.Rows())
	}
	if csvSpec.Grid != "flare" {
		t.Fatalf("csv grid default = %q, want flare", csvSpec.Grid)
	}

	// Unknown attribute names must fail at materialization, not at run
	// time on a worker.
	badSpec := JobSpec{DatasetCSV: sb.String(), Attributes: []string{"nope"}, Seed: 9}
	if _, err := badSpec.Materialize(); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

// TestJobSpecOptionsEquivalence: a spec-driven run reproduces the run its
// options describe, bit for bit.
func TestJobSpecOptionsEquivalence(t *testing.T) {
	spec := JobSpec{
		Dataset:      "flare",
		Rows:         80,
		Generations:  20,
		Seed:         31,
		Islands:      2,
		MigrateEvery: 5,
		Topology:     "broadcast",
		Aggregator:   "mean",
	}
	orig, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), orig, spec.Attributes, opts...)
	if err != nil {
		t.Fatal(err)
	}

	refOrig, _ := GenerateDataset("flare", 80, 31)
	attrs, _ := ProtectedAttributes("flare")
	want, err := Run(context.Background(), refOrig, attrs,
		WithGrid("flare"),
		WithGenerations(20),
		WithSeed(31),
		WithIslands(2),
		WithMigration(5, 0),
		WithTopology(Broadcast),
		WithAggregator("mean"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.Eval.Score != want.Best.Eval.Score {
		t.Fatalf("spec run best %.6f, option run best %.6f", got.Best.Eval.Score, want.Best.Eval.Score)
	}
	if !got.Best.Data.Equal(want.Best.Data) {
		t.Fatal("spec-driven run diverged from the explicit-option run")
	}
	if spec.Budget() != 20 {
		t.Fatalf("Budget() = %d, want 20", spec.Budget())
	}
	if (&JobSpec{Dataset: "flare"}).Budget() != DefaultGenerations {
		t.Fatalf("default Budget() = %d, want %d", (&JobSpec{Dataset: "flare"}).Budget(), DefaultGenerations)
	}
}
