// Package evoprot is an evolutionary optimizer for categorical data
// protection: it reproduces, as a reusable Go library, the system of
// Marés & Torra, "An Evolutionary Optimization Approach for Categorical
// Data Protection" (PAIS/EDBT 2012).
//
// # What it does
//
// Statistical agencies publish categorical microdata after masking it.
// Every masking trades information loss (IL — how much analytic structure
// the masked file loses) against disclosure risk (DR — how many records an
// intruder can still re-identify). evoprot takes a population of masked
// versions of one file — produced by classic methods such as
// microaggregation, rank swapping, PRAM, global recoding and top/bottom
// coding — and evolves them with a genetic algorithm whose fitness
// aggregates IL and DR, producing protections with a better trade-off than
// any seed.
//
// # Quick start
//
// The primary entry point is the context-aware Runner API: Run (or
// NewRunner + Runner.Run) with functional options. Cancellation and
// deadlines are honoured between generations, and an interrupted run still
// returns its best-so-far result with the stop reason recorded.
//
//	orig, _ := evoprot.GenerateDataset("adult", 0, 42)      // or LoadCSV
//	attrs, _ := evoprot.ProtectedAttributes("adult")        // EDUCATION, MARITAL-STATUS, OCCUPATION
//	res, _ := evoprot.Run(ctx, orig, attrs,
//		evoprot.WithGrid("adult"),                          // seed the paper's masking grid
//		evoprot.WithAggregator("max"),                      // Eq. 2: Score = max(IL, DR)
//		evoprot.WithGenerations(400),
//		evoprot.WithSeed(42),
//	)
//	best := res.Best
//	fmt.Printf("best protection: IL=%.2f DR=%.2f score=%.2f (stop: %s)\n",
//		best.Eval.IL, best.Eval.DR, best.Eval.Score, res.StopReason)
//
// Lower scores are better; 0 would be a protection that loses nothing and
// discloses nothing.
//
// # Island-model parallel evolution
//
// WithIslands(n) evolves n islands concurrently — one engine per
// goroutine over the shared evaluator — exchanging elite individuals every
// WithMigration(every, migrants) generations under a Ring or Broadcast
// topology. Island 0 uses the top-level seed verbatim (a 1-island run is
// bit-identical to a plain engine run); islands i > 0 derive independent
// seeds, and migration happens at coordinator barriers, so a fixed seed
// reproduces the full parallel run deterministically regardless of
// scheduling. Progress streams as Events — callback (WithProgress) or
// channel (WithEvents) — carrying the island id, and one Done event per
// island carries its stop reason. Multi-island checkpoints
// (WithCheckpoint, Runner.Resume) persist every island's engine state.
//
//	res, _ := evoprot.Run(ctx, orig, attrs,
//		evoprot.WithGrid("flare"),
//		evoprot.WithIslands(4),
//		evoprot.WithMigration(25, 2),
//		evoprot.WithTopology(evoprot.Ring),
//		evoprot.WithProgress(func(ev evoprot.Event) {
//			log.Printf("island %d gen %d best %.2f", ev.Island, ev.Stats.Gen, ev.Stats.Min)
//		}),
//	)
//
// See examples/quickstart and examples/islands for runnable tours.
//
// # Heterogeneous islands and adaptive migration
//
// Islands need not run identical engines. WithPerIsland overlays
// per-island overrides — selection policy, mutation rate, leader
// fraction, crossover cut count, even a per-island fitness aggregation —
// onto the shared configuration (zero-valued fields inherit), and
// WithNiches spreads a ready-made preset across the islands:
// "explore-exploit" runs exploitative and explorative searches side by
// side, "selection-sweep" varies the selection pressure, and
// "aggregator-sweep" has each island optimize a different point of the
// risk/information-loss trade-off while migration exchanges protections
// across the biases. Migrants are re-scored under the receiving island's
// aggregation on arrival.
//
// WithAdaptiveMigration ties the migration schedule to the populations
// themselves: at every barrier the coordinator computes a cheap
// cross-island divergence statistic (the coefficient of variation of the
// islands' mean scores) and widens the migration interval when the
// islands have converged — less coordination for the same mixing — or
// narrows it and exchanges more migrants when they strongly diverge, all
// within configured bounds. Each barrier reports an EpochInfo on an
// Island -1 event.
//
//	res, _ := evoprot.Run(ctx, orig, attrs,
//		evoprot.WithGrid("flare"),
//		evoprot.WithIslands(4),
//		evoprot.WithNiches("explore-exploit"),
//		evoprot.WithMigration(25, 2), // the controller's starting schedule
//		evoprot.WithAdaptiveMigration(evoprot.AdaptiveMigration{}),
//	)
//
// Heterogeneity never costs reproducibility: divergence is a pure
// function of island state and every controller decision happens at a
// quiescent barrier, so one top-level seed still reproduces the whole
// run bit for bit — a property a dedicated determinism/equivalence
// harness pins down (all-equal overrides with the controller off
// reproduce the homogeneous trajectory exactly; one island equals a
// plain engine under the merged config; barrier snapshots resume onto
// the uninterrupted trajectory, controller state and per-island configs
// included). The same knobs travel the whole stack: JobSpec.PerIsland /
// Niches / Adaptive on the wire, and -niches / -per-island / -adaptive
// on cmd/evoprot.
//
// # Pareto mode: true multi-objective search
//
// The paper scalarizes the IL/DR trade-off through an aggregator before
// selection ever sees it. WithObjective("pareto") keeps both objectives:
// selection and replacement run NSGA-II-style — fast non-dominated
// sorting with crowding-distance tie-breaks over raw (IL, DR) pairs — so
// a single run evolves a whole front of trade-offs instead of one
// compromise point. Each generation's GenStats (and every streamed
// Event) carries a FrontStats payload: the first front's (IL, DR) pairs
// and its hypervolume against the reference point (WithParetoRef;
// defaults to DefaultParetoRef, components must be finite and positive).
// Scalar runs are byte-for-byte unaffected — the payload is omitted from
// their JSON — and Pareto mode keeps every determinism guarantee:
// fixed-seed runs, snapshots and resumed runs reproduce fronts bit for
// bit, which a kill-and-restart harness pins down at the service level.
//
//	res, _ := evoprot.Run(ctx, orig, attrs,
//		evoprot.WithGrid("flare"),
//		evoprot.WithObjective("pareto"),
//		evoprot.WithParetoRef(120, 120),
//	)
//	front := res.Islands[0].History[len(res.Islands[0].History)-1].Front
//	fmt.Printf("%d trade-offs, hypervolume %.1f\n", front.Size, front.Hypervolume)
//
// The knobs travel the whole stack: JobSpec carries "objective" and
// "pareto_ref" on the wire and evoprotd's job result reports the final
// front with its hypervolume; cmd/evoprot takes -objective and
// -pareto-ref and renders the front as a scatter plot (RenderFront).
// Per-island Objective overrides compose with heterogeneity — the
// "scalar-pareto" niche preset runs scalarized and Pareto islands side
// by side, migrants re-scored under the receiving island's objective —
// and WithMLUtility(target) appends a machine-learning-utility measure
// to the information-loss battery (a naive-Bayes proxy classifier's
// accuracy drop on the protected data), so the front can trade direct
// analytic utility against disclosure risk.
//
// # Running as a service
//
// cmd/evoprotd serves optimizations as HTTP jobs for parameter sweeps and
// batch protection workloads: POST a JobSpec — the option surface above
// expressed as JSON, with the original dataset named (built-ins), inlined
// as CSV, or referenced by server-side path — and the daemon queues it
// onto a bounded worker pool. Per-generation Events stream from
// GET /v1/jobs/{id}/events as NDJSON or SSE, replayable from any offset
// (each event's Seq is its stable position in the feed); the terminal
// result — trajectory, summary and the protected dataset — comes from
// GET /v1/jobs/{id}/result, and DELETE cancels a job while keeping its
// partial result. Jobs checkpoint into the server's store as they
// evolve, so a restarted daemon resumes interrupted jobs from their
// last snapshot with only their remaining generation budget: a graceful
// shutdown loses nothing, a hard crash at most one checkpoint interval.
//
// Persistence, queueing and epoch execution are seams, not wiring. The
// service reads and writes everything — specs, datasets, event feeds,
// checkpoints, results — through a small storage interface
// (internal/storage.Store) with two built-in backends: the filesystem
// store (the historical data-dir layout, byte for byte, with fsync'd
// atomic writes) and an in-memory store for tests and throwaway
// daemons, selected by evoprotd's -store flag ("fs:<dir>" or "mem").
// The admission queue is likewise an interface (serve.JobQueue, bounded
// FIFO by default), and the island model's epoch rendezvous is a
// pluggable EpochBarrier (WithEpochBarrier) whose contract guarantees
// any conforming execution — serial, parallel, or on remote workers —
// reproduces the identical run bit for bit. Together the three are the
// seams a distributed deployment slots into without touching handler or
// coordinator logic.
//
// The distributed deployment exists: evoprotd -role coordinator runs
// admission, queue and store as one process, and evoprotd -role worker
// processes lease queued jobs from it over HTTP (internal/cluster).
// Leases carry a TTL and a fencing token; the coordinator re-exports
// its Store over HTTP and rejects writes from any lease but the
// current one, so a dead worker's job re-queues, resumes from its last
// checkpoint on another worker, and still reproduces the single-node
// run bit for bit — worker death costs at most one checkpoint
// interval, exactly like a standalone hard crash.
//
// The pieces compose from this package: JobSpec.Materialize /
// JobSpec.Options bridge specs to Runner options, WithFirstEventSeq keeps
// event offsets contiguous across restarts, PeekCheckpoint sizes a
// resumed job's remaining budget, WithCheckpointSink routes checkpoint
// bytes to any store, and Runner.Best exposes a resumed checkpoint's
// best without running. See internal/serve for the service
// implementation, cmd/evoprotd/README.md for the wire reference, and
// examples/client for a complete API client.
//
// # Deprecated entry points
//
// The pre-context surface is kept as thin wrappers for compatibility:
// Optimize(orig, attrs, OptimizeOptions{...}) delegates to Run with the
// equivalent options (same trajectory for the same seed), and
// Engine.SetOnGeneration survives — now safe under concurrent use — in
// favour of the streamed progress options. New code should not use either.
//
// # Architecture
//
// The facade re-exports the implementation packages:
//
//   - internal/dataset — categorical microdata model and CSV I/O
//   - internal/datagen — synthetic stand-ins for the paper's UCI datasets
//   - internal/protection — the six masking methods and parameter grids
//   - internal/infoloss — CTBIL, DBIL, EBIL, ML-utility information-loss measures
//   - internal/risk — ID, DBRL, PRL, RSRL disclosure-risk measures
//   - internal/score — fitness evaluation and the mean/max aggregators
//   - internal/pareto — dominance, fronts, hypervolume, coverage
//   - internal/core — the genetic algorithm itself (ctx-first Engine.Run)
//   - internal/islands — the island-model coordinator
//   - internal/experiment — the paper's experiments 1–3 as a harness
//
// # Incremental (delta) evaluation
//
// The paper's timing table (§3.2) shows fitness evaluation dominating run
// time, yet each mutation changes a single cell and each crossover a gene
// window. The engine therefore scores offspring incrementally: measures
// implementing the infoloss.Incremental / risk.Incremental capability
// interfaces precompute a per-individual State (contingency tables,
// distance sums, transition matrices, nearest-neighbour,
// agreement-pattern and rank-window caches) and patch it per changed
// cell, and score.Evaluator.EvaluateDelta routes each measure of the
// battery to its fast path. The whole default battery is incremental —
// CTBIL, DBIL, EBIL, ID, DBRL, PRL and RSRL; the rank-window linkage,
// formerly the one full-recompute fallback, patches its category
// frequencies, mid-rank windows and candidate bitsets in place and
// re-intersects only the record profiles a change actually touches
// (~17x faster than its own bitset-accelerated recompute, see
// BenchmarkRankIntervalLinkageDeltaSpeedup). Initial populations are
// delta-prepared inside the evaluation worker pool, so the first
// reproduction of every parent skips the lazy state build
// (core.Config.LazyPrepare restores the lazy behavior).
//
// The steady-state delta path is also allocation-conscious: measure
// states keep reusable scratch buffers (candidate bitsets, EM and weight
// arrays), the operators reuse their change-list buffers across
// generations, and short change lists are validated without heap
// allocation — RSRL's Apply runs allocation-free, and a paper-scale
// mutation offspring costs ~4x fewer allocations per EvaluateDelta than
// before (run the benchmarks with -benchmem; CI records both metrics in
// its BENCH_<sha>.json artifacts, which cmd/benchdiff compares across
// pushes).
//
// On top of the per-offspring delta path sits generation-batch
// evaluation, the engine's default: instead of cloning the parent's
// whole state for every child, the engine stages a generation's
// offspring, groups them by parent, and score.Evaluator.EvaluateBatch
// scores each group against the parent's own state through the
// measures' reversible capability (infoloss.Reversible /
// risk.Reversible) — apply the change list, read the value, undo it by
// inverse replay or bitset-diff journaling (stats.BitsetJournal), so
// evaluating a losing offspring touches memory proportional to the edit
// instead of the file. Independent parent groups shard across a worker
// pool sized by core.Config.EvalWorkers (0 inherits InitWorkers;
// WithEvalWorkers and JobSpec.EvalWorkers thread it through the stack),
// and only the children that survive replacement are handed a state —
// the evicted parent's advanced in place, a clone when the parent lives
// on. Results are bit-identical to the per-offspring path at any worker
// width — histories, event feeds and snapshots included, standalone and
// across heterogeneous islands exchanging migrants (see the equivalence
// and fuzz harnesses in internal/score and internal/core) — while a
// paper-scale crossover generation costs ~2x less wall clock and ~50x
// fewer allocated bytes than two per-offspring deltas
// (BenchmarkEvaluateBatchSpeedup, BenchmarkEvaluateBatchPaperScale).
// core.Config.DisableBatch restores the per-offspring path.
//
// Delta evaluation is bit-for-bit identical to a full Evaluate — the
// states keep exact integer summaries and share their final value
// arithmetic with the full paths — so trajectories, snapshots and resumed
// runs are unchanged; it is purely a speedup (two orders of magnitude per
// mutation offspring at paper scale, see BenchmarkEvaluateDeltaSpeedup).
// core.Config.DisableDelta restores full re-evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and table.
package evoprot
