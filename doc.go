// Package evoprot is an evolutionary optimizer for categorical data
// protection: it reproduces, as a reusable Go library, the system of
// Marés & Torra, "An Evolutionary Optimization Approach for Categorical
// Data Protection" (PAIS/EDBT 2012).
//
// # What it does
//
// Statistical agencies publish categorical microdata after masking it.
// Every masking trades information loss (IL — how much analytic structure
// the masked file loses) against disclosure risk (DR — how many records an
// intruder can still re-identify). evoprot takes a population of masked
// versions of one file — produced by classic methods such as
// microaggregation, rank swapping, PRAM, global recoding and top/bottom
// coding — and evolves them with a genetic algorithm whose fitness
// aggregates IL and DR, producing protections with a better trade-off than
// any seed.
//
// # Quick start
//
//	orig, _ := evoprot.GenerateDataset("adult", 0, 42)      // or LoadCSV
//	attrs, _ := evoprot.ProtectedAttributes("adult")        // EDUCATION, MARITAL-STATUS, OCCUPATION
//	result, _ := evoprot.Optimize(orig, attrs, evoprot.OptimizeOptions{
//		Dataset:     "adult",                               // seeds the paper's masking grid
//		Aggregator:  "max",                                 // Eq. 2: Score = max(IL, DR)
//		Generations: 400,
//		Seed:        42,
//	})
//	best := result.Best
//	fmt.Printf("best protection: IL=%.2f DR=%.2f score=%.2f\n",
//		best.Eval.IL, best.Eval.DR, best.Eval.Score)
//
// Lower scores are better; 0 would be a protection that loses nothing and
// discloses nothing.
//
// # Architecture
//
// The facade re-exports the implementation packages:
//
//   - internal/dataset — categorical microdata model and CSV I/O
//   - internal/datagen — synthetic stand-ins for the paper's UCI datasets
//   - internal/protection — the six masking methods and parameter grids
//   - internal/infoloss — CTBIL, DBIL, EBIL information-loss measures
//   - internal/risk — ID, DBRL, PRL, RSRL disclosure-risk measures
//   - internal/score — fitness evaluation and the mean/max aggregators
//   - internal/core — the genetic algorithm itself
//   - internal/experiment — the paper's experiments 1–3 as a harness
//
// # Incremental (delta) evaluation
//
// The paper's timing table (§3.2) shows fitness evaluation dominating run
// time, yet each mutation changes a single cell and each crossover a gene
// window. The engine therefore scores offspring incrementally: measures
// implementing the infoloss.Incremental / risk.Incremental capability
// interfaces precompute a per-individual State (contingency tables,
// distance sums, transition matrices, nearest-neighbour and
// agreement-pattern caches) and patch it per changed cell, and
// score.Evaluator.EvaluateDelta routes each measure of the battery to its
// fast path. CTBIL, DBIL, EBIL, ID, DBRL and PRL are incremental; RSRL is
// the documented full-recompute fallback — a cell change shifts the
// masked file's mid-ranks and with them every rank window, so it is
// instead recomputed with a bitset-accelerated candidate intersection.
// Measures configured with intruder-side sampling (MaxRecords) also fall
// back to the full recompute.
//
// Delta evaluation is bit-for-bit identical to a full Evaluate — the
// states keep exact integer summaries and share their final value
// arithmetic with the full paths — so trajectories, snapshots and resumed
// runs are unchanged; it is purely a speedup (two orders of magnitude per
// mutation offspring at paper scale, see BenchmarkEvaluateDeltaSpeedup).
// core.Config.DisableDelta restores full re-evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and table.
package evoprot
