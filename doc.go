// Package evoprot is an evolutionary optimizer for categorical data
// protection: it reproduces, as a reusable Go library, the system of
// Marés & Torra, "An Evolutionary Optimization Approach for Categorical
// Data Protection" (PAIS/EDBT 2012).
//
// # What it does
//
// Statistical agencies publish categorical microdata after masking it.
// Every masking trades information loss (IL — how much analytic structure
// the masked file loses) against disclosure risk (DR — how many records an
// intruder can still re-identify). evoprot takes a population of masked
// versions of one file — produced by classic methods such as
// microaggregation, rank swapping, PRAM, global recoding and top/bottom
// coding — and evolves them with a genetic algorithm whose fitness
// aggregates IL and DR, producing protections with a better trade-off than
// any seed.
//
// # Quick start
//
//	orig, _ := evoprot.GenerateDataset("adult", 0, 42)      // or LoadCSV
//	attrs, _ := evoprot.ProtectedAttributes("adult")        // EDUCATION, MARITAL-STATUS, OCCUPATION
//	result, _ := evoprot.Optimize(orig, attrs, evoprot.OptimizeOptions{
//		Dataset:     "adult",                               // seeds the paper's masking grid
//		Aggregator:  "max",                                 // Eq. 2: Score = max(IL, DR)
//		Generations: 400,
//		Seed:        42,
//	})
//	best := result.Best
//	fmt.Printf("best protection: IL=%.2f DR=%.2f score=%.2f\n",
//		best.Eval.IL, best.Eval.DR, best.Eval.Score)
//
// Lower scores are better; 0 would be a protection that loses nothing and
// discloses nothing.
//
// # Architecture
//
// The facade re-exports the implementation packages:
//
//   - internal/dataset — categorical microdata model and CSV I/O
//   - internal/datagen — synthetic stand-ins for the paper's UCI datasets
//   - internal/protection — the six masking methods and parameter grids
//   - internal/infoloss — CTBIL, DBIL, EBIL information-loss measures
//   - internal/risk — ID, DBRL, PRL, RSRL disclosure-risk measures
//   - internal/score — fitness evaluation and the mean/max aggregators
//   - internal/core — the genetic algorithm itself
//   - internal/experiment — the paper's experiments 1–3 as a harness
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and table.
package evoprot
