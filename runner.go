package evoprot

// The context-aware Runner API: the package's primary entry point since
// the island-model redesign. A Runner owns a prepared evaluator and
// initial population and executes cancellable, observable optimization
// runs — single-engine or island-model — configured through functional
// options instead of zero-value-overloaded structs. The pre-context
// Optimize entry point survives as a thin deprecated wrapper.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"evoprot/internal/core"
	"evoprot/internal/experiment"
	"evoprot/internal/infoloss"
	"evoprot/internal/islands"
	"evoprot/internal/protection"
	"evoprot/internal/score"
)

// Re-exported island-model types.
type (
	// Event is one entry of a run's streamed progress feed: a generation's
	// statistics tagged with the island that produced it, or an island's
	// final Done summary with its stop reason.
	Event = islands.Event
	// EpochInfo describes one migration barrier of an adaptive run: the
	// divergence observed and the effective schedule going forward. Found
	// on Island -1 events when WithAdaptiveMigration is configured.
	EpochInfo = islands.EpochInfo
	// Topology selects which islands exchange individuals when migrating.
	Topology = islands.Topology
	// RunResult is the outcome of a Runner.Run: the best individual across
	// islands plus every island's own Result.
	RunResult = islands.Result
	// EpochBarrier executes island epochs and rendezvouses them between
	// migrations — the pluggable seam WithEpochBarrier installs. The
	// default runs epochs on in-process goroutines; a distributed runner
	// substitutes a barrier that dispatches them to remote workers. A
	// conforming barrier never changes a run's trajectory.
	EpochBarrier = islands.EpochBarrier
	// StopReason records why a run ended.
	StopReason = core.StopReason
)

// Migration topologies.
const (
	// Ring sends each island's elites to its clockwise neighbour.
	Ring = islands.Ring
	// Broadcast offers every island's elites to every other island.
	Broadcast = islands.Broadcast
)

// Stop reasons.
const (
	StopCompleted = core.StopCompleted
	StopStagnated = core.StopStagnated
	StopCancelled = core.StopCancelled
	StopDeadline  = core.StopDeadline
)

// runnerOptions collects everything the functional options configure.
type runnerOptions struct {
	grid            string
	seeds           []*Dataset
	aggregatorName  string
	aggregator      Aggregator
	objective       string
	paretoRef       Pair
	mlTarget        string
	generations     int
	seed            uint64
	workers         int
	evalWorkers     int
	window          int
	selection       string
	islands         int
	migrateEvery    int
	migrants        int
	topology        Topology
	perIsland       []IslandConfig
	niches          string
	adaptive        *AdaptiveMigration
	onEvent         func(Event)
	events          chan<- Event
	disableDelta    bool
	lazyPrepare     bool
	checkpointPath  string
	checkpointSink  func(snapshot []byte) error
	checkpointEvery int
	firstSeq        uint64
	barrier         islands.EpochBarrier
}

// IslandConfig overrides engine knobs for one island of a heterogeneous
// run. Zero-valued fields inherit the shared run configuration; set
// fields replace it for that island only. It doubles as the JSON shape of
// JobSpec.PerIsland, so the same overrides travel through the evoprotd
// wire format.
type IslandConfig struct {
	// Selection names the island's reproduction-selection policy:
	// "inverse-proportional", "raw-proportional", "rank" or "uniform".
	// Note that the default policy resolves to the zero value, which the
	// override layer reads as "inherit": an explicit
	// "inverse-proportional" cannot override a run whose shared selection
	// is non-default — configure the shared run with the policy most
	// islands want and override the exceptions.
	Selection string `json:"selection,omitempty"`
	// Crowding names the island's crossover replacement policy:
	// "parent-index" or "nearest-parent". As with Selection, the default
	// "parent-index" resolves to "inherit".
	Crowding string `json:"crowding,omitempty"`
	// MutationRate is the island's probability of mutating rather than
	// crossing per generation; use AllCrossover for an explicit 0.0.
	MutationRate float64 `json:"mutation_rate,omitempty"`
	// LeaderFraction sets the island's leader-group size as a population
	// fraction.
	LeaderFraction float64 `json:"leader_fraction,omitempty"`
	// CrossoverPoints sets the island's crossover cut count (2 = the
	// paper's scheme).
	CrossoverPoints int `json:"crossover_points,omitempty"`
	// Aggregator names the island's own fitness aggregation ("mean",
	// "max", "euclidean", "weighted:<w>"), overriding the run's — niched
	// search over the risk/information-loss trade-off.
	Aggregator string `json:"aggregator,omitempty"`
	// Objective selects the island's selection objective: "scalar"
	// (aggregated single-score search) or "pareto" (NSGA-II non-dominated
	// search over raw (IL, DR)). Empty inherits the run's objective.
	Objective string `json:"objective,omitempty"`
	// ParetoRef overrides the island's hypervolume reference point; nil
	// inherits the run's.
	ParetoRef *ParetoRef `json:"pareto_ref,omitempty"`
	// Generations overrides the island's per-Run budget.
	Generations int `json:"generations,omitempty"`
	// EarlyStop overrides the island's stagnation window.
	EarlyStop int `json:"early_stop,omitempty"`
}

// ParetoRef is the wire shape of a hypervolume reference point: the
// worst corner of the (IL, DR) box hypervolume is measured against. Both
// components must be finite and positive.
type ParetoRef struct {
	IL float64 `json:"il"`
	DR float64 `json:"dr"`
}

// toCore resolves the override's symbolic names into a core.Config
// override for islands.Config.PerIsland.
func (c IslandConfig) toCore() (core.Config, error) {
	sel, err := core.SelectionByName(c.Selection)
	if err != nil {
		return core.Config{}, err
	}
	crowd, err := core.CrowdingByName(c.Crowding)
	if err != nil {
		return core.Config{}, err
	}
	if c.Aggregator != "" {
		if _, err := AggregatorByName(c.Aggregator); err != nil {
			return core.Config{}, err
		}
	}
	obj, err := core.ObjectiveByName(c.Objective)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Selection:           sel,
		Crowding:            crowd,
		MutationRate:        c.MutationRate,
		LeaderFraction:      c.LeaderFraction,
		CrossoverPoints:     c.CrossoverPoints,
		Aggregator:          c.Aggregator,
		Objective:           obj,
		Generations:         c.Generations,
		NoImprovementWindow: c.EarlyStop,
	}
	if c.ParetoRef != nil {
		cfg.ParetoRef = Pair{IL: c.ParetoRef.IL, DR: c.ParetoRef.DR}
	}
	return cfg, nil
}

// AdaptiveMigration bounds the divergence-driven migration controller
// enabled by WithAdaptiveMigration. Zero-valued fields select defaults
// derived from the configured schedule (see islands.Adaptive). It doubles
// as the JSON shape of JobSpec.Adaptive.
type AdaptiveMigration struct {
	// MinEvery and MaxEvery bound the effective migration interval;
	// defaults max(1, every/4) and every*4.
	MinEvery int `json:"min_every,omitempty"`
	MaxEvery int `json:"max_every,omitempty"`
	// MinMigrants and MaxMigrants bound the per-island exchange size;
	// defaults 1 and migrants*4.
	MinMigrants int `json:"min_migrants,omitempty"`
	MaxMigrants int `json:"max_migrants,omitempty"`
	// LowDivergence and HighDivergence are the controller's thresholds;
	// defaults 0.02 and 0.10.
	LowDivergence  float64 `json:"low_divergence,omitempty"`
	HighDivergence float64 `json:"high_divergence,omitempty"`
}

// toIslands maps the bounds onto the enabled islands controller config.
func (a AdaptiveMigration) toIslands() islands.Adaptive {
	return islands.Adaptive{
		Enabled:        true,
		MinEvery:       a.MinEvery,
		MaxEvery:       a.MaxEvery,
		MinMigrants:    a.MinMigrants,
		MaxMigrants:    a.MaxMigrants,
		LowDivergence:  a.LowDivergence,
		HighDivergence: a.HighDivergence,
	}
}

// resolveIslandSetup is the single resolution of the heterogeneity
// surface, shared by the functional options and the JobSpec wire format
// so admission-time validation can never drift from run-time behavior:
// it returns the effective island count (per-island overrides imply one
// island each when no count is given), the resolved override configs
// (niche preset or explicit overrides — mutually exclusive), and the
// adaptive controller config.
func resolveIslandSetup(nIslands int, perIsland []IslandConfig, niches string, adaptive *AdaptiveMigration) (int, []core.Config, islands.Adaptive, error) {
	var zero islands.Adaptive
	if niches != "" && len(perIsland) > 0 {
		return 0, nil, zero, fmt.Errorf("evoprot: niches and per-island overrides are mutually exclusive")
	}
	if nIslands == 0 && len(perIsland) > 0 {
		nIslands = len(perIsland)
	}
	var overrides []core.Config
	switch {
	case niches != "":
		if nIslands < 2 {
			// One implied island would make every preset a silent no-op;
			// demand the count the niches should spread over.
			return 0, nil, zero, fmt.Errorf("evoprot: niches %q needs an island count of at least 2 (set WithIslands / islands)", niches)
		}
		var err error
		overrides, err = islands.NichesByName(niches, nIslands)
		if err != nil {
			return 0, nil, zero, err
		}
	case len(perIsland) > 0:
		overrides = make([]core.Config, len(perIsland))
		for i, ov := range perIsland {
			oc, err := ov.toCore()
			if err != nil {
				return 0, nil, zero, fmt.Errorf("evoprot: island %d override: %w", i, err)
			}
			overrides[i] = oc
		}
	}
	var a islands.Adaptive
	if adaptive != nil {
		a = adaptive.toIslands()
	}
	return nIslands, overrides, a, nil
}

// Option configures a Runner. Zero/omitted options select the paper's
// defaults (400 generations, max aggregation, a single island).
type Option func(*runnerOptions)

// WithGrid seeds the initial population from a paper masking grid:
// "housing", "german", "flare" or "adult". One of WithGrid / WithSeeds is
// required.
func WithGrid(name string) Option { return func(o *runnerOptions) { o.grid = name } }

// WithSeeds supplies a ready-made initial population of masked datasets
// (at least 2); overrides WithGrid.
func WithSeeds(seeds ...*Dataset) Option { return func(o *runnerOptions) { o.seeds = seeds } }

// WithAggregator selects the fitness aggregation by name: "mean" (Eq. 1),
// "max" (Eq. 2, default), "euclidean", or "weighted:<w>".
func WithAggregator(name string) Option { return func(o *runnerOptions) { o.aggregatorName = name } }

// WithCustomAggregator installs an Aggregator value directly — custom
// fitness shapes beyond the named ones. Overrides WithAggregator.
func WithCustomAggregator(agg Aggregator) Option {
	return func(o *runnerOptions) { o.aggregator = agg }
}

// WithObjective selects the selection objective: "scalar" (the paper's
// aggregated single-score search, the default) or "pareto" (NSGA-II
// non-dominated sorting with crowding-distance selection over the raw
// (IL, DR) pairs). In Pareto mode every generation's event and the final
// result carry the current non-dominated front and its hypervolume; the
// configured aggregation keeps scoring individuals for statistics,
// in-front tie-breaking and cross-mode migration.
func WithObjective(name string) Option { return func(o *runnerOptions) { o.objective = name } }

// WithParetoRef sets the hypervolume reference point of Pareto-mode runs:
// the worst corner of the (IL, DR) box fronts are measured against. Both
// components must be finite and positive; the zero value selects the
// (100, 100) corner of the measures' natural range.
func WithParetoRef(il, dr float64) Option {
	return func(o *runnerOptions) { o.paretoRef = Pair{IL: il, DR: dr} }
}

// WithMLUtility appends a machine-learning-utility measure to the
// information-loss battery: a naive Bayes proxy classifier predicting the
// named target attribute, scoring the held-out accuracy drop of a model
// trained on the protected file instead of the original. The target may
// be any schema attribute; when it is itself protected it is excluded
// from the classifier's features. The measure is not incremental, so runs
// using it forgo delta and generation-batch evaluation speedups.
func WithMLUtility(target string) Option { return func(o *runnerOptions) { o.mlTarget = target } }

// WithGenerations sets each island's evolution budget per Run call (0
// selects the paper's 400).
func WithGenerations(n int) Option { return func(o *runnerOptions) { o.generations = n } }

// WithSeed fixes the top-level run seed; a fixed seed reproduces the full
// run — islands, migrations and all — bit for bit.
func WithSeed(seed uint64) Option { return func(o *runnerOptions) { o.seed = seed } }

// WithWorkers parallelizes initial-population evaluation (0 = sequential).
func WithWorkers(n int) Option { return func(o *runnerOptions) { o.workers = n } }

// WithEvalWorkers sets the worker-pool width for generation-batch
// offspring evaluation (0 inherits WithWorkers, negative forces
// sequential). Results are identical at any width — only wall-clock
// changes.
func WithEvalWorkers(n int) Option { return func(o *runnerOptions) { o.evalWorkers = n } }

// WithEarlyStop stops an island after window stagnant generations
// (0 = disabled).
func WithEarlyStop(window int) Option { return func(o *runnerOptions) { o.window = window } }

// WithSelection names the reproduction-selection policy
// ("inverse-proportional" default, "raw-proportional", "rank", "uniform").
func WithSelection(name string) Option { return func(o *runnerOptions) { o.selection = name } }

// WithIslands evolves n islands concurrently, exchanging elites under the
// configured migration schedule (0 or 1 = a single island).
func WithIslands(n int) Option { return func(o *runnerOptions) { o.islands = n } }

// WithMigration sets the migration schedule: islands synchronize every
// `every` generations and each emits `migrants` elites (zeros select the
// defaults of 25 and 2).
func WithMigration(every, migrants int) Option {
	return func(o *runnerOptions) { o.migrateEvery, o.migrants = every, migrants }
}

// WithTopology selects the migration topology (Ring default, Broadcast).
func WithTopology(t Topology) Option { return func(o *runnerOptions) { o.topology = t } }

// WithPerIsland specializes islands: override i applies to island i on
// top of the run's shared configuration (zero-valued fields inherit), so
// different islands can run different selection pressures, mutation
// rates, crossover disruption or fitness aggregations. The override count
// must equal the island count; without WithIslands it implies one island
// per override. All-zero overrides reproduce the homogeneous run bit for
// bit. Mutually exclusive with WithNiches.
func WithPerIsland(overrides ...IslandConfig) Option {
	return func(o *runnerOptions) { o.perIsland = overrides }
}

// WithNiches spreads a named heterogeneity preset across the islands:
// "explore-exploit" (mutation rates, leader fractions, selection
// pressures and crossover disruption from exploitative to explorative),
// "selection-sweep", "aggregator-sweep" (islands optimize different
// points of the risk/information-loss trade-off), or "scalar-pareto"
// (alternating islands run NSGA-II Pareto selection — see WithObjective —
// while the rest keep the scalarized search). Island 0 always keeps
// the shared configuration, and WithIslands must ask for at least 2 —
// a single island would make every preset a silent no-op. See
// NicheNames. Mutually exclusive with WithPerIsland.
func WithNiches(name string) Option { return func(o *runnerOptions) { o.niches = name } }

// WithAdaptiveMigration ties the migration schedule to cross-island
// population divergence: at every barrier the coordinator measures how
// far the islands' populations have drifted apart and widens the
// migration interval when they have converged (less coordination) or
// narrows it and exchanges more migrants when they strongly diverge
// (more mixing), within am's bounds. WithMigration supplies the starting
// schedule. Adaptive runs stay bit-reproducible from the top-level seed;
// Island -1 events carry an EpochInfo per barrier.
func WithAdaptiveMigration(am AdaptiveMigration) Option {
	return func(o *runnerOptions) { o.adaptive = &am }
}

// NicheNames returns the built-in niche preset names for WithNiches.
func NicheNames() []string { return islands.NicheNames() }

// WithProgress streams every generation's statistics (and one Done event
// per island) to fn. Calls are serialized, never concurrent.
func WithProgress(fn func(Event)) Option { return func(o *runnerOptions) { o.onEvent = fn } }

// WithEvents streams the same feed to a channel. Run blocks on each send,
// so the caller must drain; the channel is closed when the run finishes. A
// channel serves a single Run call.
func WithEvents(ch chan<- Event) Option { return func(o *runnerOptions) { o.events = ch } }

// WithoutDelta disables incremental (delta) offspring evaluation —
// identical results, much slower; a benchmarking knob.
func WithoutDelta() Option { return func(o *runnerOptions) { o.disableDelta = true } }

// WithLazyPrepare skips the eager delta-preparation of the initial
// population, rebuilding states lazily on first reproduction instead — a
// memory-pressure knob; identical results.
func WithLazyPrepare() Option { return func(o *runnerOptions) { o.lazyPrepare = true } }

// WithCheckpoint writes atomic engine snapshots to path at every migration
// barrier once at least `every` generations have passed since the last
// write (and once when the run ends, whatever ended it). Resume a
// checkpoint with Runner.Resume.
func WithCheckpoint(path string, every int) Option {
	return func(o *runnerOptions) { o.checkpointPath, o.checkpointEvery = path, every }
}

// WithCheckpointSink is WithCheckpoint for runs whose checkpoints do not
// live on a private filesystem path: every checkpoint the run would have
// written to a file is instead serialized and handed to write, which owns
// atomicity and durability (a storage.Store's Put, an object-store
// upload, ...). The cadence contract matches WithCheckpoint: a write at
// every migration barrier once `every` generations have passed since the
// last one, plus a final write when the run ends. Overrides WithCheckpoint.
func WithCheckpointSink(write func(snapshot []byte) error, every int) Option {
	return func(o *runnerOptions) { o.checkpointSink, o.checkpointEvery = write, every }
}

// WithEpochBarrier substitutes the rendezvous that executes island epochs
// between migrations (in-process goroutines by default). The barrier
// decides where epochs run — this process, a worker pool, remote machines
// — but never their outcome: any conforming barrier reproduces the
// identical run bit for bit. See islands.EpochBarrier for the contract.
func WithEpochBarrier(b EpochBarrier) Option {
	return func(o *runnerOptions) { o.barrier = b }
}

// WithFirstEventSeq sets the sequence number of the run's first event —
// the numbering origin of the Event feed. A service that resumes a
// checkpointed run and has already delivered n events passes n, so the
// resumed feed continues its predecessor's offset space and replay
// offsets stay stable across restarts.
func WithFirstEventSeq(seq uint64) Option { return func(o *runnerOptions) { o.firstSeq = seq } }

// Runner owns a prepared optimization: the evaluator over the original
// dataset and the evaluated initial population. Build one with NewRunner,
// then call Run — repeatedly if desired; each call continues the same
// engines for another budget of generations. A Runner is not safe for
// concurrent use.
type Runner struct {
	orig     *Dataset
	attrs    []int
	eval     *Evaluator
	opts     runnerOptions
	ir       *islands.Runner
	lastCkpt int
	ckptErr  error // last unsuperseded mid-run checkpoint write failure
}

// NewRunner prepares a run over the original dataset's named protected
// attributes. The initial population comes from WithSeeds or a WithGrid
// masking grid; all other options default to the paper's setup. Options
// are validated here, but the population itself is built lazily on the
// first Run — a Runner that Resumes a checkpoint never pays for it.
func NewRunner(orig *Dataset, attrNames []string, options ...Option) (*Runner, error) {
	var o runnerOptions
	for _, opt := range options {
		opt(&o)
	}
	attrs, err := orig.Schema().Indices(attrNames...)
	if err != nil {
		return nil, err
	}
	agg := o.aggregator
	if agg == nil && o.aggregatorName != "" {
		agg, err = AggregatorByName(o.aggregatorName)
		if err != nil {
			return nil, err
		}
	}
	scoreCfg := score.Config{Aggregator: agg}
	if o.mlTarget != "" {
		target, err := orig.Schema().Indices(o.mlTarget)
		if err != nil {
			return nil, fmt.Errorf("evoprot: ml-utility target: %w", err)
		}
		scoreCfg.IL = append(infoloss.Default(), &infoloss.MLUtility{Target: target[0]})
	}
	eval, err := score.NewEvaluator(orig, attrs, scoreCfg)
	if err != nil {
		return nil, err
	}
	switch {
	case o.seeds != nil:
		if len(o.seeds) < 2 {
			return nil, fmt.Errorf("evoprot: need at least 2 seed protections, got %d", len(o.seeds))
		}
	case o.grid != "":
		if _, err := protection.PaperComposition(o.grid); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("evoprot: need seed protections (WithSeeds) or a masking grid (WithGrid)")
	}
	if _, err := core.SelectionByName(o.selection); err != nil {
		return nil, err
	}
	r := &Runner{orig: orig, attrs: attrs, eval: eval, opts: o}
	// Validate the whole island configuration — per-island overrides,
	// niche preset, adaptive bounds, engine template — exactly the way the
	// first Run would, so a bad heterogeneous setup fails here instead of
	// after the initial population was paid for.
	cfg, err := r.islandsConfig()
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// buildInitial materializes the initial population the options describe.
func (r *Runner) buildInitial() ([]*Individual, error) {
	if r.opts.seeds != nil {
		initial := make([]*Individual, len(r.opts.seeds))
		for i, s := range r.opts.seeds {
			initial[i] = core.NewIndividual(s, fmt.Sprintf("seed[%d]", i))
		}
		return initial, nil
	}
	return experiment.BuildPopulation(r.orig, r.attrs, r.opts.grid, r.opts.seed)
}

// islandsConfig assembles the islands.Config the options describe.
func (r *Runner) islandsConfig() (islands.Config, error) {
	sel, err := core.SelectionByName(r.opts.selection)
	if err != nil {
		return islands.Config{}, err
	}
	nIslands, perIsland, adaptive, err := resolveIslandSetup(r.opts.islands, r.opts.perIsland, r.opts.niches, r.opts.adaptive)
	if err != nil {
		return islands.Config{}, err
	}
	cfg := islands.Config{
		Islands:      nIslands,
		MigrateEvery: r.opts.migrateEvery,
		Migrants:     r.opts.migrants,
		Topology:     r.opts.topology,
		PerIsland:    perIsland,
		Adaptive:     adaptive,
		Engine: core.Config{
			Generations:         r.opts.generations,
			Seed:                r.opts.seed,
			InitWorkers:         r.opts.workers,
			EvalWorkers:         r.opts.evalWorkers,
			NoImprovementWindow: r.opts.window,
			Selection:           sel,
			Objective:           r.opts.objective,
			ParetoRef:           r.opts.paretoRef,
			DisableDelta:        r.opts.disableDelta,
			LazyPrepare:         r.opts.lazyPrepare,
		},
		OnEvent:  r.opts.onEvent,
		Events:   r.opts.events,
		FirstSeq: r.opts.firstSeq,
		Barrier:  r.opts.barrier,
	}
	if write := r.checkpointWriter(); write != nil {
		every := r.opts.checkpointEvery
		if every < 1 {
			every = 1
		}
		cfg.OnEpoch = func(ir *islands.Runner) {
			if g := ir.Generation(); g-r.lastCkpt >= every {
				r.lastCkpt = g
				// A mid-run checkpoint failure must not kill the run: it is
				// surfaced live on the event feed, remembered for the final
				// error join, and superseded by any later successful write
				// (which makes the persisted state fresh again).
				if err := write(ir); err != nil {
					r.ckptErr = err
					ir.Emit(islands.Event{Island: -1, Err: err.Error()})
				} else {
					r.ckptErr = nil
				}
			}
		}
	}
	return cfg, nil
}

// checkpointWriter resolves the configured checkpoint destination into a
// writer over the islands runner: the byte sink when WithCheckpointSink
// is set, the atomic path writer for WithCheckpoint, nil when neither.
func (r *Runner) checkpointWriter() func(*islands.Runner) error {
	if sink := r.opts.checkpointSink; sink != nil {
		return func(ir *islands.Runner) error {
			var buf bytes.Buffer
			if err := ir.Snapshot(&buf); err != nil {
				return err
			}
			return sink(buf.Bytes())
		}
	}
	if path := r.opts.checkpointPath; path != "" {
		return func(ir *islands.Runner) error { return writeRunnerCheckpoint(ir, path) }
	}
	return nil
}

// Run executes the optimization under ctx. Cancellation and deadlines are
// honoured between generations: the partial result — stop reason recorded,
// history intact, best-so-far populated — is returned together with the
// context's error, so interrupted work is never lost. Calling Run again
// continues the same engines for another budget of generations.
func (r *Runner) Run(ctx context.Context) (*RunResult, error) {
	if r.ir == nil {
		cfg, err := r.islandsConfig()
		if err != nil {
			return nil, err
		}
		initial, err := r.buildInitial()
		if err != nil {
			return nil, err
		}
		ir, err := islands.New(ctx, r.eval, initial, cfg)
		if err != nil {
			return nil, err
		}
		r.ir = ir
	}
	res, err := r.ir.Run(ctx)
	// The events channel is closed by the run; drop it so a later Resume
	// (which rebuilds the islands runner from this Runner's options) can
	// never send on it again.
	r.opts.events = nil
	if write := r.checkpointWriter(); res != nil && write != nil {
		// Persist the final state — best-so-far on interruption included —
		// without letting a write failure vanish behind a cancellation.
		if werr := write(r.ir); werr != nil {
			werr = fmt.Errorf("%w: %v", ErrCheckpoint, werr)
			if err == nil {
				err = werr
			} else {
				err = errors.Join(err, werr)
			}
		} else {
			// The final write refreshed the checkpoint file; earlier mid-run
			// failures no longer describe its state.
			r.ckptErr = nil
		}
	}
	if r.ckptErr != nil {
		werr := fmt.Errorf("%w: mid-run: %v", ErrCheckpoint, r.ckptErr)
		r.ckptErr = nil
		if err == nil {
			err = werr
		} else {
			err = errors.Join(err, werr)
		}
	}
	return res, err
}

// ErrCheckpoint marks a failed final checkpoint write. Run joins it with
// any context error, so an interrupted run whose state could not be
// persisted reports both; test with errors.Is.
var ErrCheckpoint = errors.New("evoprot: final checkpoint write failed")

// Resume loads a checkpoint written by this Runner's checkpoint option (or
// Snapshot) into the Runner: the next Run continues every island's
// identical stochastic trajectory for another budget of generations. The
// Runner must have been built over the same original dataset and
// attributes the checkpoint was taken against; the island count comes from
// the checkpoint.
func (r *Runner) Resume(rd io.Reader) error {
	cfg, err := r.islandsConfig()
	if err != nil {
		return err
	}
	ir, err := islands.Resume(r.eval, rd, cfg)
	if err != nil {
		return err
	}
	r.ir = ir
	// Re-anchor the checkpoint cadence to the resumed state: the next
	// periodic write is due `every` generations from here, not from
	// whatever generation this Runner had reached before.
	r.lastCkpt = ir.Generation()
	return nil
}

// Snapshot serializes the current engine states. Only valid after a Run or
// Resume, while no Run is in flight.
func (r *Runner) Snapshot(w io.Writer) error {
	if r.ir == nil {
		return fmt.Errorf("evoprot: nothing to snapshot before the first Run or Resume")
	}
	return r.ir.Snapshot(w)
}

// Best returns the best individual across islands right now: the live
// best-so-far between runs, or a resumed checkpoint's best before any
// Run. On heterogeneous runs the winner is judged — and its Score
// expressed — under the run's shared aggregation (see RunResult.Best).
// Nil before the first Run or Resume. Only valid while no Run is in
// flight.
func (r *Runner) Best() *Individual {
	if r.ir == nil {
		return nil
	}
	return r.ir.Best()
}

// Generation returns the largest per-island generation count executed so
// far (0 before the first Run or Resume).
func (r *Runner) Generation() int {
	if r.ir == nil {
		return 0
	}
	return r.ir.Generation()
}

// Islands returns the number of islands the Runner drives (after a Resume,
// the checkpoint's count).
func (r *Runner) Islands() int {
	if r.ir == nil {
		if r.opts.islands < 1 {
			if n := len(r.opts.perIsland); n > 0 {
				return n
			}
			return 1
		}
		return r.opts.islands
	}
	return r.ir.Islands()
}

// EffectiveMigration returns the migration schedule currently in force:
// the configured one before the first Run and on fixed-schedule runs, the
// adaptive controller's latest decision otherwise. Only valid while no
// Run is in flight.
func (r *Runner) EffectiveMigration() (every, migrants int) {
	if r.ir == nil {
		return r.opts.migrateEvery, r.opts.migrants
	}
	return r.ir.EffectiveMigration()
}

// TopologyByName resolves a migration-topology name: "ring" or
// "broadcast".
func TopologyByName(name string) (Topology, error) { return islands.TopologyByName(name) }

// CheckpointMeta describes a checkpoint file without resuming it.
type CheckpointMeta = islands.Meta

// PeekCheckpoint reads a checkpoint's island count and generation marker
// without rebuilding engines or touching an evaluator. Services use it to
// size the remaining budget of an interrupted job before resuming it.
func PeekCheckpoint(rd io.Reader) (CheckpointMeta, error) { return islands.Peek(rd) }

// Run is the one-call ctx-first entry point: build a Runner and execute it.
//
//	res, err := evoprot.Run(ctx, orig, attrs,
//		evoprot.WithGrid("adult"),
//		evoprot.WithGenerations(400),
//		evoprot.WithSeed(42),
//		evoprot.WithIslands(4),
//	)
func Run(ctx context.Context, orig *Dataset, attrNames []string, options ...Option) (*RunResult, error) {
	r, err := NewRunner(orig, attrNames, options...)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx)
}

// WriteCheckpoint writes a snapshot of the current engine states to path
// atomically: a temp file next to the target, renamed into place only
// after a clean close (failed writes leave no partial files behind). Only
// valid after a Run or Resume, while no Run is in flight.
func (r *Runner) WriteCheckpoint(path string) error {
	if r.ir == nil {
		return fmt.Errorf("evoprot: nothing to checkpoint before the first Run or Resume")
	}
	return writeRunnerCheckpoint(r.ir, path)
}

// writeRunnerCheckpoint is WriteCheckpoint's worker, also used by the
// mid-run OnEpoch hook where the islands runner is known directly.
func writeRunnerCheckpoint(ir *islands.Runner, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := ir.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// fsync before the rename: a checkpoint that exists under its final
	// name must survive power loss, not just process death.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
