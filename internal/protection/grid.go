package protection

import "fmt"

// The paper builds one initial population per dataset from parameter grids
// over the six methods (§3):
//
//	Housing:       110 = 72 MA + 6 BC + 6 TC + 6 GR + 11 RS + 9 PRAM
//	German, Flare: 104 = 72 MA + 4 BC + 4 TC + 4 GR + 11 RS + 9 PRAM
//	Adult:          86 = 48 MA + 6 BC + 6 TC + 6 GR + 11 RS + 9 PRAM
//
// The exact parameter values are not given in the paper, so the grids
// below sweep each method from conservative to aggressive — the same
// span an SDC practitioner would explore — and are truncated/cycled to the
// paper's exact counts.

// MicroaggregationGrid returns n microaggregation variants for protCount
// protected attributes: the (k, config) product enumerated k-major with
// k = 2, 3, ... and configs from MicroConfigs(protCount).
func MicroaggregationGrid(n, protCount int) []Method {
	configs := MicroConfigs(protCount)
	out := make([]Method, 0, n)
	for k := 2; len(out) < n; k++ {
		for cfg := range configs {
			if len(out) == n {
				break
			}
			m, err := NewMicroaggregation(k, cfg)
			if err != nil {
				panic(err) // unreachable: k >= 2, cfg >= 0
			}
			out = append(out, m)
		}
	}
	return out
}

// TopCodingGrid returns n top-coding variants with tail fractions evenly
// spread over [0.05, 0.30].
func TopCodingGrid(n int) []Method {
	out := make([]Method, 0, n)
	for _, q := range spread(0.05, 0.30, n) {
		m, err := NewTopCoding(q)
		if err != nil {
			panic(err)
		}
		out = append(out, m)
	}
	return out
}

// BottomCodingGrid returns n bottom-coding variants with tail fractions
// evenly spread over [0.05, 0.30].
func BottomCodingGrid(n int) []Method {
	out := make([]Method, 0, n)
	for _, q := range spread(0.05, 0.30, n) {
		m, err := NewBottomCoding(q)
		if err != nil {
			panic(err)
		}
		out = append(out, m)
	}
	return out
}

// GlobalRecodingGrid returns n global-recoding variants of increasing
// depth 1, 2, 3, ... (cycling back to 1 past depth 6, where all practical
// hierarchies saturate).
func GlobalRecodingGrid(n int) []Method {
	out := make([]Method, 0, n)
	for i := 0; i < n; i++ {
		m, err := NewGlobalRecoding(i%6 + 1)
		if err != nil {
			panic(err)
		}
		out = append(out, m)
	}
	return out
}

// RankSwappingGrid returns n rank-swapping variants with windows evenly
// spread over [2%, 24%].
func RankSwappingGrid(n int) []Method {
	out := make([]Method, 0, n)
	for _, p := range spread(2, 24, n) {
		m, err := NewRankSwapping(p)
		if err != nil {
			panic(err)
		}
		out = append(out, m)
	}
	return out
}

// PRAMGrid returns n PRAM variants with retention probabilities evenly
// spread over [0.50, 0.92] (aggressive to conservative).
func PRAMGrid(n int) []Method {
	out := make([]Method, 0, n)
	for _, theta := range spread(0.50, 0.92, n) {
		m, err := NewPRAM(theta)
		if err != nil {
			panic(err)
		}
		out = append(out, m)
	}
	return out
}

// spread returns n values evenly spaced over [lo, hi]; a single value sits
// at the midpoint.
func spread(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = (lo + hi) / 2
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Composition is the per-method variant count of an initial population.
type Composition struct {
	Microaggregation int
	BottomCoding     int
	TopCoding        int
	GlobalRecoding   int
	RankSwapping     int
	PRAM             int
}

// Total returns the population size the composition yields.
func (c Composition) Total() int {
	return c.Microaggregation + c.BottomCoding + c.TopCoding + c.GlobalRecoding + c.RankSwapping + c.PRAM
}

// PaperComposition returns the paper's §3 population composition for the
// named dataset.
func PaperComposition(datasetName string) (Composition, error) {
	switch datasetName {
	case "housing":
		return Composition{72, 6, 6, 6, 11, 9}, nil
	case "german", "flare":
		return Composition{72, 4, 4, 4, 11, 9}, nil
	case "adult":
		return Composition{48, 6, 6, 6, 11, 9}, nil
	default:
		return Composition{}, fmt.Errorf("protection: no paper composition for dataset %q", datasetName)
	}
}

// Grid materializes a composition into the concrete method list, in the
// paper's order (MA, BC, TC, GR, RS, PRAM). protCount is the number of
// protected attributes (3 for every paper dataset).
func (c Composition) Grid(protCount int) []Method {
	out := make([]Method, 0, c.Total())
	out = append(out, MicroaggregationGrid(c.Microaggregation, protCount)...)
	out = append(out, BottomCodingGrid(c.BottomCoding)...)
	out = append(out, TopCodingGrid(c.TopCoding)...)
	out = append(out, GlobalRecodingGrid(c.GlobalRecoding)...)
	out = append(out, RankSwappingGrid(c.RankSwapping)...)
	out = append(out, PRAMGrid(c.PRAM)...)
	return out
}
