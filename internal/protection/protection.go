// Package protection implements the six state-of-the-art categorical
// masking methods the paper seeds its evolutionary algorithm with
// (§3): median-based microaggregation (Torra 2004), bottom coding, top
// coding, global recoding, rank swapping (Moore 1996) and the
// Post-Randomization Method PRAM (Gouweleeuw et al. 1998) — together with
// the parameter grids that reconstruct the paper's initial populations.
//
// Every method takes an original dataset plus the indices of the attributes
// to protect and returns a new masked dataset over the same schema; masked
// values always stay inside the original category domains (see
// internal/hierarchy for why). Stochastic methods draw from the supplied
// RNG only, so a (method, params, seed) triple reproduces a masking
// exactly.
package protection

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"

	"evoprot/internal/dataset"
)

// Method is one parameterized masking method.
type Method interface {
	// Name returns the method family, e.g. "microaggregation".
	Name() string
	// Params returns a human-readable parameter string, e.g. "k=5 groups=[0 1 2]".
	Params() string
	// Protect returns a masked copy of orig restricted to the given
	// attribute indices; all other columns are copied unchanged. orig is
	// never modified. Deterministic methods ignore rng.
	Protect(orig *dataset.Dataset, attrs []int, rng *rand.Rand) (*dataset.Dataset, error)
}

// String formats a method as "name(params)" for logs and reports.
func String(m Method) string { return m.Name() + "(" + m.Params() + ")" }

// Must is Parse that panics on error; for statically-known specs.
func Must(spec string) Method {
	m, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return m
}

func validateAttrs(orig *dataset.Dataset, attrs []int) error {
	if orig == nil {
		return fmt.Errorf("protection: nil dataset")
	}
	if len(attrs) == 0 {
		return fmt.Errorf("protection: no attributes to protect")
	}
	seen := make(map[int]bool)
	for _, a := range attrs {
		if a < 0 || a >= orig.Cols() {
			return fmt.Errorf("protection: attribute index %d out of range [0,%d)", a, orig.Cols())
		}
		if seen[a] {
			return fmt.Errorf("protection: duplicate attribute index %d", a)
		}
		seen[a] = true
	}
	return nil
}

// Parse builds a method from a CLI-style spec string:
//
//	micro:k=5,config=0      median-based microaggregation
//	top:q=0.1               top coding at the 10% upper quantile
//	bottom:q=0.1            bottom coding at the 10% lower quantile
//	recode:depth=2          global recoding, 2 hierarchy levels deep
//	rankswap:p=10           rank swapping within 10% rank windows
//	pram:theta=0.8          PRAM with 80% retention probability
func Parse(spec string) (Method, error) {
	name, rest, _ := strings.Cut(spec, ":")
	kv := map[string]string{}
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				return nil, fmt.Errorf("protection: malformed parameter %q in %q", part, spec)
			}
			kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	getFloat := func(key string, def float64) (float64, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		return strconv.ParseFloat(s, 64)
	}
	getInt := func(key string, def int) (int, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		return strconv.Atoi(s)
	}
	switch name {
	case "micro", "microaggregation":
		k, err := getInt("k", 3)
		if err != nil {
			return nil, err
		}
		cfg, err := getInt("config", 0)
		if err != nil {
			return nil, err
		}
		return NewMicroaggregation(k, cfg)
	case "top", "topcoding":
		q, err := getFloat("q", 0.1)
		if err != nil {
			return nil, err
		}
		return NewTopCoding(q)
	case "bottom", "bottomcoding":
		q, err := getFloat("q", 0.1)
		if err != nil {
			return nil, err
		}
		return NewBottomCoding(q)
	case "recode", "globalrecoding":
		depth, err := getInt("depth", 1)
		if err != nil {
			return nil, err
		}
		return NewGlobalRecoding(depth)
	case "rankswap", "rankswapping":
		p, err := getFloat("p", 10)
		if err != nil {
			return nil, err
		}
		return NewRankSwapping(p)
	case "pram":
		theta, err := getFloat("theta", 0.8)
		if err != nil {
			return nil, err
		}
		return NewPRAM(theta)
	default:
		return nil, fmt.Errorf("protection: unknown method %q (want micro|top|bottom|recode|rankswap|pram)", name)
	}
}
