package protection

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

func testData(t *testing.T) (*dataset.Dataset, []int) {
	t.Helper()
	d := datagen.MustByName("flare", 300, 17)
	names, err := datagen.ProtectedAttrs("flare")
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	return d, attrs
}

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 99)) }

// allMethods returns one representative of each family.
func allMethods(t *testing.T) []Method {
	t.Helper()
	specs := []string{
		"micro:k=4,config=0",
		"top:q=0.15",
		"bottom:q=0.15",
		"recode:depth=2",
		"rankswap:p=10",
		"pram:theta=0.7",
	}
	out := make([]Method, len(specs))
	for i, s := range specs {
		m, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		out[i] = m
	}
	return out
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"unknown:k=2",
		"micro:k=abc",
		"micro:k",
		"pram:theta=1.5",
		"rankswap:p=0",
		"top:q=0",
		"bottom:q=1",
		"recode:depth=0",
		"micro:k=1",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	m, err := Parse("pram")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "pram" {
		t.Fatalf("Name = %q", m.Name())
	}
	if String(m) != "pram(theta=0.800)" {
		t.Fatalf("String = %q", String(m))
	}
}

func TestProtectDoesNotMutateOriginal(t *testing.T) {
	d, attrs := testData(t)
	before := d.Clone()
	for _, m := range allMethods(t) {
		if _, err := m.Protect(d, attrs, newRNG(1)); err != nil {
			t.Fatalf("%s: %v", String(m), err)
		}
		if !d.Equal(before) {
			t.Fatalf("%s mutated the original dataset", String(m))
		}
	}
}

func TestProtectTouchesOnlyProtectedAttrs(t *testing.T) {
	d, attrs := testData(t)
	protected := make(map[int]bool)
	for _, a := range attrs {
		protected[a] = true
	}
	for _, m := range allMethods(t) {
		masked, err := m.Protect(d, attrs, newRNG(2))
		if err != nil {
			t.Fatalf("%s: %v", String(m), err)
		}
		for c := 0; c < d.Cols(); c++ {
			if protected[c] {
				continue
			}
			for r := 0; r < d.Rows(); r++ {
				if masked.At(r, c) != d.At(r, c) {
					t.Fatalf("%s modified unprotected column %d", String(m), c)
				}
			}
		}
		if err := masked.Validate(); err != nil {
			t.Fatalf("%s produced out-of-domain values: %v", String(m), err)
		}
	}
}

func TestProtectActuallyMasksSomething(t *testing.T) {
	d, attrs := testData(t)
	for _, m := range allMethods(t) {
		masked, err := m.Protect(d, attrs, newRNG(3))
		if err != nil {
			t.Fatalf("%s: %v", String(m), err)
		}
		if d.Mismatches(masked, attrs) == 0 {
			t.Errorf("%s changed nothing", String(m))
		}
	}
}

func TestValidateAttrsErrors(t *testing.T) {
	d, _ := testData(t)
	m, _ := NewTopCoding(0.1)
	cases := [][]int{nil, {}, {-1}, {d.Cols()}, {0, 0}}
	for _, attrs := range cases {
		if _, err := m.Protect(d, attrs, nil); err == nil {
			t.Errorf("attrs %v accepted", attrs)
		}
	}
	if _, err := m.Protect(nil, []int{0}, nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestStochasticMethodsRequireRNG(t *testing.T) {
	d, attrs := testData(t)
	rs, _ := NewRankSwapping(5)
	if _, err := rs.Protect(d, attrs, nil); err == nil {
		t.Error("rank swapping accepted nil RNG")
	}
	pr, _ := NewPRAM(0.8)
	if _, err := pr.Protect(d, attrs, nil); err == nil {
		t.Error("pram accepted nil RNG")
	}
}

func TestMicroaggregationGroupSizes(t *testing.T) {
	d, attrs := testData(t)
	for _, k := range []int{2, 3, 5, 7} {
		m, err := NewMicroaggregation(k, 0) // joint projection
		if err != nil {
			t.Fatal(err)
		}
		masked, err := m.Protect(d, attrs, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Every distinct value combination over the protected attributes
		// must occur at least k times: blocks have >= k records and every
		// record in a block receives the block centroid.
		counts := make(map[[3]int]int)
		for r := 0; r < masked.Rows(); r++ {
			key := [3]int{masked.At(r, attrs[0]), masked.At(r, attrs[1]), masked.At(r, attrs[2])}
			counts[key]++
		}
		for key, c := range counts {
			if c < k {
				t.Fatalf("k=%d: combination %v occurs %d times", k, key, c)
			}
		}
	}
}

func TestMicroaggregationDeterministic(t *testing.T) {
	d, attrs := testData(t)
	m, _ := NewMicroaggregation(4, 2)
	a, err := m.Protect(d, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Protect(d, attrs, nil)
	if !a.Equal(b) {
		t.Fatal("microaggregation is not deterministic")
	}
}

func TestMicroaggregationConfigOutOfRange(t *testing.T) {
	d, attrs := testData(t)
	m, _ := NewMicroaggregation(3, 99)
	if _, err := m.Protect(d, attrs, nil); err == nil {
		t.Fatal("out-of-range config accepted")
	}
}

func TestMicroaggregationLargerKMoreLoss(t *testing.T) {
	d, attrs := testData(t)
	m2, _ := NewMicroaggregation(2, 0)
	m20, _ := NewMicroaggregation(20, 0)
	a, _ := m2.Protect(d, attrs, nil)
	b, _ := m20.Protect(d, attrs, nil)
	if d.Mismatches(a, attrs) >= d.Mismatches(b, attrs) {
		t.Fatalf("k=2 changed %d cells, k=20 changed %d; expected k=20 to change more",
			d.Mismatches(a, attrs), d.Mismatches(b, attrs))
	}
}

func TestMicroConfigsThreeAttrs(t *testing.T) {
	cfgs := MicroConfigs(3)
	if len(cfgs) != 9 {
		t.Fatalf("MicroConfigs(3) = %d configs, want 9", len(cfgs))
	}
	for i, cfg := range cfgs {
		seen := make(map[int]bool)
		for _, g := range cfg.Groups {
			for _, rel := range g {
				if seen[rel] {
					t.Fatalf("config %d repeats position %d", i, rel)
				}
				seen[rel] = true
			}
		}
		if len(seen) != 3 {
			t.Fatalf("config %d does not cover all positions", i)
		}
	}
	if got := MicroConfigs(2); len(got) != 2 {
		t.Fatalf("MicroConfigs(2) = %d configs, want 2", len(got))
	}
}

func TestTopCodingCollapsesUpperTail(t *testing.T) {
	d, attrs := testData(t)
	tc, _ := NewTopCoding(0.2)
	masked, err := tc.Protect(d, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range attrs {
		card := d.Schema().Attr(c).Cardinality()
		threshold := stats.Quantile(stats.Freq(d.Column(c), card), 0.8)
		for r := 0; r < masked.Rows(); r++ {
			if masked.At(r, c) > threshold {
				t.Fatalf("value above threshold survived top coding (col %d)", c)
			}
			// Values at or below threshold are untouched.
			if d.At(r, c) <= threshold && masked.At(r, c) != d.At(r, c) {
				t.Fatalf("top coding modified a non-tail value (col %d)", c)
			}
		}
	}
}

func TestBottomCodingCollapsesLowerTail(t *testing.T) {
	d, attrs := testData(t)
	bc, _ := NewBottomCoding(0.2)
	masked, err := bc.Protect(d, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range attrs {
		card := d.Schema().Attr(c).Cardinality()
		threshold := stats.Quantile(stats.Freq(d.Column(c), card), 0.2)
		for r := 0; r < masked.Rows(); r++ {
			if masked.At(r, c) < threshold {
				t.Fatalf("value below threshold survived bottom coding (col %d)", c)
			}
		}
	}
}

func TestCodingMonotoneInQ(t *testing.T) {
	d, attrs := testData(t)
	prev := -1
	for _, q := range []float64{0.05, 0.15, 0.3, 0.5} {
		tc, _ := NewTopCoding(q)
		masked, _ := tc.Protect(d, attrs, nil)
		changed := d.Mismatches(masked, attrs)
		if changed < prev {
			t.Fatalf("top coding q=%v changed %d cells, less than smaller q (%d)", q, changed, prev)
		}
		prev = changed
	}
}

func TestGlobalRecodingReducesDistinctCategories(t *testing.T) {
	d, attrs := testData(t)
	gr, _ := NewGlobalRecoding(2)
	masked, err := gr.Protect(d, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range attrs {
		card := d.Schema().Attr(c).Cardinality()
		distinctOrig := countDistinct(d.Column(c), card)
		distinctMasked := countDistinct(masked.Column(c), card)
		if distinctMasked > distinctOrig {
			t.Fatalf("recoding increased distinct categories on col %d", c)
		}
		if distinctMasked == distinctOrig && card > 2 {
			t.Fatalf("recoding depth 2 did not coarsen col %d (card %d)", c, card)
		}
	}
}

func TestGlobalRecodingDepthSaturates(t *testing.T) {
	d, attrs := testData(t)
	deep, _ := NewGlobalRecoding(50)
	masked, err := deep.Protect(d, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// At the top of every hierarchy all records share one category.
	for _, c := range attrs {
		card := d.Schema().Attr(c).Cardinality()
		if got := countDistinct(masked.Column(c), card); got != 1 {
			t.Fatalf("saturated recoding left %d categories on col %d", got, c)
		}
	}
}

func countDistinct(col []int, card int) int {
	n := 0
	for _, f := range stats.Freq(col, card) {
		if f > 0 {
			n++
		}
	}
	return n
}

func TestRankSwappingPreservesMarginals(t *testing.T) {
	d, attrs := testData(t)
	rs, _ := NewRankSwapping(8)
	masked, err := rs.Protect(d, attrs, newRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	// Swapping permutes values within a column: marginals must be exactly
	// preserved — the defining invariant of the method.
	for _, c := range attrs {
		card := d.Schema().Attr(c).Cardinality()
		fo := stats.Freq(d.Column(c), card)
		fm := stats.Freq(masked.Column(c), card)
		for v := range fo {
			if fo[v] != fm[v] {
				t.Fatalf("rank swapping changed the marginal of col %d at category %d", c, v)
			}
		}
	}
}

func TestRankSwappingDeterministicPerSeed(t *testing.T) {
	d, attrs := testData(t)
	rs, _ := NewRankSwapping(10)
	a, _ := rs.Protect(d, attrs, newRNG(7))
	b, _ := rs.Protect(d, attrs, newRNG(7))
	if !a.Equal(b) {
		t.Fatal("same seed produced different swaps")
	}
	c, _ := rs.Protect(d, attrs, newRNG(8))
	if a.Equal(c) {
		t.Fatal("different seeds produced identical swaps")
	}
}

func TestRankSwappingTinyDataset(t *testing.T) {
	s := dataset.MustSchema(dataset.MustAttribute("x", []string{"a", "b"}, true))
	d, _ := dataset.FromRecords(s, [][]string{{"a"}})
	rs, _ := NewRankSwapping(10)
	masked, err := rs.Protect(d, []int{0}, newRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if !masked.Equal(d) {
		t.Fatal("single-record swap changed data")
	}
}

func TestPRAMRetentionExtremes(t *testing.T) {
	d, attrs := testData(t)
	// theta near 1: almost nothing changes.
	hi, _ := NewPRAM(0.99)
	masked, err := hi.Protect(d, attrs, newRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	total := d.Rows() * len(attrs)
	if changed := d.Mismatches(masked, attrs); changed > total/10 {
		t.Fatalf("theta=0.99 changed %d/%d cells", changed, total)
	}
	// theta = 0: every cell resampled; expect many changes.
	lo, _ := NewPRAM(0)
	masked, err = lo.Protect(d, attrs, newRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if changed := d.Mismatches(masked, attrs); changed < total/4 {
		t.Fatalf("theta=0 changed only %d/%d cells", changed, total)
	}
}

func TestPRAMMarginalsApproximatelyPreserved(t *testing.T) {
	d, attrs := testData(t)
	p, _ := NewPRAM(0.5)
	masked, err := p.Protect(d, attrs, newRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	// Resampling from the empirical marginal keeps expected frequencies:
	// allow a generous tolerance for sampling noise.
	for _, c := range attrs {
		card := d.Schema().Attr(c).Cardinality()
		fo := stats.Freq(d.Column(c), card)
		fm := stats.Freq(masked.Column(c), card)
		for v := range fo {
			diff := stats.AbsInt(fo[v] - fm[v])
			if diff > 30+fo[v]/2 {
				t.Fatalf("pram distorted marginal of col %d cat %d: %d -> %d", c, v, fo[v], fm[v])
			}
		}
	}
}

func TestGridCounts(t *testing.T) {
	if got := len(MicroaggregationGrid(72, 3)); got != 72 {
		t.Fatalf("MA grid = %d", got)
	}
	if got := len(TopCodingGrid(6)); got != 6 {
		t.Fatalf("TC grid = %d", got)
	}
	if got := len(BottomCodingGrid(4)); got != 4 {
		t.Fatalf("BC grid = %d", got)
	}
	if got := len(GlobalRecodingGrid(6)); got != 6 {
		t.Fatalf("GR grid = %d", got)
	}
	if got := len(RankSwappingGrid(11)); got != 11 {
		t.Fatalf("RS grid = %d", got)
	}
	if got := len(PRAMGrid(9)); got != 9 {
		t.Fatalf("PRAM grid = %d", got)
	}
}

// TestPopulationComposition checks the paper's §3 population sizes exactly.
func TestPopulationComposition(t *testing.T) {
	cases := []struct {
		name  string
		total int
	}{
		{"housing", 110},
		{"german", 104},
		{"flare", 104},
		{"adult", 86},
	}
	for _, c := range cases {
		comp, err := PaperComposition(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if comp.Total() != c.total {
			t.Errorf("%s: composition total = %d, want %d", c.name, comp.Total(), c.total)
		}
		if got := len(comp.Grid(3)); got != c.total {
			t.Errorf("%s: grid length = %d, want %d", c.name, got, c.total)
		}
	}
	if _, err := PaperComposition("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestPaperGridsAllRun masks a small dataset with every method of every
// paper grid — the full initial-population construction path.
func TestPaperGridsAllRun(t *testing.T) {
	d, attrs := testData(t)
	comp, _ := PaperComposition("flare")
	rng := newRNG(21)
	seen := make(map[string]int)
	for _, m := range comp.Grid(len(attrs)) {
		masked, err := m.Protect(d, attrs, rng)
		if err != nil {
			t.Fatalf("%s: %v", String(m), err)
		}
		if err := masked.Validate(); err != nil {
			t.Fatalf("%s: %v", String(m), err)
		}
		seen[m.Name()]++
	}
	want := map[string]int{
		"microaggregation": 72, "bottomcoding": 4, "topcoding": 4,
		"globalrecoding": 4, "rankswapping": 11, "pram": 9,
	}
	for name, count := range want {
		if seen[name] != count {
			t.Errorf("%s: %d variants, want %d", name, seen[name], count)
		}
	}
}

func TestGridVariantsAreDistinct(t *testing.T) {
	grid := MicroaggregationGrid(72, 3)
	seen := make(map[string]bool)
	for _, m := range grid {
		key := String(m)
		if seen[key] {
			t.Fatalf("duplicate microaggregation variant %s", key)
		}
		seen[key] = true
	}
}
