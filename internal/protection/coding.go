package protection

import (
	"fmt"
	"math/rand/v2"

	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// TopCoding collapses the upper tail of each protected attribute: every
// category strictly above the (1-Q)-quantile category of the data
// distribution is replaced by that threshold category. Q is the fraction
// of the distribution to fold into the threshold (e.g. Q=0.1 folds the top
// decile). Deterministic.
type TopCoding struct {
	Q float64
}

// NewTopCoding validates the tail fraction.
func NewTopCoding(q float64) (*TopCoding, error) {
	if q <= 0 || q >= 1 {
		return nil, fmt.Errorf("protection: top coding q=%v outside (0,1)", q)
	}
	return &TopCoding{Q: q}, nil
}

// Name implements Method.
func (t *TopCoding) Name() string { return "topcoding" }

// Params implements Method.
func (t *TopCoding) Params() string { return fmt.Sprintf("q=%.3f", t.Q) }

// Protect implements Method.
func (t *TopCoding) Protect(orig *dataset.Dataset, attrs []int, _ *rand.Rand) (*dataset.Dataset, error) {
	if err := validateAttrs(orig, attrs); err != nil {
		return nil, err
	}
	out := orig.Clone()
	col := make([]int, orig.Rows())
	for _, c := range attrs {
		orig.ColumnInto(col, c)
		card := orig.Schema().Attr(c).Cardinality()
		threshold := stats.Quantile(stats.Freq(col, card), 1-t.Q)
		for r, v := range col {
			if v > threshold {
				out.Set(r, c, threshold)
			}
		}
	}
	return out, nil
}

// BottomCoding collapses the lower tail of each protected attribute:
// every category strictly below the Q-quantile category is replaced by
// that threshold category. Deterministic.
type BottomCoding struct {
	Q float64
}

// NewBottomCoding validates the tail fraction.
func NewBottomCoding(q float64) (*BottomCoding, error) {
	if q <= 0 || q >= 1 {
		return nil, fmt.Errorf("protection: bottom coding q=%v outside (0,1)", q)
	}
	return &BottomCoding{Q: q}, nil
}

// Name implements Method.
func (b *BottomCoding) Name() string { return "bottomcoding" }

// Params implements Method.
func (b *BottomCoding) Params() string { return fmt.Sprintf("q=%.3f", b.Q) }

// Protect implements Method.
func (b *BottomCoding) Protect(orig *dataset.Dataset, attrs []int, _ *rand.Rand) (*dataset.Dataset, error) {
	if err := validateAttrs(orig, attrs); err != nil {
		return nil, err
	}
	out := orig.Clone()
	col := make([]int, orig.Rows())
	for _, c := range attrs {
		orig.ColumnInto(col, c)
		card := orig.Schema().Attr(c).Cardinality()
		threshold := stats.Quantile(stats.Freq(col, card), b.Q)
		for r, v := range col {
			if v < threshold {
				out.Set(r, c, threshold)
			}
		}
	}
	return out, nil
}
