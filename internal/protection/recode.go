package protection

import (
	"fmt"
	"math/rand/v2"

	"evoprot/internal/dataset"
	"evoprot/internal/hierarchy"
	"evoprot/internal/stats"
)

// GlobalRecoding coarsens each protected attribute Depth levels up an
// automatically-derived binary generalization hierarchy (adjacent
// categories merge pairwise per level) and maps every category to the
// weighted-median representative of its group, so recoded values remain
// in-domain. Depth saturates at the hierarchy's top. Deterministic.
type GlobalRecoding struct {
	Depth int
}

// NewGlobalRecoding validates the depth.
func NewGlobalRecoding(depth int) (*GlobalRecoding, error) {
	if depth < 1 {
		return nil, fmt.Errorf("protection: global recoding depth=%d < 1 would be a no-op", depth)
	}
	return &GlobalRecoding{Depth: depth}, nil
}

// Name implements Method.
func (g *GlobalRecoding) Name() string { return "globalrecoding" }

// Params implements Method.
func (g *GlobalRecoding) Params() string { return fmt.Sprintf("depth=%d", g.Depth) }

// Protect implements Method.
func (g *GlobalRecoding) Protect(orig *dataset.Dataset, attrs []int, _ *rand.Rand) (*dataset.Dataset, error) {
	if err := validateAttrs(orig, attrs); err != nil {
		return nil, err
	}
	out := orig.Clone()
	col := make([]int, orig.Rows())
	for _, c := range attrs {
		card := orig.Schema().Attr(c).Cardinality()
		h, err := hierarchy.Auto(card, 2)
		if err != nil {
			return nil, fmt.Errorf("protection: global recoding on %s: %w", orig.Schema().Attr(c).Name(), err)
		}
		level := g.Depth
		if max := h.NumLevels() - 1; level > max {
			level = max
		}
		orig.ColumnInto(col, c)
		recode := h.Recode(level, stats.Freq(col, card))
		for r, v := range col {
			out.Set(r, c, recode[v])
		}
	}
	return out, nil
}
