package protection

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"evoprot/internal/dataset"
)

// MicroConfig describes how microaggregation groups the protected
// attributes: Groups is a partition of the relative positions
// 0..len(attrs)-1, and the order inside each group is the lexicographic
// sort priority used to form the aggregation blocks. Different configs on
// the same k explore different projections of the data, which is how the
// paper's 72-variant microaggregation grids arise.
type MicroConfig struct {
	Groups [][]int
}

// microConfigs3 is the canonical config family for three protected
// attributes (every dataset in the paper protects exactly three): the
// joint projection under two sort rotations, every 2+1 split under both
// pair orders, and the fully per-attribute split — nine configurations.
var microConfigs3 = []MicroConfig{
	{Groups: [][]int{{0, 1, 2}}},
	{Groups: [][]int{{1, 2, 0}}},
	{Groups: [][]int{{0, 1}, {2}}},
	{Groups: [][]int{{1, 0}, {2}}},
	{Groups: [][]int{{0, 2}, {1}}},
	{Groups: [][]int{{2, 0}, {1}}},
	{Groups: [][]int{{1, 2}, {0}}},
	{Groups: [][]int{{2, 1}, {0}}},
	{Groups: [][]int{{0}, {1}, {2}}},
}

// MicroConfigs returns the configuration family for the given number of
// protected attributes: the 9-config family for three attributes, and a
// generic {joint, per-attribute} pair otherwise.
func MicroConfigs(numAttrs int) []MicroConfig {
	if numAttrs == 3 {
		out := make([]MicroConfig, len(microConfigs3))
		copy(out, microConfigs3)
		return out
	}
	joint := make([]int, numAttrs)
	singles := make([][]int, numAttrs)
	for i := 0; i < numAttrs; i++ {
		joint[i] = i
		singles[i] = []int{i}
	}
	return []MicroConfig{{Groups: [][]int{joint}}, {Groups: singles}}
}

// Microaggregation is the median-based categorical microaggregation of
// Torra (2004): records are sorted by the grouped attributes, split into
// consecutive blocks of at least K records, and every value in a block is
// replaced by the block's per-attribute median category (mode for
// unordered attributes). Deterministic.
type Microaggregation struct {
	K      int
	Config int // index into MicroConfigs(len(attrs))
}

// NewMicroaggregation validates parameters. config indexes the
// configuration family of the eventual attrs list; validation of the index
// happens at Protect time when the family size is known.
func NewMicroaggregation(k, config int) (*Microaggregation, error) {
	if k < 2 {
		return nil, fmt.Errorf("protection: microaggregation k=%d < 2 provides no grouping", k)
	}
	if config < 0 {
		return nil, fmt.Errorf("protection: negative microaggregation config %d", config)
	}
	return &Microaggregation{K: k, Config: config}, nil
}

// Name implements Method.
func (m *Microaggregation) Name() string { return "microaggregation" }

// Params implements Method.
func (m *Microaggregation) Params() string { return fmt.Sprintf("k=%d config=%d", m.K, m.Config) }

// Protect implements Method.
func (m *Microaggregation) Protect(orig *dataset.Dataset, attrs []int, _ *rand.Rand) (*dataset.Dataset, error) {
	if err := validateAttrs(orig, attrs); err != nil {
		return nil, err
	}
	configs := MicroConfigs(len(attrs))
	if m.Config >= len(configs) {
		return nil, fmt.Errorf("protection: microaggregation config %d out of range [0,%d)", m.Config, len(configs))
	}
	cfg := configs[m.Config]
	n := orig.Rows()
	out := orig.Clone()
	if n == 0 {
		return out, nil
	}
	for _, group := range cfg.Groups {
		cols := make([]int, len(group))
		for i, rel := range group {
			if rel < 0 || rel >= len(attrs) {
				return nil, fmt.Errorf("protection: microaggregation config references attribute position %d", rel)
			}
			cols[i] = attrs[rel]
		}
		microaggregateGroup(orig, out, cols, m.K)
	}
	return out, nil
}

// microaggregateGroup sorts records by cols (lexicographically, on the
// *original* values so blocks are stable regardless of other groups), forms
// blocks of size >= k, and writes block centroids into out.
func microaggregateGroup(orig, out *dataset.Dataset, cols []int, k int) {
	n := orig.Rows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := order[a], order[b]
		for _, c := range cols {
			va, vb := orig.At(ra, c), orig.At(rb, c)
			if va != vb {
				return va < vb
			}
		}
		return false
	})
	numBlocks := n / k
	if numBlocks == 0 {
		numBlocks = 1
	}
	for b := 0; b < numBlocks; b++ {
		lo := b * k
		hi := lo + k
		if b == numBlocks-1 {
			hi = n // the remainder joins the last block (sizes k..2k-1)
		}
		block := order[lo:hi]
		for _, c := range cols {
			centroid := blockCentroid(orig, block, c)
			for _, r := range block {
				out.Set(r, c, centroid)
			}
		}
	}
}

// blockCentroid returns the median category index (lower median) for
// ordered attributes and the modal category (smallest index on ties) for
// unordered ones.
func blockCentroid(d *dataset.Dataset, block []int, col int) int {
	vals := make([]int, len(block))
	for i, r := range block {
		vals[i] = d.At(r, col)
	}
	if d.Schema().Attr(col).Ordered() {
		sort.Ints(vals)
		return vals[(len(vals)-1)/2]
	}
	counts := make(map[int]int)
	best, bestCount := vals[0], 0
	for _, v := range vals {
		counts[v]++
	}
	for v, c := range counts {
		if c > bestCount || (c == bestCount && v < best) {
			best, bestCount = v, c
		}
	}
	return best
}
