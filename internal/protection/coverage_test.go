package protection

import (
	"math/rand/v2"
	"strings"
	"testing"

	"evoprot/internal/dataset"
)

// Coverage-closing tests: Params strings, Must, grid midpoints, nominal
// (mode-based) microaggregation centroids, and degenerate inputs.

func TestParamsStrings(t *testing.T) {
	cases := map[string]string{
		"micro:k=4,config=2": "k=4 config=2",
		"top:q=0.1":          "q=0.100",
		"bottom:q=0.25":      "q=0.250",
		"recode:depth=3":     "depth=3",
		"rankswap:p=7.5":     "p=7.5",
		"pram:theta=0.625":   "theta=0.625",
	}
	for spec, want := range cases {
		m := Must(spec)
		if got := m.Params(); got != want {
			t.Errorf("%s: Params = %q, want %q", spec, got, want)
		}
	}
}

func TestMustPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must on bad spec did not panic")
		}
	}()
	Must("nope:x=1")
}

func TestSpreadSinglePoint(t *testing.T) {
	if got := spread(2, 10, 1); len(got) != 1 || got[0] != 6 {
		t.Fatalf("spread midpoint = %v", got)
	}
	if got := spread(2, 10, 0); got != nil {
		t.Fatalf("spread of 0 = %v", got)
	}
}

func TestGridsOfSizeOne(t *testing.T) {
	// Single-variant grids take the parameter-range midpoint.
	for _, grid := range [][]Method{
		TopCodingGrid(1), BottomCodingGrid(1), GlobalRecodingGrid(1),
		RankSwappingGrid(1), PRAMGrid(1), MicroaggregationGrid(1, 3),
	} {
		if len(grid) != 1 {
			t.Fatalf("grid size = %d", len(grid))
		}
	}
}

func TestNewMicroaggregationValidation(t *testing.T) {
	if _, err := NewMicroaggregation(1, 0); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewMicroaggregation(3, -1); err == nil {
		t.Error("negative config accepted")
	}
}

// TestMicroaggregationNominalMode: unordered attributes aggregate to the
// block mode, with ties broken toward the smallest category index.
func TestMicroaggregationNominalMode(t *testing.T) {
	s := dataset.MustSchema(
		dataset.MustAttribute("color", []string{"red", "green", "blue"}, false), // nominal
	)
	d, err := dataset.FromRecords(s, [][]string{
		{"blue"}, {"blue"}, {"red"}, {"green"}, {"green"}, {"blue"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMicroaggregation(6, 0) // one block of all six records
	masked, err := m.Protect(d, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mode of {blue x3, green x2, red x1} is blue.
	for r := 0; r < masked.Rows(); r++ {
		if masked.Value(r, 0) != "blue" {
			t.Fatalf("record %d = %q, want blue", r, masked.Value(r, 0))
		}
	}
}

func TestMicroaggregationNominalModeTieBreak(t *testing.T) {
	s := dataset.MustSchema(
		dataset.MustAttribute("color", []string{"red", "green"}, false),
	)
	d, err := dataset.FromRecords(s, [][]string{
		{"green"}, {"red"}, {"green"}, {"red"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMicroaggregation(4, 0)
	masked, err := m.Protect(d, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2-2 tie: smallest index (red) wins.
	if masked.Value(0, 0) != "red" {
		t.Fatalf("tie broke to %q, want red", masked.Value(0, 0))
	}
}

func TestMicroaggregationEmptyDataset(t *testing.T) {
	s := dataset.MustSchema(dataset.MustAttribute("x", []string{"a", "b"}, true))
	d := dataset.New(s, 0)
	m, _ := NewMicroaggregation(3, 0)
	masked, err := m.Protect(d, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if masked.Rows() != 0 {
		t.Fatal("empty dataset grew rows")
	}
}

func TestMicroaggregationFewerRecordsThanK(t *testing.T) {
	s := dataset.MustSchema(dataset.MustAttribute("x", []string{"a", "b", "c"}, true))
	d, _ := dataset.FromRecords(s, [][]string{{"a"}, {"c"}})
	m, _ := NewMicroaggregation(10, 0)
	masked, err := m.Protect(d, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both records form one block; the ordered median of {a, c} (lower
	// median) is a.
	if masked.Value(0, 0) != "a" || masked.Value(1, 0) != "a" {
		t.Fatalf("values = %q, %q", masked.Value(0, 0), masked.Value(1, 0))
	}
}

func TestParseWeirdSpecs(t *testing.T) {
	// Parameters for one method are rejected by value validation, not
	// silently ignored.
	if _, err := Parse("micro:config=-1"); err == nil {
		t.Error("negative config accepted")
	}
	if _, err := Parse("top:q=abc"); err == nil {
		t.Error("non-numeric q accepted")
	}
	if _, err := Parse("recode:depth=x"); err == nil {
		t.Error("non-numeric depth accepted")
	}
	if _, err := Parse("rankswap:p=abc"); err == nil {
		t.Error("non-numeric p accepted")
	}
	if _, err := Parse("pram:theta=abc"); err == nil {
		t.Error("non-numeric theta accepted")
	}
	// Unknown parameters are tolerated (defaults apply) — documented
	// lenient behaviour.
	m, err := Parse("pram:myknob=3")
	if err != nil {
		t.Fatalf("unknown param rejected: %v", err)
	}
	if !strings.Contains(m.Params(), "0.800") {
		t.Fatalf("default theta lost: %s", m.Params())
	}
}

func TestRankSwappingWindowAtLeastOne(t *testing.T) {
	// Tiny p on a tiny file: the window clamps to one rank, the method
	// still runs and preserves marginals.
	s := dataset.MustSchema(dataset.MustAttribute("x", []string{"a", "b", "c"}, true))
	d, _ := dataset.FromRecords(s, [][]string{{"a"}, {"b"}, {"c"}, {"a"}, {"b"}})
	rs, _ := NewRankSwapping(0.1)
	masked, err := rs.Protect(d, []int{0}, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := masked.Validate(); err != nil {
		t.Fatal(err)
	}
}
