package protection

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
)

func benchData(b *testing.B, rows int) (*dataset.Dataset, []int) {
	b.Helper()
	d := datagen.MustByName("flare", rows, 5)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		b.Fatal(err)
	}
	return d, attrs
}

func benchMethod(b *testing.B, spec string) {
	b.Helper()
	d, attrs := benchData(b, 1000)
	m := Must(spec)
	rng := rand.New(rand.NewPCG(5, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Protect(d, attrs, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroaggregation(b *testing.B) { benchMethod(b, "micro:k=5,config=0") }
func BenchmarkTopCoding(b *testing.B)        { benchMethod(b, "top:q=0.15") }
func BenchmarkBottomCoding(b *testing.B)     { benchMethod(b, "bottom:q=0.15") }
func BenchmarkGlobalRecoding(b *testing.B)   { benchMethod(b, "recode:depth=2") }
func BenchmarkRankSwapping(b *testing.B)     { benchMethod(b, "rankswap:p=10") }
func BenchmarkPRAM(b *testing.B)             { benchMethod(b, "pram:theta=0.8") }

// BenchmarkPaperGrid measures the cost of building one full initial
// population (the flare composition: 104 maskings).
func BenchmarkPaperGrid(b *testing.B) {
	d, attrs := benchData(b, 1000)
	comp, err := PaperComposition("flare")
	if err != nil {
		b.Fatal(err)
	}
	methods := comp.Grid(len(attrs))
	rng := rand.New(rand.NewPCG(7, 7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range methods {
			if _, err := m.Protect(d, attrs, rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}
