package protection

import (
	"fmt"
	"math/rand/v2"

	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// PRAM is the Post-Randomization Method (Gouweleeuw et al. 1998): each
// value survives with probability Theta and is otherwise resampled from
// the attribute's empirical marginal distribution. The implied Markov
// matrix is P(v|u) = θ·1[u=v] + (1−θ)·p̂(v), a standard
// marginal-preserving-in-expectation choice. Stochastic.
type PRAM struct {
	Theta float64 // retention probability
}

// NewPRAM validates the retention probability.
func NewPRAM(theta float64) (*PRAM, error) {
	if theta < 0 || theta >= 1 {
		return nil, fmt.Errorf("protection: pram theta=%v outside [0,1)", theta)
	}
	return &PRAM{Theta: theta}, nil
}

// Name implements Method.
func (p *PRAM) Name() string { return "pram" }

// Params implements Method.
func (p *PRAM) Params() string { return fmt.Sprintf("theta=%.3f", p.Theta) }

// Protect implements Method.
func (p *PRAM) Protect(orig *dataset.Dataset, attrs []int, rng *rand.Rand) (*dataset.Dataset, error) {
	if err := validateAttrs(orig, attrs); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("protection: pram requires an RNG")
	}
	out := orig.Clone()
	col := make([]int, orig.Rows())
	for _, c := range attrs {
		orig.ColumnInto(col, c)
		card := orig.Schema().Attr(c).Cardinality()
		freq := stats.Freq(col, card)
		total := 0
		for _, f := range freq {
			total += f
		}
		if total == 0 {
			continue
		}
		// Cumulative marginal for inverse-CDF resampling.
		cdf := make([]float64, card)
		cum := 0.0
		for v, f := range freq {
			cum += float64(f) / float64(total)
			cdf[v] = cum
		}
		cdf[card-1] = 1
		for r, v := range col {
			if rng.Float64() < p.Theta {
				continue // retained
			}
			u := rng.Float64()
			nv := v
			for k, cp := range cdf {
				if u <= cp {
					nv = k
					break
				}
			}
			out.Set(r, c, nv)
		}
	}
	return out, nil
}
