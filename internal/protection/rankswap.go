package protection

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"evoprot/internal/dataset"
)

// RankSwapping implements Moore's (1996) controlled data swapping adapted
// to ordered categorical domains: per attribute, records are ranked by
// category; each unswapped record exchanges values with a random unswapped
// partner whose rank lies within P percent of the file size. Smaller P
// preserves more structure; larger P protects more. Stochastic.
type RankSwapping struct {
	P float64 // rank window as a percentage of the number of records
}

// NewRankSwapping validates the window percentage.
func NewRankSwapping(p float64) (*RankSwapping, error) {
	if p <= 0 || p > 100 {
		return nil, fmt.Errorf("protection: rank swapping p=%v outside (0,100]", p)
	}
	return &RankSwapping{P: p}, nil
}

// Name implements Method.
func (rs *RankSwapping) Name() string { return "rankswapping" }

// Params implements Method.
func (rs *RankSwapping) Params() string { return fmt.Sprintf("p=%.1f", rs.P) }

// Protect implements Method.
func (rs *RankSwapping) Protect(orig *dataset.Dataset, attrs []int, rng *rand.Rand) (*dataset.Dataset, error) {
	if err := validateAttrs(orig, attrs); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("protection: rank swapping requires an RNG")
	}
	out := orig.Clone()
	n := orig.Rows()
	if n < 2 {
		return out, nil
	}
	window := int(rs.P * float64(n) / 100)
	if window < 1 {
		window = 1
	}
	order := make([]int, n)
	swapped := make([]bool, n)
	for _, c := range attrs {
		for i := range order {
			order[i] = i
		}
		// Rank records by original category; stable so ties keep record order.
		sort.SliceStable(order, func(a, b int) bool {
			return orig.At(order[a], c) < orig.At(order[b], c)
		})
		for i := range swapped {
			swapped[i] = false
		}
		for i := 0; i < n; i++ {
			if swapped[i] {
				continue
			}
			hi := i + window
			if hi > n-1 {
				hi = n - 1
			}
			if hi == i {
				break // tail record with no partner window left
			}
			// Collect unswapped candidates in (i, hi]; pick uniformly.
			j := -1
			count := 0
			for k := i + 1; k <= hi; k++ {
				if swapped[k] {
					continue
				}
				count++
				if rng.IntN(count) == 0 {
					j = k
				}
			}
			if j < 0 {
				continue
			}
			ri, rj := order[i], order[j]
			vi, vj := out.At(ri, c), out.At(rj, c)
			out.Set(ri, c, vj)
			out.Set(rj, c, vi)
			swapped[i], swapped[j] = true, true
		}
	}
	return out, nil
}
