package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestScatterContainsMarkersAndLegend(t *testing.T) {
	series := []ScatterSeries{
		{Name: "initial", Marker: 'o', Points: []Point{{10, 20}, {30, 40}}},
		{Name: "final", Marker: '*', Points: []Point{{15, 25}}},
	}
	out := Scatter(series, 40, 12, "Fig", "IL", "DR")
	if !strings.Contains(out, "o") || !strings.Contains(out, "*") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "o=initial (2)") || !strings.Contains(out, "*=final (1)") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "Fig") {
		t.Fatalf("title missing:\n%s", out)
	}
}

func TestScatterEmptySeries(t *testing.T) {
	out := Scatter(nil, 30, 8, "", "x", "y")
	if out == "" {
		t.Fatal("empty scatter rendered nothing")
	}
	out = Scatter([]ScatterSeries{{Name: "e", Marker: '.', Points: nil}}, 30, 8, "", "x", "y")
	if !strings.Contains(out, ".=e (0)") {
		t.Fatalf("legend for empty series missing:\n%s", out)
	}
}

func TestScatterSinglePoint(t *testing.T) {
	// A single point gives degenerate ranges; must not panic or divide by
	// zero.
	out := Scatter([]ScatterSeries{{Name: "p", Marker: 'x', Points: []Point{{5, 5}}}}, 20, 6, "", "", "")
	if !strings.Contains(out, "x") {
		t.Fatalf("point missing:\n%s", out)
	}
}

func TestScatterDimensions(t *testing.T) {
	series := []ScatterSeries{{Name: "a", Marker: '#', Points: []Point{{0, 0}, {1, 1}}}}
	out := Scatter(series, 50, 10, "t", "x", "y")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 canvas rows + axis + x labels + legend = 14
	if len(lines) != 14 {
		t.Fatalf("line count = %d, want 14:\n%s", len(lines), out)
	}
}

func TestLinesRendersAllSeries(t *testing.T) {
	series := []LineSeries{
		{Name: "max", Marker: 'M', Values: []float64{40, 39, 38, 36}},
		{Name: "mean", Marker: 'm', Values: []float64{30, 29.5, 29, 28}},
		{Name: "min", Marker: '_', Values: []float64{25, 25, 24.8, 24.8}},
	}
	out := Lines(series, 40, 10, "Evolution", "generation", "score")
	for _, marker := range []string{"M", "m", "_"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("marker %s missing:\n%s", marker, out)
		}
	}
	if !strings.Contains(out, "M=max") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestLinesEmptyAndShort(t *testing.T) {
	if out := Lines(nil, 30, 8, "", "", ""); out == "" {
		t.Fatal("empty lines rendered nothing")
	}
	out := Lines([]LineSeries{{Name: "one", Marker: 'o', Values: []float64{5}}}, 30, 8, "", "", "")
	if !strings.Contains(out, "o") {
		t.Fatalf("single-value series missing:\n%s", out)
	}
}

func TestLinesDownsamplesLongSeries(t *testing.T) {
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := Lines([]LineSeries{{Name: "long", Marker: '+', Values: vals}}, 40, 10, "", "", "")
	if !strings.Contains(out, "+") {
		t.Fatal("downsampled series missing")
	}
}

func TestWriteScatterCSV(t *testing.T) {
	var buf bytes.Buffer
	series := []ScatterSeries{
		{Name: "a", Marker: 'a', Points: []Point{{1, 2}, {3, 4}}},
		{Name: "b", Marker: 'b', Points: []Point{{5, 6}}},
	}
	if err := WriteScatterCSV(&buf, series, "il", "dr"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(lines), buf.String())
	}
	if lines[0] != "series,il,dr" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "b,5.000000,6.000000") {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestWriteLinesCSV(t *testing.T) {
	var buf bytes.Buffer
	series := []LineSeries{
		{Name: "max", Values: []float64{3, 2}},
		{Name: "min", Values: []float64{1}},
	}
	if err := WriteLinesCSV(&buf, series, "gen"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "gen,max,min" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "1,2.000000," {
		t.Fatalf("ragged row = %q", lines[2])
	}
}

func TestScaleClamps(t *testing.T) {
	if got := scale(-5, 0, 10, 10); got != 0 {
		t.Errorf("scale below min = %d", got)
	}
	if got := scale(15, 0, 10, 10); got != 9 {
		t.Errorf("scale above max = %d", got)
	}
	if got := scale(5, 5, 5, 10); got != 0 {
		t.Errorf("degenerate scale = %d", got)
	}
}
