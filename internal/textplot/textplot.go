// Package textplot renders the paper's two figure families as plain-text
// charts: dispersion scatter plots of (IL, DR) pairs (Figures 1, 3, 5, ...)
// and max/mean/min score evolution lines (Figures 2, 4, 6, ...). It also
// exports the underlying series as CSV so the figures can be re-plotted
// with any external tool.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one (X, Y) mark on a scatter plot.
type Point struct {
	X, Y float64
}

// ScatterSeries is one named group of points drawn with one marker.
type ScatterSeries struct {
	Name   string
	Marker rune
	Points []Point
}

// LineSeries is one named trajectory; index is the x axis.
type LineSeries struct {
	Name   string
	Marker rune
	Values []float64
}

// Scatter renders the series on a width×height character canvas with axes
// and a legend. Later series overdraw earlier ones where points collide.
func Scatter(series []ScatterSeries, width, height int, title, xLabel, yLabel string) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, minY, maxY = 0, 1, 0, 1 // no points
	}
	minX, maxX = pad(minX, maxX)
	minY, maxY = pad(minY, maxY)

	canvas := newCanvas(width, height)
	for _, s := range series {
		for _, p := range s.Points {
			cx := scale(p.X, minX, maxX, width)
			cy := height - 1 - scale(p.Y, minY, maxY, height)
			canvas[cy][cx] = s.Marker
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeFrame(&b, canvas, minX, maxX, minY, maxY, xLabel, yLabel)
	writeLegend(&b, legendEntries(series))
	return b.String()
}

// Lines renders trajectories over their index. Series longer than the
// canvas are downsampled.
func Lines(series []LineSeries, width, height int, title, xLabel, yLabel string) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	maxLen := 0
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
		for _, v := range s.Values {
			minY, maxY = math.Min(minY, v), math.Max(maxY, v)
		}
	}
	if maxLen == 0 {
		minY, maxY = 0, 1
	}
	minY, maxY = pad(minY, maxY)

	canvas := newCanvas(width, height)
	for _, s := range series {
		if len(s.Values) == 0 {
			continue
		}
		for cx := 0; cx < width; cx++ {
			idx := cx * (len(s.Values) - 1)
			if width > 1 {
				idx /= width - 1
			}
			v := s.Values[idx]
			cy := height - 1 - scale(v, minY, maxY, height)
			canvas[cy][cx] = s.Marker
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeFrame(&b, canvas, 0, float64(maxInt(maxLen-1, 1)), minY, maxY, xLabel, yLabel)
	entries := make([]string, len(series))
	for i, s := range series {
		entries[i] = fmt.Sprintf("%c=%s", s.Marker, s.Name)
	}
	writeLegend(&b, entries)
	return b.String()
}

// WriteScatterCSV emits "series,x,y" rows for external plotting.
func WriteScatterCSV(w io.Writer, series []ScatterSeries, xName, yName string) error {
	if _, err := fmt.Fprintf(w, "series,%s,%s\n", xName, yName); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%.6f,%.6f\n", s.Name, p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteLinesCSV emits "index,<series names...>" rows; shorter series leave
// blanks past their end.
func WriteLinesCSV(w io.Writer, series []LineSeries, indexName string) error {
	names := make([]string, len(series))
	maxLen := 0
	for i, s := range series {
		names[i] = s.Name
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if _, err := fmt.Fprintf(w, "%s,%s\n", indexName, strings.Join(names, ",")); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		fields := make([]string, 0, len(series)+1)
		fields = append(fields, fmt.Sprintf("%d", i))
		for _, s := range series {
			if i < len(s.Values) {
				fields = append(fields, fmt.Sprintf("%.6f", s.Values[i]))
			} else {
				fields = append(fields, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

func newCanvas(width, height int) [][]rune {
	canvas := make([][]rune, height)
	for i := range canvas {
		canvas[i] = make([]rune, width)
		for j := range canvas[i] {
			canvas[i][j] = ' '
		}
	}
	return canvas
}

// scale maps v in [min,max] to a cell in [0,cells-1].
func scale(v, min, max float64, cells int) int {
	if max <= min {
		return 0
	}
	c := int((v - min) / (max - min) * float64(cells-1))
	if c < 0 {
		c = 0
	}
	if c > cells-1 {
		c = cells - 1
	}
	return c
}

// pad widens a degenerate range so scaling is well-defined.
func pad(min, max float64) (float64, float64) {
	if max > min {
		return min, max
	}
	return min - 0.5, max + 0.5
}

func writeFrame(b *strings.Builder, canvas [][]rune, minX, maxX, minY, maxY float64, xLabel, yLabel string) {
	height := len(canvas)
	width := len(canvas[0])
	yLo := fmt.Sprintf("%.1f", minY)
	yHi := fmt.Sprintf("%.1f", maxY)
	gutter := maxInt(len(yLo), len(yHi))
	for i, row := range canvas {
		label := strings.Repeat(" ", gutter)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", gutter, yHi)
		case height - 1:
			label = fmt.Sprintf("%*s", gutter, yLo)
		case height / 2:
			if yLabel != "" && len(yLabel) <= gutter {
				label = fmt.Sprintf("%*s", gutter, yLabel)
			}
		}
		fmt.Fprintf(b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(b, "%s +%s+\n", strings.Repeat(" ", gutter), strings.Repeat("-", width))
	xLo := fmt.Sprintf("%.1f", minX)
	xHi := fmt.Sprintf("%.1f", maxX)
	mid := xLabel
	inner := width - len(xLo) - len(xHi)
	if len(mid) > inner-2 || inner < 2 {
		mid = ""
	}
	leftPad := (inner - len(mid)) / 2
	rightPad := inner - len(mid) - leftPad
	fmt.Fprintf(b, "%s  %s%s%s%s\n", strings.Repeat(" ", gutter), xLo,
		strings.Repeat(" ", maxInt(leftPad, 0)), mid+strings.Repeat(" ", maxInt(rightPad, 0)), xHi)
}

func legendEntries(series []ScatterSeries) []string {
	entries := make([]string, len(series))
	for i, s := range series {
		entries[i] = fmt.Sprintf("%c=%s (%d)", s.Marker, s.Name, len(s.Points))
	}
	return entries
}

func writeLegend(b *strings.Builder, entries []string) {
	if len(entries) == 0 {
		return
	}
	fmt.Fprintf(b, "  %s\n", strings.Join(entries, "   "))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
