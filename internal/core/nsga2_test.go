package core

// Tests for Pareto mode: configuration validation, the environmental
// selection primitive (including the single-objective degeneration
// property), fixed-seed determinism and snapshot/resume bit-identity,
// batch/non-batch equivalence, dominance-based migration, and the
// NSGA2Generation benchmark tracked by the CI hot subset.

import (
	"bytes"
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"evoprot/internal/pareto"
	"evoprot/internal/score"
)

func TestObjectiveByName(t *testing.T) {
	for name, want := range map[string]string{"": "", "scalar": ObjectiveScalar, "pareto": ObjectivePareto} {
		got, err := ObjectiveByName(name)
		if err != nil || got != want {
			t.Fatalf("ObjectiveByName(%q) = %q, %v", name, got, err)
		}
	}
	if _, err := ObjectiveByName("lexicographic"); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestObjectiveConfigValidation(t *testing.T) {
	if err := (Config{Objective: "nsga3"}).Validate(); err == nil {
		t.Fatal("bad objective accepted")
	}
	for _, ref := range []score.Pair{
		{IL: -1, DR: 100},
		{IL: 100, DR: -1},
		{IL: math.NaN(), DR: 100},
		{IL: math.Inf(1), DR: 100},
	} {
		if err := (Config{Objective: ObjectivePareto, ParetoRef: ref}).Validate(); err == nil {
			t.Fatalf("ParetoRef %v accepted", ref)
		}
		// The reference is validated even in scalar mode, so a typo in a
		// heterogeneous template surfaces at admission.
		if err := (Config{ParetoRef: ref}).Validate(); err == nil {
			t.Fatalf("scalar-mode ParetoRef %v accepted", ref)
		}
	}
	cfg := Config{Objective: ObjectivePareto}
	c, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.ParetoRef != DefaultParetoRef {
		t.Fatalf("defaulted ParetoRef = %v, want %v", c.ParetoRef, DefaultParetoRef)
	}
}

func TestObjectiveMergedInheritance(t *testing.T) {
	template := Config{Objective: ObjectivePareto, ParetoRef: score.Pair{IL: 80, DR: 90}}
	if got := template.Merged(Config{}); got.Objective != ObjectivePareto || got.ParetoRef != template.ParetoRef {
		t.Fatalf("zero override lost objective fields: %+v", got)
	}
	got := (Config{}).Merged(template)
	if got.Objective != ObjectivePareto || got.ParetoRef != template.ParetoRef {
		t.Fatalf("override did not apply objective fields: %+v", got)
	}
}

// pairPool wraps raw pairs as individuals scored under Mean, the setup
// the envSelect unit tests drive directly.
func pairPool(pairs []score.Pair) []*Individual {
	pool := make([]*Individual, len(pairs))
	for i, p := range pairs {
		pool[i] = &Individual{Eval: score.Evaluation{IL: p.IL, DR: p.DR, Score: (p.IL + p.DR) / 2}}
	}
	return pool
}

// TestEnvSelectSingleObjectiveMatchesScalar: with one objective tied off
// (all-equal DR) dominance degenerates to the IL order, so NSGA-II
// environmental selection must keep exactly the survivor set a scalarized
// truncation would — the n individuals with the lowest IL (as a
// multiset; ties are interchangeable).
func TestEnvSelectSingleObjectiveMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 29))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.IntN(20)
		extra := 1 + rng.IntN(10)
		dr := float64(rng.IntN(100))
		pairs := make([]score.Pair, n+extra)
		for i := range pairs {
			// A small integer domain forces plenty of exact ties.
			pairs[i] = score.Pair{IL: float64(rng.IntN(12)), DR: dr}
		}
		kept := envSelect(pairPool(pairs), n)
		if len(kept) != n {
			t.Fatalf("trial %d: kept %d of %d", trial, len(kept), n)
		}
		got := make([]float64, n)
		for i, ind := range kept {
			got[i] = ind.Eval.IL
		}
		want := make([]float64, len(pairs))
		for i, p := range pairs {
			want[i] = p.IL
		}
		sort.Float64s(want)
		sort.Float64s(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: survivor ILs %v, scalar truncation keeps %v", trial, got, want[:n])
			}
		}
	}
}

// TestEnvSelectKeepsNonDominated: no evicted individual may dominate a
// survivor, and the first front always survives intact when it fits.
func TestEnvSelectKeepsNonDominated(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 31))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.IntN(15)
		pairs := make([]score.Pair, n+2)
		for i := range pairs {
			pairs[i] = score.Pair{IL: rng.Float64() * 100, DR: rng.Float64() * 100}
		}
		pool := pairPool(pairs)
		kept := envSelect(pool, n)
		for _, ind := range pool {
			if containsIndividual(kept, ind) {
				continue
			}
			for _, k := range kept {
				if pareto.Dominates(ind.Eval.Pair(), k.Eval.Pair()) {
					t.Fatalf("trial %d: evicted %v dominates survivor %v", trial, ind.Eval.Pair(), k.Eval.Pair())
				}
			}
		}
	}
}

func paretoCfg(cfg Config) Config {
	cfg.Objective = ObjectivePareto
	return cfg
}

// TestParetoRunDeterministic: a fixed seed reproduces a Pareto run bit
// for bit — history (including per-generation fronts), final population
// order and data.
func TestParetoRunDeterministic(t *testing.T) {
	run := func() *Result {
		return mustRun(t, testEngine(t, paretoCfg(Config{Generations: 60, Seed: 91})))
	}
	a, b := run(), run()
	sameHistories(t, "pareto fixed seed", a.History, b.History)
	if len(a.Population) != len(b.Population) {
		t.Fatal("population sizes diverged")
	}
	for i := range a.Population {
		if !a.Population[i].Data.Equal(b.Population[i].Data) {
			t.Fatalf("individual %d diverged", i)
		}
	}
}

// TestParetoFrontStatsPopulated: every Pareto generation carries a
// consistent front summary; scalar runs carry none (their event bytes
// must stay identical to pre-Pareto builds).
func TestParetoFrontStatsPopulated(t *testing.T) {
	res := mustRun(t, testEngine(t, paretoCfg(Config{Generations: 30, Seed: 5})))
	for _, gs := range res.History {
		if gs.Front == nil {
			t.Fatalf("generation %d: no front stats", gs.Gen)
		}
		if gs.Front.Size != len(gs.Front.Pairs) || gs.Front.Size < 1 {
			t.Fatalf("generation %d: front size %d with %d pairs", gs.Gen, gs.Front.Size, len(gs.Front.Pairs))
		}
		if gs.Front.Hypervolume <= 0 {
			t.Fatalf("generation %d: hypervolume %v", gs.Gen, gs.Front.Hypervolume)
		}
		for i, p := range gs.Front.Pairs {
			for j, q := range gs.Front.Pairs {
				if i != j && pareto.Dominates(p, q) {
					t.Fatalf("generation %d: front point %v dominates front point %v", gs.Gen, p, q)
				}
			}
		}
	}
	scalar := mustRun(t, testEngine(t, Config{Generations: 10, Seed: 5}))
	for _, gs := range scalar.History {
		if gs.Front != nil {
			t.Fatalf("scalar generation %d grew front stats", gs.Gen)
		}
	}
}

// TestParetoBestOnFirstFront: the reported best individual is always a
// member of the population's first non-dominated front.
func TestParetoBestOnFirstFront(t *testing.T) {
	e := testEngine(t, paretoCfg(Config{Generations: 40, Seed: 77}))
	mustRun(t, e)
	best := e.Best()
	for _, ind := range e.Population() {
		if pareto.Dominates(ind.Eval.Pair(), best.Eval.Pair()) {
			t.Fatalf("best %v is dominated by %v", best.Eval.Pair(), ind.Eval.Pair())
		}
	}
}

// TestParetoBatchMatchesPerOffspring: Pareto mode must be bit-identical
// across the three evaluation modes, like scalar mode is — replacement
// and selection read only the (IL, DR) pairs, which the modes produce
// identically, and the environmental-selection state handoff must not
// disturb the trajectory.
func TestParetoBatchMatchesPerOffspring(t *testing.T) {
	for _, seed := range []uint64{7, 42} {
		base := paretoCfg(Config{Generations: 60, Seed: seed})
		cloneCfg, fullCfg := base, base
		cloneCfg.DisableBatch = true
		fullCfg.DisableDelta = true
		batch := mustRun(t, testEngine(t, base))
		clone := mustRun(t, testEngine(t, cloneCfg))
		full := mustRun(t, testEngine(t, fullCfg))
		sameHistories(t, "pareto batch vs per-offspring", batch.History, clone.History)
		sameHistories(t, "pareto batch vs full", batch.History, full.History)
		if !batch.Best.Data.Equal(clone.Best.Data) || !batch.Best.Data.Equal(full.Best.Data) {
			t.Fatalf("seed %d: best individuals diverged", seed)
		}
	}
}

// TestParetoStatesStayConsistent: after a Pareto run with its
// any-slot evictions and state transfers, every cached evaluation and
// carried delta state must still describe its individual.
func TestParetoStatesStayConsistent(t *testing.T) {
	e := testEngine(t, paretoCfg(Config{Generations: 80, Seed: 55, EvalWorkers: 2}))
	mustRun(t, e)
	for i, ind := range e.Population() {
		want, err := e.eval.Evaluate(ind.Data)
		if err != nil {
			t.Fatal(err)
		}
		if ind.Eval.IL != want.IL || ind.Eval.DR != want.DR {
			t.Fatalf("individual %d (%s): cached (IL=%v DR=%v) != fresh (IL=%v DR=%v)",
				i, ind.Origin, ind.Eval.IL, ind.Eval.DR, want.IL, want.DR)
		}
	}
}

// TestParetoSnapshotResume: run N+M generations straight, versus run N,
// snapshot, resume, run M — identical histories and final populations.
func TestParetoSnapshotResume(t *testing.T) {
	cfg := paretoCfg(Config{Generations: 40, Seed: 19})
	straight := testEngine(t, cfg)
	for g := 0; g < 40; g++ {
		straight.Step()
	}

	first := testEngine(t, cfg)
	for g := 0; g < 25; g++ {
		first.Step()
	}
	var buf bytes.Buffer
	if err := first.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	eval, _ := testPopulation(t)
	resumed, err := Resume(eval, &buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 15; g++ {
		resumed.Step()
	}
	sameHistories(t, "pareto straight vs snapshot/resume", straight.History(), resumed.History())
	sp, rp := straight.Population(), resumed.Population()
	if len(sp) != len(rp) {
		t.Fatal("population sizes diverged")
	}
	for i := range sp {
		if !sp[i].Data.Equal(rp[i].Data) {
			t.Fatalf("individual %d diverged after resume", i)
		}
	}
}

// TestParetoImmigrate: a dominating migrant is accepted by environmental
// selection, a dominated one is rejected, and a rejected offer leaves the
// tournament state exactly as a fresh sort derives it.
func TestParetoImmigrate(t *testing.T) {
	e := testEngine(t, paretoCfg(Config{Generations: 10, Seed: 3}))
	dominating := &Individual{
		Data: e.pop[0].Data,
		Eval: score.Evaluation{IL: 0, DR: 0},
	}
	if got := e.Immigrate([]*Individual{dominating}); got != 1 {
		t.Fatalf("dominating migrant accepted %d times, want 1", got)
	}
	if e.Best().Eval.Pair() != (score.Pair{}) {
		t.Fatalf("best after migration = %v, want (0,0)", e.Best().Eval.Pair())
	}
	dominated := &Individual{
		Data: e.pop[0].Data,
		Eval: score.Evaluation{IL: 100, DR: 100},
	}
	if got := e.Immigrate([]*Individual{dominated}); got != 0 {
		t.Fatalf("dominated migrant accepted %d times, want 0", got)
	}
}

// TestScalarConfigUnchangedByParetoFields: a zero-objective engine must
// not consult ParetoRef or the NSGA-II machinery — its history is
// bit-identical with and without a stray (valid) reference point.
func TestScalarConfigUnchangedByParetoFields(t *testing.T) {
	plain := mustRun(t, testEngine(t, Config{Generations: 30, Seed: 9}))
	withRef := mustRun(t, testEngine(t, Config{Generations: 30, Seed: 9, ParetoRef: score.Pair{IL: 50, DR: 50}}))
	sameHistories(t, "scalar with stray ParetoRef", plain.History, withRef.History)
}

// BenchmarkNSGA2Generation tracks the Pareto-mode generation cost — the
// non-dominated sort and crowding truncation on top of the shared
// evaluation path. Part of CI's gated -benchtime=5x hot subset.
func BenchmarkNSGA2Generation(b *testing.B) {
	e := benchEngineCfg(b, paretoCfg(Config{Generations: 1 << 30, Seed: 5, InitWorkers: 8}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
