package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"

	"evoprot/internal/score"
)

// Snapshots make long optimizations restartable: the full engine state —
// population (only the protected columns, which is all that differs from
// the original file), cached evaluations, history, counters and the RNG
// stream — serializes to JSON and resumes bit-for-bit: a run of N+M
// generations equals a run of N, a snapshot/resume, and a run of M.
//
// Incremental-evaluation states are deliberately not serialized: they are
// derived data, large, and cheap to rebuild relative to a long run.
// Resumed individuals start with a nil state, and the engine rebuilds one
// lazily the first time each individual becomes a parent; because delta
// evaluation is bit-identical to full evaluation, the resumed trajectory
// is unchanged.

// snapshotVersion guards against loading snapshots from incompatible
// layouts or trajectories. Version 2: the mutation gene draw spans only
// mutable columns and DBIL accumulates exact per-attribute integer sums,
// so version-1 snapshots would silently resume on a different stochastic
// trajectory with incomparable cached scores.
const snapshotVersion = 2

type snapshotJSON struct {
	Version     int              `json:"version"`
	Gen         int              `json:"gen"`
	Evals       int              `json:"evals"`
	Accepted    int              `json:"accepted"`
	Offspring   int              `json:"offspring"`
	Attrs       []int            `json:"attrs"`
	Rows        int              `json:"rows"`
	RNG         []byte           `json:"rng"`
	History     []GenStats       `json:"history"`
	Individuals []individualJSON `json:"individuals"`
}

type individualJSON struct {
	Origin string           `json:"origin"`
	Cells  []int            `json:"cells"` // protected columns, row-major
	Eval   score.Evaluation `json:"eval"`
}

// Snapshot serializes the engine state. The original dataset and the
// configuration are not included; Resume requires the same evaluator and
// config to be supplied by the caller.
func (e *Engine) Snapshot(w io.Writer) error {
	rngState, err := e.pcg.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: marshaling RNG state: %w", err)
	}
	snap := snapshotJSON{
		Version:   snapshotVersion,
		Gen:       e.gen,
		Evals:     e.evals,
		Accepted:  e.accepted,
		Offspring: e.offspring,
		Attrs:     e.attrs,
		Rows:      e.eval.Orig().Rows(),
		RNG:       rngState,
		History:   e.history,
	}
	for _, ind := range e.pop {
		cells := make([]int, 0, ind.Data.Rows()*len(e.attrs))
		for r := 0; r < ind.Data.Rows(); r++ {
			for _, c := range e.attrs {
				cells = append(cells, ind.Data.At(r, c))
			}
		}
		snap.Individuals = append(snap.Individuals, individualJSON{
			Origin: ind.Origin,
			Cells:  cells,
			Eval:   ind.Eval,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return nil
}

// Resume rebuilds an engine from a snapshot. The evaluator must wrap the
// same original dataset (same shape and protected attributes) the
// snapshot was taken against, and cfg should carry the same parameters;
// the resumed engine continues the identical stochastic trajectory.
// Cached evaluations are trusted and not recomputed.
func Resume(eval *score.Evaluator, r io.Reader, cfg Config) (*Engine, error) {
	if eval == nil {
		return nil, fmt.Errorf("core: nil evaluator")
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var snap snapshotJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}
	attrs := eval.Attrs()
	if len(snap.Attrs) != len(attrs) {
		return nil, fmt.Errorf("core: snapshot has %d protected attributes, evaluator has %d", len(snap.Attrs), len(attrs))
	}
	for i := range attrs {
		if snap.Attrs[i] != attrs[i] {
			return nil, fmt.Errorf("core: snapshot attribute %d is column %d, evaluator has %d", i, snap.Attrs[i], attrs[i])
		}
	}
	orig := eval.Orig()
	if snap.Rows != orig.Rows() {
		return nil, fmt.Errorf("core: snapshot has %d rows, original has %d", snap.Rows, orig.Rows())
	}
	if len(snap.Individuals) < 2 {
		return nil, fmt.Errorf("core: snapshot population of %d, need at least 2", len(snap.Individuals))
	}

	pcg := rand.NewPCG(0, 0)
	if err := pcg.UnmarshalBinary(snap.RNG); err != nil {
		return nil, fmt.Errorf("core: restoring RNG state: %w", err)
	}

	pop := make([]*Individual, len(snap.Individuals))
	wantCells := snap.Rows * len(attrs)
	for i, ij := range snap.Individuals {
		if len(ij.Cells) != wantCells {
			return nil, fmt.Errorf("core: individual %d has %d cells, want %d", i, len(ij.Cells), wantCells)
		}
		data := orig.Clone()
		k := 0
		for r := 0; r < snap.Rows; r++ {
			for _, col := range attrs {
				v := ij.Cells[k]
				k++
				if v < 0 || v >= data.Schema().Attr(col).Cardinality() {
					return nil, fmt.Errorf("core: individual %d cell (%d,%d) value %d outside domain", i, r, col, v)
				}
				data.Set(r, col, v)
			}
		}
		pop[i] = &Individual{Data: data, Eval: ij.Eval, Origin: ij.Origin}
	}

	mutable, err := mutableAttrs(eval)
	if err != nil {
		return nil, err
	}
	engEval, err := engineEvaluator(eval, c)
	if err != nil {
		return nil, err
	}
	if engEval != eval {
		// Mirror NewEngines: a per-engine aggregator re-combines the
		// restored (IL, DR) pairs so the population is scored — and sorted
		// below — on this engine's own scale. Resuming with the aggregator
		// the snapshot was taken under recombines the identical values, so
		// unchanged configs restore bit-identically.
		agg := engEval.Aggregator()
		for _, ind := range pop {
			ind.Eval.Score = agg.Combine(ind.Eval.IL, ind.Eval.DR)
		}
	}
	e := &Engine{
		eval:      engEval,
		cfg:       c,
		rng:       rand.New(pcg),
		pcg:       pcg,
		pop:       pop,
		attrs:     attrs,
		mutable:   mutable,
		batchable: engEval.Batchable(),
		history:   snap.History,
		evals:     snap.Evals,
		gen:       snap.Gen,
		startGen:  snap.Gen,
		accepted:  snap.Accepted,
		offspring: snap.Offspring,
		onGen:     c.OnGeneration,
	}
	e.sortPop()
	return e, nil
}
