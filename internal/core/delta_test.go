package core

import (
	"bytes"
	"testing"
)

// TestDeltaRunMatchesFullEvaluationRun is the engine-level equivalence
// property: the same seed run with delta evaluation (default) and with
// DisableDelta must produce bit-identical histories — every generation's
// operator, scores and acceptance — across several seeds. Both runs draw
// the same random stream, so any divergence can only come from a delta
// evaluation that is not bit-equal to the full one.
func TestDeltaRunMatchesFullEvaluationRun(t *testing.T) {
	for _, seed := range []uint64{7, 42, 1001} {
		delta := mustRun(t, testEngine(t, Config{Generations: 60, Seed: seed}))
		full := mustRun(t, testEngine(t, Config{Generations: 60, Seed: seed, DisableDelta: true}))
		if len(delta.History) != len(full.History) {
			t.Fatalf("seed %d: history lengths %d vs %d", seed, len(delta.History), len(full.History))
		}
		for i := range delta.History {
			a, b := delta.History[i], full.History[i]
			a.EvalTime, a.TotalTime = 0, 0
			b.EvalTime, b.TotalTime = 0, 0
			if a != b {
				t.Fatalf("seed %d generation %d diverged:\ndelta: %+v\nfull:  %+v", seed, i+1, a, b)
			}
		}
		if !delta.Best.Data.Equal(full.Best.Data) {
			t.Fatalf("seed %d: best individuals diverged", seed)
		}
	}
}

// TestDeltaEvaluationsMatchFreshEvaluate re-scores every individual from
// scratch after a run and demands the cached (delta-derived) evaluations
// agree bit-for-bit, parts maps included.
func TestDeltaEvaluationsMatchFreshEvaluate(t *testing.T) {
	e := testEngine(t, Config{Generations: 80, Seed: 55})
	mustRun(t, e)
	for i, ind := range e.Population() {
		want, err := e.eval.Evaluate(ind.Data)
		if err != nil {
			t.Fatal(err)
		}
		got := ind.Eval
		if got.Score != want.Score || got.IL != want.IL || got.DR != want.DR {
			t.Fatalf("individual %d (%s): cached (IL=%v DR=%v Score=%v) != fresh (IL=%v DR=%v Score=%v)",
				i, ind.Origin, got.IL, got.DR, got.Score, want.IL, want.DR, want.Score)
		}
		for k, v := range want.ILParts {
			if got.ILParts[k] != v {
				t.Fatalf("individual %d: ILParts[%s] = %v, want %v", i, k, got.ILParts[k], v)
			}
		}
		for k, v := range want.DRParts {
			if got.DRParts[k] != v {
				t.Fatalf("individual %d: DRParts[%s] = %v, want %v", i, k, got.DRParts[k], v)
			}
		}
	}
}

// TestSnapshotResumeWithDeltaEvaluation proves the checkpoint property
// holds while delta evaluation is active: resumed individuals restart
// with no incremental state, rebuild it lazily, and still reproduce the
// uninterrupted run's scores exactly.
func TestSnapshotResumeWithDeltaEvaluation(t *testing.T) {
	const n, m = 20, 25
	ref := testEngine(t, Config{Generations: n + m, Seed: 202})
	refRes := mustRun(t, ref)

	first := testEngine(t, Config{Generations: n, Seed: 202})
	mustRun(t, first)
	var buf bytes.Buffer
	if err := first.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	eval, _ := testPopulation(t)
	resumed, err := Resume(eval, &buf, Config{Generations: m, Seed: 202})
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range resumed.Population() {
		if ind.state != nil {
			t.Fatal("resumed individual carries a serialized delta state; states must rebuild lazily")
		}
	}
	resRes := mustRun(t, resumed)
	if len(resRes.History) != n+m {
		t.Fatalf("resumed history = %d, want %d", len(resRes.History), n+m)
	}
	for i := range refRes.History {
		a, b := refRes.History[i], resRes.History[i]
		a.EvalTime, a.TotalTime = 0, 0
		b.EvalTime, b.TotalTime = 0, 0
		if a != b {
			t.Fatalf("generation %d diverged:\nref: %+v\nres: %+v", i+1, a, b)
		}
	}
	if refRes.Best.Eval.Score != resRes.Best.Eval.Score || !refRes.Best.Data.Equal(resRes.Best.Data) {
		t.Fatal("best individual diverged after resume with delta evaluation")
	}
}

// TestOffspringCarryDeltaState: after a run with delta evaluation, any
// accepted offspring must carry a state derived from its parent's, and
// parents that reproduced must have materialized theirs.
func TestOffspringCarryDeltaState(t *testing.T) {
	e := testEngine(t, Config{Generations: 60, Seed: 77})
	res := mustRun(t, e)
	if res.AcceptedOffspring == 0 {
		t.Skip("no offspring accepted; nothing to check")
	}
	withState := 0
	for _, ind := range e.Population() {
		if ind.state != nil {
			withState++
		}
	}
	if withState == 0 {
		t.Fatal("no individual carries a delta state after an accepting run")
	}
}

// TestDisableDeltaNeverBuildsStates: the escape hatch must keep the
// engine entirely on the full-evaluation path.
func TestDisableDeltaNeverBuildsStates(t *testing.T) {
	e := testEngine(t, Config{Generations: 30, Seed: 88, DisableDelta: true})
	mustRun(t, e)
	for i, ind := range e.Population() {
		if ind.state != nil {
			t.Fatalf("individual %d carries a delta state despite DisableDelta", i)
		}
	}
}
