package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/protection"
	"evoprot/internal/score"
)

// mustRun executes a full run under a background context, failing the
// test on any run error.
func mustRun(t *testing.T, e *Engine) *Result {
	t.Helper()
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// testEngine builds a small but realistic engine: flare-shaped data, a
// 14-individual population from all six masking families.
func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eval, pop := testPopulation(t)
	e, err := NewEngine(eval, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testPopulation(t *testing.T) (*score.Evaluator, []*Individual) {
	t.Helper()
	d := datagen.MustByName("flare", 90, 23)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := score.NewEvaluator(d, attrs, score.Config{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{
		"micro:k=2", "micro:k=4", "micro:k=6", "micro:k=8",
		"top:q=0.1", "top:q=0.25", "bottom:q=0.1", "bottom:q=0.25",
		"recode:depth=1", "recode:depth=2",
		"rankswap:p=5", "rankswap:p=15",
		"pram:theta=0.9", "pram:theta=0.6",
	}
	rng := rand.New(rand.NewPCG(77, 1))
	pop := make([]*Individual, len(specs))
	for i, s := range specs {
		m := protection.Must(s)
		masked, err := m.Protect(d, attrs, rng)
		if err != nil {
			t.Fatal(err)
		}
		pop[i] = NewIndividual(masked, protection.String(m))
	}
	return eval, pop
}

// scoreEvaluatorOverFirstAttr builds an evaluator protecting only column
// 0 of the dataset — a deliberately different QI set for mismatch tests.
func scoreEvaluatorOverFirstAttr(orig *dataset.Dataset) (*score.Evaluator, error) {
	return score.NewEvaluator(orig, []int{0}, score.Config{})
}

func TestNewEngineErrors(t *testing.T) {
	eval, pop := testPopulation(t)
	if _, err := NewEngine(nil, pop, Config{Generations: 5}); err == nil {
		t.Error("nil evaluator accepted")
	}
	if _, err := NewEngine(eval, pop[:1], Config{Generations: 5}); err == nil {
		t.Error("population of 1 accepted")
	}
	if _, err := NewEngine(eval, []*Individual{pop[0], nil}, Config{Generations: 5}); err == nil {
		t.Error("nil individual accepted")
	}
	if _, err := NewEngine(eval, pop, Config{Generations: -1}); err == nil {
		t.Error("negative generations accepted")
	}
	if _, err := NewEngine(eval, pop, Config{Generations: 5, MutationRate: 1.5}); err == nil {
		t.Error("mutation rate 1.5 accepted")
	}
	if _, err := NewEngine(eval, pop, Config{Generations: 5, LeaderFraction: -0.1}); err == nil {
		t.Error("negative leader fraction accepted")
	}
	if _, err := NewEngine(eval, pop, Config{Generations: 5, ForceOp: "sideways"}); err == nil {
		t.Error("bad ForceOp accepted")
	}
}

func TestInitialPopulationEvaluatedAndSorted(t *testing.T) {
	e := testEngine(t, Config{Generations: 5, Seed: 1})
	pop := e.Population()
	for i, ind := range pop {
		if ind.Eval.Score <= 0 {
			t.Errorf("individual %d has score %v", i, ind.Eval.Score)
		}
		if i > 0 && pop[i-1].Eval.Score > ind.Eval.Score {
			t.Errorf("population not sorted at %d", i)
		}
	}
	if e.Evaluations() != len(pop) {
		t.Errorf("Evaluations = %d, want %d", e.Evaluations(), len(pop))
	}
	if e.Best() != pop[0] {
		t.Error("Best is not the first of the sorted population")
	}
}

func TestInitWorkersMatchesSequential(t *testing.T) {
	eval, pop := testPopulation(t)
	seq, err := NewEngine(eval, pop, Config{Generations: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(eval, pop, Config{Generations: 1, Seed: 9, InitWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := seq.Population(), par.Population()
	for i := range a {
		if a[i].Eval.Score != b[i].Eval.Score {
			t.Fatalf("parallel init differs at %d: %v vs %v", i, a[i].Eval.Score, b[i].Eval.Score)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := mustRun(t, testEngine(t, Config{Generations: 25, Seed: 42}))
	b := mustRun(t, testEngine(t, Config{Generations: 25, Seed: 42}))
	if len(a.History) != len(b.History) {
		t.Fatal("history lengths differ")
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			// Timing fields differ; compare the deterministic parts.
			x, y := a.History[i], b.History[i]
			x.EvalTime, x.TotalTime = 0, 0
			y.EvalTime, y.TotalTime = 0, 0
			if x != y {
				t.Fatalf("generation %d differs: %+v vs %+v", i, x, y)
			}
		}
	}
	c := mustRun(t, testEngine(t, Config{Generations: 25, Seed: 43}))
	same := true
	for i := range a.History {
		if i >= len(c.History) || a.History[i].Op != c.History[i].Op {
			same = false
			break
		}
	}
	if same && a.Best.Eval.Score == c.Best.Eval.Score && a.Best.Data.Equal(c.Best.Data) {
		t.Error("different seeds produced identical runs")
	}
}

func TestElitismBestNeverWorsens(t *testing.T) {
	e := testEngine(t, Config{Generations: 40, Seed: 3})
	prev := e.Best().Eval.Score
	for g := 0; g < 40; g++ {
		gs := e.Step()
		if gs.Min > prev+1e-12 {
			t.Fatalf("generation %d: best worsened from %v to %v", gs.Gen, prev, gs.Min)
		}
		prev = gs.Min
	}
}

func TestMeanNeverWorsens(t *testing.T) {
	// Replacement only happens on strict improvement, so the population
	// mean is non-increasing — the paper's "more or less continuous
	// decrement" of the mean score.
	e := testEngine(t, Config{Generations: 40, Seed: 5})
	prev := e.Stats().Mean
	for g := 0; g < 40; g++ {
		gs := e.Step()
		if gs.Mean > prev+1e-9 {
			t.Fatalf("generation %d: mean worsened from %v to %v", gs.Gen, prev, gs.Mean)
		}
		prev = gs.Mean
	}
}

func TestRunHistoryBookkeeping(t *testing.T) {
	e := testEngine(t, Config{Generations: 30, Seed: 7})
	res := mustRun(t, e)
	if res.Generations != 30 || len(res.History) != 30 {
		t.Fatalf("generations = %d, history = %d", res.Generations, len(res.History))
	}
	wantEvals := len(res.Population)
	for i, gs := range res.History {
		if gs.Gen != i+1 {
			t.Errorf("history %d has Gen %d", i, gs.Gen)
		}
		switch gs.Op {
		case "mutation":
			if gs.Evals != 1 {
				t.Errorf("mutation generation with %d evals", gs.Evals)
			}
		case "crossover":
			if gs.Evals != 2 {
				t.Errorf("crossover generation with %d evals", gs.Evals)
			}
		default:
			t.Errorf("unknown op %q", gs.Op)
		}
		wantEvals += gs.Evals
		if gs.Min > gs.Mean || gs.Mean > gs.Max {
			t.Errorf("generation %d: min/mean/max out of order: %+v", i, gs)
		}
	}
	if res.Evaluations != wantEvals {
		t.Errorf("Evaluations = %d, want %d", res.Evaluations, wantEvals)
	}
}

func TestForceOpPinsOperator(t *testing.T) {
	for _, op := range []string{"mutation", "crossover"} {
		e := testEngine(t, Config{Generations: 10, Seed: 11, ForceOp: op})
		res := mustRun(t, e)
		for _, gs := range res.History {
			if gs.Op != op {
				t.Fatalf("ForceOp=%s produced op %s", op, gs.Op)
			}
		}
	}
}

func TestNoImprovementWindowStopsEarly(t *testing.T) {
	e := testEngine(t, Config{Generations: 500, Seed: 13, NoImprovementWindow: 5})
	res := mustRun(t, e)
	if res.Generations == 500 {
		t.Skip("run never stagnated for 5 generations; extremely unlikely but not a failure")
	}
	// The last 5 generations must be non-improving.
	h := res.History
	for _, gs := range h[len(h)-5:] {
		if gs.Improved {
			t.Fatalf("early stop despite improvement in window: %+v", gs)
		}
	}
}

func TestMutateChangesExactlyOneGene(t *testing.T) {
	e := testEngine(t, Config{Generations: 1, Seed: 17})
	parent := e.Population()[3]
	for i := 0; i < 50; i++ {
		child, changes := e.mutate(parent)
		if len(changes) != 1 {
			t.Fatalf("mutation reported %d changes, want 1", len(changes))
		}
		ch := changes[0]
		if child.Data.At(ch.Row, ch.Col) != ch.New || parent.Data.At(ch.Row, ch.Col) != ch.Old {
			t.Fatalf("change record %+v does not match the datasets", ch)
		}
		if got := child.Data.Mismatches(parent.Data, e.attrs); got != 1 {
			t.Fatalf("mutation changed %d genes, want 1", got)
		}
		// Unprotected columns untouched.
		if got := child.Data.Mismatches(parent.Data, nil); got != 1 {
			t.Fatalf("mutation leaked outside protected attributes (%d cells)", got)
		}
		if child.Origin != "mutation" {
			t.Fatalf("origin = %q", child.Origin)
		}
	}
}

func TestCrossoverIsComplementary(t *testing.T) {
	e := testEngine(t, Config{Generations: 1, Seed: 19})
	pop := e.Population()
	p1, p2 := pop[0], pop[5]
	parentDiff := p1.Data.Mismatches(p2.Data, e.attrs)
	for i := 0; i < 50; i++ {
		c1, c2, ch1, ch2 := e.cross(p1, p2)
		// The change lists are each child's exact diff against its parent.
		if want := dataset.Diff(p1.Data, c1.Data, e.attrs); len(ch1) != len(want) {
			t.Fatalf("c1 change list has %d entries, diff has %d", len(ch1), len(want))
		}
		if want := dataset.Diff(p2.Data, c2.Data, e.attrs); len(ch2) != len(want) {
			t.Fatalf("c2 change list has %d entries, diff has %d", len(ch2), len(want))
		}
		// Every gene of c1 comes from p1 or p2 at the same position, and
		// c2 takes the complementary choice.
		rows := p1.Data.Rows()
		for r := 0; r < rows; r++ {
			for _, col := range e.attrs {
				v1, v2 := p1.Data.At(r, col), p2.Data.At(r, col)
				g1, g2 := c1.Data.At(r, col), c2.Data.At(r, col)
				ok := (g1 == v1 && g2 == v2) || (g1 == v2 && g2 == v1)
				if !ok {
					t.Fatalf("gene (%d,%d): parents (%d,%d), children (%d,%d)", r, col, v1, v2, g1, g2)
				}
			}
		}
		// Swapped-segment structure: c1's distance to p1 plus its distance
		// to p2 equals the parents' distance.
		if d1, d2 := c1.Data.Mismatches(p1.Data, e.attrs), c1.Data.Mismatches(p2.Data, e.attrs); d1+d2 != parentDiff {
			t.Fatalf("crossover not segment-structured: %d + %d != %d", d1, d2, parentDiff)
		}
	}
}

func TestSelectionFavorsGoodIndividuals(t *testing.T) {
	e := testEngine(t, Config{Generations: 1, Seed: 23})
	n := len(e.pop)
	draws := 20000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[e.selectIndex()]++
	}
	// Best individual (index 0) must be drawn more often than the worst.
	if counts[0] <= counts[n-1] {
		t.Fatalf("inverse-proportional selection drew best %d times, worst %d times", counts[0], counts[n-1])
	}
}

func TestRawProportionalFavorsBadIndividuals(t *testing.T) {
	e := testEngine(t, Config{Generations: 1, Seed: 29, Selection: SelectRawProportional})
	n := len(e.pop)
	counts := make([]int, n)
	for i := 0; i < 20000; i++ {
		counts[e.selectIndex()]++
	}
	// The literal Eq. 3 favours high scores — the documented inversion.
	if counts[0] >= counts[n-1] {
		t.Fatalf("raw-proportional drew best %d, worst %d; expected the reverse", counts[0], counts[n-1])
	}
}

func TestSelectionPoliciesRun(t *testing.T) {
	for _, sel := range []SelectionPolicy{SelectInverseProportional, SelectRawProportional, SelectRank, SelectUniform} {
		e := testEngine(t, Config{Generations: 8, Seed: 31, Selection: sel})
		res := mustRun(t, e)
		if len(res.History) != 8 {
			t.Errorf("%v: history %d", sel, len(res.History))
		}
	}
}

func TestSelectionByName(t *testing.T) {
	cases := map[string]SelectionPolicy{
		"":                     SelectInverseProportional,
		"inverse":              SelectInverseProportional,
		"inverse-proportional": SelectInverseProportional,
		"raw":                  SelectRawProportional,
		"rank":                 SelectRank,
		"uniform":              SelectUniform,
	}
	for name, want := range cases {
		got, err := SelectionByName(name)
		if err != nil || got != want {
			t.Errorf("SelectionByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := SelectionByName("tournament"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestCrowdingPoliciesRun(t *testing.T) {
	for _, cr := range []CrowdingPolicy{CrowdParentIndex, CrowdNearestParent} {
		e := testEngine(t, Config{Generations: 12, Seed: 37, Crowding: cr, ForceOp: "crossover"})
		res := mustRun(t, e)
		if len(res.History) != 12 {
			t.Errorf("%v: history %d", cr, len(res.History))
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if SelectInverseProportional.String() != "inverse-proportional" {
		t.Error("selection String")
	}
	if CrowdParentIndex.String() != "parent-index" || CrowdNearestParent.String() != "nearest-parent" {
		t.Error("crowding String")
	}
	if SelectionPolicy(99).String() == "" || CrowdingPolicy(99).String() == "" {
		t.Error("unknown policy String empty")
	}
}

func TestLeaderSizeBounds(t *testing.T) {
	e := testEngine(t, Config{Generations: 1, Seed: 41, LeaderFraction: 0.01})
	if nb := e.leaderSize(); nb != 2 {
		t.Errorf("leaderSize floor = %d, want 2", nb)
	}
	e2 := testEngine(t, Config{Generations: 1, Seed: 41, LeaderFraction: 1})
	if nb := e2.leaderSize(); nb != len(e2.pop) {
		t.Errorf("leaderSize cap = %d, want %d", nb, len(e2.pop))
	}
}

func TestStatsSnapshot(t *testing.T) {
	e := testEngine(t, Config{Generations: 1, Seed: 43})
	gs := e.Stats()
	if gs.Gen != 0 {
		t.Errorf("Stats Gen = %d, want 0", gs.Gen)
	}
	if gs.Min > gs.Mean || gs.Mean > gs.Max {
		t.Errorf("Stats out of order: %+v", gs)
	}
	pop := e.Population()
	if gs.Min != pop[0].Eval.Score {
		t.Errorf("Stats Min = %v, best = %v", gs.Min, pop[0].Eval.Score)
	}
}

func TestOffspringStayInDomain(t *testing.T) {
	e := testEngine(t, Config{Generations: 60, Seed: 47})
	mustRun(t, e)
	for i, ind := range e.Population() {
		if err := ind.Data.Validate(); err != nil {
			t.Fatalf("individual %d invalid after run: %v", i, err)
		}
	}
}

func TestGenePosMapping(t *testing.T) {
	e := testEngine(t, Config{Generations: 1, Seed: 53})
	a := len(e.attrs)
	n := e.eval.Orig().Rows()
	if e.geneCount() != n*a {
		t.Fatalf("geneCount = %d, want %d", e.geneCount(), n*a)
	}
	seen := make(map[[2]int]bool)
	for g := 0; g < e.geneCount(); g++ {
		r, c := e.genePos(g)
		if r < 0 || r >= n {
			t.Fatalf("gene %d maps to row %d", g, r)
		}
		found := false
		for _, col := range e.attrs {
			if col == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("gene %d maps to unprotected column %d", g, c)
		}
		seen[[2]int{r, c}] = true
	}
	if len(seen) != n*a {
		t.Fatalf("gene mapping not a bijection: %d cells", len(seen))
	}
}

func TestPopulationReturnsCopy(t *testing.T) {
	e := testEngine(t, Config{Generations: 1, Seed: 59})
	pop := e.Population()
	pop[0] = nil
	if e.Best() == nil {
		t.Fatal("Population leaked internal slice")
	}
}

func TestHistoryReturnsCopy(t *testing.T) {
	e := testEngine(t, Config{Generations: 3, Seed: 61})
	mustRun(t, e)
	h := e.History()
	if len(h) != 3 {
		t.Fatalf("history = %d", len(h))
	}
	h[0].Gen = 999
	if e.History()[0].Gen == 999 {
		t.Fatal("History leaked internal slice")
	}
}

func TestCrossoverOriginLabels(t *testing.T) {
	e := testEngine(t, Config{Generations: 1, Seed: 67})
	pop := e.Population()
	c1, c2, _, _ := e.cross(pop[0], pop[1])
	if c1.Origin != "crossover" || c2.Origin != "crossover" {
		t.Fatalf("origins = %q, %q", c1.Origin, c2.Origin)
	}
}

func TestRunContextCancellation(t *testing.T) {
	e := testEngine(t, Config{Generations: 10000, Seed: 79})
	ctx, cancel := context.WithCancel(context.Background())
	gens := 0
	e.SetOnGeneration(func(GenStats) {
		gens++
		if gens == 7 {
			cancel()
		}
	})
	res, err := e.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if res == nil || res.Generations != 7 {
		t.Fatalf("partial result has %d generations, want 7", res.Generations)
	}
	if len(res.History) != 7 {
		t.Fatalf("history = %d", len(res.History))
	}
	if res.StopReason != StopCancelled {
		t.Fatalf("stop reason = %q, want %q", res.StopReason, StopCancelled)
	}
}

func TestRunDeadlineStopReason(t *testing.T) {
	e := testEngine(t, Config{Generations: 1 << 30, Seed: 81})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	res, err := e.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if res.StopReason != StopDeadline {
		t.Fatalf("stop reason = %q, want %q", res.StopReason, StopDeadline)
	}
}

func TestRunStopReasons(t *testing.T) {
	if res := mustRun(t, testEngine(t, Config{Generations: 5, Seed: 83})); res.StopReason != StopCompleted {
		t.Fatalf("completed run stop reason = %q", res.StopReason)
	}
	res := mustRun(t, testEngine(t, Config{Generations: 5000, Seed: 83, NoImprovementWindow: 4}))
	if res.Generations < 5000 && res.StopReason != StopStagnated {
		t.Fatalf("stagnated run stop reason = %q", res.StopReason)
	}
}

func TestGenerationsDefaultsToPaperBudget(t *testing.T) {
	e := testEngine(t, Config{Seed: 85})
	if e.MaxGenerations() != DefaultGenerations {
		t.Fatalf("MaxGenerations = %d, want %d", e.MaxGenerations(), DefaultGenerations)
	}
}

func TestInitialPopulationEagerlyPrepared(t *testing.T) {
	e := testEngine(t, Config{Generations: 5, Seed: 87})
	for i, ind := range e.pop {
		if ind.state == nil {
			t.Fatalf("individual %d has no delta state after construction", i)
		}
	}
	lazy := testEngine(t, Config{Generations: 5, Seed: 87, LazyPrepare: true})
	for _, ind := range lazy.pop {
		if ind.state != nil {
			t.Fatal("LazyPrepare engine carries eager delta states")
		}
	}
}

func TestEagerPrepareMatchesLazyTrajectory(t *testing.T) {
	eager := mustRun(t, testEngine(t, Config{Generations: 40, Seed: 89}))
	lazy := mustRun(t, testEngine(t, Config{Generations: 40, Seed: 89, LazyPrepare: true}))
	if len(eager.History) != len(lazy.History) {
		t.Fatalf("history lengths %d vs %d", len(eager.History), len(lazy.History))
	}
	for i := range eager.History {
		a, b := eager.History[i], lazy.History[i]
		a.EvalTime, a.TotalTime = 0, 0
		b.EvalTime, b.TotalTime = 0, 0
		if a != b {
			t.Fatalf("generation %d diverged:\neager: %+v\nlazy:  %+v", i+1, a, b)
		}
	}
}

func TestNewEnginesSharedEvaluation(t *testing.T) {
	eval, pop := testPopulation(t)
	cfgs := []Config{
		{Generations: 10, Seed: 1},
		{Generations: 10, Seed: 2},
		{Generations: 10, Seed: 3},
	}
	engines, err := NewEngines(context.Background(), eval, pop, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) != 3 {
		t.Fatalf("engines = %d", len(engines))
	}
	// Every engine starts from the same evaluated population...
	for i := 1; i < len(engines); i++ {
		a, b := engines[0].Population(), engines[i].Population()
		for j := range a {
			if a[j].Eval.Score != b[j].Eval.Score {
				t.Fatalf("engine %d initial population differs at %d", i, j)
			}
		}
	}
	// ...and an engine built by NewEngines matches a solo NewEngine with
	// the same seed, trajectory and all.
	solo := mustRun(t, testEngine(t, Config{Generations: 10, Seed: 1}))
	batch, err := engines[0].Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range solo.History {
		a, b := solo.History[i], batch.History[i]
		a.EvalTime, a.TotalTime = 0, 0
		b.EvalTime, b.TotalTime = 0, 0
		if a != b {
			t.Fatalf("generation %d diverged between NewEngine and NewEngines", i+1)
		}
	}
}

func TestEmigrantsAndImmigrate(t *testing.T) {
	eval, pop := testPopulation(t)
	engines, err := NewEngines(context.Background(), eval, pop, []Config{{Generations: 30, Seed: 7}, {Generations: 30, Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := engines[0], engines[1]
	mustRun(t, a)
	em := a.Emigrants(3)
	if len(em) != 3 {
		t.Fatalf("emigrants = %d", len(em))
	}
	for i, m := range em {
		if m.Eval.Score != a.Population()[i].Eval.Score {
			t.Fatalf("emigrant %d is not the %d-th best", i, i)
		}
		if m == a.Population()[i] {
			t.Fatal("emigrant shares its wrapper with the source population")
		}
	}
	worstBefore := b.Population()[len(b.pop)-1].Eval.Score
	bestBefore := b.Best().Eval.Score
	acc := b.Immigrate(em)
	if acc < 0 || acc > len(em) {
		t.Fatalf("accepted = %d", acc)
	}
	if b.Best().Eval.Score > bestBefore {
		t.Fatal("immigration worsened the best individual")
	}
	if acc > 0 && b.Population()[len(b.pop)-1].Eval.Score > worstBefore {
		t.Fatal("immigration worsened the worst individual")
	}
	// A hopeless migrant is rejected. Immigrate trusts the (IL, DR) pair
	// and re-combines the score under the receiving engine's aggregator,
	// so hopelessness lives in the components, not a hand-edited Score.
	bad := &Individual{Data: em[0].Data, Origin: "bad"}
	bad.Eval = em[0].Eval
	bad.Eval.IL, bad.Eval.DR, bad.Eval.Score = 1e9, 1e9, 1e9
	if got := b.Immigrate([]*Individual{bad}); got != 0 {
		t.Fatalf("hopeless migrant accepted %d times", got)
	}
	// Emigrants(k) clamps to the population size.
	if got := a.Emigrants(1 << 20); len(got) != len(a.Population()) {
		t.Fatalf("oversized Emigrants = %d", len(got))
	}
}

// TestSetOnGenerationConcurrent exercises the deprecated mutator while the
// engine is stepping on another goroutine — must be clean under -race.
func TestSetOnGenerationConcurrent(t *testing.T) {
	e := testEngine(t, Config{Generations: 200, Seed: 91})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			e.SetOnGeneration(func(GenStats) {})
		}
	}()
	mustRun(t, e)
	<-done
}

func TestOnGenerationCallback(t *testing.T) {
	var seen []int
	eval, pop := testPopulation(t)
	e, err := NewEngine(eval, pop, Config{
		Generations:  5,
		Seed:         83,
		OnGeneration: func(gs GenStats) { seen = append(seen, gs.Gen) },
	})
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if len(seen) != 5 {
		t.Fatalf("callback fired %d times, want 5", len(seen))
	}
	for i, g := range seen {
		if g != i+1 {
			t.Fatalf("callback order wrong: %v", seen)
		}
	}
}

func TestAcceptanceBookkeeping(t *testing.T) {
	e := testEngine(t, Config{Generations: 50, Seed: 73})
	res := mustRun(t, e)
	if res.TotalOffspring != res.Evaluations-len(res.Population) {
		t.Fatalf("TotalOffspring = %d, want %d", res.TotalOffspring, res.Evaluations-len(res.Population))
	}
	if res.AcceptedOffspring < 0 || res.AcceptedOffspring > res.TotalOffspring {
		t.Fatalf("AcceptedOffspring = %d outside [0,%d]", res.AcceptedOffspring, res.TotalOffspring)
	}
	sum := 0
	for _, gs := range res.History {
		if gs.Accepted < 0 || gs.Accepted > gs.Evals {
			t.Fatalf("generation %d: Accepted=%d Evals=%d", gs.Gen, gs.Accepted, gs.Evals)
		}
		sum += gs.Accepted
	}
	if sum != res.AcceptedOffspring {
		t.Fatalf("history acceptance %d != result %d", sum, res.AcceptedOffspring)
	}
	// An evolving population must accept something over 50 generations.
	if res.AcceptedOffspring == 0 {
		t.Fatal("no offspring accepted in 50 generations")
	}
}

func TestSingleCategoryAttributesRejectedAtConstruction(t *testing.T) {
	// When every protected domain has a single category no gene can ever
	// change, so the engine refuses to start instead of silently no-oping
	// on every mutation.
	s := dataset.MustSchema(
		dataset.MustAttribute("only", []string{"x"}, true),
		dataset.MustAttribute("pad", []string{"a", "b"}, true),
	)
	orig := dataset.New(s, 10)
	eval, err := score.NewEvaluator(orig, []int{0}, score.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pop := []*Individual{NewIndividual(orig.Clone(), "a"), NewIndividual(orig.Clone(), "b")}
	if _, err := NewEngine(eval, pop, Config{Generations: 1, Seed: 71}); err == nil {
		t.Fatal("engine accepted a protected set where nothing can mutate")
	}
}

func TestMutationSkipsSingleCategoryColumns(t *testing.T) {
	// With a mixed protected set the gene draw must be restricted to the
	// columns that can actually change: every mutation alters exactly one
	// gene, never in the single-category column.
	s := dataset.MustSchema(
		dataset.MustAttribute("only", []string{"x"}, true),
		dataset.MustAttribute("pad", []string{"a", "b", "c"}, true),
	)
	orig := dataset.New(s, 10)
	eval, err := score.NewEvaluator(orig, []int{0, 1}, score.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pop := []*Individual{NewIndividual(orig.Clone(), "a"), NewIndividual(orig.Clone(), "b")}
	e, err := NewEngine(eval, pop, Config{Generations: 1, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		child, changes := e.mutate(e.pop[0])
		if got := child.Data.Mismatches(e.pop[0].Data, e.attrs); got != 1 {
			t.Fatalf("mutation changed %d genes, want exactly 1", got)
		}
		if changes[0].Col != 1 {
			t.Fatalf("mutation touched single-category column %d", changes[0].Col)
		}
	}
}

func TestAllCrossoverSentinel(t *testing.T) {
	// MutationRate 0 keeps the paper's default of 0.5; the AllCrossover
	// sentinel requests a true rate of 0.0.
	e := testEngine(t, Config{Generations: 20, Seed: 101, MutationRate: AllCrossover})
	for _, gs := range mustRun(t, e).History {
		if gs.Op != "crossover" {
			t.Fatalf("AllCrossover produced op %q", gs.Op)
		}
	}
	if e.cfg.MutationRate != 0 {
		t.Fatalf("effective rate = %v, want 0", e.cfg.MutationRate)
	}
	def := testEngine(t, Config{Generations: 1, Seed: 101})
	if def.cfg.MutationRate != 0.5 {
		t.Fatalf("zero-value rate resolved to %v, want 0.5", def.cfg.MutationRate)
	}
	// Other negative rates stay invalid.
	eval, pop := testPopulation(t)
	if _, err := NewEngine(eval, pop, Config{Generations: 1, MutationRate: -0.25}); err == nil {
		t.Fatal("negative non-sentinel mutation rate accepted")
	}
}
