package core

// Equivalence tests for generation-batch offspring evaluation: the batch
// path (the default) must walk bit-identical trajectories to the
// per-offspring clone-and-apply delta path and to full re-evaluation —
// histories, event feeds and final populations — at every worker width,
// under both crowding policies, and across heterogeneous engines
// exchanging migrants.

import (
	"context"
	"math/rand/v2"
	"testing"

	"evoprot/internal/dataset"
)

// TestBatchRunMatchesPerOffspringRun: same seed, three evaluation modes —
// batch (default), DisableBatch (per-offspring delta), DisableDelta (full
// re-evaluation) — at EvalWorkers 1 and 4. All histories, streamed
// OnGeneration feeds and best individuals must agree bit for bit.
func TestBatchRunMatchesPerOffspringRun(t *testing.T) {
	for _, seed := range []uint64{7, 42, 1001} {
		for _, workers := range []int{1, 4} {
			var batchFeed, cloneFeed []GenStats
			batch := mustRun(t, testEngine(t, Config{
				Generations: 60, Seed: seed, EvalWorkers: workers,
				OnGeneration: func(gs GenStats) { batchFeed = append(batchFeed, gs) },
			}))
			clone := mustRun(t, testEngine(t, Config{
				Generations: 60, Seed: seed, DisableBatch: true,
				OnGeneration: func(gs GenStats) { cloneFeed = append(cloneFeed, gs) },
			}))
			full := mustRun(t, testEngine(t, Config{Generations: 60, Seed: seed, DisableDelta: true}))
			sameHistories(t, "batch vs per-offspring", batch.History, clone.History)
			sameHistories(t, "batch vs full", batch.History, full.History)
			sameHistories(t, "batch feed vs per-offspring feed", batchFeed, cloneFeed)
			if !batch.Best.Data.Equal(clone.Best.Data) || !batch.Best.Data.Equal(full.Best.Data) {
				t.Fatalf("seed %d workers %d: best individuals diverged", seed, workers)
			}
			if batch.AcceptedOffspring != clone.AcceptedOffspring {
				t.Fatalf("seed %d workers %d: accepted %d vs %d", seed, workers,
					batch.AcceptedOffspring, clone.AcceptedOffspring)
			}
		}
	}
}

// TestBatchRunCrowdingSwapEquivalence drives the cross-parentage state
// commit: under CrowdNearestParent a child can win a slot whose occupant
// is not its biological parent, so the batch path must clone or transfer
// the right parent's state. Forced crossover maximizes swap traffic.
func TestBatchRunCrowdingSwapEquivalence(t *testing.T) {
	for _, seed := range []uint64{11, 67} {
		cfg := Config{Generations: 80, Seed: seed, ForceOp: "crossover", Crowding: CrowdNearestParent}
		batchCfg, cloneCfg := cfg, cfg
		cloneCfg.DisableBatch = true
		batchCfg.EvalWorkers = 2
		batch := mustRun(t, testEngine(t, batchCfg))
		clone := mustRun(t, testEngine(t, cloneCfg))
		sameHistories(t, "crowding batch vs per-offspring", batch.History, clone.History)
		if !batch.Best.Data.Equal(clone.Best.Data) {
			t.Fatalf("seed %d: crowding-swap runs diverged", seed)
		}
	}
}

// TestBatchStatesStayConsistent re-scores every individual from scratch
// after a batch run: cached evaluations must match, and every carried
// delta state must still describe its individual (a further delta
// evaluation through it equals a fresh one).
func TestBatchStatesStayConsistent(t *testing.T) {
	e := testEngine(t, Config{Generations: 80, Seed: 55, EvalWorkers: 2})
	mustRun(t, e)
	for i, ind := range e.Population() {
		want, err := e.eval.Evaluate(ind.Data)
		if err != nil {
			t.Fatal(err)
		}
		if ind.Eval.Score != want.Score || ind.Eval.IL != want.IL || ind.Eval.DR != want.DR {
			t.Fatalf("individual %d (%s): cached (IL=%v DR=%v) != fresh (IL=%v DR=%v)",
				i, ind.Origin, ind.Eval.IL, ind.Eval.DR, want.IL, want.DR)
		}
		if ind.state == nil {
			continue
		}
		child := ind.Data.Clone()
		rng := rand.New(rand.NewPCG(9, uint64(i)))
		changes := []dataset.CellChange{dataset.RandomChange(rng, child, e.attrs)}
		got, _, err := e.eval.EvaluateDelta(ind.Eval, ind.state, child, changes)
		if err != nil {
			t.Fatalf("individual %d: carried state rejected a delta evaluation: %v", i, err)
		}
		fresh, err := e.eval.Evaluate(child)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != fresh.Score || got.IL != fresh.IL || got.DR != fresh.DR {
			t.Fatalf("individual %d: carried state drifted: delta (IL=%v DR=%v) vs fresh (IL=%v DR=%v)",
				i, got.IL, got.DR, fresh.IL, fresh.DR)
		}
	}
}

// TestBatchHeterogeneousEnginesEquivalence is the niched-islands
// equivalence: heterogeneous engines (different aggregators, selection,
// crossover and crowding policies) sharing one initial population, with
// periodic migration between them, must be bit-identical with and
// without batch evaluation.
func TestBatchHeterogeneousEnginesEquivalence(t *testing.T) {
	run := func(disableBatch bool) [][]GenStats {
		eval, pop := testPopulation(t)
		cfgs := []Config{
			{Generations: 30, Seed: 31, Aggregator: "mean", EvalWorkers: 4, DisableBatch: disableBatch},
			{Generations: 30, Seed: 32, Selection: SelectRank, CrossoverPoints: 3, DisableBatch: disableBatch},
			{Generations: 30, Seed: 33, Crowding: CrowdNearestParent, ForceOp: "crossover", DisableBatch: disableBatch},
		}
		engines, err := NewEngines(context.Background(), eval, pop, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < 30; g++ {
			for _, e := range engines {
				e.Step()
			}
			if g%10 == 9 {
				// Ring migration, delta states cloned along (Emigrants).
				for i, e := range engines {
					engines[(i+1)%len(engines)].Immigrate(e.Emigrants(2))
				}
			}
		}
		out := make([][]GenStats, len(engines))
		for i, e := range engines {
			out[i] = e.History()
		}
		return out
	}
	batch, clone := run(false), run(true)
	for i := range batch {
		sameHistories(t, "hetero island", batch[i], clone[i])
	}
}
