package core

// Generation-batch offspring evaluation. The per-offspring delta path
// (evaluateOffspring) clones the parent's full incremental state for
// every child — a whole set of per-measure summary copies that is pure
// garbage whenever the child loses its survival tournament, which is the
// common case. The batch path instead stages the generation's offspring
// first, groups them by parent, and scores each group against the
// parent's own state through score.EvaluateBatch: the measures'
// reversible (apply/undo) capability advances the state by the change
// list, reads the value, and rolls back, touching memory proportional to
// the edit instead of the file. Only the offspring that actually survive
// replacement are handed a state afterwards — the evicted parent's own
// state advanced in place when possible, a clone otherwise.
//
// A crossover generation's two parent groups are independent, so they
// shard across Config.EvalWorkers workers. Results are bit-for-bit
// identical to the per-offspring path at any width (see the equivalence
// tests in batch_equiv_test.go); only allocations and wall-clock change.

import (
	"fmt"

	"evoprot/internal/dataset"
	"evoprot/internal/score"
)

// useBatch reports whether this generation's offspring go through
// score.EvaluateBatch: delta evaluation on, batching not disabled, and
// every measure reversible. Without the capability the engine stays on
// the per-offspring path, which handles partly-incremental batteries.
func (e *Engine) useBatch() bool {
	return e.batchable && !e.cfg.DisableDelta && !e.cfg.DisableBatch
}

// ensureState lazily materializes an individual's delta state — shared
// by the batch and per-offspring paths, so switching paths mid-run (or
// resuming from a snapshot) rebuilds states transparently.
func (e *Engine) ensureState(ind *Individual) {
	if ind.state != nil {
		return
	}
	st, err := e.eval.Prepare(ind.Data)
	if err != nil {
		panic(fmt.Sprintf("core: preparing delta state: %v", err))
	}
	ind.state = st
}

// batchEvaluateGeneration scores children[i] (derived from parents[i] by
// changes[i]) in one score.EvaluateBatch call. Offspring of the same
// parent — adjacent in the slices; a generation has at most two
// offspring — share one group and therefore one state. Parents are
// delta-prepared lazily, but only when one of their offspring actually
// needs the state (narrow, non-empty edits); wide-edit offspring are
// fully evaluated inside the batch without forcing a state build,
// matching the per-offspring path's laziness. Evaluations land in the
// children; no child receives a state here — commitBatchState hands
// states to the survivors once the tournament has decided.
func (e *Engine) batchEvaluateGeneration(parents, children []*Individual, changes [][]dataset.CellChange) {
	offs := e.bOffs[:0]
	for i, c := range children {
		offs = append(offs, score.BatchOffspring{Child: c.Data, Changes: changes[i]})
	}
	groups := e.bGroups[:0]
	for i := 0; i < len(children); {
		j := i + 1
		for j < len(children) && parents[j] == parents[i] {
			j++
		}
		needState := false
		for k := i; k < j; k++ {
			if len(changes[k]) > 0 && !e.eval.WideEdit(changes[k]) {
				needState = true
			}
		}
		if needState {
			e.ensureState(parents[i])
		}
		groups = append(groups, score.BatchGroup{
			Parent:    parents[i].Eval,
			State:     parents[i].state,
			Offspring: offs[i:j],
		})
		i = j
	}
	if err := e.eval.EvaluateBatch(groups, e.cfg.EvalWorkers); err != nil {
		// Offspring are derived from valid individuals by in-domain
		// operators; batch evaluation can only fail on a programming error.
		panic(fmt.Sprintf("core: batch-evaluating offspring: %v", err))
	}
	for i, c := range children {
		c.Eval = offs[i].Eval
	}
	e.bOffs, e.bGroups = offs, groups // keep grown capacity for later steps
}

// commitBatchState hands a surviving child its delta state: the
// biological parent's own state advanced in place when the parent was
// evicted by this generation's replacement (a zero-allocation transfer),
// or a clone of it when the parent lives on. Wide-edit children stay
// state-less — the same nil-state contract as EvaluateDelta — and
// rebuild lazily if they ever reproduce; so do children of state-less
// parents.
func (e *Engine) commitBatchState(child, parent *Individual, changes []dataset.CellChange, parentEvicted bool) {
	if parent.state == nil || e.eval.WideEdit(changes) {
		return
	}
	st := parent.state
	if parentEvicted {
		parent.state = nil // transferred; the evicted parent is garbage
	} else {
		st = st.Clone()
	}
	if err := e.eval.Advance(st, child.Data, changes); err != nil {
		panic(fmt.Sprintf("core: committing %s offspring state: %v", child.Origin, err))
	}
	child.state = st
}
