package core

// Fuzz targets for the engine's string resolvers: no input may panic,
// successful resolutions must round-trip through String and pass config
// validation, and errors must never leave the caller with a silently
// accepted policy.

import "testing"

func FuzzSelectionByName(f *testing.F) {
	for _, seed := range []string{"", "inverse", "inverse-proportional", "raw", "raw-proportional", "rank", "uniform", "tournament", "Rank", " rank", "\xff"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		p, err := SelectionByName(name)
		if err != nil {
			if p != SelectInverseProportional { // the zero value only
				t.Fatalf("error case returned policy %v", p)
			}
			return
		}
		back, err := SelectionByName(p.String())
		if err != nil || back != p {
			t.Fatalf("policy %v does not round-trip: %v, %v", p, back, err)
		}
		if err := (Config{Generations: 5, Selection: p}).Validate(); err != nil {
			t.Fatalf("resolved policy %v rejected by Validate: %v", p, err)
		}
	})
}

func FuzzCrowdingByName(f *testing.F) {
	for _, seed := range []string{"", "parent-index", "nearest-parent", "nearest", "closest", "NEAREST"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		p, err := CrowdingByName(name)
		if err != nil {
			if p != CrowdParentIndex {
				t.Fatalf("error case returned policy %v", p)
			}
			return
		}
		back, err := CrowdingByName(p.String())
		if err != nil || back != p {
			t.Fatalf("policy %v does not round-trip: %v, %v", p, back, err)
		}
	})
}

// FuzzConfigAggregatorName: arbitrary aggregator names never panic
// validation, and a name Validate accepts always resolves again when the
// engine is actually built (the property admission control relies on).
func FuzzConfigAggregatorName(f *testing.F) {
	for _, seed := range []string{"", "mean", "max", "euclidean", "weighted:0.3", "weighted:1.5", "weighted:", "weighted:x", "median", "weighted:-0"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		cfg := Config{Generations: 5, Aggregator: name}
		if err := cfg.Validate(); err != nil {
			return
		}
		// Accepted at validation => the merge/override layer must also keep
		// accepting it.
		if err := (Config{Generations: 5}).Merged(Config{Aggregator: name}).Validate(); err != nil {
			t.Fatalf("aggregator %q accepted directly but rejected after Merged: %v", name, err)
		}
	})
}
