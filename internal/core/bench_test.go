package core

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/protection"
	"evoprot/internal/score"
)

func benchEngine(b *testing.B, forceOp string) *Engine {
	b.Helper()
	return benchEngineCfg(b, Config{Generations: 1 << 30, Seed: 5, ForceOp: forceOp, InitWorkers: 8})
}

func benchEngineCfg(b *testing.B, cfg Config) *Engine {
	b.Helper()
	d := datagen.MustByName("flare", 300, 5)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := score.NewEvaluator(d, attrs, score.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	var pop []*Individual
	for _, spec := range []string{"micro:k=3", "micro:k=6", "top:q=0.1", "bottom:q=0.1", "recode:depth=2", "rankswap:p=8", "rankswap:p=16", "pram:theta=0.8", "pram:theta=0.5", "micro:k=9"} {
		m := protection.Must(spec)
		masked, err := m.Protect(d, attrs, rng)
		if err != nil {
			b.Fatal(err)
		}
		pop = append(pop, NewIndividual(masked, protection.String(m)))
	}
	e, err := NewEngine(eval, pop, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkStepMutation(b *testing.B) {
	e := benchEngine(b, "mutation")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkStepCrossover(b *testing.B) {
	e := benchEngine(b, "crossover")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkStepMutationFullEval is the pre-delta baseline: identical
// generations with incremental evaluation disabled. Compare against
// BenchmarkStepMutation for the engine-level delta speedup.
func BenchmarkStepMutationFullEval(b *testing.B) {
	e := benchEngineCfg(b, Config{Generations: 1 << 30, Seed: 5, ForceOp: "mutation", InitWorkers: 8, DisableDelta: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkStepCrossoverFullEval(b *testing.B) {
	e := benchEngineCfg(b, Config{Generations: 1 << 30, Seed: 5, ForceOp: "crossover", InitWorkers: 8, DisableDelta: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkMutateOperator isolates the genetic operator from fitness
// evaluation: the paper's "rest of each generation" (0.02s of 120.34s).
func BenchmarkMutateOperator(b *testing.B) {
	e := benchEngine(b, "mutation")
	parent := e.pop[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.mutate(parent)
	}
}

// BenchmarkEvaluateOffspringDelta isolates a single mutation offspring's
// delta evaluation (states already warm) from the operator itself.
func BenchmarkEvaluateOffspringDelta(b *testing.B) {
	e := benchEngine(b, "mutation")
	parent := e.pop[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, changes := e.mutate(parent)
		e.evaluateOffspring(parent, child, changes)
	}
}

func BenchmarkCrossOperator(b *testing.B) {
	e := benchEngine(b, "crossover")
	p1, p2 := e.pop[0], e.pop[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.cross(p1, p2)
	}
}

// BenchmarkInitialPopulationPrepare quantifies the delta-aware initial
// population: with eager Prepare (default) the states are built inside the
// InitWorkers pool at construction, so the first selection of every parent
// goes straight to delta evaluation; with LazyPrepare each first-time
// parent pays a full Prepare on the evolution hot path. Timed over the
// first 20 mutation generations, construction excluded.
func BenchmarkInitialPopulationPrepare(b *testing.B) {
	for _, mode := range []struct {
		name string
		lazy bool
	}{{"eager", false}, {"lazy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := benchEngineCfg(b, Config{
					Generations: 1 << 30, Seed: 5, ForceOp: "mutation",
					InitWorkers: 8, LazyPrepare: mode.lazy,
				})
				b.StartTimer()
				for g := 0; g < 20; g++ {
					e.Step()
				}
			}
		})
	}
}

func BenchmarkSelectIndex(b *testing.B) {
	e := benchEngine(b, "mutation")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.selectIndex()
	}
}
