package core

// Tests for the heterogeneous-island building blocks that live in core:
// the Merged override layer, k-point crossover, per-engine aggregator
// overrides, and the name resolvers behind them.

import (
	"bytes"
	"context"
	"testing"

	"evoprot/internal/score"
)

func stripHistory(h []GenStats) []GenStats {
	out := make([]GenStats, len(h))
	for i, gs := range h {
		gs.EvalTime, gs.TotalTime = 0, 0
		gs.Front = nil // compared by value in sameHistories, not by pointer
		out[i] = gs
	}
	return out
}

func sameFronts(a, b *FrontStats) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Size != b.Size || a.Hypervolume != b.Hypervolume || len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	return true
}

func sameHistories(t *testing.T, label string, a, b []GenStats) {
	t.Helper()
	x, y := stripHistory(a), stripHistory(b)
	if len(x) != len(y) {
		t.Fatalf("%s: history lengths %d vs %d", label, len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("%s: generation %d diverged:\n%+v\n%+v", label, i+1, x[i], y[i])
		}
		if !sameFronts(a[i].Front, b[i].Front) {
			t.Fatalf("%s: generation %d fronts diverged:\n%+v\n%+v", label, i+1, a[i].Front, b[i].Front)
		}
	}
}

// TestMergedInheritance: zero-valued override fields inherit the
// template, set fields replace it — field by field.
func TestMergedInheritance(t *testing.T) {
	template := Config{
		Generations:         100,
		MutationRate:        0.4,
		LeaderFraction:      0.2,
		Selection:           SelectRank,
		Crowding:            CrowdNearestParent,
		Seed:                7,
		NoImprovementWindow: 50,
		ForceOp:             "mutation",
		InitWorkers:         3,
		CrossoverPoints:     3,
		Aggregator:          "mean",
	}
	// An all-zero override changes nothing.
	if got := template.Merged(Config{}); got.Generations != 100 || got.MutationRate != 0.4 ||
		got.LeaderFraction != 0.2 || got.Selection != SelectRank || got.Crowding != CrowdNearestParent ||
		got.Seed != 7 || got.NoImprovementWindow != 50 || got.ForceOp != "mutation" ||
		got.InitWorkers != 3 || got.CrossoverPoints != 3 || got.Aggregator != "mean" ||
		got.DisableDelta || got.LazyPrepare {
		t.Fatalf("zero override mutated the template: %+v", got)
	}
	// A full override replaces everything it sets.
	ov := Config{
		Generations:         5,
		MutationRate:        AllCrossover,
		LeaderFraction:      0.5,
		Selection:           SelectUniform,
		Crowding:            CrowdParentIndex, // zero value: inherits
		NoImprovementWindow: 2,
		ForceOp:             "crossover",
		InitWorkers:         8,
		CrossoverPoints:     5,
		Aggregator:          "euclidean",
		DisableDelta:        true,
		LazyPrepare:         true,
	}
	got := template.Merged(ov)
	if got.Generations != 5 || got.MutationRate != AllCrossover || got.LeaderFraction != 0.5 ||
		got.Selection != SelectUniform || got.NoImprovementWindow != 2 || got.ForceOp != "crossover" ||
		got.InitWorkers != 8 || got.CrossoverPoints != 5 || got.Aggregator != "euclidean" ||
		!got.DisableDelta || !got.LazyPrepare {
		t.Fatalf("override not applied: %+v", got)
	}
	// Zero-valued policies are the documented blind spot: they inherit.
	if got.Crowding != CrowdNearestParent {
		t.Fatalf("zero-valued crowding override replaced the template: %v", got.Crowding)
	}
	if got.Seed != 7 {
		t.Fatalf("unset override seed replaced the template: %d", got.Seed)
	}
}

// TestCrossoverPointsPaperPathIdentical: CrossoverPoints 0 and 2 both
// select the historical 2-point draw — trajectories are bit-identical.
func TestCrossoverPointsPaperPathIdentical(t *testing.T) {
	a := mustRun(t, testEngine(t, Config{Generations: 40, Seed: 13}))
	b := mustRun(t, testEngine(t, Config{Generations: 40, Seed: 13, CrossoverPoints: 2}))
	sameHistories(t, "points 0 vs 2", a.History, b.History)
	if !a.Best.Data.Equal(b.Best.Data) {
		t.Fatal("best individuals diverged between CrossoverPoints 0 and 2")
	}
}

// TestKPointCrossoverDeltaOracle: for non-paper cut counts the engine's
// change lists must describe the offspring exactly — the delta path and
// the full-recompute path walk bit-identical trajectories.
func TestKPointCrossoverDeltaOracle(t *testing.T) {
	for _, points := range []int{1, 3, 4, 5} {
		delta := mustRun(t, testEngine(t, Config{Generations: 40, Seed: 17, CrossoverPoints: points, ForceOp: "crossover"}))
		full := mustRun(t, testEngine(t, Config{Generations: 40, Seed: 17, CrossoverPoints: points, ForceOp: "crossover", DisableDelta: true}))
		sameHistories(t, "k-point delta vs full", delta.History, full.History)
		if !delta.Best.Data.Equal(full.Best.Data) {
			t.Fatalf("points=%d: delta and full evaluation diverged", points)
		}
	}
}

// TestKPointCrossoverDiffersFromPaperPath: a different cut count must
// actually change the search (same seed, different trajectory).
func TestKPointCrossoverDiffersFromPaperPath(t *testing.T) {
	two := mustRun(t, testEngine(t, Config{Generations: 60, Seed: 19, ForceOp: "crossover"}))
	five := mustRun(t, testEngine(t, Config{Generations: 60, Seed: 19, ForceOp: "crossover", CrossoverPoints: 5}))
	a, b := stripHistory(two.History), stripHistory(five.History)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("5-point crossover reproduced the 2-point trajectory exactly")
	}
}

// TestEngineAggregatorOverride: an engine with its own named aggregation
// scores everything — initial population and offspring — under it, and
// matches an engine built directly over a re-aggregated evaluator.
func TestEngineAggregatorOverride(t *testing.T) {
	eval, pop := testPopulation(t)
	named, err := NewEngine(eval, pop, Config{Generations: 30, Seed: 23, Aggregator: "mean"})
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range named.Population() {
		if want := (ind.Eval.IL + ind.Eval.DR) / 2; ind.Eval.Score != want {
			t.Fatalf("initial individual scored %v under mean override, want %v", ind.Eval.Score, want)
		}
	}
	res, err := named.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range res.Population {
		if want := (ind.Eval.IL + ind.Eval.DR) / 2; ind.Eval.Score != want {
			t.Fatalf("evolved individual scored %v under mean override, want %v", ind.Eval.Score, want)
		}
	}

	eval2, pop2 := testPopulation(t)
	direct, err := NewEngine(eval2.WithAggregator(score.Mean{}), pop2, Config{Generations: 30, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := direct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameHistories(t, "named vs direct aggregator", res.History, ref.History)
	if !res.Best.Data.Equal(ref.Best.Data) {
		t.Fatal("named-aggregator engine diverged from the re-aggregated evaluator")
	}
}

// TestResumeRescoresUnderAggregatorOverride: resuming a snapshot into a
// config with a different per-engine aggregator must re-combine the
// restored population's scores on the new scale (mirroring NewEngines),
// so selection and replacement never compare mixed-scale scores.
func TestResumeRescoresUnderAggregatorOverride(t *testing.T) {
	eval, pop := testPopulation(t)
	e, err := NewEngine(eval, pop, Config{Generations: 10, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(eval, bytes.NewReader(buf.Bytes()), Config{Generations: 10, Seed: 29, Aggregator: "mean"})
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range resumed.Population() {
		if want := (ind.Eval.IL + ind.Eval.DR) / 2; ind.Eval.Score != want {
			t.Fatalf("resumed individual scored %v, want mean value %v", ind.Eval.Score, want)
		}
	}
	// Resuming under the aggregator the snapshot was taken with restores
	// the identical scores.
	same, err := Resume(eval, bytes.NewReader(buf.Bytes()), Config{Generations: 10, Seed: 29, Aggregator: "max"})
	if err != nil {
		t.Fatal(err)
	}
	a, b := e.Population(), same.Population()
	for i := range a {
		if a[i].Eval.Score != b[i].Eval.Score {
			t.Fatalf("same-aggregator resume changed score %d: %v vs %v", i, a[i].Eval.Score, b[i].Eval.Score)
		}
	}
}

// TestConfigValidationNewKnobs: the new knobs are validated like the old
// ones.
func TestConfigValidationNewKnobs(t *testing.T) {
	eval, pop := testPopulation(t)
	for name, cfg := range map[string]Config{
		"negative crossover points": {Generations: 5, CrossoverPoints: -1},
		"unknown aggregator":        {Generations: 5, Aggregator: "median"},
		"malformed weighted":        {Generations: 5, Aggregator: "weighted:1.7"},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
		if _, err := NewEngine(eval, pop, cfg); err == nil {
			t.Errorf("%s: NewEngine accepted", name)
		}
	}
	if err := (Config{Generations: 5, CrossoverPoints: 1, Aggregator: "weighted:0.7"}).Validate(); err != nil {
		t.Errorf("good new knobs rejected: %v", err)
	}
}

// TestCrowdingByName: resolver round-trip and rejection.
func TestCrowdingByName(t *testing.T) {
	for name, want := range map[string]CrowdingPolicy{
		"":               CrowdParentIndex,
		"parent-index":   CrowdParentIndex,
		"nearest-parent": CrowdNearestParent,
		"nearest":        CrowdNearestParent,
	} {
		got, err := CrowdingByName(name)
		if err != nil || got != want {
			t.Errorf("CrowdingByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := CrowdingByName("tournament"); err == nil {
		t.Error("unknown crowding name accepted")
	}
	for _, p := range []CrowdingPolicy{CrowdParentIndex, CrowdNearestParent} {
		back, err := CrowdingByName(p.String())
		if err != nil || back != p {
			t.Errorf("crowding %v does not round-trip through its name", p)
		}
	}
}
