package core

import (
	"bytes"
	"strings"
	"testing"
)

// TestSnapshotResumeContinuesIdentically is the defining checkpoint
// property: run(N+M) == run(N) + snapshot + resume + run(M).
func TestSnapshotResumeContinuesIdentically(t *testing.T) {
	const n, m = 15, 20

	// Reference: one uninterrupted run.
	ref := testEngine(t, Config{Generations: n + m, Seed: 91})
	refRes := mustRun(t, ref)

	// Checkpointed: run n, snapshot, resume into a fresh engine, run m.
	first := testEngine(t, Config{Generations: n, Seed: 91})
	mustRun(t, first)
	var buf bytes.Buffer
	if err := first.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	eval, _ := testPopulation(t)
	resumed, err := Resume(eval, &buf, Config{Generations: m, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Generation() != n {
		t.Fatalf("resumed at generation %d, want %d", resumed.Generation(), n)
	}
	resRes := mustRun(t, resumed)

	if len(resRes.History) != n+m {
		t.Fatalf("resumed history = %d, want %d", len(resRes.History), n+m)
	}
	for i := range refRes.History {
		a, b := refRes.History[i], resRes.History[i]
		a.EvalTime, a.TotalTime = 0, 0
		b.EvalTime, b.TotalTime = 0, 0
		if a != b {
			t.Fatalf("generation %d diverged:\nref: %+v\nres: %+v", i+1, a, b)
		}
	}
	if refRes.Best.Eval.Score != resRes.Best.Eval.Score {
		t.Fatalf("best diverged: %v vs %v", refRes.Best.Eval.Score, resRes.Best.Eval.Score)
	}
	if !refRes.Best.Data.Equal(resRes.Best.Data) {
		t.Fatal("best individual data diverged")
	}
	if refRes.Evaluations != resRes.Evaluations {
		t.Fatalf("evaluations diverged: %d vs %d", refRes.Evaluations, resRes.Evaluations)
	}
}

func TestSnapshotPreservesEvaluations(t *testing.T) {
	e := testEngine(t, Config{Generations: 10, Seed: 93})
	mustRun(t, e)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	eval, _ := testPopulation(t)
	resumed, err := Resume(eval, &buf, Config{Generations: 1, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	a, b := e.Population(), resumed.Population()
	if len(a) != len(b) {
		t.Fatal("population sizes differ")
	}
	for i := range a {
		if a[i].Eval.Score != b[i].Eval.Score || a[i].Origin != b[i].Origin {
			t.Fatalf("individual %d differs after resume", i)
		}
		if !a[i].Data.Equal(b[i].Data) {
			t.Fatalf("individual %d data differs after resume", i)
		}
	}
}

func TestResumeRejectsCorruptSnapshots(t *testing.T) {
	e := testEngine(t, Config{Generations: 5, Seed: 95})
	mustRun(t, e)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	eval, _ := testPopulation(t)

	cases := map[string]string{
		"not json":      "{broken",
		"wrong version": strings.Replace(good, `"version":2`, `"version":99`, 1),
		"bad cells":     strings.Replace(good, `"cells":[`, `"cells":[99999,`, 1),
	}
	for name, payload := range cases {
		if _, err := Resume(eval, strings.NewReader(payload), Config{Generations: 1, Seed: 95}); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
	if _, err := Resume(nil, strings.NewReader(good), Config{Generations: 1, Seed: 95}); err == nil {
		t.Error("nil evaluator accepted")
	}
	if _, err := Resume(eval, strings.NewReader(good), Config{Generations: -1, Seed: 95}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestResumeRejectsMismatchedEvaluator(t *testing.T) {
	e := testEngine(t, Config{Generations: 5, Seed: 97})
	mustRun(t, e)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// An evaluator over different attribute indices must be rejected.
	orig := e.eval.Orig()
	other, err := scoreEvaluatorOverFirstAttr(orig)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(other, bytes.NewReader(buf.Bytes()), Config{Generations: 1, Seed: 97}); err == nil {
		t.Error("mismatched attrs accepted")
	}
}
