package core

// NSGA-II-style Pareto mode (Config.Objective == ObjectivePareto): instead
// of folding (IL, DR) into one aggregated score, the engine ranks the
// population by fast non-dominated sorting (Deb et al. 2002) and breaks
// ties inside a front by crowding distance. Reproduction selection becomes
// a crowded binary tournament, and replacement becomes mu+lambda
// environmental selection over population + offspring — a child may evict
// any dominated individual, not just its own parent. Evaluation is
// untouched: rank and crowding are computed from the Evaluation.Pair()
// values the (possibly batched) delta-evaluation path already produces,
// and the aggregated Score keeps being computed as the in-front
// tie-breaker and the currency of statistics and cross-mode migration.
//
// Rank and crowding are derived data. They are recomputed on every
// population sort and never serialized; snapshot/resume re-derives them
// from the restored pairs, so a resumed Pareto run continues the identical
// trajectory (gated by TestParetoSnapshotResume).

import (
	"fmt"
	"math"
	"sort"

	"evoprot/internal/dataset"
	"evoprot/internal/pareto"
	"evoprot/internal/score"
)

// Objective names for Config.Objective.
const (
	// ObjectiveScalar optimizes the single aggregator-combined score —
	// the paper's setup and the default.
	ObjectiveScalar = "scalar"
	// ObjectivePareto optimizes the raw (IL, DR) pair with NSGA-II
	// non-dominated sorting and crowding-distance selection.
	ObjectivePareto = "pareto"
)

// DefaultParetoRef is the hypervolume reference point selected when
// Config.ParetoRef is zero: the (100, 100) worst corner of the measures'
// natural [0,100] x [0,100] range, so the hypervolume is the fraction
// (times 10^4) of the whole trade-off plane the front dominates.
var DefaultParetoRef = score.Pair{IL: 100, DR: 100}

// ObjectiveByName validates an objective name the way engine construction
// would, returning the canonical form. The empty name is valid and means
// ObjectiveScalar — zero configs keep their historical behavior.
func ObjectiveByName(name string) (string, error) {
	switch name {
	case "":
		return "", nil
	case ObjectiveScalar:
		return ObjectiveScalar, nil
	case ObjectivePareto:
		return ObjectivePareto, nil
	default:
		return "", fmt.Errorf("core: unknown objective %q (want scalar|pareto)", name)
	}
}

// FrontStats summarizes one generation's first non-dominated front — the
// Pareto-mode payload of GenStats, results and the event stream.
type FrontStats struct {
	// Size is the number of distinct points on the front.
	Size int
	// Hypervolume is the trade-off-plane area the front dominates within
	// the configured reference box; larger is better.
	Hypervolume float64
	// Pairs are the front's (IL, DR) points, sorted by increasing IL.
	Pairs []score.Pair
}

// paretoMode reports whether the engine runs NSGA-II selection.
func (e *Engine) paretoMode() bool { return e.cfg.Objective == ObjectivePareto }

// frontStats extracts the current population's non-dominated front and
// scores it against the configured reference point.
func (e *Engine) frontStats() FrontStats {
	e.pairBuf = e.pairBuf[:0]
	for _, ind := range e.pop {
		e.pairBuf = append(e.pairBuf, ind.Eval.Pair())
	}
	front := pareto.Front(e.pairBuf)
	hv, err := pareto.Hypervolume(front, e.cfg.ParetoRef)
	if err != nil {
		// withDefaults validated the reference point; an error here is a
		// programming error.
		panic(fmt.Sprintf("core: hypervolume against validated reference: %v", err))
	}
	return FrontStats{Size: len(front), Hypervolume: hv, Pairs: front}
}

// assignRanks performs fast non-dominated sorting over the individuals'
// (IL, DR) pairs: every member of the returned fronts[k] is dominated only
// by members of earlier fronts, and ind.rank is set to k. Within a front,
// individuals keep their input order, so the result — and everything
// built on it — is deterministic for a deterministic input order.
func assignRanks(inds []*Individual) [][]*Individual {
	n := len(inds)
	domCount := make([]int, n)
	dominated := make([][]int, n)
	for i := 0; i < n; i++ {
		pi := inds[i].Eval.Pair()
		for j := i + 1; j < n; j++ {
			pj := inds[j].Eval.Pair()
			switch {
			case pareto.Dominates(pi, pj):
				dominated[i] = append(dominated[i], j)
				domCount[j]++
			case pareto.Dominates(pj, pi):
				dominated[j] = append(dominated[j], i)
				domCount[i]++
			}
		}
	}
	var fronts [][]*Individual
	current := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			current = append(current, i)
		}
	}
	rank := 0
	for len(current) > 0 {
		front := make([]*Individual, len(current))
		var next []int
		for k, i := range current {
			inds[i].rank = rank
			front[k] = inds[i]
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		sort.Ints(next) // restore input order within the next front
		fronts = append(fronts, front)
		current = next
		rank++
	}
	return fronts
}

// assignCrowding computes the NSGA-II crowding distance of one front:
// boundary points of each objective get +Inf, interior points accumulate
// the normalized gap between their neighbors. Larger means less crowded
// and is preferred, which pressures the front to spread across the
// trade-off curve instead of clumping.
func assignCrowding(front []*Individual) {
	for _, ind := range front {
		ind.crowd = 0
	}
	if len(front) <= 2 {
		for _, ind := range front {
			ind.crowd = math.Inf(1)
		}
		return
	}
	s := make([]*Individual, len(front))
	copy(s, front)
	for _, value := range []func(*Individual) float64{
		func(ind *Individual) float64 { return ind.Eval.IL },
		func(ind *Individual) float64 { return ind.Eval.DR },
	} {
		sort.SliceStable(s, func(i, j int) bool { return value(s[i]) < value(s[j]) })
		lo, hi := value(s[0]), value(s[len(s)-1])
		s[0].crowd = math.Inf(1)
		s[len(s)-1].crowd = math.Inf(1)
		if span := hi - lo; span > 0 {
			for i := 1; i < len(s)-1; i++ {
				s[i].crowd += (value(s[i+1]) - value(s[i-1])) / span
			}
		}
	}
}

// refreshPareto re-derives rank and crowding for the current population.
func (e *Engine) refreshPareto() {
	for _, f := range assignRanks(e.pop) {
		assignCrowding(f)
	}
}

// envSelect is NSGA-II environmental (mu+lambda) selection: the pool is
// non-dominated sorted, whole fronts are admitted best-first, and the
// first front that does not fit is truncated by descending crowding
// distance (ties keep pool order, so the survivor set is deterministic).
// Rank and crowding of the pool are (re)assigned as a side effect.
func envSelect(pool []*Individual, n int) []*Individual {
	kept := make([]*Individual, 0, n)
	for _, f := range assignRanks(pool) {
		assignCrowding(f)
		if len(kept)+len(f) <= n {
			kept = append(kept, f...)
			continue
		}
		sort.SliceStable(f, func(i, j int) bool { return f[i].crowd > f[j].crowd })
		kept = append(kept, f[:n-len(kept)]...)
		break
	}
	return kept
}

func containsIndividual(s []*Individual, ind *Individual) bool {
	for _, k := range s {
		if k == ind {
			return true
		}
	}
	return false
}

// paretoReplace is Pareto mode's replacement step: environmental selection
// over population + children. Surviving children of the batch-evaluation
// path receive their delta states here — transferred without a clone when
// the biological parent was itself evicted, cloned when it survived; when
// two surviving children share one evicted parent the first (by child
// index) takes the state and the second rebuilds lazily, deterministically.
func (e *Engine) paretoReplace(parents, children []*Individual, changes [][]dataset.CellChange, batch bool) (accepted int) {
	pool := make([]*Individual, 0, len(e.pop)+len(children))
	pool = append(pool, e.pop...)
	pool = append(pool, children...)
	kept := envSelect(pool, len(e.pop))
	for i, c := range children {
		if !containsIndividual(kept, c) {
			continue
		}
		accepted++
		if batch {
			e.commitBatchState(c, parents[i], changes[i], !containsIndividual(kept, parents[i]))
		}
	}
	e.pop = append(e.pop[:0], kept...)
	return accepted
}

// selectIndexPareto is the crowded binary tournament: two uniform draws,
// lower rank wins, crowding distance breaks rank ties (larger is better),
// and the lower population index — the better aggregated score, since
// Pareto mode sorts by (rank, score) — breaks exact ties.
func (e *Engine) selectIndexPareto() int {
	a := e.rng.IntN(len(e.pop))
	b := e.rng.IntN(len(e.pop))
	if e.crowdedLess(b, a) {
		return b
	}
	return a
}

// crowdedLess reports whether pop[i] beats pop[j] under the crowded
// comparison operator.
func (e *Engine) crowdedLess(i, j int) bool {
	pi, pj := e.pop[i], e.pop[j]
	if pi.rank != pj.rank {
		return pi.rank < pj.rank
	}
	if pi.crowd != pj.crowd {
		return pi.crowd > pj.crowd
	}
	return i < j
}
