// Package core implements the paper's contribution: an evolutionary
// algorithm whose individuals are entire protected versions of one
// categorical microdata file (paper §2, Algorithm 1).
//
// Each generation flips a fair coin between the two genetic operators
// (§2.2): mutation replaces one random gene — a single categorical value —
// of one score-selected individual; crossover performs 2-point crossing at
// the category level between a leader-group individual and a
// score-selected one. Replacement is elitist: a mutated child competes
// with its parent; crossover children compete with their respective
// parents under the paper's deterministic-crowding scheme (§2.4). The
// engine records the max/mean/min score trajectory and the evaluation
// timings the paper reports.
//
// Offspring are scored through incremental (delta) evaluation by default:
// the operators report exactly which cells they changed, and
// score.EvaluateDelta advances the parent's cached per-measure state by
// that change list instead of rescanning the whole file — bit-identical
// results at a fraction of the cost (see internal/score/delta.go). Each
// individual lazily carries its delta state; Config.DisableDelta restores
// the full re-evaluation path.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"evoprot/internal/dataset"
	"evoprot/internal/pareto"
	"evoprot/internal/score"
)

// Individual is one member of the population: a protected dataset plus its
// cached fitness evaluation.
type Individual struct {
	// Data is the protected file; the chromosome. Genes are the category
	// values of the protected attributes.
	Data *dataset.Dataset
	// Eval is the cached fitness breakdown of Data.
	Eval score.Evaluation
	// Origin describes where the individual came from: a masking-method
	// label for seeds, or "mutation"/"crossover" for offspring.
	Origin string

	// state is the incremental-evaluation state describing Data, built
	// lazily the first time the individual becomes a parent and carried
	// to offspring through score.EvaluateDelta. It is nil until then, on
	// individuals loaded from a snapshot (Resume rebuilds it lazily too),
	// and permanently when Config.DisableDelta is set.
	state *score.DeltaState

	// rank and crowd are the NSGA-II non-domination rank (0 = first
	// front) and crowding distance of Pareto mode. They are derived data:
	// recomputed from the population's (IL, DR) pairs every sort and never
	// serialized — a resumed engine re-derives them deterministically.
	// Unused (zero) in scalar mode.
	rank  int
	crowd float64
}

// NewIndividual wraps a protected dataset as an unevaluated individual.
func NewIndividual(data *dataset.Dataset, origin string) *Individual {
	return &Individual{Data: data, Origin: origin}
}

// SelectionPolicy decides how individuals are drawn from the population
// for reproduction. Scores are lower-is-better.
type SelectionPolicy int

const (
	// SelectInverseProportional draws with probability proportional to
	// 1/Score — the paper's *described* semantics ("better individuals
	// have a greater probability of being selected"). Default.
	SelectInverseProportional SelectionPolicy = iota
	// SelectRawProportional draws with probability proportional to Score,
	// the literal reading of the paper's Eq. 3 (which favours bad
	// individuals; kept for the ablation study, see DESIGN.md).
	SelectRawProportional
	// SelectRank draws with probability proportional to N-rank, a
	// scale-free alternative.
	SelectRank
	// SelectUniform draws uniformly.
	SelectUniform
)

// String returns the policy name.
func (p SelectionPolicy) String() string {
	switch p {
	case SelectInverseProportional:
		return "inverse-proportional"
	case SelectRawProportional:
		return "raw-proportional"
	case SelectRank:
		return "rank"
	case SelectUniform:
		return "uniform"
	default:
		return fmt.Sprintf("SelectionPolicy(%d)", int(p))
	}
}

// SelectionByName resolves a policy name.
func SelectionByName(name string) (SelectionPolicy, error) {
	switch name {
	case "inverse-proportional", "inverse", "":
		return SelectInverseProportional, nil
	case "raw-proportional", "raw":
		return SelectRawProportional, nil
	case "rank":
		return SelectRank, nil
	case "uniform":
		return SelectUniform, nil
	default:
		return 0, fmt.Errorf("core: unknown selection policy %q", name)
	}
}

// CrowdingPolicy decides how crossover children are paired against parents
// for the survival tournament.
type CrowdingPolicy int

const (
	// CrowdParentIndex pairs child k with parent k — the paper's "each
	// newcomer Xjk maintains a proximity relation with its parent Xik".
	// Default.
	CrowdParentIndex CrowdingPolicy = iota
	// CrowdNearestParent pairs children with parents minimizing total
	// genotype distance (classic deterministic crowding, Mahfoud 1992).
	CrowdNearestParent
)

// String returns the policy name.
func (p CrowdingPolicy) String() string {
	switch p {
	case CrowdParentIndex:
		return "parent-index"
	case CrowdNearestParent:
		return "nearest-parent"
	default:
		return fmt.Sprintf("CrowdingPolicy(%d)", int(p))
	}
}

// CrowdingByName resolves a crowding-policy name.
func CrowdingByName(name string) (CrowdingPolicy, error) {
	switch name {
	case "parent-index", "":
		return CrowdParentIndex, nil
	case "nearest-parent", "nearest":
		return CrowdNearestParent, nil
	default:
		return 0, fmt.Errorf("core: unknown crowding policy %q", name)
	}
}

// AllCrossover is the MutationRate sentinel requesting an effective rate
// of 0.0 — every generation performs crossover. It exists because the
// zero value of Config.MutationRate selects the paper's default of 0.5,
// so a literal 0.0 cannot be expressed directly.
const AllCrossover = -1.0

// DefaultGenerations is the evolution budget selected when
// Config.Generations is zero — the paper's 400-generation setup. It is the
// single source of truth for the default; the facade and experiment layers
// pass zero through instead of re-stating the number.
const DefaultGenerations = 400

// StopReason records why a run ended.
type StopReason string

const (
	// StopCompleted: the configured generation budget was exhausted.
	StopCompleted StopReason = "completed"
	// StopStagnated: the best score did not improve for
	// NoImprovementWindow generations.
	StopStagnated StopReason = "stagnated"
	// StopCancelled: the run's context was cancelled.
	StopCancelled StopReason = "cancelled"
	// StopDeadline: the run's context deadline expired.
	StopDeadline StopReason = "deadline"
)

// StopReasonForContext maps a context error to the stop reason it implies.
func StopReasonForContext(err error) StopReason {
	if errors.Is(err, context.DeadlineExceeded) {
		return StopDeadline
	}
	return StopCancelled
}

// Config parameterizes the engine. Zero values select the paper's setup.
type Config struct {
	// Generations is the number of generations Run executes. Zero selects
	// DefaultGenerations; negative values are rejected.
	Generations int
	// MutationRate is the probability a generation performs mutation
	// rather than crossover; the paper fixes it at 0.5 (§2.2). Zero means
	// 0.5; use the AllCrossover sentinel for an explicit rate of 0.0.
	MutationRate float64
	// LeaderFraction sets the leader-group size Nb as a fraction of the
	// population (§2.4). Zero means 0.1; Nb is at least 2.
	LeaderFraction float64
	// Selection is the reproduction-selection policy.
	Selection SelectionPolicy
	// Crowding is the crossover replacement policy.
	Crowding CrowdingPolicy
	// CrossoverPoints is the number of cut points of the category-level
	// crossover. Zero and 2 both select the paper's 2-point scheme (§2.2.2)
	// through its historical random draw, so existing trajectories are
	// unchanged; any other k >= 1 performs standard k-point crossover
	// (sorted random cuts, alternating segments exchanged). Negative values
	// are rejected. Heterogeneous islands use this to give islands distinct
	// recombination behaviors.
	CrossoverPoints int
	// Aggregator optionally names a per-engine fitness aggregation — "mean",
	// "max", "euclidean" or "weighted:<w>" — overriding the evaluator's.
	// Empty keeps the evaluator's aggregator. The engine then re-scores the
	// shared initial evaluations and all offspring under its own
	// aggregation, which is how heterogeneous islands explore the
	// risk/information-loss trade-off from different biases at once.
	Aggregator string
	// Objective selects the optimization mode: ObjectiveScalar (the
	// default — the paper's single aggregated score) or ObjectivePareto
	// (NSGA-II-style non-dominated sorting + crowding distance over the
	// raw (IL, DR) pairs; see nsga2.go). Scores are still computed under
	// the aggregator in Pareto mode — statistics, migration to scalarized
	// islands and tie-breaking stay meaningful — but selection and
	// replacement ignore them.
	Objective string
	// ParetoRef is the hypervolume reference point of Pareto mode; each
	// generation's front is scored as the trade-off-plane area it
	// dominates within [0, ParetoRef.IL] x [0, ParetoRef.DR]. The zero
	// value selects DefaultParetoRef; set components must be finite and
	// positive. Ignored in scalar mode (but still validated when set, so
	// misconfigurations surface at admission regardless of mode).
	ParetoRef score.Pair
	// Seed drives all stochastic decisions; a fixed seed reproduces a run
	// exactly.
	Seed uint64
	// NoImprovementWindow stops Run early when the best score has not
	// improved for this many generations. Zero disables early stopping.
	NoImprovementWindow int
	// ForceOp pins every generation to one operator: "mutation",
	// "crossover", or "" for the paper's fair coin. Used by the timing
	// benchmarks.
	ForceOp string
	// InitWorkers sets the worker-pool width for evaluating the initial
	// population. Zero means sequential.
	InitWorkers int
	// EvalWorkers sets the worker-pool width for generation-batch
	// offspring evaluation: a crossover generation's two parent groups
	// are scored concurrently when it is at least 2. Zero inherits
	// InitWorkers; negative values force sequential batch evaluation.
	// Results are identical at any width — only wall-clock changes.
	EvalWorkers int
	// DisableDelta turns off incremental (delta) offspring evaluation:
	// every offspring is fully re-scored from scratch, the pre-delta
	// behavior. Results are bit-identical either way — delta evaluation
	// only changes speed — so this is a benchmarking and debugging knob.
	DisableDelta bool
	// DisableBatch turns off generation-batch (apply/undo) offspring
	// evaluation, restoring the per-offspring clone-and-apply delta path.
	// Results are bit-identical either way — batching only changes speed
	// — so this is a benchmarking and debugging knob like DisableDelta.
	DisableBatch bool
	// LazyPrepare skips the eager delta-preparation of the initial
	// population: states are then built lazily the first time each
	// individual reproduces, the pre-Runner behavior. Trades slower first
	// selections for a cheaper construction — a benchmarking and
	// memory-pressure knob; results are bit-identical either way.
	LazyPrepare bool
	// OnGeneration, when non-nil, is called synchronously with each
	// generation's statistics — progress reporting for long runs.
	OnGeneration func(GenStats)
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Generations == 0 {
		out.Generations = DefaultGenerations
	}
	if out.Generations < 0 {
		return out, fmt.Errorf("core: Generations must be positive, got %d", out.Generations)
	}
	switch {
	case out.MutationRate == 0:
		out.MutationRate = 0.5
	case out.MutationRate == AllCrossover:
		out.MutationRate = 0
	}
	if out.MutationRate < 0 || out.MutationRate > 1 {
		return out, fmt.Errorf("core: MutationRate %v outside [0,1] (use core.AllCrossover for an explicit 0.0)", out.MutationRate)
	}
	if out.LeaderFraction == 0 {
		out.LeaderFraction = 0.1
	}
	if out.LeaderFraction < 0 || out.LeaderFraction > 1 {
		return out, fmt.Errorf("core: LeaderFraction %v outside [0,1]", out.LeaderFraction)
	}
	switch out.ForceOp {
	case "", "mutation", "crossover":
	default:
		return out, fmt.Errorf("core: ForceOp %q (want mutation|crossover|empty)", out.ForceOp)
	}
	if out.CrossoverPoints == 0 {
		out.CrossoverPoints = 2
	}
	if out.CrossoverPoints < 1 {
		return out, fmt.Errorf("core: CrossoverPoints must be positive, got %d", out.CrossoverPoints)
	}
	if out.Aggregator != "" {
		if _, err := score.ExtendedAggregatorByName(out.Aggregator); err != nil {
			return out, err
		}
	}
	switch out.Objective {
	case "", ObjectiveScalar:
	case ObjectivePareto:
		if out.ParetoRef == (score.Pair{}) {
			out.ParetoRef = DefaultParetoRef
		}
	default:
		return out, fmt.Errorf("core: unknown objective %q (want scalar|pareto)", out.Objective)
	}
	if ref := out.ParetoRef; ref != (score.Pair{}) {
		if !pareto.Finite(ref) || ref.IL <= 0 || ref.DR <= 0 {
			return out, fmt.Errorf("core: ParetoRef (%v, %v) must have finite positive components", ref.IL, ref.DR)
		}
	}
	if out.EvalWorkers == 0 {
		out.EvalWorkers = out.InitWorkers
	}
	return out, nil
}

// Validate checks the configuration the way engine construction would,
// without building anything — the admission-time gate services run on
// submitted job specs.
func (c Config) Validate() error {
	_, err := c.withDefaults()
	return err
}

// Merged overlays an override onto this configuration — the inheritance
// rule of heterogeneous islands: every zero-valued override field keeps
// the template's value, every set field replaces it. Because inheritance
// keys on the zero value, a few settings cannot be expressed in an
// override: MutationRate 0.0 needs the AllCrossover sentinel (as
// everywhere), and the zero-valued Selection and Crowding policies (the
// defaults) cannot override a template that sets a non-default policy.
// Boolean knobs can only be switched on, never back off.
func (c Config) Merged(o Config) Config {
	out := c
	if o.Generations != 0 {
		out.Generations = o.Generations
	}
	if o.MutationRate != 0 {
		out.MutationRate = o.MutationRate
	}
	if o.LeaderFraction != 0 {
		out.LeaderFraction = o.LeaderFraction
	}
	if o.Selection != 0 {
		out.Selection = o.Selection
	}
	if o.Crowding != 0 {
		out.Crowding = o.Crowding
	}
	if o.Seed != 0 {
		out.Seed = o.Seed
	}
	if o.NoImprovementWindow != 0 {
		out.NoImprovementWindow = o.NoImprovementWindow
	}
	if o.ForceOp != "" {
		out.ForceOp = o.ForceOp
	}
	if o.InitWorkers != 0 {
		out.InitWorkers = o.InitWorkers
	}
	if o.EvalWorkers != 0 {
		out.EvalWorkers = o.EvalWorkers
	}
	if o.DisableDelta {
		out.DisableDelta = true
	}
	if o.DisableBatch {
		out.DisableBatch = true
	}
	if o.LazyPrepare {
		out.LazyPrepare = true
	}
	if o.CrossoverPoints != 0 {
		out.CrossoverPoints = o.CrossoverPoints
	}
	if o.Aggregator != "" {
		out.Aggregator = o.Aggregator
	}
	if o.Objective != "" {
		out.Objective = o.Objective
	}
	if o.ParetoRef != (score.Pair{}) {
		out.ParetoRef = o.ParetoRef
	}
	if o.OnGeneration != nil {
		out.OnGeneration = o.OnGeneration
	}
	return out
}

// GenStats is one generation's record in the evolution history — the data
// behind the paper's max/mean/min evolution figures.
type GenStats struct {
	// Gen is the 1-based generation number.
	Gen int
	// Op is the operator the generation performed.
	Op string
	// Min, Mean and Max summarize the population's scores after the
	// generation.
	Min, Mean, Max float64
	// BestIL and BestDR are the components of the best individual.
	BestIL, BestDR float64
	// Evals is the number of fitness evaluations performed.
	Evals int
	// Accepted is the number of offspring that survived replacement this
	// generation (0..1 for mutation, 0..2 for crossover).
	Accepted int
	// EvalTime is the wall time spent in fitness evaluation; TotalTime is
	// the whole generation. The paper's timing table (§3.2) reports that
	// EvalTime dominates.
	EvalTime, TotalTime time.Duration
	// Improved reports whether the best score improved this generation —
	// in Pareto mode, whether the front's hypervolume strictly grew.
	Improved bool
	// Front summarizes the generation's non-dominated front in Pareto
	// mode; nil in scalar mode, so scalarized histories and event feeds
	// are byte-identical to pre-Pareto builds.
	Front *FrontStats `json:",omitempty"`
}

// Result is the outcome of a Run.
type Result struct {
	// Population is the final population, sorted best (lowest score)
	// first.
	Population []*Individual
	// History holds one GenStats per executed generation.
	History []GenStats
	// Generations is the number of generations actually executed since the
	// engine was constructed or resumed (early stopping or cancellation may
	// cut a run short).
	Generations int
	// StopReason records why the run ended: budget exhausted, stagnation,
	// cancellation, or deadline.
	StopReason StopReason
	// Evaluations counts all fitness evaluations including the initial
	// population.
	Evaluations int
	// AcceptedOffspring and TotalOffspring count how many generated
	// children survived the elitist replacement across the run — the
	// operator acceptance rate the elitism scheme induces.
	AcceptedOffspring, TotalOffspring int
	// Best is the best individual of the final population.
	Best *Individual
}

// Engine runs the evolutionary algorithm over a population of protections
// of one original dataset.
type Engine struct {
	eval      *score.Evaluator
	cfg       Config
	rng       *rand.Rand
	pcg       *rand.PCG     // the rng's source, kept for snapshotting
	pop       []*Individual // sorted by Eval.Score ascending
	attrs     []int
	mutable   []int // protected columns with cardinality > 1; mutation draws from these
	history   []GenStats
	evals     int
	gen       int
	startGen  int // generation count at construction or resume
	accepted  int
	offspring int

	// chBuf1/chBuf2 are the operators' change-list buffers, reused across
	// generations: the delta-evaluation chain consumes change lists
	// without retaining them, so each Step may overwrite the previous
	// one's lists instead of allocating fresh slices.
	chBuf1, chBuf2 []dataset.CellChange
	// cutBuf holds the k-point crossover's sorted cut positions, reused
	// across generations (unused on the 2-point paper path).
	cutBuf []int
	// pairBuf stages the population's (IL, DR) pairs for Pareto-mode
	// front extraction, reused across generations.
	pairBuf []score.Pair

	// batchable caches whether every measure of the engine's evaluator
	// supports reversible (apply/undo) delta evaluation — the capability
	// gate of the generation-batch path; without it the engine stays on
	// the per-offspring clone-and-apply path.
	batchable bool
	// bParents/bChildren/bChanges stage one generation's offspring for
	// batch evaluation, and bOffs/bGroups are the score.EvaluateBatch
	// buffers; all reused across Steps (a generation has at most two
	// offspring).
	bParents  [2]*Individual
	bChildren [2]*Individual
	bChanges  [2][]dataset.CellChange
	bOffs     []score.BatchOffspring
	bGroups   []score.BatchGroup

	mu    sync.Mutex // guards onGen
	onGen func(GenStats)
}

// NewEngine builds an engine and evaluates the initial population. The
// initial individuals' Data must share the original dataset's schema and
// shape; their Eval is computed here (any existing value is ignored).
// Unless delta evaluation is disabled (or LazyPrepare set), each
// individual's incremental state is built alongside its evaluation in the
// same InitWorkers pool, so the first reproduction of every parent skips
// the lazy state build.
func NewEngine(eval *score.Evaluator, initial []*Individual, cfg Config) (*Engine, error) {
	engines, err := NewEngines(context.Background(), eval, initial, []Config{cfg})
	if err != nil {
		return nil, err
	}
	return engines[0], nil
}

// NewEngines builds several engines over one shared evaluator and initial
// population — the island-model constructor. The population is evaluated
// (and, where any config wants delta evaluation, delta-prepared) exactly
// once; engine i receives its own individual wrappers under cfgs[i], with
// the datasets shared (they are copy-on-write throughout the engine) and
// the prepared states cloned per engine so concurrent islands never share
// mutable evaluation state. The context bounds the initial evaluation —
// the expensive part of construction — so cancellation works during
// startup, not just between generations.
func NewEngines(ctx context.Context, eval *score.Evaluator, initial []*Individual, cfgs []Config) ([]*Engine, error) {
	if eval == nil {
		return nil, fmt.Errorf("core: nil evaluator")
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("core: no engine configs")
	}
	resolved := make([]Config, len(cfgs))
	prepare := false
	for i, cfg := range cfgs {
		c, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		resolved[i] = c
		if !c.DisableDelta && !c.LazyPrepare {
			prepare = true
		}
	}
	if len(initial) < 2 {
		return nil, fmt.Errorf("core: population of %d, need at least 2", len(initial))
	}
	data := make([]*dataset.Dataset, len(initial))
	for i, ind := range initial {
		if ind == nil || ind.Data == nil {
			return nil, fmt.Errorf("core: nil individual at position %d", i)
		}
		data[i] = ind.Data
	}
	workers := 0
	for _, c := range resolved {
		if c.InitWorkers > workers {
			workers = c.InitWorkers
		}
	}
	var evs []score.Evaluation
	var states []*score.DeltaState
	var err error
	if prepare {
		evs, states, err = eval.EvaluateAllPrepared(ctx, data, workers)
	} else {
		evs, err = eval.EvaluateAll(ctx, data, workers)
	}
	if err != nil {
		return nil, err
	}
	mutable, err := mutableAttrs(eval)
	if err != nil {
		return nil, err
	}
	engines := make([]*Engine, len(resolved))
	for k, c := range resolved {
		engEval, err := engineEvaluator(eval, c)
		if err != nil {
			return nil, err
		}
		pop := make([]*Individual, len(initial))
		for i, ind := range initial {
			pop[i] = &Individual{Data: ind.Data, Origin: ind.Origin, Eval: evs[i]}
			if engEval != eval {
				// The shared evaluation carries the shared aggregator's
				// score; re-combine the (IL, DR) pair under this engine's
				// own aggregation. The parts maps stay shared — they are
				// aggregator-independent.
				pop[i].Eval.Score = engEval.Aggregator().Combine(evs[i].IL, evs[i].DR)
			}
			if states != nil && !c.DisableDelta && !c.LazyPrepare {
				if k == len(resolved)-1 {
					pop[i].state = states[i] // last engine takes ownership
				} else {
					pop[i].state = states[i].Clone()
				}
			}
		}
		pcg := rand.NewPCG(c.Seed, 0x853c49e6748fea9b)
		e := &Engine{
			eval:      engEval,
			cfg:       c,
			rng:       rand.New(pcg),
			pcg:       pcg,
			pop:       pop,
			attrs:     eval.Attrs(),
			mutable:   mutable,
			batchable: engEval.Batchable(),
			onGen:     c.OnGeneration,
		}
		e.evals = len(pop)
		e.sortPop()
		engines[k] = e
	}
	return engines, nil
}

// engineEvaluator resolves the evaluator an engine scores with: the shared
// one, or — when the config names its own aggregation — a derived copy
// sharing the measure batteries (so delta states remain interchangeable
// across engines) but combining (IL, DR) its own way.
func engineEvaluator(eval *score.Evaluator, c Config) (*score.Evaluator, error) {
	if c.Aggregator == "" {
		return eval, nil
	}
	agg, err := score.ExtendedAggregatorByName(c.Aggregator)
	if err != nil {
		return nil, err
	}
	return eval.WithAggregator(agg), nil
}

// mutableAttrs returns the protected columns whose domain has more than
// one category — the only genes mutation can actually change. It errors
// when none exist: every protected domain then has a single category, no
// gene can ever take a different value, and neither operator can move the
// search.
func mutableAttrs(eval *score.Evaluator) ([]int, error) {
	orig := eval.Orig()
	var mutable []int
	for _, col := range eval.Attrs() {
		if orig.Schema().Attr(col).Cardinality() > 1 {
			mutable = append(mutable, col)
		}
	}
	if len(mutable) == 0 {
		return nil, fmt.Errorf("core: no protected attribute has more than one category; nothing can mutate")
	}
	return mutable, nil
}

// Population returns the current population, sorted best-first. The slice
// is a copy; the individuals are shared.
func (e *Engine) Population() []*Individual {
	out := make([]*Individual, len(e.pop))
	copy(out, e.pop)
	return out
}

// Best returns the current best individual.
func (e *Engine) Best() *Individual { return e.pop[0] }

// Generation returns the number of generations executed so far.
func (e *Engine) Generation() int { return e.gen }

// MaxGenerations returns the configured generation budget (after
// defaulting), the most generations a Run will execute.
func (e *Engine) MaxGenerations() int { return e.cfg.Generations }

// ExecutedGenerations returns the generations executed since the engine
// was constructed or resumed.
func (e *Engine) ExecutedGenerations() int { return e.gen - e.startGen }

// Evaluations returns the total number of fitness evaluations so far.
func (e *Engine) Evaluations() int { return e.evals }

// SetOnGeneration installs (or replaces) the per-generation callback.
// Intended for callers that need the engine reference inside the hook —
// e.g. periodic checkpointing — which Config cannot express because the
// engine does not exist yet when the config is written. Safe to call
// concurrently with a running engine.
//
// Deprecated: prefer Config.OnGeneration, or the streamed progress options
// of the islands and facade layers, which carry island ids and stop
// reasons.
func (e *Engine) SetOnGeneration(fn func(GenStats)) {
	e.mu.Lock()
	e.onGen = fn
	e.mu.Unlock()
}

// onGeneration returns the installed per-generation callback, if any.
func (e *Engine) onGeneration() func(GenStats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.onGen
}

// History returns the per-generation statistics recorded so far.
func (e *Engine) History() []GenStats {
	out := make([]GenStats, len(e.history))
	copy(out, e.history)
	return out
}

// Stats summarizes the current population as a GenStats snapshot (without
// operator and timing fields) — used for the "generation 0" point of the
// paper's evolution figures.
func (e *Engine) Stats() GenStats {
	return e.popStats(GenStats{Gen: e.gen})
}

func (e *Engine) popStats(gs GenStats) GenStats {
	min, max, sum := e.pop[0].Eval.Score, e.pop[0].Eval.Score, 0.0
	for _, ind := range e.pop {
		s := ind.Eval.Score
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		sum += s
	}
	gs.Min, gs.Max, gs.Mean = min, max, sum/float64(len(e.pop))
	gs.BestIL, gs.BestDR = e.pop[0].Eval.IL, e.pop[0].Eval.DR
	return gs
}

// Step executes one generation: operator choice, selection, offspring
// creation, evaluation, and elitist replacement (Algorithm 1 body).
func (e *Engine) Step() GenStats {
	start := time.Now()
	prevBest := e.pop[0].Eval.Score
	var prevHV float64
	if e.paretoMode() {
		prevHV = e.frontStats().Hypervolume
	}
	e.gen++
	gs := GenStats{Gen: e.gen}

	op := e.cfg.ForceOp
	if op == "" {
		if e.rng.Float64() < e.cfg.MutationRate {
			op = "mutation"
		} else {
			op = "crossover"
		}
	}
	gs.Op = op

	var evalTime time.Duration
	if op == "mutation" {
		evalTime, gs.Accepted = e.stepMutation()
		gs.Evals = 1
	} else {
		evalTime, gs.Accepted = e.stepCrossover()
		gs.Evals = 2
	}
	e.evals += gs.Evals
	e.accepted += gs.Accepted
	e.offspring += gs.Evals
	e.sortPop()

	gs = e.popStats(gs)
	gs.EvalTime = evalTime
	gs.TotalTime = time.Since(start)
	if e.paretoMode() {
		fs := e.frontStats()
		gs.Front = &fs
		gs.Improved = fs.Hypervolume > prevHV
	} else {
		gs.Improved = e.pop[0].Eval.Score < prevBest
	}
	e.history = append(e.history, gs)
	if fn := e.onGeneration(); fn != nil {
		fn(gs)
	}
	return gs
}

// Run executes up to cfg.Generations generations under ctx, stopping early
// when the best score stagnates past NoImprovementWindow. The context is
// checked between generations; on cancellation or deadline expiry the
// partial result — with its stop reason recorded — is returned together
// with the context's error. Generations already executed are never
// discarded.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sinceImprove := 0
	reason := StopCompleted
	var runErr error
	for g := 0; g < e.cfg.Generations; g++ {
		if err := ctx.Err(); err != nil {
			reason, runErr = StopReasonForContext(err), err
			break
		}
		gs := e.Step()
		if gs.Improved {
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		if e.cfg.NoImprovementWindow > 0 && sinceImprove >= e.cfg.NoImprovementWindow {
			reason = StopStagnated
			break
		}
	}
	return e.MakeResult(reason), runErr
}

// RunContext is Run under its pre-redesign name.
//
// Deprecated: use Run, which now takes the context directly.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) { return e.Run(ctx) }

// MakeResult assembles the engine's current state into a Result with the
// given stop reason — the builder Run uses, exported so coordinators that
// drive the engine through Step (the island model) can report results in
// the same shape.
func (e *Engine) MakeResult(reason StopReason) *Result {
	return &Result{
		Population:        e.Population(),
		History:           e.History(),
		Generations:       e.ExecutedGenerations(),
		StopReason:        reason,
		Evaluations:       e.evals,
		AcceptedOffspring: e.accepted,
		TotalOffspring:    e.offspring,
		Best:              e.Best(),
	}
}

// Emigrants returns copies of the k best individuals for injection into
// another engine: the datasets are shared (copy-on-write throughout the
// engine), the evaluations copied, and any incremental state cloned so the
// receiving island never shares mutable evaluation state with this one.
func (e *Engine) Emigrants(k int) []*Individual {
	if k > len(e.pop) {
		k = len(e.pop)
	}
	if k < 0 {
		k = 0
	}
	out := make([]*Individual, k)
	for i := 0; i < k; i++ {
		src := e.pop[i]
		out[i] = &Individual{Data: src.Data, Eval: src.Eval, Origin: src.Origin}
		if src.state != nil {
			out[i].state = src.state.Clone()
		}
	}
	return out
}

// Immigrate offers migrant individuals to the population: each migrant
// strictly better than the current worst replaces it (the standard
// worst-replacement acceptance, preserving elitism — the best can only
// improve). Returns how many migrants were accepted. The migrants' cached
// (IL, DR) pairs are trusted, but their Score is re-combined under this
// engine's own aggregator, so heterogeneous islands judge arrivals on
// their own fitness scale; with a shared aggregator the re-combination is
// a pure recomputation of the identical value, so homogeneous runs are
// bit-for-bit unchanged. The wrappers are copied, and any carried delta
// state is cloned, so the caller may offer the same slice to several
// engines: broadcast migration hands one migrant to every island, and the
// batch evaluation path advances and rolls back states in place — a
// shared state would be mutated concurrently by engines that accepted the
// same migrant.
//
// A Pareto-mode engine judges arrivals by dominance instead: the migrant
// joins NSGA-II environmental selection over population + migrant and is
// accepted exactly when it survives the truncation. The re-combined Score
// still matters as the in-front tie-breaker, so a scalarized island's
// migrant is ranked by its raw (IL, DR) pair on arrival at a Pareto
// island — and a Pareto island's emigrants carry pairs a scalarized
// island re-scores under its own aggregator — which is what lets the
// scalarized-vs-Pareto niche split exchange individuals meaningfully.
func (e *Engine) Immigrate(migrants []*Individual) int {
	accepted := 0
	agg := e.eval.Aggregator()
	for _, m := range migrants {
		if m == nil || m.Data == nil {
			continue
		}
		ev := m.Eval
		ev.Score = agg.Combine(ev.IL, ev.DR)
		if e.paretoMode() {
			imm := &Individual{Data: m.Data, Eval: ev, Origin: m.Origin}
			pool := make([]*Individual, 0, len(e.pop)+1)
			pool = append(pool, e.pop...)
			pool = append(pool, imm)
			kept := envSelect(pool, len(e.pop))
			if containsIndividual(kept, imm) {
				if m.state != nil {
					imm.state = m.state.Clone()
				}
				e.pop = append(e.pop[:0], kept...)
				e.sortPop()
				accepted++
			} else {
				// envSelect ranked the pool including the rejected migrant;
				// re-derive rank and crowding over the population alone so
				// the next tournament sees the same state a resumed engine
				// would.
				e.refreshPareto()
			}
			continue
		}
		worst := len(e.pop) - 1
		if ev.Score < e.pop[worst].Eval.Score {
			var st *score.DeltaState
			if m.state != nil {
				st = m.state.Clone()
			}
			e.pop[worst] = &Individual{Data: m.Data, Eval: ev, Origin: m.Origin, state: st}
			e.sortPop()
			accepted++
		}
	}
	return accepted
}

// stepMutation is the mutation branch of Algorithm 1: select one
// individual by score, mutate one gene, keep the better of parent and
// child (elitism).
func (e *Engine) stepMutation() (evalTime time.Duration, accepted int) {
	idx := e.selectIndex()
	parent := e.pop[idx]
	child, changes := e.mutate(parent)
	batch := e.useBatch()
	evalStart := time.Now()
	if batch {
		e.bParents[0], e.bChildren[0], e.bChanges[0] = parent, child, changes
		e.batchEvaluateGeneration(e.bParents[:1], e.bChildren[:1], e.bChanges[:1])
	} else {
		e.evaluateOffspring(parent, child, changes)
	}
	evalTime = time.Since(evalStart)
	if e.paretoMode() {
		e.bParents[0], e.bChildren[0], e.bChanges[0] = parent, child, changes
		accepted = e.paretoReplace(e.bParents[:1], e.bChildren[:1], e.bChanges[:1], batch)
		return evalTime, accepted
	}
	if child.Eval.Score < parent.Eval.Score {
		e.pop[idx] = child
		accepted++
		if batch {
			e.commitBatchState(child, parent, changes, true)
		}
	}
	return evalTime, accepted
}

// evaluateOffspring scores a child derived from parent by the given cell
// changes, preferring the incremental path: the parent's delta state is
// built on first use, cloned, and advanced by the change list, so the cost
// is proportional to the edit size rather than the dataset size. With
// DisableDelta set (or for measures without incremental support) the child
// is fully re-scored; the resulting Eval is bit-identical either way.
func (e *Engine) evaluateOffspring(parent, child *Individual, changes []dataset.CellChange) {
	if e.cfg.DisableDelta || e.eval.WideEdit(changes) {
		// Wide crossover windows fall back to a full evaluation anyway, so
		// skip building a parent state that would go unused; the child
		// stays state-less and rebuilds lazily if it ever reproduces.
		ev, err := e.eval.Evaluate(child.Data)
		if err != nil {
			// The child is a clone of a valid individual; evaluation can
			// only fail on a programming error.
			panic(fmt.Sprintf("core: evaluating %s offspring: %v", child.Origin, err))
		}
		child.Eval = ev
		return
	}
	e.ensureState(parent)
	ev, state, err := e.eval.EvaluateDelta(parent.Eval, parent.state, child.Data, changes)
	if err != nil {
		panic(fmt.Sprintf("core: delta-evaluating %s offspring: %v", child.Origin, err))
	}
	child.Eval, child.state = ev, state
}

// stepCrossover is the crossover branch of Algorithm 1: one parent from
// the leader group, one from the whole population, 2-point crossing,
// deterministic-crowding replacement.
func (e *Engine) stepCrossover() (evalTime time.Duration, accepted int) {
	nb := e.leaderSize()
	i1 := e.rng.IntN(nb)
	i2 := e.selectIndex()
	for attempt := 0; i2 == i1 && attempt < 8; attempt++ {
		// Crossing an individual with itself yields identical offspring;
		// redraw a few times (bounded so tiny populations cannot spin).
		i2 = e.selectIndex()
	}
	p1, p2 := e.pop[i1], e.pop[i2]
	c1, c2, ch1, ch2 := e.cross(p1, p2)

	batch := e.useBatch()
	evalStart := time.Now()
	if batch {
		e.bParents[0], e.bChildren[0], e.bChanges[0] = p1, c1, ch1
		e.bParents[1], e.bChildren[1], e.bChanges[1] = p2, c2, ch2
		e.batchEvaluateGeneration(e.bParents[:2], e.bChildren[:2], e.bChanges[:2])
	} else {
		e.evaluateOffspring(p1, c1, ch1)
		e.evaluateOffspring(p2, c2, ch2)
	}
	evalTime = time.Since(evalStart)

	if e.paretoMode() {
		// Global NSGA-II replacement over population + both children; the
		// crowding pairing below is a scalar-mode concept (children compete
		// for their parents' slots) and does not apply.
		e.bParents[0], e.bChildren[0], e.bChanges[0] = p1, c1, ch1
		e.bParents[1], e.bChildren[1], e.bChanges[1] = p2, c2, ch2
		accepted = e.paretoReplace(e.bParents[:2], e.bChildren[:2], e.bChanges[:2], batch)
		return evalTime, accepted
	}

	// b1/b2 track each child's biological parent (and its change list)
	// through the crowding swap: a survivor's delta state derives from the
	// parent it was crossed from, not from the slot it competes for.
	b1, b2 := p1, p2
	if e.cfg.Crowding == CrowdNearestParent {
		// Classic deterministic crowding: pair children with the parents
		// they are genotypically closest to (minimal total distance).
		d11 := c1.Data.Mismatches(p1.Data, e.attrs)
		d12 := c1.Data.Mismatches(p2.Data, e.attrs)
		d21 := c2.Data.Mismatches(p1.Data, e.attrs)
		d22 := c2.Data.Mismatches(p2.Data, e.attrs)
		if d11+d22 > d12+d21 {
			c1, c2 = c2, c1
			b1, b2 = b2, b1
			ch1, ch2 = ch2, ch1
		}
	}
	// Tournament: child k replaces parent k only when strictly better.
	win1 := c1.Eval.Score < p1.Eval.Score
	win2 := c2.Eval.Score < p2.Eval.Score
	if win1 {
		e.pop[i1] = c1
		accepted++
	}
	if win2 {
		e.pop[i2] = c2
		accepted++
	}
	if batch {
		// Hand the survivors their states. A biological parent is gone
		// from the population when a winning child took its slot (with
		// i1 == i2 both children fought the same occupant); its state can
		// then transfer without a clone. Skip a child that won its
		// tournament but was itself overwritten by the other child.
		evicted := func(b *Individual) bool {
			return (win1 && b == p1) || (win2 && b == p2)
		}
		if win1 && !(i1 == i2 && win2) {
			e.commitBatchState(c1, b1, ch1, evicted(b1))
		}
		if win2 {
			e.commitBatchState(c2, b2, ch2, evicted(b2))
		}
	}
	return evalTime, accepted
}

// leaderSize returns Nb, the size of the leader group (§2.4).
func (e *Engine) leaderSize() int {
	nb := int(e.cfg.LeaderFraction * float64(len(e.pop)))
	if nb < 2 {
		nb = 2
	}
	if nb > len(e.pop) {
		nb = len(e.pop)
	}
	return nb
}

// selectIndex draws one population index under the configured selection
// policy. The population is sorted best-first. Pareto mode replaces the
// score-based policies with NSGA-II's crowded binary tournament.
func (e *Engine) selectIndex() int {
	if e.paretoMode() {
		return e.selectIndexPareto()
	}
	n := len(e.pop)
	switch e.cfg.Selection {
	case SelectUniform:
		return e.rng.IntN(n)
	case SelectRank:
		// weight(rank r) = n - r.
		total := n * (n + 1) / 2
		u := e.rng.IntN(total)
		cum := 0
		for i := 0; i < n; i++ {
			cum += n - i
			if u < cum {
				return i
			}
		}
		return n - 1
	case SelectRawProportional:
		total := 0.0
		for _, ind := range e.pop {
			total += ind.Eval.Score
		}
		if total <= 0 {
			return e.rng.IntN(n)
		}
		u := e.rng.Float64() * total
		cum := 0.0
		for i, ind := range e.pop {
			cum += ind.Eval.Score
			if u < cum {
				return i
			}
		}
		return n - 1
	default: // SelectInverseProportional
		const eps = 1e-9
		total := 0.0
		for _, ind := range e.pop {
			total += 1 / (ind.Eval.Score + eps)
		}
		u := e.rng.Float64() * total
		cum := 0.0
		for i, ind := range e.pop {
			cum += 1 / (ind.Eval.Score + eps)
			if u < cum {
				return i
			}
		}
		return n - 1
	}
}

// geneCount returns the chromosome length: one gene per (record,
// protected attribute) cell.
func (e *Engine) geneCount() int { return e.eval.Orig().Rows() * len(e.attrs) }

// genePos maps a flattened gene index to its (row, column) cell.
func (e *Engine) genePos(g int) (row, col int) {
	return g / len(e.attrs), e.attrs[g%len(e.attrs)]
}

// mutate clones the parent and replaces one random gene with a different
// uniformly-drawn valid category (§2.2.1), reporting the changed cell. The
// gene is drawn uniformly over the cells of attributes with more than one
// category (NewEngine guarantees at least one exists), so a mutation is
// never a silent no-op; when every protected attribute is mutable this is
// the same draw as over the whole chromosome.
func (e *Engine) mutate(parent *Individual) (*Individual, []dataset.CellChange) {
	data := parent.Data.Clone()
	g := e.rng.IntN(data.Rows() * len(e.mutable))
	row, col := g/len(e.mutable), e.mutable[g%len(e.mutable)]
	card := data.Schema().Attr(col).Cardinality()
	old := data.At(row, col)
	// Draw among the card-1 other categories.
	v := e.rng.IntN(card - 1)
	if v >= old {
		v++
	}
	data.Set(row, col, v)
	e.chBuf1 = append(e.chBuf1[:0], dataset.CellChange{Row: row, Col: col, Old: old, New: v})
	return NewIndividual(data, "mutation"), e.chBuf1
}

// cross recombines two parents at the category level. With the default
// CrossoverPoints of 2 it performs the paper's 2-point crossover (§2.2.2)
// through its historical random draw — positions s..r (inclusive) are
// exchanged; when s == r exactly one value swaps — so existing seeds keep
// their trajectories. Any other k performs standard k-point crossover: k
// cut positions are drawn, sorted, and alternating segments (the first
// starting at the lowest cut) are exchanged; coinciding cuts cancel. The
// returned change lists record each child's cells that differ from its
// parent (positions where the parents agree swap to the same value and
// are omitted).
func (e *Engine) cross(p1, p2 *Individual) (c1, c2 *Individual, ch1, ch2 []dataset.CellChange) {
	d1 := p1.Data.Clone()
	d2 := p2.Data.Clone()
	length := e.geneCount()
	ch1, ch2 = e.chBuf1[:0], e.chBuf2[:0]
	swapGene := func(g int) {
		row, col := e.genePos(g)
		v1, v2 := d1.At(row, col), d2.At(row, col)
		if v1 == v2 {
			return
		}
		d1.Set(row, col, v2)
		d2.Set(row, col, v1)
		ch1 = append(ch1, dataset.CellChange{Row: row, Col: col, Old: v1, New: v2})
		ch2 = append(ch2, dataset.CellChange{Row: row, Col: col, Old: v2, New: v1})
	}
	if e.cfg.CrossoverPoints == 2 {
		s := e.rng.IntN(length)
		r := s + e.rng.IntN(length-s) // uniform in [s, length-1]
		for g := s; g <= r; g++ {
			swapGene(g)
		}
	} else {
		cuts := e.cutBuf[:0]
		for i := 0; i < e.cfg.CrossoverPoints; i++ {
			cuts = append(cuts, e.rng.IntN(length))
		}
		sort.Ints(cuts)
		e.cutBuf = cuts
		// Exchange segments [c0,c1), [c2,c3), ...; an odd final cut opens a
		// segment that runs to the end of the chromosome.
		for i := 0; i < len(cuts); i += 2 {
			end := length
			if i+1 < len(cuts) {
				end = cuts[i+1]
			}
			for g := cuts[i]; g < end; g++ {
				swapGene(g)
			}
		}
	}
	e.chBuf1, e.chBuf2 = ch1, ch2 // keep any grown capacity for later steps
	return NewIndividual(d1, "crossover"), NewIndividual(d2, "crossover"), ch1, ch2
}

// sortPop keeps the population sorted by ascending score; ties preserve
// the previous order (stable), matching §2.4's sorted-population model.
// Pareto mode sorts by (rank, score) instead — recomputing rank and
// crowding first, so every caller (construction, Resume, migration, Step)
// leaves the population with fresh NSGA-II state and pop[0] is the first
// front's best-compromise member.
func (e *Engine) sortPop() {
	if e.paretoMode() {
		e.refreshPareto()
		sort.SliceStable(e.pop, func(i, j int) bool {
			if e.pop[i].rank != e.pop[j].rank {
				return e.pop[i].rank < e.pop[j].rank
			}
			return e.pop[i].Eval.Score < e.pop[j].Eval.Score
		})
		return
	}
	sort.SliceStable(e.pop, func(i, j int) bool {
		return e.pop[i].Eval.Score < e.pop[j].Eval.Score
	})
}
