package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// FS is the filesystem Store: one directory per job under <root>/jobs/,
// one file per key — byte-for-byte the layout internal/serve has written
// since the service shipped, so existing data directories are readable
// unchanged. Put writes tmp + fsync + rename + directory fsync, making
// "Put returned" mean "survives power loss"; stale *.tmp files left by a
// crash mid-Put are swept when the store opens.
type FS struct {
	root string // absolute persistence root; jobs live in root/jobs
}

// NewFS opens (creating if needed) a filesystem store rooted at root and
// sweeps stale temporary files left behind by a crash mid-Put.
func NewFS(root string) (*FS, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("storage: resolving root: %w", err)
	}
	st := &FS{root: abs}
	if err := os.MkdirAll(st.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating data dir: %w", err)
	}
	if err := st.sweepTemp(); err != nil {
		return nil, err
	}
	return st, nil
}

// Root returns the store's absolute persistence root.
func (st *FS) Root() string { return st.root }

func (st *FS) jobsDir() string          { return filepath.Join(st.root, "jobs") }
func (st *FS) jobDir(job string) string { return filepath.Join(st.jobsDir(), job) }
func (st *FS) keyPath(job, key string) string {
	return filepath.Join(st.jobDir(job), key)
}

// Path implements Pather: keys are real files.
func (st *FS) Path(job, key string) string { return st.keyPath(job, key) }

// sweepTemp removes *.tmp files under every job directory: leftovers of
// Puts interrupted before their rename. The rename either happened (the
// value is the new one, the tmp name is gone) or did not (the value is
// the old one and the tmp holds an unreferenced, possibly torn draft) —
// in both cases the tmp file is garbage.
func (st *FS) sweepTemp() error {
	entries, err := os.ReadDir(st.jobsDir())
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := os.ReadDir(st.jobDir(e.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		for _, f := range files {
			if !f.IsDir() && strings.HasSuffix(f.Name(), ".tmp") {
				if err := os.Remove(filepath.Join(st.jobDir(e.Name()), f.Name())); err != nil && !os.IsNotExist(err) {
					return fmt.Errorf("storage: sweeping stale %s: %w", f.Name(), err)
				}
			}
		}
	}
	return nil
}

// Put writes data to a temp file in the job directory, fsyncs it, renames
// it over the key, and fsyncs the directory so the rename itself is
// durable — the full crash-safe atomic-replace discipline.
func (st *FS) Put(job, key string, data []byte) error {
	dir := st.jobDir(job)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := st.keyPath(job, key)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable. Some
// filesystems refuse to fsync directories; that refusal is not a torn
// write, so it is ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

// isSyncUnsupported reports errors meaning "this target cannot fsync",
// as opposed to "the fsync failed".
func isSyncUnsupported(err error) bool {
	var pe *fs.PathError
	if errors.As(err, &pe) {
		msg := pe.Err.Error()
		return msg == "invalid argument" || msg == "operation not supported" || msg == "not supported"
	}
	return false
}

// Get returns the key's whole value.
func (st *FS) Get(job, key string) ([]byte, error) {
	data, err := os.ReadFile(st.keyPath(job, key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotExist, job, key)
	}
	return data, err
}

// Append appends data as one write on an O_APPEND handle, creating the
// job and key as needed.
func (st *FS) Append(job, key string, data []byte) error {
	if err := os.MkdirAll(st.jobDir(job), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(st.keyPath(job, key), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := f.Write(data); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// Open returns the underlying file: reading at EOF and retrying after an
// Append observes the new bytes, because the file only ever grows between
// Truncates.
func (st *FS) Open(job, key string) (io.ReadCloser, error) {
	f, err := os.Open(st.keyPath(job, key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotExist, job, key)
	}
	return f, err
}

// Truncate shrinks the key to size bytes.
func (st *FS) Truncate(job, key string, size int64) error {
	err := os.Truncate(st.keyPath(job, key), size)
	if os.IsNotExist(err) {
		return fmt.Errorf("%w: %s/%s", ErrNotExist, job, key)
	}
	return err
}

// List returns every job directory name, sorted (os.ReadDir sorts).
func (st *FS) List() ([]string, error) {
	entries, err := os.ReadDir(st.jobsDir())
	if err != nil {
		return nil, err
	}
	jobs := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			jobs = append(jobs, e.Name())
		}
	}
	return jobs, nil
}

// Delete removes the job's directory and everything in it.
func (st *FS) Delete(job string) error {
	return os.RemoveAll(st.jobDir(job))
}
