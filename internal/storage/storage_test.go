package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// stores builds one instance of every Store implementation over fresh
// state; the contract tests below run against each — including the
// remote client speaking HTTP to its handler over a fresh Mem backend,
// so the network store honours the identical contract.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"fs": fs, "mem": NewMem(), "remote": newTestRemote(t, NewMem(), RemoteHooks{})}
}

func TestStoreContract(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			// Missing keys and jobs answer ErrNotExist.
			if _, err := st.Get("j1", "status.json"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Get of missing key: %v, want ErrNotExist", err)
			}
			if _, err := st.Open("j1", "status.json"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Open of missing key: %v, want ErrNotExist", err)
			}
			if err := st.Truncate("j1", "status.json", 0); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Truncate of missing key: %v, want ErrNotExist", err)
			}

			// Put / Get round-trip, including overwrite.
			if err := st.Put("j1", "status.json", []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := st.Put("j1", "status.json", []byte(`{"v":2}`)); err != nil {
				t.Fatal(err)
			}
			got, err := st.Get("j1", "status.json")
			if err != nil || string(got) != `{"v":2}` {
				t.Fatalf("Get = %q, %v", got, err)
			}

			// Get returns a copy: mutating it must not corrupt the store.
			got[0] = 'X'
			again, _ := st.Get("j1", "status.json")
			if string(again) != `{"v":2}` {
				t.Fatal("Get aliases the stored value")
			}

			// Append creates and grows; empty append creates without growing.
			if err := st.Append("j1", "events.ndjson", nil); err != nil {
				t.Fatal(err)
			}
			if got, err := st.Get("j1", "events.ndjson"); err != nil || len(got) != 0 {
				t.Fatalf("empty append: Get = %q, %v", got, err)
			}
			if err := st.Append("j1", "events.ndjson", []byte("a\n")); err != nil {
				t.Fatal(err)
			}
			if err := st.Append("j1", "events.ndjson", []byte("b\n")); err != nil {
				t.Fatal(err)
			}
			if got, _ := st.Get("j1", "events.ndjson"); string(got) != "a\nb\n" {
				t.Fatalf("appended value %q", got)
			}

			// Truncate heals a torn tail.
			if err := st.Append("j1", "events.ndjson", []byte(`{"torn`)); err != nil {
				t.Fatal(err)
			}
			if err := st.Truncate("j1", "events.ndjson", 4); err != nil {
				t.Fatal(err)
			}
			if got, _ := st.Get("j1", "events.ndjson"); string(got) != "a\nb\n" {
				t.Fatalf("truncated value %q", got)
			}

			// List sees both jobs, sorted.
			if err := st.Put("j0", "status.json", []byte("{}")); err != nil {
				t.Fatal(err)
			}
			jobs, err := st.List()
			if err != nil || !reflect.DeepEqual(jobs, []string{"j0", "j1"}) {
				t.Fatalf("List = %v, %v", jobs, err)
			}

			// Delete drops a whole keyspace; absent delete is a no-op.
			if err := st.Delete("j0"); err != nil {
				t.Fatal(err)
			}
			if err := st.Delete("j0"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get("j0", "status.json"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Get after Delete: %v, want ErrNotExist", err)
			}
			jobs, _ = st.List()
			if !reflect.DeepEqual(jobs, []string{"j1"}) {
				t.Fatalf("List after Delete = %v", jobs)
			}
		})
	}
}

// TestOpenObservesGrowth is the tail-a-live-log contract: a reader that
// hit EOF sees bytes appended afterwards on its next Read.
func TestOpenObservesGrowth(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.Append("j", "log", []byte("one\n")); err != nil {
				t.Fatal(err)
			}
			r, err := st.Open("j", "log")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			buf := make([]byte, 64)
			n, _ := io.ReadFull(r, buf[:4])
			if string(buf[:n]) != "one\n" {
				t.Fatalf("first read %q", buf[:n])
			}
			if _, err := r.Read(buf); err != io.EOF {
				t.Fatalf("read at end: %v, want EOF", err)
			}
			if err := st.Append("j", "log", []byte("two\n")); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(2 * time.Second)
			var tail []byte
			for len(tail) < 4 {
				n, err := r.Read(buf)
				tail = append(tail, buf[:n]...)
				if err != nil && err != io.EOF {
					t.Fatal(err)
				}
				if time.Now().After(deadline) {
					t.Fatalf("reader never observed growth; got %q", tail)
				}
			}
			if string(tail) != "two\n" {
				t.Fatalf("growth read %q", tail)
			}
		})
	}
}

// TestFSCompatibleLayout pins the on-disk layout to the one the service
// has always written: <root>/jobs/<id>/<file>, plain files, no envelope —
// existing data dirs must keep working.
func TestFSCompatibleLayout(t *testing.T) {
	root := t.TempDir()
	// A pre-existing data dir written by an older build.
	old := filepath.Join(root, "jobs", "j0ld")
	if err := os.MkdirAll(old, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(old, "status.json"), []byte(`{"id":"j0ld"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := NewFS(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("j0ld", "status.json")
	if err != nil || string(got) != `{"id":"j0ld"}` {
		t.Fatalf("old data dir unreadable: %q, %v", got, err)
	}
	// And the store's own writes land as plain files at the same paths.
	if err := st.Put("jnew", "result.json", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(root, "jobs", "jnew", "result.json"))
	if err != nil || string(raw) != "{}" {
		t.Fatalf("layout moved: %q, %v", raw, err)
	}
	if p := st.Path("jnew", "result.json"); p != filepath.Join(st.Root(), "jobs", "jnew", "result.json") {
		t.Fatalf("Path = %q", p)
	}
	if !filepath.IsAbs(st.Path("jnew", "result.json")) {
		t.Fatal("Path is not absolute")
	}
}

// TestFSSweepsStaleTemps: *.tmp drafts left by a crash mid-Put are gone
// after the store opens, and the committed values survive.
func TestFSSweepsStaleTemps(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "jobs", "jx")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "status.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "status.json.tmp"), []byte(`{"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := NewFS(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "status.json.tmp")); !os.IsNotExist(err) {
		t.Fatalf("stale tmp survived the sweep: %v", err)
	}
	if got, err := st.Get("jx", "status.json"); err != nil || string(got) != "{}" {
		t.Fatalf("committed value lost: %q, %v", got, err)
	}
}

func TestMemReaderClosed(t *testing.T) {
	st := NewMem()
	if err := st.Append("j", "log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	r, err := st.Open("j", "log")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on closed reader succeeded")
	}
	// A reader of a deleted key reports ErrNotExist.
	r2, _ := st.Open("j", "log")
	if err := st.Delete("j"); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Read(make([]byte, 1)); !errors.Is(err, ErrNotExist) {
		t.Fatalf("read of deleted key: %v, want ErrNotExist", err)
	}
}

func TestFlaky(t *testing.T) {
	fl := &Flaky{Store: NewMem(), Key: "ckpt", FailWritesAfter: 2, TornReads: true}

	// Non-matching keys never fault.
	for i := 0; i < 5; i++ {
		if err := fl.Append("j", "events", []byte("e\n")); err != nil {
			t.Fatal(err)
		}
	}

	// The first matching write succeeds, the second and later fail.
	if err := fl.Put("j", "job.ckpt", []byte("snap1")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := fl.Put("j", "job.ckpt", []byte("snap2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: %v, want ErrInjected", err)
	}
	if err := fl.Append("j", "job.ckpt", []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3: %v, want ErrInjected", err)
	}

	// Matching reads come back torn; others are whole.
	torn, err := fl.Get("j", "job.ckpt")
	if err != nil || !bytes.Equal(torn, []byte("sn")) {
		t.Fatalf("torn read = %q, %v", torn, err)
	}
	whole, err := fl.Get("j", "events")
	if err != nil || string(whole) != "e\ne\ne\ne\ne\n" {
		t.Fatalf("whole read = %q, %v", whole, err)
	}
	// Missing keys still answer ErrNotExist, not a torn nil.
	if _, err := fl.Get("j", "missing.ckpt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing key: %v", err)
	}
}

// TestFSErrorPaths exercises the filesystem store's failure surface:
// unusable roots, job names shadowed by files, vanished roots.
func TestFSErrorPaths(t *testing.T) {
	// A root whose jobs/ path is shadowed by a regular file cannot open.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "jobs"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFS(bad); err == nil {
		t.Fatal("NewFS over a shadowed jobs path succeeded")
	}

	st, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A job id shadowed by a regular file refuses writes instead of
	// corrupting it.
	if err := os.WriteFile(filepath.Join(st.Root(), "jobs", "jfile"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("jfile", "k", []byte("v")); err == nil {
		t.Fatal("Put under a file-shadowed job succeeded")
	}
	if err := st.Append("jfile", "k", []byte("v")); err == nil {
		t.Fatal("Append under a file-shadowed job succeeded")
	}
	// Shadow files are not listed as jobs.
	jobs, err := st.List()
	if err != nil || len(jobs) != 0 {
		t.Fatalf("List = %v, %v", jobs, err)
	}
	// A vanished root fails List loudly rather than reporting no jobs.
	if err := os.RemoveAll(filepath.Join(st.Root(), "jobs")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.List(); err == nil {
		t.Fatal("List over a vanished root succeeded")
	}
	if err := st.sweepTemp(); err == nil {
		t.Fatal("sweepTemp over a vanished root succeeded")
	}
}

func TestIsSyncUnsupported(t *testing.T) {
	if isSyncUnsupported(errors.New("plain")) {
		t.Fatal("plain error counted as unsupported-sync")
	}
	pe := &os.PathError{Op: "sync", Path: "d", Err: errors.New("invalid argument")}
	if !isSyncUnsupported(pe) {
		t.Fatal("EINVAL-style path error not recognized")
	}
	pe2 := &os.PathError{Op: "sync", Path: "d", Err: errors.New("input/output error")}
	if isSyncUnsupported(pe2) {
		t.Fatal("real I/O error swallowed as unsupported-sync")
	}
}
