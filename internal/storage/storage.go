// Package storage is the job service's persistence seam: a Store holds
// one keyspace per job and a handful of small documents (status, result),
// datasets, append-only event logs and checkpoints under it. The
// interface is deliberately narrow — atomic whole-value writes, durable
// appends, tailing reads — so the filesystem layout the service has used
// since it shipped (FS) and an ephemeral in-memory table (Mem) satisfy it
// today, and an object store or SQL table can satisfy it tomorrow without
// the service changing. Everything above this package addresses state as
// (job, key) pairs and never touches os or path/filepath directly.
//
// The contract every implementation must honour:
//
//   - Put replaces a key's whole value atomically and durably: a crash
//     during Put leaves either the old value or the new one, never a torn
//     mix, and a Put that returned success survives a power loss.
//   - Append is append-only and creates the key; a crash may tear the
//     final append (the reader heals it), but never earlier ones.
//   - Open returns a reader that observes growth: reading at the current
//     end yields io.EOF, and a later Read on the same reader returns
//     bytes appended in between — the tail-a-live-log primitive.
//   - Get and Open report a missing key (or job) with an error that
//     errors.Is-matches ErrNotExist.
//   - Keys within one job are independent; Delete removes a job's whole
//     keyspace at once.
package storage

import (
	"errors"
	"io"
)

// ErrNotExist is the sentinel for a missing job or key; implementations
// wrap it (or an error matching it) from Get, Open and Truncate. Test
// with errors.Is.
var ErrNotExist = errors.New("storage: key does not exist")

// Store persists job-scoped state. Implementations must be safe for
// concurrent use; writes to the same (job, key) are serialized by the
// caller (the service owns one writer per key), but reads — including
// tailing Opens — race writes freely.
type Store interface {
	// Put atomically and durably replaces key's value in job's keyspace,
	// creating the job and key as needed.
	Put(job, key string, data []byte) error
	// Get returns key's whole value (a copy the caller may keep);
	// ErrNotExist when the job or key is absent.
	Get(job, key string) ([]byte, error)
	// Append durably appends data to key, creating the job and key as
	// needed. An empty data creates the key without growing it.
	Append(job, key string, data []byte) error
	// Open returns a reader over key's value that observes later growth:
	// a Read at the end returns io.EOF, and re-reading after an Append
	// yields the appended bytes. The caller closes it.
	Open(job, key string) (io.ReadCloser, error)
	// Truncate shrinks key's value to size bytes — the torn-append
	// healing primitive. Growing a key through Truncate is not supported.
	Truncate(job, key string, size int64) error
	// List returns every job id with a keyspace, sorted ascending.
	List() ([]string, error)
	// Delete removes job's entire keyspace; deleting an absent job is a
	// no-op.
	Delete(job string) error
}

// Pather is optionally implemented by stores whose keys are real
// filesystem paths (FS). Services use it to record true, stable paths in
// persisted documents — e.g. the dataset path a normalized job spec
// names — and fall back to an opaque scheme-prefixed name otherwise.
type Pather interface {
	// Path returns the absolute filesystem path backing (job, key). The
	// file need not exist yet.
	Path(job, key string) string
}
