package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// RemoteHooks lets the process mounting a store handler observe and vet
// the traffic. A cluster coordinator uses Authorize for lease fencing
// and the On* callbacks to fold remote workers' writes back into its
// live job table; all fields are optional.
type RemoteHooks struct {
	// Authorize vets every mutation (Put, Append, Truncate, Delete):
	// job and the request's lease token in, an error to refuse with
	// 409 — which the Remote client surfaces as ErrFenced. A non-nil
	// release is held by the handler across the mutation's apply and
	// called afterwards, letting the authorizer serialize fencing
	// decisions with in-flight writes (an authorization that merely
	// checks-then-returns would let a write authorized an instant
	// before a lease revocation land an instant after it). Nil admits
	// every mutation.
	Authorize func(job, token string) (release func(), err error)
	// OnPut / OnAppend / OnTruncate run after the corresponding mutation
	// succeeded on the backend.
	OnPut      func(job, key string, data []byte)
	OnAppend   func(job, key string, data []byte)
	OnTruncate func(job, key string, size int64)
}

// remoteHandler serves a Store over the protocol Remote speaks:
//
//	GET    /                       list job ids (JSON array)
//	GET    /{job}/{key}[?offset=N]  whole value, or the bytes past offset
//	PUT    /{job}/{key}            Put
//	POST   /{job}/{key}/append     Append (X-Evoprot-Write dedups replays)
//	POST   /{job}/{key}/truncate?size=N
//	DELETE /{job}                  Delete
//
// Missing keys answer 404, refused mutations 409 — the two statuses the
// client maps onto ErrNotExist and ErrFenced.
type remoteHandler struct {
	be    Store
	hooks RemoteHooks
	mux   *http.ServeMux

	mu        sync.Mutex
	lastWrite map[string]string // (job,key) -> last applied write id
}

// NewRemoteHandler serves be over HTTP for Remote clients. Mount it
// under a prefix with http.StripPrefix.
func NewRemoteHandler(be Store, hooks RemoteHooks) http.Handler {
	h := &remoteHandler{be: be, hooks: hooks, lastWrite: make(map[string]string)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", h.list)
	mux.HandleFunc("GET /{job}/{key}", h.get)
	mux.HandleFunc("PUT /{job}/{key}", h.put)
	mux.HandleFunc("POST /{job}/{key}/{op}", h.mutate)
	mux.HandleFunc("DELETE /{job}", h.del)
	h.mux = mux
	return h
}

func (h *remoteHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// fail writes err as the response: plain text (the client wraps it),
// with the status the error contract prescribes.
func fail(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, ErrNotExist) {
		code = http.StatusNotFound
	}
	http.Error(w, err.Error(), code)
}

// authorize runs the fencing hook for a mutation on job. The returned
// release (never nil on success) must be called once the mutation has
// been applied.
func (h *remoteHandler) authorize(w http.ResponseWriter, r *http.Request, job string) (func(), bool) {
	if h.hooks.Authorize == nil {
		return func() {}, true
	}
	release, err := h.hooks.Authorize(job, r.Header.Get(LeaseHeader))
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return nil, false
	}
	if release == nil {
		release = func() {}
	}
	return release, true
}

func (h *remoteHandler) list(w http.ResponseWriter, r *http.Request) {
	jobs, err := h.be.List()
	if err != nil {
		fail(w, err)
		return
	}
	if jobs == nil {
		jobs = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(jobs)
}

func (h *remoteHandler) get(w http.ResponseWriter, r *http.Request) {
	job, key := r.PathValue("job"), r.PathValue("key")
	data, err := h.be.Get(job, key)
	if err != nil {
		fail(w, err)
		return
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		off, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || off < 0 {
			http.Error(w, fmt.Sprintf("bad offset %q", v), http.StatusBadRequest)
			return
		}
		if off > int64(len(data)) {
			// A tailing reader past a truncate: nothing there yet. Empty
			// keeps the reader polling instead of erroring.
			off = int64(len(data))
		}
		data = data[off:]
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (h *remoteHandler) put(w http.ResponseWriter, r *http.Request) {
	job, key := r.PathValue("job"), r.PathValue("key")
	release, ok := h.authorize(w, r, job)
	if !ok {
		return
	}
	defer release()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		fail(w, err)
		return
	}
	if err := h.be.Put(job, key, data); err != nil {
		fail(w, err)
		return
	}
	if h.hooks.OnPut != nil {
		h.hooks.OnPut(job, key, data)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *remoteHandler) mutate(w http.ResponseWriter, r *http.Request) {
	job, key, op := r.PathValue("job"), r.PathValue("key"), r.PathValue("op")
	release, ok := h.authorize(w, r, job)
	if !ok {
		return
	}
	defer release()
	switch op {
	case "append":
		data, err := io.ReadAll(r.Body)
		if err != nil {
			fail(w, err)
			return
		}
		if id := r.Header.Get(writeIDHeader); id != "" && h.seen(job, key, id) {
			// Duplicate delivery of an append already applied: acknowledge
			// without re-applying, so the feed gains each event once.
			w.WriteHeader(http.StatusNoContent)
			return
		}
		if err := h.be.Append(job, key, data); err != nil {
			fail(w, err)
			return
		}
		if h.hooks.OnAppend != nil {
			h.hooks.OnAppend(job, key, data)
		}
	case "truncate":
		size, err := strconv.ParseInt(r.URL.Query().Get("size"), 10, 64)
		if err != nil || size < 0 {
			http.Error(w, fmt.Sprintf("bad size %q", r.URL.Query().Get("size")), http.StatusBadRequest)
			return
		}
		if err := h.be.Truncate(job, key, size); err != nil {
			fail(w, err)
			return
		}
		if h.hooks.OnTruncate != nil {
			h.hooks.OnTruncate(job, key, size)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown operation %q", op), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// seen records id as (job, key)'s latest write and reports whether it
// was already the latest — i.e. this request is a back-to-back duplicate
// delivery. One remembered id per key suffices: the service has a single
// writer per key, so a replayed append can only duplicate the most
// recent one.
func (h *remoteHandler) seen(job, key, id string) bool {
	k := job + "\x00" + key
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lastWrite[k] == id {
		return true
	}
	h.lastWrite[k] = id
	return false
}

func (h *remoteHandler) del(w http.ResponseWriter, r *http.Request) {
	job := r.PathValue("job")
	release, ok := h.authorize(w, r, job)
	if !ok {
		return
	}
	defer release()
	if err := h.be.Delete(job); err != nil {
		fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
