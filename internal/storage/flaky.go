package storage

import (
	"fmt"
	"strings"
	"sync"
)

// Flaky wraps a Store with deterministic fault injection: writes to
// matching keys start failing after a configured count, and reads of
// matching keys can come back torn (truncated mid-value). It exists for
// tests proving the service degrades the way its contract promises —
// checkpoint write failures surface as ErrCheckpoint, corrupt documents
// are skipped during recovery without taking down neighboring jobs — and
// for any other consumer that wants to rehearse storage failure.
type Flaky struct {
	// Store is the wrapped real store.
	Store
	// Key restricts the injected faults to keys containing this
	// substring; empty matches every key.
	Key string
	// FailWritesAfter makes the Nth and every later matching Put or
	// Append fail (1 fails them all); 0 disables write faults.
	FailWritesAfter int
	// TornReads makes Get of matching keys return only the first half of
	// the value — a torn read — with a nil error.
	TornReads bool

	mu     sync.Mutex
	writes int
}

// ErrInjected is the failure injected writes return, wrapped with the
// job and key.
var ErrInjected = fmt.Errorf("storage: injected write failure")

func (f *Flaky) match(key string) bool {
	return f.Key == "" || strings.Contains(key, f.Key)
}

// failWrite counts a matching write attempt and reports whether it must
// fail.
func (f *Flaky) failWrite(key string) bool {
	if f.FailWritesAfter <= 0 || !f.match(key) {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	return f.writes >= f.FailWritesAfter
}

// Put fails matching writes past the threshold, else delegates.
func (f *Flaky) Put(job, key string, data []byte) error {
	if f.failWrite(key) {
		return fmt.Errorf("%w: put %s/%s", ErrInjected, job, key)
	}
	return f.Store.Put(job, key, data)
}

// Append fails matching writes past the threshold, else delegates.
func (f *Flaky) Append(job, key string, data []byte) error {
	if f.failWrite(key) {
		return fmt.Errorf("%w: append %s/%s", ErrInjected, job, key)
	}
	return f.Store.Append(job, key, data)
}

// Get returns a torn (half-length) value for matching keys when
// TornReads is set, else delegates.
func (f *Flaky) Get(job, key string) ([]byte, error) {
	data, err := f.Store.Get(job, key)
	if err == nil && f.TornReads && f.match(key) {
		return data[:len(data)/2], nil
	}
	return data, err
}
