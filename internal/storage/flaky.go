package storage

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Flaky wraps a Store with deterministic fault injection: writes to
// matching keys start failing after a configured count, and reads of
// matching keys can come back torn (truncated mid-value). It exists for
// tests proving the service degrades the way its contract promises —
// checkpoint write failures surface as ErrCheckpoint, corrupt documents
// are skipped during recovery without taking down neighboring jobs — and
// for any other consumer that wants to rehearse storage failure.
type Flaky struct {
	// Store is the wrapped real store.
	Store
	// Key restricts the injected faults to keys containing this
	// substring; empty matches every key.
	Key string
	// FailWritesAfter makes the Nth and every later matching Put or
	// Append fail (1 fails them all); 0 disables write faults.
	FailWritesAfter int
	// TornReads makes Get of matching keys return only the first half of
	// the value — a torn read — with a nil error.
	TornReads bool

	mu     sync.Mutex
	writes int
}

// ErrInjected is the failure injected writes return, wrapped with the
// job and key.
var ErrInjected = fmt.Errorf("storage: injected write failure")

func (f *Flaky) match(key string) bool {
	return f.Key == "" || strings.Contains(key, f.Key)
}

// failWrite counts a matching write attempt and reports whether it must
// fail.
func (f *Flaky) failWrite(key string) bool {
	if f.FailWritesAfter <= 0 || !f.match(key) {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	return f.writes >= f.FailWritesAfter
}

// Put fails matching writes past the threshold, else delegates.
func (f *Flaky) Put(job, key string, data []byte) error {
	if f.failWrite(key) {
		return fmt.Errorf("%w: put %s/%s", ErrInjected, job, key)
	}
	return f.Store.Put(job, key, data)
}

// Append fails matching writes past the threshold, else delegates.
func (f *Flaky) Append(job, key string, data []byte) error {
	if f.failWrite(key) {
		return fmt.Errorf("%w: append %s/%s", ErrInjected, job, key)
	}
	return f.Store.Append(job, key, data)
}

// Get returns a torn (half-length) value for matching keys when
// TornReads is set, else delegates.
func (f *Flaky) Get(job, key string) ([]byte, error) {
	data, err := f.Store.Get(job, key)
	if err == nil && f.TornReads && f.match(key) {
		return data[:len(data)/2], nil
	}
	return data, err
}

// FlakyTransport is Flaky's network-path sibling: an http.RoundTripper
// that injects the faults a Remote client actually meets on a wire —
// responses that never arrive (the request may or may not have been
// applied), deliveries duplicated by a retrying middlebox, and added
// latency. Wrap a Remote's client Transport with it in tests proving the
// remote store maps network failure onto the same service guarantees the
// local fault suite pins down.
type FlakyTransport struct {
	// Base performs the real exchanges; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Key restricts the injected faults to requests whose URL path
	// contains this substring; empty matches every request.
	Key string
	// DropResponsesAfter makes the Nth and every later matching exchange
	// lose its response: the request is delivered and applied, but the
	// caller gets ErrInjected instead of an answer — the
	// write-landed-but-looks-failed case. 0 disables.
	DropResponsesAfter int
	// Duplicate delivers every matching request twice (same body, same
	// headers — a replay, not a retry) and returns the second response.
	Duplicate bool
	// Delay sleeps before each matching exchange.
	Delay time.Duration

	mu    sync.Mutex
	calls int
}

// dropResponse counts a matching exchange and reports whether its
// response must be lost.
func (t *FlakyTransport) dropResponse() bool {
	if t.DropResponsesAfter <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls++
	return t.calls >= t.DropResponsesAfter
}

// RoundTrip applies the configured faults to matching requests.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Key != "" && !strings.Contains(req.URL.Path, t.Key) {
		return base.RoundTrip(req)
	}
	if t.Delay > 0 {
		time.Sleep(t.Delay)
	}
	if t.Duplicate && req.GetBody != nil {
		first, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, first.Body)
		first.Body.Close()
		replay := req.Clone(req.Context())
		if replay.Body, err = req.GetBody(); err != nil {
			return nil, err
		}
		req = replay
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.dropResponse() {
		// The server handled the request; only the answer is lost.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: response dropped for %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	return resp, nil
}
