package storage

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// ErrFenced is the sentinel a Remote's mutation returns when the
// coordinator refuses the write for lack of a valid lease — the fencing
// check that keeps a worker whose lease expired (and whose job was
// re-leased to someone else) from corrupting state with late writes.
// Test with errors.Is.
var ErrFenced = errors.New("storage: write fenced: no active lease")

// Headers of the remote store protocol (see NewRemoteHandler).
const (
	// LeaseHeader carries the fencing token mutations are authorized by.
	LeaseHeader = "X-Evoprot-Lease"
	// writeIDHeader carries a per-append nonce so a duplicated delivery
	// (a retried or replayed request) is applied once.
	writeIDHeader = "X-Evoprot-Write"
)

// Remote is the network half of the storage seam: a Store whose backend
// lives behind a coordinator's HTTP store handler (NewRemoteHandler).
// Cluster workers persist a leased job's spec, status, events and
// checkpoints through it, so every existing persistence path — the
// engine, the event log, checkpoint sinks — flows unchanged across the
// network. Mutations carry the job's fencing token (RemoteWithToken);
// writes refused by the coordinator's lease check come back as ErrFenced.
type Remote struct {
	base   string // handler root, no trailing slash
	client *http.Client
	token  func(job string) string
}

// RemoteOption configures NewRemote.
type RemoteOption func(*Remote)

// RemoteWithClient sets the HTTP client (default http.DefaultClient);
// wrap its Transport (e.g. with FlakyTransport) to rehearse network
// faults.
func RemoteWithClient(c *http.Client) RemoteOption {
	return func(r *Remote) { r.client = c }
}

// RemoteWithToken installs the per-job fencing-token source attached to
// every mutation. A nil or empty result sends no token — fine against a
// handler without an Authorize hook.
func RemoteWithToken(fn func(job string) string) RemoteOption {
	return func(r *Remote) { r.token = fn }
}

// NewRemote builds a Store client over the handler rooted at base
// (e.g. "http://coordinator:8080/v1/store").
func NewRemote(base string, opts ...RemoteOption) *Remote {
	r := &Remote{base: strings.TrimSuffix(base, "/"), client: http.DefaultClient}
	for _, o := range opts {
		o(r)
	}
	return r
}

// keyURL returns the resource URL for (job, key) plus optional extra
// path segments (the mutation verbs).
func (r *Remote) keyURL(job, key string, extra ...string) string {
	u := r.base + "/" + url.PathEscape(job) + "/" + url.PathEscape(key)
	for _, e := range extra {
		u += "/" + e
	}
	return u
}

// do issues one exchange and maps the response status onto the Store
// error contract: 2xx passes, 404 is ErrNotExist, 409 is ErrFenced,
// anything else surfaces the handler's error text.
func (r *Remote) do(req *http.Request, job string) (*http.Response, error) {
	if r.token != nil {
		if tok := r.token(job); tok != "" {
			req.Header.Set(LeaseHeader, tok)
		}
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("storage: remote %s %s: %w", req.Method, req.URL.Path, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	msg := strings.TrimSpace(string(body))
	switch resp.StatusCode {
	case http.StatusNotFound:
		return nil, fmt.Errorf("storage: remote %s: %w", msg, ErrNotExist)
	case http.StatusConflict:
		return nil, fmt.Errorf("storage: remote %s: %w", msg, ErrFenced)
	default:
		return nil, fmt.Errorf("storage: remote %s %s: HTTP %d: %s", req.Method, req.URL.Path, resp.StatusCode, msg)
	}
}

// drain closes a successful response after consuming it, keeping the
// underlying connection reusable.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Put atomically replaces key's value (durability is the backend's —
// the handler applies it through its own Store's Put).
func (r *Remote) Put(job, key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, r.keyURL(job, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp, err := r.do(req, job)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// Get returns key's whole value.
func (r *Remote) Get(job, key string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, r.keyURL(job, key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.do(req, job)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Append appends data to key. Each call carries a fresh write id, so a
// network-level duplicate delivery of the same append is applied once by
// the handler.
func (r *Remote) Append(job, key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPost, r.keyURL(job, key, "append"), bytes.NewReader(data))
	if err != nil {
		return err
	}
	if id := newWriteID(); id != "" {
		req.Header.Set(writeIDHeader, id)
	}
	resp, err := r.do(req, job)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// Open returns a growth-observing reader: each Read past the buffered
// end re-fetches from the current offset, so a reader that hit io.EOF
// sees bytes appended afterwards on its next call — the same tailing
// contract as the local stores, at per-poll HTTP cost.
func (r *Remote) Open(job, key string) (io.ReadCloser, error) {
	rd := &remoteReader{r: r, job: job, key: key}
	// Probe now so a missing key fails Open with ErrNotExist rather than
	// the first Read.
	if err := rd.fetch(); err != nil {
		return nil, err
	}
	return rd, nil
}

// Truncate shrinks key's value to size bytes.
func (r *Remote) Truncate(job, key string, size int64) error {
	u := r.keyURL(job, key, "truncate") + "?size=" + strconv.FormatInt(size, 10)
	req, err := http.NewRequest(http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	resp, err := r.do(req, job)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// List returns every job id, sorted (the handler sorts).
func (r *Remote) List() ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, r.base+"/", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.do(req, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var jobs []string
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return nil, fmt.Errorf("storage: remote list: %w", err)
	}
	return jobs, nil
}

// Delete removes job's whole keyspace.
func (r *Remote) Delete(job string) error {
	req, err := http.NewRequest(http.MethodDelete, r.base+"/"+url.PathEscape(job), nil)
	if err != nil {
		return err
	}
	resp, err := r.do(req, job)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// remoteReader tails a remote key: buf holds fetched-but-unread bytes,
// off the next offset to fetch. Not safe for concurrent use, like any
// io.Reader.
type remoteReader struct {
	r        *Remote
	job, key string
	off      int64
	buf      []byte
	closed   bool
}

// fetch pulls the bytes currently past off into buf.
func (rd *remoteReader) fetch() error {
	u := rd.r.keyURL(rd.job, rd.key) + "?offset=" + strconv.FormatInt(rd.off, 10)
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := rd.r.do(req, rd.job)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	rd.buf = append(rd.buf, data...)
	rd.off += int64(len(data))
	return nil
}

func (rd *remoteReader) Read(p []byte) (int, error) {
	if rd.closed {
		return 0, errors.New("storage: read on closed remote reader")
	}
	if len(rd.buf) == 0 {
		if err := rd.fetch(); err != nil {
			return 0, err
		}
		if len(rd.buf) == 0 {
			return 0, io.EOF
		}
	}
	n := copy(p, rd.buf)
	rd.buf = rd.buf[n:]
	return n, nil
}

func (rd *remoteReader) Close() error {
	rd.closed = true
	rd.buf = nil
	return nil
}

// newWriteID returns a random per-append nonce.
func newWriteID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// No id means no duplicate suppression for this append — strictly
		// better than a constant id, which would wrongly suppress distinct
		// appends. An unreadable entropy source must not fail the write.
		return ""
	}
	return hex.EncodeToString(buf[:])
}
