package storage

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Mem is the in-memory Store: ephemeral by nature, but honouring the
// full contract — including tailing Opens that observe growth — so tests
// and throwaway runs exercise exactly the code paths the filesystem
// store does. A Mem value survives as long as the process holds it:
// restarting a server over the same Mem reproduces the recovery path
// without touching a disk.
type Mem struct {
	mu   sync.RWMutex
	jobs map[string]map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{jobs: make(map[string]map[string][]byte)}
}

func (st *Mem) keyspace(job string) map[string][]byte {
	ks := st.jobs[job]
	if ks == nil {
		ks = make(map[string][]byte)
		st.jobs[job] = ks
	}
	return ks
}

// Put replaces the key's value with a copy of data.
func (st *Mem) Put(job, key string, data []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.keyspace(job)[key] = append([]byte(nil), data...)
	return nil
}

// Get returns a copy of the key's value.
func (st *Mem) Get(job, key string) ([]byte, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	data, ok := st.jobs[job][key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotExist, job, key)
	}
	return append([]byte(nil), data...), nil
}

// Append grows the key's value, creating it (even empty) as needed.
func (st *Mem) Append(job, key string, data []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	ks := st.keyspace(job)
	if _, ok := ks[key]; !ok {
		ks[key] = []byte{}
	}
	ks[key] = append(ks[key], data...)
	return nil
}

// Open returns a reader whose position survives appends: reading at the
// end yields io.EOF, and a later Read picks up bytes appended since.
func (st *Mem) Open(job, key string) (io.ReadCloser, error) {
	st.mu.RLock()
	_, ok := st.jobs[job][key]
	st.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotExist, job, key)
	}
	return &memReader{st: st, job: job, key: key}, nil
}

// memReader reads a Mem key at a remembered offset, re-consulting the
// live value on every Read — the growth-observing contract.
type memReader struct {
	st     *Mem
	job    string
	key    string
	off    int64
	closed bool
}

func (r *memReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("storage: read on closed reader %s/%s", r.job, r.key)
	}
	r.st.mu.RLock()
	data, ok := r.st.jobs[r.job][r.key]
	if !ok {
		r.st.mu.RUnlock()
		return 0, fmt.Errorf("%w: %s/%s", ErrNotExist, r.job, r.key)
	}
	if r.off >= int64(len(data)) {
		r.st.mu.RUnlock()
		return 0, io.EOF
	}
	n := copy(p, data[r.off:])
	r.st.mu.RUnlock()
	r.off += int64(n)
	return n, nil
}

func (r *memReader) Close() error {
	r.closed = true
	return nil
}

// Truncate shrinks the key's value to size bytes.
func (st *Mem) Truncate(job, key string, size int64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	data, ok := st.jobs[job][key]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotExist, job, key)
	}
	if size < int64(len(data)) {
		st.jobs[job][key] = data[:size]
	}
	return nil
}

// List returns the job ids, sorted.
func (st *Mem) List() ([]string, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	jobs := make([]string, 0, len(st.jobs))
	for job := range st.jobs {
		jobs = append(jobs, job)
	}
	sort.Strings(jobs)
	return jobs, nil
}

// Delete drops the job's whole keyspace.
func (st *Mem) Delete(job string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.jobs, job)
	return nil
}
