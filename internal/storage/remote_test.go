package storage

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestRemote serves be through a RemoteHandler on a test listener and
// returns a client for it.
func newTestRemote(t *testing.T, be Store, hooks RemoteHooks, opts ...RemoteOption) *Remote {
	t.Helper()
	srv := httptest.NewServer(NewRemoteHandler(be, hooks))
	t.Cleanup(srv.Close)
	return NewRemote(srv.URL, opts...)
}

// TestRemoteFencing: mutations pass only while the Authorize hook admits
// their token; refusals surface as ErrFenced and leave the backend
// untouched. Reads stay open — a fenced-out worker may still look, just
// not write.
func TestRemoteFencing(t *testing.T) {
	be := NewMem()
	var active atomic.Value
	active.Store("tok-1")
	hooks := RemoteHooks{Authorize: func(job, token string) (func(), error) {
		if token != active.Load().(string) {
			return nil, errors.New("job " + job + ": lease token rejected")
		}
		return nil, nil
	}}
	token := "tok-1"
	rt := newTestRemote(t, be, hooks, RemoteWithToken(func(string) string { return token }))

	if err := rt.Put("j", "status.json", []byte("v1")); err != nil {
		t.Fatalf("authorized put: %v", err)
	}
	if err := rt.Append("j", "events.ndjson", []byte("e1\n")); err != nil {
		t.Fatalf("authorized append: %v", err)
	}

	// The lease moves to a new holder; the old token is now fenced out of
	// every mutation, while reads keep working.
	active.Store("tok-2")
	if err := rt.Put("j", "status.json", []byte("v2")); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced put: %v, want ErrFenced", err)
	}
	if err := rt.Append("j", "events.ndjson", []byte("e2\n")); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced append: %v, want ErrFenced", err)
	}
	if err := rt.Truncate("j", "events.ndjson", 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced truncate: %v, want ErrFenced", err)
	}
	if err := rt.Delete("j"); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced delete: %v, want ErrFenced", err)
	}
	if got, err := rt.Get("j", "status.json"); err != nil || string(got) != "v1" {
		t.Fatalf("read after fencing: %q, %v (want the pre-fence value)", got, err)
	}
	if got, _ := be.Get("j", "events.ndjson"); string(got) != "e1\n" {
		t.Fatalf("fenced append reached the backend: %q", got)
	}
}

// TestRemoteHooksObserveWrites: the coordinator-facing callbacks fire
// after each successful mutation with the applied payload.
func TestRemoteHooksObserveWrites(t *testing.T) {
	var puts, appends, truncates []string
	hooks := RemoteHooks{
		OnPut:      func(job, key string, data []byte) { puts = append(puts, job+"/"+key+"="+string(data)) },
		OnAppend:   func(job, key string, data []byte) { appends = append(appends, key+"+"+string(data)) },
		OnTruncate: func(job, key string, size int64) { truncates = append(truncates, key) },
	}
	rt := newTestRemote(t, NewMem(), hooks)
	if err := rt.Put("j", "status.json", []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Append("j", "events.ndjson", []byte("e\n")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Truncate("j", "events.ndjson", 0); err != nil {
		t.Fatal(err)
	}
	if len(puts) != 1 || puts[0] != "j/status.json=s" {
		t.Fatalf("OnPut saw %v", puts)
	}
	if len(appends) != 1 || appends[0] != "events.ndjson+e\n" {
		t.Fatalf("OnAppend saw %v", appends)
	}
	if len(truncates) != 1 {
		t.Fatalf("OnTruncate saw %v", truncates)
	}
}

// TestRemoteDuplicateDelivery: a replayed append (same write id twice on
// the wire) lands in the feed once.
func TestRemoteDuplicateDelivery(t *testing.T) {
	be := NewMem()
	srv := httptest.NewServer(NewRemoteHandler(be, RemoteHooks{}))
	defer srv.Close()
	rt := NewRemote(srv.URL, RemoteWithClient(&http.Client{
		Transport: &FlakyTransport{Key: "events.ndjson"},
	}))
	// Sanity first: without Duplicate the transport is a pass-through.
	if err := rt.Append("j", "events.ndjson", []byte("a\n")); err != nil {
		t.Fatal(err)
	}
	rt = NewRemote(srv.URL, RemoteWithClient(&http.Client{
		Transport: &FlakyTransport{Key: "events.ndjson", Duplicate: true},
	}))
	for _, line := range []string{"b\n", "c\n"} {
		if err := rt.Append("j", "events.ndjson", []byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := be.Get("j", "events.ndjson")
	if err != nil || string(got) != "a\nb\nc\n" {
		t.Fatalf("feed after duplicated deliveries: %q, %v", got, err)
	}
}

// TestRemoteDroppedResponses: after the threshold, matching writes are
// applied server-side but the caller sees ErrInjected — the lost-answer
// fault the service must treat as a failed write.
func TestRemoteDroppedResponses(t *testing.T) {
	be := NewMem()
	srv := httptest.NewServer(NewRemoteHandler(be, RemoteHooks{}))
	defer srv.Close()
	rt := NewRemote(srv.URL, RemoteWithClient(&http.Client{
		Transport: &FlakyTransport{Key: "job.ckpt", DropResponsesAfter: 2},
	}))
	if err := rt.Put("j", "job.ckpt", []byte("snap1")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := rt.Put("j", "job.ckpt", []byte("snap2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: %v, want ErrInjected", err)
	}
	// Non-matching keys never fault.
	if err := rt.Put("j", "status.json", []byte("s")); err != nil {
		t.Fatalf("non-matching write: %v", err)
	}
	// The dropped write was applied before its answer vanished.
	if got, _ := be.Get("j", "job.ckpt"); string(got) != "snap2" {
		t.Fatalf("backend after dropped response: %q", got)
	}
}

// TestRemoteDelayedWrites: latency alone changes nothing but timing.
func TestRemoteDelayedWrites(t *testing.T) {
	be := NewMem()
	srv := httptest.NewServer(NewRemoteHandler(be, RemoteHooks{}))
	defer srv.Close()
	rt := NewRemote(srv.URL, RemoteWithClient(&http.Client{
		Transport: &FlakyTransport{Delay: 5 * time.Millisecond},
	}))
	start := time.Now()
	if err := rt.Put("j", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay not applied")
	}
	if got, _ := be.Get("j", "k"); string(got) != "v" {
		t.Fatalf("delayed write lost: %q", got)
	}
}

// TestRemoteErrorSurface: malformed requests and unknown operations come
// back as errors, not panics or silent no-ops.
func TestRemoteErrorSurface(t *testing.T) {
	srv := httptest.NewServer(NewRemoteHandler(NewMem(), RemoteHooks{}))
	defer srv.Close()
	rt := NewRemote(srv.URL + "/") // trailing slash is normalized away

	// Bad offset and unknown op go through the raw client paths.
	resp, err := http.Get(srv.URL + "/j/k?offset=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Missing key wins over the bad offset here; both are errors.
	if resp.StatusCode == http.StatusOK {
		t.Fatal("bad offset on missing key answered 200")
	}
	resp, err = http.Post(srv.URL+"/j/k/explode", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown op: HTTP %d", resp.StatusCode)
	}

	if err := rt.Truncate("j", "missing", 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("truncate missing: %v", err)
	}
	// A dead coordinator surfaces as a transport error, not a hang.
	dead := NewRemote("http://127.0.0.1:1")
	if _, err := dead.Get("j", "k"); err == nil {
		t.Fatal("get against a dead endpoint succeeded")
	}
	if _, err := dead.List(); err == nil {
		t.Fatal("list against a dead endpoint succeeded")
	}

	// Job ids and keys with URL-hostile characters round-trip.
	if err := rt.Put("j ob/1", "we ird?key", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, err := rt.Get("j ob/1", "we ird?key"); err != nil || string(got) != "v" {
		t.Fatalf("escaped round-trip: %q, %v", got, err)
	}
	jobs, err := rt.List()
	if err != nil || len(jobs) != 1 || !strings.Contains(jobs[0], "j ob") {
		t.Fatalf("List = %v, %v", jobs, err)
	}
}
