package islands

// Determinism gates for the heterogeneous scalar/Pareto split: a fixed
// top-level seed reproduces a mixed-objective archipelago bit for bit —
// per-island histories, front payloads and the event feed — and a barrier
// snapshot resumes onto the uninterrupted run's exact trajectory with the
// objective overrides restored from the checkpoint itself.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"evoprot/internal/core"
)

// paretoNicheConfig builds the canonical mixed-objective run: three
// islands under the scalar-pareto preset (0 and 2 scalarized, 1 NSGA-II)
// with ring migration crossing the objective boundary every epoch.
func paretoNicheConfig(t *testing.T, gens int) Config {
	t.Helper()
	per, err := NichesByName("scalar-pareto", 3)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Islands:      3,
		MigrateEvery: 5,
		Migrants:     2,
		Topology:     Ring,
		Engine:       core.Config{Generations: gens, Seed: 31},
		PerIsland:    per,
	}
}

// TestScalarParetoNicheDeterminism: two runs under the same seed must be
// bit-identical, and the objective split must actually hold — Pareto
// islands stream front payloads, scalar islands never do.
func TestScalarParetoNicheDeterminism(t *testing.T) {
	cfg := paretoNicheConfig(t, 30)
	ev1, res1 := collectEvents(t, cfg)
	ev2, res2 := collectEvents(t, cfg)
	sameEvents(t, "scalar-pareto", ev1, ev2)
	sameResults(t, "scalar-pareto", res1, res2)
	for i, isl := range res1.Islands {
		pareto := i%2 == 1
		for g, gs := range isl.History {
			if pareto && gs.Front == nil {
				t.Fatalf("pareto island %d generation %d carries no front", i, g+1)
			}
			if !pareto && gs.Front != nil {
				t.Fatalf("scalar island %d generation %d carries a front: %+v", i, g+1, gs.Front)
			}
			if pareto && (gs.Front.Size < 1 || gs.Front.Size != len(gs.Front.Pairs)) {
				t.Fatalf("island %d generation %d front inconsistent: %+v", i, g+1, gs.Front)
			}
		}
	}
}

// TestScalarParetoSnapshotResume: a barrier snapshot of a mixed-objective
// run must resume — without PerIsland, the overrides come from the
// checkpoint — onto the uninterrupted trajectory, fronts included.
func TestScalarParetoSnapshotResume(t *testing.T) {
	const total = 30
	eval, pop := testPopulation(t)

	var (
		buf      bytes.Buffer
		cutGen   int
		barriers int
	)
	cfg := paretoNicheConfig(t, total)
	cfg.OnEpoch = func(r *Runner) {
		barriers++
		if barriers == 2 && buf.Len() == 0 {
			cutGen = r.Generation()
			if err := r.Snapshot(&buf); err != nil {
				t.Errorf("barrier snapshot: %v", err)
			}
		}
	}
	ref, err := New(context.Background(), eval, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || cutGen <= 0 || cutGen >= total {
		t.Fatalf("no usable mid-run snapshot (cut at %d of %d)", cutGen, total)
	}

	rcfg := paretoNicheConfig(t, total-cutGen)
	rcfg.PerIsland = nil
	resumed, err := Resume(eval, bytes.NewReader(buf.Bytes()), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := resumed.IslandConfigs()
	if len(cfgs) != 3 || cfgs[0].Objective == core.ObjectivePareto || cfgs[1].Objective != core.ObjectivePareto {
		t.Fatalf("snapshot did not restore the objective split: %+v", cfgs)
	}
	resRes, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "scalar-pareto snapshot/resume", refRes, resRes)
}

// TestParetoSnapshotVersion: objective-carrying overrides stamp the new
// layout version; objective-free heterogeneous checkpoints keep stamping
// version 2 so older builds still read them.
func TestParetoSnapshotVersion(t *testing.T) {
	eval, pop := testPopulation(t)
	version := func(cfg Config) int {
		r, err := New(context.Background(), eval, pop, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(eval, bytes.NewReader(buf.Bytes()), cfg); err != nil {
			t.Fatalf("own snapshot does not resume: %v", err)
		}
		return snap.Version
	}
	if v := version(paretoNicheConfig(t, 10)); v != 3 {
		t.Fatalf("pareto-niche snapshot is version %d, want 3", v)
	}
	withRef := paretoNicheConfig(t, 10)
	withRef.PerIsland[1].ParetoRef = core.DefaultParetoRef
	if v := version(withRef); v != 3 {
		t.Fatalf("pareto-ref snapshot is version %d, want 3", v)
	}
}
