// Package islands runs the island model of parallel evolution: N core
// engines evolve copies of one initial population concurrently, each on
// its own goroutine over the shared (read-only) evaluator, and exchange
// elite individuals every MigrateEvery generations under a pluggable
// migration topology. Migration happens at a coordinator barrier — every
// island is quiescent while individuals move — so a run's outcome depends
// only on the configuration and the top-level seed, never on goroutine
// scheduling: a fixed seed reproduces the full parallel run bit for bit.
//
// Island 0 draws its random stream from the top-level seed itself, so a
// single-island run reproduces a plain core.Engine run exactly; islands
// i > 0 use seeds derived through a splitmix64 mix, giving every island an
// independent deterministic trajectory.
package islands

import (
	"context"
	"fmt"
	"sync"

	"evoprot/internal/core"
	"evoprot/internal/score"
)

// Topology selects which islands exchange individuals at a migration
// barrier.
type Topology int

const (
	// Ring sends each island's elites to its clockwise neighbour
	// (island i receives from island i-1) — the classic stepping-stone
	// model with slow diffusion of good genes.
	Ring Topology = iota
	// Broadcast offers every island's elites to every other island —
	// fastest mixing, closest to a panmictic population.
	Broadcast
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case Ring:
		return "ring"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// TopologyByName resolves a topology name.
func TopologyByName(name string) (Topology, error) {
	switch name {
	case "", "ring":
		return Ring, nil
	case "broadcast", "all":
		return Broadcast, nil
	default:
		return 0, fmt.Errorf("islands: unknown topology %q (want ring|broadcast)", name)
	}
}

// Defaults for the migration schedule.
const (
	// DefaultMigrateEvery is the epoch length: generations an island
	// evolves between migration barriers.
	DefaultMigrateEvery = 25
	// DefaultMigrants is how many elite individuals each island emits per
	// migration.
	DefaultMigrants = 2
)

// Config parameterizes an island-model run. Zero values select defaults.
type Config struct {
	// Islands is the number of concurrently evolving islands. Zero means 1.
	Islands int
	// MigrateEvery is the epoch length in generations; islands synchronize
	// and exchange individuals at each multiple. Zero means
	// DefaultMigrateEvery.
	MigrateEvery int
	// Migrants is how many elite individuals each island emits per
	// migration. Zero means DefaultMigrants; negative is rejected.
	Migrants int
	// Topology selects the exchange pattern.
	Topology Topology
	// Engine is the per-island configuration template. Seed is the
	// top-level run seed: island 0 uses it verbatim, later islands derive
	// theirs with IslandSeed. Engine.Generations is each island's budget
	// for one Run call; Engine.OnGeneration is ignored (progress flows
	// through OnEvent/Events, which carry the island id).
	Engine core.Config
	// OnEvent, when non-nil, receives every island's per-generation
	// statistics plus a final Done event per island. Calls are serialized
	// across islands (never concurrent) but interleave island order
	// non-deterministically; per-island order is ascending.
	OnEvent func(Event)
	// Events, when non-nil, receives the same feed as OnEvent on a
	// channel. Run blocks on the send, so the caller must drain; the
	// channel is closed when Run returns, making range loops terminate.
	// A channel serves one Run call.
	Events chan<- Event
	// OnEpoch, when non-nil, is called on the coordinator goroutine at
	// every migration barrier and once before Run returns. All islands are
	// quiescent during the call, so Runner.Snapshot is safe inside it —
	// the checkpointing hook.
	OnEpoch func(*Runner)
	// FirstSeq is the sequence number assigned to the feed's first event —
	// the numbering origin. A service that resumes a checkpointed run and
	// has already delivered n events passes n, so the resumed feed
	// continues its predecessor's offset space and replay offsets stay
	// stable across restarts.
	FirstSeq uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Islands == 0 {
		c.Islands = 1
	}
	if c.Islands < 1 {
		return c, fmt.Errorf("islands: Islands must be positive, got %d", c.Islands)
	}
	if c.MigrateEvery == 0 {
		c.MigrateEvery = DefaultMigrateEvery
	}
	if c.MigrateEvery < 1 {
		return c, fmt.Errorf("islands: MigrateEvery must be positive, got %d", c.MigrateEvery)
	}
	if c.Migrants == 0 {
		c.Migrants = DefaultMigrants
	}
	if c.Migrants < 0 {
		return c, fmt.Errorf("islands: Migrants must be non-negative, got %d", c.Migrants)
	}
	switch c.Topology {
	case Ring, Broadcast:
	default:
		return c, fmt.Errorf("islands: unknown topology %v", c.Topology)
	}
	c.Engine.OnGeneration = nil
	return c, nil
}

// Event is one entry of the streamed progress feed: a generation's
// statistics tagged with the island that produced it, or — when Done is
// set — an island's final summary with its stop reason.
type Event struct {
	// Seq is the event's position in the run's feed, assigned in emission
	// order starting at Config.FirstSeq. Replayable event logs use it as
	// the stable per-run offset.
	Seq uint64
	// Island is the 0-based island id; -1 on runner-level events injected
	// through Emit.
	Island int
	// Stats is the generation's record (for Done events, a summary
	// snapshot of the island's final population; zero on runner-level
	// events).
	Stats core.GenStats
	// Done marks the island's last event.
	Done bool
	// Stop is the island's stop reason; set only on Done events.
	Stop core.StopReason
	// Err carries a non-fatal runner-level error surfaced through the
	// feed — e.g. a failed mid-run checkpoint write. The run itself
	// continues; fatal errors still arrive through Run's return value.
	Err string `json:",omitempty"`
}

// Result is the outcome of an island-model run.
type Result struct {
	// Best is the best individual across all islands.
	Best *core.Individual
	// BestIsland is the island that produced Best (lowest id on ties).
	BestIsland int
	// Islands holds each island's own result, indexed by island id.
	Islands []*core.Result
	// Generations is the largest per-island generation count executed.
	Generations int
	// Evaluations counts the fitness evaluations actually performed across
	// the run: the shared initial evaluation once, plus every island's
	// offspring evaluations.
	Evaluations int
	// Migrations counts migrants accepted by receiving islands.
	Migrations int
	// StopReason summarizes the run: cancelled/deadline when the context
	// ended it, stagnated when every island stopped on its
	// NoImprovementWindow, completed otherwise.
	StopReason core.StopReason
}

// Runner coordinates one island-model optimization. Build with New (or
// Resume), call Run; a Runner is not safe for concurrent use, and Snapshot
// may only be called while the islands are quiescent (between runs or
// inside OnEpoch).
type Runner struct {
	cfg     Config
	engines []*core.Engine
	popSize int

	emitMu sync.Mutex // serializes OnEvent calls, Events sends and seq
	seq    uint64     // next event sequence number, starts at cfg.FirstSeq

	// Per-run coordinator state, reset at the top of Run. The slices are
	// written from island goroutines at disjoint indices and read by the
	// coordinator only after the epoch barrier.
	executed     []int
	sinceImprove []int
	done         []bool
	stops        []core.StopReason
	migrations   int
}

// IslandSeed derives island i's engine seed from the top-level run seed.
// Island 0 keeps the seed itself, so a single-island run reproduces the
// plain core.Engine trajectory bit for bit; later islands mix the seed and
// their id through the splitmix64 finalizer.
func IslandSeed(seed uint64, i int) uint64 {
	if i == 0 {
		return seed
	}
	z := seed + uint64(i)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// New builds a runner: the initial population is evaluated (and
// delta-prepared) once and fanned out to cfg.Islands engines with derived
// seeds. The context bounds that initial evaluation, so cancellation
// works during startup as well as between generations.
func New(ctx context.Context, eval *score.Evaluator, initial []*core.Individual, cfg Config) (*Runner, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfgs := make([]core.Config, c.Islands)
	for i := range cfgs {
		ec := c.Engine
		ec.Seed = IslandSeed(c.Engine.Seed, i)
		cfgs[i] = ec
	}
	engines, err := core.NewEngines(ctx, eval, initial, cfgs)
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: c, engines: engines, popSize: len(initial), seq: c.FirstSeq}, nil
}

// Islands returns the number of islands.
func (r *Runner) Islands() int { return len(r.engines) }

// Generation returns the largest per-island generation count — the
// checkpoint cadence marker.
func (r *Runner) Generation() int {
	max := 0
	for _, e := range r.engines {
		if g := e.Generation(); g > max {
			max = g
		}
	}
	return max
}

// Best returns the best individual across islands right now.
func (r *Runner) Best() *core.Individual {
	best := r.engines[0].Best()
	for _, e := range r.engines[1:] {
		if b := e.Best(); b.Eval.Score < best.Eval.Score {
			best = b
		}
	}
	return best
}

// Run executes the island model under ctx: epochs of MigrateEvery
// generations on one goroutine per island, a migration barrier between
// epochs, until every island exhausts its budget or stagnates, or the
// context ends the run. On cancellation the partial result is returned
// together with the context's error; work already done is never discarded.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(r.engines)
	r.executed = make([]int, n)
	r.sinceImprove = make([]int, n)
	r.done = make([]bool, n)
	r.stops = make([]core.StopReason, n)
	r.migrations = 0

	var runErr error
	for runErr == nil {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		active := 0
		for i := range r.done {
			if !r.done[i] {
				active++
			}
		}
		if active == 0 {
			break
		}
		var wg sync.WaitGroup
		for i := range r.engines {
			if r.done[i] {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.runEpoch(ctx, i)
			}(i)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		r.migrate()
		if r.cfg.OnEpoch != nil {
			r.cfg.OnEpoch(r)
		}
	}

	reason := core.StopCompleted
	if runErr != nil {
		reason = core.StopReasonForContext(runErr)
		for i := range r.engines {
			if !r.done[i] {
				r.done[i] = true
				r.stops[i] = reason
				r.emit(Event{Island: i, Stats: r.engines[i].Stats(), Done: true, Stop: reason})
			}
		}
	} else {
		allStagnated := true
		for _, s := range r.stops {
			if s != core.StopStagnated {
				allStagnated = false
				break
			}
		}
		if allStagnated {
			reason = core.StopStagnated
		}
	}
	if r.cfg.OnEpoch != nil && runErr != nil {
		r.cfg.OnEpoch(r)
	}

	res := &Result{Islands: make([]*core.Result, n), StopReason: reason, Migrations: r.migrations}
	for i, e := range r.engines {
		ir := e.MakeResult(r.stops[i])
		res.Islands[i] = ir
		res.Evaluations += ir.Evaluations
		if ir.Generations > res.Generations {
			res.Generations = ir.Generations
		}
		if res.Best == nil || ir.Best.Eval.Score < res.Best.Eval.Score {
			res.Best, res.BestIsland = ir.Best, i
		}
	}
	// Each island's Evaluations counter includes the initial population,
	// which was evaluated once and shared; count it once.
	res.Evaluations -= (n - 1) * r.popSize
	if r.cfg.Events != nil {
		close(r.cfg.Events)
		r.cfg.Events = nil
	}
	return res, runErr
}

// runEpoch advances island i by up to MigrateEvery generations, honouring
// the remaining budget, the context, and the island's stagnation window.
// It runs on the island's goroutine and touches only index i of the
// coordinator slices.
func (r *Runner) runEpoch(ctx context.Context, i int) {
	e := r.engines[i]
	window := r.cfg.Engine.NoImprovementWindow
	steps := r.cfg.MigrateEvery
	if remaining := e.MaxGenerations() - r.executed[i]; steps > remaining {
		steps = remaining
	}
	for s := 0; s < steps; s++ {
		if ctx.Err() != nil {
			return
		}
		gs := e.Step()
		r.executed[i]++
		if gs.Improved {
			r.sinceImprove[i] = 0
		} else {
			r.sinceImprove[i]++
		}
		r.emit(Event{Island: i, Stats: gs})
		if window > 0 && r.sinceImprove[i] >= window {
			r.finish(i, core.StopStagnated)
			return
		}
	}
	if r.executed[i] >= e.MaxGenerations() {
		r.finish(i, core.StopCompleted)
	}
}

// finish marks island i done and emits its Done event.
func (r *Runner) finish(i int, reason core.StopReason) {
	r.done[i] = true
	r.stops[i] = reason
	r.emit(Event{Island: i, Stats: r.engines[i].Stats(), Done: true, Stop: reason})
}

// Emit injects a runner-level event into the feed, serialized with the
// islands' own emissions and numbered in sequence. Intended for OnEpoch
// hooks that need to surface side-channel conditions — a failed
// checkpoint write, say — to the run's observers; set Island to -1 on
// injected events so consumers can tell them from island traffic.
func (r *Runner) Emit(ev Event) { r.emit(ev) }

// emit delivers one event to the callback and channel feeds, serialized
// across islands. With no feed attached it is free: sequence numbers
// only exist to order a feed someone observes, and the config is fixed
// at construction, so a listener cannot appear mid-run.
func (r *Runner) emit(ev Event) {
	if r.cfg.OnEvent == nil && r.cfg.Events == nil {
		return
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	ev.Seq = r.seq
	r.seq++
	if r.cfg.OnEvent != nil {
		r.cfg.OnEvent(ev)
	}
	if r.cfg.Events != nil {
		r.cfg.Events <- ev
	}
}

// migrate performs one barrier exchange: every island's elites are
// collected first (so an individual cannot hop two islands in one
// exchange), then offered to the receivers the topology names. Runs on the
// coordinator goroutine while every island is quiescent; iteration order
// is fixed, keeping the run deterministic. A migration that improves a
// receiving island's best resets its stagnation window.
func (r *Runner) migrate() {
	n := len(r.engines)
	if n < 2 || r.cfg.Migrants == 0 {
		return
	}
	emig := make([][]*core.Individual, n)
	for i, e := range r.engines {
		emig[i] = e.Emigrants(r.cfg.Migrants)
	}
	// Done islands still receive: they no longer evolve, but accepting
	// elites keeps the barrier state identical whether an island's budget
	// ends at this barrier or later — the property that makes a snapshot
	// taken here resume onto the uninterrupted run's trajectory.
	for dst := range r.engines {
		var incoming []*core.Individual
		switch r.cfg.Topology {
		case Broadcast:
			for src := range r.engines {
				if src != dst {
					incoming = append(incoming, emig[src]...)
				}
			}
		default: // Ring
			incoming = emig[(dst-1+n)%n]
		}
		before := r.engines[dst].Best().Eval.Score
		acc := r.engines[dst].Immigrate(incoming)
		r.migrations += acc
		if acc > 0 && r.engines[dst].Best().Eval.Score < before {
			r.sinceImprove[dst] = 0
		}
	}
}
