// Package islands runs the island model of parallel evolution: N core
// engines evolve copies of one initial population concurrently, each on
// its own goroutine over the shared (read-only) evaluator, and exchange
// elite individuals every MigrateEvery generations under a pluggable
// migration topology. Migration happens at a coordinator barrier — every
// island is quiescent while individuals move — so a run's outcome depends
// only on the configuration and the top-level seed, never on goroutine
// scheduling: a fixed seed reproduces the full parallel run bit for bit.
//
// Island 0 draws its random stream from the top-level seed itself, so a
// single-island run reproduces a plain core.Engine run exactly; islands
// i > 0 use seeds derived through a splitmix64 mix, giving every island an
// independent deterministic trajectory.
//
// Islands need not be identical: Config.PerIsland overlays per-island
// engine overrides onto the shared template (and NichesByName provides
// ready-made spreads of search behaviors), so different islands can run
// different selection pressures, mutation rates, crossover disruption or
// fitness aggregations — niched search over the risk/information-loss
// trade-off. Migration can also adapt: with Config.Adaptive enabled the
// coordinator computes a cheap cross-island population-divergence
// statistic at every barrier and widens or narrows the effective
// migration interval and exchange size within configured bounds.
// Divergence is a pure function of island state and every decision is
// taken at the quiescent barrier, so heterogeneous adaptive runs remain
// bit-reproducible from the one top-level seed.
package islands

import (
	"context"
	"fmt"
	"math"
	"sync"

	"evoprot/internal/core"
	"evoprot/internal/score"
)

// Topology selects which islands exchange individuals at a migration
// barrier.
type Topology int

const (
	// Ring sends each island's elites to its clockwise neighbour
	// (island i receives from island i-1) — the classic stepping-stone
	// model with slow diffusion of good genes.
	Ring Topology = iota
	// Broadcast offers every island's elites to every other island —
	// fastest mixing, closest to a panmictic population.
	Broadcast
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case Ring:
		return "ring"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// TopologyByName resolves a topology name.
func TopologyByName(name string) (Topology, error) {
	switch name {
	case "", "ring":
		return Ring, nil
	case "broadcast", "all":
		return Broadcast, nil
	default:
		return 0, fmt.Errorf("islands: unknown topology %q (want ring|broadcast)", name)
	}
}

// Defaults for the migration schedule.
const (
	// DefaultMigrateEvery is the epoch length: generations an island
	// evolves between migration barriers.
	DefaultMigrateEvery = 25
	// DefaultMigrants is how many elite individuals each island emits per
	// migration.
	DefaultMigrants = 2
)

// Default divergence thresholds of the adaptive controller.
const (
	// DefaultLowDivergence is the divergence below which islands count as
	// converged: migration then buys little mixing, so the controller
	// widens the interval and shrinks the exchange.
	DefaultLowDivergence = 0.02
	// DefaultHighDivergence is the divergence above which islands count as
	// strongly diverged: migration then spreads good genes fastest, so the
	// controller narrows the interval and grows the exchange.
	DefaultHighDivergence = 0.10
)

// Adaptive parameterizes divergence-driven adaptive migration. At every
// barrier the coordinator computes Runner.Divergence — a pure function of
// the quiescent island populations — and steers the effective migration
// schedule: divergence below LowDivergence doubles the effective interval
// and halves the migrant count (converged islands need less
// coordination), divergence above HighDivergence does the opposite
// (diverged islands profit from mixing), and anything in between leaves
// the schedule alone. All moves clamp to the Min/Max bounds, so the
// schedule always stays inside [MinEvery, MaxEvery] x [MinMigrants,
// MaxMigrants]. The controller is deterministic, decided only at
// quiescent barriers, so adaptive runs stay bit-reproducible from the
// top-level seed; its state survives Snapshot/Resume.
type Adaptive struct {
	// Enabled switches the controller on. Off (the zero value), the
	// migration schedule is fixed and every other field is ignored.
	Enabled bool
	// MinEvery and MaxEvery bound the effective migration interval in
	// generations. Zeros default to max(1, MigrateEvery/4) and
	// MigrateEvery*4.
	MinEvery, MaxEvery int
	// MinMigrants and MaxMigrants bound the effective per-island exchange
	// size. Zeros default to 1 and Migrants*4.
	MinMigrants, MaxMigrants int
	// LowDivergence and HighDivergence are the controller's thresholds;
	// zeros default to DefaultLowDivergence and DefaultHighDivergence.
	LowDivergence, HighDivergence float64
}

// withDefaults resolves the controller's bounds against the configured
// migration schedule and validates them.
func (a Adaptive) withDefaults(every, migrants int) (Adaptive, error) {
	if !a.Enabled {
		return a, nil
	}
	if a.MinEvery == 0 {
		a.MinEvery = max(1, every/4)
	}
	if a.MaxEvery == 0 {
		a.MaxEvery = every * 4
	}
	if a.MinMigrants == 0 {
		a.MinMigrants = 1
	}
	if a.MaxMigrants == 0 {
		a.MaxMigrants = migrants * 4
	}
	if a.LowDivergence == 0 {
		a.LowDivergence = DefaultLowDivergence
	}
	if a.HighDivergence == 0 {
		a.HighDivergence = DefaultHighDivergence
	}
	if a.MinEvery < 1 || a.MinEvery > every || a.MaxEvery < every {
		return a, fmt.Errorf("islands: adaptive interval bounds [%d,%d] must bracket MigrateEvery %d (and stay positive)",
			a.MinEvery, a.MaxEvery, every)
	}
	if a.MinMigrants < 1 || a.MinMigrants > migrants || a.MaxMigrants < migrants {
		return a, fmt.Errorf("islands: adaptive migrant bounds [%d,%d] must bracket Migrants %d (and stay positive)",
			a.MinMigrants, a.MaxMigrants, migrants)
	}
	if a.LowDivergence < 0 || a.HighDivergence < a.LowDivergence {
		return a, fmt.Errorf("islands: adaptive divergence thresholds %v..%v must satisfy 0 <= low <= high",
			a.LowDivergence, a.HighDivergence)
	}
	return a, nil
}

// Config parameterizes an island-model run. Zero values select defaults.
type Config struct {
	// Islands is the number of concurrently evolving islands. Zero means 1.
	Islands int
	// MigrateEvery is the epoch length in generations; islands synchronize
	// and exchange individuals at each multiple. Zero means
	// DefaultMigrateEvery.
	MigrateEvery int
	// Migrants is how many elite individuals each island emits per
	// migration. Zero means DefaultMigrants; negative is rejected.
	Migrants int
	// Topology selects the exchange pattern.
	Topology Topology
	// Engine is the per-island engine configuration template: every island
	// starts from it, with any PerIsland override overlaid on top.
	// Engine.Seed is the top-level run seed — island 0 uses it verbatim,
	// later islands derive theirs with IslandSeed. Engine.Generations is
	// each island's budget for one Run call; Engine.OnGeneration is
	// ignored (progress flows through OnEvent/Events, which carry the
	// island id).
	Engine core.Config
	// PerIsland optionally specializes islands: entry i is overlaid onto
	// the Engine template with core.Config.Merged, so zero-valued override
	// fields inherit the template and set fields (selection policy,
	// mutation rate, leader fraction, crossover points, aggregator,
	// generations, stagnation window, ...) replace it. Empty means every
	// island runs the template — the homogeneous model, bit-identical to a
	// run with no overrides or with all-zero overrides. When non-empty the
	// length must equal Islands, and overrides must not set Seed (island
	// seeds always derive from the top-level seed) or OnGeneration.
	// NichesByName builds ready-made override spreads.
	PerIsland []core.Config
	// Adaptive, when enabled, ties the migration schedule to cross-island
	// population divergence within the configured bounds; MigrateEvery and
	// Migrants are then the controller's starting point. Disabled, the
	// schedule is fixed — the historical behavior, bit for bit.
	Adaptive Adaptive
	// OnEvent, when non-nil, receives every island's per-generation
	// statistics plus a final Done event per island. Calls are serialized
	// across islands (never concurrent) but interleave island order
	// non-deterministically; per-island order is ascending.
	OnEvent func(Event)
	// Events, when non-nil, receives the same feed as OnEvent on a
	// channel. Run blocks on the send, so the caller must drain; the
	// channel is closed when Run returns, making range loops terminate.
	// A channel serves one Run call.
	Events chan<- Event
	// OnEpoch, when non-nil, is called on the coordinator goroutine at
	// every migration barrier and once before Run returns. All islands are
	// quiescent during the call, so Runner.Snapshot is safe inside it —
	// the checkpointing hook.
	OnEpoch func(*Runner)
	// Barrier executes island epochs and rendezvouses them (see
	// EpochBarrier). Nil selects InProcessBarrier — goroutines of this
	// process, the historical behavior bit for bit. A conforming barrier
	// never changes a run's trajectory, only where the epochs execute;
	// it survives Snapshot/Resume by riding this Config into Resume.
	Barrier EpochBarrier
	// FirstSeq is the sequence number assigned to the feed's first event —
	// the numbering origin. A service that resumes a checkpointed run and
	// has already delivered n events passes n, so the resumed feed
	// continues its predecessor's offset space and replay offsets stay
	// stable across restarts.
	FirstSeq uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Islands == 0 {
		c.Islands = 1
	}
	if c.Islands < 1 {
		return c, fmt.Errorf("islands: Islands must be positive, got %d", c.Islands)
	}
	if c.MigrateEvery == 0 {
		c.MigrateEvery = DefaultMigrateEvery
	}
	if c.MigrateEvery < 1 {
		return c, fmt.Errorf("islands: MigrateEvery must be positive, got %d", c.MigrateEvery)
	}
	if c.Migrants == 0 {
		c.Migrants = DefaultMigrants
	}
	if c.Migrants < 0 {
		return c, fmt.Errorf("islands: Migrants must be non-negative, got %d", c.Migrants)
	}
	switch c.Topology {
	case Ring, Broadcast:
	default:
		return c, fmt.Errorf("islands: unknown topology %v", c.Topology)
	}
	c.Engine.OnGeneration = nil
	if err := c.Engine.Validate(); err != nil {
		return c, err
	}
	if c.Barrier == nil {
		c.Barrier = InProcessBarrier{}
	}
	if len(c.PerIsland) != 0 && len(c.PerIsland) != c.Islands {
		return c, fmt.Errorf("islands: PerIsland carries %d overrides for %d islands", len(c.PerIsland), c.Islands)
	}
	for i, ov := range c.PerIsland {
		if ov.Seed != 0 {
			return c, fmt.Errorf("islands: PerIsland[%d] sets Seed; island seeds derive from the top-level seed", i)
		}
		if ov.OnGeneration != nil {
			return c, fmt.Errorf("islands: PerIsland[%d] sets OnGeneration; progress flows through OnEvent/Events", i)
		}
		if ov.InitWorkers != 0 {
			return c, fmt.Errorf("islands: PerIsland[%d] sets InitWorkers; the initial-evaluation pool is shared, configure it on the Engine template", i)
		}
		if err := c.Engine.Merged(ov).Validate(); err != nil {
			return c, fmt.Errorf("islands: PerIsland[%d]: %w", i, err)
		}
	}
	a, err := c.Adaptive.withDefaults(c.MigrateEvery, c.Migrants)
	if err != nil {
		return c, err
	}
	c.Adaptive = a
	return c, nil
}

// Validate checks the configuration — schedule, topology, engine template,
// per-island overrides and adaptive bounds — exactly the way New would,
// without building anything. Services run it at job admission so a bad
// heterogeneous spec is rejected before any evaluation work happens.
func (c Config) Validate() error {
	_, err := c.withDefaults()
	return err
}

// islandConfig resolves island i's engine configuration: the template,
// the island's PerIsland override (if any) overlaid with Merged, and the
// island's derived seed.
func (c Config) islandConfig(i int) core.Config {
	ec := c.Engine
	if len(c.PerIsland) > 0 {
		ec = ec.Merged(c.PerIsland[i])
	}
	ec.Seed = IslandSeed(c.Engine.Seed, i)
	return ec
}

// Event is one entry of the streamed progress feed: a generation's
// statistics tagged with the island that produced it, or — when Done is
// set — an island's final summary with its stop reason.
type Event struct {
	// Seq is the event's position in the run's feed, assigned in emission
	// order starting at Config.FirstSeq. Replayable event logs use it as
	// the stable per-run offset.
	Seq uint64
	// Island is the 0-based island id; -1 on runner-level events injected
	// through Emit.
	Island int
	// Stats is the generation's record (for Done events, a summary
	// snapshot of the island's final population; zero on runner-level
	// events).
	Stats core.GenStats
	// Done marks the island's last event.
	Done bool
	// Stop is the island's stop reason; set only on Done events.
	Stop core.StopReason
	// Err carries a non-fatal runner-level error surfaced through the
	// feed — e.g. a failed mid-run checkpoint write. The run itself
	// continues; fatal errors still arrive through Run's return value.
	Err string `json:",omitempty"`
	// Epoch, on runner-level events of adaptive runs (Island -1), reports
	// the migration barrier just executed: the divergence observed and the
	// effective schedule going forward. Nil on all other events — fixed-
	// schedule runs emit no epoch events, keeping their feeds byte-
	// identical to the pre-adaptive format.
	Epoch *EpochInfo `json:",omitempty"`
}

// EpochInfo describes one migration barrier of an adaptive run.
type EpochInfo struct {
	// Divergence is the cross-island population divergence observed at the
	// barrier (see Runner.Divergence).
	Divergence float64 `json:"divergence"`
	// MigrateEvery and Migrants are the effective schedule after the
	// barrier's controller decision — the parameters governing the next
	// epoch.
	MigrateEvery int `json:"migrate_every"`
	Migrants     int `json:"migrants"`
	// Accepted counts the migrants receiving islands accepted at this
	// barrier.
	Accepted int `json:"accepted"`
}

// Result is the outcome of an island-model run.
type Result struct {
	// Best is the best individual across all islands, judged under the
	// run's shared aggregation (the Engine template's, or the evaluator's
	// when the template names none): heterogeneous islands score their own
	// populations under their own aggregators, so cross-island comparison
	// re-combines each island winner's (IL, DR) pair on the one shared
	// scale. Best.Eval.Score carries that shared-scale value; the owning
	// island's original wrapper remains at Islands[BestIsland].Best. On
	// homogeneous runs the re-combination reproduces the identical score
	// bit for bit.
	Best *core.Individual
	// BestIsland is the island that produced Best (lowest id on ties).
	BestIsland int
	// Islands holds each island's own result, indexed by island id.
	Islands []*core.Result
	// Generations is the largest per-island generation count executed.
	Generations int
	// Evaluations counts the fitness evaluations actually performed across
	// the run: the shared initial evaluation once, plus every island's
	// offspring evaluations.
	Evaluations int
	// Migrations counts migrants accepted by receiving islands.
	Migrations int
	// StopReason summarizes the run: cancelled/deadline when the context
	// ended it, stagnated when every island stopped on its
	// NoImprovementWindow, completed otherwise.
	StopReason core.StopReason
}

// Runner coordinates one island-model optimization. Build with New (or
// Resume), call Run; a Runner is not safe for concurrent use, and Snapshot
// may only be called while the islands are quiescent (between runs or
// inside OnEpoch).
type Runner struct {
	cfg       Config
	engines   []*core.Engine
	perIsland []core.Config // resolved per-island engine configs, index by island id
	agg       score.Aggregator
	popSize   int

	// Effective migration schedule: equal to cfg.MigrateEvery/cfg.Migrants
	// on fixed-schedule runs, steered by the adaptive controller within
	// its bounds otherwise. Written only at quiescent barriers (and by
	// Resume), read by island goroutines after the barrier — ordered by
	// the epoch WaitGroup.
	effEvery    int
	effMigrants int

	emitMu sync.Mutex // serializes OnEvent calls, Events sends and seq
	seq    uint64     // next event sequence number, starts at cfg.FirstSeq

	// Per-run coordinator state, reset at the top of Run. The slices are
	// written from island goroutines at disjoint indices and read by the
	// coordinator only after the epoch barrier.
	executed     []int
	sinceImprove []int
	done         []bool
	stops        []core.StopReason
	migrations   int
}

// IslandSeed derives island i's engine seed from the top-level run seed.
// Island 0 keeps the seed itself, so a single-island run reproduces the
// plain core.Engine trajectory bit for bit; later islands mix the seed and
// their id through the splitmix64 finalizer.
func IslandSeed(seed uint64, i int) uint64 {
	if i == 0 {
		return seed
	}
	z := seed + uint64(i)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// New builds a runner: the initial population is evaluated (and
// delta-prepared) once and fanned out to cfg.Islands engines with derived
// seeds. The context bounds that initial evaluation, so cancellation
// works during startup as well as between generations.
func New(ctx context.Context, eval *score.Evaluator, initial []*core.Individual, cfg Config) (*Runner, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfgs := make([]core.Config, c.Islands)
	for i := range cfgs {
		cfgs[i] = c.islandConfig(i)
	}
	engines, err := core.NewEngines(ctx, eval, initial, cfgs)
	if err != nil {
		return nil, err
	}
	return &Runner{
		cfg: c, engines: engines, perIsland: cfgs, agg: runAggregator(eval, c), popSize: len(initial),
		effEvery: c.MigrateEvery, effMigrants: c.Migrants, seq: c.FirstSeq,
	}, nil
}

// runAggregator resolves the run's shared aggregation — the judging
// metric for cross-island comparison: the Engine template's named
// aggregator when set, the evaluator's otherwise. The name was validated
// by withDefaults; resolution cannot fail here.
func runAggregator(eval *score.Evaluator, c Config) score.Aggregator {
	if c.Engine.Aggregator != "" {
		if agg, err := score.ExtendedAggregatorByName(c.Engine.Aggregator); err == nil {
			return agg
		}
	}
	return eval.Aggregator()
}

// Islands returns the number of islands.
func (r *Runner) Islands() int { return len(r.engines) }

// Generation returns the largest per-island generation count — the
// checkpoint cadence marker.
func (r *Runner) Generation() int {
	max := 0
	for _, e := range r.engines {
		if g := e.Generation(); g > max {
			max = g
		}
	}
	return max
}

// Best returns the best individual across islands right now, judged
// under the run's shared aggregation (see Result.Best): the returned
// wrapper is a copy whose Score carries the shared-scale value, so
// heterogeneous islands compare on one metric. Only valid while the
// islands are quiescent.
func (r *Runner) Best() *core.Individual {
	best, _ := r.bestAcross()
	return best
}

// bestAcross picks the cross-island winner under the run's shared
// aggregation, returning a presentation copy (Score re-combined on the
// shared scale; bit-identical on homogeneous runs) and the owning
// island's id (lowest on ties).
func (r *Runner) bestAcross() (*core.Individual, int) {
	var (
		best      *core.Individual
		bestIdx   int
		bestScore float64
	)
	for i, e := range r.engines {
		b := e.Best()
		s := r.agg.Combine(b.Eval.IL, b.Eval.DR)
		if best == nil || s < bestScore {
			best, bestIdx, bestScore = b, i, s
		}
	}
	out := *best
	out.Eval.Score = bestScore
	return &out, bestIdx
}

// Run executes the island model under ctx: epochs of MigrateEvery
// generations on one goroutine per island, a migration barrier between
// epochs, until every island exhausts its budget or stagnates, or the
// context ends the run. On cancellation the partial result is returned
// together with the context's error; work already done is never discarded.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(r.engines)
	r.executed = make([]int, n)
	r.sinceImprove = make([]int, n)
	r.done = make([]bool, n)
	r.stops = make([]core.StopReason, n)
	r.migrations = 0

	var runErr error
	for runErr == nil {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		active := make([]int, 0, n)
		for i := range r.done {
			if !r.done[i] {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		// The barrier owns epoch execution: every active island goes
		// through its epoch (in-process goroutines by default, remote
		// workers for a distributed barrier) and is quiescent again when
		// RunEpoch returns. A barrier failure ends the run like a
		// cancellation — work already done is kept.
		if err := r.cfg.Barrier.RunEpoch(ctx, active, func(i int) { r.runEpoch(ctx, i) }); err != nil {
			runErr = err
			break
		}
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		var div float64
		if r.cfg.Adaptive.Enabled {
			// Measure before migrating: migration itself homogenizes the
			// populations, which would mask the divergence that built up
			// over the epoch.
			div = r.Divergence()
		}
		acc := r.migrate()
		if r.cfg.Adaptive.Enabled {
			r.adapt(div)
			r.emit(Event{Island: -1, Epoch: &EpochInfo{
				Divergence:   div,
				MigrateEvery: r.effEvery,
				Migrants:     r.effMigrants,
				Accepted:     acc,
			}})
		}
		if r.cfg.OnEpoch != nil {
			r.cfg.OnEpoch(r)
		}
	}

	reason := core.StopCompleted
	if runErr != nil {
		reason = core.StopReasonForContext(runErr)
		for i := range r.engines {
			if !r.done[i] {
				r.done[i] = true
				r.stops[i] = reason
				r.emit(Event{Island: i, Stats: r.engines[i].Stats(), Done: true, Stop: reason})
			}
		}
	} else {
		allStagnated := true
		for _, s := range r.stops {
			if s != core.StopStagnated {
				allStagnated = false
				break
			}
		}
		if allStagnated {
			reason = core.StopStagnated
		}
	}
	if r.cfg.OnEpoch != nil && runErr != nil {
		r.cfg.OnEpoch(r)
	}

	res := &Result{Islands: make([]*core.Result, n), StopReason: reason, Migrations: r.migrations}
	for i, e := range r.engines {
		ir := e.MakeResult(r.stops[i])
		res.Islands[i] = ir
		res.Evaluations += ir.Evaluations
		if ir.Generations > res.Generations {
			res.Generations = ir.Generations
		}
	}
	res.Best, res.BestIsland = r.bestAcross()
	// Each island's Evaluations counter includes the initial population,
	// which was evaluated once and shared; count it once.
	res.Evaluations -= (n - 1) * r.popSize
	if r.cfg.Events != nil {
		close(r.cfg.Events)
		r.cfg.Events = nil
	}
	return res, runErr
}

// runEpoch advances island i by up to the effective migration interval,
// honouring the remaining budget, the context, and the island's own
// stagnation window. It runs on the island's goroutine and touches only
// index i of the coordinator slices.
func (r *Runner) runEpoch(ctx context.Context, i int) {
	e := r.engines[i]
	window := r.perIsland[i].NoImprovementWindow
	steps := r.effEvery
	if remaining := e.MaxGenerations() - r.executed[i]; steps > remaining {
		steps = remaining
	}
	for s := 0; s < steps; s++ {
		if ctx.Err() != nil {
			return
		}
		gs := e.Step()
		r.executed[i]++
		if gs.Improved {
			r.sinceImprove[i] = 0
		} else {
			r.sinceImprove[i]++
		}
		r.emit(Event{Island: i, Stats: gs})
		if window > 0 && r.sinceImprove[i] >= window {
			r.finish(i, core.StopStagnated)
			return
		}
	}
	if r.executed[i] >= e.MaxGenerations() {
		r.finish(i, core.StopCompleted)
	}
}

// finish marks island i done and emits its Done event.
func (r *Runner) finish(i int, reason core.StopReason) {
	r.done[i] = true
	r.stops[i] = reason
	r.emit(Event{Island: i, Stats: r.engines[i].Stats(), Done: true, Stop: reason})
}

// Emit injects a runner-level event into the feed, serialized with the
// islands' own emissions and numbered in sequence. Intended for OnEpoch
// hooks that need to surface side-channel conditions — a failed
// checkpoint write, say — to the run's observers; set Island to -1 on
// injected events so consumers can tell them from island traffic.
func (r *Runner) Emit(ev Event) { r.emit(ev) }

// emit delivers one event to the callback and channel feeds, serialized
// across islands. With no feed attached it is free: sequence numbers
// only exist to order a feed someone observes, and the config is fixed
// at construction, so a listener cannot appear mid-run.
func (r *Runner) emit(ev Event) {
	if r.cfg.OnEvent == nil && r.cfg.Events == nil {
		return
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	ev.Seq = r.seq
	r.seq++
	if r.cfg.OnEvent != nil {
		r.cfg.OnEvent(ev)
	}
	if r.cfg.Events != nil {
		r.cfg.Events <- ev
	}
}

// migrate performs one barrier exchange: every island's elites are
// collected first (so an individual cannot hop two islands in one
// exchange), then offered to the receivers the topology names. Runs on the
// coordinator goroutine while every island is quiescent; iteration order
// is fixed, keeping the run deterministic. A migration that improves a
// receiving island's best resets its stagnation window. Returns how many
// migrants the receiving islands accepted at this barrier.
func (r *Runner) migrate() int {
	n := len(r.engines)
	if n < 2 || r.effMigrants == 0 {
		return 0
	}
	barrier := 0
	emig := make([][]*core.Individual, n)
	for i, e := range r.engines {
		emig[i] = e.Emigrants(r.effMigrants)
	}
	// Done islands still receive: they no longer evolve, but accepting
	// elites keeps the barrier state identical whether an island's budget
	// ends at this barrier or later — the property that makes a snapshot
	// taken here resume onto the uninterrupted run's trajectory.
	for dst := range r.engines {
		var incoming []*core.Individual
		switch r.cfg.Topology {
		case Broadcast:
			for src := range r.engines {
				if src != dst {
					incoming = append(incoming, emig[src]...)
				}
			}
		default: // Ring
			incoming = emig[(dst-1+n)%n]
		}
		before := r.engines[dst].Best().Eval.Score
		acc := r.engines[dst].Immigrate(incoming)
		r.migrations += acc
		barrier += acc
		if acc > 0 && r.engines[dst].Best().Eval.Score < before {
			r.sinceImprove[dst] = 0
		}
	}
	return barrier
}

// Divergence returns the cross-island population-divergence statistic the
// adaptive controller acts on: the coefficient of variation of the
// islands' mean population scores (standard deviation over the islands,
// normalized by their grand mean). 0 means every island's population
// averages the same fitness — converged search; larger values mean the
// islands occupy different regions of the trade-off. It is a pure
// function of island state and costs O(islands * population), cheap
// against an epoch of evaluations. Only meaningful while the islands are
// quiescent (between runs, at barriers, or inside OnEpoch); with fewer
// than two islands it is 0. Heterogeneous aggregators score islands on
// different scales, which the normalization only partly compensates —
// the statistic is a steering heuristic, not a calibrated distance.
func (r *Runner) Divergence() float64 {
	n := len(r.engines)
	if n < 2 {
		return 0
	}
	sum := 0.0
	means := make([]float64, n)
	for i, e := range r.engines {
		means[i] = e.Stats().Mean
		sum += means[i]
	}
	grand := sum / float64(n)
	ss := 0.0
	for _, m := range means {
		d := m - grand
		ss += d * d
	}
	const eps = 1e-9
	return math.Sqrt(ss/float64(n)) / (grand + eps)
}

// adapt is the barrier-time controller move: steer the effective schedule
// by the observed divergence, clamped to the configured bounds.
func (r *Runner) adapt(div float64) {
	a := r.cfg.Adaptive
	switch {
	case div < a.LowDivergence:
		// Converged islands: migration buys little mixing — widen the
		// interval, shrink the exchange, spend less on coordination.
		r.effEvery = min(r.effEvery*2, a.MaxEvery)
		r.effMigrants = max(r.effMigrants/2, a.MinMigrants)
	case div > a.HighDivergence:
		// Strongly diverged islands: migration spreads good genes fastest
		// — narrow the interval, grow the exchange.
		r.effEvery = max(r.effEvery/2, a.MinEvery)
		r.effMigrants = min(r.effMigrants*2, a.MaxMigrants)
	}
}

// EffectiveMigration returns the migration schedule currently in force:
// the configured one on fixed-schedule runs, the adaptive controller's
// latest decision otherwise. Only valid while the islands are quiescent.
func (r *Runner) EffectiveMigration() (every, migrants int) {
	return r.effEvery, r.effMigrants
}

// IslandConfigs returns the resolved per-island engine configurations
// (template plus override, with derived seeds), indexed by island id. The
// slice is a copy.
func (r *Runner) IslandConfigs() []core.Config {
	out := make([]core.Config, len(r.perIsland))
	copy(out, r.perIsland)
	return out
}
