package islands

import (
	"context"
	"errors"
	"testing"

	"evoprot/internal/core"
)

// reverseSerialBarrier executes epochs one island at a time in reverse id
// order — the scheduling opposite of InProcessBarrier. Runs under it must
// still be bit-identical: each island's epoch depends only on that
// island's own state.
type reverseSerialBarrier struct {
	epochs int
	seen   [][]int
}

func (b *reverseSerialBarrier) RunEpoch(ctx context.Context, active []int, run func(int)) error {
	b.epochs++
	b.seen = append(b.seen, append([]int(nil), active...))
	for i := len(active) - 1; i >= 0; i-- {
		run(active[i])
	}
	return nil
}

// TestBarrierSchedulingInvariance is the seam's core guarantee: a serial
// reverse-order barrier reproduces the default concurrent run bit for bit
// — histories, migrations, best individual — on a heterogeneous adaptive
// run, the hardest case. A distributed barrier is "just" another
// scheduling, so this is the property remote execution will lean on.
func TestBarrierSchedulingInvariance(t *testing.T) {
	cfg := func() Config {
		return Config{
			Islands:      3,
			MigrateEvery: 10,
			Migrants:     2,
			Adaptive:     Adaptive{Enabled: true},
			PerIsland: []core.Config{
				{},
				{MutationRate: 0.9},
				{Selection: core.SelectRank, CrossoverPoints: 4},
			},
			Engine: core.Config{Generations: 40, Seed: 42, NoImprovementWindow: 15},
		}
	}
	run := func(b EpochBarrier) *Result {
		eval, pop := testPopulation(t)
		c := cfg()
		c.Barrier = b
		r, err := New(context.Background(), eval, pop, c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rb := &reverseSerialBarrier{}
	a, b := run(nil), run(rb)
	if rb.epochs == 0 {
		t.Fatal("custom barrier was never invoked")
	}
	for _, active := range rb.seen {
		if len(active) == 0 {
			t.Fatal("RunEpoch called with no active islands")
		}
	}
	if a.Migrations != b.Migrations {
		t.Fatalf("migrations diverged: %d vs %d", a.Migrations, b.Migrations)
	}
	if a.BestIsland != b.BestIsland || a.Best.Eval.Score != b.Best.Eval.Score {
		t.Fatalf("best diverged: island %d score %v vs island %d score %v",
			a.BestIsland, a.Best.Eval.Score, b.BestIsland, b.Best.Eval.Score)
	}
	for i := range a.Islands {
		x, y := stripTimes(a.Islands[i].History), stripTimes(b.Islands[i].History)
		if len(x) != len(y) {
			t.Fatalf("island %d history lengths %d vs %d", i, len(x), len(y))
		}
		for g := range x {
			if x[g] != y[g] {
				t.Fatalf("island %d generation %d diverged under reverse-serial barrier", i, g+1)
			}
		}
	}
	if !a.Best.Data.Equal(b.Best.Data) {
		t.Fatal("best individual data diverged between barriers")
	}
}

// failingBarrier errors on its nth epoch.
type failingBarrier struct {
	failOn int
	epochs int
	err    error
}

func (b *failingBarrier) RunEpoch(ctx context.Context, active []int, run func(int)) error {
	b.epochs++
	if b.epochs >= b.failOn {
		return b.err
	}
	InProcessBarrier{}.RunEpoch(ctx, active, run)
	return nil
}

// TestBarrierErrorEndsRun: a barrier failure ends the run like a
// cancellation — the error is returned, and the partial result (history
// up to the last completed epoch, best-so-far) is kept.
func TestBarrierErrorEndsRun(t *testing.T) {
	eval, pop := testPopulation(t)
	fb := &failingBarrier{failOn: 3, err: errors.New("worker pool lost")}
	r, err := New(context.Background(), eval, pop, Config{
		Islands:      2,
		MigrateEvery: 5,
		Barrier:      fb,
		Engine:       core.Config{Generations: 60, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if !errors.Is(err, fb.err) {
		t.Fatalf("want the barrier's error, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result must be kept on barrier failure")
	}
	if res.Best == nil {
		t.Fatal("partial result lost best-so-far")
	}
	wantGens := (fb.failOn - 1) * 5
	for i, isl := range res.Islands {
		if len(isl.History) != wantGens {
			t.Fatalf("island %d ran %d generations, want %d (two clean epochs)", i, len(isl.History), wantGens)
		}
		if isl.StopReason != core.StopCancelled {
			t.Fatalf("island %d stop reason %v, want StopCancelled", i, isl.StopReason)
		}
	}
}
