package islands

import (
	"context"
	"sync"
)

// EpochBarrier is the rendezvous seam between island epochs and
// coordinator work: Run hands it the set of still-active islands plus an
// epoch function, and the barrier brings every one of them through its
// epoch before returning — at which point all islands are quiescent and
// the coordinator migrates, adapts and checkpoints. The default
// InProcessBarrier runs epochs on goroutines of this process; a network
// barrier can instead dispatch them to remote workers and wait for their
// epoch acknowledgements, which is the seam distributed evolution slots
// into.
//
// The contract a conforming barrier must honour, because the run's
// bit-reproducibility depends on it:
//
//   - run(i) is invoked exactly once per id in active, never twice and
//     never for other ids;
//   - every invocation has returned (or been fully applied, for a remote
//     execution) before RunEpoch returns — the rendezvous itself;
//   - RunEpoch establishes happens-before between the epoch work and its
//     return, so the coordinator reads island state without races.
//
// Within those rules the barrier is free to sequence or distribute the
// epochs however it likes: each island's epoch depends only on that
// island's own state, so serial, parallel and remote execution all yield
// bit-identical trajectories. A barrier error ends the run like a
// cancellation: the partial result is kept and the error is returned.
type EpochBarrier interface {
	RunEpoch(ctx context.Context, active []int, run func(island int)) error
}

// InProcessBarrier is the default EpochBarrier: one goroutine per active
// island and a WaitGroup rendezvous — the island model's historical
// in-process execution, bit for bit.
type InProcessBarrier struct{}

// RunEpoch runs every active island's epoch concurrently and waits.
func (InProcessBarrier) RunEpoch(ctx context.Context, active []int, run func(island int)) error {
	var wg sync.WaitGroup
	for _, i := range active {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run(i)
		}(i)
	}
	wg.Wait()
	return nil
}
