package islands

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"testing"

	"evoprot/internal/core"
	"evoprot/internal/datagen"
	"evoprot/internal/protection"
	"evoprot/internal/score"
)

// benchSetup builds a paper-scale flare population (the paper's 1389
// records when rows is 0) once per benchmark.
func benchSetup(b *testing.B, rows int) (*score.Evaluator, []*core.Individual) {
	b.Helper()
	d, err := datagen.ByName("flare", rows, 5)
	if err != nil {
		b.Fatal(err)
	}
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := score.NewEvaluator(d, attrs, score.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	var pop []*core.Individual
	for _, spec := range []string{
		"micro:k=3", "micro:k=6", "top:q=0.1", "bottom:q=0.1", "recode:depth=2",
		"rankswap:p=8", "rankswap:p=16", "pram:theta=0.8", "pram:theta=0.5", "micro:k=9",
	} {
		m := protection.Must(spec)
		masked, err := m.Protect(d, attrs, rng)
		if err != nil {
			b.Fatal(err)
		}
		pop = append(pop, core.NewIndividual(masked, protection.String(m)))
	}
	return eval, pop
}

// BenchmarkIslands measures best-score search throughput against island
// count on paper-scale data: each sub-benchmark evolves N islands for a
// fixed per-island budget, so the work per iteration grows linearly with N
// while — on a multi-core machine — the wall clock should stay near flat,
// i.e. generations/second (reported) scales with the island count. The
// final best score is reported alongside to show search quality does not
// degrade.
func BenchmarkIslands(b *testing.B) {
	const gensPerIsland = 200
	for _, n := range []int{1, 2, 4, 8} {
		if n > 2*runtime.GOMAXPROCS(0) {
			// Oversubscribing far past the machine stops being informative.
			continue
		}
		b.Run(fmt.Sprintf("islands=%d", n), func(b *testing.B) {
			eval, pop := benchSetup(b, 0)
			var best float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := New(context.Background(), eval, pop, Config{
					Islands:      n,
					MigrateEvery: 50,
					Migrants:     2,
					Engine:       core.Config{Generations: gensPerIsland, Seed: 42, LazyPrepare: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				best = res.Best.Eval.Score
			}
			b.StopTimer()
			totalGens := float64(gensPerIsland*n) * float64(b.N)
			b.ReportMetric(totalGens/b.Elapsed().Seconds(), "gens/s")
			b.ReportMetric(best, "best_score")
		})
	}
}
