package islands

// The determinism/equivalence harness gating the heterogeneous-islands
// feature:
//
//   - all-equal PerIsland overrides (and adaptive migration disabled)
//     reproduce the homogeneous path bit for bit, events and all;
//   - a fixed top-level seed reproduces any heterogeneous adaptive run
//     bit for bit, including the divergence trace and every controller
//     decision;
//   - one island with an override equals a plain core.Engine run under
//     the merged configuration;
//   - a barrier snapshot of a heterogeneous adaptive run resumes onto the
//     uninterrupted run's exact trajectory, controller state included.

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"

	"evoprot/internal/core"
)

// stripEvent zeroes an event's timing fields so feeds compare by payload.
func stripEvent(ev Event) Event {
	ev.Stats.EvalTime, ev.Stats.TotalTime = 0, 0
	return ev
}

// sameFronts compares two Pareto front payloads by value — GenStats holds
// them by pointer, so struct equality would compare identities.
func sameFronts(a, b *core.FrontStats) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Size != b.Size || a.Hypervolume != b.Hypervolume || len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	return true
}

// collectEvents runs the configuration and returns its full event feed
// (times stripped) together with the result.
func collectEvents(t *testing.T, cfg Config) ([]Event, *Result) {
	t.Helper()
	eval, pop := testPopulation(t)
	var events []Event
	var mu sync.Mutex
	cfg.OnEvent = func(ev Event) {
		mu.Lock()
		events = append(events, stripEvent(ev))
		mu.Unlock()
	}
	r, err := New(context.Background(), eval, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return events, res
}

// sameResults fails the test unless the two results carry bit-identical
// per-island histories and best individuals. Migration counters are not
// compared — a resumed leg only counts its own barriers; callers that
// compare whole runs check Migrations themselves.
func sameResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.BestIsland != b.BestIsland || a.Best.Eval.Score != b.Best.Eval.Score {
		t.Fatalf("%s: best diverged (island %d score %v vs island %d score %v)",
			label, a.BestIsland, a.Best.Eval.Score, b.BestIsland, b.Best.Eval.Score)
	}
	if !a.Best.Data.Equal(b.Best.Data) {
		t.Fatalf("%s: best individual data diverged", label)
	}
	if len(a.Islands) != len(b.Islands) {
		t.Fatalf("%s: island counts %d vs %d", label, len(a.Islands), len(b.Islands))
	}
	for i := range a.Islands {
		x, y := stripTimes(a.Islands[i].History), stripTimes(b.Islands[i].History)
		if len(x) != len(y) {
			t.Fatalf("%s: island %d history lengths %d vs %d", label, i, len(x), len(y))
		}
		for g := range x {
			if !sameFronts(x[g].Front, y[g].Front) {
				t.Fatalf("%s: island %d generation %d fronts diverged:\n%+v\n%+v", label, i, g+1, x[g].Front, y[g].Front)
			}
			x[g].Front, y[g].Front = nil, nil
			if x[g] != y[g] {
				t.Fatalf("%s: island %d generation %d diverged:\n%+v\n%+v", label, i, g+1, x[g], y[g])
			}
		}
	}
}

// sameEvents fails the test unless the two feeds carry identical
// per-island event sequences and identical runner-level (epoch)
// sequences. Global interleaving across islands is scheduling-dependent
// by contract — only per-island order is deterministic — so events are
// compared within their island's subsequence with Seq ignored.
func sameEvents(t *testing.T, label string, a, b []Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: feed lengths %d vs %d", label, len(a), len(b))
	}
	group := func(events []Event) map[int][]Event {
		out := map[int][]Event{}
		for _, ev := range events {
			ev.Seq = 0
			out[ev.Island] = append(out[ev.Island], ev)
		}
		return out
	}
	ga, gb := group(a), group(b)
	if len(ga) != len(gb) {
		t.Fatalf("%s: island sets %d vs %d", label, len(ga), len(gb))
	}
	for island, xs := range ga {
		ys := gb[island]
		if len(xs) != len(ys) {
			t.Fatalf("%s: island %d streamed %d vs %d events", label, island, len(xs), len(ys))
		}
		for i := range xs {
			x, y := xs[i], ys[i]
			if (x.Epoch == nil) != (y.Epoch == nil) || (x.Epoch != nil && *x.Epoch != *y.Epoch) {
				t.Fatalf("%s: island %d event %d epoch payloads diverged: %+v vs %+v", label, island, i, x.Epoch, y.Epoch)
			}
			x.Epoch, y.Epoch = nil, nil
			if !sameFronts(x.Stats.Front, y.Stats.Front) {
				t.Fatalf("%s: island %d event %d fronts diverged:\n%+v\n%+v", label, island, i, x.Stats.Front, y.Stats.Front)
			}
			x.Stats.Front, y.Stats.Front = nil, nil
			if x != y {
				t.Fatalf("%s: island %d event %d diverged:\n%+v\n%+v", label, island, i, x, y)
			}
		}
	}
}

// heteroConfig is the harness's canonical heterogeneous adaptive setup:
// three niched islands (distinct mutation rates, selection policies,
// crossover disruption and one per-island aggregator) under the adaptive
// controller.
func heteroConfig(gens int) Config {
	return Config{
		Islands:      3,
		MigrateEvery: 5,
		Migrants:     2,
		Topology:     Broadcast,
		Engine:       core.Config{Generations: gens, Seed: 42},
		PerIsland: []core.Config{
			{},
			{MutationRate: 0.7, Selection: core.SelectRank, CrossoverPoints: 4},
			{MutationRate: 0.3, LeaderFraction: 0.25, Aggregator: "mean"},
		},
		Adaptive: Adaptive{Enabled: true},
	}
}

// TestHomogeneousEquivalence: all-equal PerIsland overrides with the
// adaptive controller off must reproduce today's homogeneous path bit for
// bit — results, migrations, and the full event feed. Both the all-zero
// override form and the explicitly-restated-template form are checked.
func TestHomogeneousEquivalence(t *testing.T) {
	base := Config{
		Islands:      3,
		MigrateEvery: 5,
		Migrants:     2,
		Engine:       core.Config{Generations: 30, Seed: 42},
	}
	refEvents, refRes := collectEvents(t, base)

	zero := base
	zero.PerIsland = make([]core.Config, 3)
	zeroEvents, zeroRes := collectEvents(t, zero)
	sameResults(t, "all-zero overrides", refRes, zeroRes)
	sameEvents(t, "all-zero overrides", refEvents, zeroEvents)
	if refRes.Migrations != zeroRes.Migrations {
		t.Fatalf("migrations %d vs %d", refRes.Migrations, zeroRes.Migrations)
	}

	// Overrides restating the template's effective values are equally
	// homogeneous.
	stated := base
	stated.PerIsland = []core.Config{
		{MutationRate: 0.5, LeaderFraction: 0.1, CrossoverPoints: 2},
		{MutationRate: 0.5, LeaderFraction: 0.1, CrossoverPoints: 2},
		{MutationRate: 0.5, LeaderFraction: 0.1, CrossoverPoints: 2},
	}
	statedEvents, statedRes := collectEvents(t, stated)
	sameResults(t, "restated-template overrides", refRes, statedRes)
	sameEvents(t, "restated-template overrides", refEvents, statedEvents)
}

// TestHeterogeneousDeterminism: a fixed top-level seed reproduces a
// niched adaptive run bit for bit — per-island trajectories, the
// divergence trace, every controller decision and every migration —
// regardless of goroutine scheduling.
func TestHeterogeneousDeterminism(t *testing.T) {
	aEvents, aRes := collectEvents(t, heteroConfig(40))
	bEvents, bRes := collectEvents(t, heteroConfig(40))
	sameResults(t, "heterogeneous adaptive", aRes, bRes)
	sameEvents(t, "heterogeneous adaptive", aEvents, bEvents)
	if aRes.Migrations != bRes.Migrations {
		t.Fatalf("migrations %d vs %d", aRes.Migrations, bRes.Migrations)
	}
	epochs := 0
	for _, ev := range aEvents {
		if ev.Epoch != nil {
			epochs++
			if ev.Island != -1 {
				t.Fatalf("epoch event carries island %d, want -1", ev.Island)
			}
		}
	}
	if epochs == 0 {
		t.Fatal("adaptive run emitted no epoch events")
	}
	// The niches must actually diverge: islands with different engine
	// configurations cannot walk identical trajectories.
	for i := 1; i < len(aRes.Islands); i++ {
		x, y := aRes.Islands[0].History, aRes.Islands[i].History
		same := len(x) == len(y)
		if same {
			for g := range x {
				if x[g].Op != y[g].Op || x[g].Min != y[g].Min {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("island %d walked island 0's exact trajectory despite a different config", i)
		}
	}
}

// TestSingleIslandHeterogeneousMatchesEngine: one island with an override
// must reproduce a plain core.Engine run under the merged configuration —
// the 1-island == plain-engine property extended to the override layer.
func TestSingleIslandHeterogeneousMatchesEngine(t *testing.T) {
	override := core.Config{MutationRate: 0.7, Selection: core.SelectRank, CrossoverPoints: 3, Aggregator: "mean"}
	template := core.Config{Generations: 40, Seed: 7}

	eval, pop := testPopulation(t)
	engine, err := core.NewEngine(eval, pop, template.Merged(override))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	eval2, pop2 := testPopulation(t)
	r, err := New(context.Background(), eval2, pop2, Config{
		Islands:   1,
		Engine:    template,
		PerIsland: []core.Config{override},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, b := stripTimes(ref.History), stripTimes(res.Islands[0].History)
	if len(a) != len(b) {
		t.Fatalf("history lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation %d diverged:\nengine: %+v\nisland: %+v", i+1, a[i], b[i])
		}
	}
	if !ref.Best.Data.Equal(res.Best.Data) {
		t.Fatal("best individuals diverged")
	}
}

// TestHeterogeneousAdaptiveSnapshotResume: a snapshot taken at a
// mid-run migration barrier of a heterogeneous adaptive run must resume —
// per-island configs and controller state restored from the snapshot
// itself — onto the uninterrupted run's exact trajectory.
func TestHeterogeneousAdaptiveSnapshotResume(t *testing.T) {
	const total = 40
	eval, pop := testPopulation(t)

	var (
		buf      bytes.Buffer
		cutGen   int
		barriers int
	)
	cfg := heteroConfig(total)
	cfg.OnEpoch = func(r *Runner) {
		barriers++
		if barriers == 2 && buf.Len() == 0 {
			cutGen = r.Generation()
			if err := r.Snapshot(&buf); err != nil {
				t.Errorf("barrier snapshot: %v", err)
			}
		}
	}
	ref, err := New(context.Background(), eval, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || cutGen <= 0 || cutGen >= total {
		t.Fatalf("no usable mid-run snapshot (cut at %d of %d)", cutGen, total)
	}

	// Resume with the remaining budget and an otherwise matching config —
	// but no PerIsland: the snapshot must supply the overrides itself.
	rcfg := heteroConfig(total - cutGen)
	rcfg.PerIsland = nil
	resumed, err := Resume(eval, bytes.NewReader(buf.Bytes()), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Generation() != cutGen {
		t.Fatalf("resumed at generation %d, want %d", resumed.Generation(), cutGen)
	}
	cfgs := resumed.IslandConfigs()
	if len(cfgs) != 3 || cfgs[1].Selection != core.SelectRank || cfgs[2].Aggregator != "mean" {
		t.Fatalf("snapshot did not restore the per-island configs: %+v", cfgs)
	}
	resRes, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "snapshot/resume", refRes, resRes)
}

// TestAdaptiveControllerBounds: whatever divergence a run produces, the
// effective schedule must stay inside the configured bounds; and with the
// thresholds pinned to extremes the controller must actually walk to the
// matching bound.
func TestAdaptiveControllerBounds(t *testing.T) {
	run := func(adaptive Adaptive) []Event {
		cfg := heteroConfig(60)
		cfg.Adaptive = adaptive
		events, _ := collectEvents(t, cfg)
		return events
	}
	check := func(events []Event, a Adaptive, wantEvery, wantMigrants int) {
		t.Helper()
		last := (*EpochInfo)(nil)
		for _, ev := range events {
			if ev.Epoch == nil {
				continue
			}
			e := ev.Epoch
			if e.MigrateEvery < a.MinEvery || e.MigrateEvery > a.MaxEvery ||
				e.Migrants < a.MinMigrants || e.Migrants > a.MaxMigrants {
				t.Fatalf("controller left its bounds: %+v under %+v", e, a)
			}
			if e.Divergence < 0 {
				t.Fatalf("negative divergence %v", e.Divergence)
			}
			last = e
		}
		if last == nil {
			t.Fatal("no epoch events")
		}
		if wantEvery != 0 && last.MigrateEvery != wantEvery {
			t.Fatalf("controller settled at every=%d, want %d", last.MigrateEvery, wantEvery)
		}
		if wantMigrants != 0 && last.Migrants != wantMigrants {
			t.Fatalf("controller settled at migrants=%d, want %d", last.Migrants, wantMigrants)
		}
	}
	// A low threshold no run can undercut: every barrier widens, so the
	// controller must settle on (MaxEvery, MinMigrants).
	alwaysLow := Adaptive{Enabled: true, MinEvery: 2, MaxEvery: 20, MinMigrants: 1, MaxMigrants: 8, LowDivergence: 1e6, HighDivergence: 2e6}
	check(run(alwaysLow), alwaysLow, 20, 1)
	// A high threshold every barrier clears: the controller must settle on
	// (MinEvery, MaxMigrants).
	alwaysHigh := Adaptive{Enabled: true, MinEvery: 2, MaxEvery: 20, MinMigrants: 1, MaxMigrants: 8, LowDivergence: 1e-300, HighDivergence: 2e-300}
	check(run(alwaysHigh), alwaysHigh, 2, 8)
}

// TestDivergenceProperties: the statistic is 0 for a single island and
// for identical populations, and is a pure function of quiescent state
// (two computations agree).
func TestDivergenceProperties(t *testing.T) {
	eval, pop := testPopulation(t)
	one, err := New(context.Background(), eval, pop, Config{Islands: 1, Engine: core.Config{Generations: 5, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d := one.Divergence(); d != 0 {
		t.Fatalf("single-island divergence = %v", d)
	}
	three, err := New(context.Background(), eval, pop, Config{Islands: 3, Engine: core.Config{Generations: 5, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Before any evolution every island holds the same evaluated
	// population, so the means coincide exactly.
	if d := three.Divergence(); d != 0 {
		t.Fatalf("identical-population divergence = %v", d)
	}
	if _, err := three.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a, b := three.Divergence(), three.Divergence(); a != b || a < 0 {
		t.Fatalf("divergence is not a pure non-negative function: %v vs %v", a, b)
	}
}

// TestPerIslandAggregatorScoresConsistent: an island running its own
// aggregation must score its population under it — the best individual's
// Score re-derives from its (IL, DR) pair via that island's formula.
func TestPerIslandAggregatorScoresConsistent(t *testing.T) {
	eval, pop := testPopulation(t)
	r, err := New(context.Background(), eval, pop, Config{
		Islands:      2,
		MigrateEvery: 5,
		Engine:       core.Config{Generations: 20, Seed: 11},
		PerIsland:    []core.Config{{}, {Aggregator: "mean"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range res.Islands[1].Population {
		want := (ind.Eval.IL + ind.Eval.DR) / 2
		if ind.Eval.Score != want {
			t.Fatalf("mean-island individual scored %v, want %v", ind.Eval.Score, want)
		}
	}
	best0 := res.Islands[0].Best.Eval
	max := best0.IL
	if best0.DR > max {
		max = best0.DR
	}
	if best0.Score != max {
		t.Fatalf("template island left the max aggregation: %+v", best0)
	}
}

// TestBestJudgedUnderRunMetric: heterogeneous islands score their own
// populations under their own aggregators, so the cross-island winner
// must be chosen — and its reported Score expressed — under the run's
// shared aggregation, never by comparing raw scores from different
// scales.
func TestBestJudgedUnderRunMetric(t *testing.T) {
	eval, pop := testPopulation(t)
	r, err := New(context.Background(), eval, pop, Config{
		Islands:      3,
		MigrateEvery: 10,
		Engine:       core.Config{Generations: 30, Seed: 21}, // shared metric: the evaluator's max
		PerIsland:    []core.Config{{}, {Aggregator: "mean"}, {Aggregator: "weighted:0.3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	shared := eval.Aggregator()
	winner := res.Islands[res.BestIsland].Best
	if want := shared.Combine(winner.Eval.IL, winner.Eval.DR); res.Best.Eval.Score != want {
		t.Fatalf("Best.Score = %v, want the shared-metric value %v", res.Best.Eval.Score, want)
	}
	for i, ir := range res.Islands {
		if s := shared.Combine(ir.Best.Eval.IL, ir.Best.Eval.DR); s < res.Best.Eval.Score {
			t.Fatalf("island %d beats Best under the shared metric: %v < %v", i, s, res.Best.Eval.Score)
		}
	}
	live := r.Best()
	if live.Eval.Score != res.Best.Eval.Score || !live.Data.Equal(res.Best.Data) {
		t.Fatalf("Runner.Best diverges from Result.Best: %v vs %v", live.Eval.Score, res.Best.Eval.Score)
	}
	// The mean island's own wrapper keeps its own scale — only the
	// cross-island presentation is re-combined.
	for _, ind := range res.Islands[1].Population {
		if want := (ind.Eval.IL + ind.Eval.DR) / 2; ind.Eval.Score != want {
			t.Fatalf("island wrapper rescored: %v != %v", ind.Eval.Score, want)
		}
	}
}

// TestSnapshotVersionMinimal: checkpoints carry the lowest version their
// content needs — homogeneous fixed-schedule snapshots stay version 1
// (readable by strict-v1 builds), heterogeneous or adaptive ones move to
// version 2; both resume here.
func TestSnapshotVersionMinimal(t *testing.T) {
	eval, pop := testPopulation(t)
	version := func(cfg Config) int {
		r, err := New(context.Background(), eval, pop, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(eval, bytes.NewReader(buf.Bytes()), cfg); err != nil {
			t.Fatalf("own snapshot does not resume: %v", err)
		}
		return snap.Version
	}
	plain := Config{Islands: 2, MigrateEvery: 5, Engine: core.Config{Generations: 10, Seed: 3}}
	if v := version(plain); v != 1 {
		t.Fatalf("homogeneous fixed-schedule snapshot is version %d, want 1", v)
	}
	if v := version(heteroConfig(10)); v != 2 {
		t.Fatalf("heterogeneous adaptive snapshot is version %d, want 2", v)
	}
	adaptiveOnly := plain
	adaptiveOnly.Adaptive = Adaptive{Enabled: true}
	if v := version(adaptiveOnly); v != 2 {
		t.Fatalf("adaptive snapshot is version %d, want 2", v)
	}
}

// TestPerIslandValidation: malformed heterogeneous configurations are
// rejected at construction.
func TestPerIslandValidation(t *testing.T) {
	eval, pop := testPopulation(t)
	cases := map[string]Config{
		"override count mismatch": {
			Islands: 3, Engine: core.Config{Generations: 5},
			PerIsland: []core.Config{{}, {}},
		},
		"override sets seed": {
			Islands: 2, Engine: core.Config{Generations: 5},
			PerIsland: []core.Config{{}, {Seed: 9}},
		},
		"override sets callback": {
			Islands: 2, Engine: core.Config{Generations: 5},
			PerIsland: []core.Config{{}, {OnGeneration: func(core.GenStats) {}}},
		},
		"override sets init workers": {
			Islands: 2, Engine: core.Config{Generations: 5},
			PerIsland: []core.Config{{}, {InitWorkers: 4}},
		},
		"override bad aggregator": {
			Islands: 2, Engine: core.Config{Generations: 5},
			PerIsland: []core.Config{{}, {Aggregator: "median"}},
		},
		"override bad crossover points": {
			Islands: 2, Engine: core.Config{Generations: 5},
			PerIsland: []core.Config{{}, {CrossoverPoints: -3}},
		},
		"adaptive bounds exclude schedule": {
			Islands: 2, MigrateEvery: 10, Engine: core.Config{Generations: 5},
			Adaptive: Adaptive{Enabled: true, MinEvery: 20, MaxEvery: 40},
		},
		"adaptive migrant bounds exclude schedule": {
			Islands: 2, Migrants: 2, Engine: core.Config{Generations: 5},
			Adaptive: Adaptive{Enabled: true, MinMigrants: 3, MaxMigrants: 8},
		},
		"adaptive thresholds inverted": {
			Islands: 2, Engine: core.Config{Generations: 5},
			Adaptive: Adaptive{Enabled: true, LowDivergence: 0.5, HighDivergence: 0.1},
		},
	}
	for name, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
		if _, err := New(context.Background(), eval, pop, cfg); err == nil {
			t.Errorf("%s: New accepted", name)
		}
	}
	// Validate and New agree on a good heterogeneous config too.
	good := heteroConfig(5)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if _, err := New(context.Background(), eval, pop, good); err != nil {
		t.Fatalf("good config rejected by New: %v", err)
	}
}

// TestNichePresets: every preset yields a valid, template-preserving
// override set; unknown names and bad counts are rejected.
func TestNichePresets(t *testing.T) {
	if _, err := NichesByName("explore-exploit", 0); err == nil {
		t.Error("zero islands accepted")
	}
	if _, err := NichesByName("does-not-exist", 4); err == nil {
		t.Error("unknown preset accepted")
	}
	if names := NicheNames(); len(names) < 3 {
		t.Fatalf("NicheNames = %v", names)
	}
	for _, name := range NicheNames() {
		for _, n := range []int{1, 2, 4, 7} {
			overrides, err := NichesByName(name, n)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, n, err)
			}
			if len(overrides) != n {
				t.Fatalf("%s/%d: %d overrides", name, n, len(overrides))
			}
			if configToJSON(overrides[0]) != (islandConfigJSON{}) {
				t.Fatalf("%s/%d: island 0 does not inherit the template: %+v", name, n, overrides[0])
			}
			cfg := Config{
				Islands:   n,
				Engine:    core.Config{Generations: 5, Seed: 3},
				PerIsland: overrides,
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%s/%d: preset invalid: %v", name, n, err)
			}
		}
	}
	// A niched run must actually differ from the homogeneous one (with
	// more than one island and a preset that changes anything).
	overrides, err := NichesByName("explore-exploit", 3)
	if err != nil {
		t.Fatal(err)
	}
	hom := Config{Islands: 3, MigrateEvery: 10, Engine: core.Config{Generations: 30, Seed: 5}}
	niched := hom
	niched.PerIsland = overrides
	_, homRes := collectEvents(t, hom)
	_, nichedRes := collectEvents(t, niched)
	diverged := false
	for i := 1; i < 3 && !diverged; i++ {
		x, y := stripTimes(homRes.Islands[i].History), stripTimes(nichedRes.Islands[i].History)
		for g := range x {
			if g >= len(y) || x[g] != y[g] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("explore-exploit niches left every island on the homogeneous trajectory")
	}
}

// TestHeterogeneousCancellationNoLeak extends the PR 2 cancellation
// property to niched adaptive runs: a mid-epoch cancel — landing while
// islands with different configs and the adaptive controller are in
// flight — must surface a valid partial result, a recorded stop reason,
// and leak no goroutines. Run under -race in CI.
func TestHeterogeneousCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	eval, pop := testPopulation(t)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	seen := 0
	cfg := heteroConfig(1 << 20)
	cfg.MigrateEvery = 10
	cfg.OnEvent = func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		seen++
		if seen == 37 {
			cancel()
		}
	}
	r, err := New(context.Background(), eval, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(ctx)
	if err == nil {
		t.Fatal("cancelled heterogeneous run returned nil error")
	}
	if res == nil || res.Best == nil {
		t.Fatal("cancelled heterogeneous run lost its partial result")
	}
	if res.StopReason != core.StopCancelled {
		t.Fatalf("stop reason = %q", res.StopReason)
	}
	total := 0
	for i, ir := range res.Islands {
		if len(ir.History) != ir.Generations {
			t.Fatalf("island %d: history %d vs generations %d", i, len(ir.History), ir.Generations)
		}
		total += ir.Generations
	}
	if total == 0 {
		t.Fatal("no generations executed despite 37 observed events")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before run, %d after", before, after)
	}
}

// TestMergedRoundTripsThroughSnapshotJSON: the serialized per-island
// override subset reproduces the exact merged configuration — the
// property heterogeneous Resume relies on.
func TestMergedRoundTripsThroughSnapshotJSON(t *testing.T) {
	overrides := []core.Config{
		{},
		{MutationRate: core.AllCrossover, Selection: core.SelectUniform, Crowding: core.CrowdNearestParent},
		{MutationRate: 0.65, LeaderFraction: 0.3, CrossoverPoints: 5, Aggregator: "weighted:0.3",
			Generations: 123, NoImprovementWindow: 9, ForceOp: "mutation", DisableDelta: true, LazyPrepare: true},
	}
	template := core.Config{Generations: 40, Seed: 99, InitWorkers: 4}
	for i, ov := range overrides {
		back, err := configFromJSON(configToJSON(ov))
		if err != nil {
			t.Fatalf("override %d: %v", i, err)
		}
		a, b := template.Merged(ov), template.Merged(back)
		if configToJSON(a) != configToJSON(b) || a.Seed != b.Seed || a.InitWorkers != b.InitWorkers {
			t.Fatalf("override %d did not round-trip:\nwant %+v\ngot  %+v", i, a, b)
		}
	}
	if _, err := configFromJSON(islandConfigJSON{Selection: "nope"}); err == nil {
		t.Error("bad serialized selection accepted")
	}
	if _, err := configFromJSON(islandConfigJSON{Crowding: "nope"}); err == nil {
		t.Error("bad serialized crowding accepted")
	}
}
