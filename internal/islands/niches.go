package islands

// Niche presets: ready-made per-island override spreads for Config.
// PerIsland. A niched (heterogeneous) island model runs distinct search
// behaviors side by side — exploitative and explorative islands, several
// selection pressures, several fitness aggregations — and lets migration
// move good genes between the niches, which explores the
// risk/information-loss trade-off from several biases at once instead of
// multiplying one bias by N.

import (
	"fmt"
	"sort"

	"evoprot/internal/core"
)

// nichePresets maps each preset name to its override builder. Island 0
// always stays on the shared template: it keeps the top-level seed, so
// the best-known baseline trajectory is always part of the run.
var nichePresets = map[string]func(n int) []core.Config{
	// explore-exploit spreads islands from exploitative to explorative:
	// mutation rates rise from 0.25 to 0.75, leader groups widen, and the
	// most explorative islands move to rank then uniform selection with a
	// more disruptive 4-point crossover.
	"explore-exploit": func(n int) []core.Config {
		out := make([]core.Config, n)
		for i := 1; i < n; i++ {
			t := float64(i) / float64(n-1)
			out[i].MutationRate = 0.25 + 0.5*t
			out[i].LeaderFraction = 0.05 + 0.2*t
			if t > 0.5 {
				out[i].Selection = core.SelectRank
				out[i].CrossoverPoints = 4
			}
			if t > 0.75 {
				out[i].Selection = core.SelectUniform
			}
		}
		return out
	},
	// selection-sweep cycles the reproduction-selection policies across
	// islands: the template policy, then rank, then uniform.
	"selection-sweep": func(n int) []core.Config {
		out := make([]core.Config, n)
		for i := 1; i < n; i++ {
			switch i % 3 {
			case 1:
				out[i].Selection = core.SelectRank
			case 2:
				out[i].Selection = core.SelectUniform
			}
		}
		return out
	},
	// scalar-pareto splits the archipelago between the two selection
	// objectives: even islands keep the template's scalarized search, odd
	// islands run NSGA-II Pareto selection. Migration re-scores migrants
	// under the destination's objective, so scalarized islands feed their
	// best compromises into the front builders and Pareto islands send
	// non-dominated spread back into the scalar hill-climbs.
	"scalar-pareto": func(n int) []core.Config {
		out := make([]core.Config, n)
		for i := 1; i < n; i += 2 {
			out[i].Objective = core.ObjectivePareto
		}
		return out
	},
	// aggregator-sweep gives islands different fitness aggregations —
	// balanced (the template), mean, euclidean, privacy-leaning and
	// utility-leaning weighted sums — so each island optimizes a different
	// point of the risk/information-loss trade-off and migration exchanges
	// protections across those biases.
	"aggregator-sweep": func(n int) []core.Config {
		aggs := []string{"", "mean", "euclidean", "weighted:0.3", "weighted:0.7"}
		out := make([]core.Config, n)
		for i := 1; i < n; i++ {
			out[i].Aggregator = aggs[i%len(aggs)]
		}
		return out
	},
}

// NicheNames returns the built-in niche preset names, sorted.
func NicheNames() []string {
	names := make([]string, 0, len(nichePresets))
	for name := range nichePresets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NichesByName builds the named preset's per-island overrides for n
// islands, ready for Config.PerIsland. Island 0 always inherits the
// template unchanged (preserving the baseline trajectory of the top-level
// seed); with one island every preset degenerates to the plain template.
// The overrides only set engine knobs — Merged overlays them onto
// whatever template the run configures.
func NichesByName(name string, n int) ([]core.Config, error) {
	if n < 1 {
		return nil, fmt.Errorf("islands: niches need at least 1 island, got %d", n)
	}
	preset, ok := nichePresets[name]
	if !ok {
		return nil, fmt.Errorf("islands: unknown niche preset %q (want %v)", name, NicheNames())
	}
	return preset(n), nil
}
