package islands

import (
	"bytes"
	"context"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"time"

	"evoprot/internal/core"
	"evoprot/internal/datagen"
	"evoprot/internal/protection"
	"evoprot/internal/score"
)

func testPopulation(t testing.TB) (*score.Evaluator, []*core.Individual) {
	t.Helper()
	d := datagen.MustByName("flare", 90, 23)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := score.NewEvaluator(d, attrs, score.Config{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{
		"micro:k=2", "micro:k=4", "micro:k=6", "micro:k=8",
		"top:q=0.1", "top:q=0.25", "bottom:q=0.1", "bottom:q=0.25",
		"recode:depth=1", "recode:depth=2",
		"rankswap:p=5", "rankswap:p=15",
		"pram:theta=0.9", "pram:theta=0.6",
	}
	rng := rand.New(rand.NewPCG(77, 1))
	pop := make([]*core.Individual, len(specs))
	for i, s := range specs {
		m := protection.Must(s)
		masked, err := m.Protect(d, attrs, rng)
		if err != nil {
			t.Fatal(err)
		}
		pop[i] = core.NewIndividual(masked, protection.String(m))
	}
	return eval, pop
}

func stripTimes(h []core.GenStats) []core.GenStats {
	out := make([]core.GenStats, len(h))
	for i, gs := range h {
		gs.EvalTime, gs.TotalTime = 0, 0
		out[i] = gs
	}
	return out
}

// TestSingleIslandMatchesEngineRun is the redesign's compatibility
// property: a 1-island run must reproduce the plain core.Engine trajectory
// for the same seed, generation by generation.
func TestSingleIslandMatchesEngineRun(t *testing.T) {
	for _, seed := range []uint64{7, 42, 1001} {
		eval, pop := testPopulation(t)
		engine, err := core.NewEngine(eval, pop, core.Config{Generations: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := engine.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(context.Background(), eval, pop, Config{Islands: 1, Engine: core.Config{Generations: 40, Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		a, b := stripTimes(ref.History), stripTimes(res.Islands[0].History)
		if len(a) != len(b) {
			t.Fatalf("seed %d: history lengths %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d generation %d diverged:\nengine: %+v\nisland: %+v", seed, i+1, a[i], b[i])
			}
		}
		if !ref.Best.Data.Equal(res.Best.Data) {
			t.Fatalf("seed %d: best individuals diverged", seed)
		}
	}
}

// TestMultiIslandDeterminism: a fixed top-level seed reproduces the whole
// parallel run — per-island histories, migrations, and best — regardless
// of goroutine scheduling.
func TestMultiIslandDeterminism(t *testing.T) {
	run := func() *Result {
		eval, pop := testPopulation(t)
		r, err := New(context.Background(), eval, pop, Config{
			Islands:      3,
			MigrateEvery: 10,
			Migrants:     2,
			Engine:       core.Config{Generations: 40, Seed: 42},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Migrations != b.Migrations {
		t.Fatalf("migrations diverged: %d vs %d", a.Migrations, b.Migrations)
	}
	if a.BestIsland != b.BestIsland || a.Best.Eval.Score != b.Best.Eval.Score {
		t.Fatalf("best diverged: island %d score %v vs island %d score %v",
			a.BestIsland, a.Best.Eval.Score, b.BestIsland, b.Best.Eval.Score)
	}
	for i := range a.Islands {
		x, y := stripTimes(a.Islands[i].History), stripTimes(b.Islands[i].History)
		if len(x) != len(y) {
			t.Fatalf("island %d history lengths %d vs %d", i, len(x), len(y))
		}
		for g := range x {
			if x[g] != y[g] {
				t.Fatalf("island %d generation %d diverged", i, g+1)
			}
		}
	}
	if !a.Best.Data.Equal(b.Best.Data) {
		t.Fatal("best individual data diverged between identical runs")
	}
}

// TestIslandsDivergeAndExchange: different islands must walk different
// trajectories (derived seeds), and with a generous schedule some
// migration should be accepted.
func TestIslandsDivergeAndExchange(t *testing.T) {
	eval, pop := testPopulation(t)
	r, err := New(context.Background(), eval, pop, Config{
		Islands:      3,
		MigrateEvery: 5,
		Migrants:     3,
		Topology:     Broadcast,
		Engine:       core.Config{Generations: 60, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 1; i < len(res.Islands); i++ {
		x, y := res.Islands[0].History, res.Islands[i].History
		for g := range x {
			if g >= len(y) || x[g].Op != y[g].Op || x[g].Min != y[g].Min {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("all islands walked identical trajectories; derived seeds are broken")
	}
	if res.Evaluations <= len(pop) {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	if res.StopReason != core.StopCompleted {
		t.Fatalf("stop reason = %q", res.StopReason)
	}
	for i, ir := range res.Islands {
		if ir.Generations != 60 {
			t.Fatalf("island %d executed %d generations, want 60", i, ir.Generations)
		}
	}
}

// TestRingVsBroadcastDiffer: the two topologies must be distinguishable on
// a schedule with enough migration pressure.
func TestRingVsBroadcastDiffer(t *testing.T) {
	run := func(topo Topology) *Result {
		eval, pop := testPopulation(t)
		r, err := New(context.Background(), eval, pop, Config{
			Islands: 3, MigrateEvery: 5, Migrants: 3, Topology: topo,
			Engine: core.Config{Generations: 60, Seed: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ring, bcast := run(Ring), run(Broadcast)
	// Identical configurations except topology: if every island's history
	// matches exactly, migration had no effect and the topologies are not
	// actually wired through.
	same := ring.Migrations == bcast.Migrations
	for i := range ring.Islands {
		x, y := stripTimes(ring.Islands[i].History), stripTimes(bcast.Islands[i].History)
		if len(x) != len(y) {
			same = false
			break
		}
		for g := range x {
			if x[g] != y[g] {
				same = false
				break
			}
		}
	}
	if same {
		t.Skip("ring and broadcast coincided on this seed; acceptable but unusual")
	}
}

// TestCancellationReturnsPartialResult: a mid-run cancel must surface a
// valid partial result — correct history length, a recorded stop reason —
// and leak no goroutines.
func TestCancellationReturnsPartialResult(t *testing.T) {
	before := runtime.NumGoroutine()
	eval, pop := testPopulation(t)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	seen := 0
	r, err := New(context.Background(), eval, pop, Config{
		Islands:      3,
		MigrateEvery: 10,
		Engine:       core.Config{Generations: 1 << 20, Seed: 3},
		OnEvent: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			seen++
			if seen == 25 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if res == nil {
		t.Fatal("cancelled run returned nil result")
	}
	if res.StopReason != core.StopCancelled {
		t.Fatalf("stop reason = %q, want %q", res.StopReason, core.StopCancelled)
	}
	total := 0
	for i, ir := range res.Islands {
		if len(ir.History) != ir.Generations {
			t.Fatalf("island %d: history %d vs generations %d", i, len(ir.History), ir.Generations)
		}
		if ir.StopReason != core.StopCancelled {
			t.Fatalf("island %d stop reason = %q", i, ir.StopReason)
		}
		total += ir.Generations
	}
	if total == 0 {
		t.Fatal("cancelled run executed no generations despite 25 observed events")
	}
	if res.Best == nil {
		t.Fatal("cancelled run has no best individual")
	}
	// All island goroutines must have exited when Run returned.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before run, %d after", before, after)
	}
}

// TestDeadlineStopReason: an expired deadline maps to StopDeadline.
func TestDeadlineStopReason(t *testing.T) {
	eval, pop := testPopulation(t)
	r, err := New(context.Background(), eval, pop, Config{Islands: 2, Engine: core.Config{Generations: 1 << 20, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := r.Run(ctx)
	if err == nil {
		t.Fatal("deadline run returned nil error")
	}
	if res.StopReason != core.StopDeadline {
		t.Fatalf("stop reason = %q, want %q", res.StopReason, core.StopDeadline)
	}
}

// TestEventFeed: the channel form must deliver per-island ordered events
// ending in one Done event per island, and close when the run finishes.
func TestEventFeed(t *testing.T) {
	eval, pop := testPopulation(t)
	ch := make(chan Event, 256)
	r, err := New(context.Background(), eval, pop, Config{
		Islands:      2,
		MigrateEvery: 5,
		Engine:       core.Config{Generations: 12, Seed: 11},
		Events:       ch,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	lastGen := map[int]int{}
	doneSeen := map[int]bool{}
	go func() {
		defer wg.Done()
		for ev := range ch {
			if ev.Done {
				doneSeen[ev.Island] = true
				if ev.Stop != core.StopCompleted {
					t.Errorf("island %d done with stop %q", ev.Island, ev.Stop)
				}
				continue
			}
			if ev.Stats.Gen != lastGen[ev.Island]+1 {
				t.Errorf("island %d events out of order: %d after %d", ev.Island, ev.Stats.Gen, lastGen[ev.Island])
			}
			lastGen[ev.Island] = ev.Stats.Gen
		}
	}()
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // range loop ended => channel was closed
	for i := 0; i < 2; i++ {
		if lastGen[i] != 12 {
			t.Fatalf("island %d streamed %d generations, want 12", i, lastGen[i])
		}
		if !doneSeen[i] {
			t.Fatalf("island %d never sent a Done event", i)
		}
	}
}

// TestStagnationStopsIslands: with a tight window every island stops early
// and the run reports stagnation.
func TestStagnationStopsIslands(t *testing.T) {
	eval, pop := testPopulation(t)
	r, err := New(context.Background(), eval, pop, Config{
		Islands:      2,
		MigrateEvery: 50,
		Engine:       core.Config{Generations: 5000, Seed: 13, NoImprovementWindow: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations == 5000 {
		t.Skip("no island stagnated in 5000 generations; extremely unlikely but not a failure")
	}
	if res.StopReason != core.StopStagnated {
		t.Fatalf("stop reason = %q", res.StopReason)
	}
}

// TestSnapshotResume: a resumed multi-island runner continues every
// island's identical stochastic trajectory.
func TestSnapshotResume(t *testing.T) {
	const n, m = 20, 20
	cfg := func(gens int) Config {
		return Config{Islands: 2, MigrateEvery: 10, Engine: core.Config{Generations: gens, Seed: 17}}
	}
	eval, pop := testPopulation(t)
	ref, err := New(context.Background(), eval, pop, cfg(n+m))
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	first, err := New(context.Background(), eval, pop, cfg(n))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(eval, &buf, cfg(m))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Islands() != 2 || resumed.Generation() != n {
		t.Fatalf("resumed %d islands at generation %d", resumed.Islands(), resumed.Generation())
	}
	resRes, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range refRes.Islands {
		a := stripTimes(refRes.Islands[i].History)
		b := stripTimes(resRes.Islands[i].History)
		if len(a) != n+m || len(b) != n+m {
			t.Fatalf("island %d history lengths %d vs %d, want %d", i, len(a), len(b), n+m)
		}
		for g := range a {
			if a[g] != b[g] {
				t.Fatalf("island %d generation %d diverged after resume", i, g+1)
			}
		}
	}
	if !refRes.Best.Data.Equal(resRes.Best.Data) {
		t.Fatal("best diverged after snapshot/resume")
	}
}

// TestResumeRejectsCorruptSnapshots: version and shape checks.
func TestResumeRejectsCorruptSnapshots(t *testing.T) {
	eval, pop := testPopulation(t)
	r, err := New(context.Background(), eval, pop, Config{Islands: 2, Engine: core.Config{Generations: 5, Seed: 19}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	for name, payload := range map[string]string{
		"not json":      "{broken",
		"wrong version": `{"version":99,"islands":1,"engines":[]}`,
		"shape lie":     `{"version":1,"islands":3,"engines":[]}`,
	} {
		if _, err := Resume(eval, bytes.NewReader([]byte(payload)), Config{Engine: core.Config{Generations: 5}}); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
	if _, err := Resume(eval, bytes.NewReader([]byte(good)), Config{Engine: core.Config{Generations: 5, Seed: 19}}); err != nil {
		t.Errorf("good snapshot rejected: %v", err)
	}
}

// TestConfigValidation: bad knobs are rejected, zero values default.
func TestConfigValidation(t *testing.T) {
	eval, pop := testPopulation(t)
	for name, cfg := range map[string]Config{
		"negative islands":  {Islands: -1, Engine: core.Config{Generations: 5}},
		"negative epoch":    {MigrateEvery: -5, Engine: core.Config{Generations: 5}},
		"negative migrants": {Migrants: -2, Engine: core.Config{Generations: 5}},
		"bad topology":      {Topology: Topology(9), Engine: core.Config{Generations: 5}},
		"bad engine":        {Engine: core.Config{Generations: -3}},
	} {
		if _, err := New(context.Background(), eval, pop, cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	r, err := New(context.Background(), eval, pop, Config{Engine: core.Config{Generations: 5, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Islands() != 1 {
		t.Fatalf("default islands = %d", r.Islands())
	}
	if r.cfg.MigrateEvery != DefaultMigrateEvery || r.cfg.Migrants != DefaultMigrants {
		t.Fatalf("defaults not applied: %+v", r.cfg)
	}
	if topo, err := TopologyByName("ring"); err != nil || topo != Ring {
		t.Errorf("TopologyByName(ring) = %v, %v", topo, err)
	}
	if topo, err := TopologyByName("broadcast"); err != nil || topo != Broadcast {
		t.Errorf("TopologyByName(broadcast) = %v, %v", topo, err)
	}
	if Ring.String() != "ring" || Broadcast.String() != "broadcast" || Topology(9).String() == "" {
		t.Error("topology naming broken")
	}
	if _, err := TopologyByName("star"); err == nil {
		t.Error("unknown topology name accepted")
	}
}

// TestEventSequenceNumbers: the feed numbers events contiguously in
// emission order from Config.FirstSeq, across islands and Done events —
// the offset space replayable event logs rely on.
func TestEventSequenceNumbers(t *testing.T) {
	for _, first := range []uint64{0, 1234} {
		eval, pop := testPopulation(t)
		var events []Event
		r, err := New(context.Background(), eval, pop, Config{
			Islands:      3,
			MigrateEvery: 4,
			Engine:       core.Config{Generations: 10, Seed: 5},
			OnEvent:      func(ev Event) { events = append(events, ev) },
			FirstSeq:     first,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		want := 3*10 + 3 // per-generation events plus one Done per island
		if len(events) != want {
			t.Fatalf("FirstSeq %d: got %d events, want %d", first, len(events), want)
		}
		for i, ev := range events {
			if ev.Seq != first+uint64(i) {
				t.Fatalf("event %d has Seq %d, want %d", i, ev.Seq, first+uint64(i))
			}
		}
	}
}

// TestEmitInjectsRunnerLevelEvents: OnEpoch hooks can push their own
// events through the feed, serialized and numbered with island traffic.
func TestEmitInjectsRunnerLevelEvents(t *testing.T) {
	eval, pop := testPopulation(t)
	var (
		mu     sync.Mutex
		events []Event
	)
	r, err := New(context.Background(), eval, pop, Config{
		Islands:      2,
		MigrateEvery: 5,
		Engine:       core.Config{Generations: 10, Seed: 9},
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
		OnEpoch: func(ir *Runner) { ir.Emit(Event{Island: -1, Err: "synthetic"}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	injected := 0
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has Seq %d; injected events must share the numbering", i, ev.Seq)
		}
		if ev.Island == -1 {
			injected++
			if ev.Err != "synthetic" {
				t.Fatalf("injected event lost its payload: %+v", ev)
			}
		}
	}
	if injected == 0 {
		t.Fatal("no injected runner-level events observed")
	}
}

// TestPeekReadsCheckpointMetadata: Peek reports island count and the
// generation marker without an evaluator, matching what a Resume would
// report.
func TestPeekReadsCheckpointMetadata(t *testing.T) {
	eval, pop := testPopulation(t)
	r, err := New(context.Background(), eval, pop, Config{
		Islands:      3,
		MigrateEvery: 5,
		Engine:       core.Config{Generations: 17, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	meta, err := Peek(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Islands != 3 {
		t.Fatalf("Peek islands = %d, want 3", meta.Islands)
	}
	if meta.Generation != r.Generation() {
		t.Fatalf("Peek generation = %d, runner reports %d", meta.Generation, r.Generation())
	}
	if meta.MinGeneration != meta.Generation {
		t.Fatalf("barrier checkpoint has MinGeneration %d != Generation %d", meta.MinGeneration, meta.Generation)
	}
	if _, err := Peek(bytes.NewReader([]byte("{\"version\":99}\n"))); err == nil {
		t.Fatal("Peek accepted a snapshot from the future")
	}
}
