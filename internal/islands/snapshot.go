package islands

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"evoprot/internal/core"
	"evoprot/internal/score"
)

// Multi-island checkpoints wrap one core engine snapshot per island plus
// the coordinator state worth persisting: the adaptive controller's
// effective schedule (required for bit-reproducible resumption of
// adaptive runs) and the per-island configuration overrides of
// heterogeneous runs (so a bare Resume without a PerIsland config rebuilds
// the same niches). Budgets stay per-Run-call — resuming with -gens N runs
// N more generations, matching the single-engine contract — and the
// migration schedule restarts from the next barrier. Because OnEpoch — the
// checkpointing hook — only fires at barriers, a resumed run's epochs stay
// aligned with the schedule.

// snapshotVersion guards against incompatible checkpoint layouts.
// Version 3 added the Pareto-mode objective fields to island config
// overrides (a pre-Pareto build would silently resume such a niche as
// scalarized, a different trajectory); version 2 added the
// adaptive-migration controller state and the per-island configuration
// overrides; version-1 snapshots (homogeneous, fixed-schedule) still
// load.
const snapshotVersion = 3

// minSnapshotVersion is the oldest layout Resume still reads.
const minSnapshotVersion = 1

type snapshotJSON struct {
	Version int `json:"version"`
	Islands int `json:"islands"`
	// Adaptive carries the controller's effective schedule; present only
	// on adaptive runs.
	Adaptive *adaptiveStateJSON `json:"adaptive,omitempty"`
	// Configs carries the per-island overrides of heterogeneous runs,
	// aligned with Engines; empty on homogeneous runs.
	Configs []islandConfigJSON `json:"configs,omitempty"`
	Engines []json.RawMessage  `json:"engines"`
}

type adaptiveStateJSON struct {
	MigrateEvery int `json:"migrate_every"`
	Migrants     int `json:"migrants"`
}

// islandConfigJSON is the serializable subset of a core.Config override —
// exactly the knobs PerIsland may set. Zero values mean "inherit the
// template", matching the Merged contract, so round-tripping an override
// through JSON reproduces the identical merged configuration. A custom
// programmatic aggregator cannot be serialized; PerIsland aggregators are
// names, which round-trip exactly.
type islandConfigJSON struct {
	Generations         int     `json:"generations,omitempty"`
	MutationRate        float64 `json:"mutation_rate,omitempty"`
	LeaderFraction      float64 `json:"leader_fraction,omitempty"`
	Selection           string  `json:"selection,omitempty"`
	Crowding            string  `json:"crowding,omitempty"`
	CrossoverPoints     int     `json:"crossover_points,omitempty"`
	NoImprovementWindow int     `json:"early_stop,omitempty"`
	ForceOp             string  `json:"force_op,omitempty"`
	Aggregator          string  `json:"aggregator,omitempty"`
	Objective           string  `json:"objective,omitempty"`
	ParetoRefIL         float64 `json:"pareto_ref_il,omitempty"`
	ParetoRefDR         float64 `json:"pareto_ref_dr,omitempty"`
	DisableDelta        bool    `json:"disable_delta,omitempty"`
	LazyPrepare         bool    `json:"lazy_prepare,omitempty"`
}

// needsV3 reports whether an override carries the objective fields that
// only version-3 readers understand.
func (j islandConfigJSON) needsV3() bool {
	return j.Objective != "" || j.ParetoRefIL != 0 || j.ParetoRefDR != 0
}

func configToJSON(c core.Config) islandConfigJSON {
	j := islandConfigJSON{
		Generations:         c.Generations,
		MutationRate:        c.MutationRate,
		LeaderFraction:      c.LeaderFraction,
		CrossoverPoints:     c.CrossoverPoints,
		NoImprovementWindow: c.NoImprovementWindow,
		ForceOp:             c.ForceOp,
		Aggregator:          c.Aggregator,
		Objective:           c.Objective,
		ParetoRefIL:         c.ParetoRef.IL,
		ParetoRefDR:         c.ParetoRef.DR,
		DisableDelta:        c.DisableDelta,
		LazyPrepare:         c.LazyPrepare,
	}
	if c.Selection != 0 {
		j.Selection = c.Selection.String()
	}
	if c.Crowding != 0 {
		j.Crowding = c.Crowding.String()
	}
	return j
}

func configFromJSON(j islandConfigJSON) (core.Config, error) {
	sel, err := core.SelectionByName(j.Selection)
	if err != nil {
		return core.Config{}, err
	}
	crowd, err := core.CrowdingByName(j.Crowding)
	if err != nil {
		return core.Config{}, err
	}
	obj, err := core.ObjectiveByName(j.Objective)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Generations:         j.Generations,
		MutationRate:        j.MutationRate,
		LeaderFraction:      j.LeaderFraction,
		Selection:           sel,
		Crowding:            crowd,
		CrossoverPoints:     j.CrossoverPoints,
		NoImprovementWindow: j.NoImprovementWindow,
		ForceOp:             j.ForceOp,
		Aggregator:          j.Aggregator,
		Objective:           obj,
		ParetoRef:           score.Pair{IL: j.ParetoRefIL, DR: j.ParetoRefDR},
		DisableDelta:        j.DisableDelta,
		LazyPrepare:         j.LazyPrepare,
	}, nil
}

// Snapshot serializes every island's engine state plus the coordinator's
// adaptive schedule and per-island overrides. Only safe while the islands
// are quiescent: between runs, or inside Config.OnEpoch.
func (r *Runner) Snapshot(w io.Writer) error {
	snap := snapshotJSON{Version: snapshotVersion, Islands: len(r.engines)}
	if r.cfg.Adaptive.Enabled {
		snap.Adaptive = &adaptiveStateJSON{MigrateEvery: r.effEvery, Migrants: r.effMigrants}
	}
	if len(r.cfg.PerIsland) > 0 {
		snap.Configs = make([]islandConfigJSON, len(r.cfg.PerIsland))
		for i, ov := range r.cfg.PerIsland {
			snap.Configs[i] = configToJSON(ov)
		}
	}
	// Stamp the lowest version the payload needs, so checkpoints stay
	// readable by the oldest build that can resume them faithfully: plain
	// homogeneous fixed-schedule runs are version 1, adaptive or
	// heterogeneous runs version 2, and only overrides carrying Pareto
	// objective fields require version 3.
	if snap.Adaptive == nil && snap.Configs == nil {
		snap.Version = minSnapshotVersion
	} else {
		snap.Version = 2
		for _, j := range snap.Configs {
			if j.needsV3() {
				snap.Version = snapshotVersion
				break
			}
		}
	}
	for i, e := range r.engines {
		var buf bytes.Buffer
		if err := e.Snapshot(&buf); err != nil {
			return fmt.Errorf("islands: snapshotting island %d: %w", i, err)
		}
		snap.Engines = append(snap.Engines, json.RawMessage(buf.Bytes()))
	}
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("islands: encoding snapshot: %w", err)
	}
	return nil
}

// Resume rebuilds a runner from a Snapshot. The evaluator must wrap the
// same original dataset the snapshot was taken against; the island count
// comes from the snapshot (cfg.Islands is ignored), and every island
// continues its identical stochastic trajectory. cfg.Engine.Generations is
// the per-island budget for the next Run call. A heterogeneous snapshot's
// per-island overrides are applied automatically when cfg.PerIsland is
// empty (pass overrides explicitly to supersede them), and an adaptive
// snapshot's effective schedule is restored whenever cfg.Adaptive is
// enabled, so a resumed adaptive run continues the controller where it
// left off.
func Resume(eval *score.Evaluator, rd io.Reader, cfg Config) (*Runner, error) {
	var snap snapshotJSON
	if err := json.NewDecoder(rd).Decode(&snap); err != nil {
		return nil, fmt.Errorf("islands: decoding snapshot: %w", err)
	}
	if snap.Version < minSnapshotVersion || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("islands: snapshot version %d, this build reads %d..%d", snap.Version, minSnapshotVersion, snapshotVersion)
	}
	if snap.Islands < 1 || snap.Islands != len(snap.Engines) {
		return nil, fmt.Errorf("islands: snapshot declares %d islands but carries %d engines", snap.Islands, len(snap.Engines))
	}
	if len(snap.Configs) != 0 && len(snap.Configs) != snap.Islands {
		return nil, fmt.Errorf("islands: snapshot carries %d island configs for %d islands", len(snap.Configs), snap.Islands)
	}
	cfg.Islands = snap.Islands
	if len(cfg.PerIsland) == 0 && len(snap.Configs) > 0 {
		cfg.PerIsland = make([]core.Config, len(snap.Configs))
		for i, j := range snap.Configs {
			ov, err := configFromJSON(j)
			if err != nil {
				return nil, fmt.Errorf("islands: snapshot island %d config: %w", i, err)
			}
			cfg.PerIsland[i] = ov
		}
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	engines := make([]*core.Engine, snap.Islands)
	cfgs := make([]core.Config, snap.Islands)
	popSize := 0
	for i, raw := range snap.Engines {
		// The derived per-island seed is cosmetic here: the RNG stream is
		// restored from the snapshot.
		cfgs[i] = c.islandConfig(i)
		e, err := core.Resume(eval, bytes.NewReader(raw), cfgs[i])
		if err != nil {
			return nil, fmt.Errorf("islands: resuming island %d: %w", i, err)
		}
		engines[i] = e
		if n := len(e.Population()); n > popSize {
			popSize = n
		}
	}
	r := &Runner{
		cfg: c, engines: engines, perIsland: cfgs, agg: runAggregator(eval, c), popSize: popSize,
		effEvery: c.MigrateEvery, effMigrants: c.Migrants, seq: c.FirstSeq,
	}
	if c.Adaptive.Enabled && snap.Adaptive != nil {
		r.effEvery = min(max(snap.Adaptive.MigrateEvery, c.Adaptive.MinEvery), c.Adaptive.MaxEvery)
		r.effMigrants = min(max(snap.Adaptive.Migrants, c.Adaptive.MinMigrants), c.Adaptive.MaxMigrants)
	}
	return r, nil
}

// Meta describes a checkpoint without resuming it: the island count and
// the largest per-island generation count executed when the snapshot was
// taken. Services use it to size a resumed job's remaining budget before
// paying for an evaluator-backed resume.
type Meta struct {
	// Islands is the number of islands the checkpoint carries.
	Islands int
	// Generation is the largest per-island generation executed — the same
	// number Runner.Generation reports right after a Resume.
	Generation int
	// MinGeneration is the smallest per-island generation. Barrier
	// checkpoints have every island aligned (MinGeneration ==
	// Generation); cancellation-point checkpoints taken mid-epoch can
	// differ. Budget arithmetic for a resume should count from
	// MinGeneration so no island ends up short of its configured budget.
	MinGeneration int
	// Heterogeneous reports whether the checkpoint carries per-island
	// configuration overrides.
	Heterogeneous bool
}

// Peek reads a checkpoint's metadata without rebuilding engines; the
// engine payloads are decoded only far enough to find their generation
// counters.
func Peek(rd io.Reader) (Meta, error) {
	var snap snapshotJSON
	if err := json.NewDecoder(rd).Decode(&snap); err != nil {
		return Meta{}, fmt.Errorf("islands: decoding snapshot: %w", err)
	}
	if snap.Version < minSnapshotVersion || snap.Version > snapshotVersion {
		return Meta{}, fmt.Errorf("islands: snapshot version %d, this build reads %d..%d", snap.Version, minSnapshotVersion, snapshotVersion)
	}
	if snap.Islands < 1 || snap.Islands != len(snap.Engines) {
		return Meta{}, fmt.Errorf("islands: snapshot declares %d islands but carries %d engines", snap.Islands, len(snap.Engines))
	}
	m := Meta{Islands: snap.Islands, Heterogeneous: len(snap.Configs) > 0}
	for i, raw := range snap.Engines {
		var hdr struct {
			Gen int `json:"gen"`
		}
		if err := json.Unmarshal(raw, &hdr); err != nil {
			return Meta{}, fmt.Errorf("islands: peeking island %d: %w", i, err)
		}
		if hdr.Gen > m.Generation {
			m.Generation = hdr.Gen
		}
		if i == 0 || hdr.Gen < m.MinGeneration {
			m.MinGeneration = hdr.Gen
		}
	}
	return m, nil
}
