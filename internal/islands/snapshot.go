package islands

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"evoprot/internal/core"
	"evoprot/internal/score"
)

// Multi-island checkpoints wrap one core engine snapshot per island. The
// coordinator itself keeps no state worth persisting: budgets are
// per-Run-call (resuming with -gens N runs N more generations, matching
// the single-engine contract) and the migration schedule restarts from the
// next barrier. Because OnEpoch — the checkpointing hook — only fires at
// barriers, a resumed run's epochs stay aligned with the schedule.

// snapshotVersion guards against incompatible checkpoint layouts.
const snapshotVersion = 1

type snapshotJSON struct {
	Version int               `json:"version"`
	Islands int               `json:"islands"`
	Engines []json.RawMessage `json:"engines"`
}

// Snapshot serializes every island's engine state. Only safe while the
// islands are quiescent: between runs, or inside Config.OnEpoch.
func (r *Runner) Snapshot(w io.Writer) error {
	snap := snapshotJSON{Version: snapshotVersion, Islands: len(r.engines)}
	for i, e := range r.engines {
		var buf bytes.Buffer
		if err := e.Snapshot(&buf); err != nil {
			return fmt.Errorf("islands: snapshotting island %d: %w", i, err)
		}
		snap.Engines = append(snap.Engines, json.RawMessage(buf.Bytes()))
	}
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("islands: encoding snapshot: %w", err)
	}
	return nil
}

// Resume rebuilds a runner from a Snapshot. The evaluator must wrap the
// same original dataset the snapshot was taken against; the island count
// comes from the snapshot (cfg.Islands is ignored), and every island
// continues its identical stochastic trajectory. cfg.Engine.Generations is
// the per-island budget for the next Run call.
func Resume(eval *score.Evaluator, rd io.Reader, cfg Config) (*Runner, error) {
	var snap snapshotJSON
	if err := json.NewDecoder(rd).Decode(&snap); err != nil {
		return nil, fmt.Errorf("islands: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("islands: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}
	if snap.Islands < 1 || snap.Islands != len(snap.Engines) {
		return nil, fmt.Errorf("islands: snapshot declares %d islands but carries %d engines", snap.Islands, len(snap.Engines))
	}
	cfg.Islands = snap.Islands
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	engines := make([]*core.Engine, snap.Islands)
	popSize := 0
	for i, raw := range snap.Engines {
		ec := c.Engine
		ec.Seed = IslandSeed(c.Engine.Seed, i) // cosmetic: the RNG stream is restored from the snapshot
		e, err := core.Resume(eval, bytes.NewReader(raw), ec)
		if err != nil {
			return nil, fmt.Errorf("islands: resuming island %d: %w", i, err)
		}
		engines[i] = e
		if n := len(e.Population()); n > popSize {
			popSize = n
		}
	}
	return &Runner{cfg: c, engines: engines, popSize: popSize, seq: c.FirstSeq}, nil
}

// Meta describes a checkpoint without resuming it: the island count and
// the largest per-island generation count executed when the snapshot was
// taken. Services use it to size a resumed job's remaining budget before
// paying for an evaluator-backed resume.
type Meta struct {
	// Islands is the number of islands the checkpoint carries.
	Islands int
	// Generation is the largest per-island generation executed — the same
	// number Runner.Generation reports right after a Resume.
	Generation int
	// MinGeneration is the smallest per-island generation. Barrier
	// checkpoints have every island aligned (MinGeneration ==
	// Generation); cancellation-point checkpoints taken mid-epoch can
	// differ. Budget arithmetic for a resume should count from
	// MinGeneration so no island ends up short of its configured budget.
	MinGeneration int
}

// Peek reads a checkpoint's metadata without rebuilding engines; the
// engine payloads are decoded only far enough to find their generation
// counters.
func Peek(rd io.Reader) (Meta, error) {
	var snap snapshotJSON
	if err := json.NewDecoder(rd).Decode(&snap); err != nil {
		return Meta{}, fmt.Errorf("islands: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return Meta{}, fmt.Errorf("islands: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}
	if snap.Islands < 1 || snap.Islands != len(snap.Engines) {
		return Meta{}, fmt.Errorf("islands: snapshot declares %d islands but carries %d engines", snap.Islands, len(snap.Engines))
	}
	m := Meta{Islands: snap.Islands}
	for i, raw := range snap.Engines {
		var hdr struct {
			Gen int `json:"gen"`
		}
		if err := json.Unmarshal(raw, &hdr); err != nil {
			return Meta{}, fmt.Errorf("islands: peeking island %d: %w", i, err)
		}
		if hdr.Gen > m.Generation {
			m.Generation = hdr.Gen
		}
		if i == 0 || hdr.Gen < m.MinGeneration {
			m.MinGeneration = hdr.Gen
		}
	}
	return m, nil
}
