package islands

// Fuzz targets for the string resolvers: no input may panic, successful
// resolutions must round-trip through String, and errors must never hand
// the caller a usable value by accident. `go test` runs the seed corpus;
// `go test -fuzz FuzzTopologyByName` explores further.

import (
	"testing"

	"evoprot/internal/core"
)

// coreConfigForFuzz is a minimal valid engine template for config-level
// fuzz assertions.
func coreConfigForFuzz() core.Config { return core.Config{Generations: 5} }

func FuzzTopologyByName(f *testing.F) {
	for _, seed := range []string{"", "ring", "broadcast", "all", "star", "RING", "ring ", "броад", "\x00", "broadcastbroadcast"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		topo, err := TopologyByName(name)
		if err != nil {
			if topo != Ring { // the zero value, never a silently-usable third topology
				t.Fatalf("error case returned topology %v", topo)
			}
			return
		}
		// A resolved topology names itself back to the same value.
		back, err := TopologyByName(topo.String())
		if err != nil || back != topo {
			t.Fatalf("topology %v does not round-trip: %v, %v", topo, back, err)
		}
		// And it must be accepted by a full config validation.
		cfg := Config{Topology: topo, Engine: coreConfigForFuzz()}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("resolved topology %v rejected by Validate: %v", topo, err)
		}
	})
}

func FuzzNichesByName(f *testing.F) {
	for _, name := range []string{"", "explore-exploit", "selection-sweep", "aggregator-sweep", "unknown", "explore-exploit "} {
		for _, n := range []int{-1, 0, 1, 3, 17} {
			f.Add(name, n)
		}
	}
	f.Fuzz(func(t *testing.T, name string, n int) {
		if n > 256 {
			n %= 256 // keep override slices small; size is not the property under test
		}
		overrides, err := NichesByName(name, n)
		if err != nil {
			if overrides != nil {
				t.Fatal("error case returned overrides")
			}
			return
		}
		if len(overrides) != n {
			t.Fatalf("%s/%d: %d overrides", name, n, len(overrides))
		}
		// Every successfully-built preset must be admissible.
		cfg := Config{Islands: n, Engine: coreConfigForFuzz(), PerIsland: overrides}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s/%d: preset rejected by Validate: %v", name, n, err)
		}
	})
}
