// Package dataset implements the categorical microdata model the rest of
// the module is built on: attributes with finite (optionally ordered)
// category domains, schemas, and datasets stored as category indices.
//
// A protected ("masked") file is simply another Dataset over the same
// Schema; the evolutionary engine treats such datasets as chromosomes whose
// genes are whole categories. Values are stored as indices into the
// attribute domain rather than raw strings — semantically identical (genes
// are still entire categories, never partial strings, cf. paper §2.1) but
// far cheaper to copy and compare.
package dataset

import (
	"fmt"
	"strings"
)

// Attribute describes one categorical variable: its name, its finite domain
// of categories, and whether the domain carries a meaningful total order
// (e.g. income brackets, construction decades). Order matters for the
// rank-based masking methods and measures; purely nominal attributes fall
// back to equality-based distances.
type Attribute struct {
	name       string
	categories []string
	ordered    bool
	index      map[string]int
}

// NewAttribute builds an attribute. The category list must be non-empty and
// free of duplicates; its order defines the domain order when ordered is
// true.
func NewAttribute(name string, categories []string, ordered bool) (*Attribute, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset: attribute with empty name")
	}
	if len(categories) == 0 {
		return nil, fmt.Errorf("dataset: attribute %q has no categories", name)
	}
	idx := make(map[string]int, len(categories))
	for i, c := range categories {
		if c == "" {
			return nil, fmt.Errorf("dataset: attribute %q has an empty category at position %d", name, i)
		}
		if _, dup := idx[c]; dup {
			return nil, fmt.Errorf("dataset: attribute %q has duplicate category %q", name, c)
		}
		idx[c] = i
	}
	cats := make([]string, len(categories))
	copy(cats, categories)
	return &Attribute{name: name, categories: cats, ordered: ordered, index: idx}, nil
}

// MustAttribute is NewAttribute that panics on error; for tests and
// statically-known schemas.
func MustAttribute(name string, categories []string, ordered bool) *Attribute {
	a, err := NewAttribute(name, categories, ordered)
	if err != nil {
		panic(err)
	}
	return a
}

// Name returns the attribute name.
func (a *Attribute) Name() string { return a.name }

// Cardinality returns the number of categories in the domain.
func (a *Attribute) Cardinality() int { return len(a.categories) }

// Ordered reports whether the domain carries a total order.
func (a *Attribute) Ordered() bool { return a.ordered }

// Category returns the label of category i. It panics if i is out of range,
// which indicates a corrupted dataset.
func (a *Attribute) Category(i int) string { return a.categories[i] }

// Index returns the domain index of the given category label.
func (a *Attribute) Index(category string) (int, bool) {
	i, ok := a.index[category]
	return i, ok
}

// Categories returns a copy of the domain in order.
func (a *Attribute) Categories() []string {
	out := make([]string, len(a.categories))
	copy(out, a.categories)
	return out
}

// Schema is an ordered collection of attributes with unique names.
type Schema struct {
	attrs  []*Attribute
	byName map[string]int
}

// NewSchema builds a schema from the given attributes; names must be unique.
func NewSchema(attrs ...*Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("dataset: schema with no attributes")
	}
	byName := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == nil {
			return nil, fmt.Errorf("dataset: nil attribute at position %d", i)
		}
		if _, dup := byName[a.name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.name)
		}
		byName[a.name] = i
	}
	own := make([]*Attribute, len(attrs))
	copy(own, attrs)
	return &Schema{attrs: own, byName: byName}, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...*Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns attribute i.
func (s *Schema) Attr(i int) *Attribute { return s.attrs[i] }

// IndexOf returns the position of the named attribute.
func (s *Schema) IndexOf(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// Indices resolves a list of attribute names to column indices, failing on
// the first unknown name.
func (s *Schema) Indices(names ...string) ([]int, error) {
	out := make([]int, 0, len(names))
	for _, n := range names {
		i, ok := s.byName[n]
		if !ok {
			return nil, fmt.Errorf("dataset: unknown attribute %q (have %s)", n, strings.Join(s.AttrNames(), ", "))
		}
		out = append(out, i)
	}
	return out, nil
}

// AttrNames returns the attribute names in schema order.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.name
	}
	return out
}

// EqualStructure reports whether two schemas describe the same attributes:
// same names, same domains in the same order, same orderedness.
func (s *Schema) EqualStructure(o *Schema) bool {
	if o == nil || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i, a := range s.attrs {
		b := o.attrs[i]
		if a.name != b.name || a.ordered != b.ordered || len(a.categories) != len(b.categories) {
			return false
		}
		for j, c := range a.categories {
			if b.categories[j] != c {
				return false
			}
		}
	}
	return true
}

// Cardinalities returns the domain sizes of the given columns (all columns
// when attrs is nil).
func (s *Schema) Cardinalities(attrs []int) []int {
	if attrs == nil {
		attrs = make([]int, len(s.attrs))
		for i := range attrs {
			attrs[i] = i
		}
	}
	out := make([]int, len(attrs))
	for i, c := range attrs {
		out[i] = s.attrs[c].Cardinality()
	}
	return out
}

// Dataset is a table of categorical microdata: Rows() records over the
// schema's attributes, each cell a category index into the attribute's
// domain.
type Dataset struct {
	schema *Schema
	rows   int
	cells  []int // row-major: cells[r*NumAttrs()+c]
}

// New returns a dataset of the given number of rows with every cell set to
// category 0.
func New(schema *Schema, rows int) *Dataset {
	if schema == nil {
		panic("dataset: nil schema")
	}
	if rows < 0 {
		panic("dataset: negative row count")
	}
	return &Dataset{schema: schema, rows: rows, cells: make([]int, rows*schema.NumAttrs())}
}

// FromRecords builds a dataset from string records; every value must belong
// to the corresponding attribute's domain.
func FromRecords(schema *Schema, records [][]string) (*Dataset, error) {
	d := New(schema, len(records))
	a := schema.NumAttrs()
	for r, rec := range records {
		if len(rec) != a {
			return nil, fmt.Errorf("dataset: record %d has %d fields, schema has %d", r, len(rec), a)
		}
		for c, v := range rec {
			idx, ok := schema.Attr(c).Index(v)
			if !ok {
				return nil, fmt.Errorf("dataset: record %d: value %q not in domain of %s", r, v, schema.Attr(c).Name())
			}
			d.cells[r*a+c] = idx
		}
	}
	return d, nil
}

// Schema returns the dataset's schema.
func (d *Dataset) Schema() *Schema { return d.schema }

// Rows returns the number of records.
func (d *Dataset) Rows() int { return d.rows }

// Cols returns the number of attributes.
func (d *Dataset) Cols() int { return d.schema.NumAttrs() }

// At returns the category index at (row, col).
func (d *Dataset) At(row, col int) int {
	return d.cells[row*d.schema.NumAttrs()+col]
}

// Set assigns the category index v at (row, col). It panics if v is outside
// the attribute's domain: a cell outside the domain can only be a bug, and
// every downstream measure would silently miscount.
func (d *Dataset) Set(row, col, v int) {
	if v < 0 || v >= d.schema.Attr(col).Cardinality() {
		panic(fmt.Sprintf("dataset: value %d out of domain of %s (cardinality %d)",
			v, d.schema.Attr(col).Name(), d.schema.Attr(col).Cardinality()))
	}
	d.cells[row*d.schema.NumAttrs()+col] = v
}

// Value returns the category label at (row, col).
func (d *Dataset) Value(row, col int) string {
	return d.schema.Attr(col).Category(d.At(row, col))
}

// Clone returns a deep copy sharing the (immutable) schema.
func (d *Dataset) Clone() *Dataset {
	cells := make([]int, len(d.cells))
	copy(cells, d.cells)
	return &Dataset{schema: d.schema, rows: d.rows, cells: cells}
}

// Equal reports whether both datasets have structurally equal schemas, the
// same shape and the same cell values.
func (d *Dataset) Equal(o *Dataset) bool {
	if o == nil || d.rows != o.rows {
		return false
	}
	if d.schema != o.schema && !d.schema.EqualStructure(o.schema) {
		return false
	}
	for i, v := range d.cells {
		if o.cells[i] != v {
			return false
		}
	}
	return true
}

// Column returns a copy of column c.
func (d *Dataset) Column(c int) []int {
	out := make([]int, d.rows)
	d.ColumnInto(out, c)
	return out
}

// ColumnInto fills dst (len >= Rows) with column c, avoiding allocation in
// hot paths.
func (d *Dataset) ColumnInto(dst []int, c int) {
	a := d.schema.NumAttrs()
	for r := 0; r < d.rows; r++ {
		dst[r] = d.cells[r*a+c]
	}
}

// Records materializes the dataset back to string records.
func (d *Dataset) Records() [][]string {
	a := d.schema.NumAttrs()
	out := make([][]string, d.rows)
	for r := 0; r < d.rows; r++ {
		rec := make([]string, a)
		for c := 0; c < a; c++ {
			rec[c] = d.Value(r, c)
		}
		out[r] = rec
	}
	return out
}

// Mismatches counts cells that differ between d and o over the given
// columns (all columns when attrs is nil). Both datasets must have the same
// shape.
func (d *Dataset) Mismatches(o *Dataset, attrs []int) int {
	if d.rows != o.rows || d.schema.NumAttrs() != o.schema.NumAttrs() {
		panic("dataset: Mismatches on datasets of different shape")
	}
	if attrs == nil {
		attrs = make([]int, d.schema.NumAttrs())
		for i := range attrs {
			attrs[i] = i
		}
	}
	a := d.schema.NumAttrs()
	n := 0
	for r := 0; r < d.rows; r++ {
		base := r * a
		for _, c := range attrs {
			if d.cells[base+c] != o.cells[base+c] {
				n++
			}
		}
	}
	return n
}

// Validate checks that every cell lies within its attribute's domain.
func (d *Dataset) Validate() error {
	a := d.schema.NumAttrs()
	for r := 0; r < d.rows; r++ {
		for c := 0; c < a; c++ {
			v := d.cells[r*a+c]
			if v < 0 || v >= d.schema.Attr(c).Cardinality() {
				return fmt.Errorf("dataset: cell (%d,%d) value %d outside domain of %s", r, c, v, d.schema.Attr(c).Name())
			}
		}
	}
	return nil
}
