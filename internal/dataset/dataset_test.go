package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		MustAttribute("color", []string{"red", "green", "blue"}, false),
		MustAttribute("size", []string{"S", "M", "L", "XL"}, true),
	)
}

func TestNewAttributeErrors(t *testing.T) {
	cases := []struct {
		name string
		cats []string
	}{
		{"", []string{"a"}},
		{"x", nil},
		{"x", []string{"a", "a"}},
		{"x", []string{"a", ""}},
	}
	for _, c := range cases {
		if _, err := NewAttribute(c.name, c.cats, false); err == nil {
			t.Errorf("NewAttribute(%q, %v) succeeded, want error", c.name, c.cats)
		}
	}
}

func TestAttributeAccessors(t *testing.T) {
	a := MustAttribute("size", []string{"S", "M", "L"}, true)
	if a.Name() != "size" || a.Cardinality() != 3 || !a.Ordered() {
		t.Fatal("accessor mismatch")
	}
	if a.Category(1) != "M" {
		t.Fatalf("Category(1) = %q", a.Category(1))
	}
	if i, ok := a.Index("L"); !ok || i != 2 {
		t.Fatalf("Index(L) = %d,%v", i, ok)
	}
	if _, ok := a.Index("XXL"); ok {
		t.Fatal("Index of unknown category succeeded")
	}
	cats := a.Categories()
	cats[0] = "mutated"
	if a.Category(0) != "S" {
		t.Fatal("Categories() leaked internal slice")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	a := MustAttribute("x", []string{"a"}, false)
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(a, a); err == nil {
		t.Error("duplicate attribute names accepted")
	}
	if _, err := NewSchema(a, nil); err == nil {
		t.Error("nil attribute accepted")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := testSchema(t)
	if s.NumAttrs() != 2 {
		t.Fatalf("NumAttrs = %d", s.NumAttrs())
	}
	if i, ok := s.IndexOf("size"); !ok || i != 1 {
		t.Fatalf("IndexOf(size) = %d,%v", i, ok)
	}
	if _, ok := s.IndexOf("nope"); ok {
		t.Fatal("IndexOf unknown succeeded")
	}
	idx, err := s.Indices("size", "color")
	if err != nil || idx[0] != 1 || idx[1] != 0 {
		t.Fatalf("Indices = %v, %v", idx, err)
	}
	if _, err := s.Indices("ghost"); err == nil {
		t.Fatal("Indices(ghost) succeeded")
	}
	names := s.AttrNames()
	if names[0] != "color" || names[1] != "size" {
		t.Fatalf("AttrNames = %v", names)
	}
	cards := s.Cardinalities(nil)
	if cards[0] != 3 || cards[1] != 4 {
		t.Fatalf("Cardinalities = %v", cards)
	}
	cards = s.Cardinalities([]int{1})
	if len(cards) != 1 || cards[0] != 4 {
		t.Fatalf("Cardinalities([1]) = %v", cards)
	}
}

func TestFromRecordsAndAccess(t *testing.T) {
	s := testSchema(t)
	d, err := FromRecords(s, [][]string{
		{"red", "S"},
		{"blue", "XL"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 2 || d.Cols() != 2 {
		t.Fatalf("shape = %dx%d", d.Rows(), d.Cols())
	}
	if d.At(1, 0) != 2 || d.Value(1, 1) != "XL" {
		t.Fatal("cell access mismatch")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromRecordsErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := FromRecords(s, [][]string{{"red"}}); err == nil {
		t.Error("short record accepted")
	}
	if _, err := FromRecords(s, [][]string{{"red", "XXL"}}); err == nil {
		t.Error("out-of-domain value accepted")
	}
}

func TestSetValidation(t *testing.T) {
	s := testSchema(t)
	d := New(s, 1)
	d.Set(0, 1, 3)
	if d.Value(0, 1) != "XL" {
		t.Fatal("Set failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of domain did not panic")
		}
	}()
	d.Set(0, 0, 3)
}

func TestCloneIndependence(t *testing.T) {
	s := testSchema(t)
	d, _ := FromRecords(s, [][]string{{"red", "S"}, {"green", "M"}})
	c := d.Clone()
	if !d.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, 1)
	if d.At(0, 0) != 0 {
		t.Fatal("clone shares cells with original")
	}
	if d.Equal(c) {
		t.Fatal("Equal missed a difference")
	}
}

func TestEqualEdgeCases(t *testing.T) {
	s := testSchema(t)
	d := New(s, 2)
	if d.Equal(nil) {
		t.Fatal("Equal(nil) = true")
	}
	other := New(s, 3)
	if d.Equal(other) {
		t.Fatal("Equal across different row counts")
	}
	// Structurally equal schema under a different pointer: still equal.
	s2 := testSchema(t)
	if !d.Equal(New(s2, 2)) {
		t.Fatal("Equal rejected structurally equal schema")
	}
	// Structurally different schema: not equal.
	s3 := MustSchema(
		MustAttribute("color", []string{"red", "green", "blue"}, false),
		MustAttribute("size", []string{"S", "M", "L"}, true),
	)
	if d.Equal(New(s3, 2)) {
		t.Fatal("Equal across structurally different schemas")
	}
}

func TestSchemaEqualStructure(t *testing.T) {
	s := testSchema(t)
	if !s.EqualStructure(testSchema(t)) {
		t.Fatal("EqualStructure rejected identical schema")
	}
	if s.EqualStructure(nil) {
		t.Fatal("EqualStructure accepted nil")
	}
	renamed := MustSchema(
		MustAttribute("colour", []string{"red", "green", "blue"}, false),
		MustAttribute("size", []string{"S", "M", "L", "XL"}, true),
	)
	if s.EqualStructure(renamed) {
		t.Fatal("EqualStructure accepted renamed attribute")
	}
	unordered := MustSchema(
		MustAttribute("color", []string{"red", "green", "blue"}, false),
		MustAttribute("size", []string{"S", "M", "L", "XL"}, false),
	)
	if s.EqualStructure(unordered) {
		t.Fatal("EqualStructure accepted different orderedness")
	}
}

func TestColumnAndColumnInto(t *testing.T) {
	s := testSchema(t)
	d, _ := FromRecords(s, [][]string{{"red", "S"}, {"blue", "L"}, {"green", "M"}})
	col := d.Column(1)
	want := []int{0, 2, 1}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("Column(1) = %v, want %v", col, want)
		}
	}
	dst := make([]int, 3)
	d.ColumnInto(dst, 0)
	if dst[0] != 0 || dst[1] != 2 || dst[2] != 1 {
		t.Fatalf("ColumnInto = %v", dst)
	}
	col[0] = 99
	if d.At(0, 1) != 0 {
		t.Fatal("Column leaked internal storage")
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	s := testSchema(t)
	recs := [][]string{{"red", "S"}, {"blue", "XL"}, {"green", "M"}}
	d, _ := FromRecords(s, recs)
	got := d.Records()
	for r := range recs {
		for c := range recs[r] {
			if got[r][c] != recs[r][c] {
				t.Fatalf("Records = %v, want %v", got, recs)
			}
		}
	}
}

func TestMismatches(t *testing.T) {
	s := testSchema(t)
	a, _ := FromRecords(s, [][]string{{"red", "S"}, {"green", "M"}})
	b := a.Clone()
	if a.Mismatches(b, nil) != 0 {
		t.Fatal("identical datasets have mismatches")
	}
	b.Set(0, 0, 1)
	b.Set(1, 1, 3)
	if got := a.Mismatches(b, nil); got != 2 {
		t.Fatalf("Mismatches = %d, want 2", got)
	}
	if got := a.Mismatches(b, []int{1}); got != 1 {
		t.Fatalf("Mismatches(col 1) = %d, want 1", got)
	}
}

func TestMismatchesSymmetric(t *testing.T) {
	s := testSchema(t)
	f := func(cellsA, cellsB []uint8) bool {
		n := len(cellsA)
		if len(cellsB) < n {
			n = len(cellsB)
		}
		n = n / 2 * 2
		if n == 0 {
			return true
		}
		rows := n / 2
		a, b := New(s, rows), New(s, rows)
		for r := 0; r < rows; r++ {
			a.Set(r, 0, int(cellsA[2*r])%3)
			a.Set(r, 1, int(cellsA[2*r+1])%4)
			b.Set(r, 0, int(cellsB[2*r])%3)
			b.Set(r, 1, int(cellsB[2*r+1])%4)
		}
		return a.Mismatches(b, nil) == b.Mismatches(a, nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := testSchema(t)
	d, _ := FromRecords(s, [][]string{{"red", "S"}, {"blue", "XL"}})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVWithSchema(bytes.NewReader(buf.Bytes()), s)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(back) {
		t.Fatal("CSV round trip changed data")
	}
}

func TestReadCSVInfersSchema(t *testing.T) {
	in := "city,size\nparis,M\nlyon,S\nparis,L\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 3 || d.Cols() != 2 {
		t.Fatalf("shape = %dx%d", d.Rows(), d.Cols())
	}
	// Domains are sorted lexicographically.
	city := d.Schema().Attr(0)
	if city.Category(0) != "lyon" || city.Category(1) != "paris" {
		t.Fatalf("inferred domain = %v", city.Categories())
	}
	if d.Value(0, 0) != "paris" {
		t.Fatalf("Value(0,0) = %q", d.Value(0, 0))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\nx\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
}

func TestReadCSVWithSchemaErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := ReadCSVWithSchema(strings.NewReader("color\nred\n"), s); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := ReadCSVWithSchema(strings.NewReader("size,color\nS,red\n"), s); err == nil {
		t.Error("reordered header accepted")
	}
	if _, err := ReadCSVWithSchema(strings.NewReader("color,size\nmauve,S\n"), s); err == nil {
		t.Error("out-of-domain value accepted")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	s := testSchema(t)
	d := New(s, 2)
	// Corrupt through the backdoor.
	d.cells[3] = 99
	if err := d.Validate(); err == nil {
		t.Fatal("Validate missed corruption")
	}
}
