package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the reader and
// that anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\nx,y\n")
	f.Add("a,b\nx,y\nz,w\n")
	f.Add("h\nv\n")
	f.Add("")
	f.Add("a,a\n1,2\n")
	f.Add("a,b\n\"q,uoted\",y\n")
	f.Add("a\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset fails to serialize: %v", err)
		}
		back, err := ReadCSVWithSchema(bytes.NewReader(buf.Bytes()), d.Schema())
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !d.Equal(back) {
			t.Fatal("round trip changed data")
		}
	})
}
