package dataset

import "math/rand/v2"

// CellChange records one cell edit of a dataset: the cell position, the
// category index the cell held before the edit, and the one it holds after.
//
// Change lists are the currency of incremental (delta) fitness evaluation:
// the genetic operators report exactly which genes they touched, and the
// incremental measures patch their precomputed summaries per change instead
// of rescanning the whole file. A list describes a *sequence* of edits
// applied in order — consumers replay it front to back, so a later change
// may touch a cell an earlier change produced.
type CellChange struct {
	// Row and Col locate the cell.
	Row, Col int
	// Old is the category index the cell held before the change.
	Old int
	// New is the category index the cell holds after the change.
	New int
}

// Inverted returns the change that undoes c: the same cell moved from
// c.New back to c.Old. Replaying a change list's inversions in reverse
// order restores the original dataset — the identity the reversible
// (apply/undo) delta states are built on.
func (c CellChange) Inverted() CellChange {
	return CellChange{Row: c.Row, Col: c.Col, Old: c.New, New: c.Old}
}

// RandomChange draws one uniformly-random in-domain cell edit over the
// given columns, applies it to d and returns the change record. The new
// value always differs from the old one. It panics when no listed column
// has more than one category (no cell could ever change). Used by the
// randomized delta-evaluation property tests and handy for any random
// local search over a dataset.
func RandomChange(rng *rand.Rand, d *Dataset, attrs []int) CellChange {
	var mutable []int
	for _, c := range attrs {
		if d.Schema().Attr(c).Cardinality() > 1 {
			mutable = append(mutable, c)
		}
	}
	if len(mutable) == 0 {
		panic("dataset: RandomChange over columns with no alternative categories")
	}
	row := rng.IntN(d.Rows())
	col := mutable[rng.IntN(len(mutable))]
	card := d.Schema().Attr(col).Cardinality()
	old := d.At(row, col)
	v := rng.IntN(card - 1)
	if v >= old {
		v++
	}
	d.Set(row, col, v)
	return CellChange{Row: row, Col: col, Old: old, New: v}
}

// Diff returns the cell changes that turn `from` into `to` over the given
// columns, in row-major order. Both datasets must have the same shape.
func Diff(from, to *Dataset, attrs []int) []CellChange {
	if from.rows != to.rows || from.schema.NumAttrs() != to.schema.NumAttrs() {
		panic("dataset: Diff on datasets of different shape")
	}
	var out []CellChange
	for r := 0; r < from.rows; r++ {
		for _, c := range attrs {
			u, v := from.At(r, c), to.At(r, c)
			if u != v {
				out = append(out, CellChange{Row: r, Col: c, Old: u, New: v})
			}
		}
	}
	return out
}
