package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadCSV parses categorical microdata from CSV. The first row is a header
// of attribute names. The domain of each attribute is inferred as the set
// of distinct values in the column, sorted lexicographically (so that the
// inferred domain is independent of record order); inferred attributes are
// marked ordered, since a lexicographic order is all we can recover from a
// bare file. Use ReadCSVWithSchema when the true domain (including
// categories absent from the data, and the real order) is known.
func ReadCSV(r io.Reader) (*Dataset, error) {
	header, records, err := readAll(r)
	if err != nil {
		return nil, err
	}
	attrs := make([]*Attribute, len(header))
	for c, name := range header {
		seen := make(map[string]bool)
		var cats []string
		for _, rec := range records {
			if !seen[rec[c]] {
				seen[rec[c]] = true
				cats = append(cats, rec[c])
			}
		}
		sort.Strings(cats)
		a, err := NewAttribute(name, cats, true)
		if err != nil {
			return nil, fmt.Errorf("dataset: inferring column %d: %w", c, err)
		}
		attrs[c] = a
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	return FromRecords(schema, records)
}

// ReadCSVWithSchema parses CSV against a known schema. The header must list
// exactly the schema's attribute names in order, and every value must
// belong to its attribute's domain.
func ReadCSVWithSchema(r io.Reader, schema *Schema) (*Dataset, error) {
	header, records, err := readAll(r)
	if err != nil {
		return nil, err
	}
	want := schema.AttrNames()
	if len(header) != len(want) {
		return nil, fmt.Errorf("dataset: header has %d columns, schema has %d", len(header), len(want))
	}
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("dataset: header column %d is %q, schema expects %q", i, header[i], want[i])
		}
	}
	return FromRecords(schema, records)
}

func readAll(r io.Reader) (header []string, records [][]string, err error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("dataset: empty CSV (missing header)")
	}
	header = rows[0]
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
	}
	return header, rows[1:], nil
}

// WriteCSV writes the dataset as CSV with a header row of attribute names.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.schema.AttrNames()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	a := d.schema.NumAttrs()
	rec := make([]string, a)
	for r := 0; r < d.rows; r++ {
		for c := 0; c < a; c++ {
			rec[c] = d.Value(r, c)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV record %d: %w", r, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing CSV: %w", err)
	}
	return nil
}
