// Package pareto provides multi-objective utilities over (IL, DR) pairs:
// non-dominated front extraction and the 2-D hypervolume indicator. The
// paper folds both objectives into one score (Eq. 1/Eq. 2) and names
// richer aggregations as future work (§4); the Pareto view is the standard
// lens for judging how well a population covers the trade-off curve, and
// the experiment reports use it to compare initial and final populations
// beyond single-score summaries.
package pareto

import (
	"sort"

	"evoprot/internal/score"
)

// Front returns the non-dominated subset of the pairs, sorted by
// increasing IL (and therefore strictly decreasing DR). A pair p dominates
// q when p.IL <= q.IL and p.DR <= q.DR with at least one strict
// inequality — both objectives are minimized. Duplicates of a front point
// appear once.
func Front(pairs []score.Pair) []score.Pair {
	if len(pairs) == 0 {
		return nil
	}
	sorted := make([]score.Pair, len(pairs))
	copy(sorted, pairs)
	// Sorted by IL ascending then DR ascending, a point belongs to the
	// front exactly when its DR is strictly below every DR seen before it
	// (equal-IL groups contribute only their lowest-DR member).
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].IL != sorted[j].IL {
			return sorted[i].IL < sorted[j].IL
		}
		return sorted[i].DR < sorted[j].DR
	})
	var front []score.Pair
	for _, p := range sorted {
		if len(front) == 0 {
			front = append(front, p)
			continue
		}
		last := front[len(front)-1]
		if p.IL == last.IL || p.DR >= last.DR {
			continue // dominated (or a duplicate of) an existing front point
		}
		front = append(front, p)
	}
	return front
}

// Dominates reports whether p dominates q (both minimized).
func Dominates(p, q score.Pair) bool {
	if p.IL > q.IL || p.DR > q.DR {
		return false
	}
	return p.IL < q.IL || p.DR < q.DR
}

// Hypervolume returns the area of the region within the rectangle
// [0, ref.IL] x [0, ref.DR] dominated by the pairs. Larger is better: the
// front sits closer to the ideal point (0, 0) and covers more of the
// trade-off plane. Points outside the reference box contribute only the
// part of their dominated region inside the box.
func Hypervolume(pairs []score.Pair, ref score.Pair) float64 {
	if ref.IL <= 0 || ref.DR <= 0 {
		return 0
	}
	front := Front(pairs)
	area := 0.0
	lastIL := 0.0
	minDR := ref.DR
	for _, p := range front {
		il, dr := p.IL, p.DR
		if il >= ref.IL {
			break
		}
		if il < 0 {
			il = 0
		}
		if dr < 0 {
			dr = 0
		}
		if dr >= minDR {
			continue
		}
		// Everything in [lastIL, il) is dominated down to the previous
		// staircase level minDR.
		area += (il - lastIL) * (ref.DR - minDR)
		lastIL = il
		minDR = dr
	}
	area += (ref.IL - lastIL) * (ref.DR - minDR)
	return area
}

// Coverage returns the fraction of pairs lying on their own front
// (duplicates of front points count) — a quick diversity measure of how
// much of a population is non-dominated.
func Coverage(pairs []score.Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	front := Front(pairs)
	onFront := 0
	for _, p := range pairs {
		for _, f := range front {
			if p == f {
				onFront++
				break
			}
		}
	}
	return float64(onFront) / float64(len(pairs))
}
