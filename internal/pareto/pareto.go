// Package pareto provides multi-objective utilities over (IL, DR) pairs:
// non-dominated front extraction and the 2-D hypervolume indicator. The
// paper folds both objectives into one score (Eq. 1/Eq. 2) and names
// richer aggregations as future work (§4); the Pareto view is the standard
// lens for judging how well a population covers the trade-off curve. The
// engine's Pareto mode (core.ObjectivePareto) ranks populations with these
// primitives, and the experiment reports use them to compare initial and
// final populations beyond single-score summaries.
//
// Finiteness contract: a pair with a NaN or ±Inf component — a failed or
// degenerate evaluation — takes no part in dominance. Front drops such
// pairs, Dominates reports false whenever either argument has one, and
// Coverage counts them as off-front. Without this rule NaN pairs make the
// front's sort order depend on input order (NaN compares false against
// everything, so `<`-based sorts place it arbitrarily) and can poison the
// front with points no finite pair is allowed to dominate.
package pareto

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"evoprot/internal/score"
)

// Finite reports whether both components of the pair are finite — neither
// NaN nor ±Inf. Only finite pairs participate in dominance; see the
// package contract.
func Finite(p score.Pair) bool {
	return !math.IsNaN(p.IL) && !math.IsInf(p.IL, 0) &&
		!math.IsNaN(p.DR) && !math.IsInf(p.DR, 0)
}

// Front returns the non-dominated subset of the finite pairs, sorted by
// increasing IL (and therefore strictly decreasing DR). A pair p dominates
// q when p.IL <= q.IL and p.DR <= q.DR with at least one strict
// inequality — both objectives are minimized. Duplicates of a front point
// appear once; non-finite pairs are dropped (see the package contract),
// so the result is independent of input order even in their presence.
func Front(pairs []score.Pair) []score.Pair {
	if len(pairs) == 0 {
		return nil
	}
	sorted := make([]score.Pair, 0, len(pairs))
	for _, p := range pairs {
		if Finite(p) {
			sorted = append(sorted, p)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	// Sorted by IL ascending then DR ascending, a point belongs to the
	// front exactly when its DR is strictly below every DR seen before it
	// (equal-IL groups contribute only their lowest-DR member).
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].IL != sorted[j].IL {
			return sorted[i].IL < sorted[j].IL
		}
		return sorted[i].DR < sorted[j].DR
	})
	var front []score.Pair
	for _, p := range sorted {
		if len(front) == 0 {
			front = append(front, p)
			continue
		}
		last := front[len(front)-1]
		if p.IL == last.IL || p.DR >= last.DR {
			continue // dominated (or a duplicate of) an existing front point
		}
		front = append(front, p)
	}
	return front
}

// Dominates reports whether p dominates q (both minimized). A pair with a
// non-finite component neither dominates nor is dominated: comparing
// against NaN would otherwise let arbitrary pairs "dominate" a failed
// evaluation — or the reverse — depending on which comparison the NaN
// falls into.
func Dominates(p, q score.Pair) bool {
	if !Finite(p) || !Finite(q) {
		return false
	}
	if p.IL > q.IL || p.DR > q.DR {
		return false
	}
	return p.IL < q.IL || p.DR < q.DR
}

// ErrReference reports a hypervolume reference point that does not bound a
// box: a component is non-finite, zero, or negative.
var ErrReference = errors.New("pareto: reference point must have finite positive components")

// Hypervolume returns the area of the region within the closed rectangle
// [0, ref.IL] x [0, ref.DR] dominated by the pairs. Larger is better: the
// front sits closer to the ideal point (0, 0) and covers more of the
// trade-off plane. Points outside the reference box contribute only the
// part of their dominated region inside the box; a point sitting exactly
// on the far boundary (IL == ref.IL or DR == ref.DR) dominates a
// zero-area sliver and contributes nothing. Non-finite pairs are dropped
// (package contract). A reference point with a non-finite, zero or
// negative component does not bound a box and yields ErrReference.
func Hypervolume(pairs []score.Pair, ref score.Pair) (float64, error) {
	if !Finite(ref) || ref.IL <= 0 || ref.DR <= 0 {
		return 0, fmt.Errorf("%w: got (%v, %v)", ErrReference, ref.IL, ref.DR)
	}
	front := Front(pairs)
	area := 0.0
	lastIL := 0.0
	minDR := ref.DR
	for _, p := range front {
		il, dr := p.IL, p.DR
		if il >= ref.IL {
			break
		}
		if il < 0 {
			il = 0
		}
		if dr < 0 {
			dr = 0
		}
		if dr >= minDR {
			continue
		}
		// Everything in [lastIL, il) is dominated down to the previous
		// staircase level minDR.
		area += (il - lastIL) * (ref.DR - minDR)
		lastIL = il
		minDR = dr
	}
	area += (ref.IL - lastIL) * (ref.DR - minDR)
	return area, nil
}

// Coverage returns the fraction of pairs lying on their own front
// (duplicates of front points count) — a quick diversity measure of how
// much of a population is non-dominated. Non-finite pairs count toward
// the denominator but never lie on the front (package contract).
// Membership is checked against a set keyed on the front's points, so the
// cost is O(n + |front|) rather than the nested scan's O(n·|front|); the
// front contains only finite pairs, so map equality is exact (the == on
// NaN that made a degenerate pair silently undercount can no longer
// arise).
func Coverage(pairs []score.Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	front := Front(pairs)
	set := make(map[score.Pair]struct{}, len(front))
	for _, f := range front {
		set[f] = struct{}{}
	}
	onFront := 0
	for _, p := range pairs {
		if _, ok := set[p]; ok {
			onFront++
		}
	}
	return float64(onFront) / float64(len(pairs))
}
