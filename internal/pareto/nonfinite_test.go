package pareto

// Regression tests pinning the package's finiteness contract and the
// hypervolume error/oracle behavior. The non-finite cases fail on the
// pre-fix code: Front's `<`-based sort placed NaN pairs wherever the
// input order left them (poisoning the front and suppressing finite
// points behind a NaN), Dominates let a NaN pair dominate finite points,
// Coverage's struct-equality scan never matched a NaN pair to itself, and
// Hypervolume returned a silent 0 for a reference point that bounds no
// box.

import (
	"math"
	"math/rand/v2"
	"testing"

	"evoprot/internal/score"
)

func TestFrontDropsNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	// Pre-fix, the NaN pair sorted ahead of (5,5) for this input order and
	// its DR of 1 then suppressed the finite point from the front.
	front := Front([]score.Pair{{IL: nan, DR: 1}, {IL: 5, DR: 5}})
	if len(front) != 1 || front[0] != (score.Pair{IL: 5, DR: 5}) {
		t.Fatalf("front = %v, want [(5,5)]", front)
	}
	// The result must not depend on where the degenerate pairs sit.
	bad := []score.Pair{
		{IL: nan, DR: 1}, {IL: 1, DR: nan}, {IL: nan, DR: nan},
		{IL: inf, DR: 0}, {IL: 0, DR: -inf},
	}
	good := []score.Pair{{IL: 10, DR: 40}, {IL: 20, DR: 20}, {IL: 30, DR: 50}}
	for shift := 0; shift <= len(bad); shift++ {
		mixed := append(append(append([]score.Pair{}, bad[:shift]...), good...), bad[shift:]...)
		front := Front(mixed)
		if len(front) != 2 || front[0] != good[0] || front[1] != good[1] {
			t.Fatalf("shift %d: front = %v, want [(10,40) (20,20)]", shift, front)
		}
	}
	if got := Front([]score.Pair{{IL: nan, DR: nan}}); got != nil {
		t.Fatalf("Front(all non-finite) = %v, want nil", got)
	}
}

func TestDominatesNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	fin := score.Pair{IL: 5, DR: 5}
	for _, bad := range []score.Pair{
		{IL: nan, DR: 1}, {IL: 1, DR: nan}, {IL: nan, DR: nan},
		{IL: inf, DR: inf}, {IL: -inf, DR: 0},
	} {
		if Dominates(bad, fin) {
			t.Errorf("non-finite %v dominates %v", bad, fin)
		}
		if Dominates(fin, bad) {
			t.Errorf("%v dominates non-finite %v", fin, bad)
		}
		if Dominates(bad, bad) {
			t.Errorf("non-finite %v dominates itself", bad)
		}
	}
}

func TestCoverageNonFinite(t *testing.T) {
	nan := math.NaN()
	// The NaN pair counts toward the denominator but is never on the front;
	// the finite front point still matches itself through the set lookup.
	pairs := []score.Pair{{IL: 10, DR: 10}, {IL: nan, DR: 5}}
	if got := Coverage(pairs); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Coverage = %v, want 0.5", got)
	}
	// Same population, reversed order: identical answer.
	if got := Coverage([]score.Pair{pairs[1], pairs[0]}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Coverage(reversed) = %v, want 0.5", got)
	}
	if got := Coverage([]score.Pair{{IL: nan, DR: nan}}); got != 0 {
		t.Fatalf("Coverage(all non-finite) = %v, want 0", got)
	}
}

func TestHypervolumeRejectsBadReference(t *testing.T) {
	pairs := []score.Pair{{IL: 1, DR: 1}}
	for _, ref := range []score.Pair{
		{},
		{IL: 100},
		{DR: 100},
		{IL: -5, DR: 100},
		{IL: math.NaN(), DR: 100},
		{IL: 100, DR: math.Inf(1)},
	} {
		if _, err := Hypervolume(pairs, ref); err == nil {
			t.Errorf("reference %v accepted", ref)
		}
	}
}

func TestHypervolumeIgnoresNonFinitePairs(t *testing.T) {
	ref := score.Pair{IL: 100, DR: 100}
	finite := []score.Pair{{IL: 25, DR: 25}}
	withBad := append([]score.Pair{{IL: math.NaN(), DR: 1}, {IL: 1, DR: math.Inf(-1)}}, finite...)
	if got := mustHV(t, withBad, ref); math.Abs(got-mustHV(t, finite, ref)) > 1e-9 {
		t.Fatalf("HV with non-finite pairs = %v, want %v", got, mustHV(t, finite, ref))
	}
}

// TestHypervolumeOracle pins the staircase sweep — including the
// clamp-to-zero, skip-outside-the-box and on-the-boundary paths — against
// a brute-force unit-grid count. Points and the reference are drawn on
// integer coordinates, so the dominated region is a union of
// integer-aligned rectangles and the grid count is exact, not an
// approximation: cell [i,i+1)x[j,j+1) lies inside the region exactly when
// some point has IL <= i and DR <= j.
func TestHypervolumeOracle(t *testing.T) {
	ref := score.Pair{IL: 100, DR: 100}
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.IntN(30)
		pairs := make([]score.Pair, n)
		for i := range pairs {
			// [-10, 130): negatives exercise the clamp, values past 100 the
			// outside-the-box paths, and exact 0/100 hits the boundaries.
			pairs[i] = score.Pair{
				IL: float64(rng.IntN(141) - 10),
				DR: float64(rng.IntN(141) - 10),
			}
		}
		want := 0.0
		for i := 0; i < 100; i++ {
			for j := 0; j < 100; j++ {
				for _, p := range pairs {
					if p.IL <= float64(i) && p.DR <= float64(j) {
						want++
						break
					}
				}
			}
		}
		if got := mustHV(t, pairs, ref); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: HV(%v) = %v, oracle %v", trial, pairs, got, want)
		}
	}
}

func BenchmarkCoverage(b *testing.B) {
	// A 10k-point population over a noisy quarter-circle trade-off curve:
	// a realistically large front so membership checking, not front
	// extraction, is what the benchmark stresses.
	rng := rand.New(rand.NewPCG(3, 5))
	pairs := make([]score.Pair, 10000)
	for i := range pairs {
		a := rng.Float64() * math.Pi / 2
		r := 50 + rng.Float64()*10
		pairs[i] = score.Pair{IL: 100 - r*math.Cos(a), DR: 100 - r*math.Sin(a)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Coverage(pairs)
	}
}
