package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"evoprot/internal/score"
)

// mustHV computes a hypervolume whose reference point the test knows to be
// valid, failing the test if the computation unexpectedly errors.
func mustHV(t *testing.T, pairs []score.Pair, ref score.Pair) float64 {
	t.Helper()
	hv, err := Hypervolume(pairs, ref)
	if err != nil {
		t.Fatalf("Hypervolume(%v, %v): %v", pairs, ref, err)
	}
	return hv
}

func TestFrontBasic(t *testing.T) {
	pairs := []score.Pair{
		{IL: 10, DR: 50}, // front (lowest IL)
		{IL: 20, DR: 30}, // front
		{IL: 25, DR: 35}, // dominated by (20,30)
		{IL: 30, DR: 20}, // front
		{IL: 40, DR: 20}, // dominated by (30,20)
	}
	front := Front(pairs)
	want := []score.Pair{{IL: 10, DR: 50}, {IL: 20, DR: 30}, {IL: 30, DR: 20}}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front = %v, want %v", front, want)
		}
	}
}

func TestFrontEdgeCases(t *testing.T) {
	if got := Front(nil); got != nil {
		t.Fatalf("Front(nil) = %v", got)
	}
	one := []score.Pair{{IL: 5, DR: 5}}
	if got := Front(one); len(got) != 1 || got[0] != one[0] {
		t.Fatalf("Front(single) = %v", got)
	}
	// Duplicates collapse to one.
	dup := []score.Pair{{IL: 5, DR: 5}, {IL: 5, DR: 5}}
	if got := Front(dup); len(got) != 1 {
		t.Fatalf("Front(dup) = %v", got)
	}
	// Equal IL: only the lowest DR survives.
	eq := []score.Pair{{IL: 5, DR: 9}, {IL: 5, DR: 3}}
	if got := Front(eq); len(got) != 1 || got[0].DR != 3 {
		t.Fatalf("Front(equal IL) = %v", got)
	}
}

func TestFrontIsNonDominatedAndComplete(t *testing.T) {
	// Property: every front member is undominated by all pairs, and every
	// non-front pair is dominated by (or duplicates) some front member.
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		pairs := make([]score.Pair, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pairs = append(pairs, score.Pair{IL: float64(raw[i] % 50), DR: float64(raw[i+1] % 50)})
		}
		front := Front(pairs)
		inFront := func(p score.Pair) bool {
			for _, f := range front {
				if f == p {
					return true
				}
			}
			return false
		}
		for _, fp := range front {
			for _, p := range pairs {
				if Dominates(p, fp) {
					return false
				}
			}
		}
		for _, p := range pairs {
			if inFront(p) {
				continue
			}
			dominated := false
			for _, fp := range front {
				if Dominates(fp, p) || fp == p {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDominates(t *testing.T) {
	a := score.Pair{IL: 10, DR: 10}
	b := score.Pair{IL: 20, DR: 10}
	c := score.Pair{IL: 5, DR: 30}
	if !Dominates(a, b) {
		t.Error("a should dominate b")
	}
	if Dominates(b, a) {
		t.Error("b should not dominate a")
	}
	if Dominates(a, c) || Dominates(c, a) {
		t.Error("a and c are incomparable")
	}
	if Dominates(a, a) {
		t.Error("no self-domination")
	}
}

func TestHypervolumeSinglePoint(t *testing.T) {
	// One point at (25, 25) with reference (100, 100): dominated area is
	// the rectangle (100-25)x(100-25) = 5625.
	pairs := []score.Pair{{IL: 25, DR: 25}}
	ref := score.Pair{IL: 100, DR: 100}
	if got := mustHV(t, pairs, ref); math.Abs(got-5625) > 1e-9 {
		t.Fatalf("HV = %v, want 5625", got)
	}
}

func TestHypervolumeStaircase(t *testing.T) {
	// Two points (10,50) and (50,10), ref (100,100):
	// strip [10,50) x [50,100]: 40*50 = 2000
	// strip [50,100] x [10,100]: 50*90 = 4500
	pairs := []score.Pair{{IL: 10, DR: 50}, {IL: 50, DR: 10}}
	ref := score.Pair{IL: 100, DR: 100}
	if got := mustHV(t, pairs, ref); math.Abs(got-6500) > 1e-9 {
		t.Fatalf("HV = %v, want 6500", got)
	}
}

func TestHypervolumeEdgeCases(t *testing.T) {
	ref := score.Pair{IL: 100, DR: 100}
	if got := mustHV(t, nil, ref); got != 0 {
		t.Fatalf("HV(empty) = %v", got)
	}
	// A degenerate reference point bounds no box: error, not a silent 0.
	if _, err := Hypervolume([]score.Pair{{IL: 1, DR: 1}}, score.Pair{}); err == nil {
		t.Fatal("HV with degenerate ref accepted")
	}
	// Point outside the box contributes nothing extra.
	outside := []score.Pair{{IL: 150, DR: 150}}
	if got := mustHV(t, outside, ref); got != 0 {
		t.Fatalf("HV(outside) = %v", got)
	}
	// Ideal point dominates the whole box.
	ideal := []score.Pair{{IL: 0, DR: 0}}
	if got := mustHV(t, ideal, ref); math.Abs(got-10000) > 1e-9 {
		t.Fatalf("HV(ideal) = %v, want 10000", got)
	}
}

func TestHypervolumeMonotoneUnderImprovement(t *testing.T) {
	// Property: adding a point never decreases the hypervolume.
	ref := score.Pair{IL: 100, DR: 100}
	f := func(raw []uint8, extraIL, extraDR uint8) bool {
		pairs := make([]score.Pair, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pairs = append(pairs, score.Pair{IL: float64(raw[i] % 100), DR: float64(raw[i+1] % 100)})
		}
		before, err1 := Hypervolume(pairs, ref)
		after, err2 := Hypervolume(append(pairs, score.Pair{IL: float64(extraIL % 100), DR: float64(extraDR % 100)}), ref)
		return err1 == nil && err2 == nil && after >= before-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoverage(t *testing.T) {
	pairs := []score.Pair{
		{IL: 10, DR: 10}, // front
		{IL: 20, DR: 20}, // dominated
		{IL: 30, DR: 30}, // dominated
		{IL: 10, DR: 10}, // duplicate of front point: counts
	}
	if got := Coverage(pairs); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Coverage = %v, want 0.5", got)
	}
	if got := Coverage(nil); got != 0 {
		t.Fatalf("Coverage(nil) = %v", got)
	}
}
