package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file renders the paper's in-text tables (§3.1 improvement table,
// §3.2 improvement and timing tables, §3.3 robustness table) from a set
// of experiment reports, so cmd/experiments can emit them exactly as the
// paper structures them.

// ImprovementTable formats the §3.1/§3.2 improvement table for the given
// reports (one row per report, in input order).
func ImprovementTable(reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %21s %21s %21s\n", "experiment",
		"max score", "mean score", "min score")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-16s %6.2f->%6.2f (%5.2f%%) %6.2f->%6.2f (%5.2f%%) %6.2f->%6.2f (%5.2f%%)\n",
			r.Spec.Name(),
			r.InitMax, r.FinalMax, r.ImpMax,
			r.InitMean, r.FinalMean, r.ImpMean,
			r.InitMin, r.FinalMin, r.ImpMin)
	}
	return b.String()
}

// TimingTable formats the §3.2 timing table: average generation cost per
// operator and the fitness-evaluation share, averaged over the reports.
func TimingTable(reports []*Report) string {
	var mut, cross time.Duration
	var share float64
	n := 0
	for _, r := range reports {
		if r.AvgMutationGen == 0 && r.AvgCrossoverGen == 0 {
			continue
		}
		mut += r.AvgMutationGen
		cross += r.AvgCrossoverGen
		share += r.EvalShare
		n++
	}
	if n == 0 {
		return "timing: no generation data\n"
	}
	mut /= time.Duration(n)
	cross /= time.Duration(n)
	share /= float64(n)
	ratio := 0.0
	if mut > 0 {
		ratio = float64(cross) / float64(mut)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12v\n", "avg mutation generation", mut.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-28s %12v\n", "avg crossover generation", cross.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-28s %11.2fx\n", "crossover/mutation ratio", ratio)
	fmt.Fprintf(&b, "%-28s %11.1f%%\n", "fitness evaluation share", 100*share)
	return b.String()
}

// RobustnessTable formats the §3.3 robustness comparison: the full-
// population report against the handicapped ones, with min-score gaps.
// The full report is identified by RemoveBestFrac == 0; it must be
// present.
func RobustnessTable(reports []*Report) (string, error) {
	var full *Report
	var rest []*Report
	for _, r := range reports {
		if r.Spec.RemoveBestFrac == 0 {
			full = r
		} else {
			rest = append(rest, r)
		}
	}
	if full == nil {
		return "", fmt.Errorf("experiment: robustness table needs the full-population report")
	}
	sort.Slice(rest, func(i, j int) bool {
		return rest[i].Spec.RemoveBestFrac < rest[j].Spec.RemoveBestFrac
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s %10s\n", "population", "init min", "final min", "gap")
	fmt.Fprintf(&b, "%-18s %10.2f %10.2f %10s\n", "full", full.InitMin, full.FinalMin, "-")
	for _, r := range rest {
		fmt.Fprintf(&b, "%-18s %10.2f %10.2f %10.2f\n",
			fmt.Sprintf("without best %.0f%%", r.Spec.RemoveBestFrac*100),
			r.InitMin, r.FinalMin, r.FinalMin-full.FinalMin)
	}
	return b.String(), nil
}
