package experiment

import (
	"bytes"
	"strings"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/score"
)

// smallSpec keeps experiment tests fast: reduced records and generations,
// parallel initial evaluation.
func smallSpec(dataset, agg string) Spec {
	return Spec{
		Dataset:     dataset,
		Rows:        120,
		Aggregator:  agg,
		Generations: 40,
		Seed:        101,
		InitWorkers: 8,
	}
}

func TestSpecName(t *testing.T) {
	if got := (Spec{Dataset: "flare"}).Name(); got != "flare/max" {
		t.Errorf("Name = %q", got)
	}
	if got := (Spec{Dataset: "adult", Aggregator: "mean"}).Name(); got != "adult/mean" {
		t.Errorf("Name = %q", got)
	}
	if got := (Spec{Dataset: "flare", RemoveBestFrac: 0.05}).Name(); got != "flare/max-5%" {
		t.Errorf("Name = %q", got)
	}
}

func TestBuildPopulationMatchesPaperComposition(t *testing.T) {
	orig := datagen.MustByName("adult", 80, 5)
	names, _ := datagen.ProtectedAttrs("adult")
	attrs, _ := orig.Schema().Indices(names...)
	pop, err := BuildPopulation(orig, attrs, "adult", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 86 {
		t.Fatalf("population = %d, want 86", len(pop))
	}
	families := make(map[string]int)
	for _, ind := range pop {
		fam, _, _ := strings.Cut(ind.Origin, "(")
		families[fam]++
		if err := ind.Data.Validate(); err != nil {
			t.Fatalf("%s: %v", ind.Origin, err)
		}
	}
	if families["microaggregation"] != 48 || families["pram"] != 9 {
		t.Fatalf("family counts = %v", families)
	}
}

func TestBuildPopulationUnknownDataset(t *testing.T) {
	orig := datagen.MustByName("adult", 50, 5)
	if _, err := BuildPopulation(orig, []int{1, 2, 3}, "mystery", 5); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunProducesCompleteReport(t *testing.T) {
	rep, err := Run(smallSpec("flare", "max"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Initial) != 104 || len(rep.Final) != 104 {
		t.Fatalf("population sizes: %d initial, %d final", len(rep.Initial), len(rep.Final))
	}
	if len(rep.Series) != 40 {
		t.Fatalf("series = %d, want 40", len(rep.Series))
	}
	if len(rep.Labels) != len(rep.Initial) {
		t.Fatal("labels misaligned")
	}
	if rep.InitMin <= 0 || rep.InitMax < rep.InitMin {
		t.Fatalf("bad initial stats: %+v", rep)
	}
	if rep.FinalMin > rep.InitMin+1e-9 {
		t.Fatalf("final min %v worse than initial %v (elitism broken)", rep.FinalMin, rep.InitMin)
	}
	if rep.FinalMean > rep.InitMean+1e-9 {
		t.Fatalf("final mean %v worse than initial %v", rep.FinalMean, rep.InitMean)
	}
	if rep.Evaluations <= len(rep.Initial) {
		t.Fatalf("evaluations = %d", rep.Evaluations)
	}
	if rep.Duration <= 0 {
		t.Fatal("duration not recorded")
	}
}

func TestRunImprovementsAreConsistent(t *testing.T) {
	rep, err := Run(smallSpec("german", "max"))
	if err != nil {
		t.Fatal(err)
	}
	// Improvements are percentages of the initial values.
	wantMean := 100 * (rep.InitMean - rep.FinalMean) / rep.InitMean
	if diff := rep.ImpMean - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ImpMean = %v, want %v", rep.ImpMean, wantMean)
	}
	if rep.ImpMean < 0 {
		t.Fatalf("mean improvement negative: %v", rep.ImpMean)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(smallSpec("adult", "max"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallSpec("adult", "max"))
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalMin != b.FinalMin || a.FinalMean != b.FinalMean || a.FinalMax != b.FinalMax {
		t.Fatalf("same seed, different outcomes: %v vs %v", a.FinalMean, b.FinalMean)
	}
}

func TestRunRobustnessRemovesBest(t *testing.T) {
	full, err := Run(smallSpec("flare", "max"))
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec("flare", "max")
	spec.RemoveBestFrac = 0.10
	rob, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	popSize := 104.0
	wantSize := 104 - int(0.10*popSize)
	if len(rob.Initial) != wantSize {
		t.Fatalf("robust population = %d, want %d", len(rob.Initial), wantSize)
	}
	// The handicapped run starts from a worse best score.
	if rob.InitMin < full.InitMin {
		t.Fatalf("removing the best lowered the initial min: %v < %v", rob.InitMin, full.InitMin)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	if _, err := Run(Spec{Dataset: "unknown"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	s := smallSpec("flare", "median")
	if _, err := Run(s); err == nil {
		t.Error("unknown aggregator accepted")
	}
	s = smallSpec("flare", "max")
	s.RemoveBestFrac = 1.0
	if _, err := Run(s); err == nil {
		t.Error("RemoveBestFrac=1 accepted")
	}
	s = smallSpec("flare", "max")
	s.Selection = "nope"
	if _, err := Run(s); err == nil {
		t.Error("unknown selection accepted")
	}
}

func TestRunParetoAndAcceptanceMetrics(t *testing.T) {
	rep, err := Run(smallSpec("flare", "max"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FrontInit < 1 || rep.FrontInit > len(rep.Initial) {
		t.Fatalf("FrontInit = %d", rep.FrontInit)
	}
	if rep.FrontFinal < 1 || rep.FrontFinal > len(rep.Final) {
		t.Fatalf("FrontFinal = %d", rep.FrontFinal)
	}
	// Hypervolumes live inside the [0,100]^2 reference box. (Score-based
	// elitism does not guarantee Pareto growth — a lower-score child need
	// not dominate the parent it replaces — so only bounds are asserted.)
	for _, hv := range []float64{rep.HVInit, rep.HVFinal} {
		if hv <= 0 || hv > 100*100 {
			t.Fatalf("hypervolume out of range: init %v final %v", rep.HVInit, rep.HVFinal)
		}
	}
	if rep.TotalOffspring != 40 && rep.TotalOffspring != 80 {
		// 40 generations of 1 or 2 evals each: bounds.
		if rep.TotalOffspring < 40 || rep.TotalOffspring > 80 {
			t.Fatalf("TotalOffspring = %d", rep.TotalOffspring)
		}
	}
	if rep.AcceptedOffspring > rep.TotalOffspring {
		t.Fatalf("accepted %d > total %d", rep.AcceptedOffspring, rep.TotalOffspring)
	}
}

func TestRunWithExtendedAggregators(t *testing.T) {
	for _, agg := range []string{"euclidean", "weighted:0.7"} {
		rep, err := Run(smallSpec("adult", agg))
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		if rep.FinalMean > rep.InitMean+1e-9 {
			t.Errorf("%s: mean worsened", agg)
		}
	}
}

func TestBalance(t *testing.T) {
	pairs := []score.Pair{{IL: 10, DR: 30}, {IL: 40, DR: 20}}
	if got := Balance(pairs); got != 20 {
		t.Fatalf("Balance = %v, want 20", got)
	}
	if got := Balance(nil); got != 0 {
		t.Fatalf("Balance(nil) = %v", got)
	}
}

func TestReportRendering(t *testing.T) {
	rep, err := Run(smallSpec("adult", "mean"))
	if err != nil {
		t.Fatal(err)
	}
	disp := rep.DispersionPlot(60, 14)
	if !strings.Contains(disp, "o=initial") || !strings.Contains(disp, "*=final") {
		t.Fatalf("dispersion plot incomplete:\n%s", disp)
	}
	evo := rep.EvolutionPlot(60, 14)
	if !strings.Contains(evo, "M=max") || !strings.Contains(evo, "_=min") {
		t.Fatalf("evolution plot incomplete:\n%s", evo)
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "max score") || !strings.Contains(sum, "improvement") {
		t.Fatalf("summary incomplete:\n%s", sum)
	}

	var buf bytes.Buffer
	if err := rep.WriteDispersionCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1+2*86 {
		t.Fatalf("dispersion CSV rows = %d, want %d", lines, 1+2*86)
	}
	buf.Reset()
	if err := rep.WriteEvolutionCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1+40+1 {
		t.Fatalf("evolution CSV rows = %d, want %d", lines, 1+40+1)
	}
}

func TestEvolutionSeriesIncludesGen0(t *testing.T) {
	rep, err := Run(smallSpec("german", "max"))
	if err != nil {
		t.Fatal(err)
	}
	series := rep.EvolutionSeries()
	if len(series) != 3 {
		t.Fatalf("series count = %d", len(series))
	}
	for _, s := range series {
		if len(s.Values) != 41 { // gen0 + 40 generations
			t.Fatalf("%s length = %d, want 41", s.Name, len(s.Values))
		}
	}
	if series[0].Values[0] != rep.Gen0.Max {
		t.Fatal("gen0 missing from max series")
	}
}
