package experiment

import (
	"fmt"
	"io"
	"math/rand/v2"
	"strings"

	"evoprot/internal/dataset"
	"evoprot/internal/protection"
	"evoprot/internal/score"
)

// Sweep evaluates one masking method across a parameter range — the
// manual exploration an SDC practitioner does before (or instead of)
// running the evolutionary optimizer, and the procedure that builds the
// paper's initial populations in the first place. The result is the
// method's trajectory through the (IL, DR) plane.

// SweepPoint is one parameter setting's outcome.
type SweepPoint struct {
	// Param is the swept parameter value.
	Param float64
	// Spec is the full method spec that produced the point.
	Spec string
	// Eval is the fitness breakdown of the masked dataset.
	Eval score.Evaluation
}

// SweepSpec describes a parameter sweep.
type SweepSpec struct {
	// Method is the method family: micro, top, bottom, recode, rankswap,
	// pram.
	Method string
	// Param is the parameter to sweep (k, q, depth, p, theta — the
	// family's main knob; see protection.Parse).
	Param string
	// From, To, Steps define the sweep grid (Steps >= 1 points, inclusive
	// of both ends when Steps > 1).
	From, To float64
	// Steps is the number of grid points.
	Steps int
	// Seed drives the stochastic methods.
	Seed uint64
}

// Sweep runs the spec against orig over the given protected attributes.
func Sweep(orig *dataset.Dataset, attrs []int, eval *score.Evaluator, spec SweepSpec) ([]SweepPoint, error) {
	if spec.Steps < 1 {
		return nil, fmt.Errorf("experiment: sweep needs at least 1 step, got %d", spec.Steps)
	}
	integral := spec.Param == "k" || spec.Param == "depth" || spec.Param == "config"
	rng := rand.New(rand.NewPCG(spec.Seed, 0x2545f4914f6cdd1d))
	points := make([]SweepPoint, 0, spec.Steps)
	for i := 0; i < spec.Steps; i++ {
		v := spec.From
		switch {
		case spec.Steps > 1 && i == spec.Steps-1:
			v = spec.To // exact endpoint, no accumulated float error
		case spec.Steps > 1:
			v += (spec.To - spec.From) * float64(i) / float64(spec.Steps-1)
		}
		var valueStr string
		if integral {
			valueStr = fmt.Sprintf("%d", int(v+0.5))
		} else {
			valueStr = fmt.Sprintf("%.6g", v)
		}
		methodSpec := fmt.Sprintf("%s:%s=%s", spec.Method, spec.Param, valueStr)
		m, err := protection.Parse(methodSpec)
		if err != nil {
			return nil, err
		}
		masked, err := m.Protect(orig, attrs, rng)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep at %s: %w", methodSpec, err)
		}
		ev, err := eval.Evaluate(masked)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{Param: v, Spec: methodSpec, Eval: ev})
	}
	return points, nil
}

// WriteSweepCSV exports sweep points as CSV with the full measure
// breakdown.
func WriteSweepCSV(w io.Writer, points []SweepPoint) error {
	if len(points) == 0 {
		return fmt.Errorf("experiment: no sweep points")
	}
	ilNames := sortedKeys(points[0].Eval.ILParts)
	drNames := sortedKeys(points[0].Eval.DRParts)
	header := append([]string{"param", "spec", "il", "dr", "score"}, append(ilNames, drNames...)...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, p := range points {
		fields := []string{
			fmt.Sprintf("%g", p.Param), p.Spec,
			fmt.Sprintf("%.4f", p.Eval.IL), fmt.Sprintf("%.4f", p.Eval.DR), fmt.Sprintf("%.4f", p.Eval.Score),
		}
		for _, n := range ilNames {
			fields = append(fields, fmt.Sprintf("%.4f", p.Eval.ILParts[n]))
		}
		for _, n := range drNames {
			fields = append(fields, fmt.Sprintf("%.4f", p.Eval.DRParts[n]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: the maps hold 3-5 entries.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
