package experiment

import (
	"bytes"
	"strings"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/score"
)

func sweepSetup(t *testing.T) (*score.Evaluator, []int) {
	t.Helper()
	orig := datagen.MustByName("flare", 120, 3)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := orig.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := score.NewEvaluator(orig, attrs, score.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eval, attrs
}

func TestSweepPRAMTrajectory(t *testing.T) {
	eval, attrs := sweepSetup(t)
	points, err := Sweep(eval.Orig(), attrs, eval, SweepSpec{
		Method: "pram", Param: "theta", From: 0.2, To: 0.9, Steps: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Param != 0.2 || points[4].Param != 0.9 {
		t.Fatalf("grid endpoints = %v, %v", points[0].Param, points[4].Param)
	}
	// More retention (higher theta) must mean less information loss.
	if points[0].Eval.IL <= points[4].Eval.IL {
		t.Fatalf("IL not decreasing in theta: %v -> %v", points[0].Eval.IL, points[4].Eval.IL)
	}
}

func TestSweepIntegralParams(t *testing.T) {
	eval, attrs := sweepSetup(t)
	points, err := Sweep(eval.Orig(), attrs, eval, SweepSpec{
		Method: "micro", Param: "k", From: 2, To: 10, Steps: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Spec != "micro:k=2" || points[4].Spec != "micro:k=10" {
		t.Fatalf("specs = %v ... %v", points[0].Spec, points[4].Spec)
	}
	// Larger k loses more information.
	if points[0].Eval.IL >= points[4].Eval.IL {
		t.Fatalf("IL not increasing in k: %v -> %v", points[0].Eval.IL, points[4].Eval.IL)
	}
}

func TestSweepSingleStep(t *testing.T) {
	eval, attrs := sweepSetup(t)
	points, err := Sweep(eval.Orig(), attrs, eval, SweepSpec{
		Method: "top", Param: "q", From: 0.2, To: 0.9, Steps: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Param != 0.2 {
		t.Fatalf("points = %+v", points)
	}
}

func TestSweepErrors(t *testing.T) {
	eval, attrs := sweepSetup(t)
	if _, err := Sweep(eval.Orig(), attrs, eval, SweepSpec{Method: "pram", Param: "theta", Steps: 0}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := Sweep(eval.Orig(), attrs, eval, SweepSpec{Method: "wat", Param: "x", From: 1, To: 2, Steps: 2}); err == nil {
		t.Error("unknown method accepted")
	}
	// Out-of-range parameter values surface as parse/validation errors.
	if _, err := Sweep(eval.Orig(), attrs, eval, SweepSpec{Method: "pram", Param: "theta", From: 2, To: 3, Steps: 2}); err == nil {
		t.Error("invalid theta range accepted")
	}
}

func TestWriteSweepCSV(t *testing.T) {
	eval, attrs := sweepSetup(t)
	points, err := Sweep(eval.Orig(), attrs, eval, SweepSpec{
		Method: "rankswap", Param: "p", From: 5, To: 15, Steps: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4", len(lines))
	}
	header := lines[0]
	for _, col := range []string{"param", "il", "dr", "score", "CTBIL", "DBIL", "EBIL", "DBRL", "ID", "PRL", "RSRL"} {
		if !strings.Contains(header, col) {
			t.Fatalf("header missing %s: %q", col, header)
		}
	}
	if err := WriteSweepCSV(&buf, nil); err == nil {
		t.Error("empty points accepted")
	}
}
