// Package experiment reproduces the paper's evaluation (§3): it rebuilds
// the four initial populations from the §3 masking grids, runs the
// evolutionary algorithm under the two fitness aggregations (Eq. 1 mean,
// Eq. 2 max) and the robustness variants (best 5%/10% withheld), and
// reports everything behind the paper's figures and in-text tables —
// initial/final (IL, DR) dispersions, max/mean/min score evolutions,
// improvement percentages, and generation timing.
package experiment

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"evoprot/internal/core"
	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/pareto"
	"evoprot/internal/protection"
	"evoprot/internal/score"
)

// Spec identifies one experiment run. The zero value is not valid: Dataset
// is required.
type Spec struct {
	// Dataset is one of housing, german, flare, adult.
	Dataset string
	// Rows overrides the paper's record count (0 keeps it). Tests and
	// benchmarks shrink this; the algorithms are unchanged.
	Rows int
	// Aggregator is "mean" (Eq. 1, experiment 1) or "max" (Eq. 2,
	// experiments 2 and 3). Empty means "max".
	Aggregator string
	// RemoveBestFrac withholds this fraction of the best initial
	// individuals (experiment 3 uses 0.05 and 0.10). Zero keeps everyone.
	RemoveBestFrac float64
	// Generations is the evolution budget; 0 means 400.
	Generations int
	// Seed drives dataset synthesis, masking and evolution; a fixed seed
	// reproduces the run bit-for-bit.
	Seed uint64
	// InitWorkers parallelizes initial-population evaluation (0 =
	// sequential).
	InitWorkers int
	// Selection names the selection policy ("" = inverse-proportional).
	Selection string
	// NoImprovementWindow enables early stopping (0 = disabled).
	NoImprovementWindow int
}

func (s Spec) withDefaults() Spec {
	if s.Aggregator == "" {
		s.Aggregator = score.DefaultAggregatorName
	}
	if s.Generations == 0 {
		s.Generations = core.DefaultGenerations
	}
	return s
}

// Name returns a compact identifier like "flare/max-5%".
func (s Spec) Name() string {
	s = s.withDefaults()
	name := fmt.Sprintf("%s/%s", s.Dataset, s.Aggregator)
	if s.RemoveBestFrac > 0 {
		name += fmt.Sprintf("-%.0f%%", s.RemoveBestFrac*100)
	}
	return name
}

// Report is the full outcome of one experiment run.
type Report struct {
	// Spec is the (defaulted) specification that produced the report.
	Spec Spec
	// Composition is the §3 masking-grid composition used for the initial
	// population.
	Composition protection.Composition
	// Labels holds the origin label of each initial individual, aligned
	// with Initial.
	Labels []string
	// Initial and Final are the populations' (IL, DR) pairs — the data of
	// the dispersion figures.
	Initial []score.Pair
	Final   []score.Pair
	// Gen0 summarizes the initial population; Series has one entry per
	// generation — the data of the evolution figures.
	Gen0   core.GenStats
	Series []core.GenStats
	// InitMin/.../FinalMax are population score summaries.
	InitMin, InitMean, InitMax    float64
	FinalMin, FinalMean, FinalMax float64
	// ImpMin/Mean/Max are the improvement percentages the paper reports in
	// the §3.1/§3.2 text, e.g. ImpMax = 100·(InitMax−FinalMax)/InitMax.
	ImpMin, ImpMean, ImpMax float64
	// FrontInit/FrontFinal are the Pareto-front sizes of the initial and
	// final populations; HVInit/HVFinal the hypervolumes dominated within
	// [0,100]² (larger = closer to the ideal (0,0) protection). These
	// extend the paper's single-score summaries with the standard
	// multi-objective view (DESIGN.md).
	FrontInit, FrontFinal int
	HVInit, HVFinal       float64
	// AcceptedOffspring/TotalOffspring expose the elitist replacement's
	// acceptance rate.
	AcceptedOffspring, TotalOffspring int
	// AvgMutationGen and AvgCrossoverGen are mean wall-clock times per
	// generation by operator; EvalShare is the fraction of generation time
	// spent in fitness evaluation (the paper's §3.2 timing table).
	AvgMutationGen  time.Duration
	AvgCrossoverGen time.Duration
	EvalShare       float64
	// Evaluations counts fitness evaluations including the initial
	// population (and the pre-run evaluation when RemoveBestFrac > 0).
	Evaluations int
	// StopReason records why the evolution ended (budget or stagnation;
	// cancelled experiments return an error instead of a report).
	StopReason core.StopReason
	// Duration is the end-to-end wall time of the run.
	Duration time.Duration
}

// BuildPopulation reconstructs the §3 initial population for the dataset:
// every masking method of the paper's composition applied to orig over the
// protected attributes.
func BuildPopulation(orig *dataset.Dataset, attrs []int, datasetName string, seed uint64) ([]*core.Individual, error) {
	comp, err := protection.PaperComposition(datasetName)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb))
	methods := comp.Grid(len(attrs))
	pop := make([]*core.Individual, 0, len(methods))
	for _, m := range methods {
		masked, err := m.Protect(orig, attrs, rng)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", protection.String(m), err)
		}
		pop = append(pop, core.NewIndividual(masked, protection.String(m)))
	}
	return pop, nil
}

// Run executes the experiment described by spec.
func Run(spec Spec) (*Report, error) { return RunContext(context.Background(), spec) }

// RunContext executes the experiment described by spec under ctx. The
// context is checked between generations; a cancelled or expired context
// aborts the experiment and returns the context's error (experiments are
// all-or-nothing: a partial report would mis-state the paper's figures).
func RunContext(ctx context.Context, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	start := time.Now()

	orig, err := datagen.ByName(spec.Dataset, spec.Rows, spec.Seed)
	if err != nil {
		return nil, err
	}
	names, err := datagen.ProtectedAttrs(spec.Dataset)
	if err != nil {
		return nil, err
	}
	attrs, err := orig.Schema().Indices(names...)
	if err != nil {
		return nil, err
	}
	agg, err := score.ExtendedAggregatorByName(spec.Aggregator)
	if err != nil {
		return nil, err
	}
	eval, err := score.NewEvaluator(orig, attrs, score.Config{Aggregator: agg})
	if err != nil {
		return nil, err
	}
	comp, err := protection.PaperComposition(spec.Dataset)
	if err != nil {
		return nil, err
	}
	pop, err := BuildPopulation(orig, attrs, spec.Dataset, spec.Seed)
	if err != nil {
		return nil, err
	}

	extraEvals := 0
	if spec.RemoveBestFrac > 0 {
		pop, err = removeBest(ctx, eval, pop, spec.RemoveBestFrac, spec.InitWorkers)
		if err != nil {
			return nil, err
		}
		extraEvals = len(pop) // the pre-run evaluation pass
	}

	sel, err := core.SelectionByName(spec.Selection)
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine(eval, pop, core.Config{
		Generations:         spec.Generations,
		Seed:                spec.Seed + 1,
		Selection:           sel,
		InitWorkers:         spec.InitWorkers,
		NoImprovementWindow: spec.NoImprovementWindow,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Spec:        spec,
		Composition: comp,
		Gen0:        engine.Stats(),
	}
	initial := engine.Population()
	rep.Labels = make([]string, len(initial))
	rep.Initial = make([]score.Pair, len(initial))
	for i, ind := range initial {
		rep.Labels[i] = ind.Origin
		rep.Initial[i] = ind.Eval.Pair()
	}
	rep.InitMin, rep.InitMean, rep.InitMax = rep.Gen0.Min, rep.Gen0.Mean, rep.Gen0.Max

	res, err := engine.Run(ctx)
	if err != nil {
		return nil, err
	}
	rep.StopReason = res.StopReason
	rep.Series = res.History
	rep.Final = make([]score.Pair, len(res.Population))
	for i, ind := range res.Population {
		rep.Final[i] = ind.Eval.Pair()
	}
	last := res.History[len(res.History)-1]
	rep.FinalMin, rep.FinalMean, rep.FinalMax = last.Min, last.Mean, last.Max
	rep.ImpMin = improvement(rep.InitMin, rep.FinalMin)
	rep.ImpMean = improvement(rep.InitMean, rep.FinalMean)
	rep.ImpMax = improvement(rep.InitMax, rep.FinalMax)
	rep.Evaluations = res.Evaluations + extraEvals
	rep.AcceptedOffspring = res.AcceptedOffspring
	rep.TotalOffspring = res.TotalOffspring
	ref := score.Pair{IL: 100, DR: 100}
	rep.FrontInit = len(pareto.Front(rep.Initial))
	rep.FrontFinal = len(pareto.Front(rep.Final))
	if rep.HVInit, err = pareto.Hypervolume(rep.Initial, ref); err != nil {
		return nil, err
	}
	if rep.HVFinal, err = pareto.Hypervolume(rep.Final, ref); err != nil {
		return nil, err
	}

	mutTime, mutN := time.Duration(0), 0
	crossTime, crossN := time.Duration(0), 0
	evalTime, totalTime := time.Duration(0), time.Duration(0)
	for _, gs := range res.History {
		if gs.Op == "mutation" {
			mutTime += gs.TotalTime
			mutN++
		} else {
			crossTime += gs.TotalTime
			crossN++
		}
		evalTime += gs.EvalTime
		totalTime += gs.TotalTime
	}
	if mutN > 0 {
		rep.AvgMutationGen = mutTime / time.Duration(mutN)
	}
	if crossN > 0 {
		rep.AvgCrossoverGen = crossTime / time.Duration(crossN)
	}
	if totalTime > 0 {
		rep.EvalShare = float64(evalTime) / float64(totalTime)
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

// removeBest evaluates the population and drops the best frac of it —
// experiment 3's handicap.
func removeBest(ctx context.Context, eval *score.Evaluator, pop []*core.Individual, frac float64, workers int) ([]*core.Individual, error) {
	if frac < 0 || frac >= 1 {
		return nil, fmt.Errorf("experiment: RemoveBestFrac %v outside [0,1)", frac)
	}
	data := make([]*dataset.Dataset, len(pop))
	for i, ind := range pop {
		data[i] = ind.Data
	}
	evs, err := eval.EvaluateAll(ctx, data, workers)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return evs[idx[a]].Score < evs[idx[b]].Score })
	drop := int(frac * float64(len(pop)))
	if drop >= len(pop)-1 {
		return nil, fmt.Errorf("experiment: removing %d of %d individuals leaves no population", drop, len(pop))
	}
	kept := make([]*core.Individual, 0, len(pop)-drop)
	for _, i := range idx[drop:] {
		kept = append(kept, pop[i])
	}
	return kept, nil
}

// improvement returns the percentage decrease from init to final, the
// quantity the paper reports ("a decrement from 41.95 to 36.6, 12.75% of
// improvement").
func improvement(init, final float64) float64 {
	if init == 0 {
		return 0
	}
	return 100 * (init - final) / init
}

// Balance returns the mean |IL−DR| of a population's pairs — the
// equilibrium statistic behind the paper's §3.2 observation that Eq. 2
// yields more balanced protections than Eq. 1.
func Balance(pairs []score.Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pairs {
		d := p.IL - p.DR
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(pairs))
}
