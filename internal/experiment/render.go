package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"evoprot/internal/textplot"
)

// DispersionSeries converts the report's initial/final populations into
// scatter series for the paper's dispersion figures.
func (r *Report) DispersionSeries() []textplot.ScatterSeries {
	initial := make([]textplot.Point, len(r.Initial))
	for i, p := range r.Initial {
		initial[i] = textplot.Point{X: p.IL, Y: p.DR}
	}
	final := make([]textplot.Point, len(r.Final))
	for i, p := range r.Final {
		final[i] = textplot.Point{X: p.IL, Y: p.DR}
	}
	return []textplot.ScatterSeries{
		{Name: "initial", Marker: 'o', Points: initial},
		{Name: "final", Marker: '*', Points: final},
	}
}

// EvolutionSeries converts the run history into max/mean/min line series
// for the paper's evolution figures; generation 0 is included.
func (r *Report) EvolutionSeries() []textplot.LineSeries {
	maxS := make([]float64, 0, len(r.Series)+1)
	meanS := make([]float64, 0, len(r.Series)+1)
	minS := make([]float64, 0, len(r.Series)+1)
	maxS = append(maxS, r.Gen0.Max)
	meanS = append(meanS, r.Gen0.Mean)
	minS = append(minS, r.Gen0.Min)
	for _, gs := range r.Series {
		maxS = append(maxS, gs.Max)
		meanS = append(meanS, gs.Mean)
		minS = append(minS, gs.Min)
	}
	return []textplot.LineSeries{
		{Name: "max", Marker: 'M', Values: maxS},
		{Name: "mean", Marker: '+', Values: meanS},
		{Name: "min", Marker: '_', Values: minS},
	}
}

// DispersionPlot renders the dispersion figure as text.
func (r *Report) DispersionPlot(width, height int) string {
	title := fmt.Sprintf("Dispersion %s: initial vs final population (IL, DR)", r.Spec.Name())
	return textplot.Scatter(r.DispersionSeries(), width, height, title, "information loss", "DR")
}

// EvolutionPlot renders the evolution figure as text.
func (r *Report) EvolutionPlot(width, height int) string {
	title := fmt.Sprintf("Evolution %s: max/mean/min score by generation", r.Spec.Name())
	return textplot.Lines(r.EvolutionSeries(), width, height, title, "generation", "score")
}

// WriteDispersionCSV exports the dispersion data.
func (r *Report) WriteDispersionCSV(w io.Writer) error {
	return textplot.WriteScatterCSV(w, r.DispersionSeries(), "il", "dr")
}

// WriteEvolutionCSV exports the evolution data.
func (r *Report) WriteEvolutionCSV(w io.Writer) error {
	return textplot.WriteLinesCSV(w, r.EvolutionSeries(), "generation")
}

// Summary formats the improvement numbers the paper reports in its §3
// text, plus balance and timing.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment %s (%d individuals, %d generations, %d evaluations)\n",
		r.Spec.Name(), len(r.Initial), len(r.Series), r.Evaluations)
	fmt.Fprintf(&b, "  max score:  %7.2f -> %7.2f  (%5.2f%% improvement)\n", r.InitMax, r.FinalMax, r.ImpMax)
	fmt.Fprintf(&b, "  mean score: %7.2f -> %7.2f  (%5.2f%% improvement)\n", r.InitMean, r.FinalMean, r.ImpMean)
	fmt.Fprintf(&b, "  min score:  %7.2f -> %7.2f  (%5.2f%% improvement)\n", r.InitMin, r.FinalMin, r.ImpMin)
	fmt.Fprintf(&b, "  balance |IL-DR|: %.2f -> %.2f\n", Balance(r.Initial), Balance(r.Final))
	fmt.Fprintf(&b, "  pareto front: %d -> %d individuals, hypervolume %.0f -> %.0f\n",
		r.FrontInit, r.FrontFinal, r.HVInit, r.HVFinal)
	if r.TotalOffspring > 0 {
		fmt.Fprintf(&b, "  offspring accepted: %d/%d (%.1f%%)\n",
			r.AcceptedOffspring, r.TotalOffspring, 100*float64(r.AcceptedOffspring)/float64(r.TotalOffspring))
	}
	fmt.Fprintf(&b, "  avg generation: mutation %v, crossover %v (%.1f%% in fitness evaluation)\n",
		r.AvgMutationGen.Round(time.Microsecond),
		r.AvgCrossoverGen.Round(time.Microsecond),
		100*r.EvalShare)
	return b.String()
}
