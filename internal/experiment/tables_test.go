package experiment

import (
	"strings"
	"testing"
	"time"
)

func tableReports(t *testing.T) []*Report {
	t.Helper()
	var reports []*Report
	for _, remove := range []float64{0, 0.10} {
		spec := smallSpec("flare", "max")
		spec.RemoveBestFrac = remove
		rep, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	return reports
}

func TestImprovementTable(t *testing.T) {
	reports := tableReports(t)
	table := ImprovementTable(reports)
	if !strings.Contains(table, "flare/max") || !strings.Contains(table, "flare/max-10%") {
		t.Fatalf("rows missing:\n%s", table)
	}
	if !strings.Contains(table, "max score") || !strings.Contains(table, "min score") {
		t.Fatalf("header missing:\n%s", table)
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 1+len(reports) {
		t.Fatalf("line count = %d, want %d", len(lines), 1+len(reports))
	}
}

func TestTimingTable(t *testing.T) {
	reports := tableReports(t)
	table := TimingTable(reports)
	for _, want := range []string{"mutation generation", "crossover generation", "ratio", "evaluation share"} {
		if !strings.Contains(table, want) {
			t.Fatalf("missing %q:\n%s", want, table)
		}
	}
}

func TestTimingTableEmpty(t *testing.T) {
	if got := TimingTable(nil); !strings.Contains(got, "no generation data") {
		t.Fatalf("empty timing table = %q", got)
	}
	// Reports without any generations contribute nothing.
	if got := TimingTable([]*Report{{}}); !strings.Contains(got, "no generation data") {
		t.Fatalf("zero report timing table = %q", got)
	}
}

func TestTimingTableAveraging(t *testing.T) {
	a := &Report{AvgMutationGen: 10 * time.Millisecond, AvgCrossoverGen: 20 * time.Millisecond, EvalShare: 0.9}
	b := &Report{AvgMutationGen: 30 * time.Millisecond, AvgCrossoverGen: 60 * time.Millisecond, EvalShare: 1.0}
	table := TimingTable([]*Report{a, b})
	if !strings.Contains(table, "20ms") || !strings.Contains(table, "40ms") {
		t.Fatalf("averages wrong:\n%s", table)
	}
	if !strings.Contains(table, "2.00x") {
		t.Fatalf("ratio wrong:\n%s", table)
	}
	if !strings.Contains(table, "95.0%") {
		t.Fatalf("share wrong:\n%s", table)
	}
}

func TestRobustnessTable(t *testing.T) {
	reports := tableReports(t)
	table, err := RobustnessTable(reports)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "full") || !strings.Contains(table, "without best 10%") {
		t.Fatalf("rows missing:\n%s", table)
	}
	if !strings.Contains(table, "gap") {
		t.Fatalf("header missing:\n%s", table)
	}
}

func TestRobustnessTableRequiresBaseline(t *testing.T) {
	spec := smallSpec("flare", "max")
	spec.RemoveBestFrac = 0.05
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RobustnessTable([]*Report{rep}); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
