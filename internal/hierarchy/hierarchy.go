// Package hierarchy implements value generalization hierarchies (VGH) over
// ordered categorical domains. Global recoding and top/bottom coding use a
// hierarchy to decide which categories collapse together; the collapsed
// group is then represented by an in-domain category (its weighted median),
// so masked files stay within the original domain — a requirement of the
// evolutionary operators, which may only produce "valid values for the
// specific variable" (paper §2.2.1).
package hierarchy

import "fmt"

// Hierarchy is a nested sequence of coarsenings of a categorical domain of
// the given cardinality. Level 0 is the identity (every category its own
// group); deeper levels merge groups; the last level need not be a single
// group.
type Hierarchy struct {
	card   int
	levels [][]int // levels[l][cat] = group id at level l; levels[0][c] = c
}

// Auto builds a hierarchy by repeatedly merging runs of `fanout` adjacent
// categories (adjacency in domain order), until everything is one group.
// This is the natural automatic VGH for ordered domains (e.g. decades ->
// 20-year bins -> 40-year bins ...). fanout must be at least 2.
func Auto(card, fanout int) (*Hierarchy, error) {
	if card <= 0 {
		return nil, fmt.Errorf("hierarchy: non-positive cardinality %d", card)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("hierarchy: fanout %d < 2", fanout)
	}
	var levels [][]int
	identity := make([]int, card)
	for c := range identity {
		identity[c] = c
	}
	levels = append(levels, identity)
	width := 1
	for {
		prevGroups := numGroups(levels[len(levels)-1])
		if prevGroups == 1 {
			break
		}
		width *= fanout
		level := make([]int, card)
		for c := 0; c < card; c++ {
			level[c] = c / width
		}
		levels = append(levels, level)
	}
	return &Hierarchy{card: card, levels: levels}, nil
}

// MustAuto is Auto that panics on error; for statically-valid parameters.
func MustAuto(card, fanout int) *Hierarchy {
	h, err := Auto(card, fanout)
	if err != nil {
		panic(err)
	}
	return h
}

// FromLevels builds a hierarchy from explicit level maps. Level 0 must be
// the identity, group ids at each level must be contiguous starting at 0,
// and levels must nest: categories sharing a group at level l must share a
// group at level l+1.
func FromLevels(card int, levels [][]int) (*Hierarchy, error) {
	if card <= 0 {
		return nil, fmt.Errorf("hierarchy: non-positive cardinality %d", card)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("hierarchy: no levels")
	}
	for l, level := range levels {
		if len(level) != card {
			return nil, fmt.Errorf("hierarchy: level %d has %d entries, want %d", l, len(level), card)
		}
		seen := make(map[int]bool)
		maxGroup := -1
		for c, g := range level {
			if g < 0 {
				return nil, fmt.Errorf("hierarchy: level %d category %d has negative group", l, c)
			}
			seen[g] = true
			if g > maxGroup {
				maxGroup = g
			}
			if l == 0 && g != c {
				return nil, fmt.Errorf("hierarchy: level 0 must be the identity (category %d -> group %d)", c, g)
			}
		}
		for g := 0; g <= maxGroup; g++ {
			if !seen[g] {
				return nil, fmt.Errorf("hierarchy: level %d group ids not contiguous (missing %d)", l, g)
			}
		}
		if l > 0 {
			// Nesting: same group at l-1 implies same group at l.
			groupOf := make(map[int]int)
			for c := 0; c < card; c++ {
				prev := levels[l-1][c]
				if g, ok := groupOf[prev]; ok {
					if g != level[c] {
						return nil, fmt.Errorf("hierarchy: level %d does not nest level %d at category %d", l, l-1, c)
					}
				} else {
					groupOf[prev] = level[c]
				}
			}
		}
	}
	own := make([][]int, len(levels))
	for l, level := range levels {
		own[l] = make([]int, card)
		copy(own[l], level)
	}
	return &Hierarchy{card: card, levels: own}, nil
}

// Cardinality returns the domain size the hierarchy is defined over.
func (h *Hierarchy) Cardinality() int { return h.card }

// NumLevels returns the number of levels including the identity level 0.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// Group returns the group id of category cat at the given level.
func (h *Hierarchy) Group(level, cat int) int { return h.levels[level][cat] }

// GroupsAt returns the number of groups at the given level.
func (h *Hierarchy) GroupsAt(level int) int { return numGroups(h.levels[level]) }

// Members returns the categories belonging to the given group at the given
// level, in domain order.
func (h *Hierarchy) Members(level, group int) []int {
	var out []int
	for c, g := range h.levels[level] {
		if g == group {
			out = append(out, c)
		}
	}
	return out
}

// Representative returns the in-domain category that stands for the given
// group at the given level: the weighted median member under the provided
// per-category counts (the data distribution). With nil or all-zero counts
// it falls back to the unweighted median member. Using the median keeps
// recoded files inside the original domain and minimizes rank displacement,
// matching the median-based categorical tradition of Torra (2004).
func (h *Hierarchy) Representative(level, group int, counts []int) int {
	members := h.Members(level, group)
	if len(members) == 0 {
		panic(fmt.Sprintf("hierarchy: empty group %d at level %d", group, level))
	}
	total := 0
	if counts != nil {
		for _, m := range members {
			total += counts[m]
		}
	}
	if total == 0 {
		return members[len(members)/2]
	}
	half := (total + 1) / 2
	cum := 0
	for _, m := range members {
		cum += counts[m]
		if cum >= half {
			return m
		}
	}
	return members[len(members)-1]
}

// Recode returns the per-category recoding map at the given level: each
// category maps to the representative of its group. counts may be nil.
func (h *Hierarchy) Recode(level int, counts []int) []int {
	reps := make(map[int]int)
	out := make([]int, h.card)
	for c := 0; c < h.card; c++ {
		g := h.levels[level][c]
		rep, ok := reps[g]
		if !ok {
			rep = h.Representative(level, g, counts)
			reps[g] = rep
		}
		out[c] = rep
	}
	return out
}

func numGroups(level []int) int {
	seen := make(map[int]bool)
	for _, g := range level {
		seen[g] = true
	}
	return len(seen)
}
