package hierarchy

import (
	"testing"
	"testing/quick"
)

func TestAutoBinary(t *testing.T) {
	h, err := Auto(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Levels: identity(8 groups), 4, 2, 1.
	if h.NumLevels() != 4 {
		t.Fatalf("NumLevels = %d, want 4", h.NumLevels())
	}
	wantGroups := []int{8, 4, 2, 1}
	for l, want := range wantGroups {
		if got := h.GroupsAt(l); got != want {
			t.Errorf("GroupsAt(%d) = %d, want %d", l, got, want)
		}
	}
	if h.Group(1, 0) != h.Group(1, 1) {
		t.Error("categories 0,1 should share a group at level 1")
	}
	if h.Group(1, 1) == h.Group(1, 2) {
		t.Error("categories 1,2 should not share a group at level 1")
	}
}

func TestAutoNonPowerCard(t *testing.T) {
	h, err := Auto(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// identity(5), level1: {0,0,1,1,2} = 3 groups, level2: {0,0,0,0,1} = 2, level3: 1.
	want := []int{5, 3, 2, 1}
	if h.NumLevels() != len(want) {
		t.Fatalf("NumLevels = %d, want %d", h.NumLevels(), len(want))
	}
	for l, w := range want {
		if got := h.GroupsAt(l); got != w {
			t.Errorf("GroupsAt(%d) = %d, want %d", l, got, w)
		}
	}
}

func TestAutoErrors(t *testing.T) {
	if _, err := Auto(0, 2); err == nil {
		t.Error("Auto(0,2) succeeded")
	}
	if _, err := Auto(4, 1); err == nil {
		t.Error("Auto(4,1) succeeded")
	}
}

func TestAutoSingleCategory(t *testing.T) {
	h, err := Auto(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 1 || h.GroupsAt(0) != 1 {
		t.Fatalf("degenerate hierarchy: levels=%d groups=%d", h.NumLevels(), h.GroupsAt(0))
	}
}

func TestAutoNesting(t *testing.T) {
	// Property: Auto hierarchies always nest.
	f := func(rawCard, rawFan uint8) bool {
		card := int(rawCard%30) + 1
		fan := int(rawFan%4) + 2
		h, err := Auto(card, fan)
		if err != nil {
			return false
		}
		for l := 1; l < h.NumLevels(); l++ {
			for a := 0; a < card; a++ {
				for b := a + 1; b < card; b++ {
					if h.Group(l-1, a) == h.Group(l-1, b) && h.Group(l, a) != h.Group(l, b) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromLevelsValid(t *testing.T) {
	levels := [][]int{
		{0, 1, 2, 3},
		{0, 0, 1, 1},
		{0, 0, 0, 0},
	}
	h, err := FromLevels(4, levels)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 3 || h.Cardinality() != 4 {
		t.Fatal("shape mismatch")
	}
}

func TestFromLevelsErrors(t *testing.T) {
	cases := []struct {
		name   string
		card   int
		levels [][]int
	}{
		{"no levels", 2, nil},
		{"wrong width", 2, [][]int{{0}}},
		{"level0 not identity", 2, [][]int{{0, 0}}},
		{"negative group", 2, [][]int{{0, 1}, {0, -1}}},
		{"non-contiguous", 3, [][]int{{0, 1, 2}, {0, 2, 2}}},
		{"not nested", 4, [][]int{{0, 1, 2, 3}, {0, 0, 1, 1}, {0, 1, 0, 1}}},
		{"zero card", 0, [][]int{{}}},
	}
	for _, c := range cases {
		if _, err := FromLevels(c.card, c.levels); err == nil {
			t.Errorf("%s: FromLevels succeeded, want error", c.name)
		}
	}
}

func TestMembers(t *testing.T) {
	h := MustAuto(6, 3)
	m := h.Members(1, 0)
	if len(m) != 3 || m[0] != 0 || m[1] != 1 || m[2] != 2 {
		t.Fatalf("Members(1,0) = %v", m)
	}
}

func TestRepresentativeUnweighted(t *testing.T) {
	h := MustAuto(4, 4) // level 1: one group of all four
	if got := h.Representative(1, 0, nil); got != 2 {
		t.Fatalf("unweighted representative = %d, want 2", got)
	}
}

func TestRepresentativeWeighted(t *testing.T) {
	h := MustAuto(4, 4)
	// Mass concentrated on category 0 pulls the median there.
	counts := []int{10, 1, 1, 1}
	if got := h.Representative(1, 0, counts); got != 0 {
		t.Fatalf("weighted representative = %d, want 0", got)
	}
	// Mass on the top category.
	counts = []int{1, 1, 1, 10}
	if got := h.Representative(1, 0, counts); got != 3 {
		t.Fatalf("weighted representative = %d, want 3", got)
	}
}

func TestRepresentativeZeroCounts(t *testing.T) {
	h := MustAuto(3, 3)
	if got := h.Representative(1, 0, []int{0, 0, 0}); got != 1 {
		t.Fatalf("zero-count representative = %d, want middle (1)", got)
	}
}

func TestRecodeStaysInGroup(t *testing.T) {
	f := func(rawCard, rawLevel uint8, rawCounts []uint8) bool {
		card := int(rawCard%20) + 1
		h, err := Auto(card, 2)
		if err != nil {
			return false
		}
		level := int(rawLevel) % h.NumLevels()
		counts := make([]int, card)
		for i := range counts {
			if i < len(rawCounts) {
				counts[i] = int(rawCounts[i])
			}
		}
		rec := h.Recode(level, counts)
		for c := 0; c < card; c++ {
			rep := rec[c]
			if rep < 0 || rep >= card {
				return false
			}
			// Representative must be in the same group as the category.
			if h.Group(level, rep) != h.Group(level, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecodeIdentityAtLevelZero(t *testing.T) {
	h := MustAuto(7, 2)
	rec := h.Recode(0, nil)
	for c, r := range rec {
		if r != c {
			t.Fatalf("Recode(0) not identity: %v", rec)
		}
	}
}
