package cluster

// Unit-level tests of the lease protocol: grant, renew, release,
// expiry, fencing and the cluster health surface. The determinism
// gates — leased runs matching standalone bit for bit, including
// through a forced mid-run lease expiry — live in topology_test.go.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"evoprot"
	"evoprot/internal/serve"
	"evoprot/internal/storage"
)

// testStores builds one of each storage backend for a parameterized
// test: the filesystem store over a temp dir and the in-memory store.
func testStores(t *testing.T) map[string]storage.Store {
	t.Helper()
	fs, err := storage.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]storage.Store{"fs": fs, "mem": storage.NewMem()}
}

// testCoordinator boots a coordinator over be and exposes it over real
// HTTP.
func testCoordinator(t *testing.T, be storage.Store, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg.Serve.Store = be
	if cfg.Serve.Logf == nil {
		cfg.Serve.Logf = t.Logf
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := c.Stop(stopCtx); err != nil {
			t.Errorf("stopping coordinator: %v", err)
		}
	})
	return c, ts
}

// startWorker runs a worker against the coordinator at base until the
// returned stop function is called (also registered as cleanup).
func startWorker(t *testing.T, base, name string, checkpointEvery int) (stop func()) {
	t.Helper()
	return startWorkerClient(t, base, name, checkpointEvery, nil)
}

// startWorkerClient is startWorker with a custom HTTP client — the hook
// fault tests inject a FlakyTransport through.
func startWorkerClient(t *testing.T, base, name string, checkpointEvery int, client *http.Client) (stop func()) {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator:     base,
		Name:            name,
		CheckpointEvery: checkpointEvery,
		Wait:            100 * time.Millisecond,
		Client:          client,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	var once bool
	stop = func() {
		if once {
			return
		}
		once = true
		cancel()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Errorf("worker %s did not stop", name)
		}
	}
	t.Cleanup(stop)
	return stop
}

// smallSpec is a quick deterministic job: 2 islands, 30 generations.
func smallSpec() evoprot.JobSpec {
	return evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         80,
		Generations:  30,
		Islands:      2,
		MigrateEvery: 5,
		Seed:         7,
	}
}

func postJob(t *testing.T, base string, spec evoprot.JobSpec) serve.JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		t.Fatalf("submit: HTTP %s: %s", resp.Status, buf.String())
	}
	var status serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	return status
}

func getStatus(t *testing.T, base, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: HTTP %s", resp.Status)
	}
	var status serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	return status
}

// waitFor polls the job status until pred holds or the deadline passes.
func waitFor(t *testing.T, base, id string, deadline time.Duration, pred func(serve.JobStatus) bool) serve.JobStatus {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		status := getStatus(t, base, id)
		if pred(status) {
			return status
		}
		if time.Now().After(end) {
			t.Fatalf("job %s never reached the awaited condition; last status: %+v", id, status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchEvents replays the NDJSON feed from offset 0.
func fetchEvents(t *testing.T, base, id string) []evoprot.Event {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events?offset=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %s", resp.Status)
	}
	var events []evoprot.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev evoprot.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func fetchResult(t *testing.T, base, id string) serve.JobResult {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %s", resp.Status)
	}
	var result serve.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	return result
}

// acquireLease POSTs /v1/lease and returns the HTTP status plus the
// decoded lease when one was granted.
func acquireLease(t *testing.T, base, worker string, wait time.Duration) (int, *Lease) {
	t.Helper()
	body, _ := json.Marshal(leaseRequest{Worker: worker, WaitMillis: wait.Milliseconds()})
	resp, err := http.Post(base+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var l Lease
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &l
}

// leasePost POSTs a lease verb with token and returns the HTTP status.
func leasePost(t *testing.T, base, job, verb, token, body string) int {
	t.Helper()
	if body == "" {
		body = "{}"
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/lease/"+job+"/"+verb, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(storage.LeaseHeader, token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestLeaseLifecycle drives the protocol by hand: grant, renew (right
// and wrong token), release via fail-with-requeue, re-grant, and a
// final fail that records the worker's error on the job.
func TestLeaseLifecycle(t *testing.T) {
	_, ts := testCoordinator(t, storage.NewMem(), Config{})
	status := postJob(t, ts.URL, smallSpec())
	id := status.ID

	code, l := acquireLease(t, ts.URL, "w1", 0)
	if code != http.StatusOK || l == nil || l.Job != id || l.Token == "" || l.TTLMillis <= 0 {
		t.Fatalf("acquire: HTTP %d, lease %+v", code, l)
	}
	if code, _ := acquireLease(t, ts.URL, "w2", 0); code != http.StatusNoContent {
		t.Fatalf("second acquire on an empty queue: HTTP %d, want 204", code)
	}

	if code := leasePost(t, ts.URL, id, "renew", l.Token, ""); code != http.StatusOK {
		t.Fatalf("renew: HTTP %d", code)
	}
	if code := leasePost(t, ts.URL, id, "renew", "bogus", ""); code != http.StatusConflict {
		t.Fatalf("renew with a stale token: HTTP %d, want 409", code)
	}

	// Release with requeue: the job goes back for another worker and the
	// old token dies with the lease.
	if code := leasePost(t, ts.URL, id, "fail", l.Token, `{"error":"moving on","requeue":true}`); code != http.StatusNoContent {
		t.Fatalf("fail(requeue): HTTP %d", code)
	}
	if code := leasePost(t, ts.URL, id, "complete", l.Token, ""); code != http.StatusConflict {
		t.Fatalf("complete with a released token: HTTP %d, want 409", code)
	}
	code, l2 := acquireLease(t, ts.URL, "w2", time.Second)
	if code != http.StatusOK || l2 == nil || l2.Job != id {
		t.Fatalf("re-acquire: HTTP %d, lease %+v", code, l2)
	}
	if l2.Token == l.Token {
		t.Fatal("re-grant reused the old fencing token")
	}

	// A terminal fail records the worker's error.
	if code := leasePost(t, ts.URL, id, "fail", l2.Token, `{"error":"dataset unreadable"}`); code != http.StatusNoContent {
		t.Fatalf("fail: HTTP %d", code)
	}
	failed := getStatus(t, ts.URL, id)
	if failed.State != serve.StateFailed || !strings.Contains(failed.Error, "dataset unreadable") {
		t.Fatalf("failed job status: %+v", failed)
	}
}

// TestLeaseExpiryFencesAndRequeues: a worker that stops renewing loses
// its job to the janitor; the job is re-leased to someone else and the
// dead worker's token can no longer write.
func TestLeaseExpiryFencesAndRequeues(t *testing.T) {
	c, ts := testCoordinator(t, storage.NewMem(), Config{
		LeaseTTL:   80 * time.Millisecond,
		SweepEvery: 10 * time.Millisecond,
	})
	status := postJob(t, ts.URL, smallSpec())
	id := status.ID

	code, l := acquireLease(t, ts.URL, "doomed", 0)
	if code != http.StatusOK {
		t.Fatalf("acquire: HTTP %d", code)
	}

	// No renewals: the janitor must reap the lease and requeue the job.
	deadline := time.Now().Add(5 * time.Second)
	var l2 *Lease
	for l2 == nil {
		if time.Now().After(deadline) {
			t.Fatal("expired lease never re-granted")
		}
		if code, got := acquireLease(t, ts.URL, "heir", 200*time.Millisecond); code == http.StatusOK {
			l2 = got
		}
	}
	if l2.Job != id || l2.Token == l.Token {
		t.Fatalf("re-grant %+v after lease %+v", l2, l)
	}

	// The dead worker's writes bounce; the heir's pass.
	old := storage.NewRemote(ts.URL+"/v1/store", storage.RemoteWithToken(func(string) string { return l.Token }))
	if err := old.Put(id, "junk", []byte("late write")); err == nil || !strings.Contains(err.Error(), "no active lease") {
		t.Fatalf("expired token wrote through the fence: %v", err)
	}
	heir := storage.NewRemote(ts.URL+"/v1/store", storage.RemoteWithToken(func(string) string { return l2.Token }))
	if err := heir.Put(id, "junk", []byte("fine")); err != nil {
		t.Fatalf("active leaseholder refused: %v", err)
	}
	_ = c
}

// TestAcquireSkipsCancelledJob: a job cancelled while queued is
// finalized but still sitting in the queue; acquire must skip it like
// the in-process pool does, not lease a terminal job.
func TestAcquireSkipsCancelledJob(t *testing.T) {
	_, ts := testCoordinator(t, storage.NewMem(), Config{})
	status := postJob(t, ts.URL, smallSpec())

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+status.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cancelled := getStatus(t, ts.URL, status.ID); cancelled.State != serve.StateCancelled {
		t.Fatalf("job after DELETE: %s", cancelled.State)
	}
	if code, l := acquireLease(t, ts.URL, "w", 0); code != http.StatusNoContent {
		t.Fatalf("acquire over a cancelled job: HTTP %d, lease %+v", code, l)
	}
}

// TestClusterHealth: the coordinator's health answer carries the
// cluster view — role, queue pressure and live leases.
func TestClusterHealth(t *testing.T) {
	_, ts := testCoordinator(t, storage.NewMem(), Config{})
	postJob(t, ts.URL, smallSpec())
	postJob(t, ts.URL, smallSpec())
	code, _ := acquireLease(t, ts.URL, "w", 0)
	if code != http.StatusOK {
		t.Fatalf("acquire: HTTP %d", code)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status   string `json:"status"`
		Role     string `json:"role"`
		Queued   int    `json:"queued"`
		Capacity int    `json:"queue_capacity"`
		Leases   int    `json:"leases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Role != "coordinator" {
		t.Fatalf("health: %+v", health)
	}
	if health.Queued != 1 || health.Leases != 1 || health.Capacity != serve.DefaultQueueDepth {
		t.Fatalf("health counters: %+v (want 1 queued, 1 lease, capacity %d)", health, serve.DefaultQueueDepth)
	}
}

// TestLeaseQueueAccounting: the coordinator's queue keeps the FIFO
// admission contract (bounded Push, exempt ForcePush, ordered drain)
// plus its own non-blocking TryPop.
func TestLeaseQueueAccounting(t *testing.T) {
	q := newLeaseQueue(2)
	if q.Cap() != 2 {
		t.Fatalf("Cap() = %d", q.Cap())
	}
	if !q.Push("a", 0) || !q.Push("b", 0) {
		t.Fatal("push under the bound refused")
	}
	if q.Push("c", 0) {
		t.Fatal("push over the bound admitted")
	}
	if !q.ForcePush("c", 0) {
		t.Fatal("ForcePush refused")
	}
	if q.Depth() != 3 {
		t.Fatalf("Depth() = %d", q.Depth())
	}
	// A late high-priority submission outranks the FIFO backlog, and
	// MaxPriority reports it while queued.
	if !q.ForcePush("urgent", 7) {
		t.Fatal("ForcePush refused")
	}
	if pri, ok := q.MaxPriority(); !ok || pri != 7 {
		t.Fatalf("MaxPriority = %d, %v; want 7, true", pri, ok)
	}
	for _, want := range []struct {
		id  string
		pri int
	}{{"urgent", 7}, {"a", 0}, {"b", 0}, {"c", 0}} {
		if id, pri, ok := q.TryPop(); !ok || id != want.id || pri != want.pri {
			t.Fatalf("TryPop = %q, %d, %v; want %q, %d", id, pri, ok, want.id, want.pri)
		}
	}
	if _, _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on an empty queue delivered")
	}
	if q.Closed() {
		t.Fatal("queue reports closed before Close")
	}
	q.Close()
	if !q.Closed() || q.Push("d", 0) || q.ForcePush("d", 0) {
		t.Fatal("closed queue still admitting")
	}
	if _, _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on a closed queue delivered")
	}
}

// TestWorkerRunsLeasedJob: the simplest end-to-end cluster path — one
// coordinator, one worker, one job — delivers a queryable result and
// a contiguous event feed through the coordinator's public API.
func TestWorkerRunsLeasedJob(t *testing.T) {
	_, ts := testCoordinator(t, storage.NewMem(), Config{})
	startWorker(t, ts.URL, "w1", 5)

	status := postJob(t, ts.URL, smallSpec())
	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s serve.JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != serve.StateDone {
		t.Fatalf("leased job finished as %s (error %q)", done.State, done.Error)
	}
	if done.Generation != 30 {
		t.Fatalf("leased job executed %d generations, want 30", done.Generation)
	}

	events := fetchEvents(t, ts.URL, status.ID)
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: remote appends broke the offset space", i, ev.Seq)
		}
	}
	result := fetchResult(t, ts.URL, status.ID)
	if result.Best.Score <= 0 || result.DatasetCSV == "" {
		t.Fatalf("leased job's result malformed: %+v", result)
	}

	// The lease must be gone: nothing left to acquire, no leases held.
	if code, _ := acquireLease(t, ts.URL, "probe", 0); code != http.StatusNoContent {
		t.Fatalf("queue not drained after completion: HTTP %d", code)
	}
}

// TestWorkerShutdownRequeues: cancelling a worker's context mid-run
// interrupts the job resumable-style and hands it back to the queue —
// where a second worker picks it up and finishes the full budget.
func TestWorkerShutdownRequeues(t *testing.T) {
	_, ts := testCoordinator(t, storage.NewMem(), Config{})
	stop1 := startWorker(t, ts.URL, "w1", 5)

	spec := evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         120,
		Generations:  600,
		Islands:      1,
		MigrateEvery: 10,
		Seed:         17,
	}
	status := postJob(t, ts.URL, spec)
	mid := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s serve.JobStatus) bool {
		return s.Generation >= 40
	})
	if mid.State.Terminal() {
		t.Fatalf("job finished (%s) before the test could interrupt it; slow the spec down", mid.State)
	}
	stop1()

	requeued := waitFor(t, ts.URL, status.ID, 30*time.Second, func(s serve.JobStatus) bool {
		return s.State == serve.StateQueued
	})
	if requeued.Resumes != 1 {
		t.Fatalf("resumes = %d after worker shutdown, want 1", requeued.Resumes)
	}

	startWorker(t, ts.URL, "w2", 5)
	done := waitFor(t, ts.URL, status.ID, 120*time.Second, func(s serve.JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != serve.StateDone || done.Generation != 600 {
		t.Fatalf("handed-off job finished as %s at generation %d (error %q)", done.State, done.Generation, done.Error)
	}
}

// TestClientCancelReachesWorker: a DELETE on a job leased to a remote
// worker rides the renewal heartbeat to the worker, which cancels the
// run and finalizes the partial result — same contract as in-process.
func TestClientCancelReachesWorker(t *testing.T) {
	_, ts := testCoordinator(t, storage.NewMem(), Config{LeaseTTL: 300 * time.Millisecond})
	startWorker(t, ts.URL, "w1", 5)

	spec := evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         120,
		Generations:  5000,
		Islands:      1,
		MigrateEvery: 10,
		Seed:         17,
	}
	status := postJob(t, ts.URL, spec)
	waitFor(t, ts.URL, status.ID, 60*time.Second, func(s serve.JobStatus) bool {
		return s.State == serve.StateRunning && s.Generation >= 10
	})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+status.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}

	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s serve.JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != serve.StateCancelled {
		t.Fatalf("cancelled leased job finished as %s", done.State)
	}
	if done.Generation >= 5000 {
		t.Fatal("cancel did not interrupt the run")
	}
	result := fetchResult(t, ts.URL, status.ID)
	if result.Best.Score <= 0 {
		t.Fatalf("cancelled job kept no partial result: %+v", result)
	}
}
