package cluster

// Edge-of-the-protocol units: queue blocking semantics, config
// validation, and the error branches a healthy cluster never walks —
// unreachable coordinators, refused leases, garbage payloads.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"evoprot/internal/serve"
	"evoprot/internal/storage"
)

// TestLeaseQueuePopBlocks: the serve.JobQueue half of the contract —
// a blocking Pop parks until a push arrives, and Close wakes it empty.
func TestLeaseQueuePopBlocks(t *testing.T) {
	q := newLeaseQueue(4)
	got := make(chan string, 1)
	go func() {
		id, ok := q.Pop()
		if !ok {
			got <- ""
			return
		}
		got <- id
	}()
	time.Sleep(20 * time.Millisecond) // let Pop park
	if !q.Push("j1", 0) {
		t.Fatal("push refused")
	}
	select {
	case id := <-got:
		if id != "j1" {
			t.Fatalf("popped %q, want j1", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop never woke")
	}

	go func() {
		_, ok := q.Pop()
		if ok {
			got <- "unexpected item"
			return
		}
		got <- "closed"
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	select {
	case r := <-got:
		if r != "closed" {
			t.Fatalf("Pop after Close: %s", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake Pop")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on a closed queue returned an item")
	}
}

// TestConfigValidation: both constructors refuse configs they cannot
// serve.
func TestConfigValidation(t *testing.T) {
	if _, err := NewCoordinator(Config{}); err == nil {
		t.Fatal("coordinator without a store accepted")
	}
	if _, err := NewWorker(WorkerConfig{}); err == nil {
		t.Fatal("worker without a coordinator URL accepted")
	}
	w, err := NewWorker(WorkerConfig{Coordinator: "http://head:8080/"})
	if err != nil {
		t.Fatal(err)
	}
	if w.base != "http://head:8080" {
		t.Fatalf("trailing slash kept: %q", w.base)
	}
	if w.cfg.Name != "worker" || w.cfg.Concurrency != 1 || w.cfg.Wait != DefaultAcquireWait {
		t.Fatalf("defaults not applied: %+v", w.cfg)
	}
}

// TestWorkerSurvivesRefusedCoordinator: a worker whose acquires are
// refused (HTTP 500) logs, backs off and keeps polling instead of
// crashing, and still winds down promptly on cancel.
func TestWorkerSurvivesRefusedCoordinator(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no leases today", http.StatusInternalServerError)
	}))
	defer srv.Close()

	w, err := NewWorker(WorkerConfig{Coordinator: srv.URL, Wait: 50 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		w.Run(ctx)
		close(done)
	}()
	for deadline := time.Now().Add(10 * time.Second); calls.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never tried to acquire")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel() // lands in the acquire-backoff sleep or the next poll
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop")
	}
}

// TestWorkerLeaseCallErrors: renew and release surface refusals the
// protocol does not define (anything but 200/409) as errors, without
// panicking on an unreachable endpoint.
func TestWorkerLeaseCallErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer srv.Close()

	var logged []string
	w, err := NewWorker(WorkerConfig{Coordinator: srv.URL, Logf: func(format string, args ...any) {
		logged = append(logged, format)
	}})
	if err != nil {
		t.Fatal(err)
	}
	l := &Lease{Job: "j1", Token: "1-dead"}
	if _, err := w.renew(l); err == nil || !strings.Contains(err.Error(), "renewal refused") {
		t.Fatalf("renew against HTTP 418: %v", err)
	}
	w.release(l, "complete", nil)
	if len(logged) == 0 {
		t.Fatal("refused release not logged")
	}

	// Unreachable coordinator: transport errors, not protocol errors.
	dead, err := NewWorker(WorkerConfig{Coordinator: "http://127.0.0.1:1", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dead.renew(l); err == nil {
		t.Fatal("renew against a dead endpoint succeeded")
	}
	dead.release(l, "fail", &failRequest{Error: "x"}) // must not panic
	if _, err := dead.acquire(context.Background()); err == nil {
		t.Fatal("acquire against a dead endpoint succeeded")
	}
}

// TestAcquireProtocolErrors: the lease endpoint rejects garbage and
// refuses once the coordinator is shutting down.
func TestAcquireProtocolErrors(t *testing.T) {
	c, ts := testCoordinator(t, storage.NewMem(), Config{})

	resp, err := http.Post(ts.URL+"/v1/lease", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage lease request: HTTP %d, want 400", resp.StatusCode)
	}

	stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Stop(stopCtx); err != nil {
		t.Fatal(err)
	}
	code, _ := acquireLease(t, ts.URL, "w1", 0)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("acquire after Stop: HTTP %d, want 503", code)
	}
}

// TestReleaseProtocolErrors: complete and fail demand the live token —
// and fail rejects garbage bodies before touching the lease table.
func TestReleaseProtocolErrors(t *testing.T) {
	_, ts := testCoordinator(t, storage.NewMem(), Config{})
	postJob(t, ts.URL, smallSpec())
	code, l := acquireLease(t, ts.URL, "w1", 2*time.Second)
	if code != http.StatusOK {
		t.Fatalf("acquire: HTTP %d", code)
	}

	if code := leasePost(t, ts.URL, l.Job, "complete", "1-bogus", "{}"); code != http.StatusConflict {
		t.Fatalf("complete with a stale token: HTTP %d, want 409", code)
	}
	if code := leasePost(t, ts.URL, l.Job, "fail", l.Token, "{not json"); code != http.StatusBadRequest {
		t.Fatalf("garbage fail body: HTTP %d, want 400", code)
	}
	if code := leasePost(t, ts.URL, l.Job, "fail", "1-bogus", `{"error":"x"}`); code != http.StatusConflict {
		t.Fatalf("fail with a stale token: HTTP %d, want 409", code)
	}
	// The real holder can still finish after all those impostors.
	if code := leasePost(t, ts.URL, l.Job, "fail", l.Token, `{"error":"x","requeue":true}`); code != http.StatusNoContent {
		t.Fatalf("fail by the leaseholder: HTTP %d, want 204", code)
	}
}

// TestMarkFailedEdgeCases: recording an infra failure tolerates jobs
// with no status, unreadable status, or an outcome the engine already
// persisted (which always wins).
func TestMarkFailedEdgeCases(t *testing.T) {
	be := storage.NewMem()
	c, _ := testCoordinator(t, be, Config{})

	c.markFailed("ghost", "boom") // no status at all: logged, not fatal

	if err := be.Put("garbled", serve.StatusKey, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	c.markFailed("garbled", "boom")
	if raw, err := be.Get("garbled", serve.StatusKey); err != nil || string(raw) != "{not json" {
		t.Fatalf("unreadable status was rewritten: %q, %v", raw, err)
	}

	done, err := json.Marshal(serve.JobStatus{ID: "finished", State: serve.StateDone})
	if err != nil {
		t.Fatal(err)
	}
	if err := be.Put("finished", serve.StatusKey, done); err != nil {
		t.Fatal(err)
	}
	c.markFailed("finished", "boom")
	raw, err := be.Get("finished", serve.StatusKey)
	if err != nil {
		t.Fatal(err)
	}
	var status serve.JobStatus
	if err := json.Unmarshal(raw, &status); err != nil {
		t.Fatal(err)
	}
	if status.State != serve.StateDone || status.Error != "" {
		t.Fatalf("engine-recorded outcome overwritten: %+v", status)
	}
}
