package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"evoprot/internal/serve"
	"evoprot/internal/storage"
)

// Worker defaults.
const (
	// DefaultAcquireWait is how long an acquire long-polls the
	// coordinator before coming back empty and re-polling.
	DefaultAcquireWait = 2 * time.Second
	// acquireBackoff is the pause after a failed acquire (coordinator
	// unreachable or shutting down) before retrying.
	acquireBackoff = 500 * time.Millisecond
	// releaseTimeout bounds the complete/fail call that releases a
	// lease — it must finish even when the worker's context is done.
	releaseTimeout = 5 * time.Second
)

// errLeaseLost is a renewal's 409: the lease expired or the job was
// re-leased; the run must stop (its writes are fenced anyway).
var errLeaseLost = errors.New("cluster: lease lost")

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://head:8080".
	Coordinator string
	// Name identifies this worker in leases and logs; defaults to
	// "worker".
	Name string
	// Concurrency is how many jobs this worker leases and runs at once;
	// 0 selects 1.
	Concurrency int
	// CheckpointEvery is the engine's checkpoint cadence — the most
	// work a worker death can cost; 0 selects the serve default.
	CheckpointEvery int
	// Wait is the acquire long-poll duration; 0 selects
	// DefaultAcquireWait.
	Wait time.Duration
	// Client overrides the HTTP client (lease calls and the remote
	// store); nil selects http.DefaultClient.
	Client *http.Client
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Worker is a stateless execution node: it owns no durable state, only
// leases. Each leased job runs through the identical engine the
// single-node server uses, persisting through the coordinator's store —
// kill a worker at any instant and the job resumes elsewhere from its
// last checkpoint, bit-for-bit equal to an uninterrupted run.
type Worker struct {
	cfg    WorkerConfig
	base   string
	client *http.Client
	exec   *serve.Executor
	logf   func(format string, args ...any)

	mu     sync.Mutex
	tokens map[string]string // job id -> fencing token while leased
}

// NewWorker builds a worker against the coordinator at
// cfg.Coordinator. It performs no I/O; Run does.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("cluster: WorkerConfig.Coordinator is required")
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Wait <= 0 {
		cfg.Wait = DefaultAcquireWait
	}
	w := &Worker{
		cfg:    cfg,
		base:   strings.TrimSuffix(cfg.Coordinator, "/"),
		client: cfg.Client,
		tokens: make(map[string]string),
	}
	if w.client == nil {
		w.client = http.DefaultClient
	}
	w.logf = cfg.Logf
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	remote := storage.NewRemote(w.base+"/v1/store",
		storage.RemoteWithClient(w.client),
		storage.RemoteWithToken(w.token))
	w.exec = serve.NewExecutor(remote, cfg.CheckpointEvery, w.logf)
	return w, nil
}

// token returns job's current fencing token ("" when not leased here).
func (w *Worker) token(job string) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tokens[job]
}

func (w *Worker) setToken(job, token string) {
	w.mu.Lock()
	w.tokens[job] = token
	w.mu.Unlock()
}

func (w *Worker) clearToken(job string) {
	w.mu.Lock()
	delete(w.tokens, job)
	w.mu.Unlock()
}

// Run leases and executes jobs until ctx is cancelled, then returns
// once in-flight jobs have wound down (interrupted resumable — the
// worker half of a graceful shutdown). Each of Concurrency loops works
// one job at a time.
func (w *Worker) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(ctx)
		}()
	}
	wg.Wait()
}

func (w *Worker) loop(ctx context.Context) {
	for ctx.Err() == nil {
		l, err := w.acquire(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("cluster: worker %s: acquiring lease: %v", w.cfg.Name, err)
			sleep(ctx, acquireBackoff)
			continue
		}
		if l == nil {
			continue // nothing queued within the long-poll window
		}
		w.serve(ctx, l)
	}
}

// acquire asks the coordinator for a lease, long-polling cfg.Wait. A
// nil lease with nil error means nothing was queued.
func (w *Worker) acquire(ctx context.Context) (*Lease, error) {
	body, err := json.Marshal(leaseRequest{Worker: w.cfg.Name, WaitMillis: w.cfg.Wait.Milliseconds()})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/lease", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var l Lease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return nil, fmt.Errorf("decoding lease: %w", err)
		}
		return &l, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("lease refused: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

// serve runs one leased job to its next stopping point and releases the
// lease accordingly.
func (w *Worker) serve(ctx context.Context, l *Lease) {
	w.setToken(l.Job, l.Token)
	defer w.clearToken(l.Job)

	// The run context is deliberately NOT a child of ctx: worker shutdown
	// must interrupt the run with the cause that leaves the job resumable,
	// not a bare cancellation the engine would treat as a failure.
	runCtx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	done := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		w.watch(ctx, l, cancel, done)
	}()

	w.logf("cluster: worker %s: running job %s", w.cfg.Name, l.Job)
	status, err := w.exec.Execute(runCtx, l.Job)
	close(done)
	watch.Wait()

	switch {
	case err != nil:
		// Infrastructure failure before/around the run itself; the engine
		// never recorded an outcome, so the coordinator does.
		w.logf("cluster: worker %s: job %s: %v", w.cfg.Name, l.Job, err)
		w.release(l, "fail", &failRequest{Error: err.Error()})
	case status.State.Terminal():
		w.release(l, "complete", nil)
	default:
		// Interrupted (shutdown or lost lease): resumable, back to the
		// queue for the next worker.
		w.release(l, "fail", &failRequest{Error: "worker interrupted", Requeue: true})
	}
}

// watch is the lease heartbeat: it renews at TTL/3, forwards a pending
// client cancel into the run, interrupts the run when the worker's
// context ends (while still renewing, so the final resumable persist
// passes fencing), and interrupts it too when the lease is lost or
// renewals starve past a full TTL.
func (w *Worker) watch(ctx context.Context, l *Lease, cancel context.CancelCauseFunc, done <-chan struct{}) {
	ttl := time.Duration(l.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	interval := ttl / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	ctxDone := ctx.Done()
	lastOK := time.Now()
	for {
		select {
		case <-done:
			return
		case <-ctxDone:
			cancel(serve.ErrInterrupted)
			ctxDone = nil // keep renewing until the run winds down
		case <-tick.C:
			reply, err := w.renew(l)
			switch {
			case err == nil:
				lastOK = time.Now()
				if reply.Cancel {
					cancel(serve.ErrCancelled)
				} else if reply.Preempt {
					// Yield to a queued higher-priority job: the engine
					// checkpoints, persists the job queued, and serve()
					// releases with requeue=true — the coordinator hands the
					// freed capacity to the queue head and this job resumes
					// later, bit-identical to an unpreempted run.
					cancel(serve.ErrPreempted)
				}
			case errors.Is(err, errLeaseLost):
				// Re-leased or expired: our writes are fenced; stop now and
				// let the new leaseholder resume from the checkpoint.
				w.logf("cluster: worker %s: job %s: %v", w.cfg.Name, l.Job, err)
				cancel(serve.ErrInterrupted)
				return
			default:
				w.logf("cluster: worker %s: job %s: renewing lease: %v", w.cfg.Name, l.Job, err)
				if time.Since(lastOK) > ttl {
					// The coordinator has certainly expired us by now.
					cancel(serve.ErrInterrupted)
					return
				}
			}
		}
	}
}

// renew heartbeats the lease; errLeaseLost on 409.
func (w *Worker) renew(l *Lease) (renewReply, error) {
	req, err := http.NewRequest(http.MethodPost, w.leaseURL(l.Job, "renew"), nil)
	if err != nil {
		return renewReply{}, err
	}
	req.Header.Set(storage.LeaseHeader, l.Token)
	resp, err := w.client.Do(req)
	if err != nil {
		return renewReply{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var reply renewReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return renewReply{}, fmt.Errorf("decoding renewal: %w", err)
		}
		return reply, nil
	case http.StatusConflict:
		return renewReply{}, errLeaseLost
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return renewReply{}, fmt.Errorf("renewal refused: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

// release reports the job's outcome (verb "complete" or "fail") and
// drops the lease. Best effort: a 409 just means the lease was already
// reaped — the coordinator has moved on, and so can we.
func (w *Worker) release(l *Lease, verb string, body *failRequest) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			w.logf("cluster: worker %s: job %s: encoding %s: %v", w.cfg.Name, l.Job, verb, err)
			return
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = strings.NewReader("{}")
	}
	ctx, cancelTO := context.WithTimeout(context.Background(), releaseTimeout)
	defer cancelTO()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.leaseURL(l.Job, verb), rd)
	if err != nil {
		w.logf("cluster: worker %s: job %s: releasing lease: %v", w.cfg.Name, l.Job, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(storage.LeaseHeader, l.Token)
	resp, err := w.client.Do(req)
	if err != nil {
		w.logf("cluster: worker %s: job %s: releasing lease (%s): %v", w.cfg.Name, l.Job, verb, err)
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusConflict {
		w.logf("cluster: worker %s: job %s: releasing lease (%s): HTTP %d", w.cfg.Name, l.Job, verb, resp.StatusCode)
	}
}

// leaseURL is the lease endpoint URL for job and verb.
func (w *Worker) leaseURL(job, verb string) string {
	return w.base + "/v1/lease/" + url.PathEscape(job) + "/" + verb
}

// sleep pauses for d or until ctx ends, whichever first.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
