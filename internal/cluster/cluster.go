// Package cluster makes the job service horizontally scalable: a
// coordinator owns admission, the durable store and the public HTTP API
// (an embedded serve.Server that never starts its in-process pool),
// while stateless workers lease queued jobs over HTTP, run them through
// the very same execution engine (serve.Executor), and persist every
// byte — spec, status, events, checkpoints — back through the
// coordinator's store handler.
//
// The lease protocol is the whole coordination surface:
//
//	POST /v1/lease                    acquire a queued job (long-polls
//	                                  up to wait_ms; 204 when none)
//	POST /v1/lease/{job}/renew        heartbeat; extends the TTL and
//	                                  reports a pending client cancel
//	POST /v1/lease/{job}/complete     release after a terminal status
//	POST /v1/lease/{job}/fail         release with an error; optional
//	                                  requeue for another worker
//	/v1/store/...                     the storage.Remote protocol, every
//	                                  mutation fenced by the lease token
//
// A lease is a TTL plus a fencing token. The worker heartbeats renew;
// if renewals stop — worker death, a network partition — the
// coordinator's janitor expires the lease, returns the job to the queue
// (ForcePush, mirroring boot recovery) and a later worker resumes it
// from its last checkpoint, so a worker's death costs at most one
// checkpoint interval of work. The expired lease's token keeps fencing:
// should the old worker still be alive and writing, every mutation
// bounces with 409/ErrFenced and cannot corrupt the re-leased run.
// Determinism carries across the seam — a fixed-seed job run through a
// worker lease, even one interrupted mid-run and re-leased elsewhere,
// reproduces the single-node run bit for bit.
package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"evoprot/internal/serve"
	"evoprot/internal/storage"
)

// Defaults for Config's zero values.
const (
	// DefaultLeaseTTL is how long a lease survives without a renewal.
	DefaultLeaseTTL = 15 * time.Second
	// acquirePoll is how often a long-polling acquire rechecks the queue.
	acquirePoll = 20 * time.Millisecond
)

// Config configures a Coordinator.
type Config struct {
	// Serve configures the embedded admission server. Store is required:
	// the coordinator must hold the same backend handle it serves to
	// workers, so it cannot let serve build a private one. Workers is
	// ignored — the in-process pool never starts; execution capacity is
	// whatever workers attach.
	Serve serve.Config
	// LeaseTTL is how long a granted lease survives without a renewal
	// before the janitor re-queues its job; 0 selects DefaultLeaseTTL.
	LeaseTTL time.Duration
	// SweepEvery is the janitor's sweep interval; 0 selects LeaseTTL/4.
	SweepEvery time.Duration
}

// lease is one granted lease: the fencing token authorizing job's
// mutations until deadline. pri and seq feed the preemption policy —
// the job's submission priority and the grant order (higher seq = newer
// lease = less sunk work to throw away on a tie).
type lease struct {
	job      string
	token    string
	worker   string
	deadline time.Time
	pri      int
	seq      int64
}

// Coordinator is the cluster's head: admission, recovery, the job table
// and the public API come from the embedded serve.Server; the lease
// table, the fenced store handler and the janitor are its own. Build
// with NewCoordinator, mount Handler, call Start, and Stop on the way
// out.
type Coordinator struct {
	cfg   Config
	srv   *serve.Server
	store storage.Store
	queue *leaseQueue
	logf  func(format string, args ...any)

	mu     sync.Mutex
	leases map[string]*lease // job id -> active lease
	jobMu  map[string]*sync.Mutex
	seq    int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator builds a coordinator over cfg and recovers persisted
// jobs (non-terminal ones re-enter the queue for the next worker).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Serve.Store == nil {
		return nil, fmt.Errorf("cluster: Config.Serve.Store is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.LeaseTTL / 4
	}
	bound := cfg.Serve.QueueDepth
	if bound <= 0 {
		bound = serve.DefaultQueueDepth
	}
	c := &Coordinator{
		cfg:    cfg,
		store:  cfg.Serve.Store,
		queue:  newLeaseQueue(bound),
		leases: make(map[string]*lease),
		jobMu:  make(map[string]*sync.Mutex),
		stop:   make(chan struct{}),
	}
	c.logf = cfg.Serve.Logf
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	// The coordinator's queue doubles as serve's admission queue, so
	// submissions and boot recovery land directly where leases drain.
	cfg.Serve.Queue = c.queue
	srv, err := serve.New(cfg.Serve)
	if err != nil {
		return nil, err
	}
	c.srv = srv
	return c, nil
}

// Start launches the janitor. The embedded server's pool intentionally
// never starts: workers are the pool.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.SweepEvery)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.sweep()
			}
		}
	}()
}

// Stop halts the janitor and shuts the embedded server down (closing
// the queue, so blocked acquires drain with 503).
func (c *Coordinator) Stop(ctx context.Context) error {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	return c.srv.Stop(ctx)
}

// Handler returns the coordinator's full HTTP surface: the lease
// protocol and the fenced store handler layered over the embedded
// server's public API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleAcquire)
	mux.HandleFunc("POST /v1/lease/{job}/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/lease/{job}/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/lease/{job}/fail", c.handleFail)
	mux.Handle("/v1/store/", http.StripPrefix("/v1/store", storage.NewRemoteHandler(c.store, storage.RemoteHooks{
		Authorize:  c.authorizeWrite,
		OnPut:      c.onRemotePut,
		OnAppend:   c.onRemoteAppend,
		OnTruncate: c.onRemoteTruncate,
	})))
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.Handle("/", c.srv.Handler())
	return mux
}

// Lease is the wire form of a granted lease.
type Lease struct {
	// Job is the leased job's id.
	Job string `json:"job"`
	// Token fences the job's mutations: the worker sends it on every
	// store write and lease call; the coordinator refuses stale ones.
	Token string `json:"token"`
	// TTLMillis is how long the lease lives without a renewal.
	TTLMillis int64 `json:"ttl_ms"`
}

// leaseRequest is POST /v1/lease's body.
type leaseRequest struct {
	// Worker names the acquiring worker (for logs and /healthz).
	Worker string `json:"worker"`
	// WaitMillis long-polls: how long the coordinator may hold the
	// request open waiting for a queued job before answering 204.
	WaitMillis int64 `json:"wait_ms"`
}

// renewReply is POST /v1/lease/{job}/renew's body.
type renewReply struct {
	TTLMillis int64 `json:"ttl_ms"`
	// Cancel reports a pending client DELETE: the worker should cancel
	// the run and finalize the partial result.
	Cancel bool `json:"cancel"`
	// Preempt asks the worker to yield: a higher-priority job is queued
	// with no free worker, and this lease holds the cluster's
	// lowest-priority running job. The worker checkpoints, persists the
	// job queued and releases with requeue=true; the job resumes
	// bit-identically once capacity frees up.
	Preempt bool `json:"preempt"`
}

// failRequest is POST /v1/lease/{job}/fail's body.
type failRequest struct {
	// Error describes why the worker gave the job up.
	Error string `json:"error"`
	// Requeue returns the job to the queue (still resumable — worker
	// shutdown) instead of marking it failed (infrastructure error).
	Requeue bool `json:"requeue"`
}

// handleAcquire grants a lease on the next queued job, long-polling up
// to the requested wait: 200 with a Lease, 204 when none arrived in
// time, 503 once the coordinator is shutting down.
func (c *Coordinator) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad lease request: %v", err), http.StatusBadRequest)
		return
	}
	deadline := time.Now().Add(time.Duration(req.WaitMillis) * time.Millisecond)
	for {
		if c.queue.Closed() {
			http.Error(w, "coordinator shutting down", http.StatusServiceUnavailable)
			return
		}
		if id, pri, ok := c.queue.TryPop(); ok {
			// A job cancelled while queued is finalized but still in the
			// queue; skip it like the in-process pool's claim does.
			if st, known := c.srv.JobSnapshot(id); !known || st.State != serve.StateQueued {
				continue
			}
			l := c.grant(id, req.Worker, pri)
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(Lease{Job: l.job, Token: l.token, TTLMillis: c.cfg.LeaseTTL.Milliseconds()})
			return
		}
		if !time.Now().Before(deadline) {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		select {
		case <-c.stop:
			http.Error(w, "coordinator shutting down", http.StatusServiceUnavailable)
			return
		case <-r.Context().Done():
			return
		case <-time.After(acquirePoll):
		}
	}
}

// grant records a fresh lease on job for worker at priority pri.
func (c *Coordinator) grant(job, worker string, pri int) *lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	l := &lease{
		job:      job,
		token:    fmt.Sprintf("%d-%s", c.seq, randHex(8)),
		worker:   worker,
		deadline: time.Now().Add(c.cfg.LeaseTTL),
		pri:      pri,
		seq:      c.seq,
	}
	c.leases[job] = l
	c.logf("cluster: job %s leased to worker %q (lease %s)", job, worker, l.token)
	return l
}

// validate looks job's active lease up and checks token against it;
// expired-but-unswept leases fail too, so a renewal cannot revive a
// lease the janitor is about to reap.
func (c *Coordinator) validate(job, token string) (*lease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[job]
	if !ok || l.token != token || time.Now().After(l.deadline) {
		return nil, false
	}
	return l, true
}

// lockJob returns job's mutation lock, creating it on first use. The
// lock is held across a remote write's apply (authorizeWrite) and
// across lease revocation plus requeue (requeue), which makes fencing
// atomic: a write is either wholly before a revocation — and the
// requeue's status persist lands after it — or wholly after, and
// bounces off the empty lease table.
func (c *Coordinator) lockJob(job string) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.jobMu[job]
	if !ok {
		m = &sync.Mutex{}
		c.jobMu[job] = m
	}
	return m
}

// authorizeWrite is the store handler's fencing hook: only the job's
// active leaseholder may mutate its keys. The job's mutation lock is
// held until the handler releases it after the apply.
func (c *Coordinator) authorizeWrite(job, token string) (func(), error) {
	m := c.lockJob(job)
	m.Lock()
	if _, ok := c.validate(job, token); !ok {
		m.Unlock()
		return nil, fmt.Errorf("job %s: no active lease for token %q", job, token)
	}
	return m.Unlock, nil
}

// requeue returns job to the queue under its mutation lock, so the
// requeued (queued, resumes-bumped) status persists strictly after any
// write that beat the revocation.
func (c *Coordinator) requeue(job string) {
	m := c.lockJob(job)
	m.Lock()
	defer m.Unlock()
	if err := c.srv.RequeueJob(job); err != nil {
		c.logf("cluster: job %s: re-queueing: %v", job, err)
	}
}

// Store-handler callbacks folding workers' remote writes back into the
// embedded server's live job table, so status polls, event streams and
// admission checks see leased jobs as if they ran in-process.

func (c *Coordinator) onRemotePut(job, key string, data []byte) {
	if key == serve.StatusKey {
		c.srv.SyncJobStatus(job, data)
	}
}

func (c *Coordinator) onRemoteAppend(job, key string, data []byte) {
	if key == serve.EventsKey {
		var lines uint64
		for _, b := range data {
			if b == '\n' {
				lines++
			}
		}
		c.srv.NoteJobEvents(job, lines, int64(len(data)))
	}
}

func (c *Coordinator) onRemoteTruncate(job, key string, size int64) {
	if key == serve.EventsKey {
		c.srv.ResyncJobEvents(job)
	}
}

// handleRenew heartbeats a lease: 200 with the refreshed TTL and the
// pending-cancel flag, 409 when the lease is gone, stale or expired —
// the worker's signal to stop the run (it stays resumable; the janitor
// or an explicit expire already re-queued it, or soon will).
func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	job, token := r.PathValue("job"), r.Header.Get(storage.LeaseHeader)
	c.mu.Lock()
	l, ok := c.leases[job]
	if !ok || l.token != token || time.Now().After(l.deadline) {
		c.mu.Unlock()
		http.Error(w, fmt.Sprintf("job %s: no active lease for token %q", job, token), http.StatusConflict)
		return
	}
	l.deadline = time.Now().Add(c.cfg.LeaseTTL)
	preempt := c.shouldPreemptLocked(l)
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(renewReply{
		TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
		Cancel:    c.srv.CancelRequested(job),
		Preempt:   preempt,
	})
}

// shouldPreemptLocked decides, at renew time, whether l's worker must
// yield: a strictly higher-priority job waits in the queue AND l is the
// preemption victim — the lowest-priority active lease, ties broken
// toward the newest grant (the least sunk work). Piggybacking the
// decision on heartbeats makes it self-healing: no coordinator state
// tracks "pending preemptions"; as long as the queue head outranks the
// victim, every renewal re-derives the same answer. Callers hold c.mu.
func (c *Coordinator) shouldPreemptLocked(l *lease) bool {
	maxPri, ok := c.queue.MaxPriority()
	if !ok || maxPri <= l.pri {
		return false
	}
	victim := l
	for _, o := range c.leases {
		if o.pri < victim.pri || (o.pri == victim.pri && o.seq > victim.seq) {
			victim = o
		}
	}
	return victim == l
}

// handleComplete releases a lease after the worker persisted a terminal
// status. Defensively, a job that somehow is not terminal goes back to
// the queue rather than getting stranded leaseless.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	job, token := r.PathValue("job"), r.Header.Get(storage.LeaseHeader)
	if _, ok := c.validate(job, token); !ok {
		http.Error(w, fmt.Sprintf("job %s: no active lease for token %q", job, token), http.StatusConflict)
		return
	}
	c.release(job)
	if st, known := c.srv.JobSnapshot(job); known && !st.State.Terminal() {
		c.logf("cluster: job %s completed by its worker but is %s; re-queueing", job, st.State)
		c.requeue(job)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleFail releases a lease the worker gives up: requeue=true returns
// the (still resumable) job to the queue — the graceful-shutdown path —
// while requeue=false marks it failed with the worker's error.
func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	job, token := r.PathValue("job"), r.Header.Get(storage.LeaseHeader)
	var req failRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad fail request: %v", err), http.StatusBadRequest)
		return
	}
	if _, ok := c.validate(job, token); !ok {
		http.Error(w, fmt.Sprintf("job %s: no active lease for token %q", job, token), http.StatusConflict)
		return
	}
	c.release(job)
	if req.Requeue {
		c.requeue(job)
	} else {
		c.markFailed(job, req.Error)
	}
	w.WriteHeader(http.StatusNoContent)
}

// release drops job's lease from the table.
func (c *Coordinator) release(job string) {
	c.mu.Lock()
	delete(c.leases, job)
	c.mu.Unlock()
}

// markFailed persists job as failed with the worker's error — the path
// for infrastructure failures the worker could not record itself (its
// engine never got far enough to write a status).
func (c *Coordinator) markFailed(job, msg string) {
	raw, err := c.store.Get(job, serve.StatusKey)
	if err != nil {
		c.logf("cluster: job %s: loading status to record failure: %v", job, err)
		return
	}
	var status serve.JobStatus
	if err := json.Unmarshal(raw, &status); err != nil {
		c.logf("cluster: job %s: unreadable status while recording failure: %v", job, err)
		return
	}
	if status.State.Terminal() {
		// The worker's engine recorded the real outcome before the release;
		// keep it.
		return
	}
	status.State = serve.StateFailed
	status.Error = msg
	status.Finished = time.Now().UTC()
	updated, err := json.MarshalIndent(status, "", "  ")
	if err != nil {
		c.logf("cluster: job %s: encoding failed status: %v", job, err)
		return
	}
	if err := c.store.Put(job, serve.StatusKey, updated); err != nil {
		c.logf("cluster: job %s: persisting failed status: %v", job, err)
		return
	}
	c.srv.SyncJobStatus(job, updated)
	c.logf("cluster: job %s failed by its worker: %s", job, msg)
}

// sweep expires leases past their deadline and re-queues their jobs —
// the worker-death path. The expired token keeps fencing the (possibly
// still alive) old worker's writes.
func (c *Coordinator) sweep() {
	now := time.Now()
	c.mu.Lock()
	var expired []*lease
	for job, l := range c.leases {
		if now.After(l.deadline) {
			delete(c.leases, job)
			expired = append(expired, l)
		}
	}
	c.mu.Unlock()
	for _, l := range expired {
		c.logf("cluster: job %s: lease %s (worker %q) expired; re-queueing", l.job, l.token, l.worker)
		c.requeue(l.job)
	}
}

// expire force-expires job's lease right now — the sweep path on
// demand, used by tests to make mid-run lease loss deterministic.
func (c *Coordinator) expire(job string) bool {
	c.mu.Lock()
	l, ok := c.leases[job]
	if ok {
		delete(c.leases, job)
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	c.logf("cluster: job %s: lease %s (worker %q) force-expired; re-queueing", job, l.token, l.worker)
	c.requeue(job)
	return true
}

// handleHealth overrides the embedded server's health answer with the
// cluster view: queue pressure plus the live lease count.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	leases := len(c.leases)
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"role":           "coordinator",
		"queued":         c.queue.Depth(),
		"queue_capacity": c.queue.Cap(),
		"leases":         leases,
	})
}

// randHex returns n random bytes hex-encoded; lease tokens stay unique
// without it (the sequence number does that), it only makes them
// unguessable.
func randHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		return "0"
	}
	return hex.EncodeToString(buf)
}
