package cluster

import "sync"

// qitem is one queued id with its submission priority.
type qitem struct {
	id  string
	pri int
}

// leaseQueue is the coordinator's serve.JobQueue: the same bounded
// priority-queue contract as the in-process default, plus the
// non-blocking TryPop the long-polling lease endpoint drains through
// (an HTTP handler cannot park in a blocking Pop) and a Closed probe so
// acquires answer 503 during shutdown instead of spinning.
type leaseQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []qitem // sorted: priority descending, arrival order within
	bound  int
	closed bool
}

// newLeaseQueue builds a lease queue admitting at most bound queued
// jobs through Push (ForcePush, the recovery and requeue path, is
// exempt — exactly like serve.NewFIFOQueue).
func newLeaseQueue(bound int) *leaseQueue {
	q := &leaseQueue{bound: bound}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// insert places it behind every queued item of equal or higher priority —
// the slice stays sorted by (priority desc, arrival asc). Callers hold mu.
func insert(items []qitem, it qitem) []qitem {
	i := len(items)
	for i > 0 && items[i-1].pri < it.pri {
		i--
	}
	items = append(items, qitem{})
	copy(items[i+1:], items[i:])
	items[i] = it
	return items
}

// Push admits id at priority pri; false when full or closed.
func (q *leaseQueue) Push(id string, pri int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.bound {
		return false
	}
	q.items = insert(q.items, qitem{id: id, pri: pri})
	q.cond.Signal()
	return true
}

// ForcePush enqueues id at priority pri regardless of the bound —
// recovery, lease requeue and preemption. False only after Close.
func (q *leaseQueue) ForcePush(id string, pri int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = insert(q.items, qitem{id: id, pri: pri})
	q.cond.Signal()
	return true
}

// Pop blocks until an item arrives or the queue closes. The
// coordinator itself never calls it (leases drain through TryPop), but
// the serve.JobQueue contract requires it and keeps the queue usable
// by an in-process pool too.
func (q *leaseQueue) Pop() (id string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return "", false
	}
	id = q.items[0].id
	q.items = q.items[1:]
	return id, true
}

// TryPop pops the highest-priority head without blocking, reporting its
// priority alongside; false when empty or closed.
func (q *leaseQueue) TryPop() (id string, pri int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) == 0 {
		return "", 0, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it.id, it.pri, true
}

// Close wakes every blocked Pop and refuses further pushes.
func (q *leaseQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Closed reports whether Close has been called.
func (q *leaseQueue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Depth returns the number of queued ids.
func (q *leaseQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Cap returns the admission bound.
func (q *leaseQueue) Cap() int { return q.bound }

// MaxPriority returns the highest queued priority; false when empty —
// the probe the coordinator's preemption policy compares running leases
// against.
func (q *leaseQueue) MaxPriority() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].pri, true
}
