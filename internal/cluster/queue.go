package cluster

import "sync"

// leaseQueue is the coordinator's serve.JobQueue: the same bounded
// FIFO contract as the in-process default, plus the non-blocking
// TryPop the long-polling lease endpoint drains through (an HTTP
// handler cannot park in a blocking Pop) and a Closed probe so
// acquires answer 503 during shutdown instead of spinning.
type leaseQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []string
	bound  int
	closed bool
}

// newLeaseQueue builds a lease queue admitting at most bound queued
// jobs through Push (ForcePush, the recovery and requeue path, is
// exempt — exactly like serve.NewFIFOQueue).
func newLeaseQueue(bound int) *leaseQueue {
	q := &leaseQueue{bound: bound}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends id in arrival order; false when full or closed.
func (q *leaseQueue) Push(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.bound {
		return false
	}
	q.items = append(q.items, id)
	q.cond.Signal()
	return true
}

// ForcePush appends id regardless of the bound — recovery and lease
// requeue. False only after Close.
func (q *leaseQueue) ForcePush(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, id)
	q.cond.Signal()
	return true
}

// Pop blocks until an item arrives or the queue closes. The
// coordinator itself never calls it (leases drain through TryPop), but
// the serve.JobQueue contract requires it and keeps the queue usable
// by an in-process pool too.
func (q *leaseQueue) Pop() (id string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return "", false
	}
	id = q.items[0]
	q.items = q.items[1:]
	return id, true
}

// TryPop pops the head without blocking; false when empty or closed.
func (q *leaseQueue) TryPop() (id string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) == 0 {
		return "", false
	}
	id = q.items[0]
	q.items = q.items[1:]
	return id, true
}

// Close wakes every blocked Pop and refuses further pushes.
func (q *leaseQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Closed reports whether Close has been called.
func (q *leaseQueue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Depth returns the number of queued ids.
func (q *leaseQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Cap returns the admission bound.
func (q *leaseQueue) Cap() int { return q.bound }
