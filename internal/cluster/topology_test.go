package cluster

// The determinism gates: the same fixed-seed spec, executed standalone
// (in-process pool) and executed through worker leases — including one
// whose lease is force-expired mid-run and re-leased to a second
// worker — must land on bit-identical results and event feeds, on both
// storage backends. The cluster subsystem moves execution across a
// network seam; these tests prove it moves nothing else.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"evoprot"
	"evoprot/internal/serve"
	"evoprot/internal/storage"
)

// topologies names the two execution shapes every gate runs under.
var topologies = []string{"standalone", "cluster"}

// runTopology executes spec to completion under the named topology over
// be and returns the finished job's feed and result as served by the
// public API. Standalone is a serve.Server with its in-process pool;
// cluster is a coordinator with one attached worker.
func runTopology(t *testing.T, topology string, be storage.Store, spec evoprot.JobSpec) ([]evoprot.Event, serve.JobResult) {
	t.Helper()
	var base string
	switch topology {
	case "standalone":
		s, err := serve.New(serve.Config{
			Store:           be,
			Workers:         1,
			CheckpointEvery: 5,
			Logf:            t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer func() {
			stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Stop(stopCtx); err != nil {
				t.Error(err)
			}
		}()
		base = ts.URL
		return finishJob(t, base, spec)
	case "cluster":
		_, ts := testCoordinator(t, be, Config{Serve: serve.Config{CheckpointEvery: 5}})
		startWorker(t, ts.URL, "w1", 5)
		return finishJob(t, ts.URL, spec)
	default:
		t.Fatalf("unknown topology %q", topology)
		return nil, serve.JobResult{}
	}
}

// finishJob submits spec at base, waits for completion, and returns the
// feed and result.
func finishJob(t *testing.T, base string, spec evoprot.JobSpec) ([]evoprot.Event, serve.JobResult) {
	t.Helper()
	status := postJob(t, base, spec)
	done := waitFor(t, base, status.ID, 180*time.Second, func(s serve.JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != serve.StateDone {
		t.Fatalf("job finished as %s (error %q)", done.State, done.Error)
	}
	return fetchEvents(t, base, status.ID), fetchResult(t, base, status.ID)
}

// stripTimes zeroes an event's wall-clock fields — the only part of a
// deterministic run that legitimately differs between executions.
func stripTimes(ev evoprot.Event) evoprot.Event {
	ev.Stats.EvalTime, ev.Stats.TotalTime = 0, 0
	return ev
}

// sameFeed fails unless the two feeds are identical event for event
// (times stripped) — sequence numbers included, so it is only for
// single-island runs, whose global emission order is deterministic.
func sameFeed(t *testing.T, label string, a, b []evoprot.Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: feed lengths %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := stripTimes(a[i]), stripTimes(b[i])
		if (x.Epoch == nil) != (y.Epoch == nil) || (x.Epoch != nil && *x.Epoch != *y.Epoch) {
			t.Fatalf("%s: event %d epoch payloads diverged: %+v vs %+v", label, i, x.Epoch, y.Epoch)
		}
		x.Epoch, y.Epoch = nil, nil
		if x != y {
			t.Fatalf("%s: event %d diverged:\n%+v\n%+v", label, i, x, y)
		}
	}
}

// sameFeedPerIsland compares feeds as per-island subsequences with
// sequence numbers zeroed: cross-island interleaving is scheduling
// noise on multi-island runs, per-island order is the deterministic
// contract.
func sameFeedPerIsland(t *testing.T, label string, a, b []evoprot.Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: feed lengths %d vs %d", label, len(a), len(b))
	}
	group := func(events []evoprot.Event) map[int][]evoprot.Event {
		out := map[int][]evoprot.Event{}
		for _, ev := range events {
			ev = stripTimes(ev)
			ev.Seq = 0
			out[ev.Island] = append(out[ev.Island], ev)
		}
		return out
	}
	ga, gb := group(a), group(b)
	if len(ga) != len(gb) {
		t.Fatalf("%s: island sets %d vs %d", label, len(ga), len(gb))
	}
	for island, xs := range ga {
		ys := gb[island]
		if len(xs) != len(ys) {
			t.Fatalf("%s: island %d streamed %d vs %d events", label, island, len(xs), len(ys))
		}
		for i := range xs {
			x, y := xs[i], ys[i]
			if (x.Epoch == nil) != (y.Epoch == nil) || (x.Epoch != nil && *x.Epoch != *y.Epoch) {
				t.Fatalf("%s: island %d event %d epoch payloads diverged: %+v vs %+v", label, island, i, x.Epoch, y.Epoch)
			}
			x.Epoch, y.Epoch = nil, nil
			if x != y {
				t.Fatalf("%s: island %d event %d diverged:\n%+v\n%+v", label, island, i, x, y)
			}
		}
	}
}

// sameResult fails unless the two results agree on everything a client
// can see, the protected dataset byte for byte included.
func sameResult(t *testing.T, label string, a, b serve.JobResult) {
	t.Helper()
	if a.Best.Score != b.Best.Score || a.Best.IL != b.Best.IL || a.Best.DR != b.Best.DR {
		t.Fatalf("%s: best diverged: %+v vs %+v", label, a.Best, b.Best)
	}
	if a.Generations != b.Generations || a.Islands != b.Islands || a.BestIsland != b.BestIsland {
		t.Fatalf("%s: shape diverged: gen %d/%d islands %d/%d best island %d/%d",
			label, a.Generations, b.Generations, a.Islands, b.Islands, a.BestIsland, b.BestIsland)
	}
	if a.DatasetCSV != b.DatasetCSV {
		t.Fatalf("%s: protected datasets differ", label)
	}
}

// TestClusterMatchesStandalone: the heterogeneous determinism gate
// parameterized over topology and store — a niched adaptive
// multi-island job produces the same per-island feeds and the same
// result whether it runs in-process or through a worker lease, over
// either backend.
func TestClusterMatchesStandalone(t *testing.T) {
	spec := evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         100,
		Generations:  200,
		Islands:      3,
		MigrateEvery: 10,
		Niches:       "explore-exploit",
		Adaptive:     &evoprot.AdaptiveMigration{},
		Seed:         23,
	}
	refEvents, refResult := runTopology(t, "standalone", storage.NewMem(), spec)

	for _, topology := range topologies {
		for name, be := range testStores(t) {
			t.Run(topology+"/"+name, func(t *testing.T) {
				events, result := runTopology(t, topology, be, spec)
				sameFeedPerIsland(t, topology+"/"+name, refEvents, events)
				sameResult(t, topology+"/"+name, refResult, result)
			})
		}
	}
}

// TestClusterLeaseExpiryMatchesStandalone is the headline gate: a
// fixed-seed job whose lease is force-expired mid-run — its first
// worker fenced out with uncheckpointed progress in the feed — and
// re-leased to a second worker finishes with a result AND an event
// feed bit-identical (modulo wall-clock times) to an uninterrupted
// standalone run. Checkpoint resume replays the exact stochastic
// trajectory; the generation-tagged feed marker heals the first
// worker's over-hang exactly-once; fencing keeps its death throes out
// of the store.
func TestClusterLeaseExpiryMatchesStandalone(t *testing.T) {
	spec := evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         120,
		Generations:  400,
		Islands:      1,
		MigrateEvery: 10,
		Seed:         17,
	}
	refEvents, refResult := runTopology(t, "standalone", storage.NewMem(), spec)

	for name, be := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			c, ts := testCoordinator(t, be, Config{
				Serve:    serve.Config{CheckpointEvery: 5},
				LeaseTTL: 500 * time.Millisecond,
			})
			stop1 := startWorker(t, ts.URL, "w1", 5)

			status := postJob(t, ts.URL, spec)
			mid := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s serve.JobStatus) bool {
				return s.Generation >= 60
			})
			if mid.State.Terminal() {
				t.Fatalf("job finished (%s) before the test could expire its lease; slow the spec down", mid.State)
			}

			// Force the expiry the janitor would apply to a dead worker, then
			// take worker 1 down so the re-leased job can only go elsewhere.
			// Worker 1 is a zombie from this instant: whatever it still
			// writes must bounce off the fence.
			if !c.expire(status.ID) {
				t.Fatal("no active lease to expire")
			}
			stop1()
			startWorker(t, ts.URL, "w2", 5)

			done := waitFor(t, ts.URL, status.ID, 180*time.Second, func(s serve.JobStatus) bool {
				return s.State.Terminal()
			})
			if done.State != serve.StateDone {
				t.Fatalf("re-leased job finished as %s (error %q)", done.State, done.Error)
			}
			if done.Generation != 400 {
				t.Fatalf("re-leased job executed %d generations, want 400", done.Generation)
			}
			if done.Resumes != 1 {
				t.Fatalf("resumes = %d, want 1", done.Resumes)
			}

			events := fetchEvents(t, ts.URL, status.ID)
			sameFeed(t, name, refEvents, events)
			sameResult(t, name, refResult, fetchResult(t, ts.URL, status.ID))
		})
	}
}

// TestClusterPreemptionMatchesStandalone: the priority-preemption half
// of the determinism gate, through the lease protocol. A high-priority
// submission against a saturated one-worker cluster rides the next
// heartbeat: the coordinator's renew reply tells the worker to preempt,
// the worker checkpoints and hands the job back requeued, runs the
// urgent job first, then resumes the displaced one — and the displaced
// job's feed and result must still be bit-identical to an uninterrupted
// standalone run.
func TestClusterPreemptionMatchesStandalone(t *testing.T) {
	spec := evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         120,
		Generations:  400,
		Islands:      1,
		MigrateEvery: 10,
		Seed:         17,
	}
	refEvents, refResult := runTopology(t, "standalone", storage.NewMem(), spec)

	for name, be := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			// A short lease TTL keeps heartbeats (TTL/3) frequent, so the
			// preempt signal reaches the worker within a few hundred ms.
			_, ts := testCoordinator(t, be, Config{
				Serve:    serve.Config{CheckpointEvery: 5},
				LeaseTTL: 500 * time.Millisecond,
			})
			startWorker(t, ts.URL, "w1", 5)

			low := postJob(t, ts.URL, spec)
			mid := waitFor(t, ts.URL, low.ID, 60*time.Second, func(s serve.JobStatus) bool {
				return s.Generation >= 60
			})
			if mid.State.Terminal() {
				t.Fatalf("job finished (%s) before the test could preempt it; slow the spec down", mid.State)
			}

			urgent := smallSpec()
			urgent.Priority = 9
			urgentStatus := postJob(t, ts.URL, urgent)

			urgentDone := waitFor(t, ts.URL, urgentStatus.ID, 60*time.Second, func(s serve.JobStatus) bool {
				return s.State.Terminal()
			})
			if urgentDone.State != serve.StateDone {
				t.Fatalf("urgent job finished as %s (error %q)", urgentDone.State, urgentDone.Error)
			}
			// One worker, serialized: the urgent job finishing first proves
			// the preemption actually moved it ahead of the running job.
			if got := getStatus(t, ts.URL, low.ID); got.State.Terminal() {
				t.Fatalf("displaced job already %s when the urgent job finished", got.State)
			}

			done := waitFor(t, ts.URL, low.ID, 180*time.Second, func(s serve.JobStatus) bool {
				return s.State.Terminal()
			})
			if done.State != serve.StateDone {
				t.Fatalf("preempted job finished as %s (error %q)", done.State, done.Error)
			}
			if done.Generation != 400 {
				t.Fatalf("preempted job executed %d generations, want 400", done.Generation)
			}
			if done.Preemptions != 1 || done.Resumes != 1 {
				t.Fatalf("preemptions = %d, resumes = %d, want 1 and 1", done.Preemptions, done.Resumes)
			}

			events := fetchEvents(t, ts.URL, low.ID)
			sameFeed(t, name, refEvents, events)
			sameResult(t, name, refResult, fetchResult(t, ts.URL, low.ID))
		})
	}
}
