package cluster

// Network-fault injection over the cluster path: a worker whose HTTP
// client loses responses, sees duplicated deliveries or added latency
// must map those faults onto the very service guarantees the local
// fault suite (internal/serve/fault_test.go) pins down — a failed
// checkpoint write fails the job with its cause, a failed event append
// is recorded but not fatal, and duplicates or delays change nothing.

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"evoprot"
	"evoprot/internal/serve"
	"evoprot/internal/storage"
)

// TestRemoteCheckpointWriteFailureFailsJob: the worker's checkpoint
// Put is applied by the coordinator but its response is lost — from
// the engine's view the durability contract broke, so the job must
// fail with the checkpoint as cause, exactly as with a failing local
// store.
func TestRemoteCheckpointWriteFailureFailsJob(t *testing.T) {
	_, ts := testCoordinator(t, storage.NewMem(), Config{})
	startWorkerClient(t, ts.URL, "w1", 5, &http.Client{
		Transport: &storage.FlakyTransport{
			Key: "job.ckpt",
			// Exchange 1 is the claim-time checkpoint probe (a read);
			// every checkpoint write after it loses its response.
			DropResponsesAfter: 2,
		},
	})

	status := postJob(t, ts.URL, smallSpec())
	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s serve.JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != serve.StateFailed {
		t.Fatalf("job with lost checkpoint responses finished as %s, want %s", done.State, serve.StateFailed)
	}
	if !strings.Contains(done.Error, "checkpoint") {
		t.Fatalf("failure cause %q does not name the checkpoint write", done.Error)
	}
}

// TestRemoteEventWriteFailureRecordedNotFatal: lost responses on event
// appends latch the worker's log and record the error, but the
// optimization still completes — the feed is observability, not the
// result. Same contract as the local torn-store test, across the wire.
func TestRemoteEventWriteFailureRecordedNotFatal(t *testing.T) {
	_, ts := testCoordinator(t, storage.NewMem(), Config{})
	startWorkerClient(t, ts.URL, "w1", 5, &http.Client{
		Transport: &storage.FlakyTransport{
			Key: "events.ndjson",
			// Exchange 1 is the worker opening the feed (a read); every
			// append after it loses its response.
			DropResponsesAfter: 2,
		},
	})

	status := postJob(t, ts.URL, smallSpec())
	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s serve.JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != serve.StateDone {
		t.Fatalf("job with lost event-append responses finished as %s, want %s", done.State, serve.StateDone)
	}
	if !strings.Contains(done.Error, "event log") {
		t.Fatalf("status error %q does not record the event log failure", done.Error)
	}
}

// TestRemoteDuplicateAndDelayedDelivery: every event append is
// delivered twice (a middlebox replay) with added latency, yet the
// per-append write id keeps the feed exactly-once and the job lands on
// the same result an unmolested run produces.
func TestRemoteDuplicateAndDelayedDelivery(t *testing.T) {
	spec := evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         80,
		Generations:  30,
		Islands:      1,
		MigrateEvery: 5,
		Seed:         7,
	}
	refEvents, refResult := runTopology(t, "standalone", storage.NewMem(), spec)

	_, ts := testCoordinator(t, storage.NewMem(), Config{})
	startWorkerClient(t, ts.URL, "w1", 5, &http.Client{
		Transport: &storage.FlakyTransport{
			Key:       "events.ndjson",
			Duplicate: true,
			Delay:     time.Millisecond,
		},
	})

	status := postJob(t, ts.URL, spec)
	done := waitFor(t, ts.URL, status.ID, 120*time.Second, func(s serve.JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != serve.StateDone {
		t.Fatalf("job under duplicated delivery finished as %s (error %q)", done.State, done.Error)
	}

	events := fetchEvents(t, ts.URL, status.ID)
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: a duplicated append reached the feed", i, ev.Seq)
		}
	}
	sameFeed(t, "duplicate-delivery", refEvents, events)
	sameResult(t, "duplicate-delivery", refResult, fetchResult(t, ts.URL, status.ID))
}
