package score

// Delta (incremental) evaluation. A genetic operator derives an offspring
// from an already-scored parent by changing a handful of cells, so most of
// a full re-evaluation repeats work the parent's evaluation already did.
// EvaluateDelta instead advances per-measure incremental states (see
// infoloss.Incremental and risk.Incremental) by the operator's change
// list, in time proportional to the number of changed cells for the
// incremental measures; measures without an incremental implementation
// (or whose configuration rules one out) are recomputed in full.
//
// Delta evaluation is bit-for-bit identical to Evaluate: the incremental
// measures maintain exact integer summaries and share their final value
// arithmetic with the full path, and EvaluateDelta accumulates the
// battery sums in the same order Evaluate does.

import (
	"fmt"

	"evoprot/internal/dataset"
	"evoprot/internal/infoloss"
	"evoprot/internal/risk"
)

// DeltaState carries the per-measure incremental states describing one
// masked dataset. It is produced by Prepare or EvaluateDelta, always
// describes exactly one masked file, and must only be advanced with
// change lists for that file. A nil slot means the corresponding measure
// runs without a fast path and is fully recomputed on every delta
// evaluation.
type DeltaState struct {
	il []infoloss.State
	dr []risk.State
}

// Clone returns an independent deep copy — the branch point for an
// offspring whose survival is not yet known.
func (s *DeltaState) Clone() *DeltaState {
	out := &DeltaState{
		il: make([]infoloss.State, len(s.il)),
		dr: make([]risk.State, len(s.dr)),
	}
	for i, st := range s.il {
		if st != nil {
			out.il[i] = st.CloneState()
		}
	}
	for i, st := range s.dr {
		if st != nil {
			out.dr[i] = st.CloneState()
		}
	}
	return out
}

// Prepare builds the incremental evaluation state for a masked dataset.
// The cost is comparable to one full evaluation; every EvaluateDelta from
// the state then costs a small fraction of that.
func (e *Evaluator) Prepare(masked *dataset.Dataset) (*DeltaState, error) {
	if masked == nil {
		return nil, fmt.Errorf("score: nil masked dataset")
	}
	if masked.Rows() != e.orig.Rows() || masked.Cols() != e.orig.Cols() {
		return nil, fmt.Errorf("score: masked dataset is %dx%d, original is %dx%d",
			masked.Rows(), masked.Cols(), e.orig.Rows(), e.orig.Cols())
	}
	s := &DeltaState{
		il: make([]infoloss.State, len(e.cfg.IL)),
		dr: make([]risk.State, len(e.cfg.DR)),
	}
	for i, m := range e.cfg.IL {
		if inc, ok := m.(infoloss.Incremental); ok {
			s.il[i] = inc.Prepare(e.orig, masked, e.attrs)
		}
	}
	for i, m := range e.cfg.DR {
		if inc, ok := m.(risk.Incremental); ok {
			s.dr[i] = inc.Prepare(e.orig, masked, e.attrs)
		}
	}
	return s, nil
}

// replayScanLimit bounds the change-list length validated by the
// quadratic in-place scan. The genetic operators produce one change per
// mutation and a handful per surviving crossover window, so the common
// path stays allocation-free; longer lists (which are at worst one
// allocation against an expensive evaluation) fall back to a map.
const replayScanLimit = 32

// validateChanges checks the change-list contract of EvaluateDelta: only
// in-domain edits of protected cells may appear — the states index their
// summaries by protected-attribute position and category, so an unchecked
// foreign column or out-of-domain value would silently corrupt them.
// (Edits to unprotected columns are invisible to every measure and need no
// change entries at all.) Within one cell the list must chain — each edit
// starts from the value the previous one produced (catches reordered or
// merged lists from different ancestors) — and replaying the list must
// land on the child (catches swapped Old/New, e.g. a diff taken in the
// wrong direction). The Old values must describe the file the parent state
// was built from — that file is not at hand here, so beyond the replay
// checks correctness of Old is the caller's contract.
func (e *Evaluator) validateChanges(child *dataset.Dataset, changes []dataset.CellChange) error {
	for _, ch := range changes {
		if ch.Row < 0 || ch.Row >= e.orig.Rows() {
			return fmt.Errorf("score: change row %d outside [0,%d)", ch.Row, e.orig.Rows())
		}
		if !e.protected(ch.Col) {
			return fmt.Errorf("score: change column %d is not a protected attribute", ch.Col)
		}
		card := e.orig.Schema().Attr(ch.Col).Cardinality()
		if ch.Old < 0 || ch.Old >= card || ch.New < 0 || ch.New >= card {
			return fmt.Errorf("score: change (%d,%d) values %d->%d outside domain [0,%d)",
				ch.Row, ch.Col, ch.Old, ch.New, card)
		}
	}
	if len(changes) <= replayScanLimit {
		// Chain and replay checks by scanning the list itself — no
		// allocation on the hot (short-list) path.
		for k, ch := range changes {
			for j := k - 1; j >= 0; j-- {
				if changes[j].Row == ch.Row && changes[j].Col == ch.Col {
					if ch.Old != changes[j].New {
						return fmt.Errorf("score: change chain broken at cell (%d,%d): edit starts from %d, previous edit ended at %d",
							ch.Row, ch.Col, ch.Old, changes[j].New)
					}
					break
				}
			}
			last := true
			for j := k + 1; j < len(changes); j++ {
				if changes[j].Row == ch.Row && changes[j].Col == ch.Col {
					last = false
					break
				}
			}
			if last && child.At(ch.Row, ch.Col) != ch.New {
				return fmt.Errorf("score: change list does not replay to child at cell (%d,%d): list ends at %d, child holds %d",
					ch.Row, ch.Col, ch.New, child.At(ch.Row, ch.Col))
			}
		}
		return nil
	}
	final := make(map[[2]int]int, len(changes))
	for _, ch := range changes {
		cell := [2]int{ch.Row, ch.Col}
		if prev, seen := final[cell]; seen && ch.Old != prev {
			return fmt.Errorf("score: change chain broken at cell (%d,%d): edit starts from %d, previous edit ended at %d",
				ch.Row, ch.Col, ch.Old, prev)
		}
		final[cell] = ch.New
	}
	for cell, v := range final {
		if child.At(cell[0], cell[1]) != v {
			return fmt.Errorf("score: change list does not replay to child at cell (%d,%d): list ends at %d, child holds %d",
				cell[0], cell[1], v, child.At(cell[0], cell[1]))
		}
	}
	return nil
}

// deltaRebuildFraction bounds when patching states change-by-change stops
// paying off: once a change list touches more than rows/deltaRebuildFraction
// cells (a wide crossover window), the per-change updates of the linkage
// states approach the cost of rebuilding them, so EvaluateDelta rebuilds
// from the child instead. Results are identical either way.
const deltaRebuildFraction = 2

// protected reports whether col is one of the protected attributes.
func (e *Evaluator) protected(col int) bool {
	for _, a := range e.attrs {
		if a == col {
			return true
		}
	}
	return false
}

// WideEdit reports whether a change list is past the incremental
// break-even point: EvaluateDelta will then evaluate the child in full
// and return a nil state, so callers holding no state for the parent can
// skip building one.
func (e *Evaluator) WideEdit(changes []dataset.CellChange) bool {
	return len(changes)*deltaRebuildFraction > e.orig.Rows()
}

// EvaluateDelta scores child — the dataset obtained by applying changes,
// in order, to the masked file parentState describes — and returns its
// evaluation together with its own state. parent is that file's
// evaluation; it is returned unchanged (with a cloned state) when changes
// is empty. parentState is never modified.
//
// For edits wider than the incremental break-even point the child is
// fully evaluated instead and the returned state is nil: building fresh
// linkage states costs as much as the evaluation itself and is wasted
// whenever the caller discards the child (an offspring losing its
// survival tournament), so callers re-Prepare lazily if such a child
// ever needs to parent a delta evaluation.
//
// The result is bit-for-bit identical to Evaluate(child), including the
// per-measure parts maps.
//
// The changes slice is only read during the call — neither EvaluateDelta
// nor any measure state retains it — so callers may reuse its backing
// array across calls (the engine's operators do).
func (e *Evaluator) EvaluateDelta(parent Evaluation, parentState *DeltaState, child *dataset.Dataset, changes []dataset.CellChange) (Evaluation, *DeltaState, error) {
	if child == nil {
		return Evaluation{}, nil, fmt.Errorf("score: nil child dataset")
	}
	if parentState == nil {
		return Evaluation{}, nil, fmt.Errorf("score: nil parent delta state")
	}
	if len(parentState.il) != len(e.cfg.IL) || len(parentState.dr) != len(e.cfg.DR) {
		return Evaluation{}, nil, fmt.Errorf("score: delta state has %d+%d measure slots, evaluator has %d+%d",
			len(parentState.il), len(parentState.dr), len(e.cfg.IL), len(e.cfg.DR))
	}
	if child.Rows() != e.orig.Rows() || child.Cols() != e.orig.Cols() {
		return Evaluation{}, nil, fmt.Errorf("score: child dataset is %dx%d, original is %dx%d",
			child.Rows(), child.Cols(), e.orig.Rows(), e.orig.Cols())
	}
	if err := e.validateChanges(child, changes); err != nil {
		return Evaluation{}, nil, err
	}
	if len(changes) == 0 {
		return parent, parentState.Clone(), nil
	}
	if e.WideEdit(changes) {
		// Wide edit: evaluate in full and let the caller rebuild a state
		// lazily if this child ever needs one.
		ev, err := e.Evaluate(child)
		if err != nil {
			return Evaluation{}, nil, err
		}
		return ev, nil, nil
	}

	out := parentState.Clone()
	ev := Evaluation{
		ILParts: make(map[string]float64, len(e.cfg.IL)),
		DRParts: make(map[string]float64, len(e.cfg.DR)),
	}
	// Accumulate in battery order, exactly like Evaluate.
	for i, m := range e.cfg.IL {
		var v float64
		if inc, ok := m.(infoloss.Incremental); ok && out.il[i] != nil {
			v = inc.Apply(out.il[i], changes)
		} else {
			v = m.Loss(e.orig, child, e.attrs)
		}
		ev.ILParts[m.Name()] = v
		ev.IL += v
	}
	for i, m := range e.cfg.DR {
		var v float64
		if inc, ok := m.(risk.Incremental); ok && out.dr[i] != nil {
			v = inc.Apply(out.dr[i], changes)
		} else {
			v = m.Risk(e.orig, child, e.attrs)
		}
		ev.DRParts[m.Name()] = v
		ev.DR += v
	}
	ev.IL /= float64(len(e.cfg.IL))
	ev.DR /= float64(len(e.cfg.DR))
	ev.Score = e.cfg.Aggregator.Combine(ev.IL, ev.DR)
	return ev, out, nil
}
