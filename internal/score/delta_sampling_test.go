package score

// Intruder-side sampling (MaxRecords) used to knock the DBRL and PRL
// measures out of the incremental path — Prepare returned a nil slot and
// EvaluateDelta recomputed just those measures in full each step. The
// linkage states are stride-aware now, so a sampling-configured battery
// runs fully incrementally; this file keeps the end-to-end oracle that
// guarded the old fallback, which is exactly as binding on the new path.
// The property: a delta-evaluation chain over a sampling-configured
// battery is bit-identical to a from-scratch evaluation of each
// intermediate dataset — every measure value, both averages and the
// aggregated score — across random grids, strides and change batches.

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/risk"
)

// TestSampledLinkageFallbackMatchesFromScratch is the property test: for
// several datasets, MaxRecords strides and seeds, a chain of random
// mutation batches evaluated through Prepare/EvaluateDelta (with every
// linkage measure on its stride-aware incremental state) must equal
// Evaluate-from-scratch bit for bit at every step.
func TestSampledLinkageFallbackMatchesFromScratch(t *testing.T) {
	grids := []struct {
		name string
		rows int
	}{
		{"flare", 90},
		{"german", 130},
	}
	for _, grid := range grids {
		for _, maxRecords := range []int{10, 33, 64} {
			for _, seed := range []uint64{3, 19} {
				orig := datagen.MustByName(grid.name, grid.rows, seed)
				names, _ := datagen.ProtectedAttrs(grid.name)
				attrs, err := orig.Schema().Indices(names...)
				if err != nil {
					t.Fatal(err)
				}
				if grid.rows <= maxRecords {
					t.Fatalf("test setup: stride sampling inactive for %d rows with MaxRecords %d", grid.rows, maxRecords)
				}
				eval, err := NewEvaluator(orig, attrs, Config{
					DR: []risk.Measure{
						&risk.IntervalDisclosure{MaxP: 10},
						&risk.DistanceLinkage{MaxRecords: maxRecords},
						&risk.ProbabilisticLinkage{EMIters: 10, MaxRecords: maxRecords},
						&risk.RankIntervalLinkage{P: 15, MaxRecords: maxRecords},
					},
				})
				if err != nil {
					t.Fatal(err)
				}

				rng := rand.New(rand.NewPCG(seed, 7))
				masked := orig.Clone()
				applyRandomChanges(rng, masked, attrs, 25) // start away from the original
				parentEval, err := eval.Evaluate(masked)
				if err != nil {
					t.Fatal(err)
				}
				state := mustPrepare(t, eval, masked)

				for step := 0; step < 6; step++ {
					child := masked.Clone()
					batch := 1 + rng.IntN(4) // mutations and small crossover windows
					changes := applyRandomChanges(rng, child, attrs, batch)
					gotEval, gotState, err := eval.EvaluateDelta(parentEval, state, child, changes)
					if err != nil {
						t.Fatalf("%s/max%d/seed%d step %d: %v", grid.name, maxRecords, seed, step, err)
					}
					want, err := eval.Evaluate(child)
					if err != nil {
						t.Fatal(err)
					}
					requireIdentical(t,
						grid.name+" sampled delta step", gotEval, want)
					if gotState == nil {
						t.Fatalf("%s/max%d/seed%d step %d: narrow edit returned no state", grid.name, maxRecords, seed, step)
					}
					masked, parentEval, state = child, gotEval, gotState
				}
			}
		}
	}
}

// TestSampledLinkagePrepareSlots pins the capability the oracle above
// now exercises: under active stride sampling every default-battery
// measure must offer an incremental state — a regression to nil-slot
// Prepares would silently turn the chain test into a test of the full
// recompute fallback.
func TestSampledLinkagePrepareSlots(t *testing.T) {
	orig := datagen.MustByName("flare", 90, 5)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := orig.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	masked := orig.Clone()
	if st := (&risk.DistanceLinkage{MaxRecords: 30}).Prepare(orig, masked, attrs); st == nil {
		t.Error("sampled DBRL lost its incremental support")
	}
	if st := (&risk.ProbabilisticLinkage{MaxRecords: 30}).Prepare(orig, masked, attrs); st == nil {
		t.Error("sampled PRL lost its incremental support")
	}
	if st := (&risk.RankIntervalLinkage{MaxRecords: 30}).Prepare(orig, masked, attrs); st == nil {
		t.Error("sampled RSRL lost its incremental support")
	}
	if st := (&risk.IntervalDisclosure{}).Prepare(orig, masked, attrs); st == nil {
		t.Error("ID lost its incremental support")
	}
}
