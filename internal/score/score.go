// Package score turns the information-loss and disclosure-risk batteries
// into the single fitness value that guides the evolutionary algorithm
// (paper §2.3): IL is the average of the information-loss measures, DR the
// average of the disclosure-risk measures, and an Aggregator combines the
// two. Lower scores are better throughout; 0 would be a masking that loses
// nothing and discloses nothing.
package score

import (
	"context"
	"fmt"
	"sync"

	"evoprot/internal/dataset"
	"evoprot/internal/infoloss"
	"evoprot/internal/risk"
)

// Aggregator folds the (IL, DR) pair into one score. The paper studies two:
// Mean (Eq. 1) and Max (Eq. 2). Implementations must be pure.
type Aggregator interface {
	// Name identifies the aggregator, e.g. "mean".
	Name() string
	// Combine returns the score for the given information loss and
	// disclosure risk, both in [0,100].
	Combine(il, dr float64) float64
}

// Mean is the paper's Eq. 1: Score = (IL + DR) / 2. It allows perfect
// trade-offs — an individual with IL=0, DR=40 scores like one with 20/20 —
// which §3.1 shows produces unbalanced protections.
type Mean struct{}

// Name implements Aggregator.
func (Mean) Name() string { return "mean" }

// Combine implements Aggregator.
func (Mean) Combine(il, dr float64) float64 { return (il + dr) / 2 }

// Max is the paper's Eq. 2: Score = max(IL, DR). One bad component alone
// makes the score bad, so optimization is pushed toward balanced (IL, DR)
// pairs — the behaviour §3.2 demonstrates.
type Max struct{}

// Name implements Aggregator.
func (Max) Name() string { return "max" }

// Combine implements Aggregator.
func (Max) Combine(il, dr float64) float64 {
	if il > dr {
		return il
	}
	return dr
}

// DefaultAggregatorName names the aggregation selected when a caller does
// not choose one: "max" (Eq. 2), the aggregation the paper concludes works
// better for categorical data. Facade and core layers resolve their empty
// aggregator values against this single constant.
const DefaultAggregatorName = "max"

// AggregatorByName resolves "mean" or "max".
func AggregatorByName(name string) (Aggregator, error) {
	switch name {
	case "mean":
		return Mean{}, nil
	case "max":
		return Max{}, nil
	default:
		return nil, fmt.Errorf("score: unknown aggregator %q (want mean|max)", name)
	}
}

// Pair is an (IL, DR) point, e.g. one individual in a dispersion plot.
type Pair struct {
	IL float64
	DR float64
}

// Evaluation is the full fitness breakdown of one protected dataset.
type Evaluation struct {
	// IL is the average information loss in [0,100].
	IL float64
	// DR is the average disclosure risk in [0,100].
	DR float64
	// Score is Aggregator.Combine(IL, DR); lower is better.
	Score float64
	// ILParts and DRParts hold each underlying measure's value by name.
	ILParts map[string]float64
	DRParts map[string]float64
}

// Pair returns the evaluation's (IL, DR) point.
func (e Evaluation) Pair() Pair { return Pair{IL: e.IL, DR: e.DR} }

// Config parameterizes an Evaluator. Zero values select the paper's
// defaults.
type Config struct {
	// IL is the information-loss battery; nil selects infoloss.Default().
	IL []infoloss.Measure
	// DR is the disclosure-risk battery; nil selects risk.Default().
	DR []risk.Measure
	// Aggregator combines IL and DR; nil selects Max (Eq. 2), the
	// aggregation the paper concludes works better for categorical data.
	Aggregator Aggregator
	// Parallel evaluates the IL and DR batteries concurrently when true.
	// Results are identical; only wall-clock changes.
	Parallel bool
}

// Evaluator computes evaluations of masked datasets against one fixed
// original file. It is safe for concurrent use.
type Evaluator struct {
	orig  *dataset.Dataset
	attrs []int
	cfg   Config
}

// NewEvaluator builds an evaluator for the given original dataset and
// protected attribute indices.
func NewEvaluator(orig *dataset.Dataset, attrs []int, cfg Config) (*Evaluator, error) {
	if orig == nil {
		return nil, fmt.Errorf("score: nil original dataset")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("score: no protected attributes")
	}
	for _, a := range attrs {
		if a < 0 || a >= orig.Cols() {
			return nil, fmt.Errorf("score: attribute index %d out of range [0,%d)", a, orig.Cols())
		}
	}
	if cfg.IL == nil {
		cfg.IL = infoloss.Default()
	}
	if cfg.DR == nil {
		cfg.DR = risk.Default()
	}
	if len(cfg.IL) == 0 || len(cfg.DR) == 0 {
		return nil, fmt.Errorf("score: empty measure battery")
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = Max{}
	}
	own := make([]int, len(attrs))
	copy(own, attrs)
	return &Evaluator{orig: orig, attrs: own, cfg: cfg}, nil
}

// Orig returns the original dataset the evaluator compares against.
func (e *Evaluator) Orig() *dataset.Dataset { return e.orig }

// Attrs returns a copy of the protected attribute indices.
func (e *Evaluator) Attrs() []int {
	out := make([]int, len(e.attrs))
	copy(out, e.attrs)
	return out
}

// Aggregator returns the configured aggregator.
func (e *Evaluator) Aggregator() Aggregator { return e.cfg.Aggregator }

// WithAggregator returns a copy of the evaluator using a different
// aggregator; measure batteries are shared.
func (e *Evaluator) WithAggregator(agg Aggregator) *Evaluator {
	cfg := e.cfg
	cfg.Aggregator = agg
	return &Evaluator{orig: e.orig, attrs: e.attrs, cfg: cfg}
}

// Evaluate computes the full evaluation of a masked dataset. The masked
// dataset must have the same shape as the original.
func (e *Evaluator) Evaluate(masked *dataset.Dataset) (Evaluation, error) {
	if masked == nil {
		return Evaluation{}, fmt.Errorf("score: nil masked dataset")
	}
	if masked.Rows() != e.orig.Rows() || masked.Cols() != e.orig.Cols() {
		return Evaluation{}, fmt.Errorf("score: masked dataset is %dx%d, original is %dx%d",
			masked.Rows(), masked.Cols(), e.orig.Rows(), e.orig.Cols())
	}
	ev := Evaluation{
		ILParts: make(map[string]float64, len(e.cfg.IL)),
		DRParts: make(map[string]float64, len(e.cfg.DR)),
	}
	if e.cfg.Parallel {
		var wg sync.WaitGroup
		ilVals := make([]float64, len(e.cfg.IL))
		drVals := make([]float64, len(e.cfg.DR))
		for i, m := range e.cfg.IL {
			wg.Add(1)
			go func(i int, m infoloss.Measure) {
				defer wg.Done()
				ilVals[i] = m.Loss(e.orig, masked, e.attrs)
			}(i, m)
		}
		for i, m := range e.cfg.DR {
			wg.Add(1)
			go func(i int, m risk.Measure) {
				defer wg.Done()
				drVals[i] = m.Risk(e.orig, masked, e.attrs)
			}(i, m)
		}
		wg.Wait()
		for i, m := range e.cfg.IL {
			ev.ILParts[m.Name()] = ilVals[i]
			ev.IL += ilVals[i]
		}
		for i, m := range e.cfg.DR {
			ev.DRParts[m.Name()] = drVals[i]
			ev.DR += drVals[i]
		}
	} else {
		for _, m := range e.cfg.IL {
			v := m.Loss(e.orig, masked, e.attrs)
			ev.ILParts[m.Name()] = v
			ev.IL += v
		}
		for _, m := range e.cfg.DR {
			v := m.Risk(e.orig, masked, e.attrs)
			ev.DRParts[m.Name()] = v
			ev.DR += v
		}
	}
	ev.IL /= float64(len(e.cfg.IL))
	ev.DR /= float64(len(e.cfg.DR))
	ev.Score = e.cfg.Aggregator.Combine(ev.IL, ev.DR)
	return ev, nil
}

// EvaluateAll evaluates many masked datasets with the given worker-pool
// width (<=1 means sequential), preserving order. The context is checked
// between datasets, so a whole-population evaluation — the startup cost of
// an engine — honours cancellation.
func (e *Evaluator) EvaluateAll(ctx context.Context, masked []*dataset.Dataset, workers int) ([]Evaluation, error) {
	evs, _, err := e.evaluateAll(ctx, masked, workers, false)
	return evs, err
}

// EvaluateAllPrepared is EvaluateAll plus incremental preparation: the
// worker that evaluates a dataset also builds its delta state (see
// Prepare), so a population enters the engine ready for delta evaluation
// and the first reproduction of every parent skips the lazy state build.
// The returned states are aligned with the evaluations.
func (e *Evaluator) EvaluateAllPrepared(ctx context.Context, masked []*dataset.Dataset, workers int) ([]Evaluation, []*DeltaState, error) {
	return e.evaluateAll(ctx, masked, workers, true)
}

// evaluateAll runs the shared evaluation pool behind EvaluateAll and
// EvaluateAllPrepared.
func (e *Evaluator) evaluateAll(ctx context.Context, masked []*dataset.Dataset, workers int, prepare bool) ([]Evaluation, []*DeltaState, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Evaluation, len(masked))
	var states []*DeltaState
	if prepare {
		states = make([]*DeltaState, len(masked))
	}
	one := func(idx int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ev, err := e.Evaluate(masked[idx])
		if err != nil {
			return fmt.Errorf("score: evaluating dataset %d: %w", idx, err)
		}
		out[idx] = ev
		if prepare {
			st, err := e.Prepare(masked[idx])
			if err != nil {
				return fmt.Errorf("score: preparing dataset %d: %w", idx, err)
			}
			states[idx] = st
		}
		return nil
	}
	if workers <= 1 {
		for i := range masked {
			if err := one(i); err != nil {
				return nil, nil, err
			}
		}
		return out, states, nil
	}
	// Pre-fill the job queue so a worker that stops on error can never
	// deadlock the producer.
	jobs := make(chan int, len(masked))
	for i := range masked {
		jobs <- i
	}
	close(jobs)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := one(idx); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, nil, err
	default:
	}
	return out, states, nil
}
