package score

// Generation-batch delta evaluation. The engine's reproduction step
// scores every offspring of a generation before any replacement
// decision, so the offspring of one parent form a natural batch: they
// all branch from the same delta state. EvaluateDelta serves that shape
// by cloning the parent state once per offspring — one full set of
// per-measure summary copies whose only purpose, for a losing offspring,
// is to be garbage. EvaluateBatch removes those clones: it applies each
// offspring's change list against the parent's own state through the
// measures' reversible (apply/undo) capability and rolls the state back
// before the next offspring, touching memory proportional to the edit
// instead of to the file. Groups are independent (each owns its state),
// so they shard across a worker pool.
//
// Results are bit-for-bit identical to the per-offspring EvaluateDelta
// path: Undo restores states exactly (property-tested per measure), and
// the accumulation below mirrors EvaluateDelta's battery order.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"evoprot/internal/dataset"
	"evoprot/internal/infoloss"
	"evoprot/internal/risk"
)

// BatchOffspring is one candidate dataset derived from a batch group's
// parent by Changes. Eval is an output: EvaluateBatch fills it in.
type BatchOffspring struct {
	// Child is the offspring dataset — the parent's file with Changes
	// applied, same contract as EvaluateDelta's child.
	Child *dataset.Dataset
	// Changes derives Child from the group's parent file, in order.
	Changes []dataset.CellChange
	// Eval receives the offspring's evaluation, bit-identical to what
	// EvaluateDelta would return for the same (parent, changes) pair.
	Eval Evaluation
}

// BatchGroup gathers one parent's offspring for a generation. State is
// advanced and rolled back in place during EvaluateBatch but always
// returned to its incoming value — the group's parent remains a valid
// delta-evaluation ancestor afterwards.
type BatchGroup struct {
	// Parent is the parent's evaluation, returned verbatim for
	// offspring with empty change lists (same as EvaluateDelta).
	Parent Evaluation
	// State is the parent's delta state; it must describe the file the
	// offspring's Changes start from. Nil-slot measures are recomputed
	// in full per offspring, exactly like EvaluateDelta. A nil State is
	// allowed only when no offspring needs one — every change list empty
	// or past the wide-edit break-even point (both are scored without
	// touching the state).
	State *DeltaState
	// Offspring are the candidates to score.
	Offspring []BatchOffspring
}

// Batchable reports whether every configured measure supports reversible
// delta evaluation, i.e. whether EvaluateBatch runs allocation-free over
// narrow edits. EvaluateBatch works either way — a measure without the
// capability falls back to clone-and-apply or a full recompute — but a
// caller choosing between the batch and per-offspring paths for
// performance reasons wants the distinction.
func (e *Evaluator) Batchable() bool {
	for _, m := range e.cfg.IL {
		if _, ok := m.(infoloss.Reversible); !ok {
			return false
		}
	}
	for _, m := range e.cfg.DR {
		if _, ok := m.(risk.Reversible); !ok {
			return false
		}
	}
	return true
}

// EvaluateBatch scores every offspring of every group, writing results
// into the Offspring[k].Eval fields. Offspring within a group are
// evaluated sequentially against the group's shared state (apply, read,
// undo); distinct groups are independent and are sharded across workers
// goroutines when workers > 1. Each evaluation is bit-for-bit identical
// to EvaluateDelta over the same (parent, state, child, changes), and
// every group's State is restored to its incoming value before return.
//
// On error the groups' states are still intact — the per-offspring
// checks run before the state is touched — but Eval fields of offspring
// processed after the failure point are unspecified.
func (e *Evaluator) EvaluateBatch(groups []BatchGroup, workers int) error {
	for g := range groups {
		st := groups[g].State
		if st == nil {
			continue // checked per offspring: only narrow edits need a state
		}
		if len(st.il) != len(e.cfg.IL) || len(st.dr) != len(e.cfg.DR) {
			return fmt.Errorf("score: batch group %d state has %d+%d measure slots, evaluator has %d+%d",
				g, len(st.il), len(st.dr), len(e.cfg.IL), len(e.cfg.DR))
		}
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 || len(groups) <= 1 {
		for g := range groups {
			if err := e.evaluateGroup(&groups[g]); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		firstMu sync.Mutex
		first   error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g := int(next.Add(1)) - 1
				if g >= len(groups) {
					return
				}
				if err := e.evaluateGroup(&groups[g]); err != nil {
					firstMu.Lock()
					if first == nil {
						first = err
					}
					firstMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// evaluateGroup scores one group's offspring against its shared state.
func (e *Evaluator) evaluateGroup(grp *BatchGroup) error {
	st := grp.State
	for k := range grp.Offspring {
		off := &grp.Offspring[k]
		if off.Child == nil {
			return fmt.Errorf("score: nil child dataset in batch offspring")
		}
		if off.Child.Rows() != e.orig.Rows() || off.Child.Cols() != e.orig.Cols() {
			return fmt.Errorf("score: child dataset is %dx%d, original is %dx%d",
				off.Child.Rows(), off.Child.Cols(), e.orig.Rows(), e.orig.Cols())
		}
		if err := e.validateChanges(off.Child, off.Changes); err != nil {
			return err
		}
		if len(off.Changes) == 0 {
			off.Eval = grp.Parent
			continue
		}
		if e.WideEdit(off.Changes) {
			ev, err := e.Evaluate(off.Child)
			if err != nil {
				return err
			}
			off.Eval = ev
			continue
		}
		if st == nil {
			return fmt.Errorf("score: batch group with a narrow-edit offspring has nil delta state")
		}
		ev := Evaluation{
			ILParts: make(map[string]float64, len(e.cfg.IL)),
			DRParts: make(map[string]float64, len(e.cfg.DR)),
		}
		// Accumulate in battery order, exactly like EvaluateDelta.
		for i, m := range e.cfg.IL {
			var v float64
			switch {
			case st.il[i] == nil:
				v = m.Loss(e.orig, off.Child, e.attrs)
			default:
				if rev, ok := m.(infoloss.Reversible); ok {
					v = rev.ApplyUndo(st.il[i], off.Changes)
					rev.Undo(st.il[i])
				} else {
					// Incremental but not reversible: branch a throwaway
					// copy, the per-offspring cost EvaluateDelta pays.
					inc := m.(infoloss.Incremental)
					v = inc.Apply(st.il[i].CloneState(), off.Changes)
				}
			}
			ev.ILParts[m.Name()] = v
			ev.IL += v
		}
		for i, m := range e.cfg.DR {
			var v float64
			switch {
			case st.dr[i] == nil:
				v = m.Risk(e.orig, off.Child, e.attrs)
			default:
				if rev, ok := m.(risk.Reversible); ok {
					v = rev.ApplyUndo(st.dr[i], off.Changes)
					rev.Undo(st.dr[i])
				} else {
					inc := m.(risk.Incremental)
					v = inc.Apply(st.dr[i].CloneState(), off.Changes)
				}
			}
			ev.DRParts[m.Name()] = v
			ev.DR += v
		}
		ev.IL /= float64(len(e.cfg.IL))
		ev.DR /= float64(len(e.cfg.DR))
		ev.Score = e.cfg.Aggregator.Combine(ev.IL, ev.DR)
		off.Eval = ev
	}
	return nil
}

// Advance commits changes into state in place: every incremental slot is
// advanced by the change list (disarming any pending undo). It is the
// zero-allocation way to promote a winning offspring's evaluation into a
// reusable delta state when the parent's state is no longer needed —
// where EvaluateDelta would have cloned. The same validation as
// EvaluateDelta applies; child is the dataset the changes produce.
//
// Advance refuses wide edits: past the incremental break-even point
// callers should drop the state and re-Prepare lazily, matching
// EvaluateDelta's nil-state contract for wide offspring.
func (e *Evaluator) Advance(state *DeltaState, child *dataset.Dataset, changes []dataset.CellChange) error {
	if state == nil {
		return fmt.Errorf("score: nil delta state")
	}
	if child == nil {
		return fmt.Errorf("score: nil child dataset")
	}
	if len(state.il) != len(e.cfg.IL) || len(state.dr) != len(e.cfg.DR) {
		return fmt.Errorf("score: delta state has %d+%d measure slots, evaluator has %d+%d",
			len(state.il), len(state.dr), len(e.cfg.IL), len(e.cfg.DR))
	}
	if e.WideEdit(changes) {
		return fmt.Errorf("score: Advance over a wide edit (%d changes); re-Prepare instead", len(changes))
	}
	if err := e.validateChanges(child, changes); err != nil {
		return err
	}
	for i, m := range e.cfg.IL {
		if inc, ok := m.(infoloss.Incremental); ok && state.il[i] != nil {
			inc.Apply(state.il[i], changes)
		}
	}
	for i, m := range e.cfg.DR {
		if inc, ok := m.(risk.Incremental); ok && state.dr[i] != nil {
			inc.Apply(state.dr[i], changes)
		}
	}
	return nil
}
