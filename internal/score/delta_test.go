package score

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/risk"
)

func deltaTestEvaluator(t *testing.T) (*Evaluator, *dataset.Dataset) {
	t.Helper()
	orig := datagen.MustByName("german", 150, 61)
	names, _ := datagen.ProtectedAttrs("german")
	attrs, err := orig.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(orig, attrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eval, orig
}

// applyRandomChanges draws a batch of in-domain cell changes, applies them
// to masked, and returns the batch.
func applyRandomChanges(rng *rand.Rand, masked *dataset.Dataset, attrs []int, batch int) []dataset.CellChange {
	changes := make([]dataset.CellChange, 0, batch)
	for len(changes) < batch {
		changes = append(changes, dataset.RandomChange(rng, masked, attrs))
	}
	return changes
}

func mustPrepare(t *testing.T, eval *Evaluator, masked *dataset.Dataset) *DeltaState {
	t.Helper()
	st, err := eval.Prepare(masked)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func requireIdentical(t *testing.T, context string, got, want Evaluation) {
	t.Helper()
	if got.Score != want.Score || got.IL != want.IL || got.DR != want.DR {
		t.Fatalf("%s: delta (IL=%v DR=%v Score=%v) != full (IL=%v DR=%v Score=%v)",
			context, got.IL, got.DR, got.Score, want.IL, want.DR, want.Score)
	}
	if len(got.ILParts) != len(want.ILParts) || len(got.DRParts) != len(want.DRParts) {
		t.Fatalf("%s: parts map sizes differ", context)
	}
	for k, v := range want.ILParts {
		if got.ILParts[k] != v {
			t.Fatalf("%s: ILParts[%s] = %v, want %v", context, k, got.ILParts[k], v)
		}
	}
	for k, v := range want.DRParts {
		if got.DRParts[k] != v {
			t.Fatalf("%s: DRParts[%s] = %v, want %v", context, k, got.DRParts[k], v)
		}
	}
}

// TestEvaluateDeltaMatchesEvaluate is the core equivalence property: over
// long randomized change chains — small batches (the incremental path) and
// wide batches (the rebuild path) — EvaluateDelta must equal a fresh
// Evaluate bit-for-bit, parts maps included.
func TestEvaluateDeltaMatchesEvaluate(t *testing.T) {
	for _, seed := range []uint64{3, 29, 127} {
		eval, orig := deltaTestEvaluator(t)
		attrs := eval.Attrs()
		rng := rand.New(rand.NewPCG(seed, 7))

		masked := orig.Clone()
		applyRandomChanges(rng, masked, attrs, 40)
		st := mustPrepare(t, eval, masked)
		ev, err := eval.Evaluate(masked)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 25; step++ {
			batch := 1 + rng.IntN(3)
			if step%7 == 6 {
				batch = orig.Rows() // force the wide-edit rebuild path
			}
			changes := applyRandomChanges(rng, masked, attrs, batch)
			got, nextSt, err := eval.EvaluateDelta(ev, st, masked, changes)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eval.Evaluate(masked)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, "step", got, want)
			if batch*2 > orig.Rows() {
				// The wide-edit path returns no state; rebuild lazily as
				// the engine would.
				if nextSt != nil {
					t.Fatal("wide edit returned a state; want nil (lazy rebuild)")
				}
				nextSt = mustPrepare(t, eval, masked)
			}
			ev, st = got, nextSt
		}
	}
}

// TestEvaluateDeltaLeavesParentStateIntact checks the branching contract:
// evaluating an offspring must not corrupt the parent's state.
func TestEvaluateDeltaLeavesParentStateIntact(t *testing.T) {
	eval, orig := deltaTestEvaluator(t)
	attrs := eval.Attrs()
	rng := rand.New(rand.NewPCG(9, 13))

	parentData := orig.Clone()
	applyRandomChanges(rng, parentData, attrs, 30)
	parentState := mustPrepare(t, eval, parentData)
	parentEval, err := eval.Evaluate(parentData)
	if err != nil {
		t.Fatal(err)
	}
	// Spawn several divergent offspring from the same parent state.
	for k := 0; k < 5; k++ {
		child := parentData.Clone()
		changes := applyRandomChanges(rng, child, attrs, 2)
		got, _, err := eval.EvaluateDelta(parentEval, parentState, child, changes)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := eval.Evaluate(child)
		requireIdentical(t, "offspring", got, want)
	}
	// The parent state must still describe parentData exactly.
	got, _, err := eval.EvaluateDelta(parentEval, parentState, parentData, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "parent after offspring", got, parentEval)
}

// TestEvaluateDeltaEmptyChanges returns the parent evaluation unchanged.
func TestEvaluateDeltaEmptyChanges(t *testing.T) {
	eval, orig := deltaTestEvaluator(t)
	masked := orig.Clone()
	st := mustPrepare(t, eval, masked)
	ev, err := eval.Evaluate(masked)
	if err != nil {
		t.Fatal(err)
	}
	got, st2, err := eval.EvaluateDelta(ev, st, masked, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2 == st {
		t.Fatal("empty-changes delta returned the parent state itself, not a clone")
	}
	requireIdentical(t, "empty changes", got, ev)
}

// TestEvaluateDeltaErrors covers the argument contract.
func TestEvaluateDeltaErrors(t *testing.T) {
	eval, orig := deltaTestEvaluator(t)
	masked := orig.Clone()
	st := mustPrepare(t, eval, masked)
	ev, _ := eval.Evaluate(masked)
	if _, _, err := eval.EvaluateDelta(ev, st, nil, nil); err == nil {
		t.Error("nil child accepted")
	}
	if _, _, err := eval.EvaluateDelta(ev, nil, masked, nil); err == nil {
		t.Error("nil state accepted")
	}
	small := dataset.New(orig.Schema(), orig.Rows()-1)
	if _, _, err := eval.EvaluateDelta(ev, st, small, nil); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, _, err := eval.EvaluateDelta(ev, &DeltaState{}, masked, nil); err == nil {
		t.Error("foreign state shape accepted")
	}
	attrs := eval.Attrs()
	unprotected := -1
	for c := 0; c < orig.Cols(); c++ {
		if !slicesContain(attrs, c) {
			unprotected = c
			break
		}
	}
	if unprotected >= 0 {
		bad := []dataset.CellChange{{Row: 0, Col: unprotected, Old: 0, New: 0}}
		if _, _, err := eval.EvaluateDelta(ev, st, masked, bad); err == nil {
			t.Error("change on unprotected column accepted")
		}
	}
	oob := []dataset.CellChange{{Row: orig.Rows(), Col: attrs[0], Old: 0, New: 1}}
	if _, _, err := eval.EvaluateDelta(ev, st, masked, oob); err == nil {
		t.Error("out-of-range change row accepted")
	}
	card := orig.Schema().Attr(attrs[0]).Cardinality()
	badVal := []dataset.CellChange{{Row: 0, Col: attrs[0], Old: 0, New: card}}
	if _, _, err := eval.EvaluateDelta(ev, st, masked, badVal); err == nil {
		t.Error("out-of-domain change value accepted")
	}
	// A diff taken in the wrong direction must be rejected, not silently
	// corrupt the state: the replayed list does not land on the child.
	child := masked.Clone()
	old := child.At(0, attrs[0])
	child.Set(0, attrs[0], (old+1)%card)
	swapped := []dataset.CellChange{{Row: 0, Col: attrs[0], Old: (old + 1) % card, New: old}}
	if _, _, err := eval.EvaluateDelta(ev, st, child, swapped); err == nil {
		t.Error("swapped Old/New change list accepted")
	}
	// A per-cell chain whose second edit does not start where the first
	// ended (a merged list from different ancestors) must be rejected.
	if card >= 3 {
		broken := []dataset.CellChange{
			{Row: 0, Col: attrs[0], Old: masked.At(0, attrs[0]), New: (masked.At(0, attrs[0]) + 1) % card},
			{Row: 0, Col: attrs[0], Old: (masked.At(0, attrs[0]) + 2) % card, New: masked.At(0, attrs[0])},
		}
		if _, _, err := eval.EvaluateDelta(ev, st, masked, broken); err == nil {
			t.Error("broken per-cell change chain accepted")
		}
	}
	// Prepare mirrors Evaluate's argument validation.
	if _, err := eval.Prepare(nil); err == nil {
		t.Error("Prepare accepted a nil dataset")
	}
	if _, err := eval.Prepare(dataset.New(orig.Schema(), orig.Rows()-1)); err == nil {
		t.Error("Prepare accepted a wrong-shaped dataset")
	}
}

func slicesContain(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestEvaluateDeltaWithNonIncrementalBattery: a battery of measures with
// no incremental implementations must still work (pure fallback) and the
// parallel-evaluation flag must not change delta results.
func TestEvaluateDeltaWithNonIncrementalBattery(t *testing.T) {
	_, orig := deltaTestEvaluator(t)
	names, _ := datagen.ProtectedAttrs("german")
	attrs, _ := orig.Schema().Indices(names...)
	for _, cfg := range []Config{
		{DR: []risk.Measure{&RankOnly{}}},
		{Parallel: true},
	} {
		eval, err := NewEvaluator(orig, attrs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(21, 17))
		masked := orig.Clone()
		applyRandomChanges(rng, masked, attrs, 10)
		st := mustPrepare(t, eval, masked)
		ev, err := eval.Evaluate(masked)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 8; step++ {
			changes := applyRandomChanges(rng, masked, attrs, 1)
			got, nextSt, err := eval.EvaluateDelta(ev, st, masked, changes)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := eval.Evaluate(masked)
			requireIdentical(t, "fallback battery", got, want)
			ev, st = got, nextSt
		}
	}
}

// RankOnly is a tiny non-incremental test measure wrapping RSRL's full
// Risk with a fixed window: it implements only risk.Measure, keeping the
// pure-fallback routing covered now that every default measure is
// incremental.
type RankOnly struct{}

// Name implements risk.Measure.
func (RankOnly) Name() string { return "rank-only" }

// Risk implements risk.Measure.
func (RankOnly) Risk(orig, masked *dataset.Dataset, attrs []int) float64 {
	rl := risk.RankIntervalLinkage{P: 10}
	return rl.Risk(orig, masked, attrs)
}
