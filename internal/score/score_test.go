package score

import (
	"context"
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/protection"
)

func testSetup(t *testing.T) (*dataset.Dataset, []int) {
	t.Helper()
	d := datagen.MustByName("flare", 150, 19)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	return d, attrs
}

func maskWith(t *testing.T, d *dataset.Dataset, attrs []int, spec string, seed uint64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 5))
	masked, err := protection.Must(spec).Protect(d, attrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	return masked
}

func TestAggregators(t *testing.T) {
	if got := (Mean{}).Combine(20, 40); got != 30 {
		t.Errorf("Mean = %v, want 30", got)
	}
	if got := (Max{}).Combine(20, 40); got != 40 {
		t.Errorf("Max = %v, want 40", got)
	}
	if got := (Max{}).Combine(50, 10); got != 50 {
		t.Errorf("Max = %v, want 50", got)
	}
	if (Mean{}).Name() != "mean" || (Max{}).Name() != "max" {
		t.Error("aggregator names wrong")
	}
}

func TestAggregatorByName(t *testing.T) {
	if a, err := AggregatorByName("mean"); err != nil || a.Name() != "mean" {
		t.Errorf("mean: %v %v", a, err)
	}
	if a, err := AggregatorByName("max"); err != nil || a.Name() != "max" {
		t.Errorf("max: %v %v", a, err)
	}
	if _, err := AggregatorByName("median"); err == nil {
		t.Error("unknown aggregator accepted")
	}
}

func TestNewEvaluatorErrors(t *testing.T) {
	d, attrs := testSetup(t)
	if _, err := NewEvaluator(nil, attrs, Config{}); err == nil {
		t.Error("nil original accepted")
	}
	if _, err := NewEvaluator(d, nil, Config{}); err == nil {
		t.Error("no attrs accepted")
	}
	if _, err := NewEvaluator(d, []int{99}, Config{}); err == nil {
		t.Error("out-of-range attr accepted")
	}
}

func TestEvaluateIdentity(t *testing.T) {
	d, attrs := testSetup(t)
	e, err := NewEvaluator(d, attrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if ev.IL != 0 {
		t.Errorf("identity IL = %v, want 0", ev.IL)
	}
	if ev.DR <= 0 {
		t.Errorf("identity DR = %v, want > 0", ev.DR)
	}
	// Default aggregator is Max; identity score = DR.
	if ev.Score != ev.DR {
		t.Errorf("Score = %v, want DR %v", ev.Score, ev.DR)
	}
	if len(ev.ILParts) != 3 || len(ev.DRParts) != 4 {
		t.Errorf("parts: %d IL, %d DR; want 3, 4", len(ev.ILParts), len(ev.DRParts))
	}
}

func TestEvaluateShapeMismatch(t *testing.T) {
	d, attrs := testSetup(t)
	e, _ := NewEvaluator(d, attrs, Config{})
	other := dataset.New(d.Schema(), d.Rows()+1)
	if _, err := e.Evaluate(other); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := e.Evaluate(nil); err == nil {
		t.Error("nil masked accepted")
	}
}

func TestScoreIsAggregateOfParts(t *testing.T) {
	d, attrs := testSetup(t)
	masked := maskWith(t, d, attrs, "pram:theta=0.6", 7)
	for _, aggName := range []string{"mean", "max"} {
		agg, _ := AggregatorByName(aggName)
		e, _ := NewEvaluator(d, attrs, Config{Aggregator: agg})
		ev, err := e.Evaluate(masked)
		if err != nil {
			t.Fatal(err)
		}
		// IL/DR are means of their parts.
		sumIL := 0.0
		for _, v := range ev.ILParts {
			sumIL += v
		}
		sumDR := 0.0
		for _, v := range ev.DRParts {
			sumDR += v
		}
		if diff := ev.IL - sumIL/3; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: IL %v != mean of parts %v", aggName, ev.IL, sumIL/3)
		}
		if diff := ev.DR - sumDR/4; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: DR %v != mean of parts %v", aggName, ev.DR, sumDR/4)
		}
		if want := agg.Combine(ev.IL, ev.DR); ev.Score != want {
			t.Errorf("%s: Score %v != Combine %v", aggName, ev.Score, want)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	d, attrs := testSetup(t)
	masked := maskWith(t, d, attrs, "rankswap:p=10", 11)
	seq, _ := NewEvaluator(d, attrs, Config{})
	par, _ := NewEvaluator(d, attrs, Config{Parallel: true})
	a, err := seq.Evaluate(masked)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Evaluate(masked)
	if err != nil {
		t.Fatal(err)
	}
	if a.IL != b.IL || a.DR != b.DR || a.Score != b.Score {
		t.Fatalf("parallel (%v,%v,%v) != sequential (%v,%v,%v)", b.IL, b.DR, b.Score, a.IL, a.DR, a.Score)
	}
}

func TestEvaluateAllPreservesOrderAndMatches(t *testing.T) {
	d, attrs := testSetup(t)
	maskings := []*dataset.Dataset{
		d,
		maskWith(t, d, attrs, "pram:theta=0.5", 3),
		maskWith(t, d, attrs, "micro:k=5", 3),
		maskWith(t, d, attrs, "top:q=0.2", 3),
	}
	e, _ := NewEvaluator(d, attrs, Config{})
	seq, err := e.EvaluateAll(context.Background(), maskings, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.EvaluateAll(context.Background(), maskings, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range maskings {
		if seq[i].Score != par[i].Score || seq[i].IL != par[i].IL {
			t.Fatalf("index %d: parallel differs from sequential", i)
		}
	}
	if seq[0].IL != 0 {
		t.Error("order not preserved: identity should be first")
	}
}

func TestEvaluateAllPropagatesErrors(t *testing.T) {
	d, attrs := testSetup(t)
	bad := dataset.New(d.Schema(), 3)
	e, _ := NewEvaluator(d, attrs, Config{})
	if _, err := e.EvaluateAll(context.Background(), []*dataset.Dataset{d, bad}, 1); err == nil {
		t.Error("sequential: bad dataset accepted")
	}
	if _, err := e.EvaluateAll(context.Background(), []*dataset.Dataset{d, bad, d, d}, 3); err == nil {
		t.Error("parallel: bad dataset accepted")
	}
}

func TestWithAggregator(t *testing.T) {
	d, attrs := testSetup(t)
	masked := maskWith(t, d, attrs, "pram:theta=0.7", 13)
	eMax, _ := NewEvaluator(d, attrs, Config{})
	eMean := eMax.WithAggregator(Mean{})
	a, _ := eMax.Evaluate(masked)
	b, _ := eMean.Evaluate(masked)
	if a.IL != b.IL || a.DR != b.DR {
		t.Fatal("WithAggregator changed the measures")
	}
	if a.Score == b.Score && a.IL != a.DR {
		t.Fatal("WithAggregator did not change the aggregation")
	}
	if eMax.Aggregator().Name() != "max" || eMean.Aggregator().Name() != "mean" {
		t.Fatal("aggregator accessors wrong")
	}
}

func TestAccessors(t *testing.T) {
	d, attrs := testSetup(t)
	e, _ := NewEvaluator(d, attrs, Config{})
	if e.Orig() != d {
		t.Error("Orig mismatch")
	}
	got := e.Attrs()
	if len(got) != len(attrs) {
		t.Fatal("Attrs length mismatch")
	}
	got[0] = 99 // must not corrupt the evaluator
	again := e.Attrs()
	if again[0] == 99 {
		t.Error("Attrs leaked internal slice")
	}
}

func TestEvaluationPair(t *testing.T) {
	ev := Evaluation{IL: 12, DR: 34}
	p := ev.Pair()
	if p.IL != 12 || p.DR != 34 {
		t.Fatalf("Pair = %+v", p)
	}
}
