package score

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/risk"
)

// buildBatch derives a random generation from parents: every parent gets
// a group with a mix of offspring — ordinary narrow edits, the occasional
// empty change list (a cloned survivor) and the occasional wide edit (a
// crossover window past the rebuild break-even point). Returns the groups
// ready for EvaluateBatch.
func buildBatch(t *testing.T, eval *Evaluator, rng *rand.Rand, parents []*dataset.Dataset, attrs []int, offspringPer int) []BatchGroup {
	t.Helper()
	groups := make([]BatchGroup, len(parents))
	for g, p := range parents {
		pe, err := eval.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		groups[g] = BatchGroup{
			Parent: pe,
			State:  mustPrepare(t, eval, p),
		}
		for k := 0; k < offspringPer; k++ {
			child := p.Clone()
			var changes []dataset.CellChange
			switch {
			case k == 1:
				// cloned survivor: no edits
			case k == 2:
				// wide edit: past the incremental break-even point
				changes = applyRandomChanges(rng, child, attrs, eval.Orig().Rows()/2+1)
			default:
				changes = applyRandomChanges(rng, child, attrs, 1+rng.IntN(4))
			}
			groups[g].Offspring = append(groups[g].Offspring, BatchOffspring{
				Child:   child,
				Changes: changes,
			})
		}
	}
	return groups
}

// checkBatchAgainstDelta runs EvaluateBatch at the given worker width and
// requires every offspring evaluation to equal the per-offspring
// EvaluateDelta path bit for bit, and every group state to still be a
// valid ancestor afterwards (a further delta evaluation from it must
// match a from-scratch evaluation).
func checkBatchAgainstDelta(t *testing.T, eval *Evaluator, groups []BatchGroup, workers int, context string) {
	t.Helper()
	if err := eval.EvaluateBatch(groups, workers); err != nil {
		t.Fatalf("%s: EvaluateBatch: %v", context, err)
	}
	for g := range groups {
		grp := &groups[g]
		for k := range grp.Offspring {
			off := &grp.Offspring[k]
			want, _, err := eval.EvaluateDelta(grp.Parent, grp.State, off.Child, off.Changes)
			if err != nil {
				t.Fatalf("%s group %d offspring %d: EvaluateDelta: %v", context, g, k, err)
			}
			requireIdentical(t, context, off.Eval, want)
		}
	}
}

func TestEvaluateBatchMatchesEvaluateDelta(t *testing.T) {
	eval, orig := deltaTestEvaluator(t)
	names, _ := datagen.ProtectedAttrs("german")
	attrs, _ := orig.Schema().Indices(names...)
	for _, workers := range []int{1, 4} {
		rng := rand.New(rand.NewPCG(97, uint64(workers)))
		parents := make([]*dataset.Dataset, 5)
		for i := range parents {
			p := orig.Clone()
			applyRandomChanges(rng, p, attrs, 10+rng.IntN(20))
			parents[i] = p
		}
		groups := buildBatch(t, eval, rng, parents, attrs, 4)
		checkBatchAgainstDelta(t, eval, groups, workers, "default battery")

		// States stay valid ancestors after the batch: evaluate a fresh
		// child per group through the (rolled-back) state and compare
		// against a from-scratch evaluation.
		for g := range groups {
			child := parents[g].Clone()
			changes := applyRandomChanges(rng, child, attrs, 3)
			got, _, err := eval.EvaluateDelta(groups[g].Parent, groups[g].State, child, changes)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eval.Evaluate(child)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, "post-batch state reuse", got, want)
		}
	}
}

// TestEvaluateBatchSampledAndFallbackBatteries runs the equivalence over
// a stride-sampling battery (every linkage state stride-aware) and over a
// battery containing a measure with no incremental support at all (the
// per-offspring full-recompute routing inside a batch).
func TestEvaluateBatchSampledAndFallbackBatteries(t *testing.T) {
	orig := datagen.MustByName("flare", 90, 11)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := orig.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"sampled", Config{DR: []risk.Measure{
			&risk.IntervalDisclosure{MaxP: 10},
			&risk.DistanceLinkage{MaxRecords: 30},
			&risk.ProbabilisticLinkage{EMIters: 10, MaxRecords: 30},
			&risk.RankIntervalLinkage{P: 15, MaxRecords: 30},
		}}},
		{"non-incremental", Config{DR: []risk.Measure{
			&risk.IntervalDisclosure{MaxP: 10},
			&RankOnly{},
		}}},
	}
	for _, tc := range cfgs {
		eval, err := NewEvaluator(orig, attrs, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(5, 23))
		parents := make([]*dataset.Dataset, 3)
		for i := range parents {
			p := orig.Clone()
			applyRandomChanges(rng, p, attrs, 15)
			parents[i] = p
		}
		groups := buildBatch(t, eval, rng, parents, attrs, 3)
		checkBatchAgainstDelta(t, eval, groups, 2, tc.name)
	}
}

func TestBatchableCapability(t *testing.T) {
	eval, orig := deltaTestEvaluator(t)
	if !eval.Batchable() {
		t.Error("default battery must be batchable")
	}
	names, _ := datagen.ProtectedAttrs("german")
	attrs, _ := orig.Schema().Indices(names...)
	nb, err := NewEvaluator(orig, attrs, Config{DR: []risk.Measure{&RankOnly{}}})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Batchable() {
		t.Error("battery with a non-reversible measure must not report batchable")
	}
}

// TestEvaluateBatchNilState pins the nil-state contract: a stateless
// group is fine as long as every offspring is scored without the state
// (empty or wide change lists); a narrow edit then errors.
func TestEvaluateBatchNilState(t *testing.T) {
	eval, orig := deltaTestEvaluator(t)
	names, _ := datagen.ProtectedAttrs("german")
	attrs, _ := orig.Schema().Indices(names...)
	pe, err := eval.Evaluate(orig)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 9))
	wideChild := orig.Clone()
	wide := applyRandomChanges(rng, wideChild, attrs, orig.Rows()/2+1)
	groups := []BatchGroup{{Parent: pe, Offspring: []BatchOffspring{
		{Child: orig.Clone()},
		{Child: wideChild, Changes: wide},
	}}}
	if err := eval.EvaluateBatch(groups, 1); err != nil {
		t.Fatalf("stateless group with empty+wide offspring: %v", err)
	}
	requireIdentical(t, "empty offspring", groups[0].Offspring[0].Eval, pe)
	wantWide, err := eval.Evaluate(wideChild)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "wide offspring", groups[0].Offspring[1].Eval, wantWide)

	narrowChild := orig.Clone()
	narrow := applyRandomChanges(rng, narrowChild, attrs, 2)
	groups[0].Offspring = append(groups[0].Offspring, BatchOffspring{Child: narrowChild, Changes: narrow})
	if err := eval.EvaluateBatch(groups, 1); err == nil {
		t.Error("EvaluateBatch accepted a narrow-edit offspring with a nil group state")
	}
}

// TestAdvance pins the in-place winner commit: after Advance the state
// describes the child, so further delta evaluations from it match
// from-scratch evaluations; wide edits are refused.
func TestAdvance(t *testing.T) {
	eval, orig := deltaTestEvaluator(t)
	names, _ := datagen.ProtectedAttrs("german")
	attrs, _ := orig.Schema().Indices(names...)
	rng := rand.New(rand.NewPCG(41, 2))

	parent := orig.Clone()
	applyRandomChanges(rng, parent, attrs, 12)
	state := mustPrepare(t, eval, parent)

	for step := 0; step < 5; step++ {
		child := parent.Clone()
		changes := applyRandomChanges(rng, child, attrs, 1+rng.IntN(4))
		if err := eval.Advance(state, child, changes); err != nil {
			t.Fatalf("step %d: Advance: %v", step, err)
		}
		// state now describes child; evaluate a grandchild through it.
		grand := child.Clone()
		gchanges := applyRandomChanges(rng, grand, attrs, 2)
		ce, err := eval.Evaluate(child)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eval.EvaluateDelta(ce, state, grand, gchanges)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := eval.Evaluate(grand)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "advanced state", got, want)
		parent = child
	}

	wideChild := parent.Clone()
	wide := applyRandomChanges(rng, wideChild, attrs, orig.Rows()/2+1)
	if err := eval.Advance(state, wideChild, wide); err == nil {
		t.Error("Advance accepted a wide edit")
	}
	if err := eval.Advance(nil, parent, nil); err == nil {
		t.Error("Advance accepted a nil state")
	}
}

// FuzzEvaluateBatchGrouping fuzzes the change-list grouping: arbitrary
// group/offspring shapes drawn from the fuzz inputs must keep the batch
// path bit-identical to the per-offspring path at both worker widths.
func FuzzEvaluateBatchGrouping(f *testing.F) {
	f.Add(uint64(1), uint(3), uint(4))
	f.Add(uint64(99), uint(1), uint(1))
	f.Add(uint64(7), uint(6), uint(2))
	orig := datagen.MustByName("flare", 80, 3)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := orig.Schema().Indices(names...)
	if err != nil {
		f.Fatal(err)
	}
	eval, err := NewEvaluator(orig, attrs, Config{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed uint64, nGroups, nOff uint) {
		ng := int(nGroups%6) + 1
		no := int(nOff%5) + 1
		rng := rand.New(rand.NewPCG(seed, 13))
		groups := make([]BatchGroup, ng)
		for g := range groups {
			p := orig.Clone()
			applyRandomChanges(rng, p, attrs, 5+rng.IntN(10))
			pe, err := eval.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			groups[g] = BatchGroup{Parent: pe, State: mustPrepare(t, eval, p)}
			for k := 0; k < no; k++ {
				child := p.Clone()
				var changes []dataset.CellChange
				switch rng.IntN(5) {
				case 0:
					// empty — cloned survivor
				case 1:
					changes = applyRandomChanges(rng, child, attrs, orig.Rows()/2+1)
				default:
					changes = applyRandomChanges(rng, child, attrs, 1+rng.IntN(3))
				}
				groups[g].Offspring = append(groups[g].Offspring,
					BatchOffspring{Child: child, Changes: changes})
			}
		}
		for _, workers := range []int{1, 4} {
			if err := eval.EvaluateBatch(groups, workers); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for g := range groups {
				for k := range groups[g].Offspring {
					off := &groups[g].Offspring[k]
					want, _, err := eval.EvaluateDelta(groups[g].Parent, groups[g].State, off.Child, off.Changes)
					if err != nil {
						t.Fatal(err)
					}
					requireIdentical(t, "fuzz grouping", off.Eval, want)
				}
			}
		}
	})
}
