package score

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedCombine(t *testing.T) {
	w, err := NewWeighted(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Combine(10, 30); math.Abs(got-16) > 1e-12 {
		t.Fatalf("weighted = %v, want 16", got)
	}
	if w.Name() != "weighted(0.70)" {
		t.Fatalf("name = %q", w.Name())
	}
}

func TestWeightedHalfEqualsMean(t *testing.T) {
	w, _ := NewWeighted(0.5)
	f := func(il, dr uint8) bool {
		a := w.Combine(float64(il), float64(dr))
		b := Mean{}.Combine(float64(il), float64(dr))
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted(-0.1); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewWeighted(1.1); err == nil {
		t.Error("weight > 1 accepted")
	}
}

func TestEuclideanProperties(t *testing.T) {
	e := Euclidean{}
	if got := e.Combine(0, 0); got != 0 {
		t.Fatalf("ideal point = %v", got)
	}
	if got := e.Combine(100, 100); math.Abs(got-100) > 1e-9 {
		t.Fatalf("worst point = %v, want 100", got)
	}
	// For a fixed sum, balanced pairs score lower than unbalanced ones —
	// the property that distinguishes Euclidean from Mean.
	if e.Combine(20, 20) >= e.Combine(0, 40) {
		t.Fatal("euclidean does not penalize imbalance")
	}
	// But it stays between Mean and Max.
	f := func(ilRaw, drRaw uint8) bool {
		il, dr := float64(ilRaw%101), float64(drRaw%101)
		v := e.Combine(il, dr)
		return v >= Mean{}.Combine(il, dr)-1e-9 && v <= Max{}.Combine(il, dr)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedAggregatorByName(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"mean", "mean"},
		{"max", "max"},
		{"euclidean", "euclidean"},
		{"weighted:0.25", "weighted(0.25)"},
	}
	for _, c := range cases {
		agg, err := ExtendedAggregatorByName(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if agg.Name() != c.want {
			t.Errorf("%s -> %q, want %q", c.spec, agg.Name(), c.want)
		}
	}
	for _, bad := range []string{"", "chebyshev", "weighted:2", "weighted:x"} {
		if _, err := ExtendedAggregatorByName(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestAggregatorsInEvaluator(t *testing.T) {
	d, attrs := testSetup(t)
	for _, agg := range []Aggregator{Weighted{W: 0.3}, Euclidean{}} {
		e, err := NewEvaluator(d, attrs, Config{Aggregator: agg})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := e.Evaluate(d)
		if err != nil {
			t.Fatal(err)
		}
		if want := agg.Combine(ev.IL, ev.DR); ev.Score != want {
			t.Errorf("%s: score %v != %v", agg.Name(), ev.Score, want)
		}
	}
}
