package score

import (
	"fmt"
	"math"
)

// The paper's §4 names "some other ways to aggregate [IL and DR] in order
// to help the algorithm to optimize faster" as future work. This file
// provides the two standard families beyond Mean and Max; both are
// exercised by the ablation benchmarks.

// Weighted is the convex combination Score = W·IL + (1−W)·DR. W > 0.5
// favours utility (penalizes information loss harder); W < 0.5 favours
// privacy. W = 0.5 halves into the paper's Eq. 1.
type Weighted struct {
	// W is the information-loss weight in [0,1].
	W float64
}

// NewWeighted validates the weight.
func NewWeighted(w float64) (Weighted, error) {
	if w < 0 || w > 1 {
		return Weighted{}, fmt.Errorf("score: weight %v outside [0,1]", w)
	}
	return Weighted{W: w}, nil
}

// Name implements Aggregator.
func (w Weighted) Name() string { return fmt.Sprintf("weighted(%.2f)", w.W) }

// Combine implements Aggregator.
func (w Weighted) Combine(il, dr float64) float64 { return w.W*il + (1-w.W)*dr }

// Euclidean scores a protection by its distance from the ideal point
// (IL=0, DR=0), normalized so a (100,100) protection scores 100. Unlike
// Mean it penalizes unbalanced pairs (for a fixed mean, |IL−DR| increases
// the distance), but more smoothly than Max.
type Euclidean struct{}

// Name implements Aggregator.
func (Euclidean) Name() string { return "euclidean" }

// Combine implements Aggregator.
func (Euclidean) Combine(il, dr float64) float64 {
	return math.Sqrt((il*il + dr*dr) / 2)
}

// ExtendedAggregatorByName resolves all built-in aggregators: "mean",
// "max", "euclidean", and "weighted:<w>" (e.g. "weighted:0.7").
func ExtendedAggregatorByName(name string) (Aggregator, error) {
	if agg, err := AggregatorByName(name); err == nil {
		return agg, nil
	}
	if name == "euclidean" {
		return Euclidean{}, nil
	}
	var w float64
	if n, err := fmt.Sscanf(name, "weighted:%f", &w); err == nil && n == 1 {
		return NewWeighted(w)
	}
	return nil, fmt.Errorf("score: unknown aggregator %q (want mean|max|euclidean|weighted:<w>)", name)
}
