package risk

import (
	"math"
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/protection"
)

func TestSampleStride(t *testing.T) {
	cases := []struct {
		n, max, want int
	}{
		{1000, 0, 1},   // disabled
		{100, 200, 1},  // already small enough
		{100, 100, 1},  // exact fit
		{1000, 500, 2}, // halve
		{1000, 300, 4}, // ceil(1000/300) = 4
		{7, 3, 3},      // ceil(7/3) = 3
		{10, 1, 10},    // single record
	}
	for _, c := range cases {
		if got := sampleStride(c.n, c.max); got != c.want {
			t.Errorf("sampleStride(%d,%d) = %d, want %d", c.n, c.max, got, c.want)
		}
	}
}

func TestSampledCount(t *testing.T) {
	cases := []struct {
		n, stride, want int
	}{
		{10, 1, 10}, {10, 2, 5}, {10, 3, 4}, {7, 3, 3}, {1, 5, 1},
	}
	for _, c := range cases {
		if got := sampledCount(c.n, c.stride); got != c.want {
			t.Errorf("sampledCount(%d,%d) = %d, want %d", c.n, c.stride, got, c.want)
		}
	}
	// Consistency: sampledCount matches the sampled loop length.
	for n := 1; n < 50; n++ {
		for stride := 1; stride < 8; stride++ {
			count := 0
			for i := 0; i < n; i += stride {
				count++
			}
			if got := sampledCount(n, stride); got != count {
				t.Fatalf("sampledCount(%d,%d) = %d, loop says %d", n, stride, got, count)
			}
		}
	}
}

// sampledMeasures builds exact/sampled measure pairs for comparison.
func sampledMeasures(maxRecords int) [][2]Measure {
	return [][2]Measure{
		{&DistanceLinkage{}, &DistanceLinkage{MaxRecords: maxRecords}},
		{&ProbabilisticLinkage{}, &ProbabilisticLinkage{MaxRecords: maxRecords}},
		{&RankIntervalLinkage{}, &RankIntervalLinkage{MaxRecords: maxRecords}},
	}
}

func TestSampledRiskApproximatesExact(t *testing.T) {
	d := datagen.MustByName("german", 600, 77)
	names, _ := datagen.ProtectedAttrs("german")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 7))
	masked, err := protection.Must("pram:theta=0.7").Protect(d, attrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range sampledMeasures(150) {
		exact := pair[0].Risk(d, masked, attrs)
		approx := pair[1].Risk(d, masked, attrs)
		if math.Abs(exact-approx) > 8 {
			t.Errorf("%s: sampled %v too far from exact %v", pair[0].Name(), approx, exact)
		}
	}
}

func TestSampledRiskIsDeterministic(t *testing.T) {
	d := datagen.MustByName("flare", 300, 13)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, _ := d.Schema().Indices(names...)
	rng := rand.New(rand.NewPCG(9, 9))
	masked, _ := protection.Must("rankswap:p=10").Protect(d, attrs, rng)
	for _, pair := range sampledMeasures(100) {
		a := pair[1].Risk(d, masked, attrs)
		b := pair[1].Risk(d, masked, attrs)
		if a != b {
			t.Errorf("%s: sampling not deterministic (%v vs %v)", pair[1].Name(), a, b)
		}
	}
}

func TestSamplingDisabledMatchesExact(t *testing.T) {
	d := datagen.MustByName("flare", 150, 13)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, _ := d.Schema().Indices(names...)
	rng := rand.New(rand.NewPCG(11, 11))
	masked, _ := protection.Must("pram:theta=0.6").Protect(d, attrs, rng)
	// MaxRecords >= n must be bit-identical to the exact computation.
	for _, pair := range sampledMeasures(150) {
		exact := pair[0].Risk(d, masked, attrs)
		capped := pair[1].Risk(d, masked, attrs)
		if exact != capped {
			t.Errorf("%s: MaxRecords=n changed the result (%v vs %v)", pair[0].Name(), exact, capped)
		}
	}
}

func TestSampledRiskStaysInBounds(t *testing.T) {
	s := dataset.MustSchema(dataset.MustAttribute("x", []string{"a", "b", "c"}, true))
	d := dataset.New(s, 17)
	for r := 0; r < 17; r++ {
		d.Set(r, 0, r%3)
	}
	for _, pair := range sampledMeasures(5) {
		got := pair[1].Risk(d, d, []int{0})
		if got < 0 || got > 100 {
			t.Errorf("%s: out of bounds: %v", pair[1].Name(), got)
		}
	}
}
