package risk

import (
	"math"

	"evoprot/internal/dataset"
)

// ProbabilisticLinkage is Fellegi–Sunter probabilistic record linkage
// (PRL): agreement patterns between original and masked records are scored
// by the likelihood ratio of "pair is a true match" against "pair is
// random", with the per-attribute match probabilities m and non-match
// probabilities u estimated by expectation-maximization over all n² pairs
// under the usual conditional-independence assumption. Every original
// record links to the masked record(s) with the highest total log-ratio
// weight; the true counterpart among them earns fractional credit. The
// result is the percentage of re-identified records.
type ProbabilisticLinkage struct {
	// EMIters is the number of EM iterations; defaults to 30, which is
	// plenty for the ≤2^len(attrs) distinct agreement patterns.
	EMIters int
	// MaxRecords caps the number of original records tallied and linked
	// (deterministic stride sampling; see sampling.go). 0 uses every
	// record exactly.
	MaxRecords int
}

// Name implements Measure.
func (pl *ProbabilisticLinkage) Name() string { return "PRL" }

// Risk implements Measure.
func (pl *ProbabilisticLinkage) Risk(orig, masked *dataset.Dataset, attrs []int) float64 {
	iters := pl.EMIters
	if iters <= 0 {
		iters = 30
	}
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	if len(attrs) > 16 {
		// 2^a patterns; 16 attributes is far beyond any sane QI set.
		panic("risk: probabilistic linkage over more than 16 attributes")
	}
	oc, mc := columns(orig, attrs), columns(masked, attrs)
	numPat := 1 << len(attrs)
	stride := sampleStride(n, pl.MaxRecords)
	sampled := sampledCount(n, stride)

	// Tally agreement patterns over the (possibly sampled) pairs. Every
	// sampled original record is compared against the full masked file, so
	// exactly one true-match pair per sampled record is included.
	patCount := make([]float64, numPat)
	for i := 0; i < n; i += stride {
		for j := 0; j < n; j++ {
			patCount[pattern(i, j, oc, mc)]++
		}
	}
	totalPairs := float64(sampled) * float64(n)

	m, u, _ := emEstimate(patCount, len(attrs), totalPairs, float64(sampled), iters)

	// Per-pattern match weight: sum of per-attribute log likelihood ratios.
	weights := make([]float64, numPat)
	for pat := 0; pat < numPat; pat++ {
		w := 0.0
		for a := range attrs {
			if pat&(1<<a) != 0 {
				w += math.Log2(m[a] / u[a])
			} else {
				w += math.Log2((1 - m[a]) / (1 - u[a]))
			}
		}
		weights[pat] = w
	}

	credit := 0.0
	for i := 0; i < n; i += stride {
		best := math.Inf(-1)
		count := 0
		containsTrue := false
		for j := 0; j < n; j++ {
			w := weights[pattern(i, j, oc, mc)]
			switch {
			case w > best:
				best, count, containsTrue = w, 1, j == i
			case w == best:
				count++
				if j == i {
					containsTrue = true
				}
			}
		}
		if containsTrue {
			credit += 1 / float64(count)
		}
	}
	return 100 * credit / float64(sampled)
}

// pattern returns the agreement bitmask between original record i and
// masked record j: bit a is set when they agree on attribute a.
func pattern(i, j int, oc, mc [][]int) int {
	pat := 0
	for a := range oc {
		if oc[a][i] == mc[a][j] {
			pat |= 1 << a
		}
	}
	return pat
}

// emEstimate runs EM for the two-class mixture over agreement patterns,
// returning per-attribute match probabilities m, non-match probabilities
// u, and the match-class prevalence p. trueMatches seeds the prevalence at
// its known value (n matches among n² pairs).
func emEstimate(patCount []float64, numAttrs int, totalPairs, trueMatches float64, iters int) (m, u []float64, p float64) {
	m = make([]float64, numAttrs)
	u = make([]float64, numAttrs)
	p = emEstimateInto(m, u, make([]float64, numAttrs), make([]float64, numAttrs), patCount, totalPairs, trueMatches, iters)
	return m, u, p
}

// emEstimateInto is emEstimate into caller-provided buffers — the
// allocation-free variant the incremental PRL state calls on every Apply.
// m and u receive the estimates; mNum and uNum are per-iteration
// accumulators. All four must hold numAttrs elements. The arithmetic is
// identical to emEstimate's, so results are bit-for-bit the same.
func emEstimateInto(m, u, mNum, uNum, patCount []float64, totalPairs, trueMatches float64, iters int) (p float64) {
	numAttrs := len(m)
	p = trueMatches / totalPairs
	// Initialize m optimistically and u at the overall agreement rate.
	for a := 0; a < numAttrs; a++ {
		m[a] = 0.9
		agree := 0.0
		for pat, c := range patCount {
			if pat&(1<<a) != 0 {
				agree += c
			}
		}
		u[a] = clampProb(agree / totalPairs)
	}
	for it := 0; it < iters; it++ {
		sumG, sumNG := 0.0, 0.0
		for a := 0; a < numAttrs; a++ {
			mNum[a], uNum[a] = 0, 0
		}
		for pat, c := range patCount {
			if c == 0 {
				continue
			}
			pm, pu := 1.0, 1.0
			for a := 0; a < numAttrs; a++ {
				if pat&(1<<a) != 0 {
					pm *= m[a]
					pu *= u[a]
				} else {
					pm *= 1 - m[a]
					pu *= 1 - u[a]
				}
			}
			denom := p*pm + (1-p)*pu
			if denom <= 0 {
				continue
			}
			g := p * pm / denom
			sumG += g * c
			sumNG += (1 - g) * c
			for a := 0; a < numAttrs; a++ {
				if pat&(1<<a) != 0 {
					mNum[a] += g * c
					uNum[a] += (1 - g) * c
				}
			}
		}
		if sumG <= 0 || sumNG <= 0 {
			break
		}
		p = clampProb(sumG / totalPairs)
		for a := 0; a < numAttrs; a++ {
			m[a] = clampProb(mNum[a] / sumG)
			u[a] = clampProb(uNum[a] / sumNG)
		}
	}
	return p
}

// clampProb keeps probabilities strictly inside (0,1) so log-ratios stay
// finite.
func clampProb(x float64) float64 {
	const eps = 1e-6
	if x < eps {
		return eps
	}
	if x > 1-eps {
		return 1 - eps
	}
	return x
}
