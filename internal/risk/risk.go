// Package risk implements the four disclosure-risk measures the paper
// aggregates into its fitness function (§2.3.2):
//
//   - ID, interval disclosure (Domingo-Ferrer & Torra 2001): how often the
//     original value lies within a narrow rank interval of the published
//     value.
//   - DBRL, distance-based record linkage (Domingo-Ferrer & Torra 2002):
//     fraction of records an intruder re-identifies by nearest-neighbour
//     matching.
//   - PRL, probabilistic record linkage (Fellegi–Sunter, EM-estimated, as
//     in Domingo-Ferrer & Torra 2002): re-identification by likelihood-
//     ratio matching on agreement patterns.
//   - RSRL, rank-swapping-interval record linkage (Nin, Herranz & Torra
//     2008): re-identification exploiting bounded rank displacement.
//
// Every measure returns a value in [0,100]; 100 means every record is
// fully re-identifiable. The paper's DR term is the plain average of the
// four (Average). All measures follow the identity-disclosure scenario:
// the intruder holds the original quasi-identifiers and links them against
// the published masked file.
package risk

import (
	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// Measure is a single disclosure-risk measure over the protected
// attributes. Implementations must be pure functions of their arguments.
type Measure interface {
	// Name identifies the measure in reports, e.g. "DBRL".
	Name() string
	// Risk returns the disclosure risk in [0,100] of publishing masked
	// given the original file, over the given attribute indices.
	Risk(orig, masked *dataset.Dataset, attrs []int) float64
}

// Default returns the paper's disclosure-risk battery: interval disclosure
// with 1%..10% windows, distance-based record linkage, probabilistic
// record linkage with 30 EM iterations, and rank-interval linkage with a
// 15% window.
func Default() []Measure {
	return []Measure{
		&IntervalDisclosure{MaxP: 10},
		&DistanceLinkage{},
		&ProbabilisticLinkage{EMIters: 30},
		&RankIntervalLinkage{P: 15},
	}
}

// Average computes the mean risk over the given measures — the DR term of
// the paper's fitness (§2.3.2). It panics on an empty measure list.
func Average(measures []Measure, orig, masked *dataset.Dataset, attrs []int) float64 {
	if len(measures) == 0 {
		panic("risk: Average over no measures")
	}
	sum := 0.0
	for _, m := range measures {
		sum += m.Risk(orig, masked, attrs)
	}
	return sum / float64(len(measures))
}

// IntervalDisclosure measures rank-interval disclosure: for every cell,
// and for every window half-width of p% of the file (p = 1..MaxP), the
// original value counts as disclosed when its data rank lies within the
// window centred on the published value's rank. The result is the
// disclosed fraction averaged over cells and window sizes, in [0,100].
// Ranks are the mid-ranks of the original file's distribution, which turn
// an ordered categorical column into the quasi-numeric scale the classic
// measure is defined on.
type IntervalDisclosure struct {
	// MaxP is the largest window half-width in percent; the measure
	// averages windows 1..MaxP. Defaults to 10.
	MaxP int
}

// Name implements Measure.
func (id *IntervalDisclosure) Name() string { return "ID" }

// maxPOrDefault resolves the effective largest window half-width.
func (id *IntervalDisclosure) maxPOrDefault() int {
	if id.MaxP <= 0 {
		return 10
	}
	return id.MaxP
}

// Risk implements Measure.
func (id *IntervalDisclosure) Risk(orig, masked *dataset.Dataset, attrs []int) float64 {
	maxP := id.maxPOrDefault()
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	disclosed := 0
	for _, c := range attrs {
		contrib := idContrib(orig, c, maxP)
		oc := orig.Column(c)
		mc := masked.Column(c)
		for r := 0; r < n; r++ {
			disclosed += contrib[oc[r]][mc[r]]
		}
	}
	return idValue(disclosed, n, len(attrs), maxP)
}

// idContrib precomputes, for one attribute, how many of the window sizes
// 1..maxP disclose a cell whose original category is u and published
// category is v. The table depends only on the original file's mid-ranks,
// so the full and incremental paths share it and stay bit-identical.
func idContrib(orig *dataset.Dataset, col, maxP int) [][]int {
	card := orig.Schema().Attr(col).Cardinality()
	n := orig.Rows()
	ranks := stats.MidRanks(stats.Freq(orig.Column(col), card))
	out := make([][]int, card)
	for u := 0; u < card; u++ {
		out[u] = make([]int, card)
		for v := 0; v < card; v++ {
			gap := ranks[u] - ranks[v]
			if gap < 0 {
				gap = -gap
			}
			for p := 1; p <= maxP; p++ {
				if gap <= float64(p)*float64(n)/100 {
					// Larger windows contain smaller ones: all remaining
					// window sizes disclose too.
					out[u][v] = maxP - p + 1
					break
				}
			}
		}
	}
	return out
}

// idValue folds the exact disclosed-window count into the measure value;
// shared by the full and incremental paths.
func idValue(disclosed, n, numAttrs, maxP int) float64 {
	return 100 * float64(disclosed) / float64(n*numAttrs*maxP)
}
