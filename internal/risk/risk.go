// Package risk implements the four disclosure-risk measures the paper
// aggregates into its fitness function (§2.3.2):
//
//   - ID, interval disclosure (Domingo-Ferrer & Torra 2001): how often the
//     original value lies within a narrow rank interval of the published
//     value.
//   - DBRL, distance-based record linkage (Domingo-Ferrer & Torra 2002):
//     fraction of records an intruder re-identifies by nearest-neighbour
//     matching.
//   - PRL, probabilistic record linkage (Fellegi–Sunter, EM-estimated, as
//     in Domingo-Ferrer & Torra 2002): re-identification by likelihood-
//     ratio matching on agreement patterns.
//   - RSRL, rank-swapping-interval record linkage (Nin, Herranz & Torra
//     2008): re-identification exploiting bounded rank displacement.
//
// Every measure returns a value in [0,100]; 100 means every record is
// fully re-identifiable. The paper's DR term is the plain average of the
// four (Average). All measures follow the identity-disclosure scenario:
// the intruder holds the original quasi-identifiers and links them against
// the published masked file.
package risk

import (
	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// Measure is a single disclosure-risk measure over the protected
// attributes. Implementations must be pure functions of their arguments.
type Measure interface {
	// Name identifies the measure in reports, e.g. "DBRL".
	Name() string
	// Risk returns the disclosure risk in [0,100] of publishing masked
	// given the original file, over the given attribute indices.
	Risk(orig, masked *dataset.Dataset, attrs []int) float64
}

// Default returns the paper's disclosure-risk battery: interval disclosure
// with 1%..10% windows, distance-based record linkage, probabilistic
// record linkage with 30 EM iterations, and rank-interval linkage with a
// 15% window.
func Default() []Measure {
	return []Measure{
		&IntervalDisclosure{MaxP: 10},
		&DistanceLinkage{},
		&ProbabilisticLinkage{EMIters: 30},
		&RankIntervalLinkage{P: 15},
	}
}

// Average computes the mean risk over the given measures — the DR term of
// the paper's fitness (§2.3.2). It panics on an empty measure list.
func Average(measures []Measure, orig, masked *dataset.Dataset, attrs []int) float64 {
	if len(measures) == 0 {
		panic("risk: Average over no measures")
	}
	sum := 0.0
	for _, m := range measures {
		sum += m.Risk(orig, masked, attrs)
	}
	return sum / float64(len(measures))
}

// IntervalDisclosure measures rank-interval disclosure: for every cell,
// and for every window half-width of p% of the file (p = 1..MaxP), the
// original value counts as disclosed when its data rank lies within the
// window centred on the published value's rank. The result is the
// disclosed fraction averaged over cells and window sizes, in [0,100].
// Ranks are the mid-ranks of the original file's distribution, which turn
// an ordered categorical column into the quasi-numeric scale the classic
// measure is defined on.
type IntervalDisclosure struct {
	// MaxP is the largest window half-width in percent; the measure
	// averages windows 1..MaxP. Defaults to 10.
	MaxP int
}

// Name implements Measure.
func (id *IntervalDisclosure) Name() string { return "ID" }

// Risk implements Measure.
func (id *IntervalDisclosure) Risk(orig, masked *dataset.Dataset, attrs []int) float64 {
	maxP := id.MaxP
	if maxP <= 0 {
		maxP = 10
	}
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	disclosed := 0
	for _, c := range attrs {
		card := orig.Schema().Attr(c).Cardinality()
		oc := orig.Column(c)
		mc := masked.Column(c)
		ranks := stats.MidRanks(stats.Freq(oc, card))
		for r := 0; r < n; r++ {
			gap := ranks[oc[r]] - ranks[mc[r]]
			if gap < 0 {
				gap = -gap
			}
			for p := 1; p <= maxP; p++ {
				if gap <= float64(p)*float64(n)/100 {
					// Larger windows contain smaller ones: all remaining
					// window sizes disclose too.
					disclosed += maxP - p + 1
					break
				}
			}
		}
	}
	return 100 * float64(disclosed) / float64(n*len(attrs)*maxP)
}
