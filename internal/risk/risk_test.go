package risk

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/protection"
)

func testData(t *testing.T) (*dataset.Dataset, []int) {
	t.Helper()
	d := datagen.MustByName("german", 250, 41)
	names, _ := datagen.ProtectedAttrs("german")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	return d, attrs
}

// uniqueData builds a dataset where every record is unique on its single
// protected attribute, so linkage outcomes are exact.
func uniqueData(t *testing.T, n int) (*dataset.Dataset, []int) {
	t.Helper()
	cats := make([]string, n)
	for i := range cats {
		cats[i] = fmt.Sprintf("c%03d", i)
	}
	s := dataset.MustSchema(dataset.MustAttribute("id", cats, true))
	d := dataset.New(s, n)
	for r := 0; r < n; r++ {
		d.Set(r, 0, r)
	}
	return d, []int{0}
}

func scramble(d *dataset.Dataset, attrs []int, seed uint64) *dataset.Dataset {
	rng := rand.New(rand.NewPCG(seed, 1))
	out := d.Clone()
	for _, c := range attrs {
		card := d.Schema().Attr(c).Cardinality()
		for r := 0; r < d.Rows(); r++ {
			out.Set(r, c, rng.IntN(card))
		}
	}
	return out
}

func TestIdentityOnUniqueRecordsIsFullyDisclosive(t *testing.T) {
	d, attrs := uniqueData(t, 60)
	var dl DistanceLinkage
	if got := dl.Risk(d, d, attrs); got != 100 {
		t.Errorf("DBRL(identity, unique) = %v, want 100", got)
	}
	pl := ProbabilisticLinkage{}
	if got := pl.Risk(d, d, attrs); got != 100 {
		t.Errorf("PRL(identity, unique) = %v, want 100", got)
	}
	id := IntervalDisclosure{}
	if got := id.Risk(d, d, attrs); got != 100 {
		t.Errorf("ID(identity, unique) = %v, want 100", got)
	}
}

func TestIdentityOnRealDataIsHighRisk(t *testing.T) {
	// With categorical quasi-identifiers many records share a QI
	// combination, so even publishing the file unchanged cannot link every
	// record uniquely — tie credit caps linkage risk below 100. The
	// identity file must still be the riskiest release: interval
	// disclosure is total, and linkage risks sit well above the random
	// baseline (100/n = 0.4 here).
	d, attrs := testData(t)
	floor := map[string]float64{"ID": 100, "DBRL": 30, "PRL": 30, "RSRL": 10}
	for _, m := range Default() {
		got := m.Risk(d, d, attrs)
		if got < floor[m.Name()] {
			t.Errorf("%s(identity) = %v, want >= %v", m.Name(), got, floor[m.Name()])
		}
		if got > 100 {
			t.Errorf("%s(identity) = %v, out of range", m.Name(), got)
		}
	}
}

func TestScrambleReducesLinkageRisk(t *testing.T) {
	d, attrs := testData(t)
	masked := scramble(d, attrs, 9)
	for _, m := range Default() {
		identity := m.Risk(d, d, attrs)
		scrambled := m.Risk(d, masked, attrs)
		if scrambled >= identity {
			t.Errorf("%s: scramble risk %v >= identity risk %v", m.Name(), scrambled, identity)
		}
	}
}

func TestAllMeasuresWithinBounds(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(3, 3))
	maskings := []*dataset.Dataset{d, scramble(d, attrs, 11)}
	for _, spec := range []string{"micro:k=4", "top:q=0.25", "bottom:q=0.25", "recode:depth=2", "rankswap:p=8", "pram:theta=0.5"} {
		masked, err := protection.Must(spec).Protect(d, attrs, rng)
		if err != nil {
			t.Fatal(err)
		}
		maskings = append(maskings, masked)
	}
	for _, masked := range maskings {
		for _, m := range Default() {
			got := m.Risk(d, masked, attrs)
			if got < 0 || got > 100 {
				t.Errorf("%s out of [0,100]: %v", m.Name(), got)
			}
		}
	}
}

func TestIntervalDisclosureHandComputed(t *testing.T) {
	// 10 records, single ordered attribute, one record displaced far.
	cats := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	s := dataset.MustSchema(dataset.MustAttribute("x", cats, true))
	orig := dataset.New(s, 10)
	for r := 0; r < 10; r++ {
		orig.Set(r, 0, r)
	}
	masked := orig.Clone()
	masked.Set(0, 0, 9) // rank gap 9 >> any window (max 10% of 10 = 1)
	id := IntervalDisclosure{MaxP: 10}
	got := id.Risk(orig, masked, []int{0})
	// 9 records fully disclosed at every window; 1 never: 90%.
	if got != 90 {
		t.Fatalf("ID = %v, want 90", got)
	}
}

func TestIntervalDisclosurePartialWindows(t *testing.T) {
	// 100 records so window p% = p records; displacement of 5 ranks is
	// disclosed for p in 5..10 only -> 6/10 of windows.
	cats := make([]string, 100)
	for i := range cats {
		cats[i] = fmt.Sprintf("c%03d", i)
	}
	s := dataset.MustSchema(dataset.MustAttribute("x", cats, true))
	orig := dataset.New(s, 100)
	for r := 0; r < 100; r++ {
		orig.Set(r, 0, r)
	}
	masked := orig.Clone()
	masked.Set(0, 0, 5) // displaced exactly 5 ranks
	id := IntervalDisclosure{MaxP: 10}
	got := id.Risk(orig, masked, []int{0})
	want := (99.0*10 + 6) / (100 * 10) * 100
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ID = %v, want %v", got, want)
	}
}

func TestDistanceLinkageTieCredit(t *testing.T) {
	// All records identical: every masked record ties at distance 0, so
	// each original earns credit 1/n -> risk = 100/n.
	s := dataset.MustSchema(dataset.MustAttribute("x", []string{"a", "b"}, true))
	d := dataset.New(s, 20) // all zeros
	var dl DistanceLinkage
	got := dl.Risk(d, d, []int{0})
	want := 100.0 / 20
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("DBRL = %v, want %v", got, want)
	}
}

func TestDistanceLinkageMonotoneInPerturbation(t *testing.T) {
	// Lighter maskings must be easier to link than heavier ones.
	d, attrs := testData(t)
	var dl DistanceLinkage
	rng := rand.New(rand.NewPCG(7, 7))
	light, err := protection.Must("pram:theta=0.9").Protect(d, attrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewPCG(7, 7))
	heavy, err := protection.Must("pram:theta=0.1").Protect(d, attrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	lr, hr := dl.Risk(d, light, attrs), dl.Risk(d, heavy, attrs)
	if lr <= hr {
		t.Fatalf("DBRL light=%v <= heavy=%v", lr, hr)
	}
}

func TestPRLEMSeparatesMatchProbabilities(t *testing.T) {
	// On identity-masked unique data, EM must learn m >> u.
	n := 50
	patCount := make([]float64, 2)
	patCount[1] = float64(n)                   // diagonal pairs agree
	patCount[0] = float64(n)*float64(n) - 50.0 // off-diagonal disagree
	m, u, p := emEstimate(patCount, 1, float64(n)*float64(n), float64(n), 30)
	if m[0] <= u[0] {
		t.Fatalf("EM failed to separate: m=%v u=%v", m[0], u[0])
	}
	if p <= 0 || p >= 1 {
		t.Fatalf("prevalence out of range: %v", p)
	}
}

func TestPRLDetectsPermutedFileRisk(t *testing.T) {
	// Masking = identity on unique data gives 100; a full scramble must
	// give much less.
	d, attrs := uniqueData(t, 60)
	pl := ProbabilisticLinkage{}
	masked := scramble(d, attrs, 17)
	got := pl.Risk(d, masked, attrs)
	if got > 50 {
		t.Fatalf("PRL(scramble) = %v, want <= 50", got)
	}
}

func TestRSRLWindowExtremes(t *testing.T) {
	d, attrs := uniqueData(t, 50)
	// P=100: every record is a candidate for every other -> credit 1/n.
	wide := RankIntervalLinkage{P: 100}
	got := wide.Risk(d, d, attrs)
	want := 100.0 / 50
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("RSRL(P=100) = %v, want %v", got, want)
	}
	// Tiny window on identity masking: only the exact rank matches -> 100.
	narrow := RankIntervalLinkage{P: 0.5}
	if got := narrow.Risk(d, d, attrs); got != 100 {
		t.Fatalf("RSRL(P=0.5, identity) = %v, want 100", got)
	}
}

func TestRSRLCatchesRankSwappingWithinWindow(t *testing.T) {
	// Rank swapping with p=5 keeps displacements inside a 15% window, so
	// the true record is almost always among the candidates; heavy PRAM
	// escapes the window more often.
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(7, 7))
	swapped, err := protection.Must("rankswap:p=5").Protect(d, attrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	rl := RankIntervalLinkage{P: 15}
	rsRisk := rl.Risk(d, swapped, attrs)
	if rsRisk <= 0 {
		t.Fatalf("RSRL(rankswap) = %v, want > 0", rsRisk)
	}
}

func TestAverageIsMean(t *testing.T) {
	d, attrs := testData(t)
	masked := scramble(d, attrs, 23)
	ms := Default()
	want := 0.0
	for _, m := range ms {
		want += m.Risk(d, masked, attrs)
	}
	want /= float64(len(ms))
	if got := Average(ms, d, masked, attrs); got != want {
		t.Fatalf("Average = %v, want %v", got, want)
	}
}

func TestAveragePanicsOnEmpty(t *testing.T) {
	d, attrs := testData(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Average(nil, d, d, attrs)
}

func TestEmptyAttrsAndRows(t *testing.T) {
	d, _ := testData(t)
	empty := dataset.New(d.Schema(), 0)
	for _, m := range Default() {
		if got := m.Risk(d, d, nil); got != 0 {
			t.Errorf("%s with no attrs = %v", m.Name(), got)
		}
		if got := m.Risk(empty, empty, []int{0}); got != 0 {
			t.Errorf("%s with no rows = %v", m.Name(), got)
		}
	}
}

func TestMeasureNames(t *testing.T) {
	want := map[string]bool{"ID": true, "DBRL": true, "PRL": true, "RSRL": true}
	for _, m := range Default() {
		if !want[m.Name()] {
			t.Errorf("unexpected measure %q", m.Name())
		}
		delete(want, m.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing measures: %v", want)
	}
}

func TestMeasuresAreDeterministic(t *testing.T) {
	d, attrs := testData(t)
	masked := scramble(d, attrs, 29)
	for _, m := range Default() {
		a := m.Risk(d, masked, attrs)
		b := m.Risk(d, masked, attrs)
		if a != b {
			t.Errorf("%s is not deterministic: %v vs %v", m.Name(), a, b)
		}
	}
}
