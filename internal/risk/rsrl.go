package risk

import (
	"math"

	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// RankIntervalLinkage is the rank-swapping-specific re-identification
// attack of Nin, Herranz & Torra (2008), generalized to any masked file:
// the intruder assumes every published value lies within a bounded rank
// window (P percent of the file) of the original value — exactly the
// guarantee rank swapping gives — so for each original record the
// candidate set is the intersection, over attributes, of the masked
// records whose value rank falls inside the window around the original
// value's rank. A record whose candidate set contains its true masked
// counterpart earns credit 1/|candidates|. The result is the percentage of
// re-identified records.
//
// Window ranks for original values use the original file's mid-ranks;
// candidate masked categories are matched through the masked file's
// mid-ranks, so the attack adapts to however the masking reshaped the
// distribution.
//
// RankIntervalLinkage also implements Incremental: Prepare builds a
// patchable window/bitset state so a cell change is applied in time
// proportional to the affected categories and profiles rather than the
// file size (see rsrl_incremental.go).
type RankIntervalLinkage struct {
	// P is the window half-width as a percentage of the number of
	// records; defaults to 15, a conservative upper bound on the rank
	// swapping grids used in practice.
	P float64
	// MaxRecords caps the number of original records attacked
	// (deterministic stride sampling; see sampling.go). 0 attacks every
	// record exactly.
	MaxRecords int
}

// Name implements Measure.
func (rl *RankIntervalLinkage) Name() string { return "RSRL" }

// pOrDefault resolves the effective window half-width percentage.
func (rl *RankIntervalLinkage) pOrDefault() float64 {
	if rl.P <= 0 {
		return 15
	}
	return rl.P
}

// Risk implements Measure.
//
// The candidate predicate factors per attribute into "masked category v is
// admissible for original category u", so instead of testing all n² record
// pairs the measure intersects per-attribute candidate bitsets: records
// sharing an original category profile share one intersection, and each
// intersection costs n/64 word operations per attribute. The candidate
// counts, and therefore the result, are bit-identical to the pairwise
// scan (incremental_test.go keeps the literal O(n²) implementation as a
// reference oracle, rsrlReference).
func (rl *RankIntervalLinkage) Risk(orig, masked *dataset.Dataset, attrs []int) float64 {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}

	oc, mc := columns(orig, attrs), columns(masked, attrs)
	lo, hi := rsrlWindows(orig, oc, mc, attrs, rl.pOrDefault())

	// cand[a][u] is the set of masked records admissible for original
	// category u of attribute a, assembled from per-category record sets.
	cards := make([]int, len(attrs))
	cand := make([][]*stats.Bitset, len(attrs))
	for a, c := range attrs {
		cards[a] = orig.Schema().Attr(c).Cardinality()
		cand[a] = rsrlUnions(rsrlByCat(mc[a], cards[a], n), lo[a], hi[a], n)
	}

	// Records with the same original profile share their candidate set;
	// intersect once per distinct profile. The mixed-radix profile key
	// only fits a uint64 while the cardinality product does; beyond that
	// (absurdly wide QI sets) the cache is skipped rather than risking
	// silent key collisions — results are identical, just uncached.
	type profile struct {
		count int
		set   *stats.Bitset
	}
	_, cacheable := profileRadix(cards)
	cache := make(map[uint64]*profile)
	stride := sampleStride(n, rl.MaxRecords)
	credit := 0.0
	for i := 0; i < n; i += stride {
		var pr *profile
		if cacheable {
			var key uint64
			for a := range attrs {
				key = key*uint64(cards[a]) + uint64(oc[a][i])
			}
			pr = cache[key]
			if pr == nil {
				set := cand[0][oc[0][i]].Clone()
				for a := 1; a < len(attrs); a++ {
					set.AndWith(cand[a][oc[a][i]])
				}
				pr = &profile{count: set.Count(), set: set}
				cache[key] = pr
			}
		} else {
			set := cand[0][oc[0][i]].Clone()
			for a := 1; a < len(attrs); a++ {
				set.AndWith(cand[a][oc[a][i]])
			}
			pr = &profile{count: set.Count(), set: set}
		}
		if pr.set.Test(i) {
			credit += 1 / float64(pr.count)
		}
	}
	return 100 * credit / float64(sampledCount(n, stride))
}

// profileRadix returns the mixed-radix size of the joint category space of
// the given cardinalities and whether it fits a uint64 — the condition for
// the profile cache key. A zero cardinality (an attribute with an empty
// domain) disables the cache outright instead of dividing by zero in an
// overflow probe.
func profileRadix(cards []int) (uint64, bool) {
	radix := uint64(1)
	for _, card := range cards {
		c := uint64(card)
		if c == 0 || radix > math.MaxUint64/c {
			return 0, false
		}
		radix *= c
	}
	return radix, true
}

// rsrlWindows precomputes, per attribute, the contiguous masked-category
// range admissible for every original category: categories are scanned in
// domain order, and mid-ranks are monotone in domain order, so the
// admissible set is an interval [lo[u], hi[u]] (empty when lo > hi).
// Window ranks for original values use the original file's mid-ranks;
// candidate masked categories are matched through the masked file's
// mid-ranks.
func rsrlWindows(orig *dataset.Dataset, oc, mc [][]int, attrs []int, p float64) (lo, hi [][]int) {
	n := orig.Rows()
	window := p * float64(n) / 100
	lo = make([][]int, len(attrs))
	hi = make([][]int, len(attrs))
	for a, c := range attrs {
		card := orig.Schema().Attr(c).Cardinality()
		oRanks := stats.MidRanks(stats.Freq(oc[a], card))
		mRanks := stats.MidRanks(stats.Freq(mc[a], card))
		lo[a] = make([]int, card)
		hi[a] = make([]int, card)
		rsrlSweep(oRanks, mRanks, window, lo[a], hi[a])
	}
	return lo, hi
}

// rsrlSweep fills lo/hi with the admissible masked-category interval for
// every original category in a single two-pointer pass: both rank vectors
// are monotone non-decreasing in domain order (see stats.MidRanksInto), so
// the set {v : |oRanks[u]−mRanks[v]| ≤ window} is contiguous and both of
// its endpoints only move rightward as u grows. Empty windows are recorded
// as (len, -1). The boundary comparisons are the same float expressions a
// full scan of all (u, v) pairs would evaluate — mid-ranks are exact
// multiples of one half — so the sweep selects bit-identical intervals in
// O(card) instead of O(card²).
func rsrlSweep(oRanks, mRanks []float64, window float64, lo, hi []int) {
	card := len(oRanks)
	l, h := 0, -1
	for u := 0; u < card; u++ {
		for l < card && oRanks[u]-mRanks[l] > window {
			l++
		}
		if h < l-1 {
			h = l - 1
		}
		for h+1 < card && mRanks[h+1]-oRanks[u] <= window {
			h++
		}
		if l <= h {
			lo[u], hi[u] = l, h
		} else {
			lo[u], hi[u] = card, -1
		}
	}
}

// rsrlByCat builds the per-category record sets of one masked column:
// byCat[v] holds the masked records whose value is v. The sets partition
// the records — every record appears in exactly one — so interval unions
// over them are disjoint unions, which is what lets the incremental state
// subtract a category from a union exactly.
func rsrlByCat(mcA []int, card, n int) []*stats.Bitset {
	byCat := make([]*stats.Bitset, card)
	for v := range byCat {
		byCat[v] = stats.NewBitset(n)
	}
	for j, v := range mcA {
		byCat[v].Set(j)
	}
	return byCat
}

// rsrlUnions assembles the per-original-category candidate sets
// cand[u] = ∪ byCat[v] over v in [lo[u], hi[u]].
func rsrlUnions(byCat []*stats.Bitset, lo, hi []int, n int) []*stats.Bitset {
	cand := make([]*stats.Bitset, len(lo))
	for u := range cand {
		acc := stats.NewBitset(n)
		for v := lo[u]; v <= hi[u]; v++ {
			acc.OrWith(byCat[v])
		}
		cand[u] = acc
	}
	return cand
}
