package risk

import (
	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// RankIntervalLinkage is the rank-swapping-specific re-identification
// attack of Nin, Herranz & Torra (2008), generalized to any masked file:
// the intruder assumes every published value lies within a bounded rank
// window (P percent of the file) of the original value — exactly the
// guarantee rank swapping gives — so for each original record the
// candidate set is the intersection, over attributes, of the masked
// records whose value rank falls inside the window around the original
// value's rank. A record whose candidate set contains its true masked
// counterpart earns credit 1/|candidates|. The result is the percentage of
// re-identified records.
//
// Window ranks for original values use the original file's mid-ranks;
// candidate masked categories are matched through the masked file's
// mid-ranks, so the attack adapts to however the masking reshaped the
// distribution.
type RankIntervalLinkage struct {
	// P is the window half-width as a percentage of the number of
	// records; defaults to 15, a conservative upper bound on the rank
	// swapping grids used in practice.
	P float64
	// MaxRecords caps the number of original records attacked
	// (deterministic stride sampling; see sampling.go). 0 attacks every
	// record exactly.
	MaxRecords int
}

// Name implements Measure.
func (rl *RankIntervalLinkage) Name() string { return "RSRL" }

// Risk implements Measure.
func (rl *RankIntervalLinkage) Risk(orig, masked *dataset.Dataset, attrs []int) float64 {
	p := rl.P
	if p <= 0 {
		p = 15
	}
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	window := p * float64(n) / 100

	oc, mc := columns(orig, attrs), columns(masked, attrs)

	// For each attribute, precompute the contiguous masked-category range
	// admissible for every original category: categories are scanned in
	// domain order, and mid-ranks are monotone in domain order, so the
	// admissible set is an interval [lo[u], hi[u]].
	lo := make([][]int, len(attrs))
	hi := make([][]int, len(attrs))
	for a, c := range attrs {
		card := orig.Schema().Attr(c).Cardinality()
		oRanks := stats.MidRanks(stats.Freq(oc[a], card))
		mRanks := stats.MidRanks(stats.Freq(mc[a], card))
		lo[a] = make([]int, card)
		hi[a] = make([]int, card)
		for u := 0; u < card; u++ {
			l, h := card, -1
			for v := 0; v < card; v++ {
				gap := oRanks[u] - mRanks[v]
				if gap < 0 {
					gap = -gap
				}
				if gap <= window {
					if v < l {
						l = v
					}
					if v > h {
						h = v
					}
				}
			}
			lo[a][u], hi[a][u] = l, h
		}
	}

	stride := sampleStride(n, rl.MaxRecords)
	credit := 0.0
	for i := 0; i < n; i += stride {
		count := 0
		containsTrue := false
		for j := 0; j < n; j++ {
			inAll := true
			for a := range attrs {
				u := oc[a][i]
				v := mc[a][j]
				if v < lo[a][u] || v > hi[a][u] {
					inAll = false
					break
				}
			}
			if inAll {
				count++
				if j == i {
					containsTrue = true
				}
			}
		}
		if containsTrue {
			credit += 1 / float64(count)
		}
	}
	return 100 * credit / float64(sampledCount(n, stride))
}
