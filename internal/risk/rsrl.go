package risk

import (
	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// RankIntervalLinkage is the rank-swapping-specific re-identification
// attack of Nin, Herranz & Torra (2008), generalized to any masked file:
// the intruder assumes every published value lies within a bounded rank
// window (P percent of the file) of the original value — exactly the
// guarantee rank swapping gives — so for each original record the
// candidate set is the intersection, over attributes, of the masked
// records whose value rank falls inside the window around the original
// value's rank. A record whose candidate set contains its true masked
// counterpart earns credit 1/|candidates|. The result is the percentage of
// re-identified records.
//
// Window ranks for original values use the original file's mid-ranks;
// candidate masked categories are matched through the masked file's
// mid-ranks, so the attack adapts to however the masking reshaped the
// distribution.
type RankIntervalLinkage struct {
	// P is the window half-width as a percentage of the number of
	// records; defaults to 15, a conservative upper bound on the rank
	// swapping grids used in practice.
	P float64
	// MaxRecords caps the number of original records attacked
	// (deterministic stride sampling; see sampling.go). 0 attacks every
	// record exactly.
	MaxRecords int
}

// Name implements Measure.
func (rl *RankIntervalLinkage) Name() string { return "RSRL" }

// Risk implements Measure.
//
// The candidate predicate factors per attribute into "masked category v is
// admissible for original category u", so instead of testing all n² record
// pairs the measure intersects per-attribute candidate bitsets: records
// sharing an original category profile share one intersection, and each
// intersection costs n/64 word operations per attribute. The candidate
// counts, and therefore the result, are bit-identical to the pairwise
// scan (incremental_test.go keeps the literal O(n²) implementation as a
// reference oracle, rsrlReference).
func (rl *RankIntervalLinkage) Risk(orig, masked *dataset.Dataset, attrs []int) float64 {
	p := rl.P
	if p <= 0 {
		p = 15
	}
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}

	oc, mc := columns(orig, attrs), columns(masked, attrs)
	lo, hi := rsrlWindows(orig, oc, mc, attrs, p)

	// cand[a][u] is the set of masked records admissible for original
	// category u of attribute a, assembled from per-category record sets.
	cand := make([][]*stats.Bitset, len(attrs))
	for a, c := range attrs {
		card := orig.Schema().Attr(c).Cardinality()
		byCat := make([]*stats.Bitset, card)
		for v := 0; v < card; v++ {
			byCat[v] = stats.NewBitset(n)
		}
		for j := 0; j < n; j++ {
			byCat[mc[a][j]].Set(j)
		}
		cand[a] = make([]*stats.Bitset, card)
		for u := 0; u < card; u++ {
			acc := stats.NewBitset(n)
			for v := lo[a][u]; v <= hi[a][u]; v++ {
				acc.OrWith(byCat[v])
			}
			cand[a][u] = acc
		}
	}

	// Records with the same original profile share their candidate set;
	// intersect once per distinct profile. The mixed-radix profile key
	// only fits a uint64 while the cardinality product does; beyond that
	// (absurdly wide QI sets) the cache is skipped rather than risking
	// silent key collisions — results are identical, just uncached.
	type profile struct {
		count int
		set   *stats.Bitset
	}
	cacheable := true
	radix := uint64(1)
	for _, c := range attrs {
		card := uint64(orig.Schema().Attr(c).Cardinality())
		if radix > 0 && radix*card/card != radix { // overflow
			cacheable = false
			break
		}
		radix *= card
	}
	cache := make(map[uint64]*profile)
	stride := sampleStride(n, rl.MaxRecords)
	credit := 0.0
	for i := 0; i < n; i += stride {
		var pr *profile
		if cacheable {
			var key uint64
			for a, c := range attrs {
				key = key*uint64(orig.Schema().Attr(c).Cardinality()) + uint64(oc[a][i])
			}
			pr = cache[key]
			if pr == nil {
				set := cand[0][oc[0][i]].Clone()
				for a := 1; a < len(attrs); a++ {
					set.AndWith(cand[a][oc[a][i]])
				}
				pr = &profile{count: set.Count(), set: set}
				cache[key] = pr
			}
		} else {
			set := cand[0][oc[0][i]].Clone()
			for a := 1; a < len(attrs); a++ {
				set.AndWith(cand[a][oc[a][i]])
			}
			pr = &profile{count: set.Count(), set: set}
		}
		if pr.set.Test(i) {
			credit += 1 / float64(pr.count)
		}
	}
	return 100 * credit / float64(sampledCount(n, stride))
}

// rsrlWindows precomputes, per attribute, the contiguous masked-category
// range admissible for every original category: categories are scanned in
// domain order, and mid-ranks are monotone in domain order, so the
// admissible set is an interval [lo[u], hi[u]] (empty when lo > hi).
// Window ranks for original values use the original file's mid-ranks;
// candidate masked categories are matched through the masked file's
// mid-ranks.
func rsrlWindows(orig *dataset.Dataset, oc, mc [][]int, attrs []int, p float64) (lo, hi [][]int) {
	n := orig.Rows()
	window := p * float64(n) / 100
	lo = make([][]int, len(attrs))
	hi = make([][]int, len(attrs))
	for a, c := range attrs {
		card := orig.Schema().Attr(c).Cardinality()
		oRanks := stats.MidRanks(stats.Freq(oc[a], card))
		mRanks := stats.MidRanks(stats.Freq(mc[a], card))
		lo[a] = make([]int, card)
		hi[a] = make([]int, card)
		for u := 0; u < card; u++ {
			l, h := card, -1
			for v := 0; v < card; v++ {
				gap := oRanks[u] - mRanks[v]
				if gap < 0 {
					gap = -gap
				}
				if gap <= window {
					if v < l {
						l = v
					}
					if v > h {
						h = v
					}
				}
			}
			lo[a][u], hi[a][u] = l, h
		}
	}
	return lo, hi
}
