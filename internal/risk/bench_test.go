package risk

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/protection"
)

func benchPair(b *testing.B, rows int) (*dataset.Dataset, *dataset.Dataset, []int) {
	b.Helper()
	d := datagen.MustByName("flare", rows, 5)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	masked, err := protection.Must("pram:theta=0.7").Protect(d, attrs, rng)
	if err != nil {
		b.Fatal(err)
	}
	return d, masked, attrs
}

func benchMeasure(b *testing.B, m Measure, rows int) {
	b.Helper()
	orig, masked, attrs := benchPair(b, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Risk(orig, masked, attrs)
	}
}

func BenchmarkIntervalDisclosure(b *testing.B)   { benchMeasure(b, &IntervalDisclosure{}, 500) }
func BenchmarkDistanceLinkage(b *testing.B)      { benchMeasure(b, &DistanceLinkage{}, 500) }
func BenchmarkProbabilisticLinkage(b *testing.B) { benchMeasure(b, &ProbabilisticLinkage{}, 500) }
func BenchmarkRankIntervalLinkage(b *testing.B)  { benchMeasure(b, &RankIntervalLinkage{}, 500) }

// BenchmarkDistanceLinkageSampled shows the quadratic-cost mitigation the
// paper's §4 asks for: 4x outer sampling should cut cost ~4x.
func BenchmarkDistanceLinkageSampled(b *testing.B) {
	benchMeasure(b, &DistanceLinkage{MaxRecords: 125}, 500)
}

func BenchmarkFullBattery(b *testing.B) {
	orig, masked, attrs := benchPair(b, 500)
	ms := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Average(ms, orig, masked, attrs)
	}
}
