package risk

import (
	"math/rand/v2"
	"testing"
	"time"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/protection"
)

func benchPair(b *testing.B, rows int) (*dataset.Dataset, *dataset.Dataset, []int) {
	b.Helper()
	d := datagen.MustByName("flare", rows, 5)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	masked, err := protection.Must("pram:theta=0.7").Protect(d, attrs, rng)
	if err != nil {
		b.Fatal(err)
	}
	return d, masked, attrs
}

func benchMeasure(b *testing.B, m Measure, rows int) {
	b.Helper()
	orig, masked, attrs := benchPair(b, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Risk(orig, masked, attrs)
	}
}

func BenchmarkIntervalDisclosure(b *testing.B)   { benchMeasure(b, &IntervalDisclosure{}, 500) }
func BenchmarkDistanceLinkage(b *testing.B)      { benchMeasure(b, &DistanceLinkage{}, 500) }
func BenchmarkProbabilisticLinkage(b *testing.B) { benchMeasure(b, &ProbabilisticLinkage{}, 500) }
func BenchmarkRankIntervalLinkage(b *testing.B)  { benchMeasure(b, &RankIntervalLinkage{}, 500) }

// BenchmarkDistanceLinkageSampled shows the quadratic-cost mitigation the
// paper's §4 asks for: 4x outer sampling should cut cost ~4x.
func BenchmarkDistanceLinkageSampled(b *testing.B) {
	benchMeasure(b, &DistanceLinkage{MaxRecords: 125}, 500)
}

// BenchmarkRankIntervalLinkageDelta is the tentpole "after": one mutation
// offspring scored by patching the incremental RSRL state, against the
// full bitset recompute above (BenchmarkRankIntervalLinkage). Steady-state
// Apply calls reuse the state's scratch buffers and should report ~zero
// allocations.
func BenchmarkRankIntervalLinkageDelta(b *testing.B) {
	orig, masked, attrs := benchPair(b, 500)
	rl := &RankIntervalLinkage{}
	st := rl.Prepare(orig, masked, attrs)
	if st == nil {
		b.Fatal("Prepare returned nil")
	}
	// Pregenerate an edit/undo cycle so the loop measures Apply alone:
	// each even step applies a random change, each odd step reverts it, so
	// the state never drifts from the pregenerated chain.
	work := masked.Clone()
	rng := rand.New(rand.NewPCG(11, 11))
	cycle := make([]dataset.CellChange, 1024)
	for i := 0; i < len(cycle); i += 2 {
		ch := dataset.RandomChange(rng, work, attrs)
		cycle[i] = ch
		cycle[i+1] = dataset.CellChange{Row: ch.Row, Col: ch.Col, Old: ch.New, New: ch.Old}
		work.Set(ch.Row, ch.Col, ch.Old)
	}
	changes := make([]dataset.CellChange, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changes[0] = cycle[i%len(cycle)]
		rl.Apply(st, changes)
	}
	b.StopTimer()
	if b.N%2 == 1 { // leave the state consistent for -count > 1 runs
		changes[0] = cycle[b.N%len(cycle)]
		rl.Apply(st, changes)
	}
}

// BenchmarkRankIntervalLinkageDeltaSpeedup reports the measured full/delta
// ratio for a single-cell mutation directly as a custom metric — the
// acceptance bar for the incremental state is >= 5x.
func BenchmarkRankIntervalLinkageDeltaSpeedup(b *testing.B) {
	orig, masked, attrs := benchPair(b, 500)
	rl := &RankIntervalLinkage{}
	st := rl.Prepare(orig, masked, attrs)
	work := masked.Clone()
	rng := rand.New(rand.NewPCG(12, 12))
	changes := make([]dataset.CellChange, 1)
	var full, delta time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changes[0] = dataset.RandomChange(rng, work, attrs)
		start := time.Now()
		rl.Apply(st, changes)
		delta += time.Since(start)
		start = time.Now()
		rl.Risk(orig, work, attrs)
		full += time.Since(start)
	}
	if delta > 0 {
		b.ReportMetric(float64(full)/float64(delta), "full/delta_ratio")
	}
}

// BenchmarkRankIntervalLinkageDeltaClone measures the per-offspring branch
// cost: cloning the parent state, patching one cell and discarding it —
// the exact shape of the engine's survival tournament.
func BenchmarkRankIntervalLinkageDeltaClone(b *testing.B) {
	orig, masked, attrs := benchPair(b, 500)
	rl := &RankIntervalLinkage{}
	st := rl.Prepare(orig, masked, attrs).(*rsrlState)
	work := masked.Clone()
	rng := rand.New(rand.NewPCG(13, 13))
	changes := make([]dataset.CellChange, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child := st.CloneState()
		changes[0] = dataset.RandomChange(rng, work, attrs)
		rl.Apply(child, changes)
		// Undo the edit so the parent state keeps describing work.
		work.Set(changes[0].Row, changes[0].Col, changes[0].Old)
	}
}

func BenchmarkFullBattery(b *testing.B) {
	orig, masked, attrs := benchPair(b, 500)
	ms := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Average(ms, orig, masked, attrs)
	}
}
