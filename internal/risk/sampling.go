package risk

// The paper's §4 names the cost of computing the disclosure-risk measures
// as the approach's major drawback. The three linkage measures are
// quadratic in the number of records: every original record is compared
// against every masked record. This file adds the standard mitigation —
// deterministic record sampling on the intruder side — as an optional
// knob on each linkage measure.
//
// Sampling the *outer* (original) records leaves the per-record linkage
// problem untouched: each sampled record is still linked against the full
// masked file, so the measure remains an unbiased estimate of the
// re-identified fraction, computed on n/stride records instead of n. With
// MaxRecords = 0 (the default everywhere) the measures are exact.

// sampleStride returns the stride that keeps at most maxRecords of n
// records, and 1 (no sampling) when maxRecords is 0 or already >= n.
func sampleStride(n, maxRecords int) int {
	if maxRecords <= 0 || n <= maxRecords {
		return 1
	}
	stride := n / maxRecords
	if n%maxRecords != 0 {
		stride++
	}
	return stride
}

// sampledCount returns how many indices {0, stride, 2·stride, ...} fall in
// [0, n).
func sampledCount(n, stride int) int {
	return (n + stride - 1) / stride
}
