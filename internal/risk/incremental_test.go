package risk

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/dataset"
)

// incrementalDefaults returns the default battery's incremental measures.
func incrementalDefaults(t *testing.T) []Incremental {
	t.Helper()
	var out []Incremental
	for _, m := range Default() {
		if inc, ok := m.(Incremental); ok {
			out = append(out, inc)
		} else if m.Name() != "RSRL" {
			t.Fatalf("%s unexpectedly lacks an incremental implementation", m.Name())
		}
	}
	if len(out) != 3 {
		t.Fatalf("expected 3 incremental risk measures, got %d", len(out))
	}
	return out
}

// TestIncrementalMatchesFullRisk drives each incremental risk measure
// through randomized change sequences and demands bit-identical agreement
// with a full Risk recompute at every step.
func TestIncrementalMatchesFullRisk(t *testing.T) {
	for _, seed := range []uint64{2, 19, 101} {
		d, attrs := testData(t)
		rng := rand.New(rand.NewPCG(seed, 6))
		for _, inc := range incrementalDefaults(t) {
			work := scramble(d, attrs, seed)
			st := inc.Prepare(d, work, attrs)
			if st == nil {
				t.Fatalf("%s: Prepare returned nil", inc.Name())
			}
			if got, want := inc.Apply(st, nil), inc.Risk(d, work, attrs); got != want {
				t.Fatalf("%s: Apply(nil) = %v, full = %v", inc.Name(), got, want)
			}
			for step := 0; step < 60; step++ {
				batch := 1 + rng.IntN(3)
				changes := make([]dataset.CellChange, batch)
				for i := range changes {
					changes[i] = dataset.RandomChange(rng, work, attrs)
				}
				got := inc.Apply(st, changes)
				want := inc.Risk(d, work, attrs)
				if got != want {
					t.Fatalf("%s seed %d step %d: delta %v != full %v", inc.Name(), seed, step, got, want)
				}
			}
		}
	}
}

// TestIncrementalFromIdentityMasking starts the chain from the
// identity masking (the best-case for linkage: every record its own
// nearest neighbour), where DBRL's unique-minimum displacement path is
// exercised heavily.
func TestIncrementalFromIdentityMasking(t *testing.T) {
	d, attrs := uniqueData(t, 120)
	rng := rand.New(rand.NewPCG(23, 8))
	for _, inc := range incrementalDefaults(t) {
		work := d.Clone()
		st := inc.Prepare(d, work, attrs)
		for step := 0; step < 80; step++ {
			ch := dataset.RandomChange(rng, work, attrs)
			got := inc.Apply(st, []dataset.CellChange{ch})
			want := inc.Risk(d, work, attrs)
			if got != want {
				t.Fatalf("%s step %d: delta %v != full %v", inc.Name(), step, got, want)
			}
		}
	}
}

// TestIncrementalCloneIsolation branches a state, mutates the branch, and
// checks the original still tracks its own file exactly.
func TestIncrementalCloneIsolation(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(5, 11))
	for _, inc := range incrementalDefaults(t) {
		work := scramble(d, attrs, 13)
		st := inc.Prepare(d, work, attrs)

		branchData := work.Clone()
		branch := st.CloneState()
		for i := 0; i < 20; i++ {
			ch := dataset.RandomChange(rng, branchData, attrs)
			inc.Apply(branch, []dataset.CellChange{ch})
		}
		if got, want := inc.Apply(st, nil), inc.Risk(d, work, attrs); got != want {
			t.Fatalf("%s: original state corrupted by clone: %v != %v", inc.Name(), got, want)
		}
		if got, want := inc.Apply(branch, nil), inc.Risk(d, branchData, attrs); got != want {
			t.Fatalf("%s: branch state wrong: %v != %v", inc.Name(), got, want)
		}
	}
}

// TestSampledLinkageHasNoIncrementalState checks the documented contract:
// with intruder-side sampling configured the linkage states are
// unavailable and callers must use the full (sampled) recompute.
func TestSampledLinkageHasNoIncrementalState(t *testing.T) {
	d, attrs := testData(t)
	if st := (&DistanceLinkage{MaxRecords: 50}).Prepare(d, d.Clone(), attrs); st != nil {
		t.Error("sampled DBRL returned an incremental state")
	}
	if st := (&ProbabilisticLinkage{MaxRecords: 50}).Prepare(d, d.Clone(), attrs); st != nil {
		t.Error("sampled PRL returned an incremental state")
	}
}

// rsrlReference is the literal pairwise O(n²) rank-interval linkage the
// bitset implementation in rsrl.go replaced; kept as the oracle for the
// equivalence property below.
func rsrlReference(rl *RankIntervalLinkage, orig, masked *dataset.Dataset, attrs []int) float64 {
	p := rl.P
	if p <= 0 {
		p = 15
	}
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	oc, mc := columns(orig, attrs), columns(masked, attrs)
	lo, hi := rsrlWindows(orig, oc, mc, attrs, p)
	stride := sampleStride(n, rl.MaxRecords)
	credit := 0.0
	for i := 0; i < n; i += stride {
		count := 0
		containsTrue := false
		for j := 0; j < n; j++ {
			inAll := true
			for a := range attrs {
				u := oc[a][i]
				v := mc[a][j]
				if v < lo[a][u] || v > hi[a][u] {
					inAll = false
					break
				}
			}
			if inAll {
				count++
				if j == i {
					containsTrue = true
				}
			}
		}
		if containsTrue {
			credit += 1 / float64(count)
		}
	}
	return 100 * credit / float64(sampledCount(n, stride))
}

// TestRSRLBitsetMatchesPairwiseReference property-tests the accelerated
// RSRL against the literal pairwise scan across maskings, window widths
// and sampling strides.
func TestRSRLBitsetMatchesPairwiseReference(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(31, 14))
	maskings := []*dataset.Dataset{d.Clone(), scramble(d, attrs, 3), scramble(d, attrs, 77)}
	work := d.Clone()
	for i := 0; i < 40; i++ {
		dataset.RandomChange(rng, work, attrs)
	}
	maskings = append(maskings, work)
	for _, p := range []float64{0, 1, 5, 15, 60, 100} {
		for _, maxRecords := range []int{0, 70} {
			rl := &RankIntervalLinkage{P: p, MaxRecords: maxRecords}
			for mi, masked := range maskings {
				got := rl.Risk(d, masked, attrs)
				want := rsrlReference(rl, d, masked, attrs)
				if got != want {
					t.Fatalf("P=%v MaxRecords=%d masking %d: bitset %v != reference %v", p, maxRecords, mi, got, want)
				}
			}
		}
	}
	// Single-attribute edge: the intersection loop starts from attr 0 only.
	u, uattrs := uniqueData(t, 64)
	rl := &RankIntervalLinkage{P: 10}
	if got, want := rl.Risk(u, u.Clone(), uattrs), rsrlReference(rl, u, u.Clone(), uattrs); got != want {
		t.Fatalf("unique data: bitset %v != reference %v", got, want)
	}
}

// TestRSRLProfileKeyOverflow covers the uncached path: with a QI set
// whose cardinality product overflows uint64 the profile cache must be
// bypassed (not silently collide) and results still match the reference.
func TestRSRLProfileKeyOverflow(t *testing.T) {
	const numAttrs, card, n = 11, 100, 40 // 100^11 ≈ 1e22 > 2^64
	cats := make([]string, card)
	for i := range cats {
		cats[i] = string(rune('A'+i/26)) + string(rune('a'+i%26))
	}
	specs := make([]*dataset.Attribute, numAttrs)
	attrs := make([]int, numAttrs)
	for a := range specs {
		specs[a] = dataset.MustAttribute(string(rune('p'+a)), cats, true)
		attrs[a] = a
	}
	d := dataset.New(dataset.MustSchema(specs...), n)
	rng := rand.New(rand.NewPCG(41, 3))
	for r := 0; r < n; r++ {
		for c := 0; c < numAttrs; c++ {
			d.Set(r, c, rng.IntN(card))
		}
	}
	masked := scramble(d, attrs, 9)
	rl := &RankIntervalLinkage{P: 20}
	if got, want := rl.Risk(d, masked, attrs), rsrlReference(rl, d, masked, attrs); got != want {
		t.Fatalf("overflowing profile space: bitset %v != reference %v", got, want)
	}
}
