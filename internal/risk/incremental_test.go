package risk

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// incrementalDefaults returns the default battery's incremental measures.
func incrementalDefaults(t *testing.T) []Incremental {
	t.Helper()
	var out []Incremental
	for _, m := range Default() {
		inc, ok := m.(Incremental)
		if !ok {
			t.Fatalf("%s lacks an incremental implementation", m.Name())
		}
		out = append(out, inc)
	}
	if len(out) != 4 {
		t.Fatalf("expected 4 incremental risk measures, got %d", len(out))
	}
	return out
}

// TestIncrementalMatchesFullRisk drives each incremental risk measure
// through randomized change sequences and demands bit-identical agreement
// with a full Risk recompute at every step.
func TestIncrementalMatchesFullRisk(t *testing.T) {
	for _, seed := range []uint64{2, 19, 101} {
		d, attrs := testData(t)
		rng := rand.New(rand.NewPCG(seed, 6))
		for _, inc := range incrementalDefaults(t) {
			work := scramble(d, attrs, seed)
			st := inc.Prepare(d, work, attrs)
			if st == nil {
				t.Fatalf("%s: Prepare returned nil", inc.Name())
			}
			if got, want := inc.Apply(st, nil), inc.Risk(d, work, attrs); got != want {
				t.Fatalf("%s: Apply(nil) = %v, full = %v", inc.Name(), got, want)
			}
			for step := 0; step < 60; step++ {
				batch := 1 + rng.IntN(3)
				changes := make([]dataset.CellChange, batch)
				for i := range changes {
					changes[i] = dataset.RandomChange(rng, work, attrs)
				}
				got := inc.Apply(st, changes)
				want := inc.Risk(d, work, attrs)
				if got != want {
					t.Fatalf("%s seed %d step %d: delta %v != full %v", inc.Name(), seed, step, got, want)
				}
			}
		}
	}
}

// TestIncrementalFromIdentityMasking starts the chain from the
// identity masking (the best-case for linkage: every record its own
// nearest neighbour), where DBRL's unique-minimum displacement path is
// exercised heavily.
func TestIncrementalFromIdentityMasking(t *testing.T) {
	d, attrs := uniqueData(t, 120)
	rng := rand.New(rand.NewPCG(23, 8))
	for _, inc := range incrementalDefaults(t) {
		work := d.Clone()
		st := inc.Prepare(d, work, attrs)
		for step := 0; step < 80; step++ {
			ch := dataset.RandomChange(rng, work, attrs)
			got := inc.Apply(st, []dataset.CellChange{ch})
			want := inc.Risk(d, work, attrs)
			if got != want {
				t.Fatalf("%s step %d: delta %v != full %v", inc.Name(), step, got, want)
			}
		}
	}
}

// TestIncrementalCloneIsolation branches a state, mutates the branch, and
// checks the original still tracks its own file exactly.
func TestIncrementalCloneIsolation(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(5, 11))
	for _, inc := range incrementalDefaults(t) {
		work := scramble(d, attrs, 13)
		st := inc.Prepare(d, work, attrs)

		branchData := work.Clone()
		branch := st.CloneState()
		for i := 0; i < 20; i++ {
			ch := dataset.RandomChange(rng, branchData, attrs)
			inc.Apply(branch, []dataset.CellChange{ch})
		}
		if got, want := inc.Apply(st, nil), inc.Risk(d, work, attrs); got != want {
			t.Fatalf("%s: original state corrupted by clone: %v != %v", inc.Name(), got, want)
		}
		if got, want := inc.Apply(branch, nil), inc.Risk(d, branchData, attrs); got != want {
			t.Fatalf("%s: branch state wrong: %v != %v", inc.Name(), got, want)
		}
	}
}

// TestSampledLinkageStatesAreStrideAware checks the updated contract:
// intruder-side sampling (MaxRecords) no longer disables any linkage
// state — DBRL and PRL maintain summaries for the deterministic sampled
// record set directly, like RSRL always did, so the delta path has no
// full-recompute fallback left.
func TestSampledLinkageStatesAreStrideAware(t *testing.T) {
	d, attrs := testData(t)
	if st := (&DistanceLinkage{MaxRecords: 50}).Prepare(d, d.Clone(), attrs); st == nil {
		t.Error("sampled DBRL returned no incremental state; stride sampling is patchable")
	}
	if st := (&ProbabilisticLinkage{MaxRecords: 50}).Prepare(d, d.Clone(), attrs); st == nil {
		t.Error("sampled PRL returned no incremental state; stride sampling is patchable")
	}
	if st := (&RankIntervalLinkage{MaxRecords: 50}).Prepare(d, d.Clone(), attrs); st == nil {
		t.Error("sampled RSRL returned no incremental state; stride sampling is patchable")
	}
}

// TestSampledIncrementalMatchesFullRisk is the oracle for the
// stride-aware DBRL/PRL states: under every sampling stride the
// incremental chain must stay bit-identical to the sampled from-scratch
// recompute at every step, exactly as the unsampled states do.
func TestSampledIncrementalMatchesFullRisk(t *testing.T) {
	d, attrs := testData(t)
	for _, maxRecords := range []int{1, 7, 40, 70, 99, 100} {
		measures := []Incremental{
			&DistanceLinkage{MaxRecords: maxRecords},
			&ProbabilisticLinkage{MaxRecords: maxRecords},
			&RankIntervalLinkage{MaxRecords: maxRecords},
		}
		rng := rand.New(rand.NewPCG(uint64(maxRecords), 17))
		for _, inc := range measures {
			work := scramble(d, attrs, 29)
			st := inc.Prepare(d, work, attrs)
			if st == nil {
				t.Fatalf("%s MaxRecords=%d: Prepare returned nil", inc.Name(), maxRecords)
			}
			if got, want := inc.Apply(st, nil), inc.Risk(d, work, attrs); got != want {
				t.Fatalf("%s MaxRecords=%d: Apply(nil) = %v, full = %v", inc.Name(), maxRecords, got, want)
			}
			for step := 0; step < 40; step++ {
				batch := 1 + rng.IntN(3)
				changes := make([]dataset.CellChange, batch)
				for i := range changes {
					changes[i] = dataset.RandomChange(rng, work, attrs)
				}
				got := inc.Apply(st, changes)
				want := inc.Risk(d, work, attrs)
				if got != want {
					t.Fatalf("%s MaxRecords=%d step %d: delta %v != full %v",
						inc.Name(), maxRecords, step, got, want)
				}
			}
		}
	}
}

// reversibleBattery returns the reversible risk measures under test,
// plain and sampled.
func reversibleBattery(t *testing.T) []Reversible {
	t.Helper()
	var out []Reversible
	for _, m := range Default() {
		rev, ok := m.(Reversible)
		if !ok {
			t.Fatalf("%s lacks a reversible implementation", m.Name())
		}
		out = append(out, rev)
	}
	return append(out,
		&DistanceLinkage{MaxRecords: 40},
		&ProbabilisticLinkage{MaxRecords: 40},
		&RankIntervalLinkage{MaxRecords: 40},
	)
}

// TestReversibleApplyUndo drives every reversible risk state through
// speculative ApplyUndo/Undo rounds interleaved with committed Applies —
// the exact access pattern of generation-batch evaluation — and demands
// (a) each speculative value equals the full recompute of the edited
// file, (b) the undone state still tracks the unedited file bit for bit,
// and (c) a control state advanced only by committed Applies agrees at
// every step.
func TestReversibleApplyUndo(t *testing.T) {
	d, attrs := testData(t)
	for _, rev := range reversibleBattery(t) {
		rng := rand.New(rand.NewPCG(7, 31))
		work := scramble(d, attrs, 3)
		st := rev.Prepare(d, work, attrs)
		if st == nil {
			t.Fatalf("%s: Prepare returned nil", rev.Name())
		}
		control := st.CloneState()
		for step := 0; step < 30; step++ {
			// A speculative offspring: edits against a scratch copy.
			spec := work.Clone()
			changes := make([]dataset.CellChange, 1+rng.IntN(4))
			for i := range changes {
				changes[i] = dataset.RandomChange(rng, spec, attrs)
			}
			got := rev.ApplyUndo(st, changes)
			if want := rev.Risk(d, spec, attrs); got != want {
				t.Fatalf("%s step %d: ApplyUndo %v != full %v", rev.Name(), step, got, want)
			}
			rev.Undo(st)
			if got, want := rev.Apply(st, nil), rev.Risk(d, work, attrs); got != want {
				t.Fatalf("%s step %d: state after Undo %v != full %v", rev.Name(), step, got, want)
			}
			// Undo twice is a no-op.
			rev.Undo(st)
			// Every third round, commit the offspring for real.
			if step%3 == 0 {
				for _, ch := range changes {
					work.Set(ch.Row, ch.Col, ch.New)
				}
				if got, want := rev.Apply(st, changes), rev.Apply(control, changes); got != want {
					t.Fatalf("%s step %d: committed %v != control %v", rev.Name(), step, got, want)
				}
			}
		}
	}
}

// TestReversibleUndoWithoutApplyIsNoOp pins the no-pending contract.
func TestReversibleUndoWithoutApplyIsNoOp(t *testing.T) {
	d, attrs := testData(t)
	for _, rev := range reversibleBattery(t) {
		work := scramble(d, attrs, 5)
		st := rev.Prepare(d, work, attrs)
		rev.Undo(st)
		if got, want := rev.Apply(st, nil), rev.Risk(d, work, attrs); got != want {
			t.Fatalf("%s: Undo on a fresh state corrupted it: %v != %v", rev.Name(), got, want)
		}
	}
}

// randomGrid builds a random dataset: numAttrs protected attributes with
// random cardinalities in [2, maxCard], uniformly random cells.
func randomGrid(t *testing.T, rng *rand.Rand, n, numAttrs, maxCard int) (*dataset.Dataset, []int) {
	t.Helper()
	specs := make([]*dataset.Attribute, numAttrs)
	attrs := make([]int, numAttrs)
	for a := range specs {
		card := 2 + rng.IntN(maxCard-1)
		cats := make([]string, card)
		for i := range cats {
			cats[i] = fmt.Sprintf("a%dc%d", a, i)
		}
		specs[a] = dataset.MustAttribute(fmt.Sprintf("p%d", a), cats, rng.IntN(2) == 0)
		attrs[a] = a
	}
	d := dataset.New(dataset.MustSchema(specs...), n)
	for r := 0; r < n; r++ {
		for c := 0; c < numAttrs; c++ {
			d.Set(r, c, rng.IntN(specs[c].Cardinality()))
		}
	}
	return d, attrs
}

// TestRSRLDeltaMatchesReference drives the incremental RSRL state through
// random mutation- and crossover-sized change sequences — over the
// standard test data and over random grids — and demands bit-identical
// agreement with both the literal O(n²) pairwise oracle (rsrlReference)
// and the full bitset Risk at every step, across window widths and
// sampling strides.
func TestRSRLDeltaMatchesReference(t *testing.T) {
	type fixture struct {
		name  string
		d     *dataset.Dataset
		attrs []int
	}
	rng := rand.New(rand.NewPCG(83, 2))
	var fixtures []fixture
	d, attrs := testData(t)
	fixtures = append(fixtures, fixture{"german", d, attrs})
	for k := 0; k < 3; k++ {
		g, gattrs := randomGrid(t, rng, 60+rng.IntN(120), 1+rng.IntN(4), 9)
		fixtures = append(fixtures, fixture{fmt.Sprintf("grid%d", k), g, gattrs})
	}
	for _, fx := range fixtures {
		for _, cfg := range []RankIntervalLinkage{{}, {P: 2}, {P: 60}, {MaxRecords: 70}, {P: 5, MaxRecords: 40}} {
			rl := cfg
			name := fmt.Sprintf("%s/P=%v,MaxRecords=%d", fx.name, rl.P, rl.MaxRecords)
			work := scramble(fx.d, fx.attrs, 13)
			st := rl.Prepare(fx.d, work, fx.attrs)
			if st == nil {
				t.Fatalf("%s: Prepare returned nil", name)
			}
			for step := 0; step < 40; step++ {
				batch := 1 // a mutation offspring
				if step%3 == 2 {
					batch = 1 + rng.IntN(8) // a crossover gene window
				}
				changes := make([]dataset.CellChange, batch)
				for i := range changes {
					changes[i] = dataset.RandomChange(rng, work, fx.attrs)
				}
				got := rl.Apply(st, changes)
				if want := rsrlReference(&rl, fx.d, work, fx.attrs); got != want {
					t.Fatalf("%s step %d: delta %v != pairwise reference %v", name, step, got, want)
				}
				if want := rl.Risk(fx.d, work, fx.attrs); got != want {
					t.Fatalf("%s step %d: delta %v != full %v", name, step, got, want)
				}
			}
		}
	}
}

// rsrlSweepScan is the literal O(card²) window derivation rsrlSweep
// replaced: test every (u, v) pair and take the min/max matching v.
func rsrlSweepScan(oRanks, mRanks []float64, window float64, lo, hi []int) {
	card := len(oRanks)
	for u := 0; u < card; u++ {
		l, h := card, -1
		for v := 0; v < card; v++ {
			gap := oRanks[u] - mRanks[v]
			if gap < 0 {
				gap = -gap
			}
			if gap <= window {
				if v < l {
					l = v
				}
				if v > h {
					h = v
				}
			}
		}
		lo[u], hi[u] = l, h
	}
}

// TestRSRLSweepMatchesScan property-tests the two-pointer interval sweep
// against the literal pairwise scan over random frequency shapes —
// including empty categories, empty windows and degenerate widths.
func TestRSRLSweepMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 4))
	for trial := 0; trial < 200; trial++ {
		card := 1 + rng.IntN(12)
		oFreq := make([]int, card)
		mFreq := make([]int, card)
		n := 0
		for i := 0; i < card; i++ {
			if rng.IntN(3) > 0 { // leave ~1/3 of categories empty
				oFreq[i] = rng.IntN(40)
			}
			n += oFreq[i]
		}
		// The masked file redistributes the same n records.
		left := n
		for i := 0; i < card-1; i++ {
			mFreq[i] = rng.IntN(left + 1)
			left -= mFreq[i]
		}
		mFreq[card-1] = left
		oRanks := stats.MidRanks(oFreq)
		mRanks := stats.MidRanks(mFreq)
		for _, window := range []float64{0, 0.25, 1, float64(rng.IntN(n + 1)), float64(n) * 1.5} {
			lo := make([]int, card)
			hi := make([]int, card)
			loScan := make([]int, card)
			hiScan := make([]int, card)
			rsrlSweep(oRanks, mRanks, window, lo, hi)
			rsrlSweepScan(oRanks, mRanks, window, loScan, hiScan)
			for u := 0; u < card; u++ {
				if lo[u] != loScan[u] || hi[u] != hiScan[u] {
					t.Fatalf("trial %d window %v u=%d: sweep [%d,%d] != scan [%d,%d]\noRanks=%v\nmRanks=%v",
						trial, window, u, lo[u], hi[u], loScan[u], hiScan[u], oRanks, mRanks)
				}
			}
		}
	}
}

// TestProfileRadixGuard is the regression test for the profile-cache
// overflow probe: a zero cardinality must disable the cache (the previous
// probe divided by the cardinality), overflowing products must disable it,
// and ordinary QI sets must keep it with the exact product.
func TestProfileRadixGuard(t *testing.T) {
	if _, ok := profileRadix([]int{4, 0, 7}); ok {
		t.Error("zero cardinality reported cacheable")
	}
	if _, ok := profileRadix(
		[]int{100, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100}); ok {
		t.Error("100^11 > 2^64 reported cacheable")
	}
	radix, ok := profileRadix([]int{4, 5, 6})
	if !ok || radix != 120 {
		t.Errorf("profileRadix(4,5,6) = %d,%v; want 120,true", radix, ok)
	}
	if radix, ok := profileRadix(nil); !ok || radix != 1 {
		t.Errorf("profileRadix() = %d,%v; want 1,true", radix, ok)
	}
}

// rsrlReference is the literal pairwise O(n²) rank-interval linkage the
// bitset implementation in rsrl.go replaced; kept as the oracle for the
// equivalence property below.
func rsrlReference(rl *RankIntervalLinkage, orig, masked *dataset.Dataset, attrs []int) float64 {
	p := rl.P
	if p <= 0 {
		p = 15
	}
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	oc, mc := columns(orig, attrs), columns(masked, attrs)
	lo, hi := rsrlWindows(orig, oc, mc, attrs, p)
	stride := sampleStride(n, rl.MaxRecords)
	credit := 0.0
	for i := 0; i < n; i += stride {
		count := 0
		containsTrue := false
		for j := 0; j < n; j++ {
			inAll := true
			for a := range attrs {
				u := oc[a][i]
				v := mc[a][j]
				if v < lo[a][u] || v > hi[a][u] {
					inAll = false
					break
				}
			}
			if inAll {
				count++
				if j == i {
					containsTrue = true
				}
			}
		}
		if containsTrue {
			credit += 1 / float64(count)
		}
	}
	return 100 * credit / float64(sampledCount(n, stride))
}

// TestRSRLBitsetMatchesPairwiseReference property-tests the accelerated
// RSRL against the literal pairwise scan across maskings, window widths
// and sampling strides.
func TestRSRLBitsetMatchesPairwiseReference(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(31, 14))
	maskings := []*dataset.Dataset{d.Clone(), scramble(d, attrs, 3), scramble(d, attrs, 77)}
	work := d.Clone()
	for i := 0; i < 40; i++ {
		dataset.RandomChange(rng, work, attrs)
	}
	maskings = append(maskings, work)
	for _, p := range []float64{0, 1, 5, 15, 60, 100} {
		for _, maxRecords := range []int{0, 70} {
			rl := &RankIntervalLinkage{P: p, MaxRecords: maxRecords}
			for mi, masked := range maskings {
				got := rl.Risk(d, masked, attrs)
				want := rsrlReference(rl, d, masked, attrs)
				if got != want {
					t.Fatalf("P=%v MaxRecords=%d masking %d: bitset %v != reference %v", p, maxRecords, mi, got, want)
				}
			}
		}
	}
	// Single-attribute edge: the intersection loop starts from attr 0 only.
	u, uattrs := uniqueData(t, 64)
	rl := &RankIntervalLinkage{P: 10}
	if got, want := rl.Risk(u, u.Clone(), uattrs), rsrlReference(rl, u, u.Clone(), uattrs); got != want {
		t.Fatalf("unique data: bitset %v != reference %v", got, want)
	}
}

// TestRSRLProfileKeyOverflow covers the uncached path: with a QI set
// whose cardinality product overflows uint64 the profile cache must be
// bypassed (not silently collide) and results still match the reference.
func TestRSRLProfileKeyOverflow(t *testing.T) {
	const numAttrs, card, n = 11, 100, 40 // 100^11 ≈ 1e22 > 2^64
	cats := make([]string, card)
	for i := range cats {
		cats[i] = string(rune('A'+i/26)) + string(rune('a'+i%26))
	}
	specs := make([]*dataset.Attribute, numAttrs)
	attrs := make([]int, numAttrs)
	for a := range specs {
		specs[a] = dataset.MustAttribute(string(rune('p'+a)), cats, true)
		attrs[a] = a
	}
	d := dataset.New(dataset.MustSchema(specs...), n)
	rng := rand.New(rand.NewPCG(41, 3))
	for r := 0; r < n; r++ {
		for c := 0; c < numAttrs; c++ {
			d.Set(r, c, rng.IntN(card))
		}
	}
	masked := scramble(d, attrs, 9)
	rl := &RankIntervalLinkage{P: 20}
	if got, want := rl.Risk(d, masked, attrs), rsrlReference(rl, d, masked, attrs); got != want {
		t.Fatalf("overflowing profile space: bitset %v != reference %v", got, want)
	}
}
