package risk

// Incremental (delta) evaluation for the rank-interval linkage. The
// measure's value is a pure function of three layers of summaries, each of
// which a single cell change touches only locally:
//
//  1. Per-attribute category frequencies of the masked file, and the
//     mid-ranks derived from them. Moving one record from category old to
//     category new shifts only the ranks of categories between the two in
//     domain order.
//  2. Per-category admissibility windows. Mid-ranks are monotone in domain
//     order, so every window is a contiguous interval [lo, hi]; after a
//     rank shift the intervals are re-derived with one O(card) two-pointer
//     sweep (rsrlSweep) and each candidate union is patched only at the
//     interval boundaries that actually moved. The per-category record
//     bitsets partition the masked records, so categories leaving a window
//     subtract exactly (AndNotWith) and categories entering add (OrWith);
//     the moved record itself is one Clear+Set.
//  3. Per-profile candidate intersections. Profiles are over the original
//     file and therefore static: sampled records are grouped once in
//     Prepare, and a change invalidates exactly the groups whose profile
//     holds a category whose candidate union changed — those few groups
//     re-intersect against a reusable scratch bitset; all others keep
//     their counts.
//
// Every summary is exact (integer frequencies, exact half-integer ranks,
// bitsets), and the final credit sum is re-accumulated in the same record
// order with the same float operations as the full Risk, so Apply is
// bit-for-bit identical to a full recompute — rsrlReference, the literal
// O(n²) pairwise scan, property-tests the whole chain.
//
// Like the other linkage states, the RSRL state supports MaxRecords
// stride sampling: the sampled record set is deterministic, so only
// sampled records are grouped and the patched credit sum is exactly the
// sampled full recompute.
//
// The state is also Reversible, through journaling rather than inverse
// replay: ApplyUndo records word-level before-images of every byCat and
// cand bitset mutation (stats.BitsetJournal), snapshots the scalar rows
// (frequencies, mid-ranks, window bounds) of each touched attribute and
// the counts/hit flags of each refreshed group, and Undo restores it
// all directly — no rank sweeps, boundary patches or candidate
// re-intersections on the way back.

import (
	"sort"

	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// rsrlGroup is one equivalence class of sampled original records sharing a
// protected-attribute profile, together with the size of the profile's
// candidate set under the current masked file.
type rsrlGroup struct {
	rep     int32   // representative record; the profile is oc[·][rep]
	count   int32   // |candidate intersection| for this profile
	members []int32 // sampled records with this profile (shared, immutable)
}

// rsrlState is the incremental state of RankIntervalLinkage for one masked
// file. See the file comment for the update strategy.
type rsrlState struct {
	n      int
	stride int
	window float64
	pos    map[int]int // protected column -> attribute position

	// Original-file summaries: immutable, shared across clones.
	oc          [][]int
	cards       []int
	oRanks      [][]float64
	byCatGroups [][][]int32 // attr position -> category -> groups holding it
	recGroup    []int32     // sampled record -> its group (-1 when unsampled)

	// Masked-file summaries: owned, deep-copied by CloneState.
	mFreq  [][]int
	mRanks [][]float64
	lo, hi [][]int
	byCat  [][]*stats.Bitset // partition of masked records by category
	cand   [][]*stats.Bitset // per original category: ∪ byCat over [lo,hi]
	groups []rsrlGroup       // count owned; rep/members shared
	recHit []bool            // sampled record i: candidate set contains masked record i

	// Reusable scratch, lazily built and never shared between clones, so
	// steady-state Apply calls allocate nothing.
	scratch      *stats.Bitset
	loNew, hiNew []int
	dirty        []bool
	dirtyList    []int32

	// Undo journal, armed by ApplyUndo and consumed by Undo; owned
	// reusable buffers, never shared between clones. The scalar rows of
	// each touched attribute (undoFreq/undoRanks/undoLo/undoHi) are
	// concatenated in first-touch order (undoAttrs); undoHits holds the
	// refreshed groups' member flags concatenated in undoGroups order.
	undoBits       stats.BitsetJournal
	undoAttrs      []int32
	undoMark       []bool
	undoFreq       []int
	undoLo, undoHi []int
	undoRanks      []float64
	undoGroups     []int32
	undoCounts     []int32
	undoHits       []bool
	undoActive     bool
}

// Prepare implements Incremental. The state costs about one full Risk to
// build; every Apply then costs a small fraction of that.
func (rl *RankIntervalLinkage) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	st := &rsrlState{
		n:      n,
		stride: sampleStride(n, rl.MaxRecords),
		window: rl.pOrDefault() * float64(n) / 100,
		pos:    make(map[int]int, len(attrs)),
		oc:     columns(orig, attrs),
		cards:  orig.Schema().Cardinalities(attrs),
	}
	mc := columns(masked, attrs)
	st.oRanks = make([][]float64, len(attrs))
	st.mFreq = make([][]int, len(attrs))
	st.mRanks = make([][]float64, len(attrs))
	st.lo = make([][]int, len(attrs))
	st.hi = make([][]int, len(attrs))
	st.byCat = make([][]*stats.Bitset, len(attrs))
	st.cand = make([][]*stats.Bitset, len(attrs))
	for a, c := range attrs {
		st.pos[c] = a
		card := st.cards[a]
		st.oRanks[a] = stats.MidRanks(stats.Freq(st.oc[a], card))
		st.mFreq[a] = stats.Freq(mc[a], card)
		st.mRanks[a] = stats.MidRanks(st.mFreq[a])
		st.lo[a] = make([]int, card)
		st.hi[a] = make([]int, card)
		rsrlSweep(st.oRanks[a], st.mRanks[a], st.window, st.lo[a], st.hi[a])
		st.byCat[a] = rsrlByCat(mc[a], card, n)
		st.cand[a] = rsrlUnions(st.byCat[a], st.lo[a], st.hi[a], n)
	}
	st.buildGroups()
	st.ensureScratch()
	for g := range st.groups {
		st.refreshGroup(int32(g))
	}
	return st
}

// buildGroups partitions the sampled records by their (static) original
// profile and indexes the groups by the categories they hold, so a change
// can invalidate exactly the groups it affects.
func (st *rsrlState) buildGroups() {
	sampled := make([]int32, 0, sampledCount(st.n, st.stride))
	for i := 0; i < st.n; i += st.stride {
		sampled = append(sampled, int32(i))
	}
	// Grouping by sort avoids any profile-key width limit: the comparator
	// works for QI sets whose cardinality product overflows uint64 too.
	sort.Slice(sampled, func(x, y int) bool {
		i, j := sampled[x], sampled[y]
		for a := range st.oc {
			if st.oc[a][i] != st.oc[a][j] {
				return st.oc[a][i] < st.oc[a][j]
			}
		}
		return i < j
	})
	st.recGroup = make([]int32, st.n)
	for i := range st.recGroup {
		st.recGroup[i] = -1
	}
	st.recHit = make([]bool, st.n)
	for k := 0; k < len(sampled); {
		j := k + 1
		for j < len(sampled) && st.sameProfile(sampled[k], sampled[j]) {
			j++
		}
		g := int32(len(st.groups))
		members := sampled[k:j:j]
		st.groups = append(st.groups, rsrlGroup{rep: sampled[k], members: members})
		for _, i := range members {
			st.recGroup[i] = g
		}
		k = j
	}
	st.byCatGroups = make([][][]int32, len(st.oc))
	for a := range st.oc {
		st.byCatGroups[a] = make([][]int32, st.cards[a])
	}
	for g := range st.groups {
		rep := st.groups[g].rep
		for a := range st.oc {
			u := st.oc[a][rep]
			st.byCatGroups[a][u] = append(st.byCatGroups[a][u], int32(g))
		}
	}
}

// sameProfile reports whether records i and j agree on every protected
// attribute of the original file.
func (st *rsrlState) sameProfile(i, j int32) bool {
	for a := range st.oc {
		if st.oc[a][i] != st.oc[a][j] {
			return false
		}
	}
	return true
}

// ensureScratch (re)builds the reusable scratch buffers; clones drop them,
// so the first Apply after a branch rebuilds here.
func (st *rsrlState) ensureScratch() {
	if st.scratch == nil {
		st.scratch = stats.NewBitset(st.n)
	}
	if len(st.dirty) < len(st.groups) {
		st.dirty = make([]bool, len(st.groups))
	}
	maxCard := 0
	for _, c := range st.cards {
		if c > maxCard {
			maxCard = c
		}
	}
	if len(st.loNew) < maxCard {
		st.loNew = make([]int, maxCard)
		st.hiNew = make([]int, maxCard)
	}
}

// refreshGroup recomputes one group's candidate intersection from the
// current cand bitsets, updating its count and its members' hit flags.
// The final attribute is folded in with the fused AndCount kernel — the
// full intersection bitset is never materialized, saving one word pass
// per refresh; membership tests check the two halves separately.
func (st *rsrlState) refreshGroup(g int32) {
	grp := &st.groups[g]
	rep := int(grp.rep)
	last := st.cand[len(st.oc)-1][st.oc[len(st.oc)-1][rep]]
	if len(st.oc) == 1 {
		grp.count = int32(last.Count())
		for _, i := range grp.members {
			st.recHit[i] = last.Test(int(i))
		}
		return
	}
	sc := st.scratch
	sc.CopyFrom(st.cand[0][st.oc[0][rep]])
	for a := 1; a < len(st.oc)-1; a++ {
		sc.AndWith(st.cand[a][st.oc[a][rep]])
	}
	grp.count = int32(sc.AndCount(last))
	for _, i := range grp.members {
		st.recHit[i] = sc.Test(int(i)) && last.Test(int(i))
	}
}

// value folds the per-record hits into the measure value with the same
// accumulation order and float operations as the full Risk, keeping delta
// results bit-identical.
func (st *rsrlState) value() float64 {
	credit := 0.0
	for i := 0; i < st.n; i += st.stride {
		if st.recHit[i] {
			credit += 1 / float64(st.groups[st.recGroup[i]].count)
		}
	}
	return 100 * credit / float64(sampledCount(st.n, st.stride))
}

// CloneState implements State. Original-file summaries are shared;
// masked-file summaries are deep-copied; scratch stays with the original
// so clones are independent single-goroutine values.
func (s *rsrlState) CloneState() State {
	out := &rsrlState{
		n: s.n, stride: s.stride, window: s.window, pos: s.pos,
		oc: s.oc, cards: s.cards, oRanks: s.oRanks,
		byCatGroups: s.byCatGroups, recGroup: s.recGroup,
	}
	out.mFreq = make([][]int, len(s.mFreq))
	out.mRanks = make([][]float64, len(s.mRanks))
	out.lo = make([][]int, len(s.lo))
	out.hi = make([][]int, len(s.hi))
	out.byCat = make([][]*stats.Bitset, len(s.byCat))
	out.cand = make([][]*stats.Bitset, len(s.cand))
	for a := range s.mFreq {
		out.mFreq[a] = append([]int(nil), s.mFreq[a]...)
		out.mRanks[a] = append([]float64(nil), s.mRanks[a]...)
		out.lo[a] = append([]int(nil), s.lo[a]...)
		out.hi[a] = append([]int(nil), s.hi[a]...)
		out.byCat[a] = cloneBitsets(s.byCat[a])
		out.cand[a] = cloneBitsets(s.cand[a])
	}
	out.groups = append([]rsrlGroup(nil), s.groups...)
	out.recHit = append([]bool(nil), s.recHit...)
	return out
}

func cloneBitsets(in []*stats.Bitset) []*stats.Bitset {
	out := make([]*stats.Bitset, len(in))
	for i, b := range in {
		out[i] = b.Clone()
	}
	return out
}

// Apply implements Incremental. A plain Apply commits any pending
// ApplyUndo: the journals are discarded and the changes become
// permanent.
func (rl *RankIntervalLinkage) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*rsrlState)
	st.ensureScratch()
	st.disarmUndo()
	for _, ch := range changes {
		st.applyOne(ch, nil)
	}
	for _, g := range st.dirtyList {
		st.refreshGroup(g)
		st.dirty[g] = false
	}
	st.dirtyList = st.dirtyList[:0]
	return st.value()
}

// ApplyUndo implements Reversible: Apply with every mutation journaled
// so Undo can restore the state without recomputation.
func (rl *RankIntervalLinkage) ApplyUndo(state State, changes []dataset.CellChange) float64 {
	st := state.(*rsrlState)
	st.ensureScratch()
	st.ensureUndo()
	st.disarmUndo()
	st.undoActive = true
	for _, ch := range changes {
		st.applyOne(ch, &st.undoBits)
	}
	for _, g := range st.dirtyList {
		grp := &st.groups[g]
		st.undoGroups = append(st.undoGroups, g)
		st.undoCounts = append(st.undoCounts, grp.count)
		for _, i := range grp.members {
			st.undoHits = append(st.undoHits, st.recHit[i])
		}
		st.refreshGroup(g)
		st.dirty[g] = false
	}
	st.dirtyList = st.dirtyList[:0]
	return st.value()
}

// Undo implements Reversible: restore the journaled before-images —
// group counts and hit flags, scalar attribute rows, then the bitset
// word diffs (newest first). No sweeps or intersections run.
func (rl *RankIntervalLinkage) Undo(state State) {
	st := state.(*rsrlState)
	if !st.undoActive {
		return
	}
	st.undoActive = false
	hk := 0
	for k, g := range st.undoGroups {
		grp := &st.groups[g]
		grp.count = st.undoCounts[k]
		for _, i := range grp.members {
			st.recHit[i] = st.undoHits[hk]
			hk++
		}
	}
	off := 0
	for _, a32 := range st.undoAttrs {
		a := int(a32)
		card := st.cards[a]
		copy(st.mFreq[a], st.undoFreq[off:off+card])
		copy(st.mRanks[a], st.undoRanks[off:off+card])
		copy(st.lo[a], st.undoLo[off:off+card])
		copy(st.hi[a], st.undoHi[off:off+card])
		off += card
		st.undoMark[a] = false
	}
	st.undoBits.Revert()
	st.undoAttrs = st.undoAttrs[:0]
	st.undoFreq = st.undoFreq[:0]
	st.undoRanks = st.undoRanks[:0]
	st.undoLo = st.undoLo[:0]
	st.undoHi = st.undoHi[:0]
	st.undoGroups = st.undoGroups[:0]
	st.undoCounts = st.undoCounts[:0]
	st.undoHits = st.undoHits[:0]
}

// ensureUndo sizes the per-attribute first-touch marks.
func (st *rsrlState) ensureUndo() {
	if len(st.undoMark) < len(st.cards) {
		st.undoMark = make([]bool, len(st.cards))
	}
}

// disarmUndo discards a pending journal without restoring anything —
// the commit half of the apply/undo protocol.
func (st *rsrlState) disarmUndo() {
	if !st.undoActive {
		return
	}
	st.undoActive = false
	st.undoBits.Reset()
	for _, a := range st.undoAttrs {
		st.undoMark[a] = false
	}
	st.undoAttrs = st.undoAttrs[:0]
	st.undoFreq = st.undoFreq[:0]
	st.undoRanks = st.undoRanks[:0]
	st.undoLo = st.undoLo[:0]
	st.undoHi = st.undoHi[:0]
	st.undoGroups = st.undoGroups[:0]
	st.undoCounts = st.undoCounts[:0]
	st.undoHits = st.undoHits[:0]
}

// applyOne patches the state for one cell change: masked record ch.Row of
// attribute ch.Col moves from category ch.Old to ch.New. With a non-nil
// journal every bitset mutation records its word before-images and the
// touched attribute's scalar rows are snapshotted on first touch.
func (st *rsrlState) applyOne(ch dataset.CellChange, jn *stats.BitsetJournal) {
	if ch.Old == ch.New {
		return
	}
	a := st.pos[ch.Col]
	if jn != nil && !st.undoMark[a] {
		st.undoMark[a] = true
		st.undoAttrs = append(st.undoAttrs, int32(a))
		st.undoFreq = append(st.undoFreq, st.mFreq[a]...)
		st.undoRanks = append(st.undoRanks, st.mRanks[a]...)
		st.undoLo = append(st.undoLo, st.lo[a]...)
		st.undoHi = append(st.undoHi, st.hi[a]...)
	}
	if jn != nil {
		st.byCat[a][ch.Old].ClearJ(ch.Row, jn)
		st.byCat[a][ch.New].SetJ(ch.Row, jn)
	} else {
		st.byCat[a][ch.Old].Clear(ch.Row)
		st.byCat[a][ch.New].Set(ch.Row)
	}
	stats.FreqShift(st.mFreq[a], ch.Old, ch.New)
	stats.MidRanksInto(st.mRanks[a], st.mFreq[a])
	card := st.cards[a]
	loNew, hiNew := st.loNew[:card], st.hiNew[:card]
	rsrlSweep(st.oRanks[a], st.mRanks[a], st.window, loNew, hiNew)
	for u := 0; u < card; u++ {
		loO, hiO := st.lo[a][u], st.hi[a][u]
		loN, hiN := loNew[u], hiNew[u]
		cand := st.cand[a][u]
		changed := false
		// First make cand the union of the *updated* byCat sets over the
		// old interval: only the moved record's membership can differ.
		wasIn := loO <= ch.Old && ch.Old <= hiO
		nowIn := loO <= ch.New && ch.New <= hiO
		if wasIn != nowIn {
			switch {
			case wasIn && jn != nil:
				cand.ClearJ(ch.Row, jn)
			case wasIn:
				cand.Clear(ch.Row)
			case jn != nil:
				cand.SetJ(ch.Row, jn)
			default:
				cand.Set(ch.Row)
			}
			changed = true
		}
		// Then slide the interval: byCat partitions the records, so
		// categories leaving the window subtract exactly and categories
		// entering add.
		if loO != loN || hiO != hiN {
			for v := loO; v <= hiO; v++ {
				if v < loN || v > hiN {
					if jn != nil {
						cand.AndNotWithJ(st.byCat[a][v], jn)
					} else {
						cand.AndNotWith(st.byCat[a][v])
					}
				}
			}
			for v := loN; v <= hiN; v++ {
				if v < loO || v > hiO {
					if jn != nil {
						cand.OrWithJ(st.byCat[a][v], jn)
					} else {
						cand.OrWith(st.byCat[a][v])
					}
				}
			}
			st.lo[a][u], st.hi[a][u] = loN, hiN
			changed = true
		}
		if changed {
			for _, g := range st.byCatGroups[a][u] {
				if !st.dirty[g] {
					st.dirty[g] = true
					st.dirtyList = append(st.dirtyList, g)
				}
			}
		}
	}
}
