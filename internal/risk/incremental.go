package risk

// Incremental (delta) evaluation for the disclosure-risk battery. See the
// twin file internal/infoloss/incremental.go for the overall contract:
// Prepare builds a per-masked-file State, Apply advances it by a cell
// change list and returns the measure's value, and every state keeps
// exact integer summaries so delta values are bit-for-bit identical to a
// full recompute.
//
// Coverage:
//
//   - ID keeps one integer (the disclosed-window count) and per-attribute
//     contribution tables that depend only on the original file.
//   - DBRL caches each original record's nearest-masked-record distance,
//     tie count and true-match distance. A cell change moves one masked
//     record, so exactly one distance per original record is replaced;
//     only when the unique minimum is displaced upward does one row
//     rescan (O(n)) occur — rare in practice, so updates are ~O(n·attrs)
//     per changed cell.
//   - PRL caches each original record's histogram of agreement patterns
//     against all masked records. A cell change flips one pattern bit for
//     the original records whose value matches the old or new category;
//     EM then reruns over the (tiny) pattern tally and records are
//     re-linked from their histograms in O(n·2^attrs).
//   - RSRL keeps the masked file's per-attribute category frequencies,
//     mid-ranks, window intervals and candidate bitsets, plus per-profile
//     candidate counts. A cell change shifts only the mid-ranks between the
//     old and new category, so the contiguous windows are re-derived by an
//     O(card) two-pointer sweep, candidate unions are patched at the moved
//     interval boundaries, and only profiles holding an affected category
//     re-intersect (see rsrl_incremental.go).
//
// The DBRL and PRL states support only exact linkage (MaxRecords == 0,
// every record linked); with sampling configured Prepare returns nil and
// callers fall back to the sampled full recompute. The RSRL state supports
// stride sampling directly: the sampled record set is deterministic, so
// the sampled credit sum is patched exactly like the full one.
//
// Measured at bench_test.go scale (500 records), a single-cell Apply costs
// ~3.3µs against ~56µs for the bitset-accelerated full RSRL recompute
// (~17x, the last hot recompute of the per-offspring path) and runs
// allocation-free — the states keep reusable scratch buffers, so cloning a
// parent state is the only steady-state allocation of the delta chain.

import (
	"math"

	"evoprot/internal/dataset"
)

// State is an opaque per-masked-dataset summary maintained by an
// Incremental measure. States are single-goroutine values; use CloneState
// to branch one.
type State interface {
	// CloneState returns an independent deep copy.
	CloneState() State
}

// Incremental is the capability interface for measures that can rescore a
// masked dataset in time roughly proportional to the number of changed
// cells rather than quadratic in the dataset size.
type Incremental interface {
	Measure
	// Prepare builds the incremental state for masked against orig over
	// the protected attrs. A nil state means the measure cannot run
	// incrementally under its current configuration; callers must fall
	// back to Risk.
	Prepare(orig, masked *dataset.Dataset, attrs []int) State
	// Apply advances state by the given cell changes — which must describe
	// edits to the state's masked file, applied in order — and returns the
	// measure's value for the edited file. An empty change list returns
	// the current value. Apply must not retain changes: callers reuse the
	// backing array across calls.
	Apply(state State, changes []dataset.CellChange) float64
}

// Compile-time capability checks: the whole default battery is
// incremental.
var (
	_ Incremental = (*IntervalDisclosure)(nil)
	_ Incremental = (*DistanceLinkage)(nil)
	_ Incremental = (*ProbabilisticLinkage)(nil)
	_ Incremental = (*RankIntervalLinkage)(nil)
)

// --- ID (interval disclosure) ---

type idState struct {
	n         int
	orig      *dataset.Dataset // read-only
	numAttrs  int
	maxP      int
	pos       map[int]int
	contrib   [][][]int // per attr position: card x card, shared (orig-only)
	disclosed int
}

// CloneState implements State.
func (s *idState) CloneState() State {
	out := *s
	return &out
}

// Prepare implements Incremental.
func (id *IntervalDisclosure) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	maxP := id.maxPOrDefault()
	st := &idState{
		n: n, orig: orig, numAttrs: len(attrs), maxP: maxP,
		pos:     make(map[int]int, len(attrs)),
		contrib: make([][][]int, len(attrs)),
	}
	for a, c := range attrs {
		st.pos[c] = a
		st.contrib[a] = idContrib(orig, c, maxP)
		oc := orig.Column(c)
		mc := masked.Column(c)
		for r := 0; r < n; r++ {
			st.disclosed += st.contrib[a][oc[r]][mc[r]]
		}
	}
	return st
}

// Apply implements Incremental.
func (id *IntervalDisclosure) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*idState)
	for _, ch := range changes {
		a := st.pos[ch.Col]
		u := st.orig.At(ch.Row, ch.Col)
		st.disclosed += st.contrib[a][u][ch.New] - st.contrib[a][u][ch.Old]
	}
	return idValue(st.disclosed, st.n, st.numAttrs, st.maxP)
}

// --- DBRL (distance-based record linkage) ---

type dbrlState struct {
	n      int
	attrs  []int
	pos    map[int]int
	oc     [][]int     // original protected columns, shared read-only
	mc     [][]int     // masked protected columns, owned
	tables []distTable // shared (schema-only)
	// Per original record: distance to its nearest masked record, how many
	// masked records tie at that distance, and the distance to its true
	// masked counterpart.
	best     []int64
	count    []int32
	trueDist []int64
}

// CloneState implements State.
func (s *dbrlState) CloneState() State {
	out := &dbrlState{n: s.n, attrs: s.attrs, pos: s.pos, oc: s.oc, tables: s.tables}
	out.mc = make([][]int, len(s.mc))
	for a, col := range s.mc {
		own := make([]int, len(col))
		copy(own, col)
		out.mc[a] = own
	}
	out.best = append([]int64(nil), s.best...)
	out.count = append([]int32(nil), s.count...)
	out.trueDist = append([]int64(nil), s.trueDist...)
	return out
}

// Prepare implements Incremental.
func (dl *DistanceLinkage) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 || sampleStride(n, dl.MaxRecords) != 1 {
		return nil
	}
	st := &dbrlState{
		n: n, attrs: attrs, pos: make(map[int]int, len(attrs)),
		oc: columns(orig, attrs), mc: columns(masked, attrs),
		tables:   distanceTables(orig, attrs),
		best:     make([]int64, n),
		count:    make([]int32, n),
		trueDist: make([]int64, n),
	}
	for a, c := range attrs {
		st.pos[c] = a
	}
	for i := 0; i < n; i++ {
		st.rescan(i)
		st.trueDist[i] = st.dist(i, i)
	}
	return st
}

// dist returns the mixed categorical distance between original record i
// and masked record j under the state's current masked columns.
func (s *dbrlState) dist(i, j int) int64 {
	var d int64
	for a := range s.tables {
		d += s.tables[a].at(s.oc[a][i], s.mc[a][j])
	}
	return d
}

// rescan recomputes record i's nearest-distance and tie count from
// scratch against the current masked columns.
func (s *dbrlState) rescan(i int) {
	best := int64(1) << 62
	count := int32(0)
	for j := 0; j < s.n; j++ {
		d := s.dist(i, j)
		switch {
		case d < best:
			best, count = d, 1
		case d == best:
			count++
		}
	}
	s.best[i], s.count[i] = best, count
}

// Apply implements Incremental.
func (dl *DistanceLinkage) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*dbrlState)
	for _, ch := range changes {
		a0 := st.pos[ch.Col]
		j0 := ch.Row
		t := st.tables[a0]
		st.mc[a0][j0] = ch.New
		for i := 0; i < st.n; i++ {
			dOldA, dNewA := t.at(st.oc[a0][i], ch.Old), t.at(st.oc[a0][i], ch.New)
			if dOldA == dNewA && i != j0 {
				continue // the replaced distance is unchanged
			}
			var base int64
			for a := range st.tables {
				if a != a0 {
					base += st.tables[a].at(st.oc[a][i], st.mc[a][j0])
				}
			}
			dOld, dNew := base+dOldA, base+dNewA
			if i == j0 {
				st.trueDist[i] = dNew
			}
			if dOld == dNew {
				continue
			}
			// Replace one element of record i's distance multiset.
			switch {
			case dOld > st.best[i]:
				if dNew < st.best[i] {
					st.best[i], st.count[i] = dNew, 1
				} else if dNew == st.best[i] {
					st.count[i]++
				}
			default: // dOld == st.best[i]; dOld < best is impossible
				if st.count[i] > 1 {
					st.count[i]--
					if dNew < st.best[i] {
						st.best[i], st.count[i] = dNew, 1
					} else if dNew == st.best[i] {
						st.count[i]++
					}
				} else if dNew <= dOld {
					st.best[i] = dNew // still the unique minimum
				} else {
					st.rescan(i) // the unique minimum moved away
				}
			}
		}
	}
	credit := 0.0
	for i := 0; i < st.n; i++ {
		if st.trueDist[i] == st.best[i] {
			credit += 1 / float64(st.count[i])
		}
	}
	return 100 * credit / float64(st.n)
}

// --- PRL (probabilistic record linkage) ---

type prlState struct {
	n        int
	numAttrs int
	iters    int
	pos      map[int]int
	oc       [][]int   // shared read-only
	mc       [][]int   // owned
	ocByCat  [][][]int // shared: per attr, per category, original record indices
	// cnt[i*numPat+pat] counts masked records j with pattern(i,j) == pat;
	// patCount aggregates cnt over all i (exact integers in float64).
	cnt      []int32
	patCount []float64
	truePat  []int32 // pattern(i, i) per record
	// Reusable Apply scratch (EM buffers and pattern weights), lazily
	// built and never shared: CloneState leaves it nil, so steady-state
	// Apply calls allocate nothing.
	scrWeights       []float64
	scrM, scrU       []float64
	scrMNum, scrUNum []float64
}

// CloneState implements State.
func (s *prlState) CloneState() State {
	out := &prlState{n: s.n, numAttrs: s.numAttrs, iters: s.iters, pos: s.pos, oc: s.oc, ocByCat: s.ocByCat}
	out.mc = make([][]int, len(s.mc))
	for a, col := range s.mc {
		own := make([]int, len(col))
		copy(own, col)
		out.mc[a] = own
	}
	out.cnt = append([]int32(nil), s.cnt...)
	out.patCount = append([]float64(nil), s.patCount...)
	out.truePat = append([]int32(nil), s.truePat...)
	return out
}

// Prepare implements Incremental.
func (pl *ProbabilisticLinkage) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 || len(attrs) > 16 || sampleStride(n, pl.MaxRecords) != 1 {
		return nil
	}
	if 1<<len(attrs) > n {
		// The per-record pattern histograms cost O(n·2^attrs) to store,
		// clone and re-link; once the pattern space outgrows the record
		// count the full O(n²·attrs) recompute is the cheaper path.
		return nil
	}
	iters := pl.EMIters
	if iters <= 0 {
		iters = 30
	}
	numPat := 1 << len(attrs)
	st := &prlState{
		n: n, numAttrs: len(attrs), iters: iters,
		pos: make(map[int]int, len(attrs)),
		oc:  columns(orig, attrs), mc: columns(masked, attrs),
		cnt:      make([]int32, n*numPat),
		patCount: make([]float64, numPat),
		truePat:  make([]int32, n),
	}
	st.ocByCat = make([][][]int, len(attrs))
	for a, c := range attrs {
		st.pos[c] = a
		card := orig.Schema().Attr(c).Cardinality()
		st.ocByCat[a] = make([][]int, card)
		for i := 0; i < n; i++ {
			v := st.oc[a][i]
			st.ocByCat[a][v] = append(st.ocByCat[a][v], i)
		}
	}
	for i := 0; i < n; i++ {
		row := st.cnt[i*numPat : (i+1)*numPat]
		for j := 0; j < n; j++ {
			row[pattern(i, j, st.oc, st.mc)]++
		}
		st.truePat[i] = int32(pattern(i, i, st.oc, st.mc))
		for pat, c := range row {
			st.patCount[pat] += float64(c)
		}
	}
	return st
}

// Apply implements Incremental.
func (pl *ProbabilisticLinkage) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*prlState)
	numPat := 1 << st.numAttrs
	if st.scrWeights == nil {
		st.scrWeights = make([]float64, numPat)
		st.scrM = make([]float64, st.numAttrs)
		st.scrU = make([]float64, st.numAttrs)
		st.scrMNum = make([]float64, st.numAttrs)
		st.scrUNum = make([]float64, st.numAttrs)
	}
	for _, ch := range changes {
		a0 := st.pos[ch.Col]
		j0 := ch.Row
		// Only original records agreeing with the old or new category see
		// their pattern against masked record j0 flip bit a0.
		for _, cat := range [2]int{ch.Old, ch.New} {
			for _, i := range st.ocByCat[a0][cat] {
				patOld := 0
				for a := range st.oc {
					v := st.mc[a][j0]
					if a == a0 {
						v = ch.Old
					}
					if st.oc[a][i] == v {
						patOld |= 1 << a
					}
				}
				patNew := patOld &^ (1 << a0)
				if st.oc[a0][i] == ch.New {
					patNew |= 1 << a0
				}
				st.cnt[i*numPat+patOld]--
				st.cnt[i*numPat+patNew]++
				st.patCount[patOld]--
				st.patCount[patNew]++
			}
		}
		st.mc[a0][j0] = ch.New
		// The true-match pattern of record j0 itself.
		st.truePat[j0] = int32(pattern(j0, j0, st.oc, st.mc))
	}

	// Re-estimate and re-link from the pattern tallies — identical inputs
	// to the full Risk, so identical m/u estimates and weights.
	totalPairs := float64(st.n) * float64(st.n)
	m, u := st.scrM, st.scrU
	emEstimateInto(m, u, st.scrMNum, st.scrUNum, st.patCount, totalPairs, float64(st.n), st.iters)
	weights := st.scrWeights
	for pat := 0; pat < numPat; pat++ {
		w := 0.0
		for a := 0; a < st.numAttrs; a++ {
			if pat&(1<<a) != 0 {
				w += math.Log2(m[a] / u[a])
			} else {
				w += math.Log2((1 - m[a]) / (1 - u[a]))
			}
		}
		weights[pat] = w
	}
	credit := 0.0
	for i := 0; i < st.n; i++ {
		row := st.cnt[i*numPat : (i+1)*numPat]
		best := math.Inf(-1)
		count := int32(0)
		for pat, c := range row {
			if c == 0 {
				continue
			}
			w := weights[pat]
			switch {
			case w > best:
				best, count = w, c
			case w == best:
				count += c
			}
		}
		if weights[st.truePat[i]] == best && row[st.truePat[i]] > 0 {
			credit += 1 / float64(count)
		}
	}
	return 100 * credit / float64(st.n)
}
