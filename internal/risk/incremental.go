package risk

// Incremental (delta) evaluation for the disclosure-risk battery. See the
// twin file internal/infoloss/incremental.go for the overall contract:
// Prepare builds a per-masked-file State, Apply advances it by a cell
// change list and returns the measure's value, and every state keeps
// exact integer summaries so delta values are bit-for-bit identical to a
// full recompute.
//
// Coverage:
//
//   - ID keeps one integer (the disclosed-window count) and per-attribute
//     contribution tables that depend only on the original file.
//   - DBRL caches each original record's nearest-masked-record distance,
//     tie count and true-match distance. A cell change moves one masked
//     record, so exactly one distance per original record is replaced;
//     only when the unique minimum is displaced upward does one row
//     rescan (O(n)) occur — rare in practice, so updates are ~O(n·attrs)
//     per changed cell.
//   - PRL caches each original record's histogram of agreement patterns
//     against all masked records. A cell change flips one pattern bit for
//     the original records whose value matches the old or new category;
//     EM then reruns over the (tiny) pattern tally and records are
//     re-linked from their histograms in O(n·2^attrs).
//   - RSRL keeps the masked file's per-attribute category frequencies,
//     mid-ranks, window intervals and candidate bitsets, plus per-profile
//     candidate counts. A cell change shifts only the mid-ranks between the
//     old and new category, so the contiguous windows are re-derived by an
//     O(card) two-pointer sweep, candidate unions are patched at the moved
//     interval boundaries, and only profiles holding an affected category
//     re-intersect (see rsrl_incremental.go).
//
// All four states support intruder-side stride sampling (MaxRecords)
// directly: the sampled record set is deterministic, so the sampled
// summaries (DBRL's per-record rows and PRL's pattern histograms exist
// only for sampled records) are patched exactly like the full ones and
// there is no full-recompute fallback left in the default battery.
//
// All four measures are also Reversible: ApplyUndo journals enough to
// roll a change list back exactly, so generation-batch evaluation
// (score.Evaluator.EvaluateBatch) can score every offspring of a
// generation against one shared parent state instead of cloning it per
// offspring. ID, DBRL and PRL undo by replaying the inverted change list
// in reverse through the same exact integer patches (their summaries are
// pure functions of the masked columns); RSRL undoes through word-level
// bitset-diff journaling plus scalar row snapshots (see
// rsrl_incremental.go), skipping the candidate re-intersections entirely.
//
// Measured at bench_test.go scale (500 records), a single-cell Apply costs
// ~3.3µs against ~56µs for the bitset-accelerated full RSRL recompute
// (~17x, the last hot recompute of the per-offspring path) and runs
// allocation-free — the states keep reusable scratch buffers, so cloning a
// parent state is the only steady-state allocation of the delta chain
// (and the batch path's apply/undo avoids even that).

import (
	"math"

	"evoprot/internal/dataset"
)

// State is an opaque per-masked-dataset summary maintained by an
// Incremental measure. States are single-goroutine values; use CloneState
// to branch one.
type State interface {
	// CloneState returns an independent deep copy.
	CloneState() State
}

// Incremental is the capability interface for measures that can rescore a
// masked dataset in time roughly proportional to the number of changed
// cells rather than quadratic in the dataset size.
type Incremental interface {
	Measure
	// Prepare builds the incremental state for masked against orig over
	// the protected attrs. A nil state means the measure cannot run
	// incrementally under its current configuration; callers must fall
	// back to Risk.
	Prepare(orig, masked *dataset.Dataset, attrs []int) State
	// Apply advances state by the given cell changes — which must describe
	// edits to the state's masked file, applied in order — and returns the
	// measure's value for the edited file. An empty change list returns
	// the current value. Apply must not retain changes: callers reuse the
	// backing array across calls.
	Apply(state State, changes []dataset.CellChange) float64
}

// Reversible is the capability interface of Incremental measures whose
// states can advance by a change list and then roll back exactly — the
// primitive behind generation-batch evaluation. See the twin interface
// in internal/infoloss for the full contract.
type Reversible interface {
	Incremental
	// ApplyUndo is Apply with rollback armed: it advances state by
	// changes, returns the measure's value for the edited file, and
	// journals enough to restore the state exactly. At most one
	// ApplyUndo may be pending per state; Undo (or a plain Apply,
	// which commits the pending changes) must intervene before the next.
	ApplyUndo(state State, changes []dataset.CellChange) float64
	// Undo rolls back the pending ApplyUndo, restoring the state bit
	// for bit. With no pending ApplyUndo it is a no-op.
	Undo(state State)
}

// Compile-time capability checks: the whole default battery is
// incremental and reversible.
var (
	_ Reversible = (*IntervalDisclosure)(nil)
	_ Reversible = (*DistanceLinkage)(nil)
	_ Reversible = (*ProbabilisticLinkage)(nil)
	_ Reversible = (*RankIntervalLinkage)(nil)
)

// undoLog is the inverse-replay journal of the ID/DBRL/PRL states: a
// copy of the pending change list, replayed inverted and in reverse by
// Undo. The buffer is owned by the state and reused across generations.
type undoLog struct {
	changes []dataset.CellChange
	active  bool
}

// arm records the pending change list. Apply without undo disarms.
func (u *undoLog) arm(changes []dataset.CellChange) {
	u.changes = append(u.changes[:0], changes...)
	u.active = true
}

// --- ID (interval disclosure) ---

type idState struct {
	n         int
	orig      *dataset.Dataset // read-only
	numAttrs  int
	maxP      int
	pos       map[int]int
	contrib   [][][]int // per attr position: card x card, shared (orig-only)
	disclosed int
	undo      undoLog // pending ApplyUndo journal; never shared by clones
}

// CloneState implements State.
func (s *idState) CloneState() State {
	out := *s
	out.undo = undoLog{}
	return &out
}

// Prepare implements Incremental.
func (id *IntervalDisclosure) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	maxP := id.maxPOrDefault()
	st := &idState{
		n: n, orig: orig, numAttrs: len(attrs), maxP: maxP,
		pos:     make(map[int]int, len(attrs)),
		contrib: make([][][]int, len(attrs)),
	}
	for a, c := range attrs {
		st.pos[c] = a
		st.contrib[a] = idContrib(orig, c, maxP)
		oc := orig.Column(c)
		mc := masked.Column(c)
		for r := 0; r < n; r++ {
			st.disclosed += st.contrib[a][oc[r]][mc[r]]
		}
	}
	return st
}

// patchOne adjusts the disclosed count by one cell change; self-inverse
// under CellChange.Inverted (integer arithmetic only).
func (s *idState) patchOne(ch dataset.CellChange) {
	a := s.pos[ch.Col]
	u := s.orig.At(ch.Row, ch.Col)
	s.disclosed += s.contrib[a][u][ch.New] - s.contrib[a][u][ch.Old]
}

// Apply implements Incremental. A plain Apply commits any pending
// ApplyUndo.
func (id *IntervalDisclosure) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*idState)
	st.undo.active = false
	for _, ch := range changes {
		st.patchOne(ch)
	}
	return idValue(st.disclosed, st.n, st.numAttrs, st.maxP)
}

// ApplyUndo implements Reversible.
func (id *IntervalDisclosure) ApplyUndo(state State, changes []dataset.CellChange) float64 {
	v := id.Apply(state, changes)
	state.(*idState).undo.arm(changes)
	return v
}

// Undo implements Reversible.
func (id *IntervalDisclosure) Undo(state State) {
	st := state.(*idState)
	if !st.undo.active {
		return
	}
	st.undo.active = false
	for k := len(st.undo.changes) - 1; k >= 0; k-- {
		st.patchOne(st.undo.changes[k].Inverted())
	}
}

// --- DBRL (distance-based record linkage) ---

type dbrlState struct {
	n      int
	stride int // intruder-side sampling stride; rows i = 0, stride, 2·stride...
	attrs  []int
	pos    map[int]int
	oc     [][]int     // original protected columns, shared read-only
	mc     [][]int     // masked protected columns, owned
	tables []distTable // shared (schema-only)
	// Per sampled original record (full n-sized arrays; only sampled
	// indices are maintained and read): distance to its nearest masked
	// record, how many masked records tie at that distance, and the
	// distance to its true masked counterpart.
	best     []int64
	count    []int32
	trueDist []int64
	undo     undoLog // pending ApplyUndo journal; never shared by clones
}

// CloneState implements State.
func (s *dbrlState) CloneState() State {
	out := &dbrlState{n: s.n, stride: s.stride, attrs: s.attrs, pos: s.pos, oc: s.oc, tables: s.tables}
	out.mc = make([][]int, len(s.mc))
	for a, col := range s.mc {
		own := make([]int, len(col))
		copy(own, col)
		out.mc[a] = own
	}
	out.best = append([]int64(nil), s.best...)
	out.count = append([]int32(nil), s.count...)
	out.trueDist = append([]int64(nil), s.trueDist...)
	return out
}

// Prepare implements Incremental. Intruder-side sampling (MaxRecords) is
// handled by maintaining rows for the deterministic stride-sampled
// record set only — the same set the sampled full recompute links.
func (dl *DistanceLinkage) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	st := &dbrlState{
		n: n, stride: sampleStride(n, dl.MaxRecords),
		attrs: attrs, pos: make(map[int]int, len(attrs)),
		oc: columns(orig, attrs), mc: columns(masked, attrs),
		tables:   distanceTables(orig, attrs),
		best:     make([]int64, n),
		count:    make([]int32, n),
		trueDist: make([]int64, n),
	}
	for a, c := range attrs {
		st.pos[c] = a
	}
	for i := 0; i < n; i += st.stride {
		st.rescan(i)
		st.trueDist[i] = st.dist(i, i)
	}
	return st
}

// dist returns the mixed categorical distance between original record i
// and masked record j under the state's current masked columns.
func (s *dbrlState) dist(i, j int) int64 {
	var d int64
	for a := range s.tables {
		d += s.tables[a].at(s.oc[a][i], s.mc[a][j])
	}
	return d
}

// rescan recomputes record i's nearest-distance and tie count from
// scratch against the current masked columns.
func (s *dbrlState) rescan(i int) {
	best := int64(1) << 62
	count := int32(0)
	for j := 0; j < s.n; j++ {
		d := s.dist(i, j)
		switch {
		case d < best:
			best, count = d, 1
		case d == best:
			count++
		}
	}
	s.best[i], s.count[i] = best, count
}

// patchOne advances the per-record linkage rows by one cell change. The
// rows are pure functions of the masked columns (minimum, multiplicity
// and true-match distance of each sampled record's distance multiset),
// so replaying inverted changes in reverse restores them exactly.
func (st *dbrlState) patchOne(ch dataset.CellChange) {
	a0 := st.pos[ch.Col]
	j0 := ch.Row
	t := st.tables[a0]
	st.mc[a0][j0] = ch.New
	for i := 0; i < st.n; i += st.stride {
		dOldA, dNewA := t.at(st.oc[a0][i], ch.Old), t.at(st.oc[a0][i], ch.New)
		if dOldA == dNewA && i != j0 {
			continue // the replaced distance is unchanged
		}
		var base int64
		for a := range st.tables {
			if a != a0 {
				base += st.tables[a].at(st.oc[a][i], st.mc[a][j0])
			}
		}
		dOld, dNew := base+dOldA, base+dNewA
		if i == j0 {
			st.trueDist[i] = dNew
		}
		if dOld == dNew {
			continue
		}
		// Replace one element of record i's distance multiset.
		switch {
		case dOld > st.best[i]:
			if dNew < st.best[i] {
				st.best[i], st.count[i] = dNew, 1
			} else if dNew == st.best[i] {
				st.count[i]++
			}
		default: // dOld == st.best[i]; dOld < best is impossible
			if st.count[i] > 1 {
				st.count[i]--
				if dNew < st.best[i] {
					st.best[i], st.count[i] = dNew, 1
				} else if dNew == st.best[i] {
					st.count[i]++
				}
			} else if dNew <= dOld {
				st.best[i] = dNew // still the unique minimum
			} else {
				st.rescan(i) // the unique minimum moved away
			}
		}
	}
}

// value assembles the linkage percentage from the maintained rows with
// the same arithmetic and record order as the (sampled) full Risk.
func (st *dbrlState) value() float64 {
	credit := 0.0
	for i := 0; i < st.n; i += st.stride {
		if st.trueDist[i] == st.best[i] {
			credit += 1 / float64(st.count[i])
		}
	}
	return 100 * credit / float64(sampledCount(st.n, st.stride))
}

// Apply implements Incremental. A plain Apply commits any pending
// ApplyUndo.
func (dl *DistanceLinkage) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*dbrlState)
	st.undo.active = false
	for _, ch := range changes {
		st.patchOne(ch)
	}
	return st.value()
}

// ApplyUndo implements Reversible.
func (dl *DistanceLinkage) ApplyUndo(state State, changes []dataset.CellChange) float64 {
	v := dl.Apply(state, changes)
	state.(*dbrlState).undo.arm(changes)
	return v
}

// Undo implements Reversible.
func (dl *DistanceLinkage) Undo(state State) {
	st := state.(*dbrlState)
	if !st.undo.active {
		return
	}
	st.undo.active = false
	for k := len(st.undo.changes) - 1; k >= 0; k-- {
		st.patchOne(st.undo.changes[k].Inverted())
	}
}

// --- PRL (probabilistic record linkage) ---

type prlState struct {
	n        int
	stride   int // intruder-side sampling stride
	sampled  int // number of sampled original records (histogram rows)
	numAttrs int
	iters    int
	pos      map[int]int
	oc       [][]int   // shared read-only
	mc       [][]int   // owned
	ocByCat  [][][]int // shared: per attr, per category, sampled original record indices
	// cnt[(i/stride)*numPat+pat] counts masked records j with
	// pattern(i,j) == pat, for sampled original records i (the sampled
	// set {0, stride, 2·stride, ...} indexes rows densely as i/stride);
	// patCount aggregates cnt over all sampled i (exact integers in
	// float64).
	cnt      []int32
	patCount []float64
	truePat  []int32 // pattern(i, i) per sampled record, indexed i/stride
	// Reusable Apply scratch (EM buffers and pattern weights), lazily
	// built and never shared: CloneState leaves it nil, so steady-state
	// Apply calls allocate nothing.
	scrWeights       []float64
	scrM, scrU       []float64
	scrMNum, scrUNum []float64
	undo             undoLog // pending ApplyUndo journal; never shared by clones
}

// CloneState implements State.
func (s *prlState) CloneState() State {
	out := &prlState{
		n: s.n, stride: s.stride, sampled: s.sampled,
		numAttrs: s.numAttrs, iters: s.iters, pos: s.pos, oc: s.oc, ocByCat: s.ocByCat,
	}
	out.mc = make([][]int, len(s.mc))
	for a, col := range s.mc {
		own := make([]int, len(col))
		copy(own, col)
		out.mc[a] = own
	}
	out.cnt = append([]int32(nil), s.cnt...)
	out.patCount = append([]float64(nil), s.patCount...)
	out.truePat = append([]int32(nil), s.truePat...)
	return out
}

// Prepare implements Incremental. Intruder-side sampling (MaxRecords) is
// handled by keeping pattern histograms for the deterministic
// stride-sampled record set only, indexed densely by i/stride.
func (pl *ProbabilisticLinkage) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 || len(attrs) > 16 {
		return nil
	}
	if 1<<len(attrs) > n {
		// The per-record pattern histograms cost O(n·2^attrs) to store,
		// clone and re-link; once the pattern space outgrows the record
		// count the full O(n²·attrs) recompute is the cheaper path.
		return nil
	}
	iters := pl.EMIters
	if iters <= 0 {
		iters = 30
	}
	stride := sampleStride(n, pl.MaxRecords)
	sampled := sampledCount(n, stride)
	numPat := 1 << len(attrs)
	st := &prlState{
		n: n, stride: stride, sampled: sampled,
		numAttrs: len(attrs), iters: iters,
		pos: make(map[int]int, len(attrs)),
		oc:  columns(orig, attrs), mc: columns(masked, attrs),
		cnt:      make([]int32, sampled*numPat),
		patCount: make([]float64, numPat),
		truePat:  make([]int32, sampled),
	}
	st.ocByCat = make([][][]int, len(attrs))
	for a, c := range attrs {
		st.pos[c] = a
		card := orig.Schema().Attr(c).Cardinality()
		st.ocByCat[a] = make([][]int, card)
		for i := 0; i < n; i += stride {
			v := st.oc[a][i]
			st.ocByCat[a][v] = append(st.ocByCat[a][v], i)
		}
	}
	for i := 0; i < n; i += stride {
		si := i / stride
		row := st.cnt[si*numPat : (si+1)*numPat]
		for j := 0; j < n; j++ {
			row[pattern(i, j, st.oc, st.mc)]++
		}
		st.truePat[si] = int32(pattern(i, i, st.oc, st.mc))
		for pat, c := range row {
			st.patCount[pat] += float64(c)
		}
	}
	return st
}

// patchOne advances the pattern histograms by one cell change. All
// tallies are exact integers and pure functions of the masked columns,
// so replaying inverted changes in reverse restores them exactly.
func (st *prlState) patchOne(ch dataset.CellChange) {
	numPat := 1 << st.numAttrs
	a0 := st.pos[ch.Col]
	j0 := ch.Row
	// Only sampled original records agreeing with the old or new category
	// see their pattern against masked record j0 flip bit a0.
	for _, cat := range [2]int{ch.Old, ch.New} {
		for _, i := range st.ocByCat[a0][cat] {
			patOld := 0
			for a := range st.oc {
				v := st.mc[a][j0]
				if a == a0 {
					v = ch.Old
				}
				if st.oc[a][i] == v {
					patOld |= 1 << a
				}
			}
			patNew := patOld &^ (1 << a0)
			if st.oc[a0][i] == ch.New {
				patNew |= 1 << a0
			}
			si := i / st.stride
			st.cnt[si*numPat+patOld]--
			st.cnt[si*numPat+patNew]++
			st.patCount[patOld]--
			st.patCount[patNew]++
		}
	}
	st.mc[a0][j0] = ch.New
	// The true-match pattern of record j0 itself, when j0 is sampled.
	if j0%st.stride == 0 {
		st.truePat[j0/st.stride] = int32(pattern(j0, j0, st.oc, st.mc))
	}
}

// value re-estimates and re-links from the pattern tallies — identical
// inputs and arithmetic to the (sampled) full Risk, so identical m/u
// estimates, weights and credit.
func (st *prlState) value() float64 {
	numPat := 1 << st.numAttrs
	if st.scrWeights == nil {
		st.scrWeights = make([]float64, numPat)
		st.scrM = make([]float64, st.numAttrs)
		st.scrU = make([]float64, st.numAttrs)
		st.scrMNum = make([]float64, st.numAttrs)
		st.scrUNum = make([]float64, st.numAttrs)
	}
	totalPairs := float64(st.sampled) * float64(st.n)
	m, u := st.scrM, st.scrU
	emEstimateInto(m, u, st.scrMNum, st.scrUNum, st.patCount, totalPairs, float64(st.sampled), st.iters)
	weights := st.scrWeights
	for pat := 0; pat < numPat; pat++ {
		w := 0.0
		for a := 0; a < st.numAttrs; a++ {
			if pat&(1<<a) != 0 {
				w += math.Log2(m[a] / u[a])
			} else {
				w += math.Log2((1 - m[a]) / (1 - u[a]))
			}
		}
		weights[pat] = w
	}
	credit := 0.0
	for si := 0; si < st.sampled; si++ {
		row := st.cnt[si*numPat : (si+1)*numPat]
		best := math.Inf(-1)
		count := int32(0)
		for pat, c := range row {
			if c == 0 {
				continue
			}
			w := weights[pat]
			switch {
			case w > best:
				best, count = w, c
			case w == best:
				count += c
			}
		}
		if weights[st.truePat[si]] == best && row[st.truePat[si]] > 0 {
			credit += 1 / float64(count)
		}
	}
	return 100 * credit / float64(st.sampled)
}

// Apply implements Incremental. A plain Apply commits any pending
// ApplyUndo.
func (pl *ProbabilisticLinkage) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*prlState)
	st.undo.active = false
	for _, ch := range changes {
		st.patchOne(ch)
	}
	return st.value()
}

// ApplyUndo implements Reversible.
func (pl *ProbabilisticLinkage) ApplyUndo(state State, changes []dataset.CellChange) float64 {
	v := pl.Apply(state, changes)
	state.(*prlState).undo.arm(changes)
	return v
}

// Undo implements Reversible. The EM re-estimation and re-link are pure
// reads of the tallies, so undo only reverses the integer patches.
func (pl *ProbabilisticLinkage) Undo(state State) {
	st := state.(*prlState)
	if !st.undo.active {
		return
	}
	st.undo.active = false
	for k := len(st.undo.changes) - 1; k >= 0; k-- {
		st.patchOne(st.undo.changes[k].Inverted())
	}
}
