package risk

import (
	"evoprot/internal/dataset"
)

// DistanceLinkage is distance-based record linkage (DBRL): every original
// record is linked to its nearest masked record under a mixed categorical
// distance — rank displacement |u−v|/(card−1) on ordered attributes, 0/1
// on nominal ones. A record is re-identified when its true masked
// counterpart is among the nearest; ties earn fractional credit 1/|ties|,
// the expected success of an intruder breaking ties at random. The result
// is the percentage of re-identified records.
type DistanceLinkage struct {
	// MaxRecords caps the number of original records linked (deterministic
	// stride sampling; see sampling.go). 0 links every record exactly.
	MaxRecords int
}

// Name implements Measure.
func (dl *DistanceLinkage) Name() string { return "DBRL" }

// Risk implements Measure.
func (dl *DistanceLinkage) Risk(orig, masked *dataset.Dataset, attrs []int) float64 {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	oc, mc := columns(orig, attrs), columns(masked, attrs)
	tables := distanceTables(orig, attrs)
	stride := sampleStride(n, dl.MaxRecords)

	credit := 0.0
	for i := 0; i < n; i += stride {
		best := int64(1) << 62
		count := 0
		containsTrue := false
		for j := 0; j < n; j++ {
			var d int64
			for a := range tables {
				d += tables[a].at(oc[a][i], mc[a][j])
			}
			switch {
			case d < best:
				best, count, containsTrue = d, 1, j == i
			case d == best:
				count++
				if j == i {
					containsTrue = true
				}
			}
		}
		if containsTrue {
			credit += 1 / float64(count)
		}
	}
	return 100 * credit / float64(sampledCount(n, stride))
}

// columns extracts the given columns of d as int slices.
func columns(d *dataset.Dataset, attrs []int) [][]int {
	out := make([][]int, len(attrs))
	for a, c := range attrs {
		out[a] = d.Column(c)
	}
	return out
}

// distTable is a dense card×card matrix of integer-scaled category
// distances. Integer distances keep tie detection exact — float sums of
// per-attribute fractions would make "equal distance" depend on rounding.
type distTable struct {
	card int
	d    []int64
}

func (t distTable) at(u, v int) int64 { return t.d[u*t.card+v] }

// scaleUnit is one full category-range of distance. It is divisible by
// card-1 for every cardinality up to 25 (the largest domain in the paper's
// datasets: BUILT), so ordered distances stay exact integers.
const scaleUnit = 720720

// distanceTables precomputes per-attribute category distance tables:
// ordered attributes use rank displacement scaled by scaleUnit/(card−1),
// nominal attributes 0/scaleUnit.
func distanceTables(d *dataset.Dataset, attrs []int) []distTable {
	out := make([]distTable, len(attrs))
	for a, c := range attrs {
		attr := d.Schema().Attr(c)
		card := attr.Cardinality()
		t := distTable{card: card, d: make([]int64, card*card)}
		for u := 0; u < card; u++ {
			for v := 0; v < card; v++ {
				var dist int64
				if attr.Ordered() && card > 1 {
					gap := u - v
					if gap < 0 {
						gap = -gap
					}
					dist = int64(gap) * scaleUnit / int64(card-1)
				} else if u != v {
					dist = scaleUnit
				}
				t.d[u*card+v] = dist
			}
		}
		out[a] = t
	}
	return out
}
