package serve

import (
	"encoding/json"
	"fmt"
)

// The methods below are the coordinator surface: a cluster coordinator
// runs a Server for admission, recovery, the job table and the public
// API, but never Start()s the in-process pool — remote workers execute
// leased jobs and persist through the coordinator's store handler
// instead. These hooks fold those out-of-process writes back into the
// live state (status cache, event counters, streamer wakeups) and expose
// the two queue-side operations a lease layer needs: returning an
// expired lease's job to the queue and reporting a pending DELETE so the
// holder can cancel instead of finishing doomed work.

// JobSnapshot returns the live status of job id, false when unknown.
func (s *Server) JobSnapshot(id string) (JobStatus, bool) {
	j := s.job(id)
	if j == nil {
		return JobStatus{}, false
	}
	return j.snapshotStatus(), true
}

// CancelRequested reports whether a client DELETE arrived for job id —
// the signal a coordinator forwards on lease renewals so the worker
// cancels the run and finalizes the partial result.
func (s *Server) CancelRequested(id string) bool {
	j := s.job(id)
	return j != nil && j.clientCancelled()
}

// RequeueJob returns a non-terminal job to the queue: the lease-expiry
// and worker-handoff path, mirroring boot recovery. A job caught running
// counts a resumption (its next leaseholder resumes from the last
// checkpoint); a job that reached a terminal state in the meantime — the
// worker finished just before its lease was reaped — is left alone.
func (s *Server) RequeueJob(id string) error {
	j := s.job(id)
	if j == nil {
		return fmt.Errorf("serve: unknown job %s", id)
	}
	j.mu.Lock()
	if j.status.State.Terminal() {
		j.mu.Unlock()
		return nil
	}
	if j.status.State == StateRunning {
		j.status.Resumes++
	}
	j.status.State = StateQueued
	s.persistStatusLocked(j)
	gen := j.status.Generation
	pri := j.status.Spec.Priority
	j.mu.Unlock()
	if !s.queue.ForcePush(id, pri) {
		return fmt.Errorf("serve: job %s: queue refused requeue (closed)", id)
	}
	s.cfg.Logf("serve: job %s requeued at generation %d", id, gen)
	return nil
}

// SyncJobStatus replaces job id's cached status with a status document a
// remote worker just persisted through the storage seam — the worker's
// engine is authoritative for a leased job's lifecycle. Unparseable
// documents are logged and dropped; the cache then lags until the next
// good write, the same failure mode as a missed poll.
func (s *Server) SyncJobStatus(id string, raw []byte) {
	j := s.job(id)
	if j == nil {
		return
	}
	var status JobStatus
	if err := json.Unmarshal(raw, &status); err != nil {
		s.cfg.Logf("serve: job %s: unreadable remote status: %v", id, err)
		return
	}
	j.mu.Lock()
	j.status = status
	j.mu.Unlock()
	if status.State.Terminal() {
		j.log.finish()
	}
}

// NoteJobEvents advances job id's live event counters by a remote append
// of events lines totalling size bytes, waking any attached streamers —
// they read the grown feed straight from the shared store.
func (s *Server) NoteJobEvents(id string, events uint64, size int64) {
	if j := s.job(id); j != nil {
		j.log.noteRemote(events, size)
	}
}

// ResyncJobEvents recounts job id's feed from the store after a remote
// truncate (a re-leased worker rewinding uncheckpointed events).
func (s *Server) ResyncJobEvents(id string) {
	j := s.job(id)
	if j == nil {
		return
	}
	if err := j.log.resync(); err != nil {
		s.cfg.Logf("serve: job %s: recounting event feed: %v", id, err)
	}
}
