// Package serve is the optimization job service behind cmd/evoprotd: an
// HTTP layer over the evoprot Runner that accepts JSON job specs, runs
// them on a bounded worker pool fed by a pluggable JobQueue, streams
// every run's per-generation events (replayable from any offset, as
// NDJSON or SSE), and persists enough — spec, dataset, status, event
// log, checkpoints — that a restarted server resumes in-flight jobs from
// their last migration snapshot instead of losing them.
//
// Persistence goes through the storage.Store seam: the filesystem store
// by default (byte-for-byte the historical data-dir layout), an
// in-memory store for tests and ephemeral deployments, or any other
// conforming backend via Config.Store. No handler or worker touches the
// filesystem directly.
//
// The service is multi-tenant under load: an optional Keyring puts the
// API behind per-tenant keys (jobs are invisible across tenants),
// token-bucket rate limits and active-job quotas answer per-tenant
// breaches with 429 without touching other tenants, job priorities
// preempt the lowest-priority running job through the crash-safe
// checkpoint/requeue/resume path (provably without changing its
// result), finished jobs' data is garbage-collected after a TTL, and
// each event-stream subscriber is bounded by a buffer + stall window so
// a stuck consumer cannot pin a feed reader. All of it is opt-in; the
// zero Config is the historical single-tenant open service.
//
// Restart semantics: stopping the server does not cancel jobs, it
// interrupts them. The runner's final checkpoint write on interruption
// persists the exact cancellation-point state, the job stays non-terminal
// in the store, and the next boot re-enqueues it with its remaining
// generation budget; a hard crash instead resumes from the last periodic
// checkpoint, bounding the loss to one checkpoint interval. Client
// cancellation (DELETE) is the terminal variant: the partial result is
// finalized and kept.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"evoprot"
	"evoprot/internal/storage"
)

// Defaults for Config's zero values.
const (
	DefaultWorkers         = 2
	DefaultQueueDepth      = 64
	DefaultCheckpointEvery = 25
	DefaultMaxRows         = 1 << 20
	// DefaultStreamBuffer is the per-subscriber event-stream buffer in
	// events: how far a consumer may fall behind the feed pump before the
	// stall clock starts against it.
	DefaultStreamBuffer = 256
	// DefaultStreamStall is how long a subscriber with a full buffer may
	// block before the server drops the connection (the feed is durable —
	// a dropped consumer reconnects at its offset and loses nothing).
	DefaultStreamStall = 30 * time.Second
)

// Config parameterizes a Server. Zero values select the defaults above.
type Config struct {
	// DataDir roots the default filesystem store. Required unless Store
	// is set, ignored when it is.
	DataDir string
	// Store selects the persistence backend; nil selects the filesystem
	// store over DataDir (the historical on-disk layout, byte for byte).
	Store storage.Store
	// Queue overrides the admission queue; nil selects the bounded FIFO
	// of depth QueueDepth.
	Queue JobQueue
	// Workers bounds how many jobs evolve concurrently.
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// submissions beyond it are refused with 503. Ignored when Queue is
	// set — a custom queue brings its own admission policy.
	QueueDepth int
	// CheckpointEvery is the minimum generation distance between periodic
	// checkpoint writes — the most work a hard crash can lose.
	CheckpointEvery int
	// AllowDatasetPath permits specs naming server-side CSV paths. Off by
	// default: a network-reachable server should not read arbitrary local
	// files on request.
	AllowDatasetPath bool
	// MaxRows bounds a spec's built-in dataset scaling — admission
	// materializes the dataset synchronously, so an unbounded row count
	// would let one request allocate arbitrary memory.
	MaxRows int
	// Keyring enables API-key auth: every /v1 request must present a key
	// the ring resolves to a tenant id, jobs belong to the submitting
	// tenant, and one tenant never sees another's jobs. Nil keeps the
	// historical anonymous mode — no auth, one shared unlimited tenant.
	Keyring *Keyring
	// TenantRate rate-limits each tenant's submissions (token bucket, in
	// submissions per second); breaches answer 429 + Retry-After.
	// 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the rate limiter's bucket capacity; 0 derives it
	// from TenantRate (at least 1).
	TenantBurst int
	// TenantMaxActive caps one tenant's queued + running jobs; breaches
	// answer 429 + Retry-After. 0 disables the quota.
	TenantMaxActive int
	// TTL garbage-collects terminal jobs: once a job has been done,
	// cancelled or failed for longer than TTL, the GC sweep deletes its
	// whole data-dir entry through the storage seam and drops it from the
	// job table. 0 keeps jobs forever (the historical behavior).
	TTL time.Duration
	// GCEvery is the garbage-collection sweep interval; 0 selects TTL/4
	// (bounded below at one second). Ignored when TTL is 0.
	GCEvery time.Duration
	// StreamBuffer is the per-subscriber event-stream buffer in events;
	// 0 selects DefaultStreamBuffer.
	StreamBuffer int
	// StreamStall is how long a subscriber whose buffer is full may stall
	// the pump before being disconnected; 0 selects DefaultStreamStall.
	StreamStall time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if c.DataDir == "" && c.Store == nil {
		return c, fmt.Errorf("serve: Config.DataDir or Config.Store is required")
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = DefaultCheckpointEvery
	}
	if c.MaxRows <= 0 {
		c.MaxRows = DefaultMaxRows
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = DefaultStreamBuffer
	}
	if c.StreamStall <= 0 {
		c.StreamStall = DefaultStreamStall
	}
	if c.TTL > 0 && c.GCEvery <= 0 {
		c.GCEvery = c.TTL / 4
		if c.GCEvery < time.Second {
			c.GCEvery = time.Second
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// isNotExist reports whether err means the store has no such key.
func isNotExist(err error) bool { return errors.Is(err, storage.ErrNotExist) }

// Cancellation causes, distinguished through context.Cause: a shutdown
// leaves the job resumable in the store, a client cancel finalizes it,
// and a preemption checkpoints the job back onto the queue so a
// higher-priority submission can take its worker.
var (
	errShutdown  = errors.New("serve: server shutting down")
	errCancelled = errors.New("serve: job cancelled by client")
	errPreempted = errors.New("serve: job preempted by a higher-priority submission")
)

// job is the in-memory face of one persisted job.
type job struct {
	id  string
	log *eventLog
	agg evoprot.Aggregator // the job's shared fitness aggregation (see jobAggregator)

	mu           sync.Mutex
	status       JobStatus
	cancel       context.CancelCauseFunc // non-nil while a worker runs it
	clientCancel bool                    // DELETE arrived; wins over shutdown races
	sincePers    int                     // events since the last status persist
	logErr       error                   // first event-log append failure
	heldDone     []evoprot.Event         // island-Done events held back under a preemption (see onEvent)
}

// priority returns the job's submission priority.
func (j *job) priority() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Spec.Priority
}

// jobAggregator resolves the job's shared fitness aggregation — the
// metric live best-so-far tracking judges island bests under. Islands
// with per-island aggregator overrides emit Stats scored on their own
// scales, so comparing raw Min values across islands would mix scales;
// re-combining each island best's (IL, DR) pair under the job's own
// aggregator keeps the live status consistent with the final result
// (which islands.Runner judges the same way). The spec was validated at
// admission; an unresolvable name cannot reach here, and the fallback
// only guards recovery of a hand-corrupted status file.
func jobAggregator(spec evoprot.JobSpec) evoprot.Aggregator {
	name := spec.Aggregator
	if name == "" {
		name = evoprot.DefaultAggregatorName
	}
	agg, err := evoprot.AggregatorByName(name)
	if err != nil {
		return evoprot.Max{}
	}
	return agg
}

// clientCancelled reports whether a DELETE was received for the job.
func (j *job) clientCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.clientCancel
}

// snapshotStatus returns a copy of the current status with the live event
// count folded in.
func (j *job) snapshotStatus() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	count, _, _ := j.log.state()
	st.Events = count
	return st
}

// Server owns the job table, the queue and the worker pool. Build with
// New (which also recovers persisted jobs), install Handler somewhere,
// call Start, and Stop on the way out. The embedded engine is the
// execution half — shared, via Executor, with cluster workers.
type Server struct {
	*engine
	cfg     Config
	queue   JobQueue
	limiter *tenantLimiter

	ctx      context.Context
	shutdown context.CancelCauseFunc
	wg       sync.WaitGroup

	// stopping is closed when Stop begins so event streamers of
	// in-flight jobs unblock promptly (their logs never finish on the
	// shutdown path — the jobs stay resumable).
	stopping chan struct{}
	stopOnce sync.Once

	mu   sync.Mutex
	jobs map[string]*job
}

// New builds a server over the configured store (the filesystem store at
// cfg.DataDir by default) and recovers every persisted job: terminal
// jobs become queryable history, non-terminal ones are re-enqueued
// (oldest first) to resume from their last checkpoint.
func New(cfg Config) (*Server, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	be := c.Store
	if be == nil {
		fs, err := storage.NewFS(c.DataDir)
		if err != nil {
			return nil, fmt.Errorf("serve: opening data dir: %w", err)
		}
		be = fs
	}
	queue := c.Queue
	if queue == nil {
		queue = NewFIFOQueue(c.QueueDepth)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		engine:   &engine{st: &store{be: be}, ckptEvery: c.CheckpointEvery, logf: c.Logf},
		cfg:      c,
		queue:    queue,
		limiter:  newTenantLimiter(c.TenantRate, c.TenantBurst),
		ctx:      ctx,
		shutdown: cancel,
		stopping: make(chan struct{}),
		jobs:     make(map[string]*job),
	}
	// A preempted job's worker hands it straight back to the queue at its
	// own priority; the higher-priority submission that displaced it pops
	// first.
	s.engine.requeue = func(j *job) {
		if !s.queue.ForcePush(j.id, j.priority()) {
			s.cfg.Logf("serve: job %s: queue refused preemption requeue (closed)", j.id)
		}
	}
	if err := s.recover(); err != nil {
		cancel(errShutdown)
		return nil, err
	}
	return s, nil
}

// recover loads persisted jobs and re-enqueues unfinished work. A job
// whose status document is unreadable or corrupt is skipped — logged,
// left in the store for the operator — without taking down its
// neighbors or the boot.
func (s *Server) recover() error {
	ids, err := s.st.listJobIDs()
	if err != nil {
		return err
	}
	var pending []*job
	for _, id := range ids {
		var status JobStatus
		if err := s.st.loadJSON(id, statusKey, &status); err != nil {
			s.cfg.Logf("serve: skipping job %s: unreadable status: %v", id, err)
			continue
		}
		log, err := openEventLog(s.st, id)
		if err != nil {
			s.cfg.Logf("serve: skipping job %s: event log: %v", id, err)
			continue
		}
		j := &job{id: id, log: log, agg: jobAggregator(status.Spec), status: status}
		if status.State.Terminal() {
			log.finish()
		} else {
			// Interrupted mid-run or never started: back to the queue. The
			// persisted state becomes queued so clients see the truth while
			// it waits for a worker.
			if status.State == StateRunning {
				j.status.Resumes++
			}
			j.status.State = StateQueued
			if err := s.st.saveJSON(id, statusKey, j.status); err != nil {
				s.cfg.Logf("serve: job %s: persisting recovered status: %v", id, err)
			}
			pending = append(pending, j)
		}
		s.jobs[id] = j
	}
	sort.Slice(pending, func(a, b int) bool {
		return pending[a].status.Created.Before(pending[b].status.Created)
	})
	for _, j := range pending {
		s.queue.ForcePush(j.id, j.status.Spec.Priority)
		s.cfg.Logf("serve: recovered job %s at generation %d", j.id, j.status.Generation)
	}
	return nil
}

// Start launches the worker pool and, when a TTL is configured, the
// garbage collector.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cfg.TTL > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
}

// gcLoop sweeps expired terminal jobs every GCEvery until shutdown.
func (s *Server) gcLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.GCEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopping:
			return
		case <-t.C:
			s.gcSweep(time.Now())
		}
	}
}

// gcSweep deletes every terminal job whose Finished timestamp is more
// than TTL in the past: the store entry goes first (through the seam —
// checkpoint, feed, result, dataset, all of it), then the job leaves the
// in-memory table. A failed delete leaves the job listed so the next
// sweep retries it.
func (s *Server) gcSweep(now time.Time) (collected int) {
	cutoff := now.Add(-s.cfg.TTL)
	type victim struct {
		id       string
		state    jobState
		finished time.Time
	}
	s.mu.Lock()
	var expired []victim
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.status.State.Terminal() && !j.status.Finished.IsZero() && j.status.Finished.Before(cutoff) {
			expired = append(expired, victim{id: j.id, state: j.status.State, finished: j.status.Finished})
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, v := range expired {
		if err := s.st.be.Delete(v.id); err != nil {
			s.cfg.Logf("serve: job %s: gc delete: %v", v.id, err)
			continue
		}
		s.mu.Lock()
		delete(s.jobs, v.id)
		s.mu.Unlock()
		collected++
		s.cfg.Logf("serve: job %s garbage-collected (%s, finished %s ago)",
			v.id, v.state, now.Sub(v.finished).Round(time.Second))
	}
	return collected
}

// Stop interrupts running jobs (leaving them resumable in the store),
// unblocks event streamers, stops the workers, and waits for them up to
// ctx's deadline.
func (s *Server) Stop(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stopping) })
	s.queue.Close()
	s.shutdown(errShutdown)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: workers still draining: %w", ctx.Err())
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		id, ok := s.queue.Pop()
		if !ok {
			return
		}
		j := s.job(id)
		if j == nil || !s.claim(j) {
			continue // cancelled while queued, or gone
		}
		s.runJob(s.ctx, j)
	}
}

// job returns the in-memory job for id, nil when unknown.
func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// listJobs returns status snapshots of every job, newest first.
func (s *Server) listJobs() []JobStatus {
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(all))
	for i, j := range all {
		out[i] = j.snapshotStatus()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Created.After(out[b].Created) })
	return out
}

// specDatasetPath is the DatasetPath recorded in a persisted spec whose
// dataset was materialized into the store at admission. On path-backed
// stores it is the dataset's real absolute path — the historical format,
// valid for clients that round-trip the spec. Stores without paths get a
// synthetic "mem:<job>/dataset.csv" marker: execution always reloads the
// dataset from the store by key, so the marker only has to keep the spec
// a valid one-source spec, never to resolve.
func (s *Server) specDatasetPath(id string) string {
	if p, ok := s.st.be.(storage.Pather); ok {
		return p.Path(id, datasetFileName)
	}
	return "mem:" + id + "/" + datasetFileName
}

// tenantActive counts tenant's queued + running jobs — the quota the
// TenantMaxActive cap is enforced against.
func (s *Server) tenantActive(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	active := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.status.Tenant == tenant && !j.status.State.Terminal() {
			active++
		}
		j.mu.Unlock()
	}
	return active
}

// maybePreempt checkpoints and requeues the lowest-priority running job
// when a priority-pri submission would otherwise wait behind a full
// worker pool. The victim's cancellation cause routes it through the
// crash-safe resume machinery — final checkpoint, persisted queued,
// ForcePush at its own priority — so its eventual completion is
// bit-identical to a run that was never preempted. Nothing happens when
// a worker is idle or no running job ranks strictly below pri.
func (s *Server) maybePreempt(pri int) {
	s.mu.Lock()
	var running []*job
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.status.State == StateRunning && j.cancel != nil {
			running = append(running, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	if len(running) < s.cfg.Workers {
		return
	}
	var victim *job
	victimPri := 0
	for _, j := range running {
		if p := j.priority(); victim == nil || p < victimPri {
			victim, victimPri = j, p
		}
	}
	if victim == nil || victimPri >= pri {
		return
	}
	victim.mu.Lock()
	cancel := victim.cancel
	victim.mu.Unlock()
	if cancel != nil {
		s.cfg.Logf("serve: preempting job %s (priority %d) for a priority-%d submission", victim.id, victimPri, pri)
		cancel(errPreempted)
	}
}

// submit persists and enqueues a validated spec whose dataset has already
// been materialized; it returns the new job's status snapshot. tenant is
// the authenticated submitter ("" in anonymous mode) — rate and quota
// checks already passed in the handler.
func (s *Server) submit(tenant string, spec evoprot.JobSpec, orig *evoprot.Dataset) (JobStatus, error) {
	id, err := newJobID()
	if err != nil {
		return JobStatus{}, err
	}
	cleanup := func() {
		if err := s.st.be.Delete(id); err != nil {
			s.cfg.Logf("serve: job %s: cleaning up refused submission: %v", id, err)
		}
	}
	// The dataset is persisted once at admission and runs/resumes always
	// reload it from the store, so an inline upload need not travel in the
	// spec. The persisted spec points at the stored dataset instead, so it
	// stays a valid one-source spec for the execution-time Options()
	// bridge and names the true dataset even if a client round-trips it.
	if spec.DatasetCSV != "" || spec.DatasetPath != "" {
		spec.DatasetCSV = ""
		spec.DatasetPath = s.specDatasetPath(id)
	}
	if err := s.st.saveCSV(id, datasetFileName, orig); err != nil {
		cleanup()
		return JobStatus{}, err
	}
	log, err := openEventLog(s.st, id)
	if err != nil {
		cleanup()
		return JobStatus{}, err
	}
	j := &job{
		id:  id,
		log: log,
		agg: jobAggregator(spec),
		status: JobStatus{
			ID:      id,
			State:   StateQueued,
			Spec:    spec,
			Created: time.Now().UTC(),
			Tenant:  tenant,
		},
	}
	if err := s.st.saveJSON(id, statusKey, j.status); err != nil {
		log.finish()
		cleanup()
		return JobStatus{}, err
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	if !s.queue.Push(id, spec.Priority) {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		log.finish()
		cleanup()
		return JobStatus{}, errQueueFull
	}
	if spec.Priority > 0 {
		s.maybePreempt(spec.Priority)
	}
	s.cfg.Logf("serve: job %s accepted (queue depth %d)", id, s.queue.Depth())
	return j.snapshotStatus(), nil
}

var errQueueFull = errors.New("serve: job queue is full")

// cancelJob handles DELETE: queued jobs finalize immediately, running
// jobs get their context cancelled (the worker finalizes with the partial
// result), terminal jobs are left alone.
func (s *Server) cancelJob(j *job) JobStatus {
	j.mu.Lock()
	switch j.status.State {
	case StateQueued:
		j.status.State = StateCancelled
		j.status.Finished = time.Now().UTC()
		s.persistStatusLocked(j)
		j.mu.Unlock()
		j.log.finish()
		return j.snapshotStatus()
	case StateRunning:
		// The flag, not just the context cause, records the intent: a
		// DELETE racing a server shutdown must still finalize the job as
		// cancelled (the client was told 202) rather than leave it
		// resumable.
		j.clientCancel = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(errCancelled)
		}
		return j.snapshotStatus()
	default:
		j.mu.Unlock()
		return j.snapshotStatus()
	}
}

// newJobID returns a 16-hex-digit random job id.
func newJobID() (string, error) {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", err
	}
	return "j" + hex.EncodeToString(buf[:]), nil
}
