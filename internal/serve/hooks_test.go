package serve

// In-package coverage of the coordinator surface: the Executor (the
// execution half a cluster worker wraps around a remote store) and the
// hooks that fold out-of-process writes back into a coordinator's live
// state. The cluster package exercises the same seams over real HTTP;
// these tests pin their contracts at the package boundary.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"evoprot/internal/storage"
)

// queuedJob submits a job on a server whose workers never start, so it
// stays queued in the shared store for an Executor to claim.
func queuedJob(t *testing.T, be storage.Store) (*Server, *httptest.Server, string) {
	t.Helper()
	s, err := New(Config{Store: be, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	status := postJob(t, ts.URL, smallSpec())
	return s, ts, status.ID
}

func TestExecutorRunsPersistedJob(t *testing.T) {
	be := storage.NewMem()
	_, _, id := queuedJob(t, be)

	x := NewExecutor(be, 5, t.Logf)
	done, err := x.Execute(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Generation != smallSpec().Generations {
		t.Fatalf("executed job: state %s, generation %d", done.State, done.Generation)
	}

	// A terminal job comes back untouched, no error.
	again, err := x.Execute(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || again.Resumes != done.Resumes {
		t.Fatalf("re-executing a done job changed it: %+v", again)
	}

	// Unknown jobs are an infrastructure error, not a zero status.
	if _, err := x.Execute(context.Background(), "ghost"); err == nil {
		t.Fatal("executing an unknown job succeeded")
	}
}

func TestExecutorInterruptLeavesResumable(t *testing.T) {
	be := storage.NewMem()
	_, _, id := queuedJob(t, be)

	// Interrupt the run shortly after it starts: ErrInterrupted is the
	// shutdown cause, so the job must persist resumable, not terminal.
	x := NewExecutor(be, 5, t.Logf)
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel(ErrInterrupted)
	}()
	interrupted, err := x.Execute(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if interrupted.State.Terminal() {
		t.Fatalf("interrupted job persisted terminal %s", interrupted.State)
	}

	// A second executor claims and finishes it — the worker-handoff flow.
	// Claiming requires the queued state a coordinator's requeue restores.
	var status JobStatus
	st := &store{be: be}
	if err := st.loadJSON(id, statusKey, &status); err != nil {
		t.Fatal(err)
	}
	status.State = StateQueued
	if err := st.saveJSON(id, statusKey, status); err != nil {
		t.Fatal(err)
	}
	done, err := NewExecutor(be, 5, t.Logf).Execute(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Generation != smallSpec().Generations {
		t.Fatalf("handed-off job: state %s, generation %d", done.State, done.Generation)
	}
}

func TestCoordinatorHooks(t *testing.T) {
	be := storage.NewMem()
	s, _, id := queuedJob(t, be)

	if _, ok := s.JobSnapshot("ghost"); ok {
		t.Fatal("snapshot of an unknown job")
	}
	snap, ok := s.JobSnapshot(id)
	if !ok || snap.State != StateQueued {
		t.Fatalf("snapshot: %+v, %v", snap, ok)
	}

	if s.CancelRequested(id) || s.CancelRequested("ghost") {
		t.Fatal("phantom cancel request")
	}
	j := s.job(id)
	j.mu.Lock()
	j.clientCancel = true
	j.mu.Unlock()
	if !s.CancelRequested(id) {
		t.Fatal("pending DELETE not reported")
	}

	// RequeueJob on a job caught running counts the resumption its next
	// leaseholder will perform; requeueing an already-queued job does not.
	if err := s.RequeueJob(id); err != nil {
		t.Fatal(err)
	}
	if snap, _ = s.JobSnapshot(id); snap.Resumes != 0 {
		t.Fatalf("requeue of a queued job counted %d resumes", snap.Resumes)
	}
	j.mu.Lock()
	j.status.State = StateRunning
	j.mu.Unlock()
	if err := s.RequeueJob(id); err != nil {
		t.Fatal(err)
	}
	snap, _ = s.JobSnapshot(id)
	if snap.State != StateQueued || snap.Resumes != 1 {
		t.Fatalf("requeue of a running job: state %s, resumes %d", snap.State, snap.Resumes)
	}
	if err := s.RequeueJob("ghost"); err == nil {
		t.Fatal("requeueing an unknown job succeeded")
	}

	// SyncJobStatus installs a remote worker's status document; garbage is
	// dropped, not installed.
	remote := snap
	remote.State = StateDone
	remote.Generation = 99
	remote.Finished = time.Now().UTC()
	raw, err := json.Marshal(remote)
	if err != nil {
		t.Fatal(err)
	}
	s.SyncJobStatus(id, raw)
	if snap, _ = s.JobSnapshot(id); snap.State != StateDone || snap.Generation != 99 {
		t.Fatalf("synced status not installed: %+v", snap)
	}
	s.SyncJobStatus(id, []byte("{not json"))
	if snap, _ = s.JobSnapshot(id); snap.Generation != 99 {
		t.Fatalf("garbage status overwrote the cache: %+v", snap)
	}
	s.SyncJobStatus("ghost", raw) // unknown id: ignored, not fatal

	// NoteJobEvents advances the live feed counters for remotely-appended
	// lines; ResyncJobEvents recounts from the store after a truncate.
	line := []byte(`{"seq":0}` + "\n")
	if err := be.Append(id, eventsKey, line); err != nil {
		t.Fatal(err)
	}
	s.NoteJobEvents(id, 1, int64(len(line)))
	if snap, _ = s.JobSnapshot(id); snap.Events != 1 {
		t.Fatalf("noted event not counted: %d", snap.Events)
	}
	s.ResyncJobEvents(id)
	if snap, _ = s.JobSnapshot(id); snap.Events != 1 {
		t.Fatalf("resync miscounted the feed: %d", snap.Events)
	}
	s.NoteJobEvents("ghost", 1, 1) // unknown id: ignored
	s.ResyncJobEvents("ghost")
}

func TestLoadKeyringFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.txt")
	if err := os.WriteFile(path, []byte("k1 alpha\n# rotation\nk2 alpha\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	k, err := LoadKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	if tenant, ok := k.Resolve("k2"); !ok || tenant != "alpha" {
		t.Fatalf("Resolve(k2) = %q, %v", tenant, ok)
	}

	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("just-a-key\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeyring(bad); err == nil {
		t.Fatal("malformed auth file accepted")
	}
}
