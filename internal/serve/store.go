package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"evoprot"
)

// The on-disk layout, one directory per job under <DataDir>/jobs/<id>/:
//
//	dataset.csv     the materialized original dataset
//	status.json     the last persisted JobStatus (embeds the normalized spec)
//	events.ndjson   the append-only event feed
//	job.ckpt        the runner checkpoint (atomic tmp+rename writes)
//	result.json     the JobResult, written when the job reaches a terminal state
//	best.csv        the best protected dataset found
//
// status.json is written with the same tmp+rename discipline as
// checkpoints, so a crash can leave a stale status but never a torn one;
// recovery treats anything non-terminal as resumable work.

// jobState is a job's lifecycle state.
type jobState string

const (
	// StateQueued: accepted and waiting for a worker (also the persisted
	// state of interrupted jobs re-enqueued at boot).
	StateQueued jobState = "queued"
	// StateRunning: a worker is evolving it.
	StateRunning jobState = "running"
	// StateDone: finished its budget (or stagnated every island).
	StateDone jobState = "done"
	// StateCancelled: stopped by DELETE; a partial result is kept.
	StateCancelled jobState = "cancelled"
	// StateFailed: the run errored; see JobStatus.Error.
	StateFailed jobState = "failed"
)

// terminal reports whether no further work will happen on the job.
func (s jobState) terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// BestSummary is the best-so-far (or final) individual in wire form.
type BestSummary struct {
	// Score is the aggregated fitness (lower is better).
	Score float64 `json:"score"`
	// IL and DR are the information-loss and disclosure-risk components.
	IL float64 `json:"il"`
	DR float64 `json:"dr"`
	// Island is the island that produced it.
	Island int `json:"island"`
	// Origin is the producing operator or seed label; filled when the
	// final population is available (results), empty in live status.
	Origin string `json:"origin,omitempty"`
}

// JobStatus is the wire form of GET /v1/jobs/{id} and the persisted
// status.json.
type JobStatus struct {
	ID    string          `json:"id"`
	State jobState        `json:"state"`
	Spec  evoprot.JobSpec `json:"spec"`
	// Created/Started/Finished timestamp the lifecycle; Started and
	// Finished are zero until reached.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Generation is the largest per-island generation executed so far.
	Generation int `json:"generation"`
	// Events is the number of feed events persisted — the exclusive upper
	// bound of the replayable offset space.
	Events uint64 `json:"events"`
	// Best is the best-so-far summary, nil before the first generation.
	Best *BestSummary `json:"best,omitempty"`
	// StopReason is set once the run ends: completed, stagnated,
	// cancelled or deadline.
	StopReason string `json:"stop_reason,omitempty"`
	// Error carries the failure (or last non-fatal checkpoint error).
	Error string `json:"error,omitempty"`
	// Resumes counts checkpoint resumptions after server restarts.
	Resumes int `json:"resumes"`
}

// JobResult is the wire form of GET /v1/jobs/{id}/result and the
// persisted result.json: the trajectory plus the best protection's
// summary. The protected dataset itself lives in best.csv and is
// inlined by the handler on request.
type JobResult struct {
	ID          string      `json:"id"`
	State       jobState    `json:"state"`
	StopReason  string      `json:"stop_reason"`
	Generations int         `json:"generations"`
	Evaluations int         `json:"evaluations"`
	Migrations  int         `json:"migrations"`
	Islands     int         `json:"islands"`
	BestIsland  int         `json:"best_island"`
	Best        BestSummary `json:"best"`
	// History is the best island's per-generation trajectory.
	History []evoprot.GenStats `json:"history"`
	// DatasetCSV is the best protected dataset, inlined only on the wire.
	DatasetCSV string `json:"dataset_csv,omitempty"`
}

// store resolves the on-disk layout and persists JSON documents
// atomically.
type store struct{ root string }

func newStore(root string) (*store, error) {
	st := &store{root: root}
	if err := os.MkdirAll(st.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating data dir: %w", err)
	}
	return st, nil
}

// datasetFileName is the persisted original dataset; normalized specs of
// CSV-sourced jobs carry it as their DatasetPath.
const datasetFileName = "dataset.csv"

func (st *store) jobsDir() string         { return filepath.Join(st.root, "jobs") }
func (st *store) jobDir(id string) string { return filepath.Join(st.jobsDir(), id) }
func (st *store) datasetPath(id string) string {
	return filepath.Join(st.jobDir(id), datasetFileName)
}
func (st *store) statusPath(id string) string { return filepath.Join(st.jobDir(id), "status.json") }
func (st *store) eventsPath(id string) string { return filepath.Join(st.jobDir(id), "events.ndjson") }
func (st *store) checkpointPath(id string) string {
	return filepath.Join(st.jobDir(id), "job.ckpt")
}
func (st *store) resultPath(id string) string  { return filepath.Join(st.jobDir(id), "result.json") }
func (st *store) bestCSVPath(id string) string { return filepath.Join(st.jobDir(id), "best.csv") }

// saveJSON writes v to path atomically: tmp file, clean close, rename.
func (st *store) saveJSON(path string, v any) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func (st *store) loadJSON(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}

// listJobIDs returns every persisted job id, in no particular order.
func (st *store) listJobIDs() ([]string, error) {
	entries, err := os.ReadDir(st.jobsDir())
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	return ids, nil
}
