package serve

import (
	"bytes"
	"encoding/json"
	"time"

	"evoprot"
	"evoprot/internal/storage"
)

// The persisted layout, one keyspace per job (a directory under
// <root>/jobs/<id>/ on the filesystem store):
//
//	dataset.csv     the materialized original dataset
//	status.json     the last persisted JobStatus (embeds the normalized spec)
//	events.ndjson   the append-only event feed
//	job.ckpt        the runner checkpoint (atomic Put writes)
//	result.json     the JobResult, written when the job reaches a terminal state
//	best.csv        the best protected dataset found
//
// status.json is written through Store.Put — atomic and durable — so a
// crash can leave a stale status but never a torn one; recovery treats
// anything non-terminal as resumable work.

// The per-job keys. datasetFileName doubles as the file name normalized
// specs of CSV-sourced jobs carry in their DatasetPath on path-backed
// stores.
const (
	datasetFileName = "dataset.csv"
	statusKey       = "status.json"
	eventsKey       = "events.ndjson"
	checkpointKey   = "job.ckpt"
	ckptMetaKey     = "job.ckpt.meta"
	resultKey       = "result.json"
	bestCSVKey      = "best.csv"
)

// Exported key names of the persisted layout, for coordinators that
// observe remote workers' writes arriving through the storage seam
// (internal/cluster folds status.json and events.ndjson traffic back
// into its live job table).
const (
	StatusKey = statusKey
	EventsKey = eventsKey
)

// ckptMeta is the checkpoint's companion feed marker (job.ckpt.meta):
// the durable event feed's length — in events and in bytes — at the
// moment the tagged checkpoint was written. All of a generation's events
// are flushed before the checkpoint sink runs at its quiescent barrier,
// so a resume whose checkpoint carries a matching Generation tag can
// rewind the feed to this marker and re-emit the rewound suffix exactly
// once instead of duplicating it. Written non-atomically after the
// checkpoint itself: a crash between the two leaves a stale marker whose
// Generation no longer matches, which resumes detect and ignore.
type ckptMeta struct {
	Events     uint64 `json:"events"`
	Bytes      int64  `json:"bytes"`
	Generation int    `json:"generation"`
}

// jobState is a job's lifecycle state.
type jobState string

const (
	// StateQueued: accepted and waiting for a worker (also the persisted
	// state of interrupted jobs re-enqueued at boot).
	StateQueued jobState = "queued"
	// StateRunning: a worker is evolving it.
	StateRunning jobState = "running"
	// StateDone: finished its budget (or stagnated every island).
	StateDone jobState = "done"
	// StateCancelled: stopped by DELETE; a partial result is kept.
	StateCancelled jobState = "cancelled"
	// StateFailed: the run errored; see JobStatus.Error.
	StateFailed jobState = "failed"
)

// Terminal reports whether no further work will happen on the job.
func (s jobState) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// BestSummary is the best-so-far (or final) individual in wire form.
type BestSummary struct {
	// Score is the aggregated fitness (lower is better).
	Score float64 `json:"score"`
	// IL and DR are the information-loss and disclosure-risk components.
	IL float64 `json:"il"`
	DR float64 `json:"dr"`
	// Island is the island that produced it.
	Island int `json:"island"`
	// Origin is the producing operator or seed label; filled when the
	// final population is available (results), empty in live status.
	Origin string `json:"origin,omitempty"`
}

// JobStatus is the wire form of GET /v1/jobs/{id} and the persisted
// status.json.
type JobStatus struct {
	ID    string          `json:"id"`
	State jobState        `json:"state"`
	Spec  evoprot.JobSpec `json:"spec"`
	// Created/Started/Finished timestamp the lifecycle; Started and
	// Finished are zero until reached.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Generation is the largest per-island generation executed so far.
	Generation int `json:"generation"`
	// Events is the number of feed events persisted — the exclusive upper
	// bound of the replayable offset space.
	Events uint64 `json:"events"`
	// Best is the best-so-far summary, nil before the first generation.
	Best *BestSummary `json:"best,omitempty"`
	// StopReason is set once the run ends: completed, stagnated,
	// cancelled or deadline.
	StopReason string `json:"stop_reason,omitempty"`
	// Error carries the failure (or last non-fatal checkpoint error).
	Error string `json:"error,omitempty"`
	// Resumes counts checkpoint resumptions after server restarts.
	Resumes int `json:"resumes"`
	// Tenant is the submitting tenant's id; empty in anonymous mode.
	Tenant string `json:"tenant,omitempty"`
	// Preemptions counts how many times a higher-priority submission
	// checkpointed and requeued this job.
	Preemptions int `json:"preemptions,omitempty"`
}

// JobResult is the wire form of GET /v1/jobs/{id}/result and the
// persisted result.json: the trajectory plus the best protection's
// summary. The protected dataset itself lives in best.csv and is
// inlined by the handler on request.
type JobResult struct {
	ID          string      `json:"id"`
	State       jobState    `json:"state"`
	StopReason  string      `json:"stop_reason"`
	Generations int         `json:"generations"`
	Evaluations int         `json:"evaluations"`
	Migrations  int         `json:"migrations"`
	Islands     int         `json:"islands"`
	BestIsland  int         `json:"best_island"`
	Best        BestSummary `json:"best"`
	// Front, FrontSize and Hypervolume carry the final non-dominated
	// (IL, DR) front of Pareto-objective jobs: the best island's when it
	// runs Pareto selection, otherwise the Pareto island with the largest
	// final hypervolume (heterogeneous scalar-pareto niches). Absent on
	// purely scalarized jobs.
	Front       []evoprot.Pair `json:"front,omitempty"`
	FrontSize   int            `json:"front_size,omitempty"`
	Hypervolume float64        `json:"hypervolume,omitempty"`
	// History is the best island's per-generation trajectory.
	History []evoprot.GenStats `json:"history"`
	// DatasetCSV is the best protected dataset, inlined only on the wire.
	DatasetCSV string `json:"dataset_csv,omitempty"`
}

// store adapts the pluggable storage backend to the service's document
// shapes: indented JSON for status/result, CSV for datasets. Every
// persistence touch of the server goes through it (or through eventLog,
// which shares the same backend) — no handler or worker opens files
// directly, which is what lets a -store flag swap the whole persistence
// layer.
type store struct{ be storage.Store }

// saveJSON persists v as indented JSON under the job's key, atomically
// and durably (Store.Put's contract). The indentation matches the
// historical on-disk format byte for byte.
func (st *store) saveJSON(job, key string, v any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	return st.be.Put(job, key, buf.Bytes())
}

// loadJSON reads the job's key and unmarshals it into v. Errors pass
// through untouched, so errors.Is(err, storage.ErrNotExist) keeps
// working.
func (st *store) loadJSON(job, key string, v any) error {
	data, err := st.be.Get(job, key)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// saveCSV persists a dataset in CSV form under the job's key.
func (st *store) saveCSV(job, key string, d *evoprot.Dataset) error {
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		return err
	}
	return st.be.Put(job, key, buf.Bytes())
}

// loadCSV reads a dataset persisted by saveCSV.
func (st *store) loadCSV(job, key string) (*evoprot.Dataset, error) {
	data, err := st.be.Get(job, key)
	if err != nil {
		return nil, err
	}
	return evoprot.ReadCSV(bytes.NewReader(data))
}

// listJobIDs returns every persisted job id, sorted.
func (st *store) listJobIDs() ([]string, error) { return st.be.List() }
