package serve

// Unit tests for the durable event log: crash-torn tails and the
// stream/append/finish protocol.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"evoprot"
	"evoprot/internal/storage"
)

// testStores builds one of each storage backend for a parameterized
// test: the filesystem store over a temp dir and the in-memory store.
func testStores(t *testing.T) map[string]storage.Store {
	t.Helper()
	fs, err := storage.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]storage.Store{"fs": fs, "mem": storage.NewMem()}
}

// TestTornTailTruncated: a crash mid-append leaves a partial trailing
// line; reopening the log must drop it so the feed stays valid NDJSON
// and new events start on a fresh line. The healing is a Store.Truncate
// over the seam, so it must hold on every backend.
func TestTornTailTruncated(t *testing.T) {
	for name, be := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			st := &store{be: be}
			whole := `{"Seq":0,"Island":0}` + "\n" + `{"Seq":1,"Island":0}` + "\n"
			if err := be.Append("job1", eventsKey, []byte(whole+`{"Seq":2,"Isl`)); err != nil {
				t.Fatal(err)
			}
			l, err := openEventLog(st, "job1")
			if err != nil {
				t.Fatal(err)
			}
			if count, _, _ := l.state(); count != 2 {
				t.Fatalf("count after torn tail = %d, want 2", count)
			}
			if err := l.append(evoprot.Event{Seq: 2, Island: 1}); err != nil {
				t.Fatal(err)
			}
			l.finish()
			var lines [][]byte
			done := make(chan struct{})
			close(done)
			if err := l.stream(done, 0, func(line []byte) error {
				lines = append(lines, append([]byte(nil), line...))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(lines) != 3 {
				t.Fatalf("replayed %d lines, want 3", len(lines))
			}
			for i, line := range lines {
				var ev evoprot.Event
				if err := json.Unmarshal(line, &ev); err != nil {
					t.Fatalf("line %d is not valid JSON after crash recovery: %q", i, line)
				}
				if ev.Seq != uint64(i) {
					t.Fatalf("line %d has Seq %d", i, ev.Seq)
				}
			}

			// An all-torn feed (single partial line) truncates to empty.
			if err := be.Append("job2", eventsKey, []byte(`{"Seq":0`)); err != nil {
				t.Fatal(err)
			}
			l2, err := openEventLog(st, "job2")
			if err != nil {
				t.Fatal(err)
			}
			if count, _, _ := l2.state(); count != 0 {
				t.Fatalf("count after fully-torn feed = %d, want 0", count)
			}
			l2.finish()
		})
	}
}

// TestStopUnblocksEventStreamers: a live event stream attached to an
// in-flight job must end promptly when the server begins stopping —
// interrupted jobs never finish their feeds, and a blocked streamer
// would otherwise stall graceful shutdown.
func TestStopUnblocksEventStreamers(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := smallSpec()
	spec.Generations = 50000
	status := postJob(t, ts.URL, spec)
	waitFor(t, ts.URL, status.ID, 60*time.Second, func(js JobStatus) bool {
		return js.State == StateRunning && js.Generation >= 2
	})

	streamDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + status.ID + "/events?offset=0")
		if err != nil {
			streamDone <- err
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				streamDone <- nil // the stream ended; that is the success
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the streamer attach and catch up

	stopCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Stop(stopCtx); err != nil {
		t.Fatalf("Stop blocked by an attached streamer: %v", err)
	}
	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event stream still open after Stop")
	}
	t.Logf("stop with attached streamer took %v", time.Since(start))
}
