package serve

import "sync"

// JobQueue is the admission seam between the HTTP layer and the worker
// pool: submissions enter through Push under the queue's admission
// policy, recovery re-enqueues persisted work through ForcePush, and
// workers drain through Pop. The default NewFIFOQueue is a bounded
// in-memory priority queue; a distributed deployment can substitute a
// shared queue without the server noticing.
//
// The contract:
//
//   - Push admits id at priority pri (higher pops first, FIFO within a
//     priority), or reports false when the queue refuses it (full or
//     closed) — the HTTP layer's 503.
//   - ForcePush enqueues id regardless of the admission bound, so a
//     restarted server never strands persisted jobs behind its own
//     admission control. Force-pushed work still occupies queue
//     capacity: while a recovered backlog keeps the queue at or over
//     its bound, Push keeps refusing new submissions until workers
//     drain it back under. False only after Close. Preempted jobs
//     return through ForcePush too — they already passed admission
//     once.
//   - Pop blocks until an item arrives or the queue closes; ok reports
//     whether an item was delivered. The highest-priority item pops
//     first; equal priorities pop in arrival order. Close wins over
//     queued items, so workers exit promptly on shutdown.
//   - Close wakes every blocked Pop and refuses further pushes.
//   - Depth reports how many ids are queued right now.
//   - Cap reports the admission bound Push enforces. Depth may exceed it
//     while a recovered (ForcePushed) backlog drains.
//   - MaxPriority reports the highest priority currently queued, false
//     when the queue is empty — the probe a preemption policy compares
//     running work against.
type JobQueue interface {
	Push(id string, pri int) bool
	ForcePush(id string, pri int) bool
	Pop() (id string, ok bool)
	Close()
	Depth() int
	Cap() int
	MaxPriority() (pri int, ok bool)
}

// qitem is one queued id with its priority.
type qitem struct {
	id  string
	pri int
}

// fifoQueue is the default JobQueue: a bounded in-memory priority queue,
// FIFO within each priority (and plain FIFO when every submission uses
// the default priority 0).
type fifoQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []qitem // sorted: priority descending, arrival order within
	bound  int
	closed bool
}

// NewFIFOQueue builds the default bounded queue admitting at most bound
// queued jobs at a time.
func NewFIFOQueue(bound int) JobQueue {
	q := &fifoQueue{bound: bound}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// insert places it behind every queued item of equal or higher priority —
// the slice stays sorted by (priority desc, arrival asc). Callers hold mu.
func insert(items []qitem, it qitem) []qitem {
	i := len(items)
	for i > 0 && items[i-1].pri < it.pri {
		i--
	}
	items = append(items, qitem{})
	copy(items[i+1:], items[i:])
	items[i] = it
	return items
}

// Push admits id at priority pri; it reports false when the queue is
// full or closed. Recovered jobs enqueued by ForcePush count toward the
// fullness check: admission control sees the true backlog, not just the
// part of it that arrived over HTTP.
func (q *fifoQueue) Push(id string, pri int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.bound {
		return false
	}
	q.items = insert(q.items, qitem{id: id, pri: pri})
	q.cond.Signal()
	return true
}

// ForcePush enqueues id at priority pri regardless of the bound — the
// recovery and preemption-requeue path. Still refused after Close.
func (q *fifoQueue) ForcePush(id string, pri int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = insert(q.items, qitem{id: id, pri: pri})
	q.cond.Signal()
	return true
}

// Pop blocks until an item arrives or the queue closes; ok reports
// whether an item was delivered. Close wins over queued items: workers
// exit promptly on shutdown and whatever remains is re-enqueued from the
// store on the next boot.
func (q *fifoQueue) Pop() (id string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return "", false
	}
	id = q.items[0].id
	q.items = q.items[1:]
	return id, true
}

// Close wakes every blocked Pop and refuses further pushes.
func (q *fifoQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Depth returns the number of queued ids.
func (q *fifoQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Cap returns the admission bound.
func (q *fifoQueue) Cap() int { return q.bound }

// MaxPriority returns the highest queued priority; false when empty.
func (q *fifoQueue) MaxPriority() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].pri, true
}
