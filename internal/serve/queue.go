package serve

import "sync"

// queue is the bounded FIFO of job ids feeding the worker pool. Pushes
// from the submit handler respect the bound (a full queue turns into an
// HTTP 503); recovery pushes bypass it so a restarted server never
// strands persisted jobs behind its own admission control.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []string
	bound  int
	closed bool
}

func newQueue(bound int) *queue {
	q := &queue{bound: bound}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends id in arrival order; it reports false when the queue is
// full or closed.
func (q *queue) push(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.bound {
		return false
	}
	q.items = append(q.items, id)
	q.cond.Signal()
	return true
}

// forcePush appends id regardless of the bound — the recovery path.
// Still refused after close.
func (q *queue) forcePush(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, id)
	q.cond.Signal()
	return true
}

// pop blocks until an item arrives or the queue closes; ok reports
// whether an item was delivered. Close wins over queued items: workers
// exit promptly on shutdown and whatever remains is re-enqueued from the
// store on the next boot.
func (q *queue) pop() (id string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return "", false
	}
	id = q.items[0]
	q.items = q.items[1:]
	return id, true
}

// close wakes every blocked pop and refuses further pushes.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth returns the number of queued ids.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
