package serve

import "sync"

// JobQueue is the admission seam between the HTTP layer and the worker
// pool: submissions enter through Push under the queue's admission
// policy, recovery re-enqueues persisted work through ForcePush, and
// workers drain through Pop. The default NewFIFOQueue is a bounded
// in-memory FIFO; a distributed deployment can substitute a shared queue
// without the server noticing.
//
// The contract:
//
//   - Push admits id in arrival order, or reports false when the queue
//     refuses it (full or closed) — the HTTP layer's 503.
//   - ForcePush enqueues id regardless of the admission bound, so a
//     restarted server never strands persisted jobs behind its own
//     admission control. Force-pushed work still occupies queue
//     capacity: while a recovered backlog keeps the queue at or over
//     its bound, Push keeps refusing new submissions until workers
//     drain it back under. False only after Close.
//   - Pop blocks until an item arrives or the queue closes; ok reports
//     whether an item was delivered. Close wins over queued items, so
//     workers exit promptly on shutdown.
//   - Close wakes every blocked Pop and refuses further pushes.
//   - Depth reports how many ids are queued right now.
//   - Cap reports the admission bound Push enforces. Depth may exceed it
//     while a recovered (ForcePushed) backlog drains.
type JobQueue interface {
	Push(id string) bool
	ForcePush(id string) bool
	Pop() (id string, ok bool)
	Close()
	Depth() int
	Cap() int
}

// fifoQueue is the default JobQueue: a bounded in-memory FIFO.
type fifoQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []string
	bound  int
	closed bool
}

// NewFIFOQueue builds the default bounded FIFO admitting at most bound
// queued jobs at a time.
func NewFIFOQueue(bound int) JobQueue {
	q := &fifoQueue{bound: bound}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends id in arrival order; it reports false when the queue is
// full or closed. Recovered jobs enqueued by ForcePush count toward the
// fullness check: admission control sees the true backlog, not just the
// part of it that arrived over HTTP.
func (q *fifoQueue) Push(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.bound {
		return false
	}
	q.items = append(q.items, id)
	q.cond.Signal()
	return true
}

// ForcePush appends id regardless of the bound — the recovery path.
// Still refused after Close.
func (q *fifoQueue) ForcePush(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, id)
	q.cond.Signal()
	return true
}

// Pop blocks until an item arrives or the queue closes; ok reports
// whether an item was delivered. Close wins over queued items: workers
// exit promptly on shutdown and whatever remains is re-enqueued from the
// store on the next boot.
func (q *fifoQueue) Pop() (id string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return "", false
	}
	id = q.items[0]
	q.items = q.items[1:]
	return id, true
}

// Close wakes every blocked Pop and refuses further pushes.
func (q *fifoQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Depth returns the number of queued ids.
func (q *fifoQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Cap returns the admission bound.
func (q *fifoQueue) Cap() int { return q.bound }
