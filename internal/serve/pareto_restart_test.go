package serve

// The Pareto-mode crash-safety gate: a fixed-seed Pareto-objective job
// interrupted by a server restart resumes from its checkpoint onto the
// identical trajectory — the per-generation event feed (front payloads
// included) and the final non-dominated front reproduce the uninterrupted
// run's bit for bit.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"evoprot"
	"evoprot/internal/storage"
)

// sameFrontStats compares two front payloads by value.
func sameFrontStats(a, b *evoprot.FrontStats) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Size != b.Size || a.Hypervolume != b.Hypervolume || len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	return true
}

// genStatsByGen extracts a feed's generation events (Done and epoch
// entries dropped, times stripped) keyed by generation number.
func genStatsByGen(events []evoprot.Event) map[int]evoprot.GenStats {
	out := map[int]evoprot.GenStats{}
	for _, ev := range events {
		if ev.Done || ev.Epoch != nil {
			continue
		}
		gs := ev.Stats
		gs.EvalTime, gs.TotalTime = 0, 0
		out[gs.Gen] = gs
	}
	return out
}

func TestKillAndRestartParetoJob(t *testing.T) {
	be := storage.NewMem()
	cfg := Config{
		Store:           be,
		Workers:         1,
		CheckpointEvery: 5,
		Logf:            t.Logf,
	}
	// A single Pareto island: the resumed trajectory must be bit-identical
	// to the uninterrupted one wherever the interruption lands.
	spec := evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         120,
		Generations:  600,
		Islands:      1,
		MigrateEvery: 10,
		Objective:    "pareto",
		Seed:         19,
	}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	status := postJob(t, ts1.URL, spec)
	interrupted := waitFor(t, ts1.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.Generation >= 40
	})
	if interrupted.State.Terminal() {
		t.Fatalf("job finished (%s) before the test could interrupt it; slow the spec down", interrupted.State)
	}
	ts1.Close()
	stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s1.Stop(stopCtx); err != nil {
		t.Fatal(err)
	}
	cancel()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Stop(stopCtx); err != nil {
			t.Error(err)
		}
	}()
	done := waitFor(t, ts2.URL, status.ID, 120*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != StateDone {
		t.Fatalf("resumed Pareto job finished as %s (error %q)", done.State, done.Error)
	}
	if done.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", done.Resumes)
	}

	// The uninterrupted reference run of the identical spec.
	ref := postJob(t, ts2.URL, spec)
	refDone := waitFor(t, ts2.URL, ref.ID, 120*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if refDone.State != StateDone {
		t.Fatalf("reference job finished as %s", refDone.State)
	}

	// Every generation's event — front payload included — must reproduce
	// bit for bit across the interruption.
	resumedGens := genStatsByGen(fetchEvents(t, ts2.URL, status.ID, 0))
	refGens := genStatsByGen(fetchEvents(t, ts2.URL, ref.ID, 0))
	if len(resumedGens) != len(refGens) || len(refGens) != 600 {
		t.Fatalf("generation event counts: resumed %d, reference %d, want 600", len(resumedGens), len(refGens))
	}
	for gen, want := range refGens {
		got, ok := resumedGens[gen]
		if !ok {
			t.Fatalf("resumed feed misses generation %d", gen)
		}
		if !sameFrontStats(got.Front, want.Front) {
			t.Fatalf("generation %d fronts diverged across restart:\n%+v\n%+v", gen, got.Front, want.Front)
		}
		got.Front, want.Front = nil, nil
		if got != want {
			t.Fatalf("generation %d diverged across restart:\n%+v\n%+v", gen, got, want)
		}
	}

	// The persisted results agree: final front, hypervolume, best dataset.
	resumedResult := fetchResult(t, ts2.URL, status.ID)
	refResult := fetchResult(t, ts2.URL, ref.ID)
	if len(refResult.Front) == 0 || refResult.FrontSize != len(refResult.Front) || refResult.Hypervolume <= 0 {
		t.Fatalf("reference result carries no usable front: %+v", refResult)
	}
	if resumedResult.Hypervolume != refResult.Hypervolume || resumedResult.FrontSize != refResult.FrontSize ||
		len(resumedResult.Front) != len(refResult.Front) {
		t.Fatalf("final fronts diverged across restart:\n%+v\n%+v", resumedResult, refResult)
	}
	for i := range refResult.Front {
		if resumedResult.Front[i] != refResult.Front[i] {
			t.Fatalf("front point %d diverged: %+v vs %+v", i, resumedResult.Front[i], refResult.Front[i])
		}
	}
	if resumedResult.Best.Score != refResult.Best.Score {
		t.Fatalf("resumed run converged to %.6f, uninterrupted run to %.6f",
			resumedResult.Best.Score, refResult.Best.Score)
	}
	if resumedResult.DatasetCSV != refResult.DatasetCSV {
		t.Fatal("resumed run's protected dataset differs from the uninterrupted run's")
	}
}
