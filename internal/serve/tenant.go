package serve

// Multi-tenant admission: API keys resolving to tenant ids, per-tenant
// token-bucket rate limits on submission, and per-tenant quotas on
// in-flight (queued + running) jobs. All of it is opt-in — a server
// without a Keyring runs in the historical anonymous mode, where every
// client shares the unlimited "" tenant and nothing below fires.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync"
	"time"
)

// Keyring maps static API keys to tenant ids — the auth backend behind
// evoprotd's -auth flag. The file format is one grant per line:
//
//	<api-key> <tenant-id>
//
// separated by whitespace, with blank lines and #-comments ignored.
// Several keys may name the same tenant (key rotation); one key naming
// two tenants is a configuration error.
type Keyring struct {
	keys map[string]string // key -> tenant
}

// ParseKeyring reads the key-file format from r.
func ParseKeyring(r io.Reader) (*Keyring, error) {
	k := &Keyring{keys: make(map[string]string)}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("serve: auth file line %d: want \"<api-key> <tenant>\", got %d fields", line, len(fields))
		}
		key, tenant := fields[0], fields[1]
		if prev, dup := k.keys[key]; dup && prev != tenant {
			return nil, fmt.Errorf("serve: auth file line %d: key already grants tenant %q", line, prev)
		}
		k.keys[key] = tenant
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(k.keys) == 0 {
		return nil, fmt.Errorf("serve: auth file grants no keys")
	}
	return k, nil
}

// LoadKeyring reads an auth key file from disk.
func LoadKeyring(path string) (*Keyring, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	k, err := ParseKeyring(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return k, nil
}

// Resolve maps an API key to its tenant id; ok is false for unknown keys.
func (k *Keyring) Resolve(key string) (tenant string, ok bool) {
	tenant, ok = k.keys[key]
	return tenant, ok
}

// Len reports how many keys the ring grants.
func (k *Keyring) Len() int { return len(k.keys) }

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// tenantLimiter rate-limits submissions per tenant with a classic token
// bucket: rate tokens/second refill up to burst, one token per
// submission. Zero rate disables it.
type tenantLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

// newTenantLimiter builds a limiter at rate submissions/second with the
// given burst capacity (a burst below 1 is raised to 1 — a full bucket
// must admit at least one submission). A rate of 0 returns a limiter
// whose allow always grants.
func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &tenantLimiter{
		rate:    rate,
		burst:   b,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from tenant's bucket. When the bucket is empty
// it reports false and how long until the next token accrues — the
// Retry-After hint.
func (l *tenantLimiter) allow(tenant string) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, exists := l.buckets[tenant]
	if !exists {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}
