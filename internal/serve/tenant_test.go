package serve

// Multi-tenant admission tests: keyring parsing, the token-bucket
// limiter, API-key auth over real HTTP, tenant isolation, rate/quota
// 429s with Retry-After hints, TTL garbage collection, and the bounded
// event-stream buffer dropping stalled subscribers. The standing
// contract tested throughout: a server without a Keyring behaves
// exactly as it always has, and one tenant's breaches never touch
// another tenant's service.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"evoprot"
)

func TestParseKeyring(t *testing.T) {
	k, err := ParseKeyring(strings.NewReader(`
# ops tenants
key-a1 alpha
key-a2	alpha

key-b beta
`))
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != 3 {
		t.Fatalf("parsed %d keys, want 3", k.Len())
	}
	for key, want := range map[string]string{"key-a1": "alpha", "key-a2": "alpha", "key-b": "beta"} {
		if got, ok := k.Resolve(key); !ok || got != want {
			t.Fatalf("Resolve(%q) = %q, %v; want %q", key, got, ok, want)
		}
	}
	if _, ok := k.Resolve("key-unknown"); ok {
		t.Fatal("unknown key resolved")
	}

	bad := map[string]string{
		"key naming two tenants": "k1 alpha\nk1 beta\n",
		"malformed line":         "k1 alpha extra\n",
		"no grants at all":       "# just comments\n",
	}
	for what, text := range bad {
		if _, err := ParseKeyring(strings.NewReader(text)); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
}

func TestLoadKeyringMissingFile(t *testing.T) {
	if _, err := LoadKeyring("/nonexistent/keys.txt"); err == nil {
		t.Fatal("missing auth file accepted")
	}
}

func TestTenantLimiter(t *testing.T) {
	l := newTenantLimiter(1, 2) // 1 token/s, burst 2
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("alpha"); !ok {
			t.Fatalf("burst submission %d refused", i)
		}
	}
	ok, retry := l.allow("alpha")
	if ok {
		t.Fatal("empty bucket granted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s]", retry)
	}
	// Another tenant's bucket is untouched by alpha's breach.
	if ok, _ := l.allow("beta"); !ok {
		t.Fatal("beta refused while alpha breached")
	}
	// One second later a token has accrued.
	now = now.Add(time.Second)
	if ok, _ := l.allow("alpha"); !ok {
		t.Fatal("refill did not grant")
	}

	// A zero rate disables limiting entirely.
	open := newTenantLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := open.allow("anyone"); !ok {
			t.Fatal("disabled limiter refused")
		}
	}
}

// authPost submits spec with an API key and returns the response.
func authPost(t *testing.T, base, key string, spec evoprot.JobSpec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// authGet issues a GET with an API key.
func authGet(t *testing.T, url, key string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func testKeyring(t *testing.T) *Keyring {
	t.Helper()
	k, err := ParseKeyring(strings.NewReader("key-alpha alpha\nkey-beta beta\n"))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAuthRequired(t *testing.T) {
	_, ts := testServer(t, Config{Keyring: testKeyring(t)})

	// No key and a bad key both bounce with 401 + a challenge.
	for _, key := range []string{"", "key-wrong"} {
		resp := authPost(t, ts.URL, key, smallSpec())
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: HTTP %d, want 401", key, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatalf("key %q: 401 without a WWW-Authenticate challenge", key)
		}
	}

	// /healthz stays open for load balancers.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz behind auth: HTTP %d", resp.StatusCode)
	}

	// X-API-Key works; so does Authorization: Bearer.
	resp = authPost(t, ts.URL, "key-alpha", smallSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("X-API-Key submit: HTTP %d", resp.StatusCode)
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Tenant != "alpha" {
		t.Fatalf("job tenant %q, want alpha", status.Tenant)
	}

	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+status.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer key-alpha")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("Bearer status: HTTP %d", bresp.StatusCode)
	}
}

func TestTenantIsolation(t *testing.T) {
	_, ts := testServer(t, Config{Keyring: testKeyring(t)})

	resp := authPost(t, ts.URL, "key-alpha", smallSpec())
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Every per-job route answers a foreign tenant exactly like an
	// unknown id — 404, leaking nothing.
	for _, path := range []string{"", "/events", "/result"} {
		r := authGet(t, ts.URL+"/v1/jobs/"+status.ID+path, "key-beta")
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("foreign GET %s: HTTP %d, want 404", path, r.StatusCode)
		}
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+status.ID, nil)
	req.Header.Set("X-API-Key", "key-beta")
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign DELETE: HTTP %d, want 404", dresp.StatusCode)
	}

	// Listings are scoped to the caller.
	var list struct{ Jobs []JobStatus }
	r := authGet(t, ts.URL+"/v1/jobs", "key-beta")
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(list.Jobs) != 0 {
		t.Fatalf("beta sees %d of alpha's jobs", len(list.Jobs))
	}
	r = authGet(t, ts.URL+"/v1/jobs", "key-alpha")
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != status.ID {
		t.Fatalf("alpha's listing: %+v", list.Jobs)
	}

	// The owner keeps full access.
	r = authGet(t, ts.URL+"/v1/jobs/"+status.ID, "key-alpha")
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("owner status: HTTP %d", r.StatusCode)
	}
}

func TestAnonymousModeIgnoresKeys(t *testing.T) {
	// Without a Keyring the service stays in the historical open mode:
	// requests pass with no key, with a key, and all jobs share the ""
	// tenant.
	_, ts := testServer(t, Config{})
	resp := authPost(t, ts.URL, "some-random-key", smallSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("keyed submit in anonymous mode: HTTP %d", resp.StatusCode)
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Tenant != "" {
		t.Fatalf("anonymous job got tenant %q", status.Tenant)
	}
}

// quotaServer builds a server whose workers never start, so submitted
// jobs stay queued (and count against quotas) deterministically.
func quotaServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	cfg.DataDir = t.TempDir()
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestTenantQuota429(t *testing.T) {
	ts := quotaServer(t, Config{Keyring: testKeyring(t), TenantMaxActive: 1})

	resp := authPost(t, ts.URL, "key-alpha", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}

	// Alpha's second active job breaches the quota: 429 with a concrete
	// Retry-After hint.
	resp = authPost(t, ts.URL, "key-alpha", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota breach: HTTP %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("quota 429 Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	// Beta is a different tenant: alpha's breach costs beta nothing.
	resp = authPost(t, ts.URL, "key-beta", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("beta submit during alpha's breach: HTTP %d", resp.StatusCode)
	}
}

func TestTenantRateLimit429(t *testing.T) {
	// One token refilling at a glacial rate: the first submission spends
	// the bucket, the second must breach.
	ts := quotaServer(t, Config{Keyring: testKeyring(t), TenantRate: 0.001, TenantBurst: 1})

	resp := authPost(t, ts.URL, "key-alpha", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	resp = authPost(t, ts.URL, "key-alpha", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate breach: HTTP %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("rate 429 Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	resp = authPost(t, ts.URL, "key-beta", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("beta submit during alpha's breach: HTTP %d", resp.StatusCode)
	}
}

func TestGCSweepCollectsExpiredJobs(t *testing.T) {
	s, ts := testServer(t, Config{TTL: time.Hour, Workers: 1})

	status := postJob(t, ts.URL, smallSpec())
	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(st JobStatus) bool {
		return st.State.Terminal()
	})
	if done.State != StateDone {
		t.Fatalf("job finished as %s", done.State)
	}

	// Freshly finished: inside the TTL, the sweep spares it.
	if n := s.gcSweep(time.Now()); n != 0 {
		t.Fatalf("sweep collected %d fresh jobs", n)
	}
	if got := getStatus(t, ts.URL, status.ID); got.State != StateDone {
		t.Fatalf("fresh job state %s after sweep", got.State)
	}

	// Past the TTL the whole entry goes: the store's data first, then the
	// job table.
	if n := s.gcSweep(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("sweep collected %d expired jobs, want 1", n)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + status.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("collected job still answers HTTP %d", resp.StatusCode)
	}
	var ghost JobStatus
	if err := s.st.loadJSON(status.ID, statusKey, &ghost); !isNotExist(err) {
		t.Fatalf("collected job's status still in the store: %v", err)
	}
	if _, err := s.st.be.Get(status.ID, eventsKey); !isNotExist(err) {
		t.Fatalf("collected job's event log still in the store: %v", err)
	}
}

func TestGCSweepSparesActiveJobs(t *testing.T) {
	// No workers running: the job stays queued — non-terminal jobs are
	// never collected no matter how old.
	cfg := Config{DataDir: t.TempDir(), TTL: time.Hour, Logf: t.Logf}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status := postJob(t, ts.URL, smallSpec())
	if n := s.gcSweep(time.Now().Add(1000 * time.Hour)); n != 0 {
		t.Fatalf("sweep collected %d non-terminal jobs", n)
	}
	if got := getStatus(t, ts.URL, status.ID); got.State != StateQueued {
		t.Fatalf("queued job state %s after sweep", got.State)
	}
}

// stalledWriter blocks every body write until released — a subscriber
// that stopped reading.
type stalledWriter struct {
	header  http.Header
	release chan struct{}
}

func (w *stalledWriter) Header() http.Header { return w.header }
func (w *stalledWriter) WriteHeader(int)     {}
func (w *stalledWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

func TestStreamStalledSubscriberDropped(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	s, ts := testServer(t, Config{Workers: 1, StreamBuffer: 1, StreamStall: 50 * time.Millisecond, Logf: logf})

	status := postJob(t, ts.URL, smallSpec())
	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(st JobStatus) bool {
		return st.State.Terminal()
	})
	if done.State != StateDone {
		t.Fatalf("job finished as %s", done.State)
	}

	// Subscribe through the handler with a writer that never completes a
	// write: the one-event buffer fills, the stall window passes, and the
	// pump gives the subscriber up instead of blocking the feed forever.
	w := &stalledWriter{header: http.Header{}, release: make(chan struct{})}
	req := httptest.NewRequest("GET", "/v1/jobs/"+status.ID+"/events", nil)
	served := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(w, req)
		close(served)
	}()
	time.Sleep(250 * time.Millisecond) // several stall windows with the write still hung
	close(w.release)
	select {
	case <-served:
	case <-time.After(10 * time.Second):
		t.Fatal("handler never returned after the writer unblocked")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, line := range logs {
		if strings.Contains(line, "stalled event-stream subscriber") {
			return
		}
	}
	t.Fatalf("stalled subscriber was not dropped; logs:\n%s", strings.Join(logs, "\n"))
}
