package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"evoprot"
)

// maxSpecBytes bounds a job submission body (the inline dataset rides in
// it).
const maxSpecBytes = 64 << 20

// retryAfterSeconds is the Retry-After hint sent with queue-full 503s
// and quota 429s.
const retryAfterSeconds = 15

// errStreamStalled reports an event-stream subscriber that kept its
// buffer full past the stall window; the connection is dropped so the
// pump can serve live consumers (the durable feed makes reconnecting
// lossless).
var errStreamStalled = errors.New("serve: event-stream subscriber stalled")

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs            submit a JobSpec, 201 + status
//	GET    /v1/jobs            all jobs' status, newest first
//	GET    /v1/jobs/{id}        one job's status + best-so-far
//	DELETE /v1/jobs/{id}        cancel; partial result is kept
//	GET    /v1/jobs/{id}/events event feed from ?offset=N, NDJSON or SSE
//	GET    /v1/jobs/{id}/result terminal result (+ dataset, ?format=csv)
//	GET    /healthz             liveness
//
// With a Keyring configured, every /v1 route requires an API key
// (Authorization: Bearer <key> or X-API-Key: <key>) resolving to a
// tenant; jobs belong to their submitting tenant and other tenants see
// 404s. /healthz stays open for load balancers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.authed(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.authed(s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.authed(s.handleStatus))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.authed(s.handleCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.authed(s.handleEvents))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.authed(s.handleResult))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// authed wraps a handler with API-key authentication. Without a Keyring
// the service stays in the historical anonymous mode and every request
// passes through as the "" tenant; with one, requests lacking a known
// key get 401 before the handler runs.
func (s *Server) authed(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := ""
		if s.cfg.Keyring != nil {
			key := r.Header.Get("X-API-Key")
			if key == "" {
				if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
					key = strings.TrimPrefix(auth, "Bearer ")
				}
			}
			if key == "" {
				w.Header().Set("WWW-Authenticate", `Bearer realm="evoprot"`)
				writeError(w, http.StatusUnauthorized, "missing API key")
				return
			}
			t, ok := s.cfg.Keyring.Resolve(key)
			if !ok {
				w.Header().Set("WWW-Authenticate", `Bearer realm="evoprot"`)
				writeError(w, http.StatusUnauthorized, "unknown API key")
				return
			}
			tenant = t
		}
		h(w, r, tenant)
	}
}

// visibleJob resolves id for tenant. In authenticated mode a foreign
// tenant's job answers exactly like an unknown id — a 404, leaking
// nothing about other tenants' work.
func (s *Server) visibleJob(id, tenant string) *job {
	j := s.job(id)
	if j == nil || s.cfg.Keyring == nil {
		return j
	}
	j.mu.Lock()
	owner := j.status.Tenant
	j.mu.Unlock()
	if owner != tenant {
		return nil
	}
	return j
}

// retrySeconds renders a Retry-After hint: d rounded up to whole
// seconds, at least 1.
func retrySeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Depth and capacity together let a load balancer prefer drained
	// servers; depth can exceed capacity while a recovered backlog drains.
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"queued":         s.queue.Depth(),
		"queue_capacity": s.queue.Cap(),
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, tenant string) {
	// Admission control fires before the body is even read: rate and
	// quota breaches are per-tenant 429s with a Retry-After hint, and a
	// breaching tenant costs the server nothing beyond this check —
	// other tenants' submissions and running jobs are untouched.
	if ok, retry := s.limiter.allow(tenant); !ok {
		secs := retrySeconds(retry)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "submission rate limit exceeded, retry in %ds", secs)
		return
	}
	if max := s.cfg.TenantMaxActive; max > 0 {
		if active := s.tenantActive(tenant); active >= max {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			writeError(w, http.StatusTooManyRequests, "tenant quota reached: %d jobs queued or running (limit %d)", active, max)
			return
		}
	}
	var spec evoprot.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	if spec.DatasetPath != "" && !s.cfg.AllowDatasetPath {
		writeError(w, http.StatusForbidden, "server-side dataset paths are disabled; upload dataset_csv or name a built-in dataset")
		return
	}
	if spec.Rows > s.cfg.MaxRows {
		writeError(w, http.StatusBadRequest, "rows %d exceeds this server's limit of %d", spec.Rows, s.cfg.MaxRows)
		return
	}
	orig, err := spec.Materialize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Reject structurally bad specs at the door: unknown attributes,
	// option combinations NewRunner refuses. Data-dependent masking
	// failures (a grid method that cannot protect this particular file)
	// only surface when the worker builds the initial population — those
	// jobs land in StateFailed with the error recorded.
	opts, err := spec.Options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := evoprot.NewRunner(orig, spec.Attributes, opts...); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status, err := s.submit(tenant, spec, orig)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			// Retry-After gives backoff loops and load balancers a concrete
			// hint; queue drain time is workload-dependent, so this is a
			// floor, not a promise.
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			writeError(w, http.StatusServiceUnavailable, "job queue is full, retry later")
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+status.ID)
	writeJSON(w, http.StatusCreated, status)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request, tenant string) {
	jobs := s.listJobs()
	if s.cfg.Keyring != nil {
		mine := jobs[:0]
		for _, st := range jobs {
			if st.Tenant == tenant {
				mine = append(mine, st)
			}
		}
		jobs = mine
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, tenant string) {
	j := s.visibleJob(r.PathValue("id"), tenant)
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshotStatus())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, tenant string) {
	j := s.visibleJob(r.PathValue("id"), tenant)
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusAccepted, s.cancelJob(j))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, tenant string) {
	j := s.visibleJob(r.PathValue("id"), tenant)
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	var offset uint64
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
		offset = n
	}
	sse := r.URL.Query().Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	// An SSE client reconnecting after a drop sends the last id it saw;
	// resume one past it.
	if v := r.Header.Get("Last-Event-ID"); sse && v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			offset = n + 1
		}
	}
	flusher, _ := w.(http.Flusher)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	// Stream until the client leaves or the server begins stopping —
	// interrupted jobs never finish their feed, and a blocked streamer
	// would otherwise stall graceful shutdown for its full drain window.
	ctx, cancelStream := context.WithCancel(r.Context())
	defer cancelStream()
	go func() {
		select {
		case <-s.stopping:
			cancelStream()
		case <-ctx.Done():
		}
	}()
	// Bounded per-subscriber buffer: a pump goroutine tails the durable
	// feed into lines and this handler drains them to the client. A
	// consumer that keeps the buffer full past StreamStall is dropped —
	// the feed is durable, so it reconnects at its offset and misses
	// nothing — instead of pinning a feed reader open indefinitely.
	lines := make(chan []byte, s.cfg.StreamBuffer)
	pumped := make(chan error, 1)
	go func() {
		defer close(lines)
		pumped <- j.log.stream(ctx.Done(), offset, func(line []byte) error {
			buffered := append([]byte(nil), line...)
			select {
			case lines <- buffered:
				return nil
			default:
			}
			stall := time.NewTimer(s.cfg.StreamStall)
			defer stall.Stop()
			select {
			case lines <- buffered:
				return nil
			case <-stall.C:
				return errStreamStalled
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()
	seq := offset
	for line := range lines {
		var werr error
		if sse {
			_, werr = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", seq, line)
		} else {
			_, werr = fmt.Fprintf(w, "%s\n", line)
		}
		seq++
		if werr != nil {
			// Client gone mid-write: stop the pump and bail out.
			cancelStream()
			<-pumped
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := <-pumped; err != nil {
		if errors.Is(err, errStreamStalled) {
			s.cfg.Logf("serve: job %s: dropped stalled event-stream subscriber (buffer of %d full for %s)",
				j.id, s.cfg.StreamBuffer, s.cfg.StreamStall)
		}
		return // stalled subscriber, gone client or unreadable log; the stream just ends
	}
	if sse {
		// Tell well-behaved clients the feed is complete, not dropped.
		fmt.Fprintf(w, "event: end\ndata: {}\n\n")
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, tenant string) {
	j := s.visibleJob(r.PathValue("id"), tenant)
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	status := j.snapshotStatus()
	if !status.State.Terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; the result exists once it is done, cancelled or failed", j.id, status.State)
		return
	}
	var result JobResult
	if err := s.st.loadJSON(j.id, resultKey, &result); err != nil {
		if isNotExist(err) {
			writeError(w, http.StatusNotFound, "job %s (%s) produced no result", j.id, status.State)
			return
		}
		writeError(w, http.StatusInternalServerError, "loading result: %v", err)
		return
	}
	csv, err := s.st.be.Get(j.id, bestCSVKey)
	if err != nil && !isNotExist(err) {
		writeError(w, http.StatusInternalServerError, "loading protected dataset: %v", err)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s-best.csv", j.id))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(csv)
		return
	}
	result.DatasetCSV = string(csv)
	writeJSON(w, http.StatusOK, result)
}
