package serve

// The preemption determinism gate: a running low-priority job displaced
// by a high-priority submission — checkpointed, requeued, and resumed
// through the same crash-safe machinery restarts use — must finish with
// an event feed and a result bit-identical (modulo wall-clock times) to
// a run that was never preempted. Preemption moves work in time; these
// tests prove it moves nothing else. The cluster topology's half of the
// same gate lives in internal/cluster.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"evoprot"
	"evoprot/internal/storage"
)

// longSpec is a fixed-seed single-island job slow enough to preempt
// mid-run — the same shape the restart and lease-expiry gates use, so a
// surviving feed can be compared event for event, sequence numbers
// included.
func longSpec() evoprot.JobSpec {
	return evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         120,
		Generations:  400,
		Islands:      1,
		MigrateEvery: 10,
		Seed:         17,
	}
}

// runUninterrupted executes spec to completion on a fresh one-worker
// server and returns its feed and result — the reference a preempted
// run must reproduce exactly.
func runUninterrupted(t *testing.T, spec evoprot.JobSpec) ([]evoprot.Event, JobResult) {
	t.Helper()
	s, err := New(Config{Store: storage.NewMem(), Workers: 1, CheckpointEvery: 5, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Stop(stopCtx); err != nil {
			t.Error(err)
		}
	}()
	status := postJob(t, ts.URL, spec)
	done := waitFor(t, ts.URL, status.ID, 180*time.Second, func(st JobStatus) bool {
		return st.State.Terminal()
	})
	if done.State != StateDone {
		t.Fatalf("reference job finished as %s (error %q)", done.State, done.Error)
	}
	return fetchEvents(t, ts.URL, status.ID, 0), fetchResult(t, ts.URL, status.ID)
}

// stripTimes zeroes an event's wall-clock fields — the only part of a
// deterministic run that legitimately differs between executions.
func stripTimes(ev evoprot.Event) evoprot.Event {
	ev.Stats.EvalTime, ev.Stats.TotalTime = 0, 0
	return ev
}

// sameFeed fails unless the two feeds are identical event for event
// (times stripped), sequence numbers included — the single-island
// emission order is deterministic.
func sameFeed(t *testing.T, label string, a, b []evoprot.Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: feed lengths %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := stripTimes(a[i]), stripTimes(b[i])
		if (x.Epoch == nil) != (y.Epoch == nil) || (x.Epoch != nil && *x.Epoch != *y.Epoch) {
			t.Fatalf("%s: event %d epoch payloads diverged: %+v vs %+v", label, i, x.Epoch, y.Epoch)
		}
		x.Epoch, y.Epoch = nil, nil
		if x != y {
			t.Fatalf("%s: event %d diverged:\n%+v\n%+v", label, i, x, y)
		}
	}
}

// sameResult fails unless the two results agree on everything a client
// can see, the protected dataset byte for byte included.
func sameResult(t *testing.T, label string, a, b JobResult) {
	t.Helper()
	if a.Best.Score != b.Best.Score || a.Best.IL != b.Best.IL || a.Best.DR != b.Best.DR {
		t.Fatalf("%s: best diverged: %+v vs %+v", label, a.Best, b.Best)
	}
	if a.Generations != b.Generations || a.Islands != b.Islands || a.BestIsland != b.BestIsland {
		t.Fatalf("%s: shape diverged: gen %d/%d islands %d/%d best island %d/%d",
			label, a.Generations, b.Generations, a.Islands, b.Islands, a.BestIsland, b.BestIsland)
	}
	if a.DatasetCSV != b.DatasetCSV {
		t.Fatalf("%s: protected datasets differ", label)
	}
}

func TestPreemptionMatchesUninterrupted(t *testing.T) {
	spec := longSpec()
	refEvents, refResult := runUninterrupted(t, spec)

	for name, be := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			_, ts := testServer(t, Config{Store: be, Workers: 1, CheckpointEvery: 5})

			low := postJob(t, ts.URL, spec)
			mid := waitFor(t, ts.URL, low.ID, 60*time.Second, func(st JobStatus) bool {
				return st.Generation >= 60
			})
			if mid.State.Terminal() {
				t.Fatalf("job finished (%s) before the test could preempt it; slow the spec down", mid.State)
			}

			// A priority-5 submission against the single busy worker: the
			// running priority-0 job is checkpointed and requeued behind it.
			urgent := smallSpec()
			urgent.Priority = 5
			urgentStatus := postJob(t, ts.URL, urgent)

			urgentDone := waitFor(t, ts.URL, urgentStatus.ID, 60*time.Second, func(st JobStatus) bool {
				return st.State.Terminal()
			})
			if urgentDone.State != StateDone {
				t.Fatalf("urgent job finished as %s (error %q)", urgentDone.State, urgentDone.Error)
			}
			// The worker is serialized: the urgent job finishing first proves
			// it jumped the displaced job in line.
			if got := getStatus(t, ts.URL, low.ID); got.State.Terminal() {
				t.Fatalf("displaced job already %s when the urgent job finished", got.State)
			}

			done := waitFor(t, ts.URL, low.ID, 180*time.Second, func(st JobStatus) bool {
				return st.State.Terminal()
			})
			if done.State != StateDone {
				t.Fatalf("preempted job finished as %s (error %q)", done.State, done.Error)
			}
			if done.Generation != spec.Generations {
				t.Fatalf("preempted job executed %d generations, want %d", done.Generation, spec.Generations)
			}
			if done.Preemptions != 1 || done.Resumes != 1 {
				t.Fatalf("preemptions = %d, resumes = %d, want 1 and 1", done.Preemptions, done.Resumes)
			}

			// The headline assertion: the preempted-then-resumed run's feed
			// and result are bit-identical to the uninterrupted reference —
			// no extra Done events, no reused or skipped offsets, the same
			// protected dataset.
			events := fetchEvents(t, ts.URL, low.ID, 0)
			sameFeed(t, name, refEvents, events)
			sameResult(t, name, refResult, fetchResult(t, ts.URL, low.ID))
		})
	}
}

// TestPreemptionSparesEqualPriority: preemption demands strictly higher
// priority — an equal-priority submission waits its turn instead of
// churning the running job through a checkpoint cycle.
func TestPreemptionSparesEqualPriority(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, CheckpointEvery: 5})

	low := postJob(t, ts.URL, longSpec())
	mid := waitFor(t, ts.URL, low.ID, 60*time.Second, func(st JobStatus) bool {
		return st.Generation >= 20
	})
	if mid.State.Terminal() {
		t.Fatalf("job finished (%s) too fast", mid.State)
	}

	peer := smallSpec()
	peer.Priority = 0
	peerStatus := postJob(t, ts.URL, peer)

	// The running job keeps its worker: it finishes first, unpreempted.
	done := waitFor(t, ts.URL, low.ID, 180*time.Second, func(st JobStatus) bool {
		return st.State.Terminal()
	})
	if done.State != StateDone || done.Preemptions != 0 || done.Resumes != 0 {
		t.Fatalf("equal-priority submission disturbed the running job: %s, preemptions %d, resumes %d",
			done.State, done.Preemptions, done.Resumes)
	}
	peerDone := waitFor(t, ts.URL, peerStatus.ID, 60*time.Second, func(st JobStatus) bool {
		return st.State.Terminal()
	})
	if peerDone.State != StateDone {
		t.Fatalf("queued peer finished as %s", peerDone.State)
	}
}
