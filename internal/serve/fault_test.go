package serve

// Storage fault-injection tests: the service's contract under a failing
// or corrupting backend. A checkpoint write failure surfaces as
// ErrCheckpoint and fails the job rather than silently dropping
// durability; a corrupt status document is skipped at recovery without
// taking down neighboring jobs; and a recovered over-bound backlog
// counts against admission until workers drain it.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"evoprot/internal/storage"
)

// serveHTTP exposes an already-built server over real HTTP with cleanup.
func serveHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Stop(stopCtx); err != nil {
			t.Errorf("stopping server: %v", err)
		}
	})
	return ts.URL
}

// TestCheckpointWriteFailureFailsJob: when every checkpoint write fails,
// the run's final checkpoint write failure (evoprot.ErrCheckpoint) must
// fail the job with the cause recorded — a job whose durability contract
// was broken must not report success.
func TestCheckpointWriteFailureFailsJob(t *testing.T) {
	flaky := &storage.Flaky{
		Store:           storage.NewMem(),
		Key:             checkpointKey,
		FailWritesAfter: 1,
	}
	_, ts := testServer(t, Config{Store: flaky, Workers: 1, CheckpointEvery: 5})
	status := postJob(t, ts.URL, smallSpec())
	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != StateFailed {
		t.Fatalf("job with a failing checkpoint store finished as %s, want %s", done.State, StateFailed)
	}
	if !strings.Contains(done.Error, "checkpoint") {
		t.Fatalf("failure cause %q does not name the checkpoint write", done.Error)
	}
}

// TestEventLogWriteFailureRecordedNotFatal: a failing event feed latches
// the log and records the error on the status, but the optimization
// itself still completes — the feed is observability, not the result.
func TestEventLogWriteFailureRecordedNotFatal(t *testing.T) {
	flaky := &storage.Flaky{
		Store:           storage.NewMem(),
		Key:             eventsKey,
		FailWritesAfter: 2, // the feed's creation append succeeds; event appends fail
	}
	_, ts := testServer(t, Config{Store: flaky, Workers: 1})
	status := postJob(t, ts.URL, smallSpec())
	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != StateDone {
		t.Fatalf("job with a failing event feed finished as %s, want %s", done.State, StateDone)
	}
	if !strings.Contains(done.Error, "event log") {
		t.Fatalf("status error %q does not record the event log failure", done.Error)
	}
}

// TestRecoverySkipsCorruptStatus: recovery over a store holding one
// healthy terminal job, one job with a garbage status document, and one
// whose status reads back torn must boot, keep the healthy job
// queryable, and skip the broken ones.
func TestRecoverySkipsCorruptStatus(t *testing.T) {
	for name, be := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			st := &store{be: be}
			good := JobStatus{ID: "jgood", State: StateDone, Created: time.Now().UTC()}
			if err := st.saveJSON("jgood", statusKey, good); err != nil {
				t.Fatal(err)
			}
			if err := be.Put("jbad", statusKey, []byte(`{"id": "jbad", "state":`)); err != nil {
				t.Fatal(err)
			}
			// jtorn's document is valid at rest but reads back torn.
			if err := st.saveJSON("jtorn", statusKey, good); err != nil {
				t.Fatal(err)
			}
			flaky := &storage.Flaky{Store: be, Key: statusKey, TornReads: true}
			s, err := New(Config{Store: &tornForJob{flaky: flaky, be: be, job: "jtorn"}, Logf: t.Logf})
			if err != nil {
				t.Fatalf("recovery died on corrupt neighbors: %v", err)
			}
			ts := serveHTTP(t, s)
			resp, err := http.Get(ts + "/v1/jobs/jgood")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("healthy neighbor: HTTP %d, want 200", resp.StatusCode)
			}
			for _, id := range []string{"jbad", "jtorn"} {
				resp, err := http.Get(ts + "/v1/jobs/" + id)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNotFound {
					t.Fatalf("corrupt job %s: HTTP %d, want 404", id, resp.StatusCode)
				}
			}
		})
	}
}

// tornForJob routes one job's reads through a torn-read injector and
// everything else to the real store.
type tornForJob struct {
	flaky *storage.Flaky
	be    storage.Store
	job   string
}

func (s *tornForJob) Get(job, key string) ([]byte, error) {
	if job == s.job {
		return s.flaky.Get(job, key)
	}
	return s.be.Get(job, key)
}
func (s *tornForJob) Put(job, key string, data []byte) error    { return s.be.Put(job, key, data) }
func (s *tornForJob) Append(job, key string, data []byte) error { return s.be.Append(job, key, data) }
func (s *tornForJob) Open(job, key string) (io.ReadCloser, error) {
	return s.be.Open(job, key)
}
func (s *tornForJob) Truncate(job, key string, size int64) error {
	return s.be.Truncate(job, key, size)
}
func (s *tornForJob) List() ([]string, error) { return s.be.List() }
func (s *tornForJob) Delete(job string) error { return s.be.Delete(job) }

// TestRecoveredBacklogCountsAgainstAdmission: jobs force-pushed at
// recovery are never stranded, but they occupy queue capacity — while
// the recovered backlog holds the queue at or over its bound, new
// submissions get 503; once workers drain it, admission reopens.
func TestRecoveredBacklogCountsAgainstAdmission(t *testing.T) {
	be := storage.NewMem()

	// Server 1 (no workers): bank three queued jobs.
	s1, err := New(Config{Store: be, QueueDepth: 3, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := serveHTTP(t, s1)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, postJob(t, ts1, smallSpec()).ID)
	}

	// Server 2 over the same store, bound 2: recovery must enqueue all
	// three (ForcePush bypasses the bound), and the over-bound backlog
	// must refuse new submissions.
	s2, err := New(Config{Store: be, Workers: 1, QueueDepth: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.queue.Depth(); got != 3 {
		t.Fatalf("recovered queue depth %d, want 3: recovery stranded persisted jobs", got)
	}
	ts2 := serveHTTP(t, s2)
	if code := postJobCode(t, ts2, smallSpec()); code != http.StatusServiceUnavailable {
		t.Fatalf("submission against a recovered over-bound backlog: HTTP %d, want 503", code)
	}

	// Drain: once the recovered jobs finish, admission reopens.
	s2.Start()
	for _, id := range ids {
		waitFor(t, ts2, id, 120*time.Second, func(s JobStatus) bool { return s.State.Terminal() })
	}
	if code := postJobCode(t, ts2, smallSpec()); code != http.StatusCreated {
		t.Fatalf("submission after the backlog drained: HTTP %d, want 201", code)
	}
}

// postJobCode submits a spec and returns only the HTTP status code.
func postJobCode(t *testing.T, base string, spec any) int {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestStoresBitIdentical: the storage backend is an implementation
// detail of persistence, never of the optimization — the same spec run
// on a filesystem-backed and a memory-backed server must converge to the
// identical protected dataset, byte for byte.
func TestStoresBitIdentical(t *testing.T) {
	results := map[string]JobResult{}
	for name, be := range testStores(t) {
		_, ts := testServer(t, Config{Store: be, Workers: 1})
		status := postJob(t, ts.URL, smallSpec())
		waitFor(t, ts.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
			return s.State.Terminal()
		})
		results[name] = fetchResult(t, ts.URL, status.ID)
	}
	fs, mem := results["fs"], results["mem"]
	if fs.Best.Score != mem.Best.Score || fs.Generations != mem.Generations {
		t.Fatalf("stores diverged: fs best %.9f over %d generations, mem best %.9f over %d",
			fs.Best.Score, fs.Generations, mem.Best.Score, mem.Generations)
	}
	if fs.DatasetCSV == "" || fs.DatasetCSV != mem.DatasetCSV {
		t.Fatal("protected datasets differ between storage backends")
	}
}

// TestFIFOQueueAccounting pins the admission arithmetic at the unit
// level: force-pushed items count toward the bound exactly like pushed
// ones.
func TestFIFOQueueAccounting(t *testing.T) {
	q := NewFIFOQueue(2)
	if !q.ForcePush("a", 0) || !q.ForcePush("b", 0) || !q.ForcePush("c", 0) {
		t.Fatal("ForcePush must not respect the bound")
	}
	if q.Push("d", 0) {
		t.Fatal("Push admitted over a force-filled queue")
	}
	if id, ok := q.Pop(); !ok || id != "a" {
		t.Fatalf("Pop = %q, %v; want \"a\", true", id, ok)
	}
	// Two remain — still at the bound of 2.
	if q.Push("d", 0) {
		t.Fatal("Push admitted at the bound")
	}
	q.Pop()
	if !q.Push("d", 0) {
		t.Fatal("Push refused under the bound")
	}
	if q.Depth() != 2 {
		t.Fatalf("depth %d, want 2", q.Depth())
	}
	q.Close()
	if q.Push("e", 0) || q.ForcePush("f", 0) {
		t.Fatal("pushes admitted after Close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop delivered after Close; close must win over queued items")
	}
}

// TestFIFOQueuePriorityOrder pins the scheduling contract: higher
// priorities pop first, arrival order breaks ties, and MaxPriority
// reports the queue head.
func TestFIFOQueuePriorityOrder(t *testing.T) {
	q := NewFIFOQueue(8)
	if _, ok := q.MaxPriority(); ok {
		t.Fatal("MaxPriority on an empty queue reported a value")
	}
	for _, it := range []struct {
		id  string
		pri int
	}{{"low1", 0}, {"high1", 5}, {"low2", 0}, {"mid", 3}, {"high2", 5}} {
		if !q.Push(it.id, it.pri) {
			t.Fatalf("push %q refused", it.id)
		}
	}
	if pri, ok := q.MaxPriority(); !ok || pri != 5 {
		t.Fatalf("MaxPriority = %d, %v; want 5, true", pri, ok)
	}
	for _, want := range []string{"high1", "high2", "mid", "low1", "low2"} {
		if id, ok := q.Pop(); !ok || id != want {
			t.Fatalf("Pop = %q, %v; want %q", id, ok, want)
		}
	}
}
