package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"evoprot"
)

// eventLog is one job's append-only NDJSON event feed: every
// evoprot.Event the run emits, one JSON object per line, durable on disk
// so the feed survives server restarts and replays from any offset. The
// line index equals the event's Seq — the runner is started with
// WithFirstEventSeq(count) on resume, which keeps the two in step across
// restarts.
type eventLog struct {
	path string

	mu       sync.Mutex
	f        *os.File // append handle; nil after finish
	count    uint64   // lines in the file
	terminal bool     // no further appends will ever happen
	failed   error    // first append failure; latches the log read-only
	updated  chan struct{}
}

// openEventLog opens (or creates) the log at path and counts the events
// already persisted. A hard crash mid-append can leave a torn trailing
// line; it is truncated away first, so the feed stays valid NDJSON and
// the next event starts on a fresh line.
func openEventLog(path string) (*eventLog, error) {
	if err := truncateTornTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	count, err := countLines(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &eventLog{path: path, f: f, count: count, updated: make(chan struct{})}, nil
}

// truncateTornTail drops a partial trailing line (no terminating
// newline) left by a crash mid-append. The lost event re-emerges when
// the resumed run re-executes its generation.
func truncateTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	// Scan backwards in chunks for the last newline.
	const chunk = 4096
	buf := make([]byte, chunk)
	end := size
	for end > 0 {
		start := end - chunk
		if start < 0 {
			start = 0
		}
		n := int(end - start)
		if _, err := f.ReadAt(buf[:n], start); err != nil {
			return err
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				keep := start + int64(i) + 1
				if keep == size {
					return nil // the file ends cleanly
				}
				return f.Truncate(keep)
			}
		}
		end = start
	}
	return f.Truncate(0) // a single torn line and nothing else
}

func countLines(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var n uint64
	br := bufio.NewReader(f)
	for {
		_, err := br.ReadString('\n')
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		n++
	}
}

// append persists one event as a single full-line write and wakes every
// waiting streamer. The first write failure latches the log: a dropped
// event would shift every later line off its Seq — the invariant replay
// offsets are built on — so no further appends are accepted. A restart
// truncates any torn tail and the resumed run re-emits from the
// surviving count, healing the feed.
func (l *eventLog) append(ev evoprot.Event) error {
	buf, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.f == nil {
		return fmt.Errorf("serve: event log %s is finished", l.path)
	}
	if _, err := l.f.Write(buf); err != nil {
		l.failed = err
		return err
	}
	l.count++
	l.signal()
	return nil
}

// finish marks the feed terminal: streamers drain to count and stop
// waiting for more. Idempotent.
func (l *eventLog) finish() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.terminal {
		return
	}
	l.terminal = true
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.signal()
}

// signal must run under mu: it closes the current update channel so every
// select waiting on it fires, and replaces it for the next round.
func (l *eventLog) signal() {
	close(l.updated)
	l.updated = make(chan struct{})
}

// state snapshots the feed for a streamer: events persisted, whether more
// may come, and the channel that fires on the next change.
func (l *eventLog) state() (count uint64, terminal bool, updated <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count, l.terminal, l.updated
}

// stream delivers the feed to deliver, one raw NDJSON line (without the
// trailing newline) per event, starting at 0-based event offset. It
// returns once the feed is terminal and fully delivered, when deliver
// returns an error (a gone client), or when done fires. Partially-written
// trailing lines — a reader can observe an append mid-write — are held
// back until their newline arrives.
func (l *eventLog) stream(done <-chan struct{}, offset uint64, deliver func(line []byte) error) error {
	f, err := os.Open(l.path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var (
		pending   []byte
		delivered uint64
	)
	for {
		chunk, err := br.ReadBytes('\n')
		switch err {
		case nil:
			line := append(pending, chunk[:len(chunk)-1]...)
			pending = nil
			if delivered >= offset {
				if err := deliver(line); err != nil {
					return err
				}
			}
			delivered++
		case io.EOF:
			pending = append(pending, chunk...)
			count, terminal, updated := l.state()
			if terminal && delivered >= count {
				return nil
			}
			if delivered >= count {
				select {
				case <-updated:
				case <-done:
					return nil
				}
			}
			// More data (or a final newline) is available; keep reading the
			// same handle — the file only ever grows.
		default:
			return err
		}
	}
}
