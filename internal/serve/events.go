package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"evoprot"
)

// eventLog is one job's append-only NDJSON event feed: every
// evoprot.Event the run emits, one JSON object per line, durable in the
// store so the feed survives server restarts and replays from any
// offset. The line index equals the event's Seq — the runner is started
// with WithFirstEventSeq(count) on resume, which keeps the two in step
// across restarts.
type eventLog struct {
	st  *store
	job string

	mu       sync.Mutex
	count    uint64 // events persisted
	bytes    int64  // feed length in bytes; tracks count for checkpoint markers
	terminal bool   // no further appends will ever happen
	failed   error  // first append failure; latches the log read-only
	updated  chan struct{}
}

// openEventLog opens (or creates) the job's feed and counts the events
// already persisted. A hard crash mid-append can leave a torn trailing
// line; it is truncated away first, so the feed stays valid NDJSON and
// the next event starts on a fresh line.
func openEventLog(st *store, job string) (*eventLog, error) {
	data, err := st.be.Get(job, eventsKey)
	if err != nil {
		if !isNotExist(err) {
			return nil, err
		}
		// Create the empty feed eagerly so streamers of a queued job have
		// something to tail.
		if err := st.be.Append(job, eventsKey, nil); err != nil {
			return nil, err
		}
		data = nil
	}
	// Heal a torn tail: keep everything up to the last newline.
	keep := int64(bytes.LastIndexByte(data, '\n') + 1)
	if keep < int64(len(data)) {
		if err := st.be.Truncate(job, eventsKey, keep); err != nil {
			return nil, err
		}
		data = data[:keep]
	}
	return &eventLog{
		st:      st,
		job:     job,
		count:   uint64(bytes.Count(data, []byte{'\n'})),
		bytes:   int64(len(data)),
		updated: make(chan struct{}),
	}, nil
}

// append persists one event as a single full-line Append and wakes every
// waiting streamer. The first write failure latches the log: a dropped
// event would shift every later line off its Seq — the invariant replay
// offsets are built on — so no further appends are accepted. A restart
// truncates any torn tail and the resumed run re-emits from the
// surviving count, healing the feed.
func (l *eventLog) append(ev evoprot.Event) error {
	buf, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.terminal {
		return fmt.Errorf("serve: event log %s/%s is finished", l.job, eventsKey)
	}
	if err := l.st.be.Append(l.job, eventsKey, buf); err != nil {
		l.failed = err
		return err
	}
	l.count++
	l.bytes += int64(len(buf))
	l.signal()
	return nil
}

// position reports the feed's current length in events and bytes — the
// pair a checkpoint's feed marker records.
func (l *eventLog) position() (count uint64, size int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count, l.bytes
}

// rewindTo truncates the feed back to a checkpoint marker's position and
// reports how many events were trimmed. A marker matching the current
// position (a graceful interruption's final checkpoint) is a no-op; a
// marker ahead of the feed means the two documents disagree — the feed
// was shortened some other way — and is refused rather than guessed at.
func (l *eventLog) rewindTo(count uint64, size int64) (trimmed uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if count == l.count && size == l.bytes {
		return 0, nil
	}
	if count > l.count || size > l.bytes {
		return 0, fmt.Errorf("serve: feed marker (%d events, %d bytes) is past the feed (%d events, %d bytes)",
			count, size, l.count, l.bytes)
	}
	if err := l.st.be.Truncate(l.job, eventsKey, size); err != nil {
		return 0, err
	}
	trimmed = l.count - count
	l.count = count
	l.bytes = size
	return trimmed, nil
}

// noteRemote folds writes that bypassed this process — a cluster
// worker's appends arriving through the coordinator's store handler —
// into the live counters and wakes streamers, which read the grown feed
// straight from the shared store.
func (l *eventLog) noteRemote(events uint64, size int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count += events
	l.bytes += size
	if events > 0 {
		l.signal()
	}
}

// resync reloads the counters from the store after an external truncate
// (a re-leased worker healing the feed through the seam).
func (l *eventLog) resync() error {
	data, err := l.st.be.Get(l.job, eventsKey)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count = uint64(bytes.Count(data, []byte{'\n'}))
	l.bytes = int64(len(data))
	l.signal()
	return nil
}

// finish marks the feed terminal: streamers drain to count and stop
// waiting for more. Idempotent.
func (l *eventLog) finish() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.terminal {
		return
	}
	l.terminal = true
	l.signal()
}

// signal must run under mu: it closes the current update channel so every
// select waiting on it fires, and replaces it for the next round.
func (l *eventLog) signal() {
	close(l.updated)
	l.updated = make(chan struct{})
}

// state snapshots the feed for a streamer: events persisted, whether more
// may come, and the channel that fires on the next change.
func (l *eventLog) state() (count uint64, terminal bool, updated <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count, l.terminal, l.updated
}

// stream delivers the feed to deliver, one raw NDJSON line (without the
// trailing newline) per event, starting at 0-based event offset. It
// returns once the feed is terminal and fully delivered, when deliver
// returns an error (a gone client), or when done fires. The reader comes
// from Store.Open, whose growth-observing contract the loop leans on:
// after io.EOF a later read sees bytes appended since. Partially-written
// trailing lines — a reader can observe an append mid-write — are held
// back until their newline arrives.
func (l *eventLog) stream(done <-chan struct{}, offset uint64, deliver func(line []byte) error) error {
	rd, err := l.st.be.Open(l.job, eventsKey)
	if err != nil {
		return err
	}
	defer rd.Close()
	br := bufio.NewReader(rd)
	var (
		pending   []byte
		delivered uint64
	)
	for {
		chunk, err := br.ReadBytes('\n')
		switch err {
		case nil:
			line := append(pending, chunk[:len(chunk)-1]...)
			pending = nil
			if delivered >= offset {
				if err := deliver(line); err != nil {
					return err
				}
			}
			delivered++
		case io.EOF:
			pending = append(pending, chunk...)
			count, terminal, updated := l.state()
			if terminal && delivered >= count {
				return nil
			}
			if delivered >= count {
				select {
				case <-updated:
				case <-done:
					return nil
				}
			}
			// More data (or a final newline) is available; keep reading the
			// same handle — the feed only ever grows.
		default:
			return err
		}
	}
}
