package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"evoprot"
	"evoprot/internal/storage"
)

// Exported cancellation causes for externally driven runs (see Executor):
// cancelling a run context with ErrInterrupted leaves the job resumable
// in the store — the lease-expiry / worker-shutdown path — while
// ErrCancelled finalizes it as cancelled with its partial result kept,
// exactly like a client DELETE. ErrPreempted checkpoints the job and
// persists it queued so it can yield its worker to higher-priority work
// and later resume bit-identically.
var (
	ErrInterrupted = errShutdown
	ErrCancelled   = errCancelled
	ErrPreempted   = errPreempted
)

// engine is the execution half of the service: everything between
// claiming a queued job and persisting its terminal state, with no
// dependence on the HTTP layer, the queue, or the job table. The Server
// embeds one for its in-process worker pool; Executor wraps one so a
// cluster worker can run leased jobs through the identical code path.
type engine struct {
	st        *store
	ckptEvery int
	logf      func(format string, args ...any)
	// requeue, when non-nil, returns a just-preempted job to the local
	// queue. Nil on the Executor path: a cluster worker's preempted job
	// travels back through the coordinator's lease-release requeue
	// instead.
	requeue func(*job)
}

// claim moves a queued job to running; false means it was cancelled (or
// otherwise left the queued state) while waiting.
func (e *engine) claim(j *job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.State != StateQueued {
		return false
	}
	j.status.State = StateRunning
	j.status.Started = time.Now().UTC()
	e.persistStatusLocked(j)
	return true
}

// persistStatusLocked writes j.status to the store; callers hold j.mu.
func (e *engine) persistStatusLocked(j *job) {
	count, _, _ := j.log.state()
	j.status.Events = count
	if err := e.st.saveJSON(j.id, statusKey, j.status); err != nil {
		e.logf("serve: job %s: persisting status: %v", j.id, err)
	}
}

// runJob executes one claimed job end to end under parent and routes the
// outcome: shutdown interruption keeps it resumable, everything else
// finalizes.
func (e *engine) runJob(parent context.Context, j *job) {
	ctx, cancel := context.WithCancelCause(parent)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	defer func() {
		cancel(nil)
		j.mu.Lock()
		j.cancel = nil
		j.mu.Unlock()
	}()

	res, runErr := e.executeJob(ctx, j)
	cause := context.Cause(ctx)
	switch {
	case runErr == nil:
		// A clean completion wins even when a shutdown, cancel or
		// preemption raced the last generation — the work is done, so
		// finalize it. Island-Done events held back by a racing preemption
		// belong in the feed after all; they arrive last in an uninterrupted
		// run too, so appending them here keeps the feed's order and its
		// seq-equals-line-index invariant.
		j.mu.Lock()
		held := j.heldDone
		j.heldDone = nil
		j.mu.Unlock()
		for _, ev := range held {
			e.onEvent(context.Background(), j, ev)
		}
		e.finalize(j, res, StateDone, "")
	case errors.Is(cause, errPreempted) && !j.clientCancelled():
		// Preempted by a higher-priority submission: the runner's final
		// checkpoint persisted the exact stopping point and the feed holds
		// no interruption artifacts (onEvent held the Done markers back), so
		// the eventual resume replays into a feed and result bit-identical
		// to a run that was never preempted. Hand the job straight back to
		// the queue at its own priority.
		j.mu.Lock()
		j.heldDone = nil
		j.status.State = StateQueued
		j.status.Resumes++
		j.status.Preemptions++
		e.persistStatusLocked(j)
		gen := j.status.Generation
		j.mu.Unlock()
		e.logf("serve: job %s preempted at generation %d, requeued", j.id, gen)
		if e.requeue != nil {
			e.requeue(j)
		}
	case errors.Is(cause, errShutdown) && !j.clientCancelled():
		// Interrupted, not over: the runner's final checkpoint write has
		// already persisted the exact stopping point. Record progress and
		// leave the state non-terminal so the next boot resumes it.
		j.mu.Lock()
		j.status.State = StateRunning
		e.persistStatusLocked(j)
		j.mu.Unlock()
		e.logf("serve: job %s interrupted at generation %d, resumable", j.id, j.status.Generation)
	case errors.Is(cause, errCancelled) || j.clientCancelled():
		// The second clause catches a DELETE racing a shutdown: the parent
		// context's errShutdown cause wins the context race, but the client
		// was told 202, so the cancellation must still be honoured. Keep
		// non-context failures visible (e.g. a failed final checkpoint
		// write joined onto the cancellation).
		errMsg := ""
		if errors.Is(runErr, evoprot.ErrCheckpoint) {
			errMsg = runErr.Error()
		}
		e.finalize(j, res, StateCancelled, errMsg)
	default:
		e.finalize(j, res, StateFailed, runErr.Error())
	}
}

// executeJob rebuilds the runner a job spec describes — resuming from the
// persisted checkpoint when one exists — and runs it under ctx.
func (e *engine) executeJob(ctx context.Context, j *job) (*evoprot.RunResult, error) {
	j.mu.Lock()
	spec := j.status.Spec
	j.mu.Unlock()

	orig, err := e.st.loadCSV(j.id, datasetFileName)
	if err != nil {
		return nil, fmt.Errorf("loading original dataset: %w", err)
	}
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}

	ckpt, ckptErr := e.st.be.Get(j.id, checkpointKey)
	if ckptErr != nil && !isNotExist(ckptErr) {
		return nil, fmt.Errorf("reading checkpoint: %w", ckptErr)
	}
	resumeFrom, ckptGen := 0, 0
	if ckptErr == nil {
		meta, err := evoprot.PeekCheckpoint(bytes.NewReader(ckpt))
		if err != nil {
			return nil, fmt.Errorf("reading checkpoint: %w", err)
		}
		ckptGen = meta.Generation
		// Budget from the laggard island: a cancellation-point checkpoint
		// can catch islands mid-epoch at unequal generations, and the
		// per-Run budget applies to every island alike. Counting from the
		// minimum guarantees no island ends short of the spec's budget
		// (islands ahead may run a few generations past it). Under early
		// stopping the laggard is usually a stagnated island that should
		// NOT be topped up — its stagnation window does not persist — so
		// there the leader's generation bounds the budget instead.
		if spec.EarlyStop > 0 {
			resumeFrom = meta.Generation
		} else {
			resumeFrom = meta.MinGeneration
		}
		e.healFeed(j, ckptGen)
	}

	count, _, _ := j.log.state()
	opts = append(opts,
		// Checkpoints route through the store, not a private file path —
		// Put's atomicity and durability replace the facade's tmp+rename.
		evoprot.WithCheckpointSink(func(snapshot []byte) error {
			if err := e.st.be.Put(j.id, checkpointKey, snapshot); err != nil {
				return err
			}
			e.writeFeedMark(j, snapshot)
			return nil
		}, e.ckptEvery),
		evoprot.WithFirstEventSeq(count),
		evoprot.WithProgress(func(ev evoprot.Event) { e.onEvent(ctx, j, ev) }),
	)
	remaining := spec.Budget() - resumeFrom
	if resumeFrom > 0 && remaining > 0 {
		// WithGenerations is the per-Run budget; a resumed runner gets only
		// what the interrupted run left. Appended last, it overrides the
		// spec's own generations option.
		opts = append(opts, evoprot.WithGenerations(remaining))
	}

	runner, err := evoprot.NewRunner(orig, spec.Attributes, opts...)
	if err != nil {
		return nil, err
	}
	if resumeFrom > 0 {
		if err := runner.Resume(bytes.NewReader(ckpt)); err != nil {
			return nil, fmt.Errorf("resuming checkpoint: %w", err)
		}
		e.logf("serve: job %s resuming at generation %d (%d remaining)", j.id, resumeFrom, remaining)
		if remaining <= 0 {
			// The crash happened after the final checkpoint but before
			// finalization: the work is complete, only the paperwork is
			// missing. Synthesize the result from the resumed state.
			return e.resultFromRunner(runner), nil
		}
	}
	return runner.Run(ctx)
}

// writeFeedMark records the event feed's position alongside a just-written
// checkpoint: with every event of a generation flushed before the sink
// runs at its quiescent barrier, the (events, bytes) pair is the feed
// prefix the snapshot accounts for. The marker is tagged with the
// snapshot's generation so a resume can tell whether the two documents
// belong together; losing the marker only degrades a crash resume to the
// legacy at-least-once feed, so its write failure is non-fatal.
func (e *engine) writeFeedMark(j *job, snapshot []byte) {
	meta, err := evoprot.PeekCheckpoint(bytes.NewReader(snapshot))
	if err != nil {
		return
	}
	events, bytes := j.log.position()
	mark := ckptMeta{Events: events, Bytes: bytes, Generation: meta.Generation}
	if err := e.st.saveJSON(j.id, ckptMetaKey, mark); err != nil {
		e.logf("serve: job %s: persisting checkpoint feed marker: %v", j.id, err)
	}
}

// healFeed makes crash resumes exactly-once: if the checkpoint's feed
// marker matches the checkpoint about to be resumed, every event logged
// past the marker belongs to generations the resumed run will re-execute
// and re-emit, so the feed is rewound to the marker first. On a graceful
// interruption the final checkpoint's marker equals the feed's end and
// the rewind is a no-op; without a trustworthy marker (older data dirs, a
// crash between the two writes) the feed is left alone and delivery
// stays at-least-once, exactly as before.
func (e *engine) healFeed(j *job, ckptGen int) {
	var mark ckptMeta
	if err := e.st.loadJSON(j.id, ckptMetaKey, &mark); err != nil || mark.Generation != ckptGen {
		return
	}
	trimmed, err := j.log.rewindTo(mark.Events, mark.Bytes)
	if err != nil {
		e.logf("serve: job %s: rewinding event feed: %v", j.id, err)
		return
	}
	if trimmed > 0 {
		e.logf("serve: job %s: rewound %d uncheckpointed events; resume re-emits them exactly once", j.id, trimmed)
	}
}

// resultFromRunner builds a RunResult for a job whose budget was already
// exhausted when resumed (a crash landed between the final checkpoint and
// finalization). Only what the quiescent runner exposes is available:
// best individual, island count and the generation marker. Evaluation
// counts and per-island histories of the pre-crash legs are gone with
// the process; the durable event log remains the trajectory of record.
func (e *engine) resultFromRunner(r *evoprot.Runner) *evoprot.RunResult {
	return &evoprot.RunResult{
		Best:        r.Best(),
		Generations: r.Generation(),
		StopReason:  evoprot.StopCompleted,
	}
}

// onEvent is the runner's progress callback: append to the durable feed,
// fold the event into the live status, and persist the status every so
// often so a hard crash recovers a recent generation marker.
//
// Under a preemption the islands' Done events are held back instead of
// appended: the resumed run re-emits the same sequence numbers with its
// own trajectory, so writing the interruption's Done markers would make
// a preempted-then-resumed feed diverge from an unpreempted run's. The
// held events are dropped on the preempted exit path and appended after
// all when a clean completion wins the race (see runJob).
func (e *engine) onEvent(ctx context.Context, j *job, ev evoprot.Event) {
	if ev.Done && errors.Is(context.Cause(ctx), errPreempted) {
		j.mu.Lock()
		j.heldDone = append(j.heldDone, ev)
		j.mu.Unlock()
		return
	}
	if err := j.log.append(ev); err != nil {
		j.mu.Lock()
		if j.logErr == nil {
			j.logErr = err
			j.status.Error = fmt.Sprintf("event log: %v", err)
		}
		j.mu.Unlock()
		e.logf("serve: job %s: event log append: %v", j.id, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if ev.Err != "" && j.status.Error == "" {
		j.status.Error = ev.Err // e.g. a failed mid-run checkpoint write
	}
	if ev.Island >= 0 {
		if ev.Stats.Gen > j.status.Generation {
			j.status.Generation = ev.Stats.Gen
		}
		// Judge island bests under the job's shared aggregation: islands
		// running per-island aggregators report Stats on their own scales,
		// and for homogeneous jobs the re-combination reproduces Stats.Min
		// bit for bit.
		if !ev.Done {
			score := j.agg.Combine(ev.Stats.BestIL, ev.Stats.BestDR)
			if j.status.Best == nil || score < j.status.Best.Score {
				j.status.Best = &BestSummary{
					Score:  score,
					IL:     ev.Stats.BestIL,
					DR:     ev.Stats.BestDR,
					Island: ev.Island,
				}
			}
		}
	}
	j.sincePers++
	if j.sincePers >= 64 {
		j.sincePers = 0
		e.persistStatusLocked(j)
	}
}

// finalFront picks the run's final non-dominated front for the result
// document: the best island's when it ran Pareto selection, otherwise the
// Pareto island with the largest final hypervolume (ties keep the lowest
// island index, so the choice is deterministic). Nil when no island ran
// Pareto selection.
func finalFront(res *evoprot.RunResult) *evoprot.FrontStats {
	last := func(i int) *evoprot.FrontStats {
		h := res.Islands[i].History
		if len(h) == 0 {
			return nil
		}
		return h[len(h)-1].Front
	}
	if res.BestIsland >= 0 && res.BestIsland < len(res.Islands) {
		if f := last(res.BestIsland); f != nil {
			return f
		}
	}
	var best *evoprot.FrontStats
	for i := range res.Islands {
		if f := last(i); f != nil && (best == nil || f.Hypervolume > best.Hypervolume) {
			best = f
		}
	}
	return best
}

// finalize records a terminal outcome: result.json and best.csv when a
// result exists, then the status flip and the feed close.
func (e *engine) finalize(j *job, res *evoprot.RunResult, state jobState, errMsg string) {
	var stop string
	if res != nil && res.Best != nil {
		stop = string(res.StopReason)
		snap := j.snapshotStatus()
		// res.Generations counts only the leg since the last resume; the
		// status tracks absolute generation numbers across restarts.
		generations := res.Generations
		if snap.Generation > generations {
			generations = snap.Generation
		}
		// res.Islands is empty on the finalize-from-checkpoint path; the
		// spec still knows the run's shape (a per_island spec without an
		// explicit count runs one island per override).
		islands := len(res.Islands)
		if islands == 0 {
			if islands = snap.Spec.Islands; islands < 1 {
				if islands = len(snap.Spec.PerIsland); islands < 1 {
					islands = 1
				}
			}
		}
		result := JobResult{
			ID:          j.id,
			State:       state,
			StopReason:  stop,
			Generations: generations,
			Evaluations: res.Evaluations,
			Migrations:  res.Migrations,
			Islands:     islands,
			BestIsland:  res.BestIsland,
			Best: BestSummary{
				Score:  res.Best.Eval.Score,
				IL:     res.Best.Eval.IL,
				DR:     res.Best.Eval.DR,
				Island: res.BestIsland,
				Origin: res.Best.Origin,
			},
		}
		if len(res.Islands) > 0 {
			result.History = res.Islands[res.BestIsland].History
		}
		if front := finalFront(res); front != nil {
			result.Front = front.Pairs
			result.FrontSize = front.Size
			result.Hypervolume = front.Hypervolume
		}
		if err := e.st.saveJSON(j.id, resultKey, result); err != nil {
			e.logf("serve: job %s: persisting result: %v", j.id, err)
		}
		if err := e.st.saveCSV(j.id, bestCSVKey, res.Best.Data); err != nil {
			e.logf("serve: job %s: persisting best dataset: %v", j.id, err)
		}
	}
	j.mu.Lock()
	j.status.State = state
	j.status.Finished = time.Now().UTC()
	j.status.StopReason = stop
	if errMsg != "" {
		j.status.Error = errMsg
	} else if state != StateFailed && j.logErr == nil {
		// The run outlived any transient mid-run warning (say, one failed
		// periodic checkpoint superseded by later writes); a terminal
		// success must not read like a failure.
		j.status.Error = ""
	}
	if res != nil && res.Best != nil {
		j.status.Best = &BestSummary{
			Score:  res.Best.Eval.Score,
			IL:     res.Best.Eval.IL,
			DR:     res.Best.Eval.DR,
			Island: res.BestIsland,
			Origin: res.Best.Origin,
		}
		if res.Generations > j.status.Generation {
			j.status.Generation = res.Generations
		}
	}
	e.persistStatusLocked(j)
	j.mu.Unlock()
	j.log.finish()
	e.logf("serve: job %s %s (stop: %s)", j.id, state, stop)
}

// Executor runs persisted jobs end to end over a Store: the execution
// half of the service decoupled from admission, HTTP and the worker
// pool. A cluster worker wraps one around a storage.Remote client so a
// leased job flows through byte-for-byte the code path the in-process
// pool uses — claim, checkpointed run, feed append, finalize — with the
// coordinator's store on the far side of the seam.
type Executor struct {
	eng *engine
}

// NewExecutor builds an Executor over be. checkpointEvery <= 0 selects
// DefaultCheckpointEvery; a nil logf discards log lines.
func NewExecutor(be storage.Store, checkpointEvery int, logf func(format string, args ...any)) *Executor {
	if checkpointEvery <= 0 {
		checkpointEvery = DefaultCheckpointEvery
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Executor{eng: &engine{st: &store{be: be}, ckptEvery: checkpointEvery, logf: logf}}
}

// Execute runs the persisted job id from its stored state to its next
// stopping point and returns the resulting status. A terminal job is
// returned untouched; a queued job is claimed, resumed from its
// checkpoint when one exists, and run under ctx. Cancelling ctx with
// cause ErrInterrupted leaves the job resumable (persisted running,
// checkpoint at the stopping point); ErrCancelled finalizes it as
// cancelled. The error reports infrastructure failures only — a run that
// fails on its own terms comes back as a StateFailed status and a nil
// error.
func (x *Executor) Execute(ctx context.Context, id string) (JobStatus, error) {
	var status JobStatus
	if err := x.eng.st.loadJSON(id, statusKey, &status); err != nil {
		return JobStatus{}, fmt.Errorf("serve: job %s: loading status: %w", id, err)
	}
	log, err := openEventLog(x.eng.st, id)
	if err != nil {
		return JobStatus{}, fmt.Errorf("serve: job %s: event log: %w", id, err)
	}
	j := &job{id: id, log: log, agg: jobAggregator(status.Spec), status: status}
	if status.State.Terminal() {
		log.finish()
		return j.snapshotStatus(), nil
	}
	if !x.eng.claim(j) {
		return j.snapshotStatus(), fmt.Errorf("serve: job %s is %s, not claimable", id, status.State)
	}
	x.eng.runJob(ctx, j)
	return j.snapshotStatus(), nil
}
